(* horus_info: command-line front end to the catalogue and the property
   algebra.

     horus_info layers            - Figure 1: the layer library
     horus_info table3            - Table 3: requires/provides/inherits
     horus_info table4            - Table 4: the sixteen properties
     horus_info check SPEC        - well-formedness + derived properties
     horus_info synth P6,P9,...   - minimal stack for a requirement set

   Run with: dune exec bin/horus_info.exe -- <command> [args] *)

open Cmdliner

let init () = Horus_layers.Init.register_all ()

let layers_cmd =
  let run () =
    init ();
    Format.printf "%-14s %-18s %s@." "layer" "protocol type" "description";
    Format.printf "%s@." (String.make 100 '-');
    List.iter
      (fun e ->
         Format.printf "%-14s %-18s %s@." e.Horus_hcpi.Registry.name
           e.Horus_hcpi.Registry.protocol_type e.Horus_hcpi.Registry.description)
      (Horus_hcpi.Registry.all ())
  in
  Cmd.v (Cmd.info "layers" ~doc:"List the layer library (Figure 1)")
    Term.(const run $ const ())

let table4_cmd =
  let run () =
    List.iter
      (fun p ->
         Format.printf "P%-3d %s@." (Horus_props.Property.number p)
           (Horus_props.Property.description p))
      Horus_props.Property.all
  in
  Cmd.v (Cmd.info "table4" ~doc:"List the sixteen protocol properties (Table 4)")
    Term.(const run $ const ())

let table3_cmd =
  let run () =
    let module P = Horus_props.Property in
    Format.printf "%-14s %-28s %-18s inherits@." "layer" "requires" "provides";
    Format.printf "%s@." (String.make 110 '-');
    List.iter
      (fun (s : Horus_props.Layer_spec.t) ->
         Format.printf "%-14s %-28s %-18s %s@." s.Horus_props.Layer_spec.name
           (P.Set.to_string s.Horus_props.Layer_spec.requires)
           (P.Set.to_string s.Horus_props.Layer_spec.provides)
           (P.Set.to_string s.Horus_props.Layer_spec.inherits))
      Horus_props.Layer_spec.table3
  in
  Cmd.v (Cmd.info "table3" ~doc:"Per-layer property table (Table 3)")
    Term.(const run $ const ())

let net_arg =
  let doc = "Comma-separated property numbers the network provides (default: 1)." in
  Arg.(value & opt string "1" & info [ "net" ] ~doc)

let parse_numbers s =
  String.split_on_char ',' s
  |> List.filter (fun x -> String.trim x <> "")
  |> List.map (fun x ->
      let x = String.trim x in
      let x = if String.length x > 1 && (x.[0] = 'P' || x.[0] = 'p') then String.sub x 1 (String.length x - 1) else x in
      int_of_string x)

let check_cmd =
  let spec_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"SPEC" ~doc:"Stack spec, e.g. TOTAL:MBRSHIP:FRAG:NAK:COM")
  in
  let run net spec_string =
    init ();
    let module P = Horus_props.Property in
    let net = P.Set.of_numbers (parse_numbers net) in
    let names = Horus_hcpi.Spec.names (Horus_hcpi.Spec.parse spec_string) in
    (match Horus_props.Check.derive_names ~net names with
     | Ok props ->
       Format.printf "well-formed over net %a@." P.Set.pp net;
       Format.printf "provides: %a@." P.Set.pp props;
       (match Horus_props.Check.trace ~net (List.map Horus_props.Layer_spec.find_exn names) with
        | Ok steps ->
          let labels = "(net)" :: List.rev ("(top)" :: List.tl (List.rev_map (fun n -> "above " ^ n) (List.rev names))) in
          ignore labels;
          List.iteri
            (fun i s ->
               let label = if i = 0 then "(net)" else "above " ^ List.nth (List.rev names) (i - 1) in
               Format.printf "  %-16s %a@." label P.Set.pp s)
            steps
        | Error _ -> ())
     | Error e -> Format.printf "ill-formed: %a@." Horus_props.Check.pp_error e)
  in
  Cmd.v (Cmd.info "check" ~doc:"Check well-formedness and derive properties of a stack")
    Term.(const run $ net_arg $ spec_arg)

let synth_cmd =
  let req_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"PROPS" ~doc:"Required properties, e.g. 6,9,15 or P6,P9")
  in
  let run net req =
    init ();
    let module P = Horus_props.Property in
    let net = P.Set.of_numbers (parse_numbers net) in
    let required = P.Set.of_numbers (parse_numbers req) in
    match Horus_props.Search.search ~net ~required () with
    | Some r ->
      Format.printf "%s@." (Horus_props.Search.spec_string r);
      Format.printf "cost %d, provides %a@." r.Horus_props.Search.cost P.Set.pp
        r.Horus_props.Search.provides
    | None -> Format.printf "no stack in the catalogue can provide %a@." P.Set.pp required
  in
  Cmd.v (Cmd.info "synth" ~doc:"Synthesize the minimal stack for a requirement set")
    Term.(const run $ net_arg $ req_arg)

let order_cmd =
  let l1_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"UPPER" ~doc:"Upper layer.")
  in
  let l2_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"LOWER" ~doc:"Lower layer.")
  in
  let run net l1 l2 =
    init ();
    let net = Horus_props.Property.Set.of_numbers (parse_numbers net) in
    let upper = Horus_props.Layer_spec.find_exn l1 in
    let lower = Horus_props.Layer_spec.find_exn l2 in
    Format.printf "%a@." Horus_props.Check.pp_order_verdict
      (Horus_props.Check.order_matters ~net ~upper ~lower)
  in
  Cmd.v
    (Cmd.info "order"
       ~doc:"Does the stacking order of two layers matter? (Section 8)")
    Term.(const run $ net_arg $ l1_arg $ l2_arg)

(* A quick live scenario from the command line: form a group over a
   given stack, push some traffic, crash a member, and report what
   every member saw. *)
let simulate_cmd =
  let spec_arg =
    Arg.(value & opt string "TOTAL:MBRSHIP:FRAG:NAK:COM"
         & info [ "stack" ] ~doc:"Stack spec to run.")
  in
  let n_arg = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Group size.") in
  let crash_arg =
    Arg.(value & flag & info [ "crash" ] ~doc:"Crash the youngest member mid-run.")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"World seed.") in
  let run spec n crash seed =
    let open Horus in
    let world = World.create ~seed () in
    let g = World.fresh_group_addr world in
    let founder = Group.join (Endpoint.create world ~spec) g in
    World.run_for world ~duration:0.3;
    let rest =
      List.init (n - 1) (fun _ ->
          let m = Group.join ~contact:(Group.addr founder) (Endpoint.create world ~spec) g in
          World.run_for world ~duration:0.4;
          m)
    in
    let members = founder :: rest in
    World.run_for world ~duration:2.0;
    List.iteri
      (fun i gr ->
         for k = 0 to 2 do
           World.after world ~delay:(0.01 *. float_of_int k) (fun () ->
               Group.cast gr (Printf.sprintf "m%d-%d" i k))
         done)
      members;
    if crash then
      World.after world ~delay:0.015 (fun () ->
          Endpoint.crash (Group.endpoint (List.nth members (n - 1))));
    World.run_for world ~duration:5.0;
    List.iteri
      (fun i gr ->
         let view =
           match Group.view gr with
           | Some v -> Format.asprintf "%a" View.pp v
           | None -> "(none)"
         in
         Format.printf "member %d: view %s@." i view;
         Format.printf "  delivered (%d): %s@."
           (List.length (Group.casts gr))
           (String.concat " " (Group.casts gr)))
      members
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Run a live group scenario and print what every member saw")
    Term.(const run $ spec_arg $ n_arg $ crash_arg $ seed_arg)

(* Run a group scenario and dump the world's metrics registry — the
   per-layer HCPI crossing counters, the engine's dispatch-delay
   histogram, and the wire stats — as a table or as the same JSON shape
   bench/main.exe --json embeds. *)
let metrics_cmd =
  let spec_arg =
    Arg.(value & opt string "TOTAL:MBRSHIP:FRAG:NAK:COM"
         & info [ "stack" ] ~doc:"Stack spec to run.")
  in
  let n_arg = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Group size.") in
  let casts_arg =
    Arg.(value & opt int 10 & info [ "casts" ] ~doc:"Casts from member 0.")
  in
  let crash_arg =
    Arg.(value & flag & info [ "crash" ] ~doc:"Crash the youngest member mid-run.")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"World seed.") in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the registry as JSON instead of a table.")
  in
  let run spec n casts crash seed json =
    let open Horus in
    let world = World.create ~seed () in
    let members = spawn_group world ~spec ~n in
    let sender = List.hd members in
    for k = 0 to casts - 1 do
      World.after world ~delay:(0.01 *. float_of_int k) (fun () ->
          Group.cast sender (Printf.sprintf "m%d" k))
    done;
    if crash then
      World.after world ~delay:(0.01 *. float_of_int casts) (fun () ->
          Endpoint.crash (Group.endpoint (List.nth members (n - 1))));
    World.run_for world ~duration:3.0;
    if json then print_string (Json.to_string ~indent:true (World.metrics_json world))
    else begin
      ignore (World.metrics_json world);  (* export the wire stats *)
      Format.printf "%a" Metrics.pp (World.metrics world)
    end
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Run a group scenario and dump the world metrics registry (deterministic in the seed)")
    Term.(const run $ spec_arg $ n_arg $ casts_arg $ crash_arg $ seed_arg $ json_arg)

let () =
  let doc = "Horus protocol-composition framework: catalogue and property algebra" in
  let info = Cmd.info "horus_info" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ layers_cmd; table3_cmd; table4_cmd; check_cmd; synth_cmd; order_cmd;
            simulate_cmd; metrics_cmd ]))
