(* horus_info: command-line front end to the catalogue and the property
   algebra.

     horus_info layers            - Figure 1: the layer library
     horus_info table3            - Table 3: requires/provides/inherits
     horus_info table4            - Table 4: the sixteen properties
     horus_info check SPEC        - well-formedness + derived properties
     horus_info synth P6,P9,...   - minimal stack for a requirement set

   Run with: dune exec bin/horus_info.exe -- <command> [args] *)

open Cmdliner

let init () = Horus_layers.Init.register_all ()

let layers_cmd =
  let run () =
    init ();
    Format.printf "%-14s %-18s %s@." "layer" "protocol type" "description";
    Format.printf "%s@." (String.make 100 '-');
    List.iter
      (fun e ->
         Format.printf "%-14s %-18s %s@." e.Horus_hcpi.Registry.name
           e.Horus_hcpi.Registry.protocol_type e.Horus_hcpi.Registry.description)
      (Horus_hcpi.Registry.all ())
  in
  Cmd.v (Cmd.info "layers" ~doc:"List the layer library (Figure 1)")
    Term.(const run $ const ())

let table4_cmd =
  let run () =
    List.iter
      (fun p ->
         Format.printf "P%-3d %s@." (Horus_props.Property.number p)
           (Horus_props.Property.description p))
      Horus_props.Property.all
  in
  Cmd.v (Cmd.info "table4" ~doc:"List the sixteen protocol properties (Table 4)")
    Term.(const run $ const ())

let table3_cmd =
  let run () =
    let module P = Horus_props.Property in
    Format.printf "%-14s %-28s %-18s inherits@." "layer" "requires" "provides";
    Format.printf "%s@." (String.make 110 '-');
    List.iter
      (fun (s : Horus_props.Layer_spec.t) ->
         Format.printf "%-14s %-28s %-18s %s@." s.Horus_props.Layer_spec.name
           (P.Set.to_string s.Horus_props.Layer_spec.requires)
           (P.Set.to_string s.Horus_props.Layer_spec.provides)
           (P.Set.to_string s.Horus_props.Layer_spec.inherits))
      Horus_props.Layer_spec.table3
  in
  Cmd.v (Cmd.info "table3" ~doc:"Per-layer property table (Table 3)")
    Term.(const run $ const ())

let net_arg =
  let doc = "Comma-separated property numbers the network provides (default: 1)." in
  Arg.(value & opt string "1" & info [ "net" ] ~doc)

let parse_numbers s =
  String.split_on_char ',' s
  |> List.filter (fun x -> String.trim x <> "")
  |> List.map (fun x ->
      let x = String.trim x in
      let x = if String.length x > 1 && (x.[0] = 'P' || x.[0] = 'p') then String.sub x 1 (String.length x - 1) else x in
      int_of_string x)

let check_cmd =
  let spec_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"SPEC" ~doc:"Stack spec, e.g. TOTAL:MBRSHIP:FRAG:NAK:COM")
  in
  let run net spec_string =
    init ();
    let module P = Horus_props.Property in
    let net = P.Set.of_numbers (parse_numbers net) in
    let names = Horus_hcpi.Spec.names (Horus_hcpi.Spec.parse spec_string) in
    (match Horus_props.Check.derive_names ~net names with
     | Ok props ->
       Format.printf "well-formed over net %a@." P.Set.pp net;
       Format.printf "provides: %a@." P.Set.pp props;
       (match Horus_props.Check.trace ~net (List.map Horus_props.Layer_spec.find_exn names) with
        | Ok steps ->
          let labels = "(net)" :: List.rev ("(top)" :: List.tl (List.rev_map (fun n -> "above " ^ n) (List.rev names))) in
          ignore labels;
          List.iteri
            (fun i s ->
               let label = if i = 0 then "(net)" else "above " ^ List.nth (List.rev names) (i - 1) in
               Format.printf "  %-16s %a@." label P.Set.pp s)
            steps
        | Error _ -> ())
     | Error e -> Format.printf "ill-formed: %a@." Horus_props.Check.pp_error e)
  in
  Cmd.v (Cmd.info "check" ~doc:"Check well-formedness and derive properties of a stack")
    Term.(const run $ net_arg $ spec_arg)

let synth_cmd =
  let req_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"PROPS" ~doc:"Required properties, e.g. 6,9,15 or P6,P9")
  in
  let run net req =
    init ();
    let module P = Horus_props.Property in
    let net = P.Set.of_numbers (parse_numbers net) in
    let required = P.Set.of_numbers (parse_numbers req) in
    match Horus_props.Search.search ~net ~required () with
    | Some r ->
      Format.printf "%s@." (Horus_props.Search.spec_string r);
      Format.printf "cost %d, provides %a@." r.Horus_props.Search.cost P.Set.pp
        r.Horus_props.Search.provides
    | None -> Format.printf "no stack in the catalogue can provide %a@." P.Set.pp required
  in
  Cmd.v (Cmd.info "synth" ~doc:"Synthesize the minimal stack for a requirement set")
    Term.(const run $ net_arg $ req_arg)

let order_cmd =
  let l1_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"UPPER" ~doc:"Upper layer.")
  in
  let l2_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"LOWER" ~doc:"Lower layer.")
  in
  let run net l1 l2 =
    init ();
    let net = Horus_props.Property.Set.of_numbers (parse_numbers net) in
    let upper = Horus_props.Layer_spec.find_exn l1 in
    let lower = Horus_props.Layer_spec.find_exn l2 in
    Format.printf "%a@." Horus_props.Check.pp_order_verdict
      (Horus_props.Check.order_matters ~net ~upper ~lower)
  in
  Cmd.v
    (Cmd.info "order"
       ~doc:"Does the stacking order of two layers matter? (Section 8)")
    Term.(const run $ net_arg $ l1_arg $ l2_arg)

(* A quick live scenario from the command line: form a group over a
   given stack, push some traffic, crash a member, and report what
   every member saw. *)
let simulate_cmd =
  let spec_arg =
    Arg.(value & opt string "TOTAL:MBRSHIP:FRAG:NAK:COM"
         & info [ "stack" ] ~doc:"Stack spec to run.")
  in
  let n_arg = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Group size.") in
  let crash_arg =
    Arg.(value & flag & info [ "crash" ] ~doc:"Crash the youngest member mid-run.")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"World seed.") in
  let run spec n crash seed =
    let open Horus in
    let world = World.create ~seed () in
    let g = World.fresh_group_addr world in
    let founder = Group.join (Endpoint.create world ~spec) g in
    World.run_for world ~duration:0.3;
    let rest =
      List.init (n - 1) (fun _ ->
          let m = Group.join ~contact:(Group.addr founder) (Endpoint.create world ~spec) g in
          World.run_for world ~duration:0.4;
          m)
    in
    let members = founder :: rest in
    World.run_for world ~duration:2.0;
    List.iteri
      (fun i gr ->
         for k = 0 to 2 do
           World.after world ~delay:(0.01 *. float_of_int k) (fun () ->
               Group.cast gr (Printf.sprintf "m%d-%d" i k))
         done)
      members;
    if crash then
      World.after world ~delay:0.015 (fun () ->
          Endpoint.crash (Group.endpoint (List.nth members (n - 1))));
    World.run_for world ~duration:5.0;
    List.iteri
      (fun i gr ->
         let view =
           match Group.view gr with
           | Some v -> Format.asprintf "%a" View.pp v
           | None -> "(none)"
         in
         Format.printf "member %d: view %s@." i view;
         Format.printf "  delivered (%d): %s@."
           (List.length (Group.casts gr))
           (String.concat " " (Group.casts gr)))
      members
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Run a live group scenario and print what every member saw")
    Term.(const run $ spec_arg $ n_arg $ crash_arg $ seed_arg)

(* Run a group scenario and dump the world's metrics registry — the
   per-layer HCPI crossing counters, the engine's dispatch-delay
   histogram, and the wire stats — as a table or as the same JSON shape
   bench/main.exe --json embeds. *)
let metrics_cmd =
  let spec_arg =
    Arg.(value & opt string "TOTAL:MBRSHIP:FRAG:NAK:COM"
         & info [ "stack" ] ~doc:"Stack spec to run.")
  in
  let n_arg = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Group size.") in
  let casts_arg =
    Arg.(value & opt int 10 & info [ "casts" ] ~doc:"Casts from member 0.")
  in
  let crash_arg =
    Arg.(value & flag & info [ "crash" ] ~doc:"Crash the youngest member mid-run.")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"World seed.") in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the registry as JSON instead of a table.")
  in
  let run spec n casts crash seed json =
    let open Horus in
    let world = World.create ~seed () in
    let members = spawn_group world ~spec ~n in
    let sender = List.hd members in
    for k = 0 to casts - 1 do
      World.after world ~delay:(0.01 *. float_of_int k) (fun () ->
          Group.cast sender (Printf.sprintf "m%d" k))
    done;
    if crash then
      World.after world ~delay:(0.01 *. float_of_int casts) (fun () ->
          Endpoint.crash (Group.endpoint (List.nth members (n - 1))));
    World.run_for world ~duration:3.0;
    if json then print_string (Json.to_string ~indent:true (World.metrics_json world))
    else begin
      ignore (World.metrics_json world);  (* export the wire stats *)
      Format.printf "%a" Metrics.pp (World.metrics world)
    end
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Run a group scenario and dump the world metrics registry (deterministic in the seed)")
    Term.(const run $ spec_arg $ n_arg $ casts_arg $ crash_arg $ seed_arg $ json_arg)

(* Replay a repro file (see lib/check): run the recorded scenario
   twice, check the two runs are byte-identical, report violations, and
   compare the outcome with the one the file recorded. Exit 0 iff the
   replay is deterministic and matches the recorded expectation. *)
let replay_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"Repro file (horus-repro/1 JSON).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Dump the full run result as JSON.")
  in
  let run file json =
    let module C = Horus_check in
    match C.Repro.load file with
    | Error e ->
      Format.eprintf "replay: cannot load %s: %s@." file e;
      exit 2
    | Ok sc ->
      let r1 = C.Runner.run sc in
      let r2 = C.Runner.run sc in
      let s1 = C.Runner.to_string r1 and s2 = C.Runner.to_string r2 in
      if json then print_string s1
      else begin
        Format.printf "scenario: %a@." C.Scenario.pp sc;
        Format.printf "choice points: %d@." r1.C.Runner.r_choice_points;
        (match r1.C.Runner.r_violations with
         | [] -> Format.printf "no invariant violations@."
         | vs ->
           List.iter (fun v -> Format.printf "VIOLATION %a@." C.Invariant.pp_violation v) vs)
      end;
      if s1 <> s2 then begin
        Format.eprintf "replay: NONDETERMINISTIC — two runs of %s differ@." file;
        exit 1
      end;
      let failed = C.Runner.failed r1 in
      if failed <> sc.C.Scenario.expect_violation then begin
        Format.eprintf "replay: outcome mismatch — file expects %s, run %s@."
          (if sc.C.Scenario.expect_violation then "a violation" else "no violation")
          (if failed then "violated the invariants" else "was clean");
        exit 1
      end
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Replay a repro file deterministically and check the recorded outcome")
    Term.(const run $ file_arg $ json_arg)

(* Systematic schedule exploration from the command line — the same
   engine the test suite uses, sized by flags so CI can run it at a
   small depth. Exit 1 when a violation is found. *)
let explore_cmd =
  let spec_arg =
    Arg.(value & opt string "MBRSHIP:FRAG:NAK:COM"
         & info [ "stack" ] ~doc:"Stack spec to explore.")
  in
  let n_arg = Arg.(value & opt int 3 & info [ "n" ] ~doc:"Group size.") in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"World seed.") in
  let casts_arg =
    Arg.(value & opt int 2 & info [ "casts" ] ~doc:"Casts per casting member.")
  in
  let caster_arg =
    Arg.(value & opt (some int) None
         & info [ "caster" ] ~doc:"Restrict traffic to this member (default: everyone).")
  in
  let crash_arg =
    Arg.(value & opt (some int) None
         & info [ "crash" ] ~doc:"Member index to crash mid-traffic.")
  in
  let crash_at_arg =
    Arg.(value & opt float 0.05
         & info [ "crash-at" ] ~doc:"Crash instant, seconds after traffic start.")
  in
  let suspect_arg =
    Arg.(value & opt (some (pair int int)) None
         & info [ "suspect" ] ~docv:"BY,WHOM"
             ~doc:"Explicit suspicion injected just after the crash instant.")
  in
  let link_arg =
    Arg.(value & opt_all (t3 int int float) []
         & info [ "link" ] ~docv:"SRC,DST,LAT"
             ~doc:"Per-link latency override in seconds (repeatable).")
  in
  let depth_arg =
    Arg.(value & opt int 6 & info [ "depth" ] ~doc:"DFS branching depth bound.")
  in
  let max_runs_arg =
    Arg.(value & opt int 200 & info [ "max-runs" ] ~doc:"Run budget.")
  in
  let walks_arg =
    Arg.(value & opt int 0 & info [ "walks" ] ~doc:"Random walks after the DFS.")
  in
  let horizon_arg =
    Arg.(value & opt float 0.002
         & info [ "horizon" ] ~doc:"Chooser window in seconds.")
  in
  let width_arg =
    Arg.(value & opt int 3 & info [ "width" ] ~doc:"Max candidates per choice point.")
  in
  let from_arg =
    Arg.(value & opt float 0.0
         & info [ "from" ]
             ~doc:"Activate the chooser this many seconds after traffic start.")
  in
  let save_arg =
    Arg.(value & opt (some string) None
         & info [ "save" ] ~doc:"Directory to write a repro file into on failure.")
  in
  let run spec n seed casts caster crash crash_at suspect links depth max_runs walks
      horizon width from save =
    let module C = Horus_check in
    let ops =
      List.concat
        (List.init n (fun i ->
             if caster <> None && caster <> Some i then []
             else
               List.init casts (fun k ->
                   { C.Scenario.op_member = i; op_at = 0.02 +. (0.04 *. float_of_int k) })))
    in
    let faults =
      (match crash with
       | None -> []
       | Some m -> [ { C.Scenario.f_at = crash_at; f_fault = C.Scenario.Crash m } ])
      @ (match suspect with
         | None -> []
         | Some (a, b) ->
           [ { C.Scenario.f_at = crash_at +. 0.0002; f_fault = C.Scenario.Suspect (a, b) } ])
    in
    let sc =
      C.Scenario.make ~name:(Printf.sprintf "explore-seed%d" seed) ~seed ~links ~ops
        ~faults ~run_for:8.0 ~spec ~n ()
    in
    let config =
      { C.Explore.depth; max_runs; random_walks = walks; horizon; width;
        from_time = from; walk_seed = seed }
    in
    let out = C.Explore.explore ~config sc in
    Format.printf "runs %d, distinct outcomes %d%s@." out.C.Explore.stats.C.Explore.runs
      out.C.Explore.stats.C.Explore.distinct
      (if out.C.Explore.stats.C.Explore.truncated then " (truncated by budget)" else "");
    match out.C.Explore.found with
    | None -> Format.printf "no invariant violation found@."
    | Some (bad, r) ->
      Format.printf "VIOLATION found: %a@." C.Scenario.pp bad;
      List.iter
        (fun v -> Format.printf "  %a@." C.Invariant.pp_violation v)
        r.C.Runner.r_violations;
      (match C.Repro.save ?dir:save { bad with C.Scenario.expect_violation = true } with
       | Some path -> Format.printf "repro written to %s@." path
       | None -> ());
      exit 1
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Systematically explore dispatch schedules of a live stack (exit 1 on violation)")
    Term.(const run $ spec_arg $ n_arg $ seed_arg $ casts_arg $ caster_arg $ crash_arg
          $ crash_at_arg $ suspect_arg $ link_arg $ depth_arg $ max_runs_arg $ walks_arg
          $ horizon_arg $ width_arg $ from_arg $ save_arg)

let () =
  let doc = "Horus protocol-composition framework: catalogue and property algebra" in
  let info = Cmd.info "horus_info" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ layers_cmd; table3_cmd; table4_cmd; check_cmd; synth_cmd; order_cmd;
            simulate_cmd; metrics_cmd; replay_cmd; explore_cmd ]))
