(* horus_info: command-line front end to the catalogue and the property
   algebra.

     horus_info layers            - Figure 1: the layer library
     horus_info table3            - Table 3: requires/provides/inherits
     horus_info table4            - Table 4: the sixteen properties
     horus_info check SPEC        - well-formedness + derived properties
     horus_info synth P6,P9,...   - minimal stack for a requirement set
     horus_info node ...          - one member of a real UDP deployment
     horus_info ping ...          - transport-level reachability check

   Run with: dune exec bin/horus_info.exe -- <command> [args] *)

open Cmdliner

let init () = Horus_layers.Init.register_all ()

let layers_cmd =
  let run () =
    init ();
    Format.printf "%-14s %-18s %s@." "layer" "protocol type" "description";
    Format.printf "%s@." (String.make 100 '-');
    List.iter
      (fun e ->
         Format.printf "%-14s %-18s %s@." e.Horus_hcpi.Registry.name
           e.Horus_hcpi.Registry.protocol_type e.Horus_hcpi.Registry.description)
      (Horus_hcpi.Registry.all ())
  in
  Cmd.v (Cmd.info "layers" ~doc:"List the layer library (Figure 1)")
    Term.(const run $ const ())

let table4_cmd =
  let run () =
    List.iter
      (fun p ->
         Format.printf "P%-3d %s@." (Horus_props.Property.number p)
           (Horus_props.Property.description p))
      Horus_props.Property.all
  in
  Cmd.v (Cmd.info "table4" ~doc:"List the sixteen protocol properties (Table 4)")
    Term.(const run $ const ())

let table3_cmd =
  let run () =
    let module P = Horus_props.Property in
    Format.printf "%-14s %-28s %-18s inherits@." "layer" "requires" "provides";
    Format.printf "%s@." (String.make 110 '-');
    List.iter
      (fun (s : Horus_props.Layer_spec.t) ->
         Format.printf "%-14s %-28s %-18s %s@." s.Horus_props.Layer_spec.name
           (P.Set.to_string s.Horus_props.Layer_spec.requires)
           (P.Set.to_string s.Horus_props.Layer_spec.provides)
           (P.Set.to_string s.Horus_props.Layer_spec.inherits))
      Horus_props.Layer_spec.table3
  in
  Cmd.v (Cmd.info "table3" ~doc:"Per-layer property table (Table 3)")
    Term.(const run $ const ())

let net_arg =
  let doc = "Comma-separated property numbers the network provides (default: 1)." in
  Arg.(value & opt string "1" & info [ "net" ] ~doc)

let parse_numbers s =
  String.split_on_char ',' s
  |> List.filter (fun x -> String.trim x <> "")
  |> List.map (fun x ->
      let x = String.trim x in
      let x = if String.length x > 1 && (x.[0] = 'P' || x.[0] = 'p') then String.sub x 1 (String.length x - 1) else x in
      int_of_string x)

let check_cmd =
  let spec_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"SPEC" ~doc:"Stack spec, e.g. TOTAL:MBRSHIP:FRAG:NAK:COM")
  in
  let run net spec_string =
    init ();
    let module P = Horus_props.Property in
    let net = P.Set.of_numbers (parse_numbers net) in
    let names = Horus_hcpi.Spec.names (Horus_hcpi.Spec.parse spec_string) in
    (match Horus_props.Check.derive_names ~net names with
     | Ok props ->
       Format.printf "well-formed over net %a@." P.Set.pp net;
       Format.printf "provides: %a@." P.Set.pp props;
       (match Horus_props.Check.trace ~net (List.map Horus_props.Layer_spec.find_exn names) with
        | Ok steps ->
          let labels = "(net)" :: List.rev ("(top)" :: List.tl (List.rev_map (fun n -> "above " ^ n) (List.rev names))) in
          ignore labels;
          List.iteri
            (fun i s ->
               let label = if i = 0 then "(net)" else "above " ^ List.nth (List.rev names) (i - 1) in
               Format.printf "  %-16s %a@." label P.Set.pp s)
            steps
        | Error _ -> ())
     | Error e -> Format.printf "ill-formed: %a@." Horus_props.Check.pp_error e)
  in
  Cmd.v (Cmd.info "check" ~doc:"Check well-formedness and derive properties of a stack")
    Term.(const run $ net_arg $ spec_arg)

let synth_cmd =
  let req_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"PROPS" ~doc:"Required properties, e.g. 6,9,15 or P6,P9")
  in
  let run net req =
    init ();
    let module P = Horus_props.Property in
    let net = P.Set.of_numbers (parse_numbers net) in
    let required = P.Set.of_numbers (parse_numbers req) in
    match Horus_props.Search.search ~net ~required () with
    | Some r ->
      Format.printf "%s@." (Horus_props.Search.spec_string r);
      Format.printf "cost %d, provides %a@." r.Horus_props.Search.cost P.Set.pp
        r.Horus_props.Search.provides
    | None -> Format.printf "no stack in the catalogue can provide %a@." P.Set.pp required
  in
  Cmd.v (Cmd.info "synth" ~doc:"Synthesize the minimal stack for a requirement set")
    Term.(const run $ net_arg $ req_arg)

let order_cmd =
  let l1_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"UPPER" ~doc:"Upper layer.")
  in
  let l2_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"LOWER" ~doc:"Lower layer.")
  in
  let run net l1 l2 =
    init ();
    let net = Horus_props.Property.Set.of_numbers (parse_numbers net) in
    let upper = Horus_props.Layer_spec.find_exn l1 in
    let lower = Horus_props.Layer_spec.find_exn l2 in
    Format.printf "%a@." Horus_props.Check.pp_order_verdict
      (Horus_props.Check.order_matters ~net ~upper ~lower)
  in
  Cmd.v
    (Cmd.info "order"
       ~doc:"Does the stacking order of two layers matter? (Section 8)")
    Term.(const run $ net_arg $ l1_arg $ l2_arg)

(* A quick live scenario from the command line: form a group over a
   given stack, push some traffic, crash a member, and report what
   every member saw. *)
let simulate_cmd =
  let spec_arg =
    Arg.(value & opt string "TOTAL:MBRSHIP:FRAG:NAK:COM"
         & info [ "stack" ] ~doc:"Stack spec to run.")
  in
  let n_arg = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Group size.") in
  let crash_arg =
    Arg.(value & flag & info [ "crash" ] ~doc:"Crash the youngest member mid-run.")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"World seed.") in
  let run spec n crash seed =
    let open Horus in
    let world = World.create ~seed () in
    let g = World.fresh_group_addr world in
    let founder = Group.join (Endpoint.create world ~spec) g in
    World.run_for world ~duration:0.3;
    let rest =
      List.init (n - 1) (fun _ ->
          let m = Group.join ~contact:(Group.addr founder) (Endpoint.create world ~spec) g in
          World.run_for world ~duration:0.4;
          m)
    in
    let members = founder :: rest in
    World.run_for world ~duration:2.0;
    List.iteri
      (fun i gr ->
         for k = 0 to 2 do
           World.after world ~delay:(0.01 *. float_of_int k) (fun () ->
               Group.cast gr (Printf.sprintf "m%d-%d" i k))
         done)
      members;
    if crash then
      World.after world ~delay:0.015 (fun () ->
          Endpoint.crash (Group.endpoint (List.nth members (n - 1))));
    World.run_for world ~duration:5.0;
    List.iteri
      (fun i gr ->
         let view =
           match Group.view gr with
           | Some v -> Format.asprintf "%a" View.pp v
           | None -> "(none)"
         in
         Format.printf "member %d: view %s@." i view;
         Format.printf "  delivered (%d): %s@."
           (List.length (Group.casts gr))
           (String.concat " " (Group.casts gr)))
      members
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Run a live group scenario and print what every member saw")
    Term.(const run $ spec_arg $ n_arg $ crash_arg $ seed_arg)

(* Run a group scenario and dump the world's metrics registry — the
   per-layer HCPI crossing counters, the engine's dispatch-delay
   histogram, and the wire stats — as a table or as the same JSON shape
   bench/main.exe --json embeds. *)
let metrics_cmd =
  let spec_arg =
    Arg.(value & opt string "TOTAL:MBRSHIP:FRAG:NAK:COM"
         & info [ "stack" ] ~doc:"Stack spec to run.")
  in
  let n_arg = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Group size.") in
  let casts_arg =
    Arg.(value & opt int 10 & info [ "casts" ] ~doc:"Casts from member 0.")
  in
  let crash_arg =
    Arg.(value & flag & info [ "crash" ] ~doc:"Crash the youngest member mid-run.")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"World seed.") in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the registry as JSON instead of a table.")
  in
  let transport_arg =
    Arg.(value & opt string "sim"
         & info [ "transport" ]
             ~doc:"Attachment to run over: 'sim' (the simulated network) or 'loopback' \
                   (real transport path — frame codec, peer book, backend stats — \
                   in-process; adds a transport.* section).")
  in
  let run spec n casts crash seed json transport =
    let open Horus in
    let world = World.create ~seed () in
    let members =
      match transport with
      | "sim" -> spawn_group world ~spec ~n
      | "loopback" ->
        let hub = Transport.Loopback.hub (World.engine world) in
        let link = Transport_link.create world in
        let peers = Transport.Peers.create () in
        for r = 0 to n - 1 do
          Transport.Peers.add peers ~rank:r ~addr:(Printf.sprintf "mem:%d" r)
        done;
        let ep r =
          Transport_link.endpoint link
            ~backend:(Transport.Loopback.create ~addr:(Printf.sprintf "mem:%d" r) hub)
            ~peers ~rank:r ~spec
        in
        let g = World.fresh_group_addr world in
        let founder = Group.join (ep 0) g in
        let rest =
          List.init (n - 1) (fun i -> Group.join ~contact:(Group.addr founder) (ep (i + 1)) g)
        in
        World.run_for world ~duration:2.0;
        founder :: rest
      | other ->
        Format.eprintf "metrics: unknown transport %S (sim|loopback)@." other;
        exit 2
    in
    let sender = List.hd members in
    for k = 0 to casts - 1 do
      World.after world ~delay:(0.01 *. float_of_int k) (fun () ->
          Group.cast sender (Printf.sprintf "m%d" k))
    done;
    if crash then
      World.after world ~delay:(0.01 *. float_of_int casts) (fun () ->
          Endpoint.crash (Group.endpoint (List.nth members (n - 1))));
    World.run_for world ~duration:3.0;
    if json then print_string (Json.to_string ~indent:true (World.metrics_json world))
    else begin
      ignore (World.metrics_json world);  (* export the wire stats *)
      Format.printf "%a" Metrics.pp (World.metrics world)
    end
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Run a group scenario and dump the world metrics registry (deterministic in the seed)")
    Term.(const run $ spec_arg $ n_arg $ casts_arg $ crash_arg $ seed_arg $ json_arg
          $ transport_arg)

(* Replay a repro file (see lib/check): run the recorded scenario
   twice, check the two runs are byte-identical, report violations, and
   compare the outcome with the one the file recorded. Exit 0 iff the
   replay is deterministic and matches the recorded expectation. *)
let replay_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"Repro file (horus-repro/1 JSON).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Dump the full run result as JSON.")
  in
  let run file json =
    let module C = Horus_check in
    match C.Repro.load file with
    | Error e ->
      Format.eprintf "replay: cannot load %s: %s@." file e;
      exit 2
    | Ok sc ->
      let r1 = C.Runner.run sc in
      let r2 = C.Runner.run sc in
      let s1 = C.Runner.to_string r1 and s2 = C.Runner.to_string r2 in
      if json then print_string s1
      else begin
        Format.printf "scenario: %a@." C.Scenario.pp sc;
        Format.printf "choice points: %d@." r1.C.Runner.r_choice_points;
        (match r1.C.Runner.r_violations with
         | [] -> Format.printf "no invariant violations@."
         | vs ->
           List.iter (fun v -> Format.printf "VIOLATION %a@." C.Invariant.pp_violation v) vs)
      end;
      if s1 <> s2 then begin
        Format.eprintf "replay: NONDETERMINISTIC — two runs of %s differ@." file;
        exit 1
      end;
      let failed = C.Runner.failed r1 in
      if failed <> sc.C.Scenario.expect_violation then begin
        Format.eprintf "replay: outcome mismatch — file expects %s, run %s@."
          (if sc.C.Scenario.expect_violation then "a violation" else "no violation")
          (if failed then "violated the invariants" else "was clean");
        exit 1
      end
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Replay a repro file deterministically and check the recorded outcome")
    Term.(const run $ file_arg $ json_arg)

(* Systematic schedule exploration from the command line — the same
   engine the test suite uses, sized by flags so CI can run it at a
   small depth. Exit 1 when a violation is found. *)
let explore_cmd =
  let spec_arg =
    Arg.(value & opt string "MBRSHIP:FRAG:NAK:COM"
         & info [ "stack" ] ~doc:"Stack spec to explore.")
  in
  let n_arg = Arg.(value & opt int 3 & info [ "n" ] ~doc:"Group size.") in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"World seed.") in
  let casts_arg =
    Arg.(value & opt int 2 & info [ "casts" ] ~doc:"Casts per casting member.")
  in
  let caster_arg =
    Arg.(value & opt (some int) None
         & info [ "caster" ] ~doc:"Restrict traffic to this member (default: everyone).")
  in
  let crash_arg =
    Arg.(value & opt (some int) None
         & info [ "crash" ] ~doc:"Member index to crash mid-traffic.")
  in
  let crash_at_arg =
    Arg.(value & opt float 0.05
         & info [ "crash-at" ] ~doc:"Crash instant, seconds after traffic start.")
  in
  let suspect_arg =
    Arg.(value & opt (some (pair int int)) None
         & info [ "suspect" ] ~docv:"BY,WHOM"
             ~doc:"Explicit suspicion injected just after the crash instant.")
  in
  let link_arg =
    Arg.(value & opt_all (t3 int int float) []
         & info [ "link" ] ~docv:"SRC,DST,LAT"
             ~doc:"Per-link latency override in seconds (repeatable).")
  in
  let depth_arg =
    Arg.(value & opt int 6 & info [ "depth" ] ~doc:"DFS branching depth bound.")
  in
  let max_runs_arg =
    Arg.(value & opt int 200 & info [ "max-runs" ] ~doc:"Run budget.")
  in
  let walks_arg =
    Arg.(value & opt int 0 & info [ "walks" ] ~doc:"Random walks after the DFS.")
  in
  let horizon_arg =
    Arg.(value & opt float 0.002
         & info [ "horizon" ] ~doc:"Chooser window in seconds.")
  in
  let width_arg =
    Arg.(value & opt int 3 & info [ "width" ] ~doc:"Max candidates per choice point.")
  in
  let from_arg =
    Arg.(value & opt float 0.0
         & info [ "from" ]
             ~doc:"Activate the chooser this many seconds after traffic start.")
  in
  let save_arg =
    Arg.(value & opt (some string) None
         & info [ "save" ] ~doc:"Directory to write a repro file into on failure.")
  in
  let run spec n seed casts caster crash crash_at suspect links depth max_runs walks
      horizon width from save =
    let module C = Horus_check in
    let ops =
      List.concat
        (List.init n (fun i ->
             if caster <> None && caster <> Some i then []
             else
               List.init casts (fun k ->
                   { C.Scenario.op_member = i; op_at = 0.02 +. (0.04 *. float_of_int k); op_pad = 0 })))
    in
    let faults =
      (match crash with
       | None -> []
       | Some m -> [ { C.Scenario.f_at = crash_at; f_fault = C.Scenario.Crash m } ])
      @ (match suspect with
         | None -> []
         | Some (a, b) ->
           [ { C.Scenario.f_at = crash_at +. 0.0002; f_fault = C.Scenario.Suspect (a, b) } ])
    in
    let sc =
      C.Scenario.make ~name:(Printf.sprintf "explore-seed%d" seed) ~seed ~links ~ops
        ~faults ~run_for:8.0 ~spec ~n ()
    in
    let config =
      { C.Explore.depth; max_runs; random_walks = walks; horizon; width;
        from_time = from; walk_seed = seed }
    in
    let out = C.Explore.explore ~config sc in
    Format.printf "runs %d, distinct outcomes %d%s@." out.C.Explore.stats.C.Explore.runs
      out.C.Explore.stats.C.Explore.distinct
      (if out.C.Explore.stats.C.Explore.truncated then " (truncated by budget)" else "");
    match out.C.Explore.found with
    | None -> Format.printf "no invariant violation found@."
    | Some (bad, r) ->
      Format.printf "VIOLATION found: %a@." C.Scenario.pp bad;
      List.iter
        (fun v -> Format.printf "  %a@." C.Invariant.pp_violation v)
        r.C.Runner.r_violations;
      (match C.Repro.save ?dir:save { bad with C.Scenario.expect_violation = true } with
       | Some path -> Format.printf "repro written to %s@." path
       | None -> ());
      exit 1
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Systematically explore dispatch schedules of a live stack (exit 1 on violation)")
    Term.(const run $ spec_arg $ n_arg $ seed_arg $ casts_arg $ caster_arg $ crash_arg
          $ crash_at_arg $ suspect_arg $ link_arg $ depth_arg $ max_runs_arg $ walks_arg
          $ horizon_arg $ width_arg $ from_arg $ save_arg)

(* An invariant-checked soak: a long chaos-transport run (lib/check's
   Soak) sized by flags, with the chaos profile given either as knobs
   or as a JSON file. Prints a summary, optionally writes the full
   JSON report, saves a repro on violation, and exits nonzero if any
   invariant broke — the CI chaos gate. *)
let soak_cmd =
  let spec_arg =
    Arg.(value & opt string "TOTAL:MBRSHIP:FRAG:NAK:COM"
         & info [ "stack" ] ~doc:"Stack spec to soak.")
  in
  let n_arg = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Group size.") in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"World + chaos seed.")
  in
  let casts_arg =
    Arg.(value & opt int 1000
         & info [ "casts" ] ~doc:"Cast budget, round-robin across members.")
  in
  let period_arg =
    Arg.(value & opt float 0.005
         & info [ "cast-period" ] ~doc:"Seconds between consecutive casts.")
  in
  let duration_arg =
    Arg.(value & opt float 0.0
         & info [ "duration" ]
             ~doc:"Cap on the traffic phase in virtual seconds (0 = budget only).")
  in
  let check_arg =
    Arg.(value & opt float 0.25
         & info [ "check-every" ]
             ~doc:"Online invariant-check slice in virtual seconds (0 = end only).")
  in
  let drop_arg =
    Arg.(value & opt float 0.0 & info [ "drop" ] ~doc:"Chaos drop probability.")
  in
  let dup_arg =
    Arg.(value & opt float 0.0
         & info [ "duplicate" ] ~doc:"Chaos duplication probability.")
  in
  let reorder_arg =
    Arg.(value & opt float 0.0 & info [ "reorder" ] ~doc:"Chaos reorder probability.")
  in
  let window_arg =
    Arg.(value & opt int 4
         & info [ "reorder-window" ] ~doc:"Sends that may overtake a parked datagram.")
  in
  let delay_arg =
    Arg.(value & opt float 0.0 & info [ "delay" ] ~doc:"Chaos delay probability.")
  in
  let corrupt_arg =
    Arg.(value & opt float 0.0
         & info [ "corrupt" ] ~doc:"Chaos bit-corruption probability.")
  in
  let profile_arg =
    Arg.(value & opt (some file) None
         & info [ "profile" ] ~docv:"FILE"
             ~doc:"Chaos profile JSON file; overrides the individual knobs.")
  in
  let report_arg =
    Arg.(value & opt (some string) None
         & info [ "report" ] ~docv:"FILE" ~doc:"Write the full JSON report here.")
  in
  let save_arg =
    Arg.(value & opt (some string) None
         & info [ "save" ] ~doc:"Directory to write a repro file into on violation.")
  in
  let fastpath_arg =
    Arg.(value & flag
         & info [ "fastpath" ]
             ~doc:"Enable the fused steady-state fast path (outcome-equivalent; \
                   the soak invariants hold either way).")
  in
  let churn_arg =
    Arg.(value & opt int 0
         & info [ "churn" ]
             ~doc:"Membership churn: this many members leave and the same number \
                   of distinct members join late, interleaved across the traffic \
                   span (requires 2*churn < n). Casts come from the stable core.")
  in
  let run spec n seed casts period duration check drop dup reorder window delay corrupt
      profile report save fastpath churn =
    let module C = Horus_check in
    let module Ch = Horus.Transport.Chaos in
    let profile =
      match profile with
      | Some file ->
        let contents =
          let ic = open_in_bin file in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        (match Ch.profile_of_string contents with
         | Ok p -> p
         | Error e ->
           Format.eprintf "soak: cannot load profile %s: %s@." file e;
           exit 2)
      | None ->
        { Ch.default with
          Ch.drop; duplicate = dup; reorder; reorder_window = window; delay; corrupt }
    in
    let config =
      { C.Soak.default_config with
        C.Soak.c_name = Printf.sprintf "soak-seed%d" seed;
        c_spec = spec;
        c_n = n;
        c_seed = seed;
        c_profile = profile;
        c_casts = casts;
        c_cast_period = period;
        c_duration = duration;
        c_check_every = check;
        c_churn = churn }
    in
    let r = C.Soak.run ?repro_dir:save ~fastpath config in
    Format.printf
      "soak %s: %d casts, %d members (%d churned), %d online checks, %.1f virtual seconds@."
      spec r.C.Soak.rp_casts n (2 * churn) r.C.Soak.rp_checks r.C.Soak.rp_elapsed;
    Format.printf "outcome fingerprint %016Lx, metrics fingerprint %016Lx@."
      r.C.Soak.rp_outcome_fingerprint r.C.Soak.rp_metrics_fingerprint;
    List.iter
      (fun (at, v) ->
         Format.printf "ONLINE VIOLATION at %.3f: %a@." at C.Invariant.pp_violation v)
      r.C.Soak.rp_online;
    List.iter
      (fun v -> Format.printf "VIOLATION %a@." C.Invariant.pp_violation v)
      r.C.Soak.rp_final;
    (match r.C.Soak.rp_repro with
     | Some path -> Format.printf "repro written to %s@." path
     | None -> ());
    (match report with
     | Some path ->
       let oc = open_out path in
       Fun.protect
         ~finally:(fun () -> close_out_noerr oc)
         (fun () -> output_string oc (C.Soak.to_string r));
       Format.printf "report written to %s@." path
     | None -> ());
    if C.Soak.ok r then Format.printf "no invariant violations@." else exit 1
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:"Run an invariant-checked chaos soak over the loopback transport \
             (exit 1 on violation)")
    Term.(const run $ spec_arg $ n_arg $ seed_arg $ casts_arg $ period_arg
          $ duration_arg $ check_arg $ drop_arg $ dup_arg $ reorder_arg $ window_arg
          $ delay_arg $ corrupt_arg $ profile_arg $ report_arg $ save_arg
          $ fastpath_arg $ churn_arg)

(* The hierarchical churn soak: HIER sub-groups over multiplexed
   loopback sockets with a live directory service, mass join/leave
   waves, and convergence/nak/directory bounds — the M4 acceptance
   experiment, in virtual time. *)
let churn_cmd =
  let module C = Horus_check in
  let endpoints_arg =
    Arg.(value & opt (some int) None
         & info [ "endpoints" ] ~doc:"Total population across sub-groups.")
  in
  let subgroups_arg =
    Arg.(value & opt (some int) None
         & info [ "subgroups" ] ~doc:"Sub-group count (each gets a HIER stack).")
  in
  let seed_arg =
    Arg.(value & opt (some int) None
         & info [ "seed" ] ~doc:"World seed; the run is a pure function of the \
                                 config and this.")
  in
  let spec_arg =
    Arg.(value & opt (some string) None
         & info [ "stack" ] ~doc:"Sub-group stack below HIER, top first.")
  in
  let waves_arg =
    Arg.(value & opt (some int) None
         & info [ "waves" ] ~doc:"Leave+rejoin churn waves.")
  in
  let fraction_arg =
    Arg.(value & opt (some float) None
         & info [ "fraction" ]
             ~doc:"Youngest fraction of each sub-group churned per wave.")
  in
  let casts_arg =
    Arg.(value & opt (some int) None
         & info [ "casts" ] ~doc:"Parent-group casts per wave.")
  in
  let lease_arg =
    Arg.(value & opt (some float) None
         & info [ "lease" ] ~doc:"Directory lease in virtual seconds.")
  in
  let bound_arg =
    Arg.(value & opt (some float) None
         & info [ "converge-bound" ]
             ~doc:"View-convergence budget per churn phase, virtual seconds.")
  in
  let nak_arg =
    Arg.(value & opt (some int) None
         & info [ "nak-ceiling" ] ~doc:"Whole-run nak.retransmits budget.")
  in
  let ci_arg =
    Arg.(value & flag
         & info [ "ci" ] ~doc:"Start from the bounded CI shape (256 endpoints x \
                               8 sub-groups, 2 waves) instead of the full M4 one.")
  in
  let ungraceful_arg =
    Arg.(value & flag
         & info [ "ungraceful" ]
             ~doc:"Crash-fault campaign (M5): waves kill instead of leave — the \
                   youngest quarter plus coordinators crash without a goodbye, \
                   the directory primary is killed mid-wave, and re-bridging is \
                   held to a bound.")
  in
  let kill_coords_arg =
    Arg.(value & opt (some int) None
         & info [ "kill-coordinators" ]
             ~doc:"Sub-group coordinators killed per ungraceful wave.")
  in
  let rebridge_arg =
    Arg.(value & opt (some float) None
         & info [ "rebridge-bound" ]
             ~doc:"Kill-to-re-bridged budget per beheaded sub-group, virtual \
                   seconds.")
  in
  let replicas_arg =
    Arg.(value & opt (some int) None
         & info [ "replicas" ] ~doc:"Directory backups behind the primary.")
  in
  let kill_dir_arg =
    Arg.(value & opt (some int) None
         & info [ "kill-dir-wave" ]
             ~doc:"Wave whose kills also take the directory primary (-1 never).")
  in
  let double_arg =
    Arg.(value & flag
         & info [ "double-run" ]
             ~doc:"Run twice and require identical fingerprints (the \
                   determinism gate).")
  in
  let report_arg =
    Arg.(value & opt (some string) None
         & info [ "report" ] ~docv:"FILE" ~doc:"Write the full JSON report here.")
  in
  let run endpoints subgroups seed spec waves fraction casts lease bound nak ci
      ungraceful kill_coords rebridge replicas kill_dir double report =
    let base =
      match (ungraceful, ci) with
      | false, false -> C.Churn.default_config
      | false, true -> C.Churn.ci_config
      | true, false -> C.Churn.m5_config
      | true, true -> C.Churn.m5_ci_config
    in
    let dfl v = function Some x -> x | None -> v in
    let config =
      { base with
        C.Churn.h_endpoints = dfl base.C.Churn.h_endpoints endpoints;
        h_subgroups = dfl base.C.Churn.h_subgroups subgroups;
        h_seed = dfl base.C.Churn.h_seed seed;
        h_spec = dfl base.C.Churn.h_spec spec;
        h_waves = dfl base.C.Churn.h_waves waves;
        h_wave_fraction = dfl base.C.Churn.h_wave_fraction fraction;
        h_casts_per_wave = dfl base.C.Churn.h_casts_per_wave casts;
        h_lease = dfl base.C.Churn.h_lease lease;
        h_converge_bound = dfl base.C.Churn.h_converge_bound bound;
        h_nak_ceiling = dfl base.C.Churn.h_nak_ceiling nak;
        h_kill_coordinators =
          dfl base.C.Churn.h_kill_coordinators kill_coords;
        h_rebridge_bound = dfl base.C.Churn.h_rebridge_bound rebridge;
        h_dir_replicas = dfl base.C.Churn.h_dir_replicas replicas;
        h_kill_dir_wave = dfl base.C.Churn.h_kill_dir_wave kill_dir }
    in
    let r = C.Churn.run config in
    Format.printf
      "churn: %d endpoints in %d sub-groups over %d sockets, %d waves, %.1f \
       virtual seconds@."
      r.C.Churn.r_endpoints r.C.Churn.r_subgroups r.C.Churn.r_sockets
      config.C.Churn.h_waves r.C.Churn.r_elapsed;
    List.iter
      (fun w ->
         Format.printf "  wave %d %s: %d members, converged %s@."
           w.C.Churn.w_index w.C.Churn.w_kind w.C.Churn.w_members
           (match w.C.Churn.w_converge with
            | Some t -> Printf.sprintf "in %.2fs" t
            | None -> "NEVER (bound exceeded)"))
      r.C.Churn.r_waves;
    if r.C.Churn.r_killed > 0 then begin
      Format.printf
        "  killed %d endpoints (%d coordinators); re-bridge bound %.2fs@."
        r.C.Churn.r_killed r.C.Churn.r_killed_coordinators
        r.C.Churn.r_rebridge_bound;
      List.iter
        (fun (j, t) -> Format.printf "    sub-group %d re-bridged in %.3fs@." j t)
        r.C.Churn.r_rebridge
    end;
    if r.C.Churn.r_dir_replicas > 0 then
      Format.printf
        "  directory: %d replicas, %d promotions, epoch %d, %d client \
         failovers, %d redirects, %d evictions@."
        r.C.Churn.r_dir_replicas r.C.Churn.r_dir_promotions
        r.C.Churn.r_dir_epoch r.C.Churn.r_dir_failovers
        r.C.Churn.r_dir_redirects r.C.Churn.r_dir_evictions;
    Format.printf
      "  nak.retransmits %d, unknown_gid %d, dir match %b, fingerprint %016Lx@."
      r.C.Churn.r_nak_retransmits r.C.Churn.r_unknown_gid r.C.Churn.r_dir_match
      r.C.Churn.r_fingerprint;
    List.iter (fun v -> Format.printf "VIOLATION: %s@." v) r.C.Churn.r_violations;
    (match report with
     | Some path ->
       let oc = open_out path in
       Fun.protect
         ~finally:(fun () -> close_out_noerr oc)
         (fun () ->
            output_string oc (C.Churn.to_string r);
            output_string oc "\n");
       Format.printf "report written to %s@." path
     | None -> ());
    let ok = ref (C.Churn.ok r) in
    if double then begin
      let r2 = C.Churn.run config in
      if r2.C.Churn.r_fingerprint <> r.C.Churn.r_fingerprint then begin
        Format.printf "DETERMINISM VIOLATION: second run fingerprint %016Lx@."
          r2.C.Churn.r_fingerprint;
        ok := false
      end
      else Format.printf "double run: fingerprints agree@."
    end;
    if !ok then Format.printf "churn soak passed@." else exit 1
  in
  Cmd.v
    (Cmd.info "churn"
       ~doc:"Run the hierarchical churn soak: HIER sub-groups over multiplexed \
             sockets with a directory service (exit 1 on violation)")
    Term.(const run $ endpoints_arg $ subgroups_arg $ seed_arg $ spec_arg
          $ waves_arg $ fraction_arg $ casts_arg $ lease_arg $ bound_arg $ nak_arg
          $ ci_arg $ ungraceful_arg $ kill_coords_arg $ rebridge_arg
          $ replicas_arg $ kill_dir_arg $ double_arg $ report_arg)

(* The property-algebra conformance sweep: synthesize well-formed
   stacks, derive each one's contract, run them under a chaos matrix,
   and check exactly the invariant slice the algebra promises. Exit 1
   when any stack falsifies its contract (each failure ships a shrunk
   repro and a layer-bug vs encoding-bug classification). *)
let conformance_cmd =
  let stacks_arg =
    Arg.(value & opt int 100
         & info [ "stacks" ] ~doc:"Distinct synthesized stacks to sweep.")
  in
  let seed_arg =
    Arg.(value & opt int 11
         & info [ "seed" ] ~doc:"Generator + scenario seed (the sweep is a pure \
                                 function of it).")
  in
  let depth_arg =
    Arg.(value & opt int 5 & info [ "max-depth" ] ~doc:"Max layers per stack.")
  in
  let profiles_arg =
    Arg.(value & opt string "clean,drop,reorder"
         & info [ "profiles" ]
             ~doc:"Comma-separated chaos profiles (clean, drop, reorder).")
  in
  let report_arg =
    Arg.(value & opt (some string) None
         & info [ "report" ] ~docv:"FILE" ~doc:"Write the full JSON report here.")
  in
  let save_arg =
    Arg.(value & opt (some string) None
         & info [ "save" ] ~doc:"Directory for shrunk repro files on violation.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"No per-run progress lines.")
  in
  let run stacks seed depth profiles report save quiet =
    let module C = Horus_check in
    let module P = Horus_props.Property in
    let cf_profiles =
      List.map
        (fun name ->
           match C.Conformance.profile_named name with
           | Some p -> (name, p)
           | None ->
             Format.eprintf "conformance: unknown profile %s (have: %s)@." name
               (String.concat ", " (List.map fst C.Conformance.profiles));
             exit 2)
        (String.split_on_char ',' profiles)
    in
    let cf =
      { C.Conformance.cf_seed = seed;
        cf_stacks = stacks;
        cf_max_depth = depth;
        cf_profiles;
        cf_save = save }
    in
    let progress =
      if quiet then None else Some (fun line -> Format.printf "%s@." line)
    in
    let r = C.Conformance.sweep ?progress cf in
    Format.printf "conformance: %d stacks x %d profiles = %d runs, %d failures@."
      r.C.Conformance.rp_stacks (List.length cf_profiles) r.C.Conformance.rp_runs
      r.C.Conformance.rp_failures;
    Format.printf "sweep fingerprint %016Lx@." r.C.Conformance.rp_fingerprint;
    List.iter
      (fun v ->
         if not (C.Conformance.verdict_ok v) then begin
           Format.printf "FALSIFIED %s under %s (contract %s)@."
             v.C.Conformance.vd_spec v.C.Conformance.vd_profile
             (P.Set.to_string v.C.Conformance.vd_props);
           List.iter
             (fun (p, vs) ->
                Format.printf "  %a: %d violation(s)@." P.pp p (List.length vs);
                List.iter
                  (fun viol -> Format.printf "    %a@." C.Invariant.pp_violation viol)
                  vs)
             v.C.Conformance.vd_violations;
           List.iter
             (fun (_, b) ->
                Format.printf "  %s@." (Horus_props.Contract.classification b))
             v.C.Conformance.vd_blames;
           match v.C.Conformance.vd_repro with
           | Some path -> Format.printf "  repro written to %s@." path
           | None -> ()
         end)
      r.C.Conformance.rp_verdicts;
    (match report with
     | Some path ->
       let oc = open_out path in
       Fun.protect
         ~finally:(fun () -> close_out_noerr oc)
         (fun () ->
            output_string oc
              (Horus_obs.Json.to_string ~indent:true
                 (C.Conformance.report_json r));
            output_string oc "\n");
       Format.printf "report written to %s@." path
     | None -> ());
    if C.Conformance.ok r then Format.printf "all contracts held@." else exit 1
  in
  Cmd.v
    (Cmd.info "conformance"
       ~doc:"Fuzz synthesized stacks against their algebra-derived contracts \
             (exit 1 when a contract is falsified)")
    Term.(const run $ stacks_arg $ seed_arg $ depth_arg $ profiles_arg $ report_arg
          $ save_arg $ quiet_arg)

(* One member of a real multi-OS-process deployment over UDP: bind the
   rank's address from the shared peer book, join the group (rank 0
   founds it, the rest join via rank 0 as contact — MBRSHIP's merge
   retries absorb staggered process startup), cast a paced stream, and
   pump everything with the wall-clock driver until every member's
   casts arrived or the budget runs out. Emits a JSON report (final
   view, delivery sequence, local invariant verdicts, transport stats)
   that scripts/udp_smoke.sh cross-checks across processes. *)
(* Serve the rank directory over real UDP: the membership bootstrap
   for node/ping deployments that have no static peer book. *)
let dir_cmd =
  let bind_arg =
    Arg.(value & opt string "127.0.0.1:7400"
         & info [ "bind" ] ~doc:"Local HOST:PORT to serve on.")
  in
  let max_lease_arg =
    Arg.(value & opt float 30.0
         & info [ "max-lease" ] ~doc:"Ceiling on granted lease durations, seconds.")
  in
  let sweep_arg =
    Arg.(value & opt float 0.5
         & info [ "sweep-period" ] ~doc:"Lease-eviction sweep period, seconds.")
  in
  let duration_arg =
    Arg.(value & opt float 0.0
         & info [ "duration" ]
             ~doc:"Serve this many wall-clock seconds, print stats and exit \
                   (0 = serve until interrupted).")
  in
  let replicas_arg =
    Arg.(value & opt (some string) None
         & info [ "replicas" ] ~docv:"ADDRS"
             ~doc:"Full ordered replica ring as HOST:PORT,HOST:PORT,... \
                   (index 0 the initial primary, the rest the promotion \
                   order). This process serves the slot named by \
                   --replica-index; the others are its peers.")
  in
  let replica_index_arg =
    Arg.(value & opt int 0
         & info [ "replica-index" ] ~docv:"N"
             ~doc:"This process's slot in --replicas (default 0, the primary).")
  in
  let promote_after_arg =
    Arg.(value & opt float 1.5
         & info [ "promote-after" ]
             ~doc:"Promotion stagger slot width, seconds: backup N promotes \
                   after N times this much primary silence.")
  in
  let run bind max_lease sweep_period duration replicas replica_index promote_after =
    let open Horus in
    let module D = Horus_dir in
    let replicas =
      match replicas with
      | None -> []
      | Some s -> String.split_on_char ',' s |> List.map String.trim
                  |> List.filter (fun a -> a <> "")
    in
    (if replicas <> [] && (replica_index < 0 || replica_index >= List.length replicas)
     then begin
       Format.eprintf "dir: --replica-index %d out of range for %d replicas@."
         replica_index (List.length replicas);
       exit 2
     end);
    let engine = Horus_sim.Engine.create () in
    let backend = Transport.Udp.create ~bind () in
    let dir =
      D.Dir_service.create ~sweep_period ~max_lease ~replicas ~replica_index
        ~promote_after ~engine backend
    in
    let driver = Transport.Driver.create engine [ backend ] in
    (match replicas with
     | [] -> Format.printf "directory serving on %s@." (D.Dir_service.addr dir)
     | _ ->
       Format.printf "directory %s on %s (replica %d/%d, epoch %d)@."
         (D.Dir_service.role_string dir) (D.Dir_service.addr dir)
         replica_index (List.length replicas) (D.Dir_service.epoch dir));
    if duration > 0.0 then Transport.Driver.run_for driver ~duration
    else
      while true do
        Transport.Driver.run_for driver ~duration:3600.0
      done;
    let st = D.Dir_service.stats dir in
    Format.printf
      "requests %d, replies %d, notifies %d, evictions %d, errors %d, bad %d@."
      st.D.Dir_service.s_requests st.D.Dir_service.s_replies
      st.D.Dir_service.s_notifies st.D.Dir_service.s_evictions
      st.D.Dir_service.s_errors st.D.Dir_service.s_bad;
    if replicas <> [] then
      Format.printf
        "role %s, epoch %d, deltas out %d in %d, promotions %d, redirects %d, \
         syncs %d@."
        (D.Dir_service.role_string dir) (D.Dir_service.epoch dir)
        st.D.Dir_service.s_deltas_out st.D.Dir_service.s_deltas_in
        st.D.Dir_service.s_promotions st.D.Dir_service.s_redirects
        st.D.Dir_service.s_syncs;
    List.iter
      (fun g ->
         Format.printf "group %d: version %d, %d bindings@." g
           (D.Dir_service.version dir ~group:g)
           (List.length (D.Dir_service.entries dir ~group:g)))
      (D.Dir_service.groups dir);
    D.Dir_service.stop dir;
    backend.Transport.Backend.close ()
  in
  Cmd.v
    (Cmd.info "dir"
       ~doc:"Serve the rank directory over UDP (membership bootstrap for node and \
             ping), optionally as one slot of a primary/backup replica ring")
    Term.(const run $ bind_arg $ max_lease_arg $ sweep_arg $ duration_arg
          $ replicas_arg $ replica_index_arg $ promote_after_arg)

let node_cmd =
  let rank_arg =
    Arg.(required & opt (some int) None
         & info [ "rank" ] ~doc:"This process's rank in the peer book.")
  in
  let peers_arg =
    Arg.(value & opt (some string) None
         & info [ "peers" ] ~docv:"BOOK"
             ~doc:"Static peer book shared by all processes, e.g. \
                   0=127.0.0.1:7001,1=127.0.0.1:7002. Optional when --dir is \
                   given (and the fallback if the directory cannot assemble \
                   the group).")
  in
  let dir_arg =
    Arg.(value & opt (some string) None
         & info [ "dir" ] ~docv:"ADDR"
             ~doc:"Directory service HOST:PORT: register this member and \
                   resolve the peer book dynamically instead of --peers.")
  in
  let bind_addr_arg =
    Arg.(value & opt (some string) None
         & info [ "bind" ]
             ~doc:"Local HOST:PORT when using --dir without a static book \
                   (default 127.0.0.1:0, an ephemeral port).")
  in
  let n_arg =
    Arg.(value & opt (some int) None
         & info [ "n" ]
             ~doc:"Expected membership size when using --dir (defaults to the \
                   static book's size when one is given).")
  in
  let spec_arg =
    Arg.(value & opt string "TOTAL:MBRSHIP:FRAG:NAK:COM"
         & info [ "stack" ] ~doc:"Stack spec.")
  in
  let casts_arg =
    Arg.(value & opt int 1000 & info [ "casts" ] ~doc:"Casts issued by this member.")
  in
  let interval_arg =
    Arg.(value & opt float 0.002 & info [ "interval" ] ~doc:"Seconds between casts.")
  in
  let timeout_arg =
    Arg.(value & opt float 60.0 & info [ "timeout" ] ~doc:"Wall-clock budget in seconds.")
  in
  let run rank peers_s dir_addr bind_s n_opt spec casts interval timeout =
    let open Horus in
    let module I = Horus_check.Invariant in
    let module J = Json in
    let module D = Horus_dir in
    let static =
      match peers_s with
      | None -> None
      | Some s ->
        (match Transport.Peers.parse s with
         | Ok p -> Some p
         | Error e ->
           Format.eprintf "node: %s@." e;
           exit 2)
    in
    if dir_addr = None && static = None then begin
      Format.eprintf "node: need --peers, --dir, or both@.";
      exit 2
    end;
    let n =
      match (n_opt, static) with
      | Some n, _ -> n
      | None, Some p -> Transport.Peers.size p
      | None, None ->
        Format.eprintf "node: --dir without a static book needs --n@.";
        exit 2
    in
    let bind =
      match (static, bind_s) with
      | Some p, _ ->
        (match Transport.Peers.find p ~rank with
         | Some a -> a
         | None ->
           Format.eprintf "node: rank %d not in peer book@." rank;
           exit 2)
      | None, Some b -> b
      | None, None -> "127.0.0.1:0"
    in
    let world = World.create () in
    let backend = Transport.Udp.create ~bind () in
    let link = Transport_link.create world in
    let g = World.fresh_group_addr world in  (* gid 0 in every process *)
    (* Membership bootstrap: with --dir, register this member's socket
       under its rank and poll the listing until the expected
       population is present; the static book (when also given) is the
       fallback if the directory cannot assemble the group in time. *)
    let dir_ctx =
      match dir_addr with
      | None -> None
      | Some da ->
        let host =
          match String.rindex_opt bind ':' with
          | Some i -> String.sub bind 0 i
          | None -> "127.0.0.1"
        in
        let db = Transport.Udp.create ~bind:(host ^ ":0") () in
        let cl =
          D.Dir_client.create ~eid:rank ~engine:(World.engine world) (fun frame ->
              db.Transport.Backend.send ~dest:da frame)
        in
        db.Transport.Backend.set_rx (fun ~src frame ->
            D.Dir_client.rx_frame cl ~src frame);
        Some (db, cl)
    in
    let driver =
      Transport.Driver.create (World.engine world)
        (backend :: (match dir_ctx with Some (db, _) -> [ db ] | None -> []))
    in
    let resolved =
      match dir_ctx with
      | None -> None
      | Some (_, cl) ->
        let stop =
          D.Dir_client.auto_renew cl ~group:(Addr.group_id g) ~rank
            ~addr:backend.Transport.Backend.local_addr ~lease:10.0
        in
        let assembled = ref None in
        let rec poll () =
          D.Dir_client.list_group cl ~group:(Addr.group_id g) (fun r ->
              match r with
              | Ok (_, es) when List.length es >= n -> assembled := Some es
              | _ -> World.after world ~delay:0.25 (fun () -> poll ()))
        in
        poll ();
        ignore
          (Transport.Driver.run_until ~timeout:(timeout /. 4.0) driver (fun () ->
               !assembled <> None));
        (match !assembled with
         | Some es -> Some (D.Dir_client.peers_of es, stop)
         | None ->
           stop ();
           None)
    in
    let peers, source =
      match (resolved, static) with
      | Some (p, _), _ -> (p, "directory")
      | None, Some p ->
        if dir_addr <> None then
          Format.eprintf
            "node: directory did not assemble %d members in time; falling back \
             to the static book@."
            n;
        (p, "static")
      | None, None ->
        Format.eprintf "node: directory unavailable and no --peers fallback@.";
        exit 2
    in
    Format.eprintf "membership source: %s@." source;
    let ep = Transport_link.endpoint link ~backend ~peers ~rank ~spec in
    let contact =
      match Transport.Peers.ranks peers with
      | lowest :: _ when lowest <> rank -> Some (Addr.endpoint lowest)
      | _ -> None
    in
    let gr = Group.join ?contact ~record:false ep g in
    (* Runner-style observations: delivery stream with epochs, views. *)
    let rec_casts = ref [] and rec_views = ref [] and n_casts = ref 0 in
    Group.set_on_up gr (fun ev ->
        match ev with
        | Event.U_cast (_, m, _) ->
          let epoch = match Group.view gr with Some v -> View.ltime v | None -> -1 in
          rec_casts := (Msg.to_string m, epoch) :: !rec_casts;
          incr n_casts
        | Event.U_view v ->
          rec_views :=
            ( (View.ltime v, Addr.endpoint_id (View.coordinator v)),
              List.map Addr.endpoint_id (View.members v) )
            :: !rec_views
        | _ -> ());
    let full_view () =
      match Group.view gr with Some v -> View.size v = n | None -> false
    in
    let formed = Transport.Driver.run_until ~timeout:(timeout /. 2.0) driver full_view in
    if formed then
      for k = 0 to casts - 1 do
        World.after world ~delay:(interval *. float_of_int (k + 1)) (fun () ->
            Group.cast gr (I.payload ~tag:'o' ~origin:rank ~k ()))
      done;
    let expect = n * casts in
    let complete =
      formed && Transport.Driver.run_until ~timeout driver (fun () -> !n_casts >= expect)
    in
    (* Grace period: let peers finish receiving our tail. *)
    Transport.Driver.run_for driver ~duration:0.5;
    let obs =
      { I.o_member = rank;
        o_eid = rank;
        o_crashed = false;
        o_left = false;
        o_exited = Group.exited gr;
        o_casts = List.rev !rec_casts;
        o_views = List.rev !rec_views;
        o_final =
          (match Group.view gr with
           | Some v -> Some (View.ltime v, List.map Addr.endpoint_id (View.members v))
           | None -> None) }
    in
    (* Single-process verdicts; cross-process agreement is the smoke
       script's job (it has both reports). *)
    let violations =
      I.per_origin_fifo ~tag:'o' [ obs ]
      @ I.delivery_in_view ~tag:'o' [ obs ]
      @ (if complete then I.self_delivery ~tag:'o' ~sent:(fun _ -> casts) [ obs ] else [])
    in
    let st = backend.Transport.Backend.stats in
    let out =
      J.Obj
        [ ("rank", J.Int rank);
          ("n", J.Int n);
          ("local_addr", J.String backend.Transport.Backend.local_addr);
          ("membership_source", J.String source);
          ("formed", J.Bool formed);
          ("complete", J.Bool complete);
          ("delivered", J.Int !n_casts);
          ("expected", J.Int expect);
          ( "final_view",
            match Group.view gr with
            | Some v ->
              J.Obj
                [ ("ltime", J.Int (View.ltime v));
                  ( "members",
                    J.List
                      (List.map
                         (fun e -> J.Int (Addr.endpoint_id e))
                         (View.members v)) ) ]
            | None -> J.Null );
          ("casts", J.List (List.rev_map (fun (p, _) -> J.String p) !rec_casts));
          ("violations", I.to_json violations);
          ( "transport",
            J.Obj
              [ ("sent", J.Int st.Transport.Backend.sent);
                ("delivered", J.Int st.Transport.Backend.delivered);
                ("bad_frame", J.Int st.Transport.Backend.bad_frame);
                ("dropped", J.Int st.Transport.Backend.dropped);
                ("send_errors", J.Int st.Transport.Backend.send_errors);
                ("bytes_sent", J.Int st.Transport.Backend.bytes_sent);
                ("bytes_received", J.Int st.Transport.Backend.bytes_received) ] ) ]
    in
    print_string (J.to_string ~indent:true out);
    (* Graceful directory departure: unregister and let the frame out. *)
    (match resolved with
     | Some (_, stop) ->
       stop ();
       Transport.Driver.run_for driver ~duration:0.2
     | None -> ());
    (match dir_ctx with Some (db, _) -> db.Transport.Backend.close () | None -> ());
    backend.Transport.Backend.close ();
    if formed && complete && violations = [] then exit 0 else exit 1
  in
  Cmd.v
    (Cmd.info "node"
       ~doc:"Run one member of a real multi-process UDP deployment (JSON report on stdout)")
    Term.(const run $ rank_arg $ peers_arg $ dir_arg $ bind_addr_arg $ n_arg
          $ spec_arg $ casts_arg $ interval_arg $ timeout_arg)

(* Transport-level reachability: frames over UDP, no protocol stack.
   One side echoes ([--listen]); the other sends numbered pings and
   measures round-trip times. *)
let ping_cmd =
  let bind_arg =
    Arg.(value & opt string "127.0.0.1:0"
         & info [ "bind" ] ~doc:"Local HOST:PORT (port 0 picks an ephemeral port).")
  in
  let listen_arg =
    Arg.(value & flag & info [ "listen" ] ~doc:"Echo frames back instead of pinging.")
  in
  let to_arg =
    Arg.(value & opt (some string) None
         & info [ "to" ] ~docv:"ADDR" ~doc:"Peer to ping (HOST:PORT).")
  in
  let to_rank_arg =
    Arg.(value & opt (some int) None
         & info [ "to-rank" ]
             ~doc:"Peer to ping by rank, resolved via --dir (falling back to \
                   --peers).")
  in
  let dir_ping_arg =
    Arg.(value & opt (some string) None
         & info [ "dir" ] ~docv:"ADDR"
             ~doc:"Directory service HOST:PORT for --to-rank resolution.")
  in
  let peers_ping_arg =
    Arg.(value & opt (some string) None
         & info [ "peers" ] ~docv:"BOOK"
             ~doc:"Static peer book for --to-rank resolution, used when no \
                   directory answers.")
  in
  let group_ping_arg =
    Arg.(value & opt int 0
         & info [ "group" ] ~doc:"Group id for directory rank resolution.")
  in
  let count_arg = Arg.(value & opt int 5 & info [ "count" ] ~doc:"Pings to send.") in
  let timeout_arg =
    Arg.(value & opt float 30.0
         & info [ "timeout" ]
             ~doc:"Wall budget in seconds (listen duration; split across pings).")
  in
  let run bind listen to_ to_rank dir_addr peers_s gid count timeout =
    let open Horus in
    let backend = Transport.Udp.create ~bind () in
    let engine = Horus_sim.Engine.create () in
    let driver = Transport.Driver.create engine [ backend ] in
    let group = Addr.group 0xEC80 in  (* diagnostic frames, outside any real gid *)
    if listen then begin
      Format.printf "listening on %s@." backend.Transport.Backend.local_addr;
      backend.Transport.Backend.set_rx (fun ~src:from frame ->
          match Transport.Frame.decode frame with
          | Ok (_, payload) ->
            backend.Transport.Backend.send ~dest:from
              (Transport.Frame.encode ~src:(Addr.endpoint 1) ~group payload)
          | Error e ->
            Format.eprintf "bad frame from %s: %s@." from
              (Transport.Frame.error_to_string e));
      Transport.Driver.run_for driver ~duration:timeout
    end
    else begin
      (* Destination: an explicit address wins; otherwise resolve the
         rank via the directory, then via the static book — and say
         which one answered. *)
      let dest =
        match (to_, to_rank) with
        | Some a, _ -> a
        | None, None ->
          Format.eprintf "ping: --to or --to-rank required (or use --listen)@.";
          exit 2
        | None, Some r ->
          let module D = Horus_dir in
          let via_dir =
            match dir_addr with
            | None -> None
            | Some da ->
              let answer = ref None in
              let cl =
                D.Dir_client.create ~eid:0 ~engine (fun frame ->
                    backend.Transport.Backend.send ~dest:da frame)
              in
              backend.Transport.Backend.set_rx (fun ~src frame ->
                  D.Dir_client.rx_frame cl ~src frame);
              D.Dir_client.lookup cl ~group:gid ~rank:r (fun res ->
                  answer := Some res);
              ignore
                (Transport.Driver.run_until ~timeout:5.0 driver (fun () ->
                     !answer <> None));
              (match !answer with
               | Some (Ok a) -> Some a
               | Some (Error e) ->
                 Format.eprintf "ping: directory lookup failed: %s@." e;
                 None
               | None -> None)
          in
          (match (via_dir, peers_s) with
           | Some a, _ ->
             Format.printf "resolved rank %d via directory: %s@." r a;
             a
           | None, Some book ->
             (match Transport.Peers.parse book with
              | Ok p ->
                (match Transport.Peers.find p ~rank:r with
                 | Some a ->
                   Format.printf "resolved rank %d via static peer book: %s@." r a;
                   a
                 | None ->
                   Format.eprintf "ping: rank %d not in peer book@." r;
                   exit 2)
              | Error e ->
                Format.eprintf "ping: %s@." e;
                exit 2)
           | None, None ->
             Format.eprintf
               "ping: could not resolve rank %d (no directory answer, no \
                --peers fallback)@."
               r;
             exit 2)
      in
      let got = ref None in
      backend.Transport.Backend.set_rx (fun ~src:_ frame ->
          match Transport.Frame.decode frame with
          | Ok (_, payload) -> got := Some (Bytes.to_string payload)
          | Error _ -> ());
      let rtts = ref [] in
      let lost = ref 0 in
      for i = 1 to count do
        let payload = Printf.sprintf "ping-%d" i in
        got := None;
        let t0 = Unix.gettimeofday () in
        backend.Transport.Backend.send ~dest
          (Transport.Frame.encode ~src:(Addr.endpoint 0) ~group
             (Bytes.of_string payload));
        if
          Transport.Driver.run_until ~timeout:(timeout /. float_of_int count) driver
            (fun () -> !got = Some payload)
        then begin
          let rtt = (Unix.gettimeofday () -. t0) *. 1000.0 in
          rtts := rtt :: !rtts;
          Format.printf "reply from %s: seq=%d time=%.3f ms@." dest i rtt
        end
        else begin
          incr lost;
          Format.printf "timeout: seq=%d@." i
        end
      done;
      (match !rtts with
       | [] -> ()
       | l ->
         let mn = List.fold_left min infinity l
         and mx = List.fold_left max 0.0 l
         and avg = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
         Format.printf "%d/%d replies, rtt min/avg/max = %.3f/%.3f/%.3f ms@."
           (List.length l) count mn avg mx);
      backend.Transport.Backend.close ();
      if !lost > 0 then exit 1
    end
  in
  Cmd.v
    (Cmd.info "ping"
       ~doc:"Transport-level reachability check: echo or ping framed UDP datagrams")
    Term.(const run $ bind_arg $ listen_arg $ to_arg $ to_rank_arg $ dir_ping_arg
          $ peers_ping_arg $ group_ping_arg $ count_arg $ timeout_arg)

let () =
  let doc = "Horus protocol-composition framework: catalogue and property algebra" in
  let info = Cmd.info "horus_info" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ layers_cmd; table3_cmd; table4_cmd; check_cmd; synth_cmd; order_cmd;
            simulate_cmd; metrics_cmd; replay_cmd; explore_cmd; soak_cmd;
            churn_cmd; conformance_cmd; dir_cmd; node_cmd; ping_cmd ]))
