(* Catalogue conformance, in two sweeps.

   Table 3 sweep: for every layer in Table 3, ask the synthesis engine
   for a minimal stack that can host it (over a bare {P1} network),
   then *instantiate and run* that stack in a live 3-member world: the
   group must form, a multicast must reach everyone, and — when the
   stack provides virtual synchrony — survive a crash. This bridges
   the paper's two halves: the property algebra (Section 6) and the
   runtime (Sections 3-5). A row in Table 3 that could not actually
   run would fail here.

   Registry sweep: every layer registered in the HCPI registry (the
   full lib/layers catalogue, including the auxiliary layers outside
   Table 3) must (a) have a property spec in the catalogue, (b) run in
   its synthesized hosting stack, and (c) behave identically with the
   Section 10 inert-layer-skipping optimization on and off —
   skip_inert changes emission paths, never observable behaviour. *)

open Horus
module Layer_spec = Horus_props.Layer_spec
module Search = Horus_props.Search
module P = Horus_props.Property

let p1 = P.Set.of_numbers [ 1 ]

(* The stack that hosts [layer]: the layer itself on top of the
   cheapest provider of its requirements, with COM appended when the
   layer needs nothing from below (every stack bottoms out in the
   network adapter). *)
let hosting_stack (layer : Layer_spec.t) =
  match Search.search ~net:p1 ~required:layer.Layer_spec.requires () with
  | None -> None
  | Some r ->
    let names =
      layer.Layer_spec.name :: List.map (fun (s : Layer_spec.t) -> s.Layer_spec.name) r.Search.layers
    in
    let names = if List.mem "COM" names then names else names @ [ "COM" ] in
    Some (String.concat ":" names)

let has_membership spec_string =
  List.exists
    (fun n -> n = "MBRSHIP" || n = "BMS")
    (Spec.names (Spec.parse spec_string))

let provides_vs (layer : Layer_spec.t) spec_string =
  match
    Horus_props.Check.derive_names ~net:p1 (Spec.names (Spec.parse spec_string))
  with
  | Ok props -> P.Set.mem props P.P9_virtually_synchronous && ignore layer = ()
  | Error _ -> false

(* Run [spec] in a fresh 3-member world: form the group, cast once,
   optionally crash the youngest member, and return what there is to
   observe — per-member deliveries and final views. *)
let run_stack ?(skip_inert = false) ?(crash = false) ~payload spec =
  let world = World.create ~seed:61 () in
  let g = World.fresh_group_addr world in
  let founder = Group.join ~skip_inert (Endpoint.create world ~spec) g in
  World.run_for world ~duration:0.3;
  let rest =
    List.init 2 (fun _ ->
        let m =
          Group.join ~skip_inert ~contact:(Group.addr founder) (Endpoint.create world ~spec) g
        in
        World.run_for world ~duration:0.5;
        m)
  in
  let members = founder :: rest in
  if not (has_membership spec) then begin
    (* No membership layer: install the destination sets by hand. *)
    let v =
      View.create ~group:g ~ltime:0
        ~members:(List.sort Addr.compare_endpoint (List.map Group.addr members))
    in
    List.iter (fun m -> Group.install_view m v) members
  end;
  World.run_for world ~duration:3.0;
  Group.cast founder payload;
  World.run_for world ~duration:3.0;
  if crash then begin
    Endpoint.crash (Group.endpoint (List.nth members 2));
    World.run_for world ~duration:4.0
  end;
  List.map
    (fun gr ->
       ( Group.casts gr,
         match Group.view gr with
         | Some v -> Some (View.ltime v, List.map Addr.endpoint_id (View.members v))
         | None -> None ))
    members

let run_conformance (layer : Layer_spec.t) () =
  match hosting_stack layer with
  | None -> Alcotest.failf "no hosting stack for %s" layer.Layer_spec.name
  | Some spec ->
    (* The synthesized stack must itself be well-formed. *)
    Alcotest.(check bool)
      (Printf.sprintf "%s is well-formed" spec)
      true
      (match Horus_props.Check.derive_names ~net:p1 (Spec.names (Spec.parse spec)) with
       | Ok _ -> true
       | Error _ -> false);
    let obs = run_stack ~crash:(provides_vs layer spec) ~payload:"conformance" spec in
    List.iteri
      (fun i (casts, _) ->
         (* The crashed member (when there is a crash) still delivered
            before crashing — the cast precedes the crash. *)
         Alcotest.(check (list string))
           (Printf.sprintf "%s: member %d delivered" spec i)
           [ "conformance" ] casts)
      obs;
    (* Stacks providing virtual synchrony must also survive the crash:
       both survivors reconfigure to a 2-member view. *)
    if provides_vs layer spec then
      List.iteri
        (fun i (_, final) ->
           if i < 2 then
             Alcotest.(check int)
               (Printf.sprintf "%s: member %d reconfigured to 2" spec i)
               2
               (match final with Some (_, ms) -> List.length ms | None -> 0))
        obs

(* Registry sweep: catalogue coverage plus skip_inert equivalence. *)
let run_registry_conformance (entry : Horus_hcpi.Registry.entry) () =
  match Layer_spec.find entry.Horus_hcpi.Registry.name with
  | None ->
    Alcotest.failf "registered layer %s has no property spec in the catalogue"
      entry.Horus_hcpi.Registry.name
  | Some layer ->
    (match hosting_stack layer with
     | None -> Alcotest.failf "no hosting stack for %s" layer.Layer_spec.name
     | Some spec ->
       let crash = has_membership spec in
       let payload = "conf-" ^ layer.Layer_spec.name in
       let plain = run_stack ~skip_inert:false ~crash ~payload spec in
       let skipped = run_stack ~skip_inert:true ~crash ~payload spec in
       (* Not vacuous: the cast reached every member... *)
       List.iteri
         (fun i (casts, _) ->
            Alcotest.(check (list string))
              (Printf.sprintf "%s: member %d delivered" spec i)
              [ payload ] casts)
         plain;
       (* ...and the optimized run is observation-identical. *)
       List.iteri
         (fun i ((casts, final), (casts', final')) ->
            Alcotest.(check (list string))
              (Printf.sprintf "%s: member %d same deliveries with skip_inert" spec i)
              casts casts';
            Alcotest.(check bool)
              (Printf.sprintf "%s: member %d same final view with skip_inert" spec i)
              true (final = final'))
         (List.combine plain skipped))

(* --- The property-algebra conformance engine (lib/check/conformance) --- *)

module Conf = Horus_check.Conformance
module Contract = Horus_props.Contract

let test_generator_distinct_and_deterministic () =
  let a = Conf.generate ~seed:11 ~count:100 ~max_depth:5 in
  let b = Conf.generate ~seed:11 ~count:100 ~max_depth:5 in
  Alcotest.(check int) "one hundred distinct stacks" 100 (List.length a);
  let specs l = List.map (fun (s : Conf.stack) -> s.Conf.st_spec) l in
  Alcotest.(check (list string)) "same seed, same stacks" (specs a) (specs b);
  Alcotest.(check int) "specs are distinct" 100
    (List.length (List.sort_uniq compare (specs a)));
  List.iter
    (fun (s : Conf.stack) ->
       Alcotest.(check bool)
         (Printf.sprintf "%s is well-formed" s.Conf.st_spec)
         true
         (Horus_props.Check.well_formed ~net:p1 s.Conf.st_layers);
       Alcotest.(check bool)
         (Printf.sprintf "%s has a runnable slice" s.Conf.st_spec)
         true (s.Conf.st_slice <> []);
       (* The slice is exactly the runnable part of the contract. *)
       Alcotest.(check bool)
         (Printf.sprintf "%s slice matches contract" s.Conf.st_spec)
         true
         (List.for_all (fun p -> P.Set.mem s.Conf.st_props p) s.Conf.st_slice))
    a;
  let other = Conf.generate ~seed:12 ~count:100 ~max_depth:5 in
  Alcotest.(check bool) "different seed, different random tail" true
    (specs a <> specs other)

let test_generator_never_stacks_two_membership_layers () =
  (* The conflicts column, end to end: no generated stack carries two
     membership services (the BMS-over-MBRSHIP blackhole). *)
  List.iter
    (fun (s : Conf.stack) ->
       let memb =
         List.filter
           (fun (l : Layer_spec.t) -> l.Layer_spec.name = "MBRSHIP" || l.Layer_spec.name = "BMS")
           s.Conf.st_layers
       in
       Alcotest.(check bool)
         (Printf.sprintf "%s has at most one membership layer" s.Conf.st_spec)
         true
         (List.length memb <= 1))
    (Conf.generate ~seed:3 ~count:100 ~max_depth:5)

let test_bridge_total_over_runnable () =
  (* Every runnable property maps to at least one predicate: on an
     obviously broken run (member 0 sent one cast, nobody delivered
     anything, no views anywhere) each runnable property must fire. *)
  let scenario =
    Horus_check.Scenario.make ~name:"bridge-totality" ~seed:1
      ~ops:[ { Horus_check.Scenario.op_member = 0; op_at = 0.0; op_pad = 0 } ]
      ~spec:"COM" ~n:2 ()
  in
  let broken : Horus_check.Runner.result =
    { Horus_check.Runner.r_scenario = scenario;
      r_obs =
        [ { Horus_check.Invariant.o_member = 0; o_eid = 0; o_crashed = false; o_left = false;
            o_exited = false; o_casts = []; o_views = []; o_final = None };
          { Horus_check.Invariant.o_member = 1; o_eid = 1; o_crashed = false; o_left = false;
            o_exited = false;
            o_casts = [ ("o0-0x7", 0); ("o0-001", 0) ];
            o_views = [ ((0, 0), [ 1 ]) ];
            o_final = Some (0, [ 1 ]) };
        ];
      r_violations = [];
      r_choice_points = 0;
      r_arities = [];
      r_taken = [] }
  in
  let props = P.Set.of_numbers [ 3; 4; 5; 6; 9; 12; 15 ] in
  List.iter
    (fun p ->
       Alcotest.(check bool)
         (Format.asprintf "%a fires on the broken run" P.pp p)
         true
         (Conf.check_property ~props broken p <> []))
    Contract.runnable;
  (* Non-runnable properties map to the empty slice, not an error. *)
  Alcotest.(check int) "non-runnable is silent" 0
    (List.length (Conf.check_property ~props broken P.P2_prioritized))

let test_blame_classification () =
  (* A property provided by a layer: blame names the provider. *)
  let layers = List.map Layer_spec.find_exn [ "TOTAL"; "MBRSHIP"; "FRAG"; "NAK"; "COM" ] in
  let b = Contract.blame ~net:p1 layers P.P6_total_order in
  Alcotest.(check (list string)) "P6 blames TOTAL" [ "TOTAL" ] b.Contract.b_providers;
  Alcotest.(check bool) "not from the net" false b.Contract.b_from_net;
  Alcotest.(check bool) "classification mentions TOTAL" true
    (let s = Contract.classification b in
     let rec has i =
       i + 5 <= String.length s && (String.sub s i 5 = "TOTAL" || has (i + 1))
     in
     has 0);
  (* A property nobody provides: an encoding bug in the harness. *)
  let b = Contract.blame ~net:p1 layers P.P2_prioritized in
  Alcotest.(check (list string)) "P2 has no provider" [] b.Contract.b_providers

let test_mini_sweep_deterministic () =
  (* A bounded end-to-end sweep: a handful of stacks under the clean
     profile, twice; verdicts all pass and the report fingerprint is
     bit-identical. *)
  let cf =
    { Conf.cf_seed = 7; cf_stacks = 6; cf_max_depth = 4;
      cf_profiles = [ ("clean", Horus_transport.Chaos.default) ]; cf_save = None }
  in
  let r1 = Conf.sweep cf in
  let r2 = Conf.sweep cf in
  Alcotest.(check int) "six stacks" 6 r1.Conf.rp_stacks;
  Alcotest.(check int) "six runs" 6 r1.Conf.rp_runs;
  Alcotest.(check int) "no failures" 0 r1.Conf.rp_failures;
  Alcotest.(check bool) "report ok" true (Conf.ok r1);
  Alcotest.(check int64) "double-run fingerprints agree" r1.Conf.rp_fingerprint
    r2.Conf.rp_fingerprint

let () =
  Horus_layers.Init.register_all ();
  let table3_cases =
    List.map
      (fun (layer : Layer_spec.t) ->
         Alcotest.test_case
           (Printf.sprintf "%s in its synthesized stack" layer.Layer_spec.name)
           `Quick (run_conformance layer))
      Layer_spec.table3
  in
  let registry_cases =
    List.map
      (fun (entry : Horus_hcpi.Registry.entry) ->
         Alcotest.test_case
           (Printf.sprintf "%s: runs, and skip_inert is equivalent"
              entry.Horus_hcpi.Registry.name)
           `Quick (run_registry_conformance entry))
      (Horus_hcpi.Registry.all ())
  in
  Alcotest.run "conformance"
    [ ("table3", table3_cases);
      ("registry", registry_cases);
      ( "engine",
        [ Alcotest.test_case "generator: 100 distinct, deterministic, well-formed" `Quick
            test_generator_distinct_and_deterministic;
          Alcotest.test_case "generator respects the conflicts column" `Quick
            test_generator_never_stacks_two_membership_layers;
          Alcotest.test_case "bridge covers every runnable property" `Quick
            test_bridge_total_over_runnable;
          Alcotest.test_case "blame classifies provider vs encoding" `Quick
            test_blame_classification;
          Alcotest.test_case "mini sweep: clean, deterministic" `Quick
            test_mini_sweep_deterministic ] ) ]
