(* Catalogue conformance, in two sweeps.

   Table 3 sweep: for every layer in Table 3, ask the synthesis engine
   for a minimal stack that can host it (over a bare {P1} network),
   then *instantiate and run* that stack in a live 3-member world: the
   group must form, a multicast must reach everyone, and — when the
   stack provides virtual synchrony — survive a crash. This bridges
   the paper's two halves: the property algebra (Section 6) and the
   runtime (Sections 3-5). A row in Table 3 that could not actually
   run would fail here.

   Registry sweep: every layer registered in the HCPI registry (the
   full lib/layers catalogue, including the auxiliary layers outside
   Table 3) must (a) have a property spec in the catalogue, (b) run in
   its synthesized hosting stack, and (c) behave identically with the
   Section 10 inert-layer-skipping optimization on and off —
   skip_inert changes emission paths, never observable behaviour. *)

open Horus
module Layer_spec = Horus_props.Layer_spec
module Search = Horus_props.Search
module P = Horus_props.Property

let p1 = P.Set.of_numbers [ 1 ]

(* The stack that hosts [layer]: the layer itself on top of the
   cheapest provider of its requirements, with COM appended when the
   layer needs nothing from below (every stack bottoms out in the
   network adapter). *)
let hosting_stack (layer : Layer_spec.t) =
  match Search.search ~net:p1 ~required:layer.Layer_spec.requires () with
  | None -> None
  | Some r ->
    let names =
      layer.Layer_spec.name :: List.map (fun (s : Layer_spec.t) -> s.Layer_spec.name) r.Search.layers
    in
    let names = if List.mem "COM" names then names else names @ [ "COM" ] in
    Some (String.concat ":" names)

let has_membership spec_string =
  List.exists
    (fun n -> n = "MBRSHIP" || n = "BMS")
    (Spec.names (Spec.parse spec_string))

let provides_vs (layer : Layer_spec.t) spec_string =
  match
    Horus_props.Check.derive_names ~net:p1 (Spec.names (Spec.parse spec_string))
  with
  | Ok props -> P.Set.mem props P.P9_virtually_synchronous && ignore layer = ()
  | Error _ -> false

(* Run [spec] in a fresh 3-member world: form the group, cast once,
   optionally crash the youngest member, and return what there is to
   observe — per-member deliveries and final views. *)
let run_stack ?(skip_inert = false) ?(crash = false) ~payload spec =
  let world = World.create ~seed:61 () in
  let g = World.fresh_group_addr world in
  let founder = Group.join ~skip_inert (Endpoint.create world ~spec) g in
  World.run_for world ~duration:0.3;
  let rest =
    List.init 2 (fun _ ->
        let m =
          Group.join ~skip_inert ~contact:(Group.addr founder) (Endpoint.create world ~spec) g
        in
        World.run_for world ~duration:0.5;
        m)
  in
  let members = founder :: rest in
  if not (has_membership spec) then begin
    (* No membership layer: install the destination sets by hand. *)
    let v =
      View.create ~group:g ~ltime:0
        ~members:(List.sort Addr.compare_endpoint (List.map Group.addr members))
    in
    List.iter (fun m -> Group.install_view m v) members
  end;
  World.run_for world ~duration:3.0;
  Group.cast founder payload;
  World.run_for world ~duration:3.0;
  if crash then begin
    Endpoint.crash (Group.endpoint (List.nth members 2));
    World.run_for world ~duration:4.0
  end;
  List.map
    (fun gr ->
       ( Group.casts gr,
         match Group.view gr with
         | Some v -> Some (View.ltime v, List.map Addr.endpoint_id (View.members v))
         | None -> None ))
    members

let run_conformance (layer : Layer_spec.t) () =
  match hosting_stack layer with
  | None -> Alcotest.failf "no hosting stack for %s" layer.Layer_spec.name
  | Some spec ->
    (* The synthesized stack must itself be well-formed. *)
    Alcotest.(check bool)
      (Printf.sprintf "%s is well-formed" spec)
      true
      (match Horus_props.Check.derive_names ~net:p1 (Spec.names (Spec.parse spec)) with
       | Ok _ -> true
       | Error _ -> false);
    let obs = run_stack ~crash:(provides_vs layer spec) ~payload:"conformance" spec in
    List.iteri
      (fun i (casts, _) ->
         (* The crashed member (when there is a crash) still delivered
            before crashing — the cast precedes the crash. *)
         Alcotest.(check (list string))
           (Printf.sprintf "%s: member %d delivered" spec i)
           [ "conformance" ] casts)
      obs;
    (* Stacks providing virtual synchrony must also survive the crash:
       both survivors reconfigure to a 2-member view. *)
    if provides_vs layer spec then
      List.iteri
        (fun i (_, final) ->
           if i < 2 then
             Alcotest.(check int)
               (Printf.sprintf "%s: member %d reconfigured to 2" spec i)
               2
               (match final with Some (_, ms) -> List.length ms | None -> 0))
        obs

(* Registry sweep: catalogue coverage plus skip_inert equivalence. *)
let run_registry_conformance (entry : Horus_hcpi.Registry.entry) () =
  match Layer_spec.find entry.Horus_hcpi.Registry.name with
  | None ->
    Alcotest.failf "registered layer %s has no property spec in the catalogue"
      entry.Horus_hcpi.Registry.name
  | Some layer ->
    (match hosting_stack layer with
     | None -> Alcotest.failf "no hosting stack for %s" layer.Layer_spec.name
     | Some spec ->
       let crash = has_membership spec in
       let payload = "conf-" ^ layer.Layer_spec.name in
       let plain = run_stack ~skip_inert:false ~crash ~payload spec in
       let skipped = run_stack ~skip_inert:true ~crash ~payload spec in
       (* Not vacuous: the cast reached every member... *)
       List.iteri
         (fun i (casts, _) ->
            Alcotest.(check (list string))
              (Printf.sprintf "%s: member %d delivered" spec i)
              [ payload ] casts)
         plain;
       (* ...and the optimized run is observation-identical. *)
       List.iteri
         (fun i ((casts, final), (casts', final')) ->
            Alcotest.(check (list string))
              (Printf.sprintf "%s: member %d same deliveries with skip_inert" spec i)
              casts casts';
            Alcotest.(check bool)
              (Printf.sprintf "%s: member %d same final view with skip_inert" spec i)
              true (final = final'))
         (List.combine plain skipped))

let () =
  Horus_layers.Init.register_all ();
  let table3_cases =
    List.map
      (fun (layer : Layer_spec.t) ->
         Alcotest.test_case
           (Printf.sprintf "%s in its synthesized stack" layer.Layer_spec.name)
           `Quick (run_conformance layer))
      Layer_spec.table3
  in
  let registry_cases =
    List.map
      (fun (entry : Horus_hcpi.Registry.entry) ->
         Alcotest.test_case
           (Printf.sprintf "%s: runs, and skip_inert is equivalent"
              entry.Horus_hcpi.Registry.name)
           `Quick (run_registry_conformance entry))
      (Horus_hcpi.Registry.all ())
  in
  Alcotest.run "conformance"
    [ ("table3", table3_cases); ("registry", registry_cases) ]
