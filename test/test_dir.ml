(* The directory service under virtual time: lease expiry and
   eviction, re-registration, clean errors for unknown ranks, and
   deterministic change-notification ordering — the semantics the
   hierarchical deployment leans on for membership bootstrap. *)

module T = Horus_transport
module D = Horus_dir

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* One service plus [n] clients, each on its own loopback socket. *)
let fabric ?(n = 1) ?sweep_period ?(seed = 11) () =
  let world = Horus.World.create ~seed () in
  let engine = Horus.World.engine world in
  let hub = T.Loopback.hub ~latency:0.0005 engine in
  let dir_backend = T.Loopback.create ~addr:"dir" hub in
  let dir = D.Dir_service.create ?sweep_period ~engine dir_backend in
  let clients =
    List.init n (fun i ->
        let b = T.Loopback.create ~addr:(Printf.sprintf "cl:%d" i) hub in
        let cl =
          D.Dir_client.create ~eid:(100 + i) ~engine (fun frame ->
              b.T.Backend.send ~dest:(D.Dir_service.addr dir) frame)
        in
        b.T.Backend.set_rx (fun ~src frame -> D.Dir_client.rx_frame cl ~src frame);
        cl)
  in
  (world, dir, clients)

let run world d = Horus.World.run_for world ~duration:d

(* A binding registered with a short lease and never renewed is
   evicted by the sweep; lookups then fail cleanly and subscribers see
   the removal. *)
let lease_expiry_evicts () =
  let world, dir, clients = fabric ~sweep_period:0.1 () in
  let cl = List.hd clients in
  let registered = ref None in
  D.Dir_client.subscribe cl ~group:7 (fun _ -> ());
  D.Dir_client.register cl ~group:7 ~rank:3 ~addr:"mem:0" ~lease:0.5 (fun r ->
      registered := Some r);
  run world 0.1;
  (match !registered with
   | Some (Ok (version, expires)) ->
     Alcotest.(check bool) "version bumped" true (version >= 1);
     Alcotest.(check bool) "expiry in the future" true
       (expires > Horus.World.now world)
   | Some (Error e) -> Alcotest.failf "register failed: %s" e
   | None -> Alcotest.fail "register never answered");
  Alcotest.(check int) "binding live" 1
    (List.length (D.Dir_service.entries dir ~group:7));
  (* Outlive the lease with no renewal. *)
  run world 1.0;
  Alcotest.(check int) "binding evicted" 0
    (List.length (D.Dir_service.entries dir ~group:7));
  Alcotest.(check int) "eviction counted" 1 (D.Dir_service.stats dir).D.Dir_service.s_evictions;
  (* The subscriber saw the removal as a notify with no address. *)
  Alcotest.(check bool) "removal notified" true
    ((D.Dir_client.stats cl).D.Dir_client.c_notifies >= 2);
  let looked = ref None in
  D.Dir_client.lookup cl ~group:7 ~rank:3 (fun r -> looked := Some r);
  run world 0.1;
  match !looked with
  | Some (Error e) ->
    Alcotest.(check bool) "unknown-rank error" true (contains e "unknown-rank")
  | Some (Ok a) -> Alcotest.failf "evicted binding still resolves to %s" a
  | None -> Alcotest.fail "lookup never answered"

(* Re-registration after expiry restores the binding at a strictly
   higher directory version (the version is a change counter, not a
   membership count). *)
let re_registration () =
  let world, dir, clients = fabric ~sweep_period:0.1 () in
  let cl = List.hd clients in
  D.Dir_client.register cl ~group:9 ~rank:1 ~addr:"mem:4" ~lease:0.3 (fun _ -> ());
  run world 0.1;
  let v1 = D.Dir_service.version dir ~group:9 in
  run world 1.0;
  Alcotest.(check int) "lapsed" 0 (List.length (D.Dir_service.entries dir ~group:9));
  let again = ref None in
  D.Dir_client.register cl ~group:9 ~rank:1 ~addr:"mem:5" ~lease:5.0 (fun r ->
      again := Some r);
  run world 0.1;
  (match !again with
   | Some (Ok (v2, _)) ->
     Alcotest.(check bool) "version strictly advanced" true (v2 > v1)
   | Some (Error e) -> Alcotest.failf "re-register failed: %s" e
   | None -> Alcotest.fail "re-register never answered");
  match D.Dir_service.entries dir ~group:9 with
  | [ (1, "mem:5", _) ] -> ()
  | es -> Alcotest.failf "unexpected entries (%d)" (List.length es)

(* Unknown rank and unknown group answer with typed errors, not
   timeouts. *)
let unknown_rank_error () =
  let world, _dir, clients = fabric () in
  let cl = List.hd clients in
  D.Dir_client.register cl ~group:2 ~rank:0 ~addr:"mem:0" ~lease:5.0 (fun _ -> ());
  run world 0.1;
  let r1 = ref None and r2 = ref None in
  D.Dir_client.lookup cl ~group:2 ~rank:99 (fun r -> r1 := Some r);
  D.Dir_client.lookup cl ~group:424242 ~rank:0 (fun r -> r2 := Some r);
  run world 0.1;
  (match !r1 with
   | Some (Error e) ->
     Alcotest.(check bool) "unknown-rank" true (contains e "unknown-rank")
   | Some (Ok _) -> Alcotest.fail "bogus rank resolved"
   | None -> Alcotest.fail "rank lookup never answered");
  match !r2 with
  | Some (Error e) ->
    Alcotest.(check bool) "unknown-group" true (contains e "unknown-group")
  | Some (Ok _) -> Alcotest.fail "bogus group resolved"
  | None -> Alcotest.fail "group lookup never answered"

(* Two subscribers observe the same mutation stream in the same order,
   and a second world with the same seed reproduces it byte for byte —
   notification order is part of the deterministic surface. *)
let notification_ordering () =
  let observe () =
    let world, _dir, clients = fabric ~n:2 () in
    let logs = List.map (fun _ -> ref []) clients in
    List.iter2
      (fun cl log ->
         D.Dir_client.on_notify cl (fun ~group ~version ~rank ~addr ->
             log :=
               Printf.sprintf "g%d v%d r%d %s" group version rank
                 (Option.value addr ~default:"-")
               :: !log);
         D.Dir_client.subscribe cl ~group:5 (fun _ -> ()))
      clients logs;
    Horus.World.run_for world ~duration:0.1;
    let cl = List.hd clients in
    (* A burst of mutations in one engine turn: registrations landing
       on ranks out of order, then an unregister. *)
    List.iter
      (fun (rank, addr) ->
         D.Dir_client.register cl ~group:5 ~rank ~addr ~lease:5.0 (fun _ -> ()))
      [ (3, "mem:3"); (1, "mem:1"); (2, "mem:2") ];
    Horus.World.run_for world ~duration:0.2;
    D.Dir_client.unregister cl ~group:5 ~rank:1 (fun _ -> ());
    Horus.World.run_for world ~duration:0.2;
    List.map (fun log -> List.rev !log) logs
  in
  match observe () with
  | [ a; b ] ->
    Alcotest.(check (list string)) "both subscribers, same order" a b;
    Alcotest.(check int) "all four mutations seen" 4 (List.length a);
    (match observe () with
     | [ a'; _ ] ->
       Alcotest.(check (list string)) "same world seed, same stream" a a'
     | _ -> assert false)
  | _ -> assert false

let () =
  Alcotest.run "dir"
    [ ( "service",
        [ Alcotest.test_case "lease expiry evicts" `Quick lease_expiry_evicts;
          Alcotest.test_case "re-registration after expiry" `Quick re_registration;
          Alcotest.test_case "unknown rank/group are clean errors" `Quick
            unknown_rank_error;
          Alcotest.test_case "deterministic notification ordering" `Quick
            notification_ordering ] ) ]
