(* The directory service under virtual time: lease expiry and
   eviction, re-registration, clean errors for unknown ranks, and
   deterministic change-notification ordering — the semantics the
   hierarchical deployment leans on for membership bootstrap. *)

module T = Horus_transport
module D = Horus_dir

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* One service plus [n] clients, each on its own loopback socket. *)
let fabric ?(n = 1) ?(latency = 0.0005) ?sweep_period ?(seed = 11) () =
  let world = Horus.World.create ~seed () in
  let engine = Horus.World.engine world in
  let hub = T.Loopback.hub ~latency engine in
  let dir_backend = T.Loopback.create ~addr:"dir" hub in
  let dir = D.Dir_service.create ?sweep_period ~engine dir_backend in
  let clients =
    List.init n (fun i ->
        let b = T.Loopback.create ~addr:(Printf.sprintf "cl:%d" i) hub in
        let cl =
          D.Dir_client.create ~eid:(100 + i) ~engine (fun frame ->
              b.T.Backend.send ~dest:(D.Dir_service.addr dir) frame)
        in
        b.T.Backend.set_rx (fun ~src frame -> D.Dir_client.rx_frame cl ~src frame);
        cl)
  in
  (world, dir, clients)

let run world d = Horus.World.run_for world ~duration:d

(* A binding registered with a short lease and never renewed is
   evicted by the sweep; lookups then fail cleanly and subscribers see
   the removal. *)
let lease_expiry_evicts () =
  let world, dir, clients = fabric ~sweep_period:0.1 () in
  let cl = List.hd clients in
  let registered = ref None in
  D.Dir_client.subscribe cl ~group:7 (fun _ -> ());
  D.Dir_client.register cl ~group:7 ~rank:3 ~addr:"mem:0" ~lease:0.5 (fun r ->
      registered := Some r);
  run world 0.1;
  (match !registered with
   | Some (Ok (version, expires)) ->
     Alcotest.(check bool) "version bumped" true (version >= 1);
     Alcotest.(check bool) "expiry in the future" true
       (expires > Horus.World.now world)
   | Some (Error e) -> Alcotest.failf "register failed: %s" e
   | None -> Alcotest.fail "register never answered");
  Alcotest.(check int) "binding live" 1
    (List.length (D.Dir_service.entries dir ~group:7));
  (* Outlive the lease with no renewal. *)
  run world 1.0;
  Alcotest.(check int) "binding evicted" 0
    (List.length (D.Dir_service.entries dir ~group:7));
  Alcotest.(check int) "eviction counted" 1 (D.Dir_service.stats dir).D.Dir_service.s_evictions;
  (* The subscriber saw the removal as a notify with no address. *)
  Alcotest.(check bool) "removal notified" true
    ((D.Dir_client.stats cl).D.Dir_client.c_notifies >= 2);
  let looked = ref None in
  D.Dir_client.lookup cl ~group:7 ~rank:3 (fun r -> looked := Some r);
  run world 0.1;
  match !looked with
  | Some (Error e) ->
    Alcotest.(check bool) "unknown-rank error" true (contains e "unknown-rank")
  | Some (Ok a) -> Alcotest.failf "evicted binding still resolves to %s" a
  | None -> Alcotest.fail "lookup never answered"

(* Re-registration after expiry restores the binding at a strictly
   higher directory version (the version is a change counter, not a
   membership count). *)
let re_registration () =
  let world, dir, clients = fabric ~sweep_period:0.1 () in
  let cl = List.hd clients in
  D.Dir_client.register cl ~group:9 ~rank:1 ~addr:"mem:4" ~lease:0.3 (fun _ -> ());
  run world 0.1;
  let v1 = D.Dir_service.version dir ~group:9 in
  run world 1.0;
  Alcotest.(check int) "lapsed" 0 (List.length (D.Dir_service.entries dir ~group:9));
  let again = ref None in
  D.Dir_client.register cl ~group:9 ~rank:1 ~addr:"mem:5" ~lease:5.0 (fun r ->
      again := Some r);
  run world 0.1;
  (match !again with
   | Some (Ok (v2, _)) ->
     Alcotest.(check bool) "version strictly advanced" true (v2 > v1)
   | Some (Error e) -> Alcotest.failf "re-register failed: %s" e
   | None -> Alcotest.fail "re-register never answered");
  match D.Dir_service.entries dir ~group:9 with
  | [ (1, "mem:5", _) ] -> ()
  | es -> Alcotest.failf "unexpected entries (%d)" (List.length es)

(* Unknown rank and unknown group answer with typed errors, not
   timeouts. *)
let unknown_rank_error () =
  let world, _dir, clients = fabric () in
  let cl = List.hd clients in
  D.Dir_client.register cl ~group:2 ~rank:0 ~addr:"mem:0" ~lease:5.0 (fun _ -> ());
  run world 0.1;
  let r1 = ref None and r2 = ref None in
  D.Dir_client.lookup cl ~group:2 ~rank:99 (fun r -> r1 := Some r);
  D.Dir_client.lookup cl ~group:424242 ~rank:0 (fun r -> r2 := Some r);
  run world 0.1;
  (match !r1 with
   | Some (Error e) ->
     Alcotest.(check bool) "unknown-rank" true (contains e "unknown-rank")
   | Some (Ok _) -> Alcotest.fail "bogus rank resolved"
   | None -> Alcotest.fail "rank lookup never answered");
  match !r2 with
  | Some (Error e) ->
    Alcotest.(check bool) "unknown-group" true (contains e "unknown-group")
  | Some (Ok _) -> Alcotest.fail "bogus group resolved"
  | None -> Alcotest.fail "group lookup never answered"

(* Two subscribers observe the same mutation stream in the same order,
   and a second world with the same seed reproduces it byte for byte —
   notification order is part of the deterministic surface. *)
let notification_ordering () =
  let observe () =
    let world, _dir, clients = fabric ~n:2 () in
    let logs = List.map (fun _ -> ref []) clients in
    List.iter2
      (fun cl log ->
         D.Dir_client.on_notify cl (fun ~group ~version ~rank ~addr ->
             log :=
               Printf.sprintf "g%d v%d r%d %s" group version rank
                 (Option.value addr ~default:"-")
               :: !log);
         D.Dir_client.subscribe cl ~group:5 (fun _ -> ()))
      clients logs;
    Horus.World.run_for world ~duration:0.1;
    let cl = List.hd clients in
    (* A burst of mutations in one engine turn: registrations landing
       on ranks out of order, then an unregister. *)
    List.iter
      (fun (rank, addr) ->
         D.Dir_client.register cl ~group:5 ~rank ~addr ~lease:5.0 (fun _ -> ()))
      [ (3, "mem:3"); (1, "mem:1"); (2, "mem:2") ];
    Horus.World.run_for world ~duration:0.2;
    D.Dir_client.unregister cl ~group:5 ~rank:1 (fun _ -> ());
    Horus.World.run_for world ~duration:0.2;
    List.map (fun log -> List.rev !log) logs
  in
  match observe () with
  | [ a; b ] ->
    Alcotest.(check (list string)) "both subscribers, same order" a b;
    Alcotest.(check int) "all four mutations seen" 4 (List.length a);
    (match observe () with
     | [ a'; _ ] ->
       Alcotest.(check (list string)) "same world seed, same stream" a a'
     | _ -> assert false)
  | _ -> assert false

(* The renewal/sweep race, pinned at the boundary with exact dyadic
   times (zero loopback latency, power-of-two periods, so no float
   drift): the binding expires exactly on a sweep tick and the renew
   arrives at that same engine instant. One tick from eviction, the
   renew must win — the sweep's strict comparison leaves the boundary
   instant to the renewal, whichever of the two runs first. *)
let renew_at_sweep_boundary () =
  let world, dir, clients = fabric ~latency:0.0 ~sweep_period:0.0625 () in
  let cl = List.hd clients in
  let renewed = ref None in
  D.Dir_client.register cl ~group:3 ~rank:1 ~addr:"mem:1" ~lease:0.25 (fun _ -> ());
  Horus.World.at world ~time:0.25 (fun () ->
      D.Dir_client.renew cl ~group:3 ~rank:1 ~lease:0.25 (fun r -> renewed := Some r));
  run world 0.3;
  (match !renewed with
   | Some (Ok expires) ->
     Alcotest.(check bool) "lease extended past the boundary" true (expires > 0.25)
   | Some (Error e) -> Alcotest.failf "boundary renew refused: %s" e
   | None -> Alcotest.fail "boundary renew never answered");
  Alcotest.(check int) "binding kept" 1
    (List.length (D.Dir_service.entries dir ~group:3));
  Alcotest.(check int) "no eviction" 0
    (D.Dir_service.stats dir).D.Dir_service.s_evictions;
  (* With no further renewal the binding then lapses normally. *)
  run world 0.4;
  Alcotest.(check int) "then lapses" 0
    (List.length (D.Dir_service.entries dir ~group:3));
  Alcotest.(check int) "exactly one eviction" 1
    (D.Dir_service.stats dir).D.Dir_service.s_evictions

(* The same race as a property: any renewal schedule whose gaps stay
   within the lease keeps the binding alive against any sweep cadence
   (gap = 1.0 exercises the exact boundary above), and once renewals
   stop the binding is evicted exactly once. *)
let renewal_interleaving_prop =
  QCheck.Test.make ~name:"in-lease renewals always beat the sweep" ~count:30
    QCheck.(
      triple (float_range 0.2 1.0) (float_range 0.02 0.3)
        (list_of_size Gen.(int_range 1 12) (float_range 0.05 1.0)))
    (fun (lease, sweep_period, gaps) ->
       let world, dir, clients = fabric ~latency:0.0 ~sweep_period () in
       let cl = List.hd clients in
       D.Dir_client.register cl ~group:4 ~rank:9 ~addr:"mem:9" ~lease (fun _ -> ());
       let t = ref 0.0 in
       List.iter
         (fun gap ->
            t := !t +. (gap *. lease);
            Horus.World.at world ~time:!t (fun () ->
                D.Dir_client.renew cl ~group:4 ~rank:9 ~lease (fun _ -> ())))
         gaps;
       run world (!t +. 0.01);
       let kept =
         List.length (D.Dir_service.entries dir ~group:4) = 1
         && (D.Dir_service.stats dir).D.Dir_service.s_evictions = 0
       in
       run world (lease +. sweep_period +. 0.01);
       kept
       && List.length (D.Dir_service.entries dir ~group:4) = 0
       && (D.Dir_service.stats dir).D.Dir_service.s_evictions = 1)

(* --- replication --- *)

(* The replicated fabric: primary + [backups] in promotion order on
   their own sockets, [n] clients that know the whole ring. *)
let replicated_fabric ?(n = 1) ?(backups = 2) ?(promote_after = 0.4)
    ?(sweep_period = 0.1) ?(seed = 11) () =
  let world = Horus.World.create ~seed () in
  let engine = Horus.World.engine world in
  let hub = T.Loopback.hub ~latency:0.0005 engine in
  let addrs =
    List.init (backups + 1) (fun i ->
        if i = 0 then "dir" else Printf.sprintf "dir:%d" i)
  in
  let bks = List.map (fun a -> T.Loopback.create ~addr:a hub) addrs in
  let dirs =
    List.mapi
      (fun i b ->
         D.Dir_service.create ~sweep_period ~replicas:addrs ~replica_index:i
           ~promote_after ~engine b)
      bks
  in
  let clients =
    List.init n (fun i ->
        let b = T.Loopback.create ~addr:(Printf.sprintf "cl:%d" i) hub in
        let send a frame = b.T.Backend.send ~dest:a frame in
        let cl =
          D.Dir_client.create ~eid:(100 + i) ~engine
            ~backups:(List.map send (List.tl addrs))
            (send (List.hd addrs))
        in
        b.T.Backend.set_rx (fun ~src frame -> D.Dir_client.rx_frame cl ~src frame);
        cl)
  in
  (world, Array.of_list dirs, Array.of_list bks, clients, hub)

let strip es = List.map (fun (r, a, _) -> (r, a)) es

(* Every mutation the primary applies streams to the backups: bindings,
   versions and removals mirror within a delta's flight time. *)
let replication_mirrors_state () =
  let world, dirs, _bks, clients, _hub = replicated_fabric () in
  let cl = List.hd clients in
  List.iter
    (fun (rank, addr) ->
       D.Dir_client.register cl ~group:7 ~rank ~addr ~lease:5.0 (fun _ -> ()))
    [ (1, "mem:1"); (2, "mem:2"); (3, "mem:3") ];
  run world 0.3;
  Alcotest.(check string) "primary serving" "primary"
    (D.Dir_service.role_string dirs.(0));
  Alcotest.(check string) "backup waiting" "backup"
    (D.Dir_service.role_string dirs.(1));
  Alcotest.(check int) "three bindings" 3
    (List.length (D.Dir_service.entries dirs.(0) ~group:7));
  for i = 1 to 2 do
    Alcotest.(check (list (pair int string)))
      (Printf.sprintf "backup %d mirrors the bindings" i)
      (strip (D.Dir_service.entries dirs.(0) ~group:7))
      (strip (D.Dir_service.entries dirs.(i) ~group:7));
    Alcotest.(check int)
      (Printf.sprintf "backup %d mirrors the version" i)
      (D.Dir_service.version dirs.(0) ~group:7)
      (D.Dir_service.version dirs.(i) ~group:7)
  done;
  D.Dir_client.unregister cl ~group:7 ~rank:2 (fun _ -> ());
  run world 0.3;
  Alcotest.(check (list (pair int string))) "removal replicated"
    [ (1, "mem:1"); (3, "mem:3") ]
    (strip (D.Dir_service.entries dirs.(1) ~group:7))

(* A backup that starts (or restarts) behind the delta stream detects
   the sequence gap and catches up from a full snapshot. *)
let late_backup_catches_up () =
  let world = Horus.World.create ~seed:11 () in
  let engine = Horus.World.engine world in
  let hub = T.Loopback.hub ~latency:0.0005 engine in
  let addrs = [ "dir"; "dir:1" ] in
  let b0 = T.Loopback.create ~addr:"dir" hub in
  let d0 =
    D.Dir_service.create ~sweep_period:0.1 ~replicas:addrs ~replica_index:0
      ~engine b0
  in
  let cb = T.Loopback.create ~addr:"cl:0" hub in
  let send a frame = cb.T.Backend.send ~dest:a frame in
  let cl =
    D.Dir_client.create ~eid:100 ~engine ~backups:[ send "dir:1" ] (send "dir")
  in
  cb.T.Backend.set_rx (fun ~src frame -> D.Dir_client.rx_frame cl ~src frame);
  (* Mutations stream into the void: the backup's socket is not even
     bound yet, so the early deltas are dropped on the floor. *)
  List.iter
    (fun rank ->
       D.Dir_client.register cl ~group:7 ~rank
         ~addr:(Printf.sprintf "mem:%d" rank) ~lease:5.0 (fun _ -> ()))
    [ 1; 2; 3 ];
  run world 0.3;
  let b1 = T.Loopback.create ~addr:"dir:1" hub in
  let d1 =
    D.Dir_service.create ~sweep_period:0.1 ~replicas:addrs ~replica_index:1
      ~engine b1
  in
  (* The next delta (or heartbeat) shows the gap; one sync round
     rebuilds the backup from the primary's snapshot. *)
  D.Dir_client.register cl ~group:7 ~rank:4 ~addr:"mem:4" ~lease:5.0 (fun _ -> ());
  run world 0.5;
  Alcotest.(check (list (pair int string))) "backup caught up"
    (strip (D.Dir_service.entries d0 ~group:7))
    (strip (D.Dir_service.entries d1 ~group:7));
  Alcotest.(check int) "four bindings" 4
    (List.length (D.Dir_service.entries d1 ~group:7));
  Alcotest.(check bool) "a snapshot was served" true
    ((D.Dir_service.stats d0).D.Dir_service.s_syncs >= 1)

(* Kill the primary without a goodbye: the senior backup promotes
   after its silence slot under a fresh epoch, the junior one stands
   down at the first new-epoch heartbeat, and a client request issued
   into the outage completes by failover — one paid retry budget, no
   lost state, and the next request goes straight to the new
   primary. *)
let promotion_and_failover () =
  let world, dirs, bks, clients, _hub = replicated_fabric () in
  let cl = List.hd clients in
  D.Dir_client.register cl ~group:7 ~rank:3 ~addr:"mem:0" ~lease:20.0 (fun _ -> ());
  run world 0.3;
  D.Dir_service.stop dirs.(0);
  bks.(0).T.Backend.close ();
  run world 1.0;
  Alcotest.(check string) "senior backup promoted" "primary"
    (D.Dir_service.role_string dirs.(1));
  Alcotest.(check string) "junior backup stood down" "backup"
    (D.Dir_service.role_string dirs.(2));
  Alcotest.(check int) "fresh incarnation" 1 (D.Dir_service.epoch dirs.(1));
  let got = ref None in
  D.Dir_client.lookup cl ~group:7 ~rank:3 (fun r -> got := Some r);
  run world 5.0;
  (match !got with
   | Some (Ok addr) -> Alcotest.(check string) "state survived" "mem:0" addr
   | Some (Error e) -> Alcotest.failf "lookup failed across failover: %s" e
   | None -> Alcotest.fail "lookup never answered");
  let s = D.Dir_client.stats cl in
  Alcotest.(check bool) "failover paid in retries" true
    (s.D.Dir_client.c_failovers >= 1);
  (* Sticky: the next request costs exactly one send. *)
  let sent0 = s.D.Dir_client.c_sent in
  let reg = ref None in
  D.Dir_client.register cl ~group:7 ~rank:9 ~addr:"mem:9" ~lease:5.0 (fun r ->
      reg := Some r);
  run world 0.3;
  (match !reg with
   | Some (Ok _) -> ()
   | Some (Error e) -> Alcotest.failf "post-failover register failed: %s" e
   | None -> Alcotest.fail "post-failover register never answered");
  Alcotest.(check int) "straight to the new primary" (sent0 + 1)
    s.D.Dir_client.c_sent;
  Alcotest.(check (list (pair int string))) "new primary holds both"
    [ (3, "mem:0"); (9, "mem:9") ]
    (strip (D.Dir_service.entries dirs.(1) ~group:7))

(* A request that lands on a live backup is redirected, not timed out:
   Not_primary advances the client to the next replica immediately. *)
let backup_redirects_to_primary () =
  let world, dirs, _bks, clients, hub = replicated_fabric () in
  ignore clients;
  let engine = Horus.World.engine world in
  let b = T.Loopback.create ~addr:"cl:9" hub in
  let send a frame = b.T.Backend.send ~dest:a frame in
  (* This client's ring starts at a backup. *)
  let cl =
    D.Dir_client.create ~eid:199 ~engine ~backups:[ send "dir" ] (send "dir:1")
  in
  b.T.Backend.set_rx (fun ~src frame -> D.Dir_client.rx_frame cl ~src frame);
  let got = ref None in
  D.Dir_client.register cl ~group:5 ~rank:1 ~addr:"mem:1" ~lease:5.0 (fun r ->
      got := Some r);
  run world 0.3;
  (match !got with
   | Some (Ok _) -> ()
   | Some (Error e) -> Alcotest.failf "redirected register failed: %s" e
   | None -> Alcotest.fail "redirected register never answered");
  Alcotest.(check int) "one redirect honoured" 1
    (D.Dir_client.stats cl).D.Dir_client.c_redirects;
  Alcotest.(check int) "binding on the primary" 1
    (List.length (D.Dir_service.entries dirs.(0) ~group:5));
  Alcotest.(check int) "redirect counted service-side" 1
    (D.Dir_service.stats dirs.(1)).D.Dir_service.s_redirects

let () =
  Alcotest.run "dir"
    [ ( "service",
        [ Alcotest.test_case "lease expiry evicts" `Quick lease_expiry_evicts;
          Alcotest.test_case "re-registration after expiry" `Quick re_registration;
          Alcotest.test_case "unknown rank/group are clean errors" `Quick
            unknown_rank_error;
          Alcotest.test_case "deterministic notification ordering" `Quick
            notification_ordering;
          Alcotest.test_case "renew at the sweep boundary keeps the binding"
            `Quick renew_at_sweep_boundary;
          QCheck_alcotest.to_alcotest renewal_interleaving_prop ] );
      ( "replication",
        [ Alcotest.test_case "deltas mirror state to backups" `Quick
            replication_mirrors_state;
          Alcotest.test_case "late backup catches up from a snapshot" `Quick
            late_backup_catches_up;
          Alcotest.test_case "promotion and transparent client failover" `Quick
            promotion_and_failover;
          Alcotest.test_case "backup redirects to the primary" `Quick
            backup_redirects_to_primary ] ) ]
