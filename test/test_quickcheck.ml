(* Property-based tests across the substrates: views, stack specs,
   run-length encoding, the event engine, and the property algebra.
   Complements the per-module suites with randomized invariants. *)

let unique_ids =
  (* Sorted, de-duplicated non-empty id lists. *)
  QCheck.map
    (fun l -> List.sort_uniq Int.compare (List.map abs l))
    QCheck.(list_of_size Gen.(1 -- 12) (int_bound 1000))

(* --- View --- *)

let view_of ids gid =
  Horus_hcpi.View.create ~group:(Horus_msg.Addr.group gid) ~ltime:0
    ~members:(List.map Horus_msg.Addr.endpoint ids)

let prop_view_rank_roundtrip =
  QCheck.Test.make ~name:"view: rank_of (nth i) = i" ~count:300 unique_ids (fun ids ->
      match ids with
      | [] -> true
      | _ ->
        let v = view_of ids 0 in
        List.for_all
          (fun i ->
             Horus_hcpi.View.rank_of v (Horus_hcpi.View.nth v i) = Some i)
          (List.init (Horus_hcpi.View.size v) (fun i -> i)))

let prop_view_wire_roundtrip =
  QCheck.Test.make ~name:"view: wire push/pop roundtrip" ~count:300 unique_ids (fun ids ->
      match ids with
      | [] -> true
      | _ ->
        let v = view_of ids 3 in
        let m = Horus_msg.Msg.create "" in
        Horus_hcpi.View.push m v;
        let v' = Horus_hcpi.View.pop m in
        Horus_hcpi.View.members v' = Horus_hcpi.View.members v
        && Horus_hcpi.View.equal_id (Horus_hcpi.View.id v') (Horus_hcpi.View.id v))

let prop_view_successor =
  QCheck.Test.make ~name:"view: successor drops failed, keeps order, bumps ltime" ~count:300
    QCheck.(pair unique_ids unique_ids)
    (fun (ids, failed_ids) ->
       match ids with
       | [] -> true
       | _ ->
         let v = view_of ids 0 in
         let failed = List.map Horus_msg.Addr.endpoint failed_ids in
         (match Horus_hcpi.View.successor v ~failed ~joiners:[] with
          | None ->
            (* everyone failed *)
            List.for_all (fun i -> List.mem i failed_ids) ids
          | Some v' ->
            Horus_hcpi.View.ltime v' = Horus_hcpi.View.ltime v + 1
            && List.for_all
                 (fun m ->
                    not (List.exists (Horus_msg.Addr.equal_endpoint m) failed))
                 (Horus_hcpi.View.members v')
            (* survivors keep their relative order *)
            && (let survivors =
                  List.filter
                    (fun m -> not (List.exists (Horus_msg.Addr.equal_endpoint m) failed))
                    (Horus_hcpi.View.members v)
                in
                survivors = Horus_hcpi.View.members v')))

(* --- Spec --- *)

let layer_name =
  QCheck.Gen.(
    map
      (fun (c, rest) -> String.make 1 c ^ rest)
      (pair (char_range 'A' 'Z')
         (string_size ~gen:(char_range 'A' 'Z') (0 -- 6))))

let spec_gen =
  QCheck.Gen.(
    list_size (1 -- 6)
      (pair layer_name
         (list_size (0 -- 3)
            (pair (string_size ~gen:(char_range 'a' 'z') (1 -- 5))
               (map string_of_int (0 -- 999))))))

let spec_arb = QCheck.make spec_gen

let prop_spec_roundtrip =
  QCheck.Test.make ~name:"spec: to_string . parse = id" ~count:500 spec_arb (fun layers ->
      let s =
        String.concat ":"
          (List.map
             (fun (name, params) ->
                match params with
                | [] -> name
                | kvs ->
                  name ^ "(" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
                  ^ ")")
             layers)
      in
      let parsed = Horus_hcpi.Spec.parse s in
      Horus_hcpi.Spec.to_string parsed = s
      && Horus_hcpi.Spec.names parsed = List.map fst layers)

(* --- RLE --- *)

let prop_rle_roundtrip =
  QCheck.Test.make ~name:"rle: decode . encode = id" ~count:500
    QCheck.(string_of_size Gen.(0 -- 500))
    (fun s ->
       let b = Bytes.of_string s in
       Bytes.to_string (Horus_layers.Rle.decode (Horus_layers.Rle.encode b)) = s)

let prop_rle_compresses_runs =
  QCheck.Test.make ~name:"rle: long runs shrink" ~count:100
    QCheck.(pair (make Gen.(char_range 'a' 'z')) (int_range 10 400))
    (fun (c, n) ->
       let b = Bytes.make n c in
       Bytes.length (Horus_layers.Rle.encode b) < n)

(* --- Engine --- *)

let prop_engine_fires_in_time_order =
  QCheck.Test.make ~name:"engine: events fire in time order" ~count:300
    QCheck.(list_of_size Gen.(0 -- 40) (int_bound 10_000))
    (fun delays ->
       let e = Horus_sim.Engine.create () in
       let fired = ref [] in
       List.iter
         (fun d ->
            let at = float_of_int d /. 1000.0 in
            ignore (Horus_sim.Engine.schedule e ~delay:at (fun () -> fired := at :: !fired)))
         delays;
       Horus_sim.Engine.run e;
       let order = List.rev !fired in
       order = List.sort Float.compare order
       && List.length order = List.length delays)

(* --- property algebra --- *)

let propset = QCheck.map Horus_props.Property.Set.of_numbers QCheck.(list (int_range 1 16))

let layer_row =
  QCheck.map
    (fun (r, (p, i)) ->
       { Horus_props.Layer_spec.name = "X";
         requires = r;
         provides = p;
         inherits = i;
         conflicts = Horus_props.Property.Set.empty;
         cost = 1 })
    (QCheck.pair propset (QCheck.pair propset propset))

let prop_step_output_bounded =
  QCheck.Test.make ~name:"check: step output ⊆ provides ∪ below" ~count:500
    (QCheck.pair propset layer_row)
    (fun (below, row) ->
       match Horus_props.Check.step below row with
       | Error _ -> true
       | Ok above ->
         Horus_props.Property.Set.subset above
           (Horus_props.Property.Set.union row.Horus_props.Layer_spec.provides below))

let prop_step_includes_provides =
  QCheck.Test.make ~name:"check: step output ⊇ provides" ~count:500
    (QCheck.pair propset layer_row)
    (fun (below, row) ->
       match Horus_props.Check.step below row with
       | Error _ -> true
       | Ok above ->
         Horus_props.Property.Set.subset row.Horus_props.Layer_spec.provides above)

let prop_search_cost_no_worse_than_enumeration =
  QCheck.Test.make ~name:"search: minimal among enumerated stacks" ~count:50
    QCheck.(list_of_size Gen.(1 -- 2) (int_range 1 16))
    (fun req_n ->
       let net = Horus_props.Property.Set.of_numbers [ 1 ] in
       let required = Horus_props.Property.Set.of_numbers req_n in
       match Horus_props.Search.search ~net ~required () with
       | None ->
         (* then no enumerated stack may satisfy it either *)
         Horus_props.Search.enumerate ~net ~required ~max_depth:4 () = []
       | Some r ->
         let enumerated = Horus_props.Search.enumerate ~net ~required ~max_depth:4 () in
         List.for_all
           (fun stack -> Horus_props.Check.total_cost stack >= r.Horus_props.Search.cost)
           enumerated)

(* --- Compact headers (Section 10, remedy 3) --- *)

module Compact = Horus_msg.Compact

(* A random layout: field i is ("L<i>", "f") with a random width, so
   (layer, name) pairs are unique by construction; each field comes
   with a random candidate value. *)
let compact_fields =
  QCheck.(list_of_size Gen.(1 -- 12) (pair (int_range 1 64) int64))

let layout_of fields =
  Compact.layout
    (List.mapi
       (fun i (bits, _) ->
          Compact.field ~layer:("L" ^ string_of_int i) ~name:"f" ~bits)
       fields)

let mask bits v =
  if bits >= 64 then v else Int64.logand v (Int64.sub (Int64.shift_left 1L bits) 1L)

let prop_compact_set_get =
  QCheck.Test.make ~name:"compact: write all slots, read all back (no slot overlap)"
    ~count:300 compact_fields
    (fun fields ->
       let lay = layout_of fields in
       let b = Compact.alloc lay in
       (* Write every slot first, then read every slot: a get only
          survives if no later set clobbered its bits. *)
       List.iteri (fun i (bits, v) -> Compact.set lay b ~slot:i (mask bits v)) fields;
       List.for_all
         (fun (i, (bits, v)) -> Compact.get lay b ~slot:i = mask bits v)
         (List.mapi (fun i f -> (i, f)) fields))

let prop_compact_tight =
  QCheck.Test.make ~name:"compact: layout is bit-tight and never beats padding"
    ~count:300 compact_fields
    (fun fields ->
       let lay = layout_of fields in
       let decl =
         List.mapi
           (fun i (bits, _) ->
              Compact.field ~layer:("L" ^ string_of_int i) ~name:"f" ~bits)
           fields
       in
       let bits = List.fold_left (fun acc (b, _) -> acc + b) 0 fields in
       Compact.total_bits lay = bits
       && Compact.total_bytes lay = ((bits + 7) / 8)
       && Compact.slot_count lay = List.length fields
       && Compact.padded_bytes decl >= Compact.total_bytes lay)

let prop_compact_find =
  QCheck.Test.make ~name:"compact: find returns the declaration slot" ~count:300
    compact_fields
    (fun fields ->
       let lay = layout_of fields in
       List.for_all
         (fun i -> Compact.find lay ~layer:("L" ^ string_of_int i) ~name:"f" = i)
         (List.init (List.length fields) (fun i -> i)))

let prop_compact_bits_roundtrip =
  QCheck.Test.make ~name:"compact: write_bits/read_bits roundtrip at any offset"
    ~count:500
    QCheck.(triple (int_range 0 100) (int_range 1 64) int64)
    (fun (bit_offset, bits, v) ->
       let b = Bytes.make 32 '\255' in
       Compact.write_bits b ~bit_offset ~bits (mask bits v);
       Compact.read_bits b ~bit_offset ~bits = mask bits v)

(* --- Msg splitting --- *)

let prop_msg_split_rejoin =
  QCheck.Test.make ~name:"msg: split_off + append = id" ~count:300
    QCheck.(pair (string_of_size Gen.(1 -- 200)) small_nat)
    (fun (s, k) ->
       let m = Horus_msg.Msg.create s in
       let k = k mod (String.length s + 1) in
       let tail = Horus_msg.Msg.split_off m k in
       Horus_msg.Msg.append m (Horus_msg.Msg.to_bytes tail);
       Horus_msg.Msg.to_string m = s)

let () =
  Alcotest.run "quickcheck"
    [ ( "view",
        [ QCheck_alcotest.to_alcotest prop_view_rank_roundtrip;
          QCheck_alcotest.to_alcotest prop_view_wire_roundtrip;
          QCheck_alcotest.to_alcotest prop_view_successor ] );
      ( "spec",
        [ QCheck_alcotest.to_alcotest prop_spec_roundtrip ] );
      ( "rle",
        [ QCheck_alcotest.to_alcotest prop_rle_roundtrip;
          QCheck_alcotest.to_alcotest prop_rle_compresses_runs ] );
      ( "engine",
        [ QCheck_alcotest.to_alcotest prop_engine_fires_in_time_order ] );
      ( "algebra",
        [ QCheck_alcotest.to_alcotest prop_step_output_bounded;
          QCheck_alcotest.to_alcotest prop_step_includes_provides;
          QCheck_alcotest.to_alcotest prop_search_cost_no_worse_than_enumeration ] );
      ( "compact",
        [ QCheck_alcotest.to_alcotest prop_compact_set_get;
          QCheck_alcotest.to_alcotest prop_compact_tight;
          QCheck_alcotest.to_alcotest prop_compact_find;
          QCheck_alcotest.to_alcotest prop_compact_bits_roundtrip ] );
      ( "msg",
        [ QCheck_alcotest.to_alcotest prop_msg_split_rejoin ] ) ]
