(* The fused fast path (Section 10): equivalence and unit tests.

   The contract under test is that [~fastpath:true] is purely an
   optimization — fused and unfused runs of the same scenario produce
   identical outcome fingerprints, including scenarios that force
   mid-stream fallback (chaos drops trigger NAK repair, crashes
   trigger flushes and view changes). On top of the equivalence
   sweeps, a live-world test asserts the path actually engages (the
   equivalence would otherwise be vacuous) and is invalidated and
   recompiled across a view change; unit tests pin down the buffer
   pool's accounting and — via quickcheck — that the segment-list
   encoding is byte-for-byte the blit encoding. *)

open Horus
module Runner = Horus_check.Runner
module Repro = Horus_check.Repro
module Metrics = Horus_obs.Metrics
module Msg = Horus_msg.Msg
module Pool = Horus_msg.Pool
module Seg = Horus_msg.Seg

(* --- fused/unfused fingerprint equivalence over committed repros --- *)

(* Every repro under test/repros/ replays under both paths to the same
   outcome fingerprint. The chaos repros are the interesting rows:
   their drop/partition schedules force the fused path to fall back
   mid-stream (NAK repair, reconfiguration), and the fallback must
   leave no observable trace. *)
let repro_equivalence_case (path, loaded) =
  Alcotest.test_case path `Slow (fun () ->
      match loaded with
      | Error e -> Alcotest.fail (Printf.sprintf "%s does not load: %s" path e)
      | Ok sc ->
        let slow = Runner.run sc in
        let fast = Runner.run ~fastpath:true sc in
        Alcotest.(check bool)
          (Printf.sprintf "%s: same failure status" path)
          (Runner.failed slow) (Runner.failed fast);
        Alcotest.(check bool)
          (Printf.sprintf "%s: fused/unfused fingerprints agree" path)
          true
          (Int64.equal (Runner.fingerprint slow) (Runner.fingerprint fast)))

(* The explorer itself, fused vs unfused: searching the figure-2
   straggler race must take the same path through the schedule tree
   (same runs, same distinct fingerprints) and concretize the same
   counterexample — the fast path changes no outcome on any of the
   dozens of schedules the search visits. *)
let test_explorer_equivalence () =
  let module Explore = Horus_check.Explore in
  let module Scenario = Horus_check.Scenario in
  match Repro.load "repros/figure2-straggler.json" with
  | Error e -> Alcotest.fail ("figure2 repro does not load: " ^ e)
  | Ok sc ->
    let config =
      { Explore.horizon = 0.002;
        width = 5;
        from_time = 0.0199;
        depth = 8;
        max_runs = 120;
        random_walks = 0;
        walk_seed = 1 }
    in
    let slow = Explore.explore ~config sc in
    let fast = Explore.explore ~config ~fastpath:true sc in
    Alcotest.(check int) "same number of schedules explored"
      slow.Explore.stats.Explore.runs fast.Explore.stats.Explore.runs;
    Alcotest.(check int) "same distinct outcome fingerprints"
      slow.Explore.stats.Explore.distinct fast.Explore.stats.Explore.distinct;
    let choices out =
      match out.Explore.found with
      | None -> None
      | Some (cex, _) ->
        Option.map (fun s -> s.Scenario.s_choices) cex.Scenario.sched
    in
    Alcotest.(check bool) "explorer found the race both ways" true
      (choices slow <> None && choices fast <> None);
    Alcotest.(check bool) "same concretized counterexample schedule" true
      (choices slow = choices fast)

(* --- live world: the path engages, falls back, recompiles --- *)

let canonical = "TOTAL:MBRSHIP:FRAG:NAK:COM"

(* Form a 3-member group, cast three times in steady state (these
   should fuse), crash the youngest (the reconfiguration invalidates
   the compiled path), cast once more (recompile), and return what
   there is to observe plus the world for its metrics. *)
let run_world ~fastpath =
  let world = World.create ~seed:61 () in
  let g = World.fresh_group_addr world in
  let founder = Group.join ~fastpath (Endpoint.create world ~spec:canonical) g in
  World.run_for world ~duration:0.3;
  let rest =
    List.init 2 (fun _ ->
        let m =
          Group.join ~fastpath ~contact:(Group.addr founder)
            (Endpoint.create world ~spec:canonical) g
        in
        World.run_for world ~duration:0.5;
        m)
  in
  let members = founder :: rest in
  World.run_for world ~duration:3.0;
  List.iter
    (fun p ->
       Group.cast founder p;
       World.run_for world ~duration:0.5)
    [ "one"; "two"; "three" ];
  Endpoint.crash (Group.endpoint (List.nth members 2));
  World.run_for world ~duration:4.0;
  Group.cast founder "four";
  World.run_for world ~duration:2.0;
  let obs =
    List.map
      (fun gr ->
         ( Group.casts gr,
           match Group.view gr with
           | Some v ->
             Some (View.ltime v, List.map Addr.endpoint_id (View.members v))
           | None -> None ))
      members
  in
  (obs, world)

let test_view_change_equivalence () =
  let slow, _ = run_world ~fastpath:false in
  let fast, world = run_world ~fastpath:true in
  Alcotest.(check (list (list string)))
    "same deliveries at every member"
    (List.map fst slow) (List.map fst fast);
  Alcotest.(check bool) "same final views" true
    (List.map snd slow = List.map snd fast);
  List.iteri
    (fun i (casts, _) ->
       if i < 2 then
         Alcotest.(check (list string))
           (Printf.sprintf "survivor %d saw every cast" i)
           [ "one"; "two"; "three"; "four" ] casts)
    fast;
  (* The equivalence above must not be vacuous: the steady-state casts
     really ran fused, the view change invalidated a live path, and
     the post-reconfiguration cast recompiled it. *)
  let count name = Metrics.count (Metrics.counter (World.metrics world) name) in
  Alcotest.(check bool)
    (Printf.sprintf "steady-state casts fused (%d)" (count "fastpath.send_fused"))
    true
    (count "fastpath.send_fused" >= 3);
  Alcotest.(check bool)
    (Printf.sprintf "remote deliveries fused (%d)" (count "fastpath.deliver_fused"))
    true
    (count "fastpath.deliver_fused" > 0);
  Alcotest.(check bool)
    (Printf.sprintf "view change invalidated a live path (%d)"
       (count "fastpath.invalidations"))
    true
    (count "fastpath.invalidations" >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "path recompiled after the view change (%d)"
       (count "fastpath.compiles"))
    true
    (count "fastpath.compiles" >= 2)

(* Off by default: a plain run must not touch the fast path at all. *)
let test_fastpath_off_by_default () =
  let _, world = (fun () -> run_world ~fastpath:false) () in
  let count name = Metrics.count (Metrics.counter (World.metrics world) name) in
  Alcotest.(check int) "no fused sends" 0 (count "fastpath.send_fused");
  Alcotest.(check int) "no compiles" 0 (count "fastpath.compiles")

(* --- buffer pool accounting --- *)

let test_pool_reuse () =
  let p = Pool.create ~block:8 ~limit:2 () in
  let b1 = Pool.acquire p in
  Alcotest.(check int) "blocks are block-sized" 8 (Bytes.length b1);
  Alcotest.(check int) "first acquire misses" 1 (Pool.misses p);
  Pool.release p b1;
  Alcotest.(check int) "released block retained" 1 (Pool.in_pool p);
  let b2 = Pool.acquire p in
  Alcotest.(check bool) "the same block comes back" true (b2 == b1);
  Alcotest.(check int) "second acquire hits" 1 (Pool.hits p);
  Alcotest.(check int) "free list drained" 0 (Pool.in_pool p)

let test_pool_limits () =
  let p = Pool.create ~block:8 ~limit:2 () in
  let bs = List.init 3 (fun _ -> Pool.acquire p) in
  List.iter (Pool.release p) bs;
  Alcotest.(check int) "free list capped at limit" 2 (Pool.in_pool p);
  Alcotest.(check int) "overflow release discarded" 1 (Pool.discards p);
  Pool.release p (Bytes.create 16);
  Alcotest.(check int) "foreign-size release discarded" 2 (Pool.discards p);
  Alcotest.(check int) "foreign size never pooled" 2 (Pool.in_pool p)

let test_seg_returns_block () =
  let p = Pool.create () in
  let s = Seg.of_msg p (Msg.create "payload") in
  Seg.push_u32 s 7;
  Seg.dispose s;
  Seg.dispose s;
  (* idempotent *)
  Alcotest.(check int) "dispose returns the block once" 1 (Pool.in_pool p);
  Alcotest.(check int) "no discards" 0 (Pool.discards p);
  let s2 = Seg.of_msg p (Msg.create "again") in
  Alcotest.(check int) "next segment recycles it" 1 (Pool.hits p);
  Seg.dispose s2

let test_seg_spill_keeps_pool_clean () =
  (* A header stack that outgrows its block spills into a private
     buffer; the displaced full-size block goes straight back to the
     pool, and the spilled buffer is discarded on dispose — the pool
     only ever holds full-size blocks. *)
  let p = Pool.create ~block:4 () in
  let s = Seg.of_msg p (Msg.create "x") in
  Seg.push_u32 s 0xaabbccdd;
  (* exactly fills the block *)
  Alcotest.(check int) "still on the pooled block" 0 (Pool.in_pool p);
  Seg.push_u32 s 0x11223344;
  (* forces the spill *)
  Alcotest.(check int) "displaced block returned on spill" 1 (Pool.in_pool p);
  Alcotest.(check string) "spill preserved the written headers"
    "\x11\x22\x33\x44\xaa\xbb\xcc\xddx" (Seg.contents s);
  Seg.dispose s;
  Alcotest.(check int) "spilled buffer discarded" 1 (Pool.discards p);
  Alcotest.(check int) "pool holds only full-size blocks" 1 (Pool.in_pool p)

(* --- quickcheck: segment-list encode = blit encode --- *)

(* A random header program: (kind, value) pairs. Applying the same
   program to a Msg (reserve/blit pushes) and a Seg (pooled block,
   zero-copy body) must produce identical bytes — including when the
   program outgrows the 64-byte pooled block and spills. *)
let header_ops =
  QCheck.(
    pair printable_string
      (list_of_size Gen.(0 -- 40) (pair (int_bound 3) (int_bound 0xffffff))))

let apply_msg m (k, v) =
  match k with
  | 0 -> Msg.push_u8 m v
  | 1 -> Msg.push_u16 m v
  | 2 -> Msg.push_u32 m v
  | _ -> Msg.push_bool m (v land 1 = 1)

let apply_seg s (k, v) =
  match k with
  | 0 -> Seg.push_u8 s v
  | 1 -> Seg.push_u16 s v
  | 2 -> Seg.push_u32 s v
  | _ -> Seg.push_bool s (v land 1 = 1)

let prop_seg_matches_blit =
  QCheck.Test.make ~name:"seg: segment-list encode = blit encode" ~count:500
    header_ops
    (fun (payload, ops) ->
       let m = Msg.create payload in
       List.iter (apply_msg m) ops;
       let pool = Pool.create () in
       let s = Seg.of_msg pool (Msg.create payload) in
       List.iter (apply_seg s) ops;
       let ok =
         Seg.length s = Msg.length m
         && Seg.contents s = Msg.to_string m
         && Msg.equal (Seg.to_msg s) m
       in
       Seg.dispose s;
       ok)

let () =
  let repro_cases = List.map repro_equivalence_case (Repro.load_dir "repros") in
  Alcotest.run "fastpath"
    [ ( "equivalence",
        repro_cases
        @ [ Alcotest.test_case "explorer sweep: fused = unfused" `Slow
              test_explorer_equivalence ] );
      ( "live-world",
        [ Alcotest.test_case "view change: fallback, recompile, equivalence" `Slow
            test_view_change_equivalence;
          Alcotest.test_case "off by default" `Slow test_fastpath_off_by_default ] );
      ( "pool",
        [ Alcotest.test_case "acquire/release reuse" `Quick test_pool_reuse;
          Alcotest.test_case "limit and foreign-size discards" `Quick
            test_pool_limits;
          Alcotest.test_case "segment returns its block" `Quick
            test_seg_returns_block;
          Alcotest.test_case "spill keeps the pool clean" `Quick
            test_seg_spill_keeps_pool_clean ] );
      ("encode", [ QCheck_alcotest.to_alcotest prop_seg_matches_blit ]) ]
