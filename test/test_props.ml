(* Tests for the property algebra (Tables 3 and 4, Sections 6 and 7). *)

open Horus_props

let pset = Alcotest.testable Property.Set.pp Property.Set.equal

let p1 = Property.Set.of_numbers [ 1 ]

(* The paper's worked example, Section 7: TOTAL:MBRSHIP:FRAG:NAK:COM
   over an ATM network providing only P1 yields exactly
   {P3,P4,P6,P8,P9,P10,P11,P12,P15}. *)
let test_section7_derivation () =
  let stack = [ "TOTAL"; "MBRSHIP"; "FRAG"; "NAK"; "COM" ] in
  match Check.derive_names ~net:p1 stack with
  | Error e -> Alcotest.failf "stack not well-formed: %a" Check.pp_error e
  | Ok props ->
    Alcotest.check pset "section 7 property set"
      (Property.Set.of_numbers [ 3; 4; 6; 8; 9; 10; 11; 12; 15 ])
      props

(* Intermediate sets of the same derivation, as Section 7 narrates:
   COM adds source addresses, NAK adds FIFO, FRAG adds large messages,
   MBRSHIP adds virtual synchrony, TOTAL adds total order. *)
let test_section7_trace () =
  let stack = List.map Layer_spec.find_exn [ "TOTAL"; "MBRSHIP"; "FRAG"; "NAK"; "COM" ] in
  match Check.trace ~net:p1 stack with
  | Error e -> Alcotest.failf "trace failed: %a" Check.pp_error e
  | Ok steps ->
    let expect =
      [ [ 1 ];                                (* the network *)
        [ 1; 10; 11 ];                        (* above COM *)
        [ 3; 4; 10; 11 ];                     (* above NAK *)
        [ 3; 4; 10; 11; 12 ];                 (* above FRAG *)
        [ 3; 4; 8; 9; 10; 11; 12; 15 ];       (* above MBRSHIP *)
        [ 3; 4; 6; 8; 9; 10; 11; 12; 15 ] ]   (* above TOTAL *)
    in
    Alcotest.(check int) "six intermediate sets" (List.length expect) (List.length steps);
    List.iteri
      (fun i (got, want) ->
         Alcotest.check pset (Printf.sprintf "step %d" i) (Property.Set.of_numbers want) got)
      (List.map2 (fun g w -> (g, w)) steps expect)

let test_missing_requirement () =
  (* MBRSHIP directly over COM lacks FIFO and large messages. *)
  match Check.derive_names ~net:p1 [ "MBRSHIP"; "COM" ] with
  | Ok props -> Alcotest.failf "expected failure, got %a" Property.Set.pp props
  | Error e ->
    Alcotest.(check string) "failing layer" "MBRSHIP" e.layer;
    Alcotest.check pset "missing" (Property.Set.of_numbers [ 3; 4; 12 ]) e.missing

let test_order_matters () =
  (* FRAG below NAK is ill-formed (FRAG needs FIFO), while NAK below
     FRAG is fine: stacking order matters, as Section 8 discusses. *)
  Alcotest.(check bool) "NAK:FRAG:COM ill-formed" false
    (Check.well_formed ~net:p1 (List.map Layer_spec.find_exn [ "NAK"; "FRAG"; "COM" ]));
  Alcotest.(check bool) "FRAG:NAK:COM well-formed" true
    (Check.well_formed ~net:p1 (List.map Layer_spec.find_exn [ "FRAG"; "NAK"; "COM" ]))

let test_empty_stack () =
  match Check.derive ~net:p1 [] with
  | Ok props -> Alcotest.check pset "empty stack passes net through" p1 props
  | Error e -> Alcotest.failf "unexpected: %a" Check.pp_error e

let test_com_requires_network () =
  (* COM cannot run over nothing. *)
  Alcotest.(check bool) "COM over empty" false
    (Check.well_formed ~net:Property.Set.empty [ Layer_spec.com ])

let test_all_rows_well_formed_somewhere () =
  (* Every Table 3 row must be reachable: for each layer there exists a
     stack in which its requirements are met. We verify by searching
     for a stack that provides each layer's full requirement set. *)
  List.iter
    (fun (spec : Layer_spec.t) ->
       match Search.search ~net:p1 ~required:spec.requires () with
       | Some _ -> ()
       | None -> Alcotest.failf "no stack can host layer %s" spec.name)
    Layer_spec.table3

let test_search_finds_section7_class () =
  (* Searching for the Section 7 property set must produce a
     well-formed stack providing it. *)
  let required = Property.Set.of_numbers [ 6; 9; 15 ] in
  match Search.search ~net:p1 ~required () with
  | None -> Alcotest.fail "no stack for total order + virtual synchrony"
  | Some r ->
    Alcotest.(check bool) "provides required" true (Property.Set.subset required r.provides);
    Alcotest.(check bool) "well-formed" true (Check.well_formed ~net:p1 r.layers)

let test_search_minimality () =
  (* The found stack's cost must not exceed the paper's canonical stack
     for the same requirement. *)
  let required = Property.Set.of_numbers [ 6; 9; 15 ] in
  let canonical = List.map Layer_spec.find_exn [ "TOTAL"; "MBRSHIP"; "FRAG"; "NAK"; "COM" ] in
  match Search.search ~net:p1 ~required () with
  | None -> Alcotest.fail "no stack"
  | Some r ->
    Alcotest.(check bool) "cost <= canonical" true (r.cost <= Check.total_cost canonical)

let test_search_impossible () =
  (* Nothing can conjure totally ordered delivery out of thin air with
     only transparent layers available. *)
  let layers = Layer_spec.extras in
  match Search.search ~layers ~net:p1 ~required:(Property.Set.of_numbers [ 6 ]) () with
  | None -> ()
  | Some r -> Alcotest.failf "impossible stack found: %s" (Search.spec_string r)

let test_search_trivial () =
  (* Requirements already met by the network need no layers. *)
  match Search.search ~net:p1 ~required:p1 () with
  | Some r -> Alcotest.(check int) "no layers" 0 (List.length r.layers)
  | None -> Alcotest.fail "trivial search failed"

let test_enumerate_contains_canonical () =
  let required = Property.Set.of_numbers [ 6; 9 ] in
  let stacks = Search.enumerate ~net:p1 ~required ~max_depth:5 () in
  let canonical = [ "TOTAL"; "MBRSHIP"; "FRAG"; "NAK"; "COM" ] in
  let names (l : Layer_spec.t list) = List.map (fun (s : Layer_spec.t) -> s.name) l in
  Alcotest.(check bool) "canonical stack enumerated" true
    (List.exists (fun s -> names s = canonical) stacks)

let test_order_matters_verdicts () =
  (* Pose the question above COM, i.e. over {P1,P10,P11}. *)
  let net = Property.Set.of_numbers [ 1; 10; 11 ] in
  let find = Layer_spec.find_exn in
  (* NAK must sit below FRAG: only one order is well-formed. *)
  (match Check.order_matters ~net ~upper:(find "FRAG") ~lower:(find "NAK") with
   | Check.Only_first_works _ -> ()
   | v -> Alcotest.failf "FRAG/NAK: %a" Check.pp_order_verdict v);
  (match Check.order_matters ~net ~upper:(find "NAK") ~lower:(find "FRAG") with
   | Check.Only_second_works _ -> ()
   | v -> Alcotest.failf "NAK/FRAG: %a" Check.pp_order_verdict v);
  (* Two transparent filters commute. *)
  (match Check.order_matters ~net:p1 ~upper:(find "CHKSUM") ~lower:(find "SIGN") with
   | Check.Order_equivalent _ -> ()
   | v -> Alcotest.failf "CHKSUM/SIGN: %a" Check.pp_order_verdict v);
  (* Nothing works without the COM adapter. *)
  (match
     Check.order_matters ~net:Property.Set.empty ~upper:(find "NAK") ~lower:(find "FRAG")
   with
   | Check.Neither_works -> ()
   | v -> Alcotest.failf "over empty net: %a" Check.pp_order_verdict v)

(* --- Stacking-order sweep (Section 8), golden summary ---

   Every unordered pair of Table 3 rows, over three representative
   networks: the bare net {P1}, the set above COM {P1,P10,P11}, and
   the reliable-FIFO platform {P3,P4,P10,P11,P12}. The verdicts are
   committed as test/golden/order_matters.txt; regenerate with
     HORUS_GOLDEN_UPDATE=test/golden/order_matters.txt \
       dune exec test/test_props.exe -- test golden
   from the repository root after an intentional Table 3 change. *)
let order_matters_summary () =
  let nets =
    [ ("net", [ 1 ]); ("above-COM", [ 1; 10; 11 ]); ("reliable-fifo", [ 3; 4; 10; 11; 12 ]) ]
  in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (net_name, net_n) ->
       let net = Property.Set.of_numbers net_n in
       Buffer.add_string buf
         (Format.asprintf "# over %s = %a@." net_name Property.Set.pp net);
       let rec pairs = function
         | [] -> []
         | a :: rest -> List.map (fun b -> (a, b)) rest @ pairs rest
       in
       List.iter
         (fun ((a : Layer_spec.t), (b : Layer_spec.t)) ->
            let v = Check.order_matters ~net ~upper:a ~lower:b in
            Buffer.add_string buf
              (Format.asprintf "%s/%s: %a@." a.name b.name Check.pp_order_verdict v))
         (pairs Layer_spec.table3))
    nets;
  Buffer.contents buf

let test_order_matters_golden () =
  let got = order_matters_summary () in
  match Sys.getenv_opt "HORUS_GOLDEN_UPDATE" with
  | Some path ->
    let oc = open_out path in
    output_string oc got;
    close_out oc
  | None ->
    (* dune runtest runs in test/; dune exec from the repo root. *)
    let path =
      if Sys.file_exists "golden/order_matters.txt" then "golden/order_matters.txt"
      else "test/golden/order_matters.txt"
    in
    let ic = open_in path in
    let n = in_channel_length ic in
    let want = really_input_string ic n in
    close_in ic;
    if got <> want then
      Alcotest.failf
        "order_matters sweep diverged from %s (regenerate with HORUS_GOLDEN_UPDATE after an \
         intentional Table 3 change);@.got:@.%s"
        path got

(* The conflicts column: a second membership service cannot stack
   above one already providing P15 (found by the conformance sweep —
   BMS:MBRSHIP:NAK:NFRAG:COM derives a plausible set but delivers
   nothing). *)
let test_membership_exclusive () =
  (match Check.derive_names ~net:p1 [ "BMS"; "MBRSHIP"; "NAK"; "NFRAG"; "COM" ] with
   | Ok props -> Alcotest.failf "expected conflict, got %a" Property.Set.pp props
   | Error e ->
     Alcotest.(check string) "failing layer" "BMS" e.layer;
     Alcotest.check pset "conflicting" (Property.Set.of_numbers [ 15 ]) e.conflicting;
     Alcotest.(check bool) "error message names the conflict" true
       (let s = Format.asprintf "%a" Check.pp_error e in
        let has sub =
          let ls = String.length s and lsub = String.length sub in
          let rec go i = i + lsub <= ls && (String.sub s i lsub = sub || go (i + 1)) in
          go 0
        in
        has "conflicts"));
  (* ... and the same the other way round. *)
  Alcotest.(check bool) "MBRSHIP over BMS ill-formed" false
    (Check.well_formed ~net:p1
       (List.map Layer_spec.find_exn [ "MBRSHIP"; "BMS"; "NAK"; "NFRAG"; "COM" ]));
  (* Each alone still works. *)
  Alcotest.(check bool) "MBRSHIP stack fine" true
    (Check.well_formed ~net:p1
       (List.map Layer_spec.find_exn [ "MBRSHIP"; "FRAG"; "NAK"; "COM" ]))

let test_property_numbers_roundtrip () =
  List.iter
    (fun p -> Alcotest.(check bool) "roundtrip" true (Property.of_number (Property.number p) = p))
    Property.all;
  Alcotest.(check int) "sixteen properties" 16 (List.length Property.all)

let test_table3_has_fifteen_rows () =
  Alcotest.(check int) "fifteen rows" 15 (List.length Layer_spec.table3)

(* Property-based: derivation is monotone in the network property set —
   a richer network never yields a poorer stack result. *)
let prop_monotone =
  QCheck.Test.make ~name:"derivation monotone in net properties" ~count:500
    QCheck.(pair (list_of_size Gen.(0 -- 16) (int_range 1 16)) (list_of_size Gen.(0 -- 16) (int_range 1 16)))
    (fun (a, b) ->
       let sa = Property.Set.of_numbers a in
       let sb = Property.Set.union sa (Property.Set.of_numbers b) in
       let stack = [ Layer_spec.com; Layer_spec.nak; Layer_spec.frag ] in
       match (Check.derive ~net:sa stack, Check.derive ~net:sb stack) with
       | Ok ra, Ok rb -> Property.Set.subset ra rb
       | Error _, (Ok _ | Error _) -> true  (* smaller net may fail earlier *)
       | Ok _, Error _ -> false)

(* Property-based: a search result is always well-formed and always
   satisfies the requirement it was asked for. *)
let prop_search_sound =
  QCheck.Test.make ~name:"search results are sound" ~count:200
    QCheck.(pair (list_of_size Gen.(0 -- 3) (int_range 1 16)) (list_of_size Gen.(0 -- 3) (int_range 1 16)))
    (fun (net_n, req_n) ->
       let net = Property.Set.of_numbers (1 :: net_n) in
       let required = Property.Set.of_numbers req_n in
       match Search.search ~net ~required () with
       | None -> true
       | Some r ->
         Check.well_formed ~net r.layers && Property.Set.subset required r.provides)

(* --- bitset laws --- *)

let propset = QCheck.map Property.Set.of_numbers QCheck.(list (int_range 1 16))

let prop_set_roundtrip =
  QCheck.Test.make ~name:"set: of_list . to_list = id" ~count:500 propset (fun s ->
      Property.Set.equal (Property.Set.of_list (Property.Set.to_list s)) s)

let prop_set_union_inter_absorb =
  QCheck.Test.make ~name:"set: absorption a ∪ (a ∩ b) = a" ~count:500
    (QCheck.pair propset propset)
    (fun (a, b) ->
       Property.Set.equal (Property.Set.union a (Property.Set.inter a b)) a
       && Property.Set.equal (Property.Set.inter a (Property.Set.union a b)) a)

let prop_set_diff_laws =
  QCheck.Test.make ~name:"set: diff splits union, disjoint from inter" ~count:500
    (QCheck.pair propset propset)
    (fun (a, b) ->
       let d = Property.Set.diff a b and i = Property.Set.inter a b in
       Property.Set.equal (Property.Set.union d i) a
       && Property.Set.is_empty (Property.Set.inter d b)
       && (Property.Set.subset a b
           = Property.Set.is_empty (Property.Set.diff a b)))

let prop_set_subset_order =
  QCheck.Test.make ~name:"set: ⊆ is a partial order with ∪/∩ bounds" ~count:500
    (QCheck.pair propset propset)
    (fun (a, b) ->
       Property.Set.subset a (Property.Set.union a b)
       && Property.Set.subset (Property.Set.inter a b) a
       && ((Property.Set.subset a b && Property.Set.subset b a) = Property.Set.equal a b)
       && Property.Set.cardinal a = List.length (Property.Set.to_list a))

(* Check.step is monotone in [below] (for conflict-free rows — richer
   guarantees below never weaken what a layer exports above). *)
let prop_step_monotone_in_below =
  QCheck.Test.make ~name:"check: step monotone in below" ~count:500
    (QCheck.pair propset propset)
    (fun (below, extra) ->
       let richer = Property.Set.union below extra in
       List.for_all
         (fun (row : Layer_spec.t) ->
            if not (Property.Set.is_empty (Property.Set.inter row.conflicts richer)) then
              true (* a conflict below legitimately breaks monotonicity *)
            else
              match (Check.step below row, Check.step richer row) with
              | Ok a, Ok b -> Property.Set.subset a b
              | Error _, _ -> true (* poorer below may fail where richer passes *)
              | Ok _, Error _ -> false)
         Layer_spec.table3)

(* Every enumerated stack is well-formed and satisfies the request —
   the synthesis engine never emits an ill-formed candidate. *)
let prop_enumerate_sound =
  QCheck.Test.make ~name:"search: every enumerated stack well-formed and satisfying" ~count:60
    QCheck.(pair (list_of_size Gen.(0 -- 2) (int_range 1 16)) (list_of_size Gen.(1 -- 2) (int_range 1 16)))
    (fun (net_n, req_n) ->
       let net = Property.Set.of_numbers (1 :: net_n) in
       let required = Property.Set.of_numbers req_n in
       List.for_all
         (fun stack ->
            Check.well_formed ~net stack && Check.satisfies ~net ~required stack)
         (Search.enumerate ~net ~required ~max_depth:4 ()))

let () =
  Alcotest.run "props"
    [ ( "table4",
        [ Alcotest.test_case "numbers roundtrip" `Quick test_property_numbers_roundtrip ] );
      ( "table3",
        [ Alcotest.test_case "fifteen rows" `Quick test_table3_has_fifteen_rows;
          Alcotest.test_case "every row hostable" `Quick test_all_rows_well_formed_somewhere ] );
      ( "derivation",
        [ Alcotest.test_case "section 7 exact set" `Quick test_section7_derivation;
          Alcotest.test_case "section 7 intermediate sets" `Quick test_section7_trace;
          Alcotest.test_case "missing requirement reported" `Quick test_missing_requirement;
          Alcotest.test_case "stacking order matters" `Quick test_order_matters;
          Alcotest.test_case "membership layers are exclusive" `Quick test_membership_exclusive;
          Alcotest.test_case "empty stack" `Quick test_empty_stack;
          Alcotest.test_case "COM needs a network" `Quick test_com_requires_network ] );
      ( "golden",
        [ Alcotest.test_case "all-pairs order_matters sweep" `Quick test_order_matters_golden ] );
      ( "search",
        [ Alcotest.test_case "finds virtual synchrony + total order" `Quick test_search_finds_section7_class;
          Alcotest.test_case "minimality vs canonical" `Quick test_search_minimality;
          Alcotest.test_case "impossible requirement" `Quick test_search_impossible;
          Alcotest.test_case "trivial requirement" `Quick test_search_trivial;
          Alcotest.test_case "enumeration contains canonical" `Quick test_enumerate_contains_canonical;
          Alcotest.test_case "stacking order verdicts" `Quick test_order_matters_verdicts ] );
      ( "qcheck",
        [ QCheck_alcotest.to_alcotest prop_monotone;
          QCheck_alcotest.to_alcotest prop_search_sound;
          QCheck_alcotest.to_alcotest prop_set_roundtrip;
          QCheck_alcotest.to_alcotest prop_set_union_inter_absorb;
          QCheck_alcotest.to_alcotest prop_set_diff_laws;
          QCheck_alcotest.to_alcotest prop_set_subset_order;
          QCheck_alcotest.to_alcotest prop_step_monotone_in_below;
          QCheck_alcotest.to_alcotest prop_enumerate_sound ] ) ]
