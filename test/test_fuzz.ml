(* Randomized protocol fuzzing: many random schedules of traffic and
   failures, with the shared virtual-synchrony invariant library
   (Horus_check.Invariant) asserted after each. This complements the
   exhaustive (but tiny) model checker in lib/model with large
   randomized instances against the production stack.

   Crash scenarios are generated as Horus_check.Scenario values and
   executed by Horus_check.Runner — the same runner the systematic
   explorer and `horus_info replay` use — so every failure is a
   shrinkable, serializable counterexample: the failing scenario is
   minimized with Horus_check.Shrink and written as a repro file
   (under $HORUS_REPRO_DIR when set) whose path appears in the test
   failure message. Drop the file into test/repros/ and it becomes a
   permanent regression. *)

open Horus
open Horus_check

let spec = "MBRSHIP:FRAG:NAK:COM"

let pp_violations vs =
  String.concat "; "
    (List.map (fun v -> Format.asprintf "%a" Invariant.pp_violation v) vs)

(* --- crash fuzz, through the Scenario/Runner pipeline --- *)

(* One random crash-and-traffic scenario. The network itself is
   randomized too: loss, jitter and duplication within the ranges the
   reliability layers are specified to mask. *)
let crash_scenario ~seed =
  let prng = Horus_util.Prng.create (seed * 7919) in
  let n = 3 + Horus_util.Prng.int prng 3 in  (* 3..5 members *)
  let net =
    { Scenario.default_net with
      Scenario.drop = Horus_util.Prng.float prng 0.15;
      jitter = Horus_util.Prng.float prng 0.002;
      duplicate = Horus_util.Prng.float prng 0.1 }
  in
  (* Random traffic: every member casts a numbered stream. The runner
     ranks each member's ops by time, so these are streams 0..k-1. *)
  let casts_per_member = 5 + Horus_util.Prng.int prng 10 in
  let ops =
    List.concat
      (List.init n (fun i ->
           List.init casts_per_member (fun _ ->
               { Scenario.op_member = i; op_at = Horus_util.Prng.float prng 1.5; op_pad = 0 })))
  in
  (* 1..2 crashes among the younger members, at random times. *)
  let crash_count = Int.min (1 + Horus_util.Prng.int prng 2) (n - 2) in
  let faults =
    List.init crash_count (fun i ->
        { Scenario.f_at = Horus_util.Prng.float prng 1.5;
          f_fault = Scenario.Crash (n - crash_count + i) })
  in
  Scenario.make
    ~name:(Printf.sprintf "crash-fuzz-seed%d" seed)
    ~seed ~net ~ops ~faults ~run_for:15.0 ~spec ~n ()

let test_crash_fuzz seed () =
  let sc = crash_scenario ~seed in
  let r = Runner.run sc in
  if Runner.failed r then begin
    (* Minimize before reporting: the shrunk scenario is the thing
       worth committing as a repro. No dispatch schedule is involved,
       so re-running the candidate is an exact failure check. *)
    let fails c = Runner.failed (Runner.run c) in
    let shrunk, _ = Shrink.shrink ~fails sc in
    let saved = Repro.save { shrunk with Scenario.expect_violation = true } in
    Alcotest.fail
      (Printf.sprintf "seed %d: %s%s" seed
         (pp_violations r.Runner.r_violations)
         (match saved with
          | Some path -> Printf.sprintf " (shrunk repro: %s)" path
          | None -> Printf.sprintf " (set %s to save a shrunk repro)" Repro.env_dir_var))
  end

(* --- partition and churn fuzz: bespoke drivers, shared predicates ---

   These lifecycles (MERGE reunification, live joins and leaves) are
   outside what Scenario can express end-to-end, so they drive the
   world directly — but every assertion still goes through the shared
   Invariant predicates on the same obs vocabulary. *)

type watch = {
  mutable w_casts : (string * int) list;             (* newest first *)
  mutable w_views : ((int * int) * int list) list;   (* newest first *)
}

let observe gr =
  let w = { w_casts = []; w_views = [] } in
  Group.set_on_up gr (fun ev ->
      match ev with
      | Event.U_cast (_, m, _) ->
        let epoch = match Group.view gr with Some v -> View.ltime v | None -> -1 in
        w.w_casts <- (Msg.to_string m, epoch) :: w.w_casts
      | Event.U_view v ->
        w.w_views <-
          ( (View.ltime v, Addr.endpoint_id (View.coordinator v)),
            List.map Addr.endpoint_id (View.members v) )
          :: w.w_views
      | _ -> ());
  w

let obs_of ?watch ~member gr =
  { Invariant.o_member = member;
    o_eid = Addr.endpoint_id (Group.addr gr);
    o_crashed = false;
    o_left = false;
    o_exited = Group.exited gr;
    o_casts =
      (match watch with
       | Some w -> List.rev w.w_casts
       | None -> List.map (fun p -> (p, -1)) (Group.casts gr));
    o_views = (match watch with Some w -> List.rev w.w_views | None -> []);
    o_final =
      (match Group.view gr with
       | Some v -> Some (View.ltime v, List.map Addr.endpoint_id (View.members v))
       | None -> None) }

let check ~seed ~what vs =
  Alcotest.(check string) (Printf.sprintf "seed %d: %s" seed what) "" (pp_violations vs)

(* Partition scenarios: split, run traffic on both sides, heal and
   explicitly merge; then both sides' members must share one view and
   agree on every view id ever installed. (Cross-side completeness is
   deliberately not asserted: casts issued during the partition are
   not retransmitted across the merge.) *)
let test_partition_fuzz seed () =
  let prng = Horus_util.Prng.create (seed * 104729) in
  let n = 4 + Horus_util.Prng.int prng 2 in  (* 4..5 *)
  let world = World.create ~seed:(seed + 1000) () in
  let g = World.fresh_group_addr world in
  let founder = Group.join (Endpoint.create world ~spec:("MERGE:" ^ spec)) g in
  World.run_for world ~duration:0.3;
  let rest =
    List.init (n - 1) (fun _ ->
        let m =
          Group.join ~contact:(Group.addr founder) (Endpoint.create world ~spec:("MERGE:" ^ spec)) g
        in
        World.run_for world ~duration:0.4;
        m)
  in
  let members = founder :: rest in
  World.run_for world ~duration:2.0;
  let watches = List.map observe members in
  let split = 1 + Horus_util.Prng.int prng (n - 2) in
  let side_a = List.filteri (fun i _ -> i < split) members in
  let side_b = List.filteri (fun i _ -> i >= split) members in
  let nodes side = List.map (fun gr -> Addr.endpoint_id (Group.addr gr)) side in
  Horus_sim.Net.partition (World.net world) [ nodes side_a; nodes side_b ];
  (* Traffic on both sides during the partition. *)
  List.iteri
    (fun i gr ->
       for k = 0 to 4 do
         World.after world ~delay:(0.5 +. (0.1 *. float_of_int k)) (fun () ->
             Group.cast gr (Invariant.payload ~tag:'p' ~origin:i ~k ()))
       done)
    members;
  World.run_for world ~duration:4.0;
  Horus_sim.Net.heal (World.net world);
  World.run_for world ~duration:10.0;
  (* After healing, the MERGE layer must reunite everyone. *)
  List.iter
    (fun gr ->
       let size = match Group.view gr with Some v -> View.size v | None -> 0 in
       Alcotest.(check int) (Printf.sprintf "seed %d: reunited" seed) n size)
    members;
  let obs = List.map2 (fun (m, gr) w -> obs_of ~watch:w ~member:m gr)
      (List.mapi (fun i gr -> (i, gr)) members) watches
  in
  check ~seed ~what:"view agreement across the merge" (Invariant.view_agreement obs);
  check ~seed ~what:"final view shared" (Invariant.final_view_agreement obs);
  (* Same-side FIFO still holds: whatever was delivered from an origin
     is a gap-free in-order prefix. *)
  check ~seed ~what:"per-origin fifo" (Invariant.per_origin_fifo ~tag:'p' obs)

(* Churn scenarios: joins and leaves interleaved with crashes and
   traffic — the full membership lifecycle under a random schedule. *)
let test_churn_fuzz seed () =
  let prng = Horus_util.Prng.create (seed * 31337) in
  (* At least 4 members: indices 0 and 1 cast (and never churn);
     index n-1 crashes and index n-2 leaves. *)
  let n = 4 + Horus_util.Prng.int prng 2 in
  let world = World.create ~seed:(seed + 5000) () in
  let g = World.fresh_group_addr world in
  let founder = Group.join (Endpoint.create world ~spec) g in
  World.run_for world ~duration:0.3;
  let rest =
    List.init (n - 1) (fun _ ->
        let m = Group.join ~contact:(Group.addr founder) (Endpoint.create world ~spec) g in
        World.run_for world ~duration:0.4;
        m)
  in
  let members = founder :: rest in
  World.run_for world ~duration:2.0;
  (* Traffic from the two oldest members (they never crash or leave). *)
  List.iteri
    (fun i gr ->
       let times =
         List.init 10 (fun _ -> Horus_util.Prng.float prng 2.0) |> List.sort Float.compare
       in
       List.iteri
         (fun k at ->
            World.after world ~delay:at (fun () ->
                Group.cast gr (Invariant.payload ~tag:'c' ~origin:i ~k ())))
         times)
    (List.filteri (fun i _ -> i < 2) members);
  (* Churn among the younger members: one crashes, one leaves, and a
     brand-new member joins, all at random instants. *)
  let victim = List.nth members (n - 1) in
  let leaver = List.nth members (n - 2) in
  World.after world ~delay:(Horus_util.Prng.float prng 2.0) (fun () ->
      Endpoint.crash (Group.endpoint victim));
  World.after world ~delay:(Horus_util.Prng.float prng 2.0) (fun () -> Group.leave leaver);
  let late = ref None in
  World.after world ~delay:(Horus_util.Prng.float prng 2.0) (fun () ->
      late := Some (Group.join ~contact:(Group.addr founder) (Endpoint.create world ~spec) g));
  World.run_for world ~duration:15.0;
  (* The stable core plus the late joiner share one final view, and
     the core delivered both origin streams completely and in order. *)
  let core = List.filteri (fun i _ -> i < n - 2) members in
  let final_members = core @ (match !late with Some j -> [ j ] | None -> []) in
  let final_obs = List.mapi (fun i gr -> obs_of ~member:i gr) final_members in
  check ~seed ~what:"final view agreed" (Invariant.final_view_agreement final_obs);
  (match final_obs with
   | first :: _ ->
     (match first.Invariant.o_final with
      | Some (_, ms) ->
        Alcotest.(check int)
          (Printf.sprintf "seed %d: final membership size" seed)
          (List.length final_members) (List.length ms)
      | None -> Alcotest.fail (Printf.sprintf "seed %d: no final view" seed))
   | [] -> ());
  let core_obs = List.mapi (fun i gr -> obs_of ~member:i gr) core in
  check ~seed ~what:"core per-origin fifo" (Invariant.per_origin_fifo ~tag:'c' core_obs);
  check ~seed ~what:"core completeness"
    (Invariant.survivor_completeness ~tag:'c'
       ~sent:(fun m -> if m < 2 then 10 else 0)
       core_obs);
  (* The leaver exited. *)
  Alcotest.(check bool) (Printf.sprintf "seed %d: leaver exited" seed) true
    (Group.exited leaver || Group.view leaver = None
     || (match Group.view leaver with Some v -> View.size v = 1 | None -> true))

let () =
  (* $FUZZ_SEEDS caps the seeds per group — CI runs a small matrix on
     every push, nightly/local runs take the full default counts. *)
  let budget =
    match Option.bind (Sys.getenv_opt "FUZZ_SEEDS") int_of_string_opt with
    | Some n when n > 0 -> Some n
    | _ -> None
  in
  let cases name f count =
    let count = match budget with Some b -> Int.min b count | None -> count in
    List.map
      (fun seed ->
         Alcotest.test_case (Printf.sprintf "%s schedule %d" name seed) `Slow (f seed))
      (List.init count (fun i -> i + 1))
  in
  Alcotest.run "fuzz"
    [ ("crashes", cases "crash" test_crash_fuzz 80);
      ("partitions", cases "partition" test_partition_fuzz 30);
      ("churn", cases "churn" test_churn_fuzz 25) ]
