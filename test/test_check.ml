(* The horus_check subsystem: systematic schedule exploration,
   counterexample shrinking, and replayable repro files, all against
   the production stack (no model-checker doubles here — see lib/model
   for those).

   The centerpiece is the paper's Figure 2 flush race as a live
   regression: with MBRSHIP's Section 5 ignore-rule disabled, the
   explorer must find a dispatch schedule under which one survivor
   delivers a crashed member's cast that nobody else ever sees; with
   the rule enabled (the default), the same exploration must come back
   clean. *)

open Horus_check

let good_spec = "MBRSHIP:FRAG:NAK:COM"
let bad_spec = "MBRSHIP(ignore_stragglers=false):FRAG:NAK:COM"

(* --- invariant predicates on synthetic observations --- *)

let mk ?(crashed = false) ?(left = false) ?(exited = false) ?(casts = []) ?(views = [])
    ?final member eid =
  { Invariant.o_member = member;
    o_eid = eid;
    o_crashed = crashed;
    o_left = left;
    o_exited = exited;
    o_casts = casts;
    o_views = views;
    o_final = final }

let props vs = List.map (fun v -> v.Invariant.v_property) vs

let test_invariants_clean () =
  let views = [ ((1, 10), [ 10; 11 ]) ] in
  let casts = [ ("o0-000", 1); ("o1-000", 1) ] in
  let obs =
    [ mk ~casts ~views ~final:(1, [ 10; 11 ]) 0 10;
      mk ~casts ~views ~final:(1, [ 10; 11 ]) 1 11 ]
  in
  Alcotest.(check (list string)) "clean run, no violations" []
    (props (Invariant.standard ~tag:'o' ~sent:(fun _ -> 1) obs))

let test_invariant_fifo_gap () =
  let obs = [ mk ~casts:[ ("o0-000", 1); ("o0-002", 1) ] 0 10 ] in
  Alcotest.(check (list string)) "gap detected" [ "per-origin-fifo" ]
    (props (Invariant.per_origin_fifo ~tag:'o' obs))

let test_invariant_view_disagreement () =
  let obs =
    [ mk ~views:[ ((1, 10), [ 10; 11 ]) ] 0 10;
      mk ~views:[ ((1, 10), [ 10 ]) ] 1 11 ]
  in
  Alcotest.(check (list string)) "same id, different membership" [ "view-agreement" ]
    (props (Invariant.view_agreement obs))

let test_invariant_vs_cut () =
  let obs = [ mk ~casts:[ ("o0-000", 1) ] 0 10; mk 1 11 ] in
  Alcotest.(check (list string)) "differing cuts" [ "virtual-synchrony" ]
    (props (Invariant.virtual_synchrony obs));
  (* A crashed member is exempt: survivors define the cut. *)
  let obs = [ mk ~casts:[ ("o0-000", 1) ] 0 10; mk ~crashed:true 1 11 ] in
  Alcotest.(check (list string)) "crashed member exempt" []
    (props (Invariant.virtual_synchrony obs))

let test_invariant_delivery_in_view () =
  (* Member 0 delivers origin 1's cast in epoch 2, whose view excludes
     origin 1's endpoint. *)
  let obs =
    [ mk ~casts:[ ("o1-000", 2) ] ~views:[ ((1, 10), [ 10; 11 ]); ((2, 10), [ 10 ]) ] 0 10;
      mk ~crashed:true 1 11 ]
  in
  Alcotest.(check (list string)) "delivery outside origin's view" [ "delivery-in-view" ]
    (props (Invariant.delivery_in_view ~tag:'o' obs))

let test_invariant_completeness () =
  let obs =
    [ mk ~casts:[ ("o0-000", 1); ("o1-000", 1) ] 0 10; mk ~casts:[ ("o1-000", 1) ] 1 11 ]
  in
  let vs = Invariant.survivor_completeness ~tag:'o' ~sent:(fun _ -> 1) obs in
  Alcotest.(check bool) "missing survivor cast detected" true
    (List.mem "survivor-completeness" (props vs));
  (* Both members did deliver their own casts, so self-delivery holds
     even though completeness does not. *)
  Alcotest.(check (list string)) "self delivery intact" []
    (props (Invariant.self_delivery ~tag:'o' ~sent:(fun _ -> 1) obs));
  let missing_own = [ mk 0 10 ] in
  Alcotest.(check (list string)) "missing own cast detected" [ "self-delivery" ]
    (props (Invariant.self_delivery ~tag:'o' ~sent:(fun _ -> 1) missing_own))

(* --- scenario JSON --- *)

let full_scenario () =
  Scenario.make ~name:"round-trip" ~seed:7
    ~net:{ Scenario.default_net with Scenario.drop = 0.1; jitter = 0.001 }
    ~links:[ (2, 0, 50.0) ]
    ~ops:[ { Scenario.op_member = 0; op_at = 0.1; op_pad = 0 }; { Scenario.op_member = 1; op_at = 0.2; op_pad = 0 } ]
    ~faults:
      [ { Scenario.f_at = 0.3; f_fault = Scenario.Crash 2 };
        { Scenario.f_at = 0.31; f_fault = Scenario.Suspect (0, 2) };
        { Scenario.f_at = 1.0; f_fault = Scenario.Partition [ [ 0 ]; [ 1; 2 ] ] };
        { Scenario.f_at = 2.0; f_fault = Scenario.Heal } ]
    ~run_for:5.0
    ~sched:
      { Scenario.default_sched with Scenario.s_choices = [ 0; 2; 1 ]; s_from = 0.05 }
    ~expect_violation:true ~spec:good_spec ~n:3 ()

let test_scenario_roundtrip () =
  let sc = full_scenario () in
  let s = Scenario.to_string sc in
  match Scenario.of_string s with
  | Error e -> Alcotest.fail ("round-trip parse failed: " ^ e)
  | Ok sc' ->
    Alcotest.(check string) "byte-identical re-serialization" s (Scenario.to_string sc');
    Alcotest.(check bool) "structurally equal" true (sc = sc')

let test_scenario_rejects_bad_member () =
  let sc = full_scenario () in
  let bad = { sc with Scenario.ops = [ { Scenario.op_member = 9; op_at = 0.0; op_pad = 0 } ] } in
  match Scenario.of_string (Scenario.to_string bad) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range member index accepted"

(* --- the Figure 2 flush race, live --- *)

(* D (member 3) casts M and crashes; the copies toward A and B are in
   flight on slow links (they will never arrive before the flush
   ends), the copy toward C is in the chooser's window. A suspects D
   immediately. The explorer's job is to find the schedule that parks
   C's copy until after C has replied to the flush. *)
let fig2 ?(rule_on = true) ?sched () =
  Scenario.make
    ~name:(if rule_on then "figure2-rule-on" else "figure2-straggler")
    ~seed:1
    ~links:[ (3, 0, 100.0); (3, 1, 100.0) ]
    ~ops:[ { Scenario.op_member = 3; op_at = 0.02; op_pad = 0 } ]
    ~faults:
      [ { Scenario.f_at = 0.0201; f_fault = Scenario.Crash 3 };
        { Scenario.f_at = 0.0203; f_fault = Scenario.Suspect (0, 3) } ]
    ~run_for:4.0 ?sched
    ~spec:(if rule_on then good_spec else bad_spec)
    ~n:4 ()

let fig2_config =
  { Explore.horizon = 0.002;
    width = 5;
    from_time = 0.0199;
    depth = 8;
    max_runs = 300;
    random_walks = 0;
    walk_seed = 1 }

let test_explorer_finds_flush_race () =
  let out = Explore.explore ~config:fig2_config (fig2 ~rule_on:false ()) in
  match out.Explore.found with
  | None ->
    Alcotest.fail
      (Printf.sprintf "no violation in %d runs (%d distinct outcomes)"
         out.Explore.stats.Explore.runs out.Explore.stats.Explore.distinct)
  | Some (bad, r) ->
    Alcotest.(check bool) "virtual synchrony is what breaks" true
      (List.exists
         (fun v -> v.Invariant.v_property = "virtual-synchrony")
         r.Runner.r_violations);
    (* The counterexample is concrete: replaying it hits the same
       violation with no search. *)
    let replay = Runner.run bad in
    Alcotest.(check bool) "concretized schedule replays the violation" true
      (Runner.failed replay)

let test_explorer_clean_with_rule_on () =
  let out = Explore.explore ~config:fig2_config (fig2 ~rule_on:true ()) in
  (match out.Explore.found with
   | Some (_, r) ->
     Alcotest.fail
       (Format.asprintf "Section 5 rule enabled, yet: %a"
          (Format.pp_print_list Invariant.pp_violation)
          r.Runner.r_violations)
   | None -> ());
  Alcotest.(check bool) "searched more than one schedule" true
    (out.Explore.stats.Explore.runs > 1)

(* Satellite of the above: the regression pinned to the exact schedule
   the explorer found (kept in test/repros/figure2-straggler.json too).
   Same choices, rule on vs off — the rule is the only difference. *)
let fig2_choices = [ 0; 0; 0; 1; 1 ]

let test_figure2_regression () =
  let sched =
    { Scenario.s_horizon = 0.002;
      s_width = 5;
      s_from = 0.0199;
      s_choices = fig2_choices;
      s_walk = None }
  in
  let bad = Runner.run (fig2 ~rule_on:false ~sched ()) in
  Alcotest.(check bool) "rule off: straggler splits the cut" true (Runner.failed bad);
  Alcotest.(check bool) "rule off: virtual synchrony violation" true
    (List.exists
       (fun v -> v.Invariant.v_property = "virtual-synchrony")
       bad.Runner.r_violations);
  let good = Runner.run (fig2 ~rule_on:true ~sched ()) in
  Alcotest.(check (list string)) "rule on: same schedule, clean" []
    (List.map (fun v -> v.Invariant.v_property) good.Runner.r_violations)

let test_run_deterministic () =
  let sched =
    { Scenario.default_sched with Scenario.s_width = 5; s_from = 0.0199;
      s_choices = fig2_choices }
  in
  let sc = fig2 ~rule_on:false ~sched () in
  let r1 = Runner.run sc and r2 = Runner.run sc in
  Alcotest.(check string) "byte-identical result JSON" (Runner.to_string r1)
    (Runner.to_string r2);
  Alcotest.(check bool) "fingerprints agree" true
    (Int64.equal (Runner.fingerprint r1) (Runner.fingerprint r2))

(* --- shrinking --- *)

let test_shrink_seeded_failure () =
  (* A fuzz-style failing scenario with junk bolted on: extra traffic
     from the survivors and an unrelated late leave. The shrinker must
     strip it back to (at most) the race's skeleton. *)
  let base = fig2 ~rule_on:false () in
  let junk_ops =
    List.concat_map
      (fun m ->
         List.init 3 (fun k ->
             { Scenario.op_member = m; op_at = 1.0 +. (0.1 *. float_of_int (m + k)); op_pad = 0 }))
      [ 0; 1 ]
  in
  let seeded =
    { base with
      Scenario.name = "seeded-fuzz-failure";
      ops = base.Scenario.ops @ junk_ops;
      faults =
        base.Scenario.faults @ [ { Scenario.f_at = 2.5; f_fault = Scenario.Leave 1 } ] }
  in
  let cfg = { fig2_config with Explore.max_runs = 150 } in
  let fails sc =
    match (Explore.explore ~config:cfg sc).Explore.found with
    | Some _ -> true
    | None -> false
  in
  Alcotest.(check bool) "seeded scenario fails" true (fails seeded);
  let shrunk, stats = Shrink.shrink ~fails seeded in
  Alcotest.(check bool) "shrinker made progress" true (stats.Shrink.accepted > 0);
  Alcotest.(check bool)
    (Printf.sprintf "ops minimized (%d <= 5)" (List.length shrunk.Scenario.ops))
    true
    (List.length shrunk.Scenario.ops <= 5);
  Alcotest.(check bool)
    (Printf.sprintf "faults minimized (%d <= 2)" (List.length shrunk.Scenario.faults))
    true
    (List.length shrunk.Scenario.faults <= 2);
  Alcotest.(check bool) "shrunk scenario still fails" true (fails shrunk)

(* Churn-campaign repros arrive with crash *waves* — many members
   killed at one instant. The shrinker must offer whole-window drops
   and a halved kill set as single edits, so a multi-wave repro that
   only needs one wave minimizes in a handful of runs. *)
let test_shrink_kill_windows () =
  let crash at m = { Scenario.f_at = at; f_fault = Scenario.Crash m } in
  let sc =
    { (full_scenario ()) with
      Scenario.n = 8;
      links = [];
      faults =
        [ crash 1.0 1; crash 1.0 2; crash 1.0 3;
          crash 2.0 4; crash 2.0 5;
          { Scenario.f_at = 2.5; f_fault = Scenario.Leave 6 } ] }
  in
  let cands = Shrink.candidates sc in
  let crashes_of c =
    List.filter_map
      (fun f ->
         match f.Scenario.f_fault with
         | Scenario.Crash m -> Some (f.Scenario.f_at, m)
         | _ -> None)
      c.Scenario.faults
  in
  let keeps_leave c =
    List.exists
      (fun f -> match f.Scenario.f_fault with Scenario.Leave _ -> true | _ -> false)
      c.Scenario.faults
  in
  (* One edit drops the whole first wave, leaving the second (and the
     unrelated leave) intact. *)
  Alcotest.(check bool) "first wave droppable as one edit" true
    (List.exists
       (fun c -> crashes_of c = [ (2.0, 4); (2.0, 5) ] && keeps_leave c)
       cands);
  (* And symmetrically the second. *)
  Alcotest.(check bool) "second wave droppable as one edit" true
    (List.exists
       (fun c -> crashes_of c = [ (1.0, 1); (1.0, 2); (1.0, 3) ] && keeps_leave c)
       cands);
  (* One edit halves the killed-member set across windows. *)
  Alcotest.(check bool) "kill set halvable as one edit" true
    (List.exists (fun c -> crashes_of c = [ (1.0, 1); (1.0, 2) ] && keeps_leave c) cands);
  (* The aggressive edits actually shrink: a predicate that only needs
     one second-wave crash minimizes without visiting every subset. *)
  let fails c = List.exists (fun (at, m) -> at = 2.0 && m = 4) (crashes_of c) in
  let shrunk, stats = Shrink.shrink ~fails sc in
  Alcotest.(check bool) "still fails" true (fails shrunk);
  Alcotest.(check int) "single crash left" 1 (List.length (crashes_of shrunk));
  Alcotest.(check bool) "few attempts"
    true (stats.Shrink.attempts < 200)

let test_shrink_drop_member_reindexes () =
  let sc = full_scenario () in
  let smaller =
    List.filter (fun c -> c.Scenario.n = sc.Scenario.n - 1) (Shrink.candidates sc)
  in
  List.iter
    (fun c ->
       (* Every candidate must still serialize and reload — the codec
          validates member ranges, so stale indices would surface. *)
       match Scenario.of_string (Scenario.to_string c) with
       | Ok _ -> ()
       | Error e -> Alcotest.fail ("drop-member candidate invalid: " ^ e))
    smaller;
  Alcotest.(check bool) "member-removal candidates exist" true (smaller <> [])

(* --- repro files --- *)

let test_repro_save_load () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "horus-repro-test" in
  let sc = { (fig2 ~rule_on:false ()) with Scenario.expect_violation = true } in
  match Repro.save ~dir sc with
  | None -> Alcotest.fail "save failed"
  | Some path ->
    (match Repro.load path with
     | Error e -> Alcotest.fail ("load failed: " ^ e)
     | Ok sc' ->
       Alcotest.(check string) "same bytes after round trip" (Scenario.to_string sc)
         (Scenario.to_string sc');
       Sys.remove path)

(* Every repro file under test/repros/ must replay to its recorded
   outcome: a bug, once caught and committed, stays caught. *)
let repro_case (path, loaded) =
  Alcotest.test_case path `Slow (fun () ->
      match loaded with
      | Error e -> Alcotest.fail (Printf.sprintf "%s does not load: %s" path e)
      | Ok sc ->
        let r = Runner.run sc in
        Alcotest.(check bool)
          (Printf.sprintf "%s: violation expectation (%b)" path
             sc.Scenario.expect_violation)
          sc.Scenario.expect_violation (Runner.failed r);
        (* And the replay itself is deterministic, byte for byte. *)
        Alcotest.(check string)
          (Printf.sprintf "%s: deterministic replay" path)
          (Runner.to_string r)
          (Runner.to_string (Runner.run sc)))

let () =
  let repro_cases = List.map repro_case (Repro.load_dir "repros") in
  Alcotest.run "check"
    [ ( "invariants",
        [ Alcotest.test_case "clean observations pass" `Quick test_invariants_clean;
          Alcotest.test_case "fifo gap detected" `Quick test_invariant_fifo_gap;
          Alcotest.test_case "view disagreement detected" `Quick
            test_invariant_view_disagreement;
          Alcotest.test_case "cut mismatch detected" `Quick test_invariant_vs_cut;
          Alcotest.test_case "delivery outside view detected" `Quick
            test_invariant_delivery_in_view;
          Alcotest.test_case "completeness detected" `Quick test_invariant_completeness ] );
      ( "scenario",
        [ Alcotest.test_case "json round trip" `Quick test_scenario_roundtrip;
          Alcotest.test_case "bad member index rejected" `Quick
            test_scenario_rejects_bad_member ] );
      ( "explorer",
        [ Alcotest.test_case "finds the flush race (rule off)" `Slow
            test_explorer_finds_flush_race;
          Alcotest.test_case "clean with Section 5 rule on" `Slow
            test_explorer_clean_with_rule_on;
          Alcotest.test_case "figure 2 regression (pinned schedule)" `Slow
            test_figure2_regression;
          Alcotest.test_case "runs are deterministic" `Slow test_run_deterministic ] );
      ( "shrinker",
        [ Alcotest.test_case "seeded fuzz failure minimized" `Slow
            test_shrink_seeded_failure;
          Alcotest.test_case "crash waves shed as whole windows" `Quick
            test_shrink_kill_windows;
          Alcotest.test_case "drop-member reindexes cleanly" `Quick
            test_shrink_drop_member_reindexes ] );
      ("repro", Alcotest.test_case "save/load round trip" `Quick test_repro_save_load
                :: repro_cases) ]
