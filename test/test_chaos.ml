(* Chaos-transport robustness: the soak harness at acceptance-level
   fault rates (determinism included), one-way partition recovery
   replayed from the committed repro, suspicion-timeout behaviour
   under short partitions, the NAK adaptive retransmission schedule
   (Rto) as a unit, and the bounded pair retransmit buffer.

   Everything runs in virtual time over the loopback hub; fixed seeds
   make every case bit-reproducible. *)

open Horus
module T = Horus_transport
module C = Horus_check
module Rto = Horus_layers.Nak.Rto

let spec = "TOTAL:MBRSHIP:FRAG:NAK:COM"

(* --- soak harness -------------------------------------------------- *)

let acceptance_profile =
  { T.Chaos.default with
    T.Chaos.drop = 0.10; duplicate = 0.02; reorder = 0.05; reorder_window = 8 }

let acceptance_config =
  { C.Soak.default_config with
    C.Soak.c_name = "soak-acceptance"; c_spec = spec; c_n = 4; c_seed = 7;
    c_profile = acceptance_profile; c_casts = 1000 }

(* The acceptance gate: 1000 casts across 4 members at 10% drop / 2%
   dup / reorder window 8 complete with zero violations, and a second
   run of the same config lands on the identical metrics fingerprint —
   chaos decisions, retransmissions and all. *)
let soak_acceptance () =
  let r1 = C.Soak.run acceptance_config in
  Alcotest.(check int) "all casts scheduled" 1000 r1.C.Soak.rp_casts;
  Alcotest.(check bool) "online slices ran" true (r1.C.Soak.rp_checks > 0);
  (match (r1.C.Soak.rp_online, r1.C.Soak.rp_final) with
   | [], [] -> ()
   | online, final ->
     Alcotest.failf "violations under chaos: %d online, %d final"
       (List.length online) (List.length final));
  let r2 = C.Soak.run acceptance_config in
  Alcotest.(check bool) "second run clean" true (C.Soak.ok r2);
  Alcotest.(check string) "outcome fingerprint stable"
    (Printf.sprintf "%016Lx" r1.C.Soak.rp_outcome_fingerprint)
    (Printf.sprintf "%016Lx" r2.C.Soak.rp_outcome_fingerprint);
  Alcotest.(check string) "metrics fingerprint stable"
    (Printf.sprintf "%016Lx" r1.C.Soak.rp_metrics_fingerprint)
    (Printf.sprintf "%016Lx" r2.C.Soak.rp_metrics_fingerprint)

(* A failing soak leaves a replayable repro behind, flagged as such. *)
let soak_repro_on_violation () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "horus-soak-test" in
  (* An impossible deadline: a permanent full partition between all
     members while traffic flows must violate completeness. *)
  let profile =
    { T.Chaos.default with
      T.Chaos.partitions =
        List.concat_map
          (fun a -> List.filter_map
              (fun b -> if a = b then None
                else Some { T.Chaos.pt_from = a; pt_to = b; pt_start = 0.0; pt_stop = None })
              [ 0; 1 ])
          [ 0; 1 ] }
  in
  let c =
    { C.Soak.default_config with
      C.Soak.c_name = "soak-dead"; c_spec = spec; c_n = 2; c_seed = 3;
      c_profile = profile; c_casts = 10; c_quiesce = 1.0 }
  in
  let r = C.Soak.run ~repro_dir:dir c in
  Alcotest.(check bool) "violation detected" false (C.Soak.ok r);
  (match r.C.Soak.rp_repro with
   | None -> Alcotest.fail "no repro saved"
   | Some path ->
     (match C.Repro.load path with
      | Ok sc ->
        Alcotest.(check bool) "flagged as violating" true sc.C.Scenario.expect_violation;
        Alcotest.(check bool) "chaos section survives" true (sc.C.Scenario.chaos <> None)
      | Error e -> Alcotest.failf "repro does not load: %s" e);
     Sys.remove path)

(* --- one-way partitions and suspicion timeouts --------------------- *)

let final_members o =
  match o.C.Invariant.o_final with Some (_, ms) -> ms | None -> []

(* The committed repro: a 2-member group, a one-way block (member 1's
   frames vanish, member 0's still arrive) held longer than NAK's
   suspicion timeout. The survivor must converge to a clean singleton
   view and the excluded member must EXIT (it hears the excluding
   install over the still-open direction) — no stuck flush, no limbo. *)
let oneway_exclusion () =
  match C.Repro.load "repros/chaos-oneway-exclusion.json" with
  | Error e -> Alcotest.failf "repro does not load: %s" e
  | Ok sc ->
    Alcotest.(check bool) "scenario is chaos-backed" true (sc.C.Scenario.chaos <> None);
    let r = C.Runner.run sc in
    Alcotest.(check int) "no violations" 0 (List.length r.C.Runner.r_violations);
    let obs = r.C.Runner.r_obs in
    let o0 = List.nth obs 0 and o1 = List.nth obs 1 in
    Alcotest.(check bool) "survivor did not exit" false o0.C.Invariant.o_exited;
    Alcotest.(check (list int)) "survivor's final view is itself alone" [ 0 ]
      (final_members o0);
    Alcotest.(check bool) "view actually changed" true
      (List.length o0.C.Invariant.o_views > 0);
    Alcotest.(check bool) "excluded member exited cleanly" true o1.C.Invariant.o_exited;
    (* Everything cast before the partition was delivered everywhere. *)
    List.iter
      (fun o ->
         Alcotest.(check int)
           (Printf.sprintf "member %d delivered all pre-partition casts"
              o.C.Invariant.o_member)
           6 (List.length o.C.Invariant.o_casts))
      obs

(* Transient loss must not rule members out: the same one-way block
   held well short of the suspicion timeout (NAK suspects after
   [suspect_after] of silence) heals without any view change at all. *)
let short_partition_no_exclusion () =
  let profile =
    { T.Chaos.default with
      T.Chaos.partitions =
        [ { T.Chaos.pt_from = 1; pt_to = 0; pt_start = 4.0; pt_stop = Some 4.1 } ] }
  in
  let sc =
    C.Scenario.make ~name:"chaos-short-partition" ~seed:11 ~chaos:profile
      ~ops:(List.init 6 (fun i -> { C.Scenario.op_member = i mod 2; op_at = 0.05 *. float_of_int i; op_pad = 0 }))
      ~run_for:4.0 ~spec ~n:2 ()
  in
  let r = C.Runner.run sc in
  Alcotest.(check int) "no violations" 0 (List.length r.C.Runner.r_violations);
  List.iter
    (fun o ->
       Alcotest.(check bool)
         (Printf.sprintf "member %d still in" o.C.Invariant.o_member)
         false o.C.Invariant.o_exited;
       Alcotest.(check int)
         (Printf.sprintf "member %d sees both members" o.C.Invariant.o_member)
         2 (List.length (final_members o));
       Alcotest.(check int)
         (Printf.sprintf "member %d saw no view change" o.C.Invariant.o_member)
         0 (List.length o.C.Invariant.o_views))
    r.C.Runner.r_obs

(* Shrinking a chaos scenario only ever quiets the profile: candidates
   drop the section or zero one knob, never invent new faults. *)
let shrink_quiets_chaos () =
  let sc =
    C.Scenario.make ~name:"shrink-me" ~seed:1
      ~chaos:{ acceptance_profile with T.Chaos.partitions =
                 [ { T.Chaos.pt_from = 0; pt_to = 1; pt_start = 1.0; pt_stop = None } ] }
      ~ops:[ { C.Scenario.op_member = 0; op_at = 0.0; op_pad = 0 } ]
      ~spec ~n:2 ()
  in
  let cands = C.Shrink.candidates sc in
  Alcotest.(check bool) "some candidate drops the chaos section" true
    (List.exists (fun c -> c.C.Scenario.chaos = None) cands);
  Alcotest.(check bool) "some candidate zeroes the drop rate" true
    (List.exists
       (fun c ->
          match c.C.Scenario.chaos with
          | Some p -> p.T.Chaos.drop = 0.0 && p.T.Chaos.duplicate > 0.0
          | None -> false)
       cands);
  Alcotest.(check bool) "some candidate sheds the partition" true
    (List.exists
       (fun c ->
          match c.C.Scenario.chaos with
          | Some p -> p.T.Chaos.partitions = [] && p.T.Chaos.drop > 0.0
          | None -> false)
       cands)

(* --- NAK retransmission schedule (Rto) ----------------------------- *)

let feq = Alcotest.(check (float 1e-9))

(* Jacobson/Karels bookkeeping: first sample seeds srtt = s and
   rttvar = s/2; each further sample folds in with alpha = 1/8,
   beta = 1/4; RTO = srtt + 4 * rttvar, clamped. *)
let rto_estimator () =
  let r = Rto.create ~init:0.1 ~min_rto:0.02 ~max_rto:2.0 () in
  Alcotest.(check (option (float 1e-9))) "no estimate yet" None (Rto.srtt r);
  feq "before any sample, RTO = init" 0.1 (Rto.rto r);
  Rto.observe r 0.1;
  Alcotest.(check (option (float 1e-9))) "first sample seeds srtt" (Some 0.1) (Rto.srtt r);
  feq "rto = srtt + 4 * rttvar" 0.3 (Rto.rto r);
  Rto.observe r 0.1;
  (* rttvar = 0.75 * 0.05 + 0.25 * 0 = 0.0375; srtt stays 0.1. *)
  feq "steady samples shrink the variance" (0.1 +. 4.0 *. 0.0375) (Rto.rto r);
  Rto.observe r (-1.0);
  feq "negative samples ignored" (0.1 +. 4.0 *. 0.0375) (Rto.rto r);
  let tight = Rto.create ~init:0.5 ~min_rto:0.02 ~max_rto:2.0 () in
  List.iter (fun _ -> Rto.observe tight 0.001) (List.init 50 Fun.id);
  feq "min_rto floors the clamp" 0.02 (Rto.rto tight);
  Rto.observe tight 100.0;
  feq "max_rto caps the clamp" 2.0 (Rto.rto tight)

(* The backoff schedule: first retransmission at RTO, then doubling,
   capped at max_rto; [capped] reports when the cap is reached. *)
let rto_backoff () =
  let r = Rto.create ~init:0.1 ~min_rto:0.02 ~max_rto:2.0 () in
  feq "first retransmit at RTO" 0.1 (Rto.backoff r ~attempt:0);
  feq "second doubles" 0.2 (Rto.backoff r ~attempt:1);
  feq "third doubles again" 0.4 (Rto.backoff r ~attempt:2);
  feq "cap honored" 2.0 (Rto.backoff r ~attempt:10);
  Alcotest.(check bool) "not capped early" false (Rto.capped r ~attempt:2);
  Alcotest.(check bool) "capped at the ceiling" true (Rto.capped r ~attempt:10);
  feq "backoff never exceeds max_rto" 2.0 (Rto.backoff r ~attempt:1000)

(* Jitter is symmetric and bounded: base * (1 +/- frac). *)
let rto_jitter () =
  feq "u = 1/2 is the identity" 1.0 (Rto.with_jitter 1.0 ~frac:0.1 ~u:0.5);
  feq "u = 0 is the lower bound" 0.9 (Rto.with_jitter 1.0 ~frac:0.1 ~u:0.0);
  feq "u -> 1 approaches the upper bound" 1.1 (Rto.with_jitter 1.0 ~frac:0.1 ~u:1.0);
  List.iter
    (fun k ->
       let u = float_of_int k /. 16.0 in
       let j = Rto.with_jitter 0.25 ~frac:0.2 ~u in
       Alcotest.(check bool)
         (Printf.sprintf "u = %g within bounds" u)
         true
         (j >= 0.25 *. 0.8 -. 1e-12 && j <= 0.25 *. 1.2 +. 1e-12))
    (List.init 17 Fun.id)

let rto_validation () =
  let raises f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  raises (fun () -> Rto.create ~min_rto:0.0 ());
  raises (fun () -> Rto.create ~min_rto:0.5 ~max_rto:0.1 ());
  raises (fun () -> Rto.create ~init:0.0 ())

(* --- bounded pair retransmit buffer -------------------------------- *)

let dump_field group key =
  List.fold_left
    (fun acc line ->
       match acc with
       | Some _ -> acc
       | None ->
         List.fold_left
           (fun acc tok ->
              match (acc, String.index_opt tok '=') with
              | Some _, _ | _, None -> acc
              | None, Some i ->
                if String.sub tok 0 i = key then
                  int_of_string_opt (String.sub tok (i + 1) (String.length tok - i - 1))
                else None)
           None
           (String.split_on_char ' ' line))
    None (Group.dump group)

(* Unicasts into a black hole: the per-peer retransmit buffer evicts
   its oldest entry beyond [pair_buffer_limit], so an unreachable peer
   holds bounded memory no matter how much is queued behind it. *)
let pair_buffer_eviction () =
  let config = { Horus_sim.Net.default_config with drop_prob = 1.0 } in
  let world = World.create ~config ~seed:5 () in
  let g = World.fresh_group_addr world in
  let limit = 4 in
  let pspec = Printf.sprintf "NAK(pair_buffer_limit=%d):COM" limit in
  let members = List.init 2 (fun _ -> Group.join (Endpoint.create world ~spec:pspec) g) in
  let addrs = List.sort Addr.compare_endpoint (List.map Group.addr members) in
  let v = View.create ~group:g ~ltime:0 ~members:addrs in
  List.iter (fun m -> Group.install_view m v) members;
  let a = List.nth members 0 and b = List.nth members 1 in
  for k = 0 to 11 do
    Group.send a [ Group.addr b ] (Printf.sprintf "s%d" k)
  done;
  World.run_for world ~duration:2.0;
  (match dump_field a "unacked" with
   | Some n ->
     Alcotest.(check bool)
       (Printf.sprintf "buffer bounded at the limit (%d <= %d)" n limit)
       true (n <= limit)
   | None -> Alcotest.fail "no unacked field in NAK dump");
  Alcotest.(check (list string)) "black hole delivered nothing" [] (Group.casts b)

let () =
  Alcotest.run "chaos"
    [ ( "soak",
        [ Alcotest.test_case "acceptance: 1000 casts, 10% drop, deterministic" `Slow
            soak_acceptance;
          Alcotest.test_case "violation leaves a repro" `Quick soak_repro_on_violation ] );
      ( "partition",
        [ Alcotest.test_case "one-way partition: clean exclusion (committed repro)" `Slow
            oneway_exclusion;
          Alcotest.test_case "short partition: no false exclusion" `Slow
            short_partition_no_exclusion;
          Alcotest.test_case "shrink quiets chaos knobs" `Quick shrink_quiets_chaos ] );
      ( "rto",
        [ Alcotest.test_case "estimator follows Jacobson/Karels" `Quick rto_estimator;
          Alcotest.test_case "backoff doubles to the cap" `Quick rto_backoff;
          Alcotest.test_case "jitter is symmetric and bounded" `Quick rto_jitter;
          Alcotest.test_case "parameter validation" `Quick rto_validation ] );
      ( "nak",
        [ Alcotest.test_case "pair retransmit buffer is bounded" `Quick
            pair_buffer_eviction ] ) ]
