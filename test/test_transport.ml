(* The transport subsystem: frame codec (round-trip and rejection),
   peer book parsing, the loopback backend raw and under a full
   protocol stack, bad-frame injection, the wall-clock driver, and —
   only when HORUS_UDP_TESTS=1 (the CI transport job) — real UDP
   sockets. Everything else runs in virtual time and is deterministic. *)

open Horus
module T = Horus_transport
module I = Horus_check.Invariant

(* --- frame codec ------------------------------------------------- *)

let payload_arb = QCheck.(map Bytes.of_string (string_of_size Gen.(0 -- 2000)))

let prop_frame_roundtrip =
  QCheck.Test.make ~name:"frame: encode/decode round-trip" ~count:300
    QCheck.(triple payload_arb (int_bound 100_000) (int_bound 100_000))
    (fun (payload, src, gid) ->
       let frame =
         T.Frame.encode ~src:(Addr.endpoint src) ~group:(Addr.group gid) payload
       in
       match T.Frame.decode frame with
       | Ok (hdr, body) ->
         Addr.endpoint_id hdr.T.Frame.h_src = src
         && Addr.group_id hdr.T.Frame.h_group = gid
         && Bytes.equal body payload
       | Error _ -> false)

let prop_frame_truncation =
  QCheck.Test.make ~name:"frame: every proper prefix is rejected" ~count:100 payload_arb
    (fun payload ->
       let frame = T.Frame.encode ~src:(Addr.endpoint 7) ~group:(Addr.group 3) payload in
       let n = Bytes.length frame in
       List.for_all
         (fun k ->
            match T.Frame.decode (Bytes.sub frame 0 k) with
            | Error _ -> true
            | Ok _ -> false)
         (List.init n (fun k -> k)))

let prop_frame_corruption =
  QCheck.Test.make ~name:"frame: any single flipped byte is rejected" ~count:100
    QCheck.(pair payload_arb (int_bound 10_000))
    (fun (payload, pos_seed) ->
       let frame = T.Frame.encode ~src:(Addr.endpoint 7) ~group:(Addr.group 3) payload in
       let pos = pos_seed mod Bytes.length frame in
       let garbled = Bytes.copy frame in
       Bytes.set garbled pos (Char.chr (Char.code (Bytes.get garbled pos) lxor 0x40));
       match T.Frame.decode garbled with Error _ -> true | Ok _ -> false)

(* A zero-length payload is a legal frame: exactly [overhead] bytes,
   round-trips, and still rejects corruption. *)
let frame_zero_length () =
  let frame = T.Frame.encode ~src:(Addr.endpoint 5) ~group:(Addr.group 9) Bytes.empty in
  Alcotest.(check int) "exactly overhead bytes" T.Frame.overhead (Bytes.length frame);
  (match T.Frame.decode frame with
   | Ok (hdr, body) ->
     Alcotest.(check int) "src" 5 (Addr.endpoint_id hdr.T.Frame.h_src);
     Alcotest.(check int) "empty body" 0 (Bytes.length body)
   | Error e -> Alcotest.failf "zero-length frame rejected: %s" (T.Frame.error_to_string e));
  for pos = 0 to Bytes.length frame - 1 do
    let garbled = Bytes.copy frame in
    Bytes.set garbled pos (Char.chr (Char.code (Bytes.get garbled pos) lxor 1));
    match T.Frame.decode garbled with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted flip at byte %d of empty frame" pos
  done

(* Exhaustive single-bit corruption: every bit of every byte of a
   small frame, deterministically — the quickcheck property above
   samples this space, this test closes it. *)
let frame_every_bit_flip () =
  let frame =
    T.Frame.encode ~src:(Addr.endpoint 7) ~group:(Addr.group 3)
      (Bytes.of_string "chaos!")
  in
  for pos = 0 to Bytes.length frame - 1 do
    for bit = 0 to 7 do
      let garbled = Bytes.copy frame in
      Bytes.set garbled pos (Char.chr (Char.code (Bytes.get garbled pos) lxor (1 lsl bit)));
      match T.Frame.decode garbled with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted flip of bit %d at byte %d" bit pos
    done
  done

(* A UDP-ceiling payload round-trips; truncating one byte off the end
   is rejected. *)
let frame_max_payload () =
  let payload = Bytes.make (65_507 - T.Frame.overhead) '\xa5' in
  let frame = T.Frame.encode ~src:(Addr.endpoint 1) ~group:(Addr.group 2) payload in
  Alcotest.(check int) "fills the datagram" 65_507 (Bytes.length frame);
  (match T.Frame.decode frame with
   | Ok (_, body) -> Alcotest.(check bool) "body intact" true (Bytes.equal body payload)
   | Error e -> Alcotest.failf "max-payload frame rejected: %s" (T.Frame.error_to_string e));
  match T.Frame.decode (Bytes.sub frame 0 (Bytes.length frame - 1)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted truncated max-payload frame"

(* Tampering with the declared length and fixing the CRC up still
   fails: the paylen field must agree with the actual body size. *)
let frame_length_mismatch () =
  let frame = T.Frame.encode ~src:(Addr.endpoint 7) ~group:(Addr.group 3)
      (Bytes.of_string "body") in
  let garbled = Bytes.copy frame in
  (* paylen is the u32 after magic(2) + version(1) + src(4) + gid(4). *)
  let paylen_off = 11 in
  Bytes.set_int32_be garbled paylen_off
    (Int32.add (Bytes.get_int32_be garbled paylen_off) 1l);
  let n = Bytes.length garbled in
  Bytes.set_int32_be garbled (n - 4)
    (Int32.of_int (Horus_util.Crc.crc32 garbled ~off:0 ~len:(n - 4)));
  match T.Frame.decode garbled with
  | Error (T.Frame.Length_mismatch { declared = 5; actual = 4 }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (T.Frame.error_to_string e)
  | Ok _ -> Alcotest.fail "accepted length mismatch"

let frame_version () =
  let frame =
    T.Frame.encode ~version:3 ~src:(Addr.endpoint 1) ~group:(Addr.group 0)
      (Bytes.of_string "x")
  in
  match T.Frame.decode frame with
  | Error (T.Frame.Bad_version 3) -> ()
  | other ->
    Alcotest.failf "expected Bad_version 3, got %s"
      (match other with
       | Ok _ -> "Ok"
       | Error e -> T.Frame.error_to_string e)

let frame_magic () =
  match T.Frame.decode (Bytes.make T.Frame.overhead '\xff') with
  | Error (T.Frame.Bad_magic _) -> ()
  | _ -> Alcotest.fail "expected Bad_magic"

let crc_check_value () =
  (* The ISO-HDLC check value: CRC-32 of "123456789". *)
  Alcotest.(check int) "crc32" 0xCBF43926 (Horus_util.Crc.crc32_string "123456789")

(* --- peer book ---------------------------------------------------- *)

let peers_parse () =
  (match T.Peers.parse "1=127.0.0.1:7002, 0=127.0.0.1:7001" with
   | Ok p ->
     Alcotest.(check int) "size" 2 (T.Peers.size p);
     Alcotest.(check (option string)) "rank 0" (Some "127.0.0.1:7001") (T.Peers.find p ~rank:0);
     Alcotest.(check (option int)) "rank_of" (Some 1)
       (T.Peers.rank_of p ~addr:"127.0.0.1:7002");
     Alcotest.(check string) "canonical" "0=127.0.0.1:7001,1=127.0.0.1:7002"
       (T.Peers.to_string p)
   | Error e -> Alcotest.failf "parse failed: %s" e);
  List.iter
    (fun bad ->
       match T.Peers.parse bad with
       | Ok _ -> Alcotest.failf "accepted %S" bad
       | Error _ -> ())
    [ ""; "0=a,0=b"; "-1=a"; "x=a"; "0" ]

(* --- loopback backend, raw ---------------------------------------- *)

let loopback_raw () =
  let engine = Horus_sim.Engine.create () in
  let hub = T.Loopback.hub engine in
  let a = T.Loopback.create hub and b = T.Loopback.create hub in
  let got = ref [] in
  b.T.Backend.set_rx (fun ~src bytes -> got := (src, Bytes.to_string bytes) :: !got);
  a.T.Backend.send ~dest:b.T.Backend.local_addr (Bytes.of_string "hello");
  a.T.Backend.send ~dest:"mem:99" (Bytes.of_string "void");
  Alcotest.(check (list (pair string string))) "nothing before the engine runs" [] !got;
  Horus_sim.Engine.run engine;
  Alcotest.(check (list (pair string string)))
    "delivered with source address"
    [ (a.T.Backend.local_addr, "hello") ]
    !got;
  Alcotest.(check int) "sent counts both" 2 a.T.Backend.stats.T.Backend.sent;
  Alcotest.(check int) "unknown dest dropped" 1 a.T.Backend.stats.T.Backend.dropped;
  Alcotest.(check int) "delivered" 1 b.T.Backend.stats.T.Backend.delivered;
  b.T.Backend.close ();
  a.T.Backend.send ~dest:b.T.Backend.local_addr (Bytes.of_string "late");
  Horus_sim.Engine.run engine;
  Alcotest.(check int) "closed receiver gets nothing" 1 b.T.Backend.stats.T.Backend.delivered

(* Datagrams that beat the receiver's set_rx are queued and flushed in
   order once the callback lands — the regression for the early-frame
   drop, where a founder's first status frames raced a joiner's
   attach. *)
let loopback_early_rx () =
  let engine = Horus_sim.Engine.create () in
  let hub = T.Loopback.hub engine in
  let a = T.Loopback.create hub and b = T.Loopback.create hub in
  a.T.Backend.send ~dest:b.T.Backend.local_addr (Bytes.of_string "one");
  a.T.Backend.send ~dest:b.T.Backend.local_addr (Bytes.of_string "two");
  Horus_sim.Engine.run engine;
  Alcotest.(check int) "queued, not dropped" 0 b.T.Backend.stats.T.Backend.dropped;
  let got = ref [] in
  b.T.Backend.set_rx (fun ~src:_ bytes -> got := Bytes.to_string bytes :: !got);
  Alcotest.(check (list string)) "flushed in arrival order" [ "one"; "two" ] (List.rev !got);
  a.T.Backend.send ~dest:b.T.Backend.local_addr (Bytes.of_string "three");
  Horus_sim.Engine.run engine;
  Alcotest.(check (list string)) "live delivery after the flush"
    [ "one"; "two"; "three" ] (List.rev !got)

(* The early-frame queue is bounded: beyond [pending_limit] the oldest
   arrival is dropped and counted, so a never-attached receiver cannot
   hold unbounded memory. *)
let loopback_pending_bounded () =
  let engine = Horus_sim.Engine.create () in
  let hub = T.Loopback.hub engine in
  let a = T.Loopback.create hub and b = T.Loopback.create hub in
  let extra = 5 in
  for k = 0 to T.Loopback.pending_limit + extra - 1 do
    a.T.Backend.send ~dest:b.T.Backend.local_addr
      (Bytes.of_string (string_of_int k))
  done;
  Horus_sim.Engine.run engine;
  Alcotest.(check int) "oldest dropped" extra b.T.Backend.stats.T.Backend.dropped;
  let first = ref None and count = ref 0 in
  b.T.Backend.set_rx (fun ~src:_ bytes ->
      if !first = None then first := Some (Bytes.to_string bytes);
      incr count);
  Alcotest.(check int) "limit survivors" T.Loopback.pending_limit !count;
  Alcotest.(check (option string)) "oldest survivor"
    (Some (string_of_int extra)) !first

(* --- full stack over loopback (virtual time, deterministic) ------- *)

let spec = "TOTAL:MBRSHIP:FRAG:NAK:COM"

(* Two endpoints on a loopback hub, the section-7 stack, 500 casts
   each; check the full virtual-synchrony bundle plus total order with
   the shared invariant library. *)
let loopback_full_stack () =
  let world = World.create () in
  let hub = T.Loopback.hub (World.engine world) in
  let link = Transport_link.create world in
  let peers = T.Peers.create () in
  let n = 2 and casts_each = 500 in
  let backends =
    List.init n (fun r ->
        let b = T.Loopback.create ~addr:(Printf.sprintf "mem:%d" r) hub in
        T.Peers.add peers ~rank:r ~addr:b.T.Backend.local_addr;
        b)
  in
  let endpoints =
    List.mapi (fun r backend -> Transport_link.endpoint link ~backend ~peers ~rank:r ~spec)
      backends
  in
  let g = World.fresh_group_addr world in
  let groups =
    match endpoints with
    | first :: rest ->
      let founder = Group.join ~record:false first g in
      founder
      :: List.map (fun ep -> Group.join ~record:false ~contact:(Group.addr founder) ep g) rest
    | [] -> assert false
  in
  (* Runner-style recorders for the invariant library. *)
  let recs =
    List.map
      (fun gr ->
         let casts = ref [] and views = ref [] in
         Group.set_on_up gr (fun ev ->
             match ev with
             | Horus_hcpi.Event.U_cast (_, m, _) ->
               let epoch =
                 match Group.view gr with Some v -> View.ltime v | None -> -1
               in
               casts := (Msg.to_string m, epoch) :: !casts
             | Horus_hcpi.Event.U_view v ->
               views :=
                 ( (View.ltime v, Addr.endpoint_id (View.coordinator v)),
                   List.map Addr.endpoint_id (View.members v) )
                 :: !views
             | _ -> ());
         (casts, views))
      groups
  in
  World.run_for world ~duration:2.0;
  List.iteri
    (fun origin gr ->
       for k = 0 to casts_each - 1 do
         World.after world ~delay:(0.002 *. float_of_int (k + 1)) (fun () ->
             Group.cast gr (I.payload ~tag:'o' ~origin ~k ()))
       done)
    groups;
  World.run_for world ~duration:(0.002 *. float_of_int casts_each);
  World.run_for world ~duration:5.0;
  let obs =
    List.mapi
      (fun i (gr, (casts, views)) ->
         { I.o_member = i;
           o_eid = Addr.endpoint_id (Group.addr gr);
           o_crashed = false;
           o_left = false;
           o_exited = Group.exited gr;
           o_casts = List.rev !casts;
           o_views = List.rev !views;
           o_final =
             (match Group.view gr with
              | Some v -> Some (View.ltime v, List.map Addr.endpoint_id (View.members v))
              | None -> None) })
      (List.combine groups recs)
  in
  List.iter
    (fun o ->
       Alcotest.(check int)
         (Printf.sprintf "member %d delivered all %d casts" o.I.o_member (n * casts_each))
         (n * casts_each) (List.length o.I.o_casts))
    obs;
  (match I.standard ~total:true ~tag:'o' ~sent:(fun _ -> casts_each) obs with
   | [] -> ()
   | vs ->
     Alcotest.failf "invariant violations: %s"
       (String.concat "; "
          (List.map (fun v -> Format.asprintf "%a" I.pp_violation v) vs)));
  (* All traffic rode the transport, none of it the simulated net. *)
  let sent =
    List.fold_left (fun acc b -> acc + b.T.Backend.stats.T.Backend.sent) 0 backends
  in
  Alcotest.(check bool) "transport carried the run" true (sent > 2 * n * casts_each / 2);
  Alcotest.(check int) "sim net idle" 0
    (Horus_sim.Net.stats (World.net world)).Horus_sim.Net.sent

(* Determinism: two identical loopback worlds serialize to the same
   metrics snapshot, transport section included. *)
let loopback_deterministic () =
  let run () =
    let world = World.create () in
    let hub = T.Loopback.hub (World.engine world) in
    let link = Transport_link.create world in
    let peers = T.Peers.create () in
    let backends =
      List.init 2 (fun r ->
          let b = T.Loopback.create ~addr:(Printf.sprintf "mem:%d" r) hub in
          T.Peers.add peers ~rank:r ~addr:b.T.Backend.local_addr;
          b)
    in
    let eps =
      List.mapi
        (fun r backend -> Transport_link.endpoint link ~backend ~peers ~rank:r ~spec)
        backends
    in
    let g = World.fresh_group_addr world in
    let a = Group.join (List.nth eps 0) g in
    let _b = Group.join ~contact:(Group.addr a) (List.nth eps 1) g in
    World.run_for world ~duration:2.0;
    for k = 0 to 19 do
      World.after world ~delay:(0.002 *. float_of_int k) (fun () ->
          Group.cast a (Printf.sprintf "m%d" k))
    done;
    World.run_for world ~duration:2.0;
    Json.to_string (World.metrics_json world)
  in
  Alcotest.(check string) "same snapshot" (run ()) (run ())

(* A rogue datagram hits a stack endpoint: counted bad, stack unharmed. *)
let bad_frame_injection () =
  let world = World.create () in
  let hub = T.Loopback.hub (World.engine world) in
  let link = Transport_link.create world in
  let peers = T.Peers.create () in
  let backends =
    List.init 2 (fun r ->
        let b = T.Loopback.create ~addr:(Printf.sprintf "mem:%d" r) hub in
        T.Peers.add peers ~rank:r ~addr:b.T.Backend.local_addr;
        b)
  in
  let eps =
    List.mapi (fun r backend -> Transport_link.endpoint link ~backend ~peers ~rank:r ~spec)
      backends
  in
  let g = World.fresh_group_addr world in
  let a = Group.join (List.nth eps 0) g in
  let b = Group.join ~contact:(Group.addr a) (List.nth eps 1) g in
  World.run_for world ~duration:2.0;
  let rogue = T.Loopback.create hub in
  rogue.T.Backend.send ~dest:"mem:0" (Bytes.of_string "not a horus frame");
  rogue.T.Backend.send ~dest:"mem:0" Bytes.empty;
  Group.cast a "after";
  World.run_for world ~duration:2.0;
  Alcotest.(check int) "bad frames counted" 2
    (List.nth backends 0).T.Backend.stats.T.Backend.bad_frame;
  Alcotest.(check (list string)) "stack unharmed" [ "after" ] (Group.casts b)

(* --- wall-clock driver -------------------------------------------- *)

(* Real time, but bounded to tens of milliseconds: a timer scheduled on
   the engine fires under the driver at roughly the right wall moment. *)
let driver_fires_timers () =
  let engine = Horus_sim.Engine.create () in
  let driver = T.Driver.create ~max_tick:0.01 engine [] in
  let fired = ref false in
  ignore (Horus_sim.Engine.schedule engine ~delay:0.05 (fun () -> fired := true));
  let t0 = Unix.gettimeofday () in
  Alcotest.(check bool) "fired" true (T.Driver.run_until ~timeout:2.0 driver (fun () -> !fired));
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "not before its time" true (dt >= 0.045);
  Alcotest.(check bool) "not absurdly late" true (dt < 1.0)

(* The idle-step sleep clamp, as a pure function: the select timeout
   is [until_timer] clamped into [min_sleep, max_tick], then capped by
   [max_wait] — which alone may force 0 (a caller in a hurry), so a
   stuck-in-the-past timer queue can never busy-spin the idle loop. *)
let driver_sleep_for () =
  let f = T.Driver.sleep_for ~max_tick:0.05 ~min_sleep:0.0005 in
  let check name expected got = Alcotest.(check (float 1e-12)) name expected got in
  check "in range passes through" 0.01 (f ~until_timer:0.01 ());
  check "short timer floored" 0.0005 (f ~until_timer:0.0001 ());
  check "due timer floored" 0.0005 (f ~until_timer:0.0 ());
  check "overdue timer floored" 0.0005 (f ~until_timer:(-3.0) ());
  check "distant timer capped" 0.05 (f ~until_timer:10.0 ());
  check "no timer capped" 0.05 (f ~until_timer:infinity ());
  check "max_wait tightens" 0.002 (f ~max_wait:0.002 ~until_timer:0.01 ());
  check "max_wait may force zero" 0.0 (f ~max_wait:0.0 ~until_timer:0.01 ());
  check "negative max_wait clamps to zero" 0.0 (f ~max_wait:(-1.0) ~until_timer:0.01 ());
  check "loose max_wait irrelevant" 0.01 (f ~max_wait:1.0 ~until_timer:0.01 ())

(* Socket facade over loopback: recvfrom_timeout blocks on the driver
   and times out honestly. Group formation runs in virtual time first;
   only the receive itself uses the wall clock. *)
let socket_recvfrom_timeout () =
  let world = World.create () in
  let hub = T.Loopback.hub (World.engine world) in
  let link = Transport_link.create world in
  let peers = T.Peers.create () in
  let backends =
    List.init 2 (fun r ->
        let b = T.Loopback.create ~addr:(Printf.sprintf "mem:%d" r) hub in
        T.Peers.add peers ~rank:r ~addr:b.T.Backend.local_addr;
        b)
  in
  let eps =
    List.mapi (fun r backend -> Transport_link.endpoint link ~backend ~peers ~rank:r ~spec)
      backends
  in
  let g = World.fresh_group_addr world in
  let sa = Socket.create (List.nth eps 0) g in
  let sb = Socket.create ~contact:(Group.addr (Socket.group sa)) (List.nth eps 1) g in
  World.run_for world ~duration:2.0;
  let driver = T.Driver.create ~max_tick:0.01 (World.engine world) backends in
  Alcotest.(check (option (pair int string)))
    "empty queue times out" None
    (Socket.recvfrom_timeout sb ~driver ~timeout:0.05);
  Socket.sendto sa "over the wire";
  (match Socket.recvfrom_timeout sb ~driver ~timeout:5.0 with
   | Some (_, payload) -> Alcotest.(check string) "payload" "over the wire" payload
   | None -> Alcotest.fail "recvfrom_timeout returned nothing")

(* --- UDP (CI transport job only: HORUS_UDP_TESTS=1) ---------------- *)

let udp_enabled = Sys.getenv_opt "HORUS_UDP_TESTS" = Some "1"

let udp_raw_roundtrip () =
  let engine = Horus_sim.Engine.create () in
  let a = T.Udp.create ~bind:"127.0.0.1:0" () in
  let b = T.Udp.create ~bind:"127.0.0.1:0" () in
  let driver = T.Driver.create engine [ a; b ] in
  let got = ref None in
  b.T.Backend.set_rx (fun ~src bytes -> got := Some (src, Bytes.to_string bytes));
  a.T.Backend.send ~dest:b.T.Backend.local_addr (Bytes.of_string "ping");
  Alcotest.(check bool) "received" true
    (T.Driver.run_until ~timeout:5.0 driver (fun () -> !got <> None));
  (match !got with
   | Some (src, payload) ->
     Alcotest.(check string) "payload" "ping" payload;
     Alcotest.(check string) "src is a's bound address" a.T.Backend.local_addr src
   | None -> assert false);
  a.T.Backend.close ();
  b.T.Backend.close ()

(* Two UDP-attached endpoints in one process: the full stack reaches
   view agreement and delivers a totally-ordered stream over the real
   kernel. *)
let udp_full_stack () =
  let world = World.create () in
  let link = Transport_link.create world in
  let peers = T.Peers.create () in
  let backends = List.init 2 (fun _ -> T.Udp.create ~bind:"127.0.0.1:0" ()) in
  List.iteri
    (fun r (b : T.Backend.t) -> T.Peers.add peers ~rank:r ~addr:b.T.Backend.local_addr)
    backends;
  let eps =
    List.mapi (fun r backend -> Transport_link.endpoint link ~backend ~peers ~rank:r ~spec)
      backends
  in
  let g = World.fresh_group_addr world in
  let a = Group.join (List.nth eps 0) g in
  let b = Group.join ~contact:(Group.addr a) (List.nth eps 1) g in
  let driver = T.Driver.create (World.engine world) backends in
  let formed =
    T.Driver.run_until ~timeout:15.0 driver (fun () ->
        match (Group.view a, Group.view b) with
        | Some va, Some vb -> View.size va = 2 && View.size vb = 2
        | _ -> false)
  in
  Alcotest.(check bool) "view agreement over UDP" true formed;
  let casts = 100 in
  for k = 0 to casts - 1 do
    World.after world ~delay:(0.001 *. float_of_int (k + 1)) (fun () ->
        Group.cast a (I.payload ~tag:'o' ~origin:0 ~k ()))
  done;
  let complete =
    T.Driver.run_until ~timeout:15.0 driver (fun () ->
        List.length (Group.casts a) >= casts && List.length (Group.casts b) >= casts)
  in
  Alcotest.(check bool) "all delivered" true complete;
  Alcotest.(check (list string)) "identical order" (Group.casts a) (Group.casts b);
  List.iter (fun (bk : T.Backend.t) -> bk.T.Backend.close ()) backends

let () =
  Alcotest.run "transport"
    ([ ( "frame",
         [ QCheck_alcotest.to_alcotest prop_frame_roundtrip;
           QCheck_alcotest.to_alcotest prop_frame_truncation;
           QCheck_alcotest.to_alcotest prop_frame_corruption;
           Alcotest.test_case "zero-length payload" `Quick frame_zero_length;
           Alcotest.test_case "every single-bit flip rejected" `Quick frame_every_bit_flip;
           Alcotest.test_case "max payload fills a datagram" `Quick frame_max_payload;
           Alcotest.test_case "declared length must match" `Quick frame_length_mismatch;
           Alcotest.test_case "wrong version rejected" `Quick frame_version;
           Alcotest.test_case "bad magic rejected" `Quick frame_magic;
           Alcotest.test_case "crc32 check value" `Quick crc_check_value ] );
       ("peers", [ Alcotest.test_case "parse and canonical form" `Quick peers_parse ]);
       ( "loopback",
         [ Alcotest.test_case "raw datagrams and stats" `Quick loopback_raw;
           Alcotest.test_case "early frames queue until set_rx" `Quick loopback_early_rx;
           Alcotest.test_case "early-frame queue is bounded" `Quick loopback_pending_bounded;
           Alcotest.test_case "full stack: 1000 ordered casts" `Slow loopback_full_stack;
           Alcotest.test_case "snapshot deterministic" `Quick loopback_deterministic;
           Alcotest.test_case "bad-frame injection" `Quick bad_frame_injection ] );
       ( "driver",
         [ Alcotest.test_case "fires engine timers on the wall clock" `Quick
             driver_fires_timers;
           Alcotest.test_case "sleep clamp" `Quick driver_sleep_for;
           Alcotest.test_case "socket recvfrom_timeout" `Quick socket_recvfrom_timeout ] )
     ]
     @
     if udp_enabled then
       [ ( "udp",
           [ Alcotest.test_case "raw socket round-trip" `Quick udp_raw_roundtrip;
             Alcotest.test_case "full stack over real UDP" `Slow udp_full_stack ] ) ]
     else [])
