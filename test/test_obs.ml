(* Tests for the observability subsystem: counter/gauge/histogram
   semantics, JSON emit/parse round-trips, the registry snapshot shape,
   and the determinism guarantee the CI bench gate relies on — two
   same-seed simulation runs produce byte-identical metrics JSON. *)

open Horus_obs

(* --- counters --- *)

let test_counter_basics () =
  let m = Metrics.create () in
  let c = Metrics.counter m "x" in
  Alcotest.(check int) "starts at zero" 0 (Metrics.count c);
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "incr + add" 5 (Metrics.count c);
  Metrics.set_counter c 42;
  Alcotest.(check int) "set" 42 (Metrics.count c);
  Alcotest.(check string) "name" "x" (Metrics.counter_name c)

let test_counter_idempotent_registration () =
  let m = Metrics.create () in
  let a = Metrics.counter m "shared" in
  Metrics.incr a;
  let b = Metrics.counter m "shared" in
  Metrics.incr b;
  Alcotest.(check int) "same underlying counter" 2 (Metrics.count a)

let test_counter_negative_add_rejected () =
  let m = Metrics.create () in
  let c = Metrics.counter m "x" in
  Alcotest.check_raises "counters only go up"
    (Invalid_argument "Metrics.add: counters only go up") (fun () -> Metrics.add c (-1))

let test_kind_mismatch_rejected () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "x");
  (match Metrics.gauge m "x" with
   | _ -> Alcotest.fail "expected Invalid_argument"
   | exception Invalid_argument _ -> ())

(* --- gauges --- *)

let test_gauge_basics () =
  let m = Metrics.create () in
  let g = Metrics.gauge m "depth" in
  Alcotest.(check (float 0.0)) "starts at zero" 0.0 (Metrics.gauge_value g);
  Metrics.set g 2.5;
  Alcotest.(check (float 0.0)) "set" 2.5 (Metrics.gauge_value g)

(* --- histograms --- *)

let test_histogram_bucketing () =
  let m = Metrics.create () in
  let h = Metrics.histogram ~buckets:[| 1.0; 10.0; 100.0 |] m "lat" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 5.0; 99.0; 1000.0 ];
  Alcotest.(check int) "count" 5 (Metrics.observations h);
  Alcotest.(check (float 1e-9)) "sum" 1105.5 (Metrics.sum h);
  (* Bounds are inclusive upper limits; the last slot is +Inf. *)
  Alcotest.(check (array int)) "buckets" [| 2; 1; 1; 1 |] (Metrics.bucket_counts h)

let test_histogram_bad_bounds_rejected () =
  let m = Metrics.create () in
  (match Metrics.histogram ~buckets:[| 2.0; 1.0 |] m "bad" with
   | _ -> Alcotest.fail "expected Invalid_argument"
   | exception Invalid_argument _ -> ())

let test_reset () =
  let m = Metrics.create () in
  let c = Metrics.counter m "c" in
  let h = Metrics.histogram m "h" in
  Metrics.add c 7;
  Metrics.observe h 0.5;
  Metrics.reset m;
  Alcotest.(check int) "counter zeroed" 0 (Metrics.count c);
  Alcotest.(check int) "histogram zeroed" 0 (Metrics.observations h);
  Alcotest.(check (float 0.0)) "sum zeroed" 0.0 (Metrics.sum h)

(* --- JSON emitter / parser --- *)

let test_json_escaping () =
  let s = Json.to_string (Json.String "a\"b\\c\nd\te\001f") in
  Alcotest.(check string) "escaped" "\"a\\\"b\\\\c\\nd\\te\\u0001f\"" s;
  match Json.of_string s with
  | Ok (Json.String back) ->
    Alcotest.(check string) "round-trips" "a\"b\\c\nd\te\001f" back
  | _ -> Alcotest.fail "re-parse failed"

let test_json_roundtrip_tree () =
  let v =
    Json.Obj
      [ ("ints", Json.List [ Json.Int 0; Json.Int (-3); Json.Int 123456789 ]);
        ("floats", Json.List [ Json.Float 0.5; Json.Float 3.0; Json.Float 1.25e-7 ]);
        ("flags", Json.List [ Json.Bool true; Json.Bool false; Json.Null ]);
        ("nested", Json.Obj [ ("empty_list", Json.List []); ("empty_obj", Json.Obj []) ]) ]
  in
  (* Compact and indented forms parse back to the same tree. *)
  (match Json.of_string (Json.to_string v) with
   | Ok back -> Alcotest.(check bool) "compact round-trip" true (back = v)
   | Error e -> Alcotest.fail e);
  match Json.of_string (Json.to_string ~indent:true v) with
  | Ok back -> Alcotest.(check bool) "indented round-trip" true (back = v)
  | Error e -> Alcotest.fail e

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
       match Json.of_string s with
       | Ok _ -> Alcotest.fail ("accepted: " ^ s)
       | Error _ -> ())
    [ ""; "{"; "[1,"; "{\"a\" 1}"; "tru"; "1 2" ]

let test_registry_snapshot_shape () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "hcpi.down.NAK") 3;
  Metrics.set (Metrics.gauge m "queue.depth") 4.0;
  Metrics.observe (Metrics.histogram m "lat") 0.02;
  let snapshot = Metrics.to_json m in
  (* The snapshot must re-parse, and each instrument must be findable
     under its section. *)
  (match Json.of_string (Json.to_string ~indent:true snapshot) with
   | Ok back -> Alcotest.(check bool) "snapshot re-parses identically" true (back = snapshot)
   | Error e -> Alcotest.fail e);
  Alcotest.(check (option int)) "counter" (Some 3)
    (Option.bind (Json.path [ "counters"; "hcpi.down.NAK" ] snapshot) Json.to_int);
  Alcotest.(check (option int)) "integral gauge prints as int" (Some 4)
    (Option.bind (Json.path [ "gauges"; "queue.depth" ] snapshot) Json.to_int);
  Alcotest.(check (option int)) "histogram count" (Some 1)
    (Option.bind (Json.path [ "histograms"; "lat"; "count" ] snapshot) Json.to_int)

(* --- the world-level determinism guarantee --- *)

let run_scenario seed =
  let open Horus in
  (* A lossy, jittery network so the PRNG actually steers the run:
     same seed must still snapshot byte-identically, different seeds
     must not. *)
  let config =
    { Horus_sim.Net.default_config with jitter = 0.0005; drop_prob = 0.05 }
  in
  let world = World.create ~config ~seed () in
  let members = spawn_group world ~spec:"MBRSHIP:FRAG:NAK:COM" ~n:3 in
  let sender = List.hd members in
  for k = 0 to 9 do
    World.after world ~delay:(0.01 *. float_of_int k) (fun () ->
        Group.cast sender (Printf.sprintf "m%d" k))
  done;
  World.run_for world ~duration:2.0;
  Json.to_string ~indent:true (World.metrics_json world)

let test_same_seed_runs_byte_identical () =
  let a = run_scenario 7 and b = run_scenario 7 in
  Alcotest.(check string) "byte-identical metrics JSON" a b

let test_different_seed_runs_differ () =
  (* Different seeds shift wire-level timing, so at least the engine
     dispatch histogram must move. *)
  Alcotest.(check bool) "seed changes metrics" false (run_scenario 7 = run_scenario 8)

let test_world_metrics_cover_all_sources () =
  let open Horus in
  let world = World.create ~seed:3 () in
  let members = spawn_group world ~spec:"MBRSHIP:FRAG:NAK:COM" ~n:3 in
  Group.cast (List.hd members) "hello";
  World.run_for world ~duration:1.0;
  let snapshot = World.metrics_json world in
  let counter key = Option.bind (Json.path [ "counters"; key ] snapshot) Json.to_int in
  List.iter
    (fun key ->
       match counter key with
       | Some v -> Alcotest.(check bool) (key ^ " > 0") true (v > 0)
       | None -> Alcotest.fail ("missing counter " ^ key))
    [ "hcpi.down.MBRSHIP"; "hcpi.down.FRAG"; "hcpi.down.NAK"; "hcpi.down.COM";
      "hcpi.up.COM"; "hcpi.to_app"; "net.sent"; "net.delivered"; "net.bytes_sent";
      "engine.events_executed" ];
  match Option.bind (Json.path [ "histograms"; "engine.dispatch_delay_s"; "count" ] snapshot) Json.to_int with
  | Some v -> Alcotest.(check bool) "dispatch histogram populated" true (v > 0)
  | None -> Alcotest.fail "missing engine.dispatch_delay_s"

let () =
  Alcotest.run "obs"
    [ ( "metrics",
        [ Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "idempotent registration" `Quick
            test_counter_idempotent_registration;
          Alcotest.test_case "negative add rejected" `Quick
            test_counter_negative_add_rejected;
          Alcotest.test_case "kind mismatch rejected" `Quick test_kind_mismatch_rejected;
          Alcotest.test_case "gauge basics" `Quick test_gauge_basics;
          Alcotest.test_case "histogram bucketing" `Quick test_histogram_bucketing;
          Alcotest.test_case "bad bounds rejected" `Quick
            test_histogram_bad_bounds_rejected;
          Alcotest.test_case "reset" `Quick test_reset ] );
      ( "json",
        [ Alcotest.test_case "string escaping" `Quick test_json_escaping;
          Alcotest.test_case "tree round-trip" `Quick test_json_roundtrip_tree;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "registry snapshot shape" `Quick
            test_registry_snapshot_shape ] );
      ( "world",
        [ Alcotest.test_case "same seed byte-identical" `Quick
            test_same_seed_runs_byte_identical;
          Alcotest.test_case "different seed differs" `Quick
            test_different_seed_runs_differ;
          Alcotest.test_case "all sources covered" `Quick
            test_world_metrics_cover_all_sources ] ) ]
