(* Isolation tests for the Invariant predicate library: one positive
   (clean) and at least one negative (violating) observation fixture
   per predicate, so a predicate that silently stops firing — or
   starts firing on clean runs — is caught without going through a
   full Runner scenario. *)

module I = Horus_check.Invariant

let tag = 'o'

let obs ?(crashed = false) ?(left = false) ?(exited = false) ?(views = []) ?(final = None)
    ~member ~casts () =
  { I.o_member = member;
    o_eid = member;
    o_crashed = crashed;
    o_left = left;
    o_exited = exited;
    o_casts = casts;
    o_views = views;
    o_final = final }

let pay ?pad ~origin ~k () = I.payload ?pad ~tag ~origin ~k ()

(* Three members, two casts each, all delivered everywhere in origin
   order, one shared view — the fixture every predicate must accept. *)
let clean =
  let casts =
    List.concat_map (fun origin -> [ (pay ~origin ~k:0 (), 1); (pay ~origin ~k:1 (), 1) ]) [ 0; 1; 2 ]
  in
  let views = [ ((1, 0), [ 0; 1; 2 ]) ] in
  List.map (fun m -> obs ~member:m ~casts ~views ~final:(Some (1, [ 0; 1; 2 ])) ()) [ 0; 1; 2 ]

let sent = function 0 | 1 | 2 -> 2 | _ -> 0

let check_clean name pred = Alcotest.(check int) (name ^ " holds on clean") 0 (List.length (pred clean))
let check_fires name pred fixture =
  Alcotest.(check bool) (name ^ " fires") true (List.length (pred fixture) > 0)

(* --- parse_payload / payload --- *)

let test_payload_parse () =
  Alcotest.(check (option (pair int int))) "plain" (Some (1, 7))
    (I.parse_payload ~tag (pay ~origin:1 ~k:7 ()));
  Alcotest.(check (option (pair int int))) "padded parses to the same pair" (Some (0, 7))
    (I.parse_payload ~tag (pay ~pad:40 ~origin:0 ~k:7 ()));
  Alcotest.(check bool) "padded payload is actually padded" true
    (String.length (pay ~pad:40 ~origin:0 ~k:7 ()) >= 40);
  Alcotest.(check (option (pair int int))) "wrong tag" None (I.parse_payload ~tag:'z' (pay ~origin:1 ~k:7 ()));
  Alcotest.(check (option (pair int int))) "garbled rank" None (I.parse_payload ~tag "o0-0x7");
  Alcotest.(check (option (pair int int))) "corrupt filler does not alias" None
    (I.parse_payload ~tag "o0-007+xxyxx");
  Alcotest.(check (option (pair int int))) "truncated filler still parses" (Some (0, 7))
    (I.parse_payload ~tag "o0-007+x");
  Alcotest.(check (option (pair int int))) "trailing junk without plus" None
    (I.parse_payload ~tag "o0-007abc");
  Alcotest.(check (option (pair int int))) "foreign payload" None (I.parse_payload ~tag "conformance")

(* --- view agreement (P15) --- *)

let test_view_agreement () =
  check_clean "view-agreement" I.view_agreement;
  let split =
    [ obs ~member:0 ~casts:[] ~views:[ ((1, 0), [ 0; 1 ]) ] ();
      obs ~member:1 ~casts:[] ~views:[ ((1, 0), [ 0; 1; 2 ]) ] () ]
  in
  check_fires "view-agreement on same id, different membership" I.view_agreement split

let test_final_view_agreement () =
  check_clean "final-view" I.final_view_agreement;
  let disagree =
    [ obs ~member:0 ~casts:[] ~final:(Some (2, [ 0; 1 ])) ();
      obs ~member:1 ~casts:[] ~final:(Some (3, [ 0; 1 ])) () ]
  in
  check_fires "final-view on disagreement" I.final_view_agreement disagree;
  let excludes_survivor =
    [ obs ~member:0 ~casts:[] ~final:(Some (2, [ 0 ])) ();
      obs ~member:1 ~casts:[] ~final:(Some (2, [ 0 ])) () ]
  in
  check_fires "final-view on excluded survivor" I.final_view_agreement excludes_survivor;
  (* A crashed member's stale final view is not held against it. *)
  let crashed_ok =
    [ obs ~member:0 ~casts:[] ~final:(Some (2, [ 0 ])) ();
      obs ~member:1 ~crashed:true ~casts:[] ~final:(Some (1, [ 0; 1 ])) () ]
  in
  Alcotest.(check int) "crashed member exempt" 0 (List.length (I.final_view_agreement crashed_ok))

(* --- per-origin FIFO (P3/P4) --- *)

let test_per_origin_fifo () =
  check_clean "per-origin-fifo" (I.per_origin_fifo ~tag);
  let gap =
    [ obs ~member:0 ~casts:[ (pay ~origin:1 ~k:0 (), 1); (pay ~origin:1 ~k:2 (), 1) ] () ]
  in
  check_fires "fifo on gap" (I.per_origin_fifo ~tag) gap;
  let reorder =
    [ obs ~member:0 ~casts:[ (pay ~origin:1 ~k:1 (), 1); (pay ~origin:1 ~k:0 (), 1) ] () ]
  in
  check_fires "fifo on reorder" (I.per_origin_fifo ~tag) reorder;
  let dup =
    [ obs ~member:0 ~casts:[ (pay ~origin:1 ~k:0 (), 1); (pay ~origin:1 ~k:0 (), 1) ] () ]
  in
  check_fires "fifo on duplicate" (I.per_origin_fifo ~tag) dup;
  (* Streams from different origins are independent. *)
  let interleaved =
    [ obs ~member:0
        ~casts:
          [ (pay ~origin:2 ~k:0 (), 1); (pay ~origin:1 ~k:0 (), 1); (pay ~origin:2 ~k:1 (), 1) ]
        () ]
  in
  Alcotest.(check int) "interleaved origins fine" 0
    (List.length (I.per_origin_fifo ~tag interleaved))

(* --- reassembly integrity (P12 over best-effort) --- *)

let test_reassembly_integrity () =
  check_clean "reassembly-integrity" (I.reassembly_integrity ~tag ~sent);
  let torn = [ obs ~member:0 ~casts:[ ("o1-0\000\000", 1); (pay ~origin:1 ~k:0 (), 1) ] () ] in
  check_fires "integrity on torn payload" (I.reassembly_integrity ~tag ~sent) torn;
  let fabricated = [ obs ~member:0 ~casts:[ (pay ~origin:1 ~k:9 (), 1) ] () ] in
  check_fires "integrity on out-of-bounds rank" (I.reassembly_integrity ~tag ~sent) fabricated;
  let corrupt_filler = [ obs ~member:0 ~casts:[ ("o1-001+xxAxx", 1) ] () ] in
  check_fires "integrity on corrupt filler" (I.reassembly_integrity ~tag ~sent) corrupt_filler;
  (* Losing messages is within contract for this predicate. *)
  let lossy = [ obs ~member:0 ~casts:[ (pay ~origin:1 ~k:1 (), 1) ] () ] in
  Alcotest.(check int) "loss alone is fine" 0
    (List.length (I.reassembly_integrity ~tag ~sent lossy));
  (* Payloads not carrying the tag belong to someone else. *)
  let foreign = [ obs ~member:0 ~casts:[ ("zzz", 1) ] () ] in
  Alcotest.(check int) "foreign payloads ignored" 0
    (List.length (I.reassembly_integrity ~tag ~sent foreign))

(* --- completeness and self-delivery --- *)

let test_survivor_completeness () =
  check_clean "survivor-completeness" (I.survivor_completeness ~tag ~sent);
  let missing =
    [ obs ~member:0 ~casts:[ (pay ~origin:0 ~k:0 (), 1); (pay ~origin:0 ~k:1 (), 1) ] ();
      obs ~member:1 ~casts:[ (pay ~origin:0 ~k:0 (), 1) ] () ]
  in
  let sent = function 0 -> 2 | _ -> 0 in
  check_fires "completeness on partial delivery" (I.survivor_completeness ~tag ~sent) missing;
  (* A crashed origin's casts are not owed to anyone. *)
  let crashed_origin =
    [ obs ~member:0 ~casts:[] (); obs ~member:1 ~crashed:true ~casts:[] () ]
  in
  let sent = function 1 -> 2 | _ -> 0 in
  Alcotest.(check int) "crashed origin exempt" 0
    (List.length (I.survivor_completeness ~tag ~sent crashed_origin))

let test_self_delivery () =
  check_clean "self-delivery" (I.self_delivery ~tag ~sent);
  let dropped_own = [ obs ~member:0 ~casts:[ (pay ~origin:0 ~k:0 (), 1) ] () ] in
  check_fires "self-delivery on own loss" (I.self_delivery ~tag ~sent) dropped_own;
  let crashed = [ obs ~member:0 ~crashed:true ~casts:[] () ] in
  Alcotest.(check int) "crashed member exempt" 0
    (List.length (I.self_delivery ~tag ~sent crashed))

(* --- virtual synchrony (P9) and delivery-in-view --- *)

let test_virtual_synchrony () =
  check_clean "virtual-synchrony" I.virtual_synchrony;
  let different_cuts =
    [ obs ~member:0 ~casts:[ (pay ~origin:1 ~k:0 (), 1) ] ();
      obs ~member:1 ~casts:[] () ]
  in
  check_fires "vs on different cuts" I.virtual_synchrony different_cuts;
  let different_epochs =
    [ obs ~member:0 ~casts:[ (pay ~origin:1 ~k:0 (), 1) ] ();
      obs ~member:1 ~casts:[ (pay ~origin:1 ~k:0 (), 2) ] () ]
  in
  check_fires "vs on same message in different views" I.virtual_synchrony different_epochs;
  (* Delivery order may differ — P9 is about cuts, not order. *)
  let reordered =
    [ obs ~member:0 ~casts:[ (pay ~origin:1 ~k:0 (), 1); (pay ~origin:2 ~k:0 (), 1) ] ();
      obs ~member:1 ~casts:[ (pay ~origin:2 ~k:0 (), 1); (pay ~origin:1 ~k:0 (), 1) ] () ]
  in
  Alcotest.(check int) "reordered cuts equal" 0 (List.length (I.virtual_synchrony reordered))

let test_delivery_in_view () =
  check_clean "delivery-in-view" (I.delivery_in_view ~tag);
  let excluded =
    [ obs ~member:0
        ~casts:[ (pay ~origin:1 ~k:0 (), 2) ]
        ~views:[ ((2, 0), [ 0; 2 ]) ] (* origin eid 1 not in the epoch-2 view *)
        ();
      obs ~member:1 ~casts:[] () (* present so the origin's eid is known *) ]
  in
  check_fires "delivery in a view excluding the origin" (I.delivery_in_view ~tag) excluded;
  (* Unknown epoch (view not recorded) is not a violation. *)
  let unknown_epoch = [ obs ~member:0 ~casts:[ (pay ~origin:1 ~k:0 (), 9) ] () ] in
  Alcotest.(check int) "unrecorded epoch fine" 0
    (List.length (I.delivery_in_view ~tag unknown_epoch))

(* --- total order (P6) --- *)

let test_total_order () =
  check_clean "total-order" I.total_order;
  let swapped =
    [ obs ~member:0 ~casts:[ (pay ~origin:1 ~k:0 (), 1); (pay ~origin:2 ~k:0 (), 1) ] ();
      obs ~member:1 ~casts:[ (pay ~origin:2 ~k:0 (), 1); (pay ~origin:1 ~k:0 (), 1) ] () ]
  in
  check_fires "total order on swapped sequence" I.total_order swapped;
  let crashed_prefix =
    [ obs ~member:0 ~casts:[ (pay ~origin:1 ~k:0 (), 1); (pay ~origin:2 ~k:0 (), 1) ] ();
      obs ~member:1 ~crashed:true ~casts:[ (pay ~origin:2 ~k:0 (), 1) ] () ]
  in
  Alcotest.(check int) "crashed member exempt from order" 0
    (List.length (I.total_order crashed_prefix))

(* --- survivors and the standard bundle --- *)

let test_survivors () =
  let mixed =
    [ obs ~member:0 ~casts:[] ();
      obs ~member:1 ~crashed:true ~casts:[] ();
      obs ~member:2 ~left:true ~casts:[] ();
      obs ~member:3 ~exited:true ~casts:[] () ]
  in
  Alcotest.(check (list int)) "only the live member survives" [ 0 ]
    (List.map (fun o -> o.I.o_member) (I.survivors mixed))

let test_standard_bundle () =
  Alcotest.(check int) "standard bundle holds on clean" 0
    (List.length (I.standard ~total:true ~tag ~sent clean));
  let broken =
    [ obs ~member:0 ~casts:[ (pay ~origin:0 ~k:1 (), 1) ] ();
      obs ~member:1 ~casts:[] () ]
  in
  check_fires "standard bundle catches a broken run" (I.standard ~tag ~sent) broken

let () =
  Alcotest.run "invariants"
    [ ( "payload",
        [ Alcotest.test_case "parse/print with padding and garbling" `Quick test_payload_parse ] );
      ( "membership",
        [ Alcotest.test_case "view agreement" `Quick test_view_agreement;
          Alcotest.test_case "final view agreement" `Quick test_final_view_agreement ] );
      ( "streams",
        [ Alcotest.test_case "per-origin fifo" `Quick test_per_origin_fifo;
          Alcotest.test_case "reassembly integrity" `Quick test_reassembly_integrity;
          Alcotest.test_case "survivor completeness" `Quick test_survivor_completeness;
          Alcotest.test_case "self delivery" `Quick test_self_delivery ] );
      ( "synchrony",
        [ Alcotest.test_case "virtual synchrony" `Quick test_virtual_synchrony;
          Alcotest.test_case "delivery in view" `Quick test_delivery_in_view;
          Alcotest.test_case "total order" `Quick test_total_order ] );
      ( "plumbing",
        [ Alcotest.test_case "survivors filter" `Quick test_survivors;
          Alcotest.test_case "standard bundle" `Quick test_standard_bundle ] ) ]
