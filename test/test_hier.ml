(* The hierarchical layer and the churn harness at test scale: HIER
   representatives bridge sub-groups into a parent group, and the
   churn soak converges, matches the directory, and fingerprints
   identically on a double run. *)

open Horus
module T = Horus_transport
module C = Horus_check

(* Two sub-groups of two on two shared sockets; the founders (the
   coordinators, hence the HIER representatives) additionally join a
   parent group, and a parent cast reaches both representatives — the
   bridge the hierarchy is built from. *)
let representatives_bridge () =
  let world = World.create ~seed:21 () in
  let hub = T.Loopback.hub ~latency:0.0005 (World.engine world) in
  let link = Transport_link.create world in
  let peers = T.Peers.create () in
  let sockets =
    Array.init 2 (fun s -> T.Loopback.create ~addr:(Printf.sprintf "mem:%d" s) hub)
  in
  let muxes = Array.map (fun b -> Transport_link.mux link ~backend:b ~peers) sockets in
  let sub = Array.init 2 (fun _ -> World.fresh_group_addr world) in
  let parent = World.fresh_group_addr world in
  let pgid = Addr.group_id parent in
  (* Member (j, i): eid j*2+i on socket (i + j) mod 2, so the two
     founders live on distinct sockets. *)
  let endpoints =
    Array.init 2 (fun j ->
        Array.init 2 (fun i ->
            let eid = (j * 2) + i and slot = (i + j) mod 2 in
            T.Peers.add peers ~rank:eid ~addr:sockets.(slot).T.Backend.local_addr;
            Transport_link.mux_endpoint link muxes.(slot) ~rank:eid
              ~spec:
                (Printf.sprintf "HIER(parent=%d,sub=%d):MBRSHIP:NAK:COM" pgid j)))
  in
  let groups =
    Array.init 2 (fun j ->
        let founder = Group.join endpoints.(j).(0) sub.(j) in
        let other = Group.join ~contact:(Group.addr founder) endpoints.(j).(1) sub.(j) in
        [| founder; other |])
  in
  World.run_for world ~duration:2.0;
  Array.iter
    (fun grs ->
       Array.iter
         (fun gr ->
            match Group.view gr with
            | Some v -> Alcotest.(check int) "sub-group formed" 2 (View.size v)
            | None -> Alcotest.fail "sub-group: no view")
         grs)
    groups;
  (* The representatives bridge into the parent over the same sockets. *)
  let rep0 = Group.join endpoints.(0).(0) parent in
  let rep1 = Group.join ~contact:(Group.addr rep0) endpoints.(1).(0) parent in
  World.run_for world ~duration:2.0;
  (match Group.view rep1 with
   | Some v -> Alcotest.(check int) "parent formed from representatives" 2 (View.size v)
   | None -> Alcotest.fail "parent: no view");
  Group.cast rep0 "summit";
  World.run_for world ~duration:1.0;
  Alcotest.(check (list string)) "parent cast reaches the other rep" [ "summit" ]
    (Group.casts rep1);
  Alcotest.(check int) "no unknown-gid drops" 0 (Transport_link.unknown_gid link)

(* Behead one sub-group: the coordinator (the HIER representative)
   crashes without a goodbye, the survivors flush it out and install
   the next-oldest member as representative, and the layer clocks the
   un-bridged window into [hier.rebridge_time] — the histogram the M5
   campaign holds to a bound. *)
let rebridge_after_crash () =
  let world = World.create ~seed:23 () in
  let hub = T.Loopback.hub ~latency:0.0005 (World.engine world) in
  let link = Transport_link.create world in
  let peers = T.Peers.create () in
  let sockets =
    Array.init 3 (fun s -> T.Loopback.create ~addr:(Printf.sprintf "mem:%d" s) hub)
  in
  let muxes = Array.map (fun b -> Transport_link.mux link ~backend:b ~peers) sockets in
  let sub = World.fresh_group_addr world in
  let parent = World.fresh_group_addr world in
  let pgid = Addr.group_id parent in
  let endpoints =
    Array.init 3 (fun i ->
        T.Peers.add peers ~rank:i ~addr:sockets.(i).T.Backend.local_addr;
        Transport_link.mux_endpoint link muxes.(i) ~rank:i
          ~spec:(Printf.sprintf "HIER(parent=%d,sub=0):MBRSHIP:NAK:COM" pgid))
  in
  let founder = Group.join endpoints.(0) sub in
  let rest =
    Array.init 2 (fun i ->
        Group.join ~contact:(Group.addr founder) endpoints.(i + 1) sub)
  in
  World.run_for world ~duration:2.0;
  (match Group.view rest.(0) with
   | Some v -> Alcotest.(check int) "sub-group formed" 3 (View.size v)
   | None -> Alcotest.fail "sub-group: no view");
  let h =
    Horus_obs.Metrics.histogram (World.metrics world) "hier.rebridge_time"
  in
  Alcotest.(check int) "no re-bridge before the crash" 0
    (Horus_obs.Metrics.observations h);
  (* The representative dies with no leave: crash the endpoint, block
     its socket rank at the waist, and let a survivor voice the
     suspicion after a detection delay. *)
  Endpoint.crash endpoints.(0);
  T.Peers.block peers ~rank:0;
  World.run_for world ~duration:0.1;
  Group.suspect rest.(0) [ Addr.endpoint 0 ];
  World.run_for world ~duration:2.0;
  Array.iter
    (fun gr ->
       match Group.view gr with
       | Some v -> Alcotest.(check int) "survivors converged" 2 (View.size v)
       | None -> Alcotest.fail "survivor: no view")
    rest;
  Alcotest.(check bool) "re-bridge window clocked" true
    (Horus_obs.Metrics.observations h >= 1);
  Alcotest.(check bool) "window strictly positive" true
    (Horus_obs.Metrics.sum h > 0.0)

(* The churn harness at toy scale: every wave converges, the directory
   matches the installed views, and a double run fingerprints
   identically — the CI gate's logic, in-tree. *)
let churn_config =
  { C.Churn.default_config with
    C.Churn.h_name = "churn-test";
    h_endpoints = 24;
    h_subgroups = 4;
    h_waves = 2;
    h_casts_per_wave = 4 }

let churn_small () =
  let r = C.Churn.run churn_config in
  List.iter (fun v -> Printf.printf "violation: %s\n" v) r.C.Churn.r_violations;
  Alcotest.(check bool) "no violations" true (C.Churn.ok r);
  Alcotest.(check bool) "directory matches views" true r.C.Churn.r_dir_match;
  Alcotest.(check int) "graceful churn: no evictions" 0 r.C.Churn.r_dir_evictions;
  List.iter
    (fun (w : C.Churn.wave_report) ->
       match w.C.Churn.w_converge with
       | Some _ -> ()
       | None ->
         Alcotest.failf "wave %d %s never converged" w.C.Churn.w_index w.C.Churn.w_kind)
    r.C.Churn.r_waves

(* The crash-fault campaign at toy scale: ungraceful waves kill a
   coordinator each, the directory primary dies mid-wave, and the run
   must still exit clean — backup promoted, every beheaded sub-group
   re-bridged within bound, evictions exactly the abandoned
   bindings. *)
let churn_ungraceful_small () =
  let c =
    { churn_config with
      C.Churn.h_name = "churn-test-ungraceful";
      h_ungraceful = true;
      h_kill_coordinators = 1;
      h_dir_replicas = 1;
      h_kill_dir_wave = 1;
      (* The lease must clear a worst-case renewal issued into the
         primary outage: half-lease cadence plus a full per-replica
         retry budget at the RTO ceiling, or a survivor's binding is
         evicted mid-retry and the zero-lost-registrations invariant
         trips on an artifact of the toy timescale. *)
      h_lease = 20.0;
      h_nak_ceiling = 2000 }
  in
  let r = C.Churn.run c in
  List.iter (fun v -> Printf.printf "violation: %s\n" v) r.C.Churn.r_violations;
  Alcotest.(check bool) "no violations" true (C.Churn.ok r);
  Alcotest.(check string) "ungraceful mode" "ungraceful" r.C.Churn.r_mode;
  Alcotest.(check bool) "members were killed" true (r.C.Churn.r_killed > 0);
  Alcotest.(check int) "coordinators were killed" 2 r.C.Churn.r_killed_coordinators;
  Alcotest.(check int) "backup promoted" 1 r.C.Churn.r_dir_promotions;
  Alcotest.(check int) "every beheading clocked" 2
    (List.length r.C.Churn.r_rebridge);
  List.iter
    (fun (j, dt) ->
       if dt > r.C.Churn.r_rebridge_bound then
         Alcotest.failf "sub-group %d re-bridged in %.3f (bound %.1f)" j dt
           r.C.Churn.r_rebridge_bound)
    r.C.Churn.r_rebridge

let churn_deterministic () =
  let a = C.Churn.run churn_config in
  let b = C.Churn.run churn_config in
  Alcotest.(check bool) "both runs pass" true (C.Churn.ok a && C.Churn.ok b);
  Alcotest.(check string) "identical fingerprints"
    (Printf.sprintf "%016Lx" a.C.Churn.r_fingerprint)
    (Printf.sprintf "%016Lx" b.C.Churn.r_fingerprint)

let () =
  Alcotest.run "hier"
    [ ( "hier",
        [ Alcotest.test_case "representatives bridge sub-groups" `Quick
            representatives_bridge;
          Alcotest.test_case "crashed representative is re-bridged and clocked"
            `Quick rebridge_after_crash ] );
      ( "churn",
        [ Alcotest.test_case "small churn soak passes" `Slow churn_small;
          Alcotest.test_case "small ungraceful campaign passes" `Slow
            churn_ungraceful_small;
          Alcotest.test_case "double run fingerprints agree" `Slow churn_deterministic ] )
    ]
