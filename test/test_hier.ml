(* The hierarchical layer and the churn harness at test scale: HIER
   representatives bridge sub-groups into a parent group, and the
   churn soak converges, matches the directory, and fingerprints
   identically on a double run. *)

open Horus
module T = Horus_transport
module C = Horus_check

(* Two sub-groups of two on two shared sockets; the founders (the
   coordinators, hence the HIER representatives) additionally join a
   parent group, and a parent cast reaches both representatives — the
   bridge the hierarchy is built from. *)
let representatives_bridge () =
  let world = World.create ~seed:21 () in
  let hub = T.Loopback.hub ~latency:0.0005 (World.engine world) in
  let link = Transport_link.create world in
  let peers = T.Peers.create () in
  let sockets =
    Array.init 2 (fun s -> T.Loopback.create ~addr:(Printf.sprintf "mem:%d" s) hub)
  in
  let muxes = Array.map (fun b -> Transport_link.mux link ~backend:b ~peers) sockets in
  let sub = Array.init 2 (fun _ -> World.fresh_group_addr world) in
  let parent = World.fresh_group_addr world in
  let pgid = Addr.group_id parent in
  (* Member (j, i): eid j*2+i on socket (i + j) mod 2, so the two
     founders live on distinct sockets. *)
  let endpoints =
    Array.init 2 (fun j ->
        Array.init 2 (fun i ->
            let eid = (j * 2) + i and slot = (i + j) mod 2 in
            T.Peers.add peers ~rank:eid ~addr:sockets.(slot).T.Backend.local_addr;
            Transport_link.mux_endpoint link muxes.(slot) ~rank:eid
              ~spec:
                (Printf.sprintf "HIER(parent=%d,sub=%d):MBRSHIP:NAK:COM" pgid j)))
  in
  let groups =
    Array.init 2 (fun j ->
        let founder = Group.join endpoints.(j).(0) sub.(j) in
        let other = Group.join ~contact:(Group.addr founder) endpoints.(j).(1) sub.(j) in
        [| founder; other |])
  in
  World.run_for world ~duration:2.0;
  Array.iter
    (fun grs ->
       Array.iter
         (fun gr ->
            match Group.view gr with
            | Some v -> Alcotest.(check int) "sub-group formed" 2 (View.size v)
            | None -> Alcotest.fail "sub-group: no view")
         grs)
    groups;
  (* The representatives bridge into the parent over the same sockets. *)
  let rep0 = Group.join endpoints.(0).(0) parent in
  let rep1 = Group.join ~contact:(Group.addr rep0) endpoints.(1).(0) parent in
  World.run_for world ~duration:2.0;
  (match Group.view rep1 with
   | Some v -> Alcotest.(check int) "parent formed from representatives" 2 (View.size v)
   | None -> Alcotest.fail "parent: no view");
  Group.cast rep0 "summit";
  World.run_for world ~duration:1.0;
  Alcotest.(check (list string)) "parent cast reaches the other rep" [ "summit" ]
    (Group.casts rep1);
  Alcotest.(check int) "no unknown-gid drops" 0 (Transport_link.unknown_gid link)

(* The churn harness at toy scale: every wave converges, the directory
   matches the installed views, and a double run fingerprints
   identically — the CI gate's logic, in-tree. *)
let churn_config =
  { C.Churn.default_config with
    C.Churn.h_name = "churn-test";
    h_endpoints = 24;
    h_subgroups = 4;
    h_waves = 2;
    h_casts_per_wave = 4 }

let churn_small () =
  let r = C.Churn.run churn_config in
  List.iter (fun v -> Printf.printf "violation: %s\n" v) r.C.Churn.r_violations;
  Alcotest.(check bool) "no violations" true (C.Churn.ok r);
  Alcotest.(check bool) "directory matches views" true r.C.Churn.r_dir_match;
  Alcotest.(check int) "graceful churn: no evictions" 0 r.C.Churn.r_dir_evictions;
  List.iter
    (fun (w : C.Churn.wave_report) ->
       match w.C.Churn.w_converge with
       | Some _ -> ()
       | None ->
         Alcotest.failf "wave %d %s never converged" w.C.Churn.w_index w.C.Churn.w_kind)
    r.C.Churn.r_waves

let churn_deterministic () =
  let a = C.Churn.run churn_config in
  let b = C.Churn.run churn_config in
  Alcotest.(check bool) "both runs pass" true (C.Churn.ok a && C.Churn.ok b);
  Alcotest.(check string) "identical fingerprints"
    (Printf.sprintf "%016Lx" a.C.Churn.r_fingerprint)
    (Printf.sprintf "%016Lx" b.C.Churn.r_fingerprint)

let () =
  Alcotest.run "hier"
    [ ( "hier",
        [ Alcotest.test_case "representatives bridge sub-groups" `Quick
            representatives_bridge ] );
      ( "churn",
        [ Alcotest.test_case "small churn soak passes" `Slow churn_small;
          Alcotest.test_case "double run fingerprints agree" `Slow churn_deterministic ] )
    ]
