(* Multi-group socket multiplexing: many groups interleaved over one
   shared socket pair with no cross-group leakage, and unknown-gid
   frames dropped and counted — the demux invariants behind the
   hierarchical deployment grid. Virtual time, deterministic. *)

open Horus
module T = Horus_transport

let spec = "MBRSHIP:NAK:COM"

(* Two sockets, [g] groups; socket 0 hosts one member of every group,
   socket 1 the other. Each group casts its own tagged payloads,
   interleaved across groups; every member must deliver exactly its
   own group's stream and nothing else. *)
let interleaved_no_leakage () =
  let g = 3 and casts_each = 20 in
  let world = World.create ~seed:3 () in
  let hub = T.Loopback.hub ~latency:0.0005 (World.engine world) in
  let link = Transport_link.create world in
  let peers = T.Peers.create () in
  let sockets =
    Array.init 2 (fun s -> T.Loopback.create ~addr:(Printf.sprintf "mem:%d" s) hub)
  in
  let muxes = Array.map (fun b -> Transport_link.mux link ~backend:b ~peers) sockets in
  (* Endpoint (j, s): member s of group j, eid j*2+s, on socket s. *)
  let endpoints =
    Array.init g (fun j ->
        Array.init 2 (fun s ->
            let eid = (j * 2) + s in
            T.Peers.add peers ~rank:eid ~addr:sockets.(s).T.Backend.local_addr;
            Transport_link.mux_endpoint link muxes.(s) ~rank:eid ~spec))
  in
  let gids = Array.init g (fun _ -> World.fresh_group_addr world) in
  let groups =
    Array.init g (fun j ->
        let founder = Group.join endpoints.(j).(0) gids.(j) in
        let other =
          Group.join ~contact:(Group.addr founder) endpoints.(j).(1) gids.(j)
        in
        [| founder; other |])
  in
  World.run_for world ~duration:2.0;
  Array.iteri
    (fun j grs ->
       Array.iter
         (fun gr ->
            match Group.view gr with
            | Some v -> Alcotest.(check int) "group formed" 2 (View.size v)
            | None -> Alcotest.failf "group %d: no view" j)
         grs)
    groups;
  (* Interleave: at each tick every group casts once, alternating the
     casting member, so frames for all gids mingle on both sockets. *)
  for k = 0 to casts_each - 1 do
    Array.iteri
      (fun j grs -> Group.cast grs.(k mod 2) (Printf.sprintf "g%d-%d" j k))
      groups;
    World.run_for world ~duration:0.01
  done;
  World.run_for world ~duration:1.0;
  let expected j = List.init casts_each (fun k -> Printf.sprintf "g%d-%d" j k) in
  Array.iteri
    (fun j grs ->
       Array.iteri
         (fun s gr ->
            let got = Group.casts gr in
            Alcotest.(check (list string))
              (Printf.sprintf "group %d member %d: exactly its own stream" j s)
              (expected j) got;
            List.iter
              (fun p ->
                 if not (String.length p > 1 && p.[1] = Char.chr (Char.code '0' + j))
                 then Alcotest.failf "group %d member %d leaked payload %s" j s p)
              got)
         grs)
    groups;
  Alcotest.(check int) "no unknown-gid drops" 0 (Transport_link.unknown_gid link)

(* A same-socket second member of an already-hosted group must be
   rejected: the frame header has no destination, so the demux cannot
   tell two local members of one gid apart. *)
let duplicate_gid_rejected () =
  let world = World.create ~seed:4 () in
  let hub = T.Loopback.hub (World.engine world) in
  let link = Transport_link.create world in
  let peers = T.Peers.create () in
  let b = T.Loopback.create ~addr:"mem:0" hub in
  let m = Transport_link.mux link ~backend:b ~peers in
  T.Peers.add peers ~rank:0 ~addr:b.T.Backend.local_addr;
  T.Peers.add peers ~rank:1 ~addr:b.T.Backend.local_addr;
  let e0 = Transport_link.mux_endpoint link m ~rank:0 ~spec in
  let e1 = Transport_link.mux_endpoint link m ~rank:1 ~spec in
  let gid = World.fresh_group_addr world in
  let _founder = Group.join e0 gid in
  match Group.join e1 gid with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "second member of one gid on one socket was accepted"

(* Frames whose gid no local stack has joined are dropped and counted
   in [transport.unknown_gid] — rank traffic for a group this socket
   never joined must not reach any endpoint. *)
let unknown_gid_counted () =
  let world = World.create ~seed:5 () in
  let hub = T.Loopback.hub ~latency:0.0005 (World.engine world) in
  let link = Transport_link.create world in
  let peers = T.Peers.create () in
  let sockets =
    Array.init 2 (fun s -> T.Loopback.create ~addr:(Printf.sprintf "mem:%d" s) hub)
  in
  let muxes = Array.map (fun b -> Transport_link.mux link ~backend:b ~peers) sockets in
  T.Peers.add peers ~rank:0 ~addr:sockets.(0).T.Backend.local_addr;
  T.Peers.add peers ~rank:1 ~addr:sockets.(1).T.Backend.local_addr;
  let e0 = Transport_link.mux_endpoint link muxes.(0) ~rank:0 ~spec in
  let e1 = Transport_link.mux_endpoint link muxes.(1) ~rank:1 ~spec in
  let gid = World.fresh_group_addr world in
  let founder = Group.join e0 gid in
  let other = Group.join ~contact:(Group.addr founder) e1 gid in
  World.run_for world ~duration:1.0;
  Group.cast founder "hello";
  World.run_for world ~duration:0.5;
  Alcotest.(check (list string)) "joined gid delivers" [ "hello" ] (Group.casts other);
  Alcotest.(check int) "no unknown gids yet" 0 (Transport_link.unknown_gid link);
  (* Inject valid frames for a gid neither socket has joined, plus one
     for the live gid from an unknown source — only the dead gid
     counts as unknown. *)
  let stray =
    T.Frame.encode ~src:(Addr.endpoint 99) ~group:(Addr.group 424242)
      (Bytes.of_string "stray")
  in
  sockets.(0).T.Backend.send ~dest:sockets.(1).T.Backend.local_addr stray;
  sockets.(1).T.Backend.send ~dest:sockets.(0).T.Backend.local_addr stray;
  World.run_for world ~duration:0.5;
  Alcotest.(check int) "both strays dropped and counted" 2
    (Transport_link.unknown_gid link);
  Alcotest.(check (list string)) "no phantom delivery" [ "hello" ] (Group.casts other);
  (* The metric mirrors the counter (exporters run at snapshot time). *)
  ignore (World.metrics_json world);
  Alcotest.(check int) "transport.unknown_gid metric" 2
    (Horus_obs.Metrics.count
       (Horus_obs.Metrics.counter (World.metrics world) "transport.unknown_gid"))

(* The property behind [interleaved_no_leakage]: for ANY group count,
   cast budget, world seed and per-tick interleaving order, every
   member demuxes exactly its own group's stream, in order, with zero
   unknown-gid drops. The interleaving derives from [mix]: each tick
   visits the groups in a rotated order and alternates the caster. *)
let demux_no_leakage ~g ~casts_each ~seed ~mix =
  let world = World.create ~seed () in
  let hub = T.Loopback.hub ~latency:0.0005 (World.engine world) in
  let link = Transport_link.create world in
  let peers = T.Peers.create () in
  let sockets =
    Array.init 2 (fun s -> T.Loopback.create ~addr:(Printf.sprintf "mem:%d" s) hub)
  in
  let muxes = Array.map (fun b -> Transport_link.mux link ~backend:b ~peers) sockets in
  let endpoints =
    Array.init g (fun j ->
        Array.init 2 (fun s ->
            let eid = (j * 2) + s in
            T.Peers.add peers ~rank:eid ~addr:sockets.(s).T.Backend.local_addr;
            Transport_link.mux_endpoint link muxes.(s) ~rank:eid ~spec))
  in
  let gids = Array.init g (fun _ -> World.fresh_group_addr world) in
  let groups =
    Array.init g (fun j ->
        let founder = Group.join endpoints.(j).(0) gids.(j) in
        let other =
          Group.join ~contact:(Group.addr founder) endpoints.(j).(1) gids.(j)
        in
        [| founder; other |])
  in
  World.run_for world ~duration:2.0;
  for k = 0 to casts_each - 1 do
    for i = 0 to g - 1 do
      let j = (i + k + mix) mod g in
      Group.cast groups.(j).((k + mix) mod 2) (Printf.sprintf "g%d-%d" j k)
    done;
    World.run_for world ~duration:0.01
  done;
  World.run_for world ~duration:1.0;
  let expected j = List.init casts_each (fun k -> Printf.sprintf "g%d-%d" j k) in
  Transport_link.unknown_gid link = 0
  && Array.for_all
       (fun j -> Array.for_all (fun gr -> Group.casts gr = expected j) groups.(j))
       (Array.init g (fun j -> j))

let demux_prop =
  QCheck.Test.make ~name:"any interleaving demuxes with no leakage" ~count:12
    QCheck.(
      quad (int_range 2 4) (int_range 1 10) (int_range 0 10_000) (int_range 0 97))
    (fun (g, casts_each, seed, mix) -> demux_no_leakage ~g ~casts_each ~seed ~mix)

let () =
  Alcotest.run "mux"
    [ ( "demux",
        [ Alcotest.test_case "interleaved groups, no cross-group leakage" `Quick
            interleaved_no_leakage;
          Alcotest.test_case "one member per gid per socket" `Quick
            duplicate_gid_rejected;
          Alcotest.test_case "unknown gid dropped and counted" `Quick
            unknown_gid_counted;
          QCheck_alcotest.to_alcotest demux_prop ] ) ]
