(* Scenario workloads for the experiment harness: group formation,
   traffic generation, and simulated-metric measurements (wire packets,
   bytes, simulated latencies). Wall-clock microbenchmarks live in
   main.ml; these functions measure *protocol* costs, which are
   deterministic in the seed. *)

open Horus

let form_group ?(config = Horus_sim.Net.default_config) ?(seed = 1) ?(record = true) ~spec ~n
    () =
  let world = World.create ~config ~seed () in
  let g = World.fresh_group_addr world in
  let founder = Group.join ~record (Endpoint.create world ~spec) g in
  World.run_for world ~duration:0.2;
  let rest =
    List.init (n - 1) (fun _ ->
        let m = Group.join ~record ~contact:(Group.addr founder) (Endpoint.create world ~spec) g in
        World.run_for world ~duration:0.4;
        m)
  in
  World.run_for world ~duration:2.0;
  (world, founder :: rest)

let wire_stats world =
  let s = Horus_sim.Net.stats (World.net world) in
  (s.Horus_sim.Net.sent, s.Horus_sim.Net.bytes_sent)

(* Cast [msgs] messages of [size] bytes from member 0 over [duration]
   of simulated time; return wire packets and bytes consumed per
   application message (protocol overhead included). *)
type traffic_cost = {
  packets_per_msg : float;
  bytes_per_msg : float;
  overhead_bytes_per_msg : float;  (* wire bytes beyond the payload itself *)
  delivered_everywhere : bool;
}

(* Stacks without a membership layer get their destination sets
   installed by hand. *)
let install_symmetric_views members =
  match members with
  | [] -> ()
  | first :: _ ->
    let v =
      Horus_hcpi.View.create ~group:(Group.group first) ~ltime:0
        ~members:(List.sort Addr.compare_endpoint (List.map Group.addr members))
    in
    List.iter (fun m -> Group.install_view m v) members

(* [on_world] (here and in [flush_latency]) runs after the workload
   settles and before the world is dropped — the JSON bench mode uses
   it to snapshot the world's metrics registry. *)
let traffic_cost ?(msgs = 50) ?(size = 100) ?(duration = 2.0) ?(membership = true)
    ?(on_world = fun (_ : World.t) -> ()) ~spec ~n () =
  let world, members = form_group ~spec ~n () in
  if not membership then install_symmetric_views members;
  let payload = String.make size 'x' in
  let sender = List.hd members in
  List.iter (fun m -> Group.clear_deliveries m) members;
  let sent0, bytes0 = wire_stats world in
  for i = 0 to msgs - 1 do
    World.after world ~delay:(0.002 *. float_of_int i) (fun () -> Group.cast sender payload)
  done;
  World.run_for world ~duration;
  let sent1, bytes1 = wire_stats world in
  let fm = float_of_int msgs in
  let delivered_everywhere =
    List.for_all (fun m -> List.length (Group.casts m) = msgs) members
  in
  on_world world;
  (* Raw payload cost if the network carried the payload once per
     remote destination with no headers at all. *)
  let raw = float_of_int (size * (n - 1)) in
  { packets_per_msg = float_of_int (sent1 - sent0) /. fm;
    bytes_per_msg = float_of_int (bytes1 - bytes0) /. fm;
    overhead_bytes_per_msg = (float_of_int (bytes1 - bytes0) /. fm) -. raw;
    delivered_everywhere }

(* Flush latency (experiment E5 / Figure 2): simulated time from a
   member crash to the instant the last survivor installs the next
   view. Includes the failure-detection delay; [detect] reports the
   suspicion timeout so the table can show both. *)
let flush_latency ?(seed = 3) ?(spec = "MBRSHIP:FRAG:NAK:COM")
    ?(on_world = fun (_ : World.t) -> ()) ~n () =
  let world, members = form_group ~seed ~spec ~n () in
  let victim = List.nth members (n - 1) in
  let installed = Array.make n nan in
  List.iteri
    (fun i m ->
       Group.set_on_up m (fun ev ->
           match ev with
           | Event.U_view _ -> installed.(i) <- World.now world
           | _ -> ()))
    members;
  let t0 = World.now world in
  Endpoint.crash (Group.endpoint victim);
  World.run_for world ~duration:10.0;
  on_world world;
  let survivors_done =
    List.filteri (fun i _ -> i < n - 1) (Array.to_list installed)
  in
  if List.exists Float.is_nan survivors_done then None
  else Some (List.fold_left Float.max 0.0 survivors_done -. t0)

(* Member-join latency: simulated time from issuing the join until
   every member (old and new) has the enlarged view. *)
let join_latency ?(seed = 5) ~n () =
  let spec = "MBRSHIP:FRAG:NAK:COM" in
  let world, members = form_group ~seed ~spec ~n () in
  let t0 = World.now world in
  let joiner =
    Group.join ~contact:(Group.addr (List.hd members))
      (Endpoint.create world ~spec) (Group.group (List.hd members))
  in
  let all = members @ [ joiner ] in
  let deadline = t0 +. 10.0 in
  let rec poll () =
    if
      List.for_all
        (fun m -> match Group.view m with Some v -> View.size v = n + 1 | None -> false)
        all
    then Some (World.now world -. t0)
    else if World.now world >= deadline then None
    else begin
      World.run_for world ~duration:0.005;
      poll ()
    end
  in
  poll ()

(* Wire traffic in packets per simulated second, with member 0 casting
   steadily so that ack vectors keep changing — the regime in which the
   STABLE/PINWHEEL trade-off shows (E11). Also used idle (rate = 0). *)
let loaded_traffic ?(window = 5.0) ?(cast_every = 0.01) ~spec ~n () =
  let world, members = form_group ~record:false ~spec ~n () in
  let sender = List.hd members in
  if cast_every > 0.0 then begin
    let casts = int_of_float (window /. cast_every) in
    for i = 0 to casts - 1 do
      World.after world ~delay:(cast_every *. float_of_int i) (fun () ->
          Group.cast sender "load")
    done
  end;
  let sent0, bytes0 = wire_stats world in
  World.run_for world ~duration:window;
  let sent1, bytes1 = wire_stats world in
  ( float_of_int (sent1 - sent0) /. window,
    float_of_int (bytes1 - bytes0) /. window )

(* Control messages the membership machinery itself sends for one
   crash-driven view change (E12): the layers count their protocol
   unicasts (flush requests/replies, forwarded copies, installs, state
   exchanges), which excludes all background gossip. Summed over the
   survivors; [layers] names the layers whose counters to read. *)
let parse_counter ~key line =
  let klen = String.length key in
  let rec find i =
    if i + klen > String.length line then None
    else if String.sub line i klen = key then begin
      let j = ref (i + klen) in
      while !j < String.length line && line.[!j] >= '0' && line.[!j] <= '9' do
        incr j
      done;
      int_of_string_opt (String.sub line (i + klen) (!j - i - klen))
    end
    else find (i + 1)
  in
  find 0

let ctl_sent_of member ~layers =
  List.fold_left
    (fun acc layer ->
       match Group.focus member layer with
       | Some inst ->
         List.fold_left
           (fun acc line ->
              match parse_counter ~key:"ctl_sent=" line with
              | Some v -> acc + v
              | None -> acc)
           acc
           (inst.Horus_hcpi.Layer.dump ())
       | None -> acc)
    0 layers

let view_change_cost ?(seed = 9) ?(window = 2.0) ~spec ~layers ~n () =
  let world, members = form_group ~seed ~spec ~n () in
  let victim = List.nth members (n - 1) in
  let survivors = List.filteri (fun i _ -> i < n - 1) members in
  let before = List.fold_left (fun acc m -> acc + ctl_sent_of m ~layers) 0 survivors in
  Endpoint.crash (Group.endpoint victim);
  World.run_for world ~duration:window;
  let after = List.fold_left (fun acc m -> acc + ctl_sent_of m ~layers) 0 survivors in
  let settled =
    List.for_all
      (fun m -> match Group.view m with Some v -> View.size v = n - 1 | None -> false)
      survivors
  in
  if settled then Some (after - before) else None

(* Stability convergence time: cast one message, report how long until
   the sender's matrix shows it stable at every member. *)
let stability_latency ~spec ~n () =
  let world, members = form_group ~spec ~n () in
  let sender = List.hd members in
  let t0 = World.now world in
  Group.cast sender "probe";
  let deadline = t0 +. 5.0 in
  let rec poll () =
    let stable =
      match Group.stability sender with
      | Some s ->
        Array.length s.Event.acked > 0
        && Array.for_all (fun a -> a >= 1) s.Event.acked.(0)
      | None -> false
    in
    if stable then Some (World.now world -. t0)
    else if World.now world >= deadline then None
    else begin
      World.run_for world ~duration:0.005;
      poll ()
    end
  in
  poll ()

(* Total-order agreement latency: k concurrent casters; simulated time
   until every member has delivered all messages (identically). *)
let total_order_latency ?(msgs_each = 5) ~n () =
  let spec = "TOTAL:MBRSHIP:FRAG:NAK:COM" in
  let world, members = form_group ~spec ~n () in
  let t0 = World.now world in
  List.iteri
    (fun i m ->
       for k = 0 to msgs_each - 1 do
         World.after world ~delay:(0.001 *. float_of_int k) (fun () ->
             Group.cast m (Printf.sprintf "t%d-%d" i k))
       done)
    members;
  let want = msgs_each * n in
  let deadline = t0 +. 10.0 in
  let rec poll () =
    if List.for_all (fun m -> List.length (Group.casts m) = want) members then begin
      let seqs = List.map Group.casts members in
      let agreed = match seqs with s0 :: r -> List.for_all (fun s -> s = s0) r | [] -> true in
      Some (World.now world -. t0, agreed)
    end
    else if World.now world >= deadline then None
    else begin
      World.run_for world ~duration:0.005;
      poll ()
    end
  in
  poll ()

(* T1: the same two-member cast workload over the three attachments —
   the simulated net, the in-process loopback backend (real transport
   path: frame codec, peer book, backend stats; virtual time), and real
   UDP sockets on 127.0.0.1 pumped by the wall-clock driver. Throughput
   is wall-clock in every mode (all protocol work is executed for
   real); the one-way latency is measured on whichever clock drives the
   mode, named in [t_clock]. *)
type transport_run = {
  t_throughput : float;  (* casts per wall second, sender to receiver *)
  t_latency_s : float;   (* single-cast one-way latency *)
  t_clock : string;      (* basis of t_latency_s: "virtual" | "wall" *)
  t_complete : bool;     (* receiver saw every cast *)
  t_bad_frames : int;
}

let transport_pair ?(spec = "TOTAL:MBRSHIP:FRAG:NAK:COM") ?(size = 64)
    ?(interval = 0.0005) ~mode ~casts () =
  let world = World.create () in
  let g = World.fresh_group_addr world in
  let link = Transport_link.create world in
  let backends, endpoints =
    match mode with
    | `Sim -> ([], List.init 2 (fun _ -> Endpoint.create world ~spec))
    | `Loopback ->
      let hub = Transport.Loopback.hub (World.engine world) in
      let peers = Transport.Peers.create () in
      let backends =
        List.init 2 (fun r ->
            let b = Transport.Loopback.create ~addr:(Printf.sprintf "mem:%d" r) hub in
            Transport.Peers.add peers ~rank:r ~addr:b.Transport.Backend.local_addr;
            b)
      in
      ( backends,
        List.mapi
          (fun r backend -> Transport_link.endpoint link ~backend ~peers ~rank:r ~spec)
          backends )
    | `Udp ->
      (* Ephemeral ports: bind first, read the kernel's choice back,
         then share it through the peer book. *)
      let backends = List.init 2 (fun _ -> Transport.Udp.create ~bind:"127.0.0.1:0" ()) in
      let peers = Transport.Peers.create () in
      List.iteri
        (fun r (b : Transport.Backend.t) ->
           Transport.Peers.add peers ~rank:r ~addr:b.Transport.Backend.local_addr)
        backends;
      ( backends,
        List.mapi
          (fun r backend -> Transport_link.endpoint link ~backend ~peers ~rank:r ~spec)
          backends )
  in
  let driver =
    match mode with
    | `Udp -> Some (Transport.Driver.create (World.engine world) backends)
    | `Sim | `Loopback -> None
  in
  (* Advance on the mode's clock until [pred] holds. *)
  let run_until ~timeout pred =
    match driver with
    | Some d -> Transport.Driver.run_until ~timeout d pred
    | None ->
      let deadline = World.now world +. timeout in
      let rec loop () =
        if pred () then true
        else if World.now world >= deadline then pred ()
        else begin
          (* Fine slices: the virtual clock only advances in these
             steps, so they bound the latency resolution below. *)
          World.run_for world ~duration:0.0005;
          loop ()
        end
      in
      loop ()
  in
  let now () =
    match driver with Some d -> Transport.Driver.now d | None -> World.now world
  in
  let sender_ep, receiver_ep =
    match endpoints with [ a; b ] -> (a, b) | _ -> assert false
  in
  let sender = Group.join ~record:false sender_ep g in
  let receiver = Group.join ~record:false ~contact:(Group.addr sender) receiver_ep g in
  let received = ref 0 in
  Group.set_on_up receiver (fun ev ->
      match ev with Horus_hcpi.Event.U_cast _ -> incr received | _ -> ());
  let formed =
    run_until ~timeout:15.0 (fun () ->
        match Group.view receiver with Some v -> View.size v = 2 | None -> false)
  in
  if not formed then failwith "transport_pair: group did not form";
  let payload = String.make size 'x' in
  let wall0 = Unix.gettimeofday () in
  for k = 0 to casts - 1 do
    World.after world ~delay:(interval *. float_of_int (k + 1)) (fun () ->
        Group.cast sender payload)
  done;
  let complete =
    run_until ~timeout:(30.0 +. (interval *. float_of_int casts)) (fun () ->
        !received >= casts)
  in
  let wall_dt = Unix.gettimeofday () -. wall0 in
  (* Single-cast one-way latency on the mode's clock, averaged. *)
  let rounds = 10 in
  let total = ref 0.0 and got = ref 0 in
  for _ = 1 to rounds do
    let base = !received in
    let t0 = now () in
    Group.cast sender payload;
    if run_until ~timeout:5.0 (fun () -> !received > base) then begin
      total := !total +. (now () -. t0);
      incr got
    end
  done;
  { t_throughput = float_of_int casts /. wall_dt;
    t_latency_s = (if !got = 0 then Float.nan else !total /. float_of_int !got);
    t_clock = (match mode with `Udp -> "wall" | `Sim | `Loopback -> "virtual");
    t_complete = complete;
    t_bad_frames =
      List.fold_left
        (fun acc (b : Transport.Backend.t) ->
           acc + b.Transport.Backend.stats.Transport.Backend.bad_frame)
        0 backends }
