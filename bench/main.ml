(* Benchmark and experiment harness.

   One section per experiment in DESIGN.md's per-experiment index
   (E1..E12), regenerating the quantitative content of every table and
   figure in the paper. Two kinds of measurement:

   - wall-clock microbenchmarks (Bechamel), for the layering-overhead
     questions of Section 10 — these numbers are host-specific and
     only their *shape* is compared with the paper;
   - simulated-protocol metrics (wire packets, bytes, simulated
     seconds), which are deterministic in the seed.

   Run with: dune exec bench/main.exe
   Options:
     --json FILE   also write a machine-readable BENCH snapshot
                   (schema documented in EXPERIMENTS.md); simulated
                   metrics in it are deterministic in the seed,
                   wall-clock fields live under "host_specific"
     --quick       CI smoke mode: tiny Bechamel quota, reduced group
                   sizes, heavy experiments skipped
     --only IDS    run only the named experiments (comma-separated,
                   e.g. E1,E5,MBRSHIP) *)

open Bechamel
open Horus
module J = Horus_obs.Json

let quick = ref false

let section id title = Format.printf "@.===== %s — %s =====@.@." id title

(* --- machine-readable snapshot ------------------------------------ *)

(* Sections accumulate as experiments run; written at exit when
   [--json] was given. Wall-clock measurements go to [host_specific],
   everything else to [simulated]. *)
let host_specific : (string * J.t) list ref = ref []

let simulated : (string * J.t) list ref = ref []

let record_host key v = host_specific := !host_specific @ [ (key, v) ]

let record_sim key v = simulated := !simulated @ [ (key, v) ]

let json_of_rows rows =
  J.List
    (List.map
       (fun { Bb.name; ns; r_square } ->
          J.Obj
            [ ("name", J.String name);
              ("ns_per_run", J.Float ns);
              ("r_square", J.Float r_square) ])
       rows)

let write_json path =
  let doc =
    J.Obj
      [ ("schema", J.String "horus-bench/1");
        ("paper", J.String "A Framework for Protocol Composition in Horus (PODC '95)");
        ( "host_specific",
          J.Obj
            (( "note",
               J.String
                 "wall-clock values; host-specific, compare shapes only" )
             :: !host_specific) );
        ( "simulated",
          J.Obj
            (("note", J.String "deterministic in the seed") :: !simulated) );
      ]
  in
  let oc = open_out path in
  output_string oc (J.to_string ~indent:true doc);
  close_out oc;
  Format.printf "@.wrote %s@." path

(* ------------------------------------------------------------------ *)
(* E1 / Figure 1: run-time stack assembly                              *)
(* ------------------------------------------------------------------ *)

let e1_specs =
  [ ("COM only", "COM");
    ("NAK:COM", "NAK:COM");
    ("section-7 stack (5 layers)", "TOTAL:MBRSHIP:FRAG:NAK:COM");
    ("kitchen sink (9 layers)", "TOTAL:MBRSHIP:FRAG:COMPRESS:ENCRYPT:SIGN:NAK:CHKSUM:COM") ]

let e1_stack_assembly () =
  section "E1" "Figure 1: protocol layers assemble at run time";
  Horus_layers.Init.register_all ();
  let engine = Horus_sim.Engine.create () in
  let mk ?metrics spec_string =
    let spec = Spec.parse spec_string in
    let resolved = Spec.resolve spec in
    Horus_hcpi.Stack.create ~engine ~endpoint:(Addr.endpoint 0) ~group:(Addr.group 0)
      ~prng:(Horus_util.Prng.create 1)
      ~transport:{ Horus_hcpi.Layer.xmit = (fun ~dst:_ _ -> ()); local_node = 0; mtu = 65536 }
      ~rendezvous:Horus_hcpi.Layer.null_rendezvous ?metrics
      ~trace:(fun ~layer:_ ~category:_ _ -> ())
      ~to_app:(fun _ -> ())
      ~to_below:(fun _ -> ())
      resolved
  in
  let rows =
    Bb.run_group "stack assembly (parse + resolve + instantiate)"
      (List.map
         (fun (name, spec) ->
            Test.make ~name (Staged.stage (fun () -> ignore (mk spec))))
         e1_specs)
  in
  record_host "e1_assembly" (json_of_rows rows);
  (* Deterministic companion: one dump downcall through each assembled
     stack, with the per-layer crossing counters it generates. *)
  record_sim "e1_crossings"
    (J.Obj
       (List.map
          (fun (_, spec) ->
             let metrics = Horus_obs.Metrics.create () in
             let stack = mk ~metrics spec in
             Horus_hcpi.Stack.down stack Horus_hcpi.Event.D_dump;
             (spec, J.Obj [ ("metrics", Horus_obs.Metrics.to_json metrics) ]))
          e1_specs))

(* ------------------------------------------------------------------ *)
(* E2 / Table 1: downcall dispatch through the event queue             *)
(* ------------------------------------------------------------------ *)

let bare_stack ?(skip_inert = false) ~noops () =
  Horus_layers.Init.register_all ();
  let engine = Horus_sim.Engine.create () in
  let spec_string =
    String.concat ":" (List.init noops (fun _ -> "NOOP") @ [ "COM" ])
  in
  let resolved = Spec.resolve (Spec.parse spec_string) in
  Horus_hcpi.Stack.create ~engine ~endpoint:(Addr.endpoint 0) ~group:(Addr.group 0)
    ~prng:(Horus_util.Prng.create 1)
    ~transport:{ Horus_hcpi.Layer.xmit = (fun ~dst:_ _ -> ()); local_node = 0; mtu = 65536 }
    ~rendezvous:Horus_hcpi.Layer.null_rendezvous ~skip_inert
    ~trace:(fun ~layer:_ ~category:_ _ -> ())
    ~to_app:(fun _ -> ())
    ~to_below:(fun _ -> ())
    resolved

let e2_downcall_dispatch () =
  section "E2" "Table 1: downcall dispatch cost vs stack depth";
  let mk ?skip_inert noops =
    let stack = bare_stack ?skip_inert ~noops () in
    let tag = match skip_inert with Some true -> ", skipping" | _ -> "" in
    Test.make
      ~name:(Printf.sprintf "dump downcall through %2d layers%s" (noops + 1) tag)
      (Staged.stage (fun () -> Horus_hcpi.Stack.down stack Horus_hcpi.Event.D_dump))
  in
  ignore (Bb.run_group "downcall dispatch" [ mk 0; mk 1; mk 3; mk 7; mk 15 ]);
  (* Section 10 remedy 1: with layer skipping enabled, inert layers are
     bypassed and the cost stays flat in depth. *)
  ignore
    (Bb.run_group "downcall dispatch with layer skipping (Section 10 remedy 1)"
       [ mk ~skip_inert:true 0; mk ~skip_inert:true 7; mk ~skip_inert:true 15 ]);
  Format.printf
    "shape check: cost grows roughly linearly with depth — the paper's@.\
     'indirect procedure call each time a layer boundary is crossed' —@.\
     and flattens when inert layers are skipped (their proposed remedy).@."

(* ------------------------------------------------------------------ *)
(* E4 / Tables 3+4: property algebra                                   *)
(* ------------------------------------------------------------------ *)

let e4_property_algebra () =
  section "E4" "Tables 3 and 4: property derivation and stack synthesis";
  let module P = Horus_props.Property in
  let module Check = Horus_props.Check in
  let module Search = Horus_props.Search in
  let net = P.Set.of_numbers [ 1 ] in
  let sec7 = [ "TOTAL"; "MBRSHIP"; "FRAG"; "NAK"; "COM" ] in
  let full = P.Set.of_numbers [ 5; 6; 7; 9; 14; 15; 16 ] in
  ignore
    (Bb.run_group "property algebra"
       [ Test.make ~name:"derive section-7 stack"
           (Staged.stage (fun () -> ignore (Check.derive_names ~net sec7)));
         Test.make ~name:"synthesize minimal total-order stack"
           (Staged.stage (fun () ->
                ignore (Search.search ~net ~required:(P.Set.of_numbers [ 6 ]) ())));
         Test.make ~name:"synthesize everything-at-once stack"
           (Staged.stage (fun () -> ignore (Search.search ~net ~required:full ()))) ]);
  (match Check.derive_names ~net sec7 with
   | Ok props ->
     Format.printf "derived for TOTAL:MBRSHIP:FRAG:NAK:COM over {P1}: %a@." P.Set.pp props;
     Format.printf "paper (Section 7) says:                          {P3,P4,P6,P8,P9,P10,P11,P12,P15}@."
   | Error e -> Format.printf "derivation failed: %a@." Check.pp_error e)

(* ------------------------------------------------------------------ *)
(* E5 / Figure 2: flush latency vs group size                          *)
(* ------------------------------------------------------------------ *)

let e5_flush_latency () =
  section "E5" "Figure 2: crash-to-new-view latency vs group size";
  Format.printf "(includes the ~0.25 s failure-detection timeout of the NAK status protocol)@.@.";
  let sizes = if !quick then [ 2; 3; 4 ] else [ 2; 3; 4; 6; 8; 12; 16 ] in
  let snapshot_n = 4 in
  let latencies = ref [] in
  Format.printf "  %6s  %14s@." "n" "flush latency";
  List.iter
    (fun n ->
       (* Snapshot the world metrics of one representative size so the
          JSON carries E5's per-layer crossings and wire stats. *)
       let on_world world =
         if n = snapshot_n then
           record_sim "e5_metrics"
             (J.Obj
                [ ("n", J.Int n);
                  ("stack", J.String "MBRSHIP:FRAG:NAK:COM");
                  ("metrics", World.metrics_json world) ])
       in
       match Scenarios.flush_latency ~on_world ~n () with
       | Some dt ->
         latencies := (Printf.sprintf "n%d" n, J.Float dt) :: !latencies;
         Format.printf "  %6d  %11.3f s@." n dt
       | None ->
         latencies := (Printf.sprintf "n%d" n, J.Null) :: !latencies;
         Format.printf "  %6d  %14s@." n "did not settle")
    sizes;
  record_sim "e5_flush_latency_s" (J.Obj (List.rev !latencies));
  Format.printf "@.  %6s  %14s@." "n" "join latency";
  List.iter
    (fun n ->
       match Scenarios.join_latency ~n () with
       | Some dt -> Format.printf "  %6d  %11.3f s@." n dt
       | None -> Format.printf "  %6d  %14s@." n "did not settle")
    (if !quick then [ 2 ] else [ 2; 4; 8 ])

(* ------------------------------------------------------------------ *)
(* E7 / Section 7 + Section 10: pay only for what you use              *)
(* ------------------------------------------------------------------ *)

let e7_pay_for_what_you_use () =
  section "E7" "Section 7 stack: richer stacks cost more (pay for what you use)";
  let n = 4 in
  Format.printf "4 members, 50 casts of 100 bytes from member 0; wire cost per cast:@.@.";
  Format.printf "  %-38s %12s %12s %10s@." "stack" "packets/msg" "bytes/msg" "complete";
  let rows = ref [] in
  List.iter
    (fun (spec, membership) ->
       let c = Scenarios.traffic_cost ~spec ~n ~membership () in
       rows :=
         J.Obj
           [ ("stack", J.String spec);
             ("packets_per_msg", J.Float c.Scenarios.packets_per_msg);
             ("bytes_per_msg", J.Float c.Scenarios.bytes_per_msg);
             ("overhead_bytes_per_msg", J.Float c.Scenarios.overhead_bytes_per_msg);
             ("delivered_everywhere", J.Bool c.Scenarios.delivered_everywhere) ]
         :: !rows;
       Format.printf "  %-38s %12.2f %12.1f %10b@." spec c.Scenarios.packets_per_msg
         c.Scenarios.bytes_per_msg c.Scenarios.delivered_everywhere)
    [ ("COM", false);
      ("NAK:COM", false);
      ("FRAG:NAK:COM", false);
      ("MBRSHIP:FRAG:NAK:COM", true);
      ("TOTAL:MBRSHIP:FRAG:NAK:COM", true);
      ("ORDER_CAUSAL:MBRSHIP:FRAG:NAK:COM", true);
      ("BATCH(window=0.02):MBRSHIP:FRAG:NAK:COM", true) ];
  record_sim "e7_traffic" (J.List (List.rev !rows));
  Format.printf
    "@.shape check: every added property costs packets/bytes; the bare stack@.\
     carries (n-1) packets per cast and nothing else. Most of the full@.\
     stack's per-cast figure is background gossip amortized over this@.\
     modest rate; BATCH trims the data-packet share (the only share it@.\
     can), composing like any other layer.@."

(* ------------------------------------------------------------------ *)
(* E8 / Section 10 item 1: layer-crossing overhead                     *)
(* ------------------------------------------------------------------ *)

(* A 2-member world with k NOOP layers; each run casts one message and
   drains the simulation: the measured time is the end-to-end CPU cost
   of pushing one message down and up the stacks. *)
let crossing_world ~noops =
  let spec = String.concat ":" (List.init noops (fun _ -> "NOOP") @ [ "COM" ]) in
  let world, members = Scenarios.form_group ~record:false ~spec ~n:2 () in
  Scenarios.install_symmetric_views members;
  World.run world;
  (world, List.hd members)

let e8_layer_crossing () =
  section "E8" "Section 10(1): per-layer crossing overhead (wall clock)";
  let mk noops =
    let world, sender = crossing_world ~noops in
    Test.make
      ~name:(Printf.sprintf "cast through %2d layers" (noops + 1))
      (Staged.stage (fun () ->
           Group.cast sender "x";
           World.run world))
  in
  ignore (Bb.run_group "one cast, sender+receiver stacks" [ mk 0; mk 2; mk 4; mk 8; mk 16 ]);
  Format.printf
    "shape check: linear growth in depth; the slope is the per-layer cost@.\
     (the paper reports tens of microseconds per layer on a 1993 Sparc 10).@."

(* ------------------------------------------------------------------ *)
(* E9 / Section 10: the FRAG overhead measurement                      *)
(* ------------------------------------------------------------------ *)

let e9_frag_overhead () =
  section "E9" "Section 10: FRAG layer overhead (the paper's ~50 us claim)";
  let world_plain, s_plain = crossing_world ~noops:0 in
  let spec = "FRAG:COM" in
  let world_frag, members_frag = Scenarios.form_group ~record:false ~spec ~n:2 () in
  Scenarios.install_symmetric_views members_frag;
  World.run world_frag;
  let s_frag = List.hd members_frag in
  let payload = String.make 512 'x' in
  let big = String.make 8192 'y' in
  ignore
    (Bb.run_group "FRAG overhead"
       [ Test.make ~name:"COM alone, 512 B (baseline)"
           (Staged.stage (fun () ->
                Group.cast s_plain payload;
                World.run world_plain));
         Test.make ~name:"FRAG:COM, 512 B (no split: pure layer cost)"
           (Staged.stage (fun () ->
                Group.cast s_frag payload;
                World.run world_frag));
         Test.make ~name:"FRAG:COM, 8 KiB (split into 8 fragments)"
           (Staged.stage (fun () ->
                Group.cast s_frag big;
                World.run world_frag)) ]);
  Format.printf
    "shape check: the no-split row minus the baseline is the pure FRAG@.\
     crossing cost (paper: ~50 us on a Sparc 10, 'considerable'); the@.\
     8 KiB row adds real fragmentation work.@."

(* ------------------------------------------------------------------ *)
(* E10 / Section 10 item 3: header push/pop vs compacted headers       *)
(* ------------------------------------------------------------------ *)

let e10_header_compaction () =
  section "E10" "Section 10(3): per-layer headers vs precomputed compacted header";
  let fields =
    [ Horus_msg.Compact.field ~layer:"FRAG" ~name:"more" ~bits:1;
      Horus_msg.Compact.field ~layer:"NAK" ~name:"epoch" ~bits:16;
      Horus_msg.Compact.field ~layer:"NAK" ~name:"seq" ~bits:24;
      Horus_msg.Compact.field ~layer:"MBRSHIP" ~name:"seq" ~bits:24;
      Horus_msg.Compact.field ~layer:"TOTAL" ~name:"gseq" ~bits:24;
      Horus_msg.Compact.field ~layer:"COM" ~name:"src" ~bits:16;
      Horus_msg.Compact.field ~layer:"COM" ~name:"kind" ~bits:3 ]
  in
  let layout = Horus_msg.Compact.layout fields in
  let blob = Horus_msg.Compact.alloc layout in
  let n_fields = List.length fields in
  ignore
    (Bb.run_group "seven header fields of the section-7 stack"
       [ Test.make ~name:"push 7 word-aligned headers + pop them"
           (Staged.stage (fun () ->
                let m = Horus_msg.Msg.create "0123456789abcdef" in
                Horus_msg.Msg.push_u8 m 1;
                Horus_msg.Msg.push_u32 m 7;
                Horus_msg.Msg.push_u32 m 42;
                Horus_msg.Msg.push_u32 m 1000;
                Horus_msg.Msg.push_u32 m 999;
                Horus_msg.Msg.push_u32 m 3;
                Horus_msg.Msg.push_u8 m 0;
                ignore (Horus_msg.Msg.pop_u8 m);
                ignore (Horus_msg.Msg.pop_u32 m);
                ignore (Horus_msg.Msg.pop_u32 m);
                ignore (Horus_msg.Msg.pop_u32 m);
                ignore (Horus_msg.Msg.pop_u32 m);
                ignore (Horus_msg.Msg.pop_u32 m);
                ignore (Horus_msg.Msg.pop_u8 m)));
         Test.make ~name:"write 7 fields into one compact header + read"
           (Staged.stage (fun () ->
                for slot = 0 to n_fields - 1 do
                  Horus_msg.Compact.set layout blob ~slot (Int64.of_int slot)
                done;
                for slot = 0 to n_fields - 1 do
                  ignore (Horus_msg.Compact.get layout blob ~slot)
                done)) ]);
  let padded = Horus_msg.Compact.padded_bytes fields in
  let compact = Horus_msg.Compact.total_bytes layout in
  Format.printf "header bytes on the wire: word-aligned per layer = %d, compacted = %d (%.0f%% saved)@."
    padded compact
    (100.0 *. (1.0 -. (float_of_int compact /. float_of_int padded)));
  Format.printf
    "shape check: compaction removes both the push/pop work and the@.\
     alignment padding the paper complains about.@."

(* ------------------------------------------------------------------ *)
(* E11 / Section 9-10: STABLE vs PINWHEEL economics                    *)
(* ------------------------------------------------------------------ *)

let e11_stability () =
  section "E11" "Sections 9-10: STABLE vs PINWHEEL (an application chooses what is optimal)";
  Format.printf "wire traffic under steady load (100 casts/s from member 0), packets per@.\
simulated second; baseline = same stack without a stability layer:@.@.";
  Format.printf "  %4s  %13s  %13s  %13s@." "n" "baseline" "STABLE" "PINWHEEL";
  List.iter
    (fun n ->
       let b, _ = Scenarios.loaded_traffic ~spec:"MBRSHIP:FRAG:NAK:COM" ~n () in
       let s, _ = Scenarios.loaded_traffic ~spec:"STABLE:MBRSHIP:FRAG:NAK:COM" ~n () in
       let p, _ = Scenarios.loaded_traffic ~spec:"PINWHEEL:MBRSHIP:FRAG:NAK:COM" ~n () in
       Format.printf "  %4d  %10.0f /s  %10.0f /s  %10.0f /s@." n b s p)
    [ 3; 6; 9; 12 ];
  Format.printf "@.stability convergence latency for one message (n=4):@.";
  List.iter
    (fun spec ->
       match Scenarios.stability_latency ~spec ~n:4 () with
       | Some dt -> Format.printf "  %-34s %8.3f s@." spec dt
       | None -> Format.printf "  %-34s %8s@." spec "timeout")
    [ "STABLE:MBRSHIP:FRAG:NAK:COM"; "PINWHEEL:MBRSHIP:FRAG:NAK:COM" ];
  Format.printf
    "@.shape check: STABLE's all-to-all gossip grows ~n^2 and converges fast;@.\
     PINWHEEL stays ~n and converges more slowly — exactly the trade-off the@.\
     paper says applications should pick between.@."

(* ------------------------------------------------------------------ *)
(* E12 / Sections 5+9: membership ablation (MBRSHIP vs FLUSH:BMS vs VSS:BMS) *)
(* ------------------------------------------------------------------ *)

let e12_membership_ablation () =
  section "E12" "Sections 5, 9, 11: one view change, three implementations";
  Format.printf "membership-protocol control messages (flush requests, replies,@.\
forwarded copies, installs, state exchanges) for one crash-driven view@.\
change, summed over survivors — background gossip excluded:@.@.";
  Format.printf "  %4s  %14s  %14s  %14s@." "n" "MBRSHIP" "FLUSH:BMS" "VSS:BMS";
  List.iter
    (fun n ->
       let cost spec layers =
         match Scenarios.view_change_cost ~spec ~layers ~n () with
         | Some c -> string_of_int c
         | None -> "stuck"
       in
       Format.printf "  %4d  %14s  %14s  %14s@." n
         (cost "MBRSHIP:FRAG:NAK:COM" [ "MBRSHIP" ])
         (cost "FLUSH:BMS:FRAG:NAK:COM" [ "FLUSH"; "BMS" ])
         (cost "VSS:BMS:FRAG:NAK:COM" [ "VSS"; "BMS" ]))
    [ 3; 5; 7 ];
  Format.printf
    "@.shape check: the decomposed stacks pay extra for their second protocol@.\
     round; VSS's all-to-all exchange grows fastest — composition has a@.\
     price, which is why production Horus fused layers (Section 8).@."

(* ------------------------------------------------------------------ *)
(* TOTAL agreement latency (supports Section 7's liveness discussion)  *)
(* ------------------------------------------------------------------ *)

let e_total_latency () =
  section "E7b" "Section 7: TOTAL agreement latency vs group size";
  Format.printf "  %4s  %18s  %8s@." "n" "all-delivered" "agreed";
  List.iter
    (fun n ->
       match Scenarios.total_order_latency ~n () with
       | Some (dt, agreed) -> Format.printf "  %4d  %15.3f s  %8b@." n dt agreed
       | None -> Format.printf "  %4d  %18s  %8s@." n "timeout" "-")
    [ 2; 3; 5; 8 ]

(* ------------------------------------------------------------------ *)
(* E7c: end-to-end throughput of the paper stack (wall clock)          *)
(* ------------------------------------------------------------------ *)

let e7c_throughput () =
  section "E7c" "end-to-end throughput (wall clock, full protocol work simulated)";
  let throughput spec n =
    let world, members = Scenarios.form_group ~record:false ~spec ~n () in
    let sender = List.hd members in
    let batch = 2000 in
    (* Warm up. *)
    Group.cast sender "warm";
    World.run_for world ~duration:0.2;
    let t0 = Unix.gettimeofday () in
    for i = 0 to batch - 1 do
      Group.cast sender "0123456789abcdef0123456789abcdef";
      (* Drain every 10 casts so queues stay small, as a live system
         interleaves work. *)
      if i mod 10 = 9 then World.run_for world ~duration:0.001
    done;
    World.run_for world ~duration:2.0;
    let dt = Unix.gettimeofday () -. t0 in
    float_of_int batch /. dt
  in
  Format.printf "  %-38s %6s %16s@." "stack" "n" "casts/sec (wall)";
  List.iter
    (fun (spec, n) ->
       Format.printf "  %-38s %6d %12.0f /s@." spec n (throughput spec n))
    [ ("MBRSHIP:FRAG:NAK:COM", 3);
      ("TOTAL:MBRSHIP:FRAG:NAK:COM", 3);
      ("TOTAL:MBRSHIP:FRAG:NAK:COM", 8) ];
  Format.printf
    "@.every protocol action (headers, acks, gossip, token) is executed for@.\
real; only the wire is simulated. The paper's companion TR reports@.\
Horus within range of the fastest systems of 1994 on real ATM.@."

(* ------------------------------------------------------------------ *)
(* E13: failure-detection period ablation                              *)
(* ------------------------------------------------------------------ *)

let e13_detection_ablation () =
  section "E13" "ablation: failure-detection period (NAK status protocol)";
  Format.printf "the status period drives both the background cost and how fast@.\
crashes are detected (suspicion fires after 5 missed periods):@.@.";
  Format.printf "  %12s  %16s  %18s@." "period" "idle packets/s" "crash-to-view";
  List.iter
    (fun period ->
       let spec =
         Printf.sprintf "MBRSHIP:FRAG:NAK(status_period=%g):COM" period
       in
       let idle, _ = Scenarios.loaded_traffic ~cast_every:0.0 ~spec ~n:4 () in
       let flush =
         match Scenarios.flush_latency ~spec ~n:4 () with
         | Some dt -> Printf.sprintf "%.3f s" dt
         | None -> "did not settle"
       in
       Format.printf "  %9.0f ms  %13.1f /s  %18s@." (period *. 1000.0) idle flush)
    [ 0.01; 0.025; 0.05; 0.1; 0.2 ];
  Format.printf
    "@.shape check: detection latency ~ 6x the period; background cost ~ 1/period —@.\
the classic failure-detector trade-off, tunable per stack instance at run time.@."

(* ------------------------------------------------------------------ *)
(* M1: Section 8 — exhaustive model checking                           *)
(* ------------------------------------------------------------------ *)

let m1_models () =
  section "M1" "Section 8: exhaustive reference-model checking";
  let run name explore =
    let r = explore () in
    Format.printf "  %-44s states=%-7d terminals=%-5d violations=%d%s@." name
      r.Horus_model.Automaton.states_explored r.Horus_model.Automaton.terminals
      (List.length r.Horus_model.Automaton.violations)
      (if r.Horus_model.Automaton.truncated then " TRUNCATED" else "")
  in
  let flush ~ignore_stragglers ~survivor_cast () =
    let module Sys =
      (val Horus_model.Flush_model.system ~ignore_stragglers ~survivor_cast ()
        : Horus_model.Automaton.SYSTEM
        with type state = Horus_model.Flush_model.state
         and type action = Horus_model.Flush_model.action)
    in
    let module E = Horus_model.Automaton.Make (Sys) in
    E.explore ()
  in
  run "flush protocol (with Section 5 ignore rule)"
    (flush ~ignore_stragglers:true ~survivor_cast:true);
  run "flush protocol (rule removed: must violate)"
    (flush ~ignore_stragglers:false ~survivor_cast:false);
  (let module Sys =
     (val Horus_model.Total_model.system ()
       : Horus_model.Automaton.SYSTEM
       with type state = Horus_model.Total_model.state
        and type action = Horus_model.Total_model.action)
   in
   let module E = Horus_model.Automaton.Make (Sys) in
   run "TOTAL token protocol" (fun () -> E.explore ~max_states:2_000_000 ()));
  (let module Sys =
     (val Horus_model.Takeover_model.system ()
       : Horus_model.Automaton.SYSTEM
       with type state = Horus_model.Takeover_model.state
        and type action = Horus_model.Takeover_model.action)
   in
   let module E = Horus_model.Automaton.Make (Sys) in
   run "coordinator takeover" (fun () -> E.explore ()));
  Format.printf
    "@.shape check: the hardened models hold over every interleaving; removing@.\
the Section 5 rule reproduces the straggler violation on demand.@."

(* ------------------------------------------------------------------ *)
(* MBRSHIP: a full membership scenario with its metrics snapshot       *)
(* ------------------------------------------------------------------ *)

(* The observability counterpart of E7's MBRSHIP row: run the stack
   under traffic and export the complete world registry — per-layer
   HCPI crossings, engine dispatch-delay histogram, wire stats — as
   one deterministic JSON object. *)
let e_mbrship_metrics () =
  section "MBRSHIP" "membership scenario under traffic, full metrics registry";
  let spec = "MBRSHIP:FRAG:NAK:COM" and n = 4 in
  let snapshot = ref J.Null in
  let c =
    Scenarios.traffic_cost ~spec ~n ~membership:true
      ~on_world:(fun world -> snapshot := World.metrics_json world)
      ()
  in
  record_sim "mbrship"
    (J.Obj
       [ ("stack", J.String spec);
         ("n", J.Int n);
         ("packets_per_msg", J.Float c.Scenarios.packets_per_msg);
         ("bytes_per_msg", J.Float c.Scenarios.bytes_per_msg);
         ("delivered_everywhere", J.Bool c.Scenarios.delivered_everywhere);
         ("metrics", !snapshot) ]);
  (match !snapshot with
   | J.Obj _ as m ->
     let crossing key = Option.bind (J.path [ "counters"; key ] m) J.to_int in
     Format.printf "  %-28s %10s@." "counter" "value";
     List.iter
       (fun layer ->
          match crossing ("hcpi.down." ^ layer) with
          | Some v -> Format.printf "  %-28s %10d@." ("hcpi.down." ^ layer) v
          | None -> ())
       [ "MBRSHIP"; "FRAG"; "NAK"; "COM" ];
     (match Option.bind (J.path [ "counters"; "net.sent" ] m) J.to_int with
      | Some v -> Format.printf "  %-28s %10d@." "net.sent" v
      | None -> ())
   | _ -> ());
  Format.printf
    "@.the same registry every layer, the engine and the network feed;@.\
     with --json the full snapshot lands in the BENCH file.@."

(* ------------------------------------------------------------------ *)
(* T1: the transport narrow waist — same stack, three wires            *)
(* ------------------------------------------------------------------ *)

(* Two members of the section-7 stack casting a paced stream; the only
   variable is the attachment under COM: the simulated net, the
   in-process loopback backend (real transport path — frame codec,
   peer book, backend stats — in virtual time), or real UDP sockets on
   127.0.0.1 pumped by the wall-clock driver. Throughput is wall-clock
   everywhere (all protocol work is executed for real); latency is
   measured on whichever clock drives the mode. *)
let t1_transport () =
  section "T1" "transport: cast throughput and one-way latency (sim vs loopback vs UDP)";
  let casts = if !quick then 200 else 1000 in
  let rows = ref [] in
  Format.printf "  2 members, %d casts of 64 B at 0.5 ms spacing (UDP is pace-capped):@.@."
    casts;
  Format.printf "  %-10s %18s %16s %9s %10s@." "transport" "casts/s (wall)" "latency"
    "clock" "complete";
  List.iter
    (fun (name, mode) ->
       match Scenarios.transport_pair ~mode ~casts () with
       | r ->
         rows :=
           J.Obj
             [ ("transport", J.String name);
               ("throughput_casts_per_s", J.Float r.Scenarios.t_throughput);
               ("one_way_latency_s", J.Float r.Scenarios.t_latency_s);
               ("latency_clock", J.String r.Scenarios.t_clock);
               ("complete", J.Bool r.Scenarios.t_complete);
               ("bad_frames", J.Int r.Scenarios.t_bad_frames) ]
           :: !rows;
         Format.printf "  %-10s %14.0f /s %13.3f ms %9s %10b@." name
           r.Scenarios.t_throughput
           (r.Scenarios.t_latency_s *. 1000.0)
           r.Scenarios.t_clock r.Scenarios.t_complete
       | exception e ->
         (* A sandbox without UDP sockets shouldn't sink the whole
            bench: record the failure and move on. *)
         rows :=
           J.Obj [ ("transport", J.String name); ("error", J.String (Printexc.to_string e)) ]
           :: !rows;
         Format.printf "  %-10s failed: %s@." name (Printexc.to_string e))
    [ ("sim", `Sim); ("loopback", `Loopback); ("udp", `Udp) ];
  record_host "t1_transport"
    (J.Obj
       [ ("casts", J.Int casts);
         ("pace_interval_s", J.Float 0.0005);
         ("runs", J.List (List.rev !rows)) ]);
  Format.printf
    "@.shape check: loopback tracks sim (same virtual clock, extra codec work);@.\
     UDP adds real kernel crossings — its latency is wall-clock and dominated@.\
     by the driver's select wake-up, not by the protocol stack.@."

(* ------------------------------------------------------------------ *)
(* T3 / Section 10 item 2: the fused fast path                         *)
(* ------------------------------------------------------------------ *)

(* The deterministic companion of E2/E8: a 2-member world on the
   section-7 stack padded with NOOP layers, member 0 casting a paced
   stream. With the fast path on, steady-state casts run through the
   compiled closure pair — inert padding is skipped outright, so the
   crossings-per-cast histogram stays flat (five participants) while
   the stack depth grows; unfused, every cast crosses every layer.
   Each depth also cross-checks delivery equivalence fused vs
   unfused. *)
let t3_world ~fastpath ~noops =
  let spec =
    String.concat ":"
      (List.init noops (fun _ -> "NOOP")
       @ [ "TOTAL"; "MBRSHIP"; "FRAG"; "NAK"; "COM" ])
  in
  let world = World.create ~seed:7 () in
  let g = World.fresh_group_addr world in
  let founder = Group.join ~fastpath (Endpoint.create world ~spec) g in
  World.run_for world ~duration:0.3;
  let other =
    Group.join ~fastpath ~contact:(Group.addr founder) (Endpoint.create world ~spec) g
  in
  World.run_for world ~duration:3.0;
  for i = 1 to 20 do
    Group.cast founder (Printf.sprintf "t3-%d" i);
    World.run_for world ~duration:0.05
  done;
  World.run_for world ~duration:1.0;
  (world, [ Group.casts founder; Group.casts other ])

let t3_fastpath () =
  section "T3" "Section 10(2): fused fast path — crossings per cast flat in depth";
  Horus_layers.Init.register_all ();
  Format.printf "2 members, 20 casts; NOOP padding on top of the section-7 stack:@.@.";
  Format.printf "  %5s  %10s  %13s  %9s  %12s  %13s  %10s@." "depth" "send_fused"
    "deliver_fused" "fallbacks" "cast-xings" "all-ops-xings" "equivalent";
  let rows = ref [] in
  List.iter
    (fun noops ->
       let depth = noops + 5 in
       let world, fused_casts = t3_world ~fastpath:true ~noops in
       let _, plain_casts = t3_world ~fastpath:false ~noops in
       let m = World.metrics world in
       let count name = Horus_obs.Metrics.count (Horus_obs.Metrics.counter m name) in
       let h = Horus_obs.Metrics.histogram m "fastpath.crossings_per_cast" in
       let crossings =
         match Horus_obs.Metrics.observations h with
         | 0 -> 0.0
         | n -> Horus_obs.Metrics.sum h /. float_of_int n
       in
       let fallbacks = count "fastpath.send_fallback" + count "fastpath.deliver_fallback" in
       let equivalent = fused_casts = plain_casts in
       (* Send-side crossings per application cast: a fused cast
          crosses the five non-inert layers, a fallback crosses the
          whole stack. (The histogram mean above also counts control
          packets, which always take the full path.) *)
       let cast_crossings =
         let fused = count "fastpath.send_fused"
         and fell = count "fastpath.send_fallback" in
         if fused + fell = 0 then 0.0
         else
           float_of_int ((fused * 5) + (fell * depth)) /. float_of_int (fused + fell)
       in
       rows :=
         J.Obj
           [ ("stack_depth", J.Int depth);
             ("send_fused", J.Int (count "fastpath.send_fused"));
             ("deliver_fused", J.Int (count "fastpath.deliver_fused"));
             ("fallbacks", J.Int fallbacks);
             ("cast_send_crossings", J.Float cast_crossings);
             ("all_ops_crossings", J.Float crossings);
             ("pool_hits", J.Int (int_of_float (Horus_obs.Metrics.gauge_value
                (Horus_obs.Metrics.gauge m "fastpath.pool_hits"))));
             ("equivalent_deliveries", J.Bool equivalent) ]
         :: !rows;
       Format.printf "  %5d  %10d  %13d  %9d  %12.1f  %13.1f  %10b@." depth
         (count "fastpath.send_fused") (count "fastpath.deliver_fused") fallbacks
         cast_crossings crossings equivalent)
    [ 0; 2; 6; 10 ];
  record_sim "t3_fastpath" (J.List (List.rev !rows));
  Format.printf
    "@.shape check: cast crossings stay at 5 (the non-inert layers) at every@.\
     depth — the full path's figure is the depth itself, which is what the@.\
     all-ops column (control packets included) drifts toward. Pool hits@.\
     climbing means steady-state casts stopped allocating header blocks.@."

(* ------------------------------------------------------------------ *)
(* M4: hierarchical churn — directory + HIER + mux at bench scale      *)
(* ------------------------------------------------------------------ *)

(* The M4 soak (EXPERIMENTS.md) shrunk to a deterministic smoke shape:
   64 endpoints in 8 HIER sub-groups over 8 multiplexed sockets with
   the directory, one leave+rejoin wave. Everything recorded is a pure
   function of the seed, so it sits under the bench gate: a change
   that slows convergence past the poll slice, starts retransmitting,
   leaks leases or perturbs the fingerprint turns the build red. *)
let m4_churn () =
  section "M4" "hierarchical churn: directory + HIER + mux (bench shape)";
  Horus_layers.Init.register_all ();
  let module C = Horus_check.Churn in
  let config =
    { C.ci_config with
      C.h_name = "bench-m4";
      h_endpoints = 64;
      h_subgroups = 8;
      h_waves = 1;
      h_casts_per_wave = 4 }
  in
  let r = C.run config in
  let phases = Option.to_list r.C.r_setup_converge
               @ List.filter_map (fun w -> w.C.w_converge) r.C.r_waves in
  let all_converged =
    Option.is_some r.C.r_setup_converge
    && List.for_all (fun w -> Option.is_some w.C.w_converge) r.C.r_waves
  in
  let worst = List.fold_left Float.max 0.0 phases in
  Format.printf
    "  %d endpoints / %d sub-groups / %d sockets: %d phases, worst converge \
     %.2fs, nak.retransmits %d, unknown_gid %d, fingerprint %016Lx@."
    r.C.r_endpoints r.C.r_subgroups r.C.r_sockets (List.length phases) worst
    r.C.r_nak_retransmits r.C.r_unknown_gid r.C.r_fingerprint;
  record_sim "m4_churn"
    (J.Obj
       [ ("endpoints", J.Int r.C.r_endpoints);
         ("subgroups", J.Int r.C.r_subgroups);
         ("sockets", J.Int r.C.r_sockets);
         ("ok", J.Bool (C.ok r));
         ("all_phases_converged", J.Bool all_converged);
         ("worst_converge", J.Float worst);
         ("parent_casts", J.Int r.C.r_parent_casts);
         ("nak_retransmits", J.Int r.C.r_nak_retransmits);
         ("unknown_gid", J.Int r.C.r_unknown_gid);
         ("dir_evictions", J.Int r.C.r_dir_evictions);
         ("fingerprint", J.String (Printf.sprintf "%016Lx" r.C.r_fingerprint)) ])

(* ------------------------------------------------------------------ *)
(* M5: crash-fault campaign — ungraceful failover at bench scale       *)
(* ------------------------------------------------------------------ *)

(* The M5 campaign (EXPERIMENTS.md) shrunk to a deterministic smoke
   shape: the M4 grid driven through one ungraceful wave — a
   coordinator and the directory primary killed without a goodbye.
   The recorded fingerprint pins the whole failover path: scripted
   suspicion, HIER re-bridging, backup promotion and client failover.
   The lease clears a worst-case renewal issued into the primary
   outage (half-lease cadence + a full per-replica retry budget at the
   RTO ceiling), so no survivor binding is ever evicted. *)
let m5_failover () =
  section "M5" "crash-fault campaign: ungraceful failover (bench shape)";
  Horus_layers.Init.register_all ();
  let module C = Horus_check.Churn in
  let config =
    { C.m5_ci_config with
      C.h_name = "bench-m5";
      h_endpoints = 64;
      h_subgroups = 8;
      h_waves = 1;
      h_casts_per_wave = 4;
      h_kill_coordinators = 1;
      h_dir_replicas = 1;
      h_kill_dir_wave = 0;
      h_lease = 20.0;
      h_nak_ceiling = 4000 }
  in
  let r = C.run config in
  let worst_rebridge =
    List.fold_left (fun a (_, dt) -> Float.max a dt) 0.0 r.C.r_rebridge
  in
  Format.printf
    "  %d endpoints / %d sub-groups: killed %d (%d coordinators), worst \
     re-bridge %.2fs, promotions %d, failovers %d, evictions %d, fingerprint \
     %016Lx@."
    r.C.r_endpoints r.C.r_subgroups r.C.r_killed r.C.r_killed_coordinators
    worst_rebridge r.C.r_dir_promotions r.C.r_dir_failovers r.C.r_dir_evictions
    r.C.r_fingerprint;
  record_sim "m5_failover"
    (J.Obj
       [ ("endpoints", J.Int r.C.r_endpoints);
         ("subgroups", J.Int r.C.r_subgroups);
         ("ok", J.Bool (C.ok r));
         ("killed", J.Int r.C.r_killed);
         ("killed_coordinators", J.Int r.C.r_killed_coordinators);
         ("worst_rebridge", J.Float worst_rebridge);
         ("parent_lost", J.Int r.C.r_parent_lost);
         ("dir_promotions", J.Int r.C.r_dir_promotions);
         ("dir_epoch", J.Int r.C.r_dir_epoch);
         ("dir_failovers", J.Int r.C.r_dir_failovers);
         ("dir_redirects", J.Int r.C.r_dir_redirects);
         ("dir_evictions", J.Int r.C.r_dir_evictions);
         ("nak_retransmits", J.Int r.C.r_nak_retransmits);
         ("fingerprint", J.String (Printf.sprintf "%016Lx" r.C.r_fingerprint)) ])

(* ------------------------------------------------------------------ *)
(* driver                                                              *)
(* ------------------------------------------------------------------ *)

(* [true] marks experiments cheap enough for the CI smoke run
   (--quick); the rest only run in a full pass. *)
let experiments =
  [ ("E1", true, e1_stack_assembly);
    ("E2", true, e2_downcall_dispatch);
    ("E4", true, e4_property_algebra);
    ("E5", true, e5_flush_latency);
    ("E7", true, e7_pay_for_what_you_use);
    ("E7b", false, e_total_latency);
    ("E8", false, e8_layer_crossing);
    ("E9", false, e9_frag_overhead);
    ("E10", true, e10_header_compaction);
    ("E11", false, e11_stability);
    ("E12", false, e12_membership_ablation);
    ("E7c", false, e7c_throughput);
    ("E13", false, e13_detection_ablation);
    ("MBRSHIP", true, e_mbrship_metrics);
    ("T1", true, t1_transport);
    ("T3", true, t3_fastpath);
    ("M4", true, m4_churn);
    ("M5", true, m5_failover);
    ("M1", false, m1_models) ]

let () =
  let json_path = ref None in
  let only = ref None in
  let args =
    [ ("--json", Arg.String (fun f -> json_path := Some f),
       "FILE  also write a machine-readable snapshot to FILE");
      ("--quick", Arg.Set quick,
       "  CI smoke mode: tiny quota, reduced sizes, heavy experiments skipped");
      ("--only", Arg.String (fun s -> only := Some (String.split_on_char ',' s)),
       "IDS  run only these comma-separated experiments (e.g. E1,E5,MBRSHIP)") ]
  in
  Arg.parse args
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "Horus experiment harness";
  if !quick then Bb.default_quota := 0.05;
  let selected (id, cheap, _) =
    match !only with
    | Some ids -> List.mem id ids
    | None -> cheap || not !quick
  in
  Format.printf "Horus protocol-composition framework: experiment harness@.";
  Format.printf "(paper: van Renesse et al., PODC '95; see DESIGN.md and EXPERIMENTS.md)@.";
  List.iter (fun ((_, _, run) as e) -> if selected e then run ()) experiments;
  (match !json_path with Some path -> write_json path | None -> ());
  Format.printf "@.done.@."
