(* Bechamel boilerplate: run a group of tests and print one line per
   test with the OLS-estimated time per run and the fit's r². *)

open Bechamel
open Toolkit

type row = {
  name : string;
  ns : float;         (* OLS time estimate per run, nanoseconds *)
  r_square : float;   (* goodness of fit; nan when unavailable *)
}

(* CI smoke runs shrink the measurement quota ([--quick] in main.ml)
   so the whole harness finishes in seconds. *)
let default_quota = ref 0.5

(* Below this r² the OLS fit explains too little of the variance for
   the estimate to be trusted; flag it in the output. *)
let noisy_r_square = 0.90

let run_group ?quota name tests =
  let quota = match quota with Some q -> q | None -> !default_quota in
  let test = Test.make_grouped ~name tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:false () in
  let raw = Benchmark.all cfg instances test in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun test_name ols_result acc ->
         let ns =
           match Analyze.OLS.estimates ols_result with
           | Some (est :: _) -> est
           | Some [] | None -> nan
         in
         let r_square =
           match Analyze.OLS.r_square ols_result with
           | Some r -> r
           | None -> nan
         in
         { name = test_name; ns; r_square } :: acc)
      results []
    |> List.sort (fun a b -> String.compare a.name b.name)
  in
  Format.printf "== %s ==@." name;
  List.iter
    (fun { name = test_name; ns; r_square } ->
       let pretty =
         if Float.is_nan ns then "n/a"
         else if ns >= 1e6 then Printf.sprintf "%10.3f ms" (ns /. 1e6)
         else if ns >= 1e3 then Printf.sprintf "%10.3f us" (ns /. 1e3)
         else Printf.sprintf "%10.1f ns" ns
       in
       let fit =
         if Float.is_nan r_square then "r²=n/a"
         else if r_square < noisy_r_square then Printf.sprintf "r²=%.3f NOISY" r_square
         else Printf.sprintf "r²=%.3f" r_square
       in
       Format.printf "  %-48s %s/run  (%s)@." test_name pretty fit)
    rows;
  Format.printf "@.";
  rows
