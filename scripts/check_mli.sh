#!/bin/sh
# CI lint: every library module must publish an interface.
#
# Fails if any lib/**/*.ml lacks a matching .mli. The lib/model modules
# are the known exceptions: they are exhaustive reference models whose
# whole state spaces are deliberately public to the checker.
set -u

cd "$(dirname "$0")/.."

allowlisted() {
    case "$1" in
        lib/model/*) return 0 ;;
        *) return 1 ;;
    esac
}

fail=0
for ml in $(find lib -name '*.ml' | sort); do
    if allowlisted "$ml"; then
        continue
    fi
    if [ ! -f "${ml}i" ]; then
        echo "missing interface: ${ml}i"
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "every lib module needs a .mli (lib/model excepted); see scripts/check_mli.sh"
    exit 1
fi
echo "mli check: ok"
