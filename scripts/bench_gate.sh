#!/usr/bin/env bash
# CI perf-regression gate.
#
# Re-runs the bench harness in --quick mode and compares the
# deterministic ("simulated") section of the snapshot against the
# committed baseline BENCH_horus.json. Wall-clock sections are
# host-specific and never compared. Numeric drift beyond the
# tolerance (default 15%, override with BENCH_GATE_TOLERANCE), or any
# structural change (key added/removed, type changed), fails the gate.
#
# Escape hatch: when a perf change is intended, put [bench-reset] in
# the commit message, regenerate the baseline with
#     dune exec bench/main.exe -- --json BENCH_horus.json --quick
# and commit it; the gate skips the comparison for that commit.
#
# A machine-readable comparison report is always written (default
# bench_gate_diff.json, override with BENCH_GATE_DIFF) so CI can
# upload it as an artifact.
#
# Usage: scripts/bench_gate.sh [baseline [candidate]]
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${1:-BENCH_horus.json}"
CANDIDATE="${2:-_build/BENCH_candidate.json}"
TOLERANCE="${BENCH_GATE_TOLERANCE:-0.15}"
DIFF_OUT="${BENCH_GATE_DIFF:-bench_gate_diff.json}"

if git log -1 --format=%B 2>/dev/null | grep -q '\[bench-reset\]'; then
  echo "bench gate: [bench-reset] in the commit message — baseline reset, skipping"
  printf '{"skipped": "bench-reset"}\n' > "$DIFF_OUT"
  exit 0
fi

if [ ! -f "$BASELINE" ]; then
  echo "bench gate: no baseline at $BASELINE" >&2
  exit 1
fi

echo "bench gate: regenerating candidate snapshot (--quick)"
dune exec bench/main.exe -- --json "$CANDIDATE" --quick > /dev/null

python3 - "$BASELINE" "$CANDIDATE" "$TOLERANCE" "$DIFF_OUT" <<'PYEOF'
import json, sys

baseline_path, candidate_path, tol_s, diff_out = sys.argv[1:5]
tol = float(tol_s)
base = json.load(open(baseline_path))["simulated"]
cand = json.load(open(candidate_path))["simulated"]

checked = 0
failures = []


def fail(path, b, c, dev=None):
    failures.append(
        {"path": path, "baseline": b, "candidate": c,
         **({"deviation": round(dev, 4)} if dev is not None else {})})


def walk(path, b, c):
    global checked
    if isinstance(b, dict) and isinstance(c, dict):
        for k in sorted(set(b) | set(c)):
            p = f"{path}.{k}" if path else k
            if k not in b:
                fail(p, None, c[k])
            elif k not in c:
                fail(p, b[k], None)
            else:
                walk(p, b[k], c[k])
    elif isinstance(b, list) and isinstance(c, list):
        if len(b) != len(c):
            fail(path + ".length", len(b), len(c))
        for i, (bb, cc) in enumerate(zip(b, c)):
            walk(f"{path}[{i}]", bb, cc)
    elif isinstance(b, bool) or isinstance(c, bool):
        checked += 1
        if b != c:
            fail(path, b, c)
    elif isinstance(b, (int, float)) and isinstance(c, (int, float)):
        checked += 1
        # Relative to the baseline, with a floor of 1.0 so near-zero
        # values do not trip on absolute noise.
        dev = abs(c - b) / max(abs(b), 1.0)
        if dev > tol:
            fail(path, b, c, dev)
    else:
        checked += 1
        if b != c:
            fail(path, b, c)


walk("", base, cand)

report = {
    "tolerance": tol,
    "values_checked": checked,
    "failures": failures,
}
json.dump(report, open(diff_out, "w"), indent=2)

if failures:
    print(f"bench gate: FAIL — {len(failures)} value(s) beyond {tol:.0%} "
          f"of {checked} checked (report: {diff_out})")
    for f in failures[:20]:
        dev = f" ({f['deviation']:.1%} off)" if "deviation" in f else ""
        print(f"  {f['path']}: baseline={f['baseline']} "
              f"candidate={f['candidate']}{dev}")
    if len(failures) > 20:
        print(f"  ... and {len(failures) - 20} more")
    print("intended? regenerate the baseline and commit with [bench-reset]")
    sys.exit(1)

print(f"bench gate: OK — {checked} deterministic values within {tol:.0%}")
PYEOF
