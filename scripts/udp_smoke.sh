#!/usr/bin/env bash
# Two-OS-process UDP smoke test.
#
# Starts two `horus_info node` processes on 127.0.0.1, each one member
# of a TOTAL:MBRSHIP:FRAG:NAK:COM group over real UDP sockets. Each
# node casts CASTS messages and reports its final view, its delivery
# sequence, local invariant verdicts and transport stats as JSON. The
# cross-check below then asserts the distributed properties a single
# process cannot see: both processes agree on the final view, each
# delivered every cast (2*CASTS), and the delivery sequences are
# byte-identical — the total order held across the kernel boundary.
#
# Environment:
#   UDP_SMOKE_DIR    artifact directory (default udp-smoke-artifacts)
#   UDP_SMOKE_CASTS  casts per node      (default 1000)
#   UDP_SMOKE_PORT0/1  UDP ports         (default 7601/7602)

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${UDP_SMOKE_DIR:-udp-smoke-artifacts}"
CASTS="${UDP_SMOKE_CASTS:-1000}"
PORT0="${UDP_SMOKE_PORT0:-7601}"
PORT1="${UDP_SMOKE_PORT1:-7602}"
PEERS="0=127.0.0.1:${PORT0},1=127.0.0.1:${PORT1}"
mkdir -p "$OUT"

dune build bin/horus_info.exe
BIN=_build/default/bin/horus_info.exe

echo "udp_smoke: peers $PEERS, $CASTS casts per node"

RC0=0
RC1=0
"$BIN" node --rank 0 --peers "$PEERS" --casts "$CASTS" --timeout 120 \
  >"$OUT/node0.json" 2>"$OUT/node0.log" &
PID0=$!
# Deliberately staggered: rank 1's join must cope with rank 0 already
# being up for a while (MBRSHIP's merge retries absorb the other order).
sleep 1
"$BIN" node --rank 1 --peers "$PEERS" --casts "$CASTS" --timeout 120 \
  >"$OUT/node1.json" 2>"$OUT/node1.log" || RC1=$?
wait "$PID0" || RC0=$?

echo "udp_smoke: node exits rank0=$RC0 rank1=$RC1"

python3 - "$OUT" "$CASTS" <<'EOF'
import json, sys

out, casts = sys.argv[1], int(sys.argv[2])
a = json.load(open(f"{out}/node0.json"))
b = json.load(open(f"{out}/node1.json"))
expect = 2 * casts
failures = []

for d in (a, b):
    r = d["rank"]
    if not d["formed"]:
        failures.append(f"rank {r}: group never formed")
    if not d["complete"]:
        failures.append(f"rank {r}: incomplete ({d['delivered']}/{expect})")
    if d["delivered"] < expect:
        failures.append(f"rank {r}: delivered {d['delivered']} < {expect}")
    if d["violations"]:
        failures.append(f"rank {r}: local invariant violations: {d['violations']}")
    if d["transport"]["bad_frame"]:
        failures.append(f"rank {r}: {d['transport']['bad_frame']} bad frames")

if a["final_view"] != b["final_view"]:
    failures.append(f"view disagreement: {a['final_view']} vs {b['final_view']}")
elif a["final_view"] is None or sorted(a["final_view"]["members"]) != [0, 1]:
    failures.append(f"final view is not {{0,1}}: {a['final_view']}")

if a["casts"] != b["casts"]:
    diverge = next(
        (i for i, (x, y) in enumerate(zip(a["casts"], b["casts"])) if x != y),
        min(len(a["casts"]), len(b["casts"])),
    )
    failures.append(f"total order broken: sequences diverge at index {diverge}")

if failures:
    print("udp_smoke: FAIL")
    for f in failures:
        print("  -", f)
    sys.exit(1)

print(
    f"udp_smoke: OK — both processes installed view {a['final_view']}, "
    f"each delivered {a['delivered']} casts in the same total order, "
    f"0 invariant violations, 0 bad frames"
)
EOF

exit $((RC0 + RC1))
