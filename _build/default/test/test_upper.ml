(* Tests for the layers above membership: TOTAL ordering, causal
   ordering, stability (STABLE and PINWHEEL), safe delivery, and
   automatic merging. *)

open Horus

let vs_stack = "MBRSHIP:FRAG:NAK:COM"
let total_stack = "TOTAL:" ^ vs_stack

let spawn ?(spec = total_stack) ?(n = 3) ?(settle = 2.0) world =
  let g = World.fresh_group_addr world in
  let founder = Group.join (Endpoint.create world ~spec) g in
  World.run_for world ~duration:0.2;
  let rest =
    List.init (n - 1) (fun _ ->
        let m = Group.join ~contact:(Group.addr founder) (Endpoint.create world ~spec) g in
        World.run_for world ~duration:0.5;
        m)
  in
  World.run_for world ~duration:settle;
  founder :: rest

(* --- TOTAL --- *)

let test_total_single_sender () =
  let world = World.create () in
  let groups = spawn world in
  let a = List.hd groups in
  let msgs = List.init 15 (Printf.sprintf "t%02d") in
  List.iter (Group.cast a) msgs;
  World.run_for world ~duration:2.0;
  List.iteri
    (fun i gr ->
       Alcotest.(check (list string)) (Printf.sprintf "member %d in order" i) msgs
         (Group.casts gr))
    groups

let test_total_concurrent_senders_agree () =
  (* Three members cast interleaved; every member must deliver the
     exact same global sequence. *)
  let world = World.create ~seed:5 () in
  let groups = spawn ~n:3 world in
  List.iteri
    (fun i gr ->
       for k = 0 to 9 do
         World.after world ~delay:(0.003 *. float_of_int k) (fun () ->
             Group.cast gr (Printf.sprintf "c%d-%d" i k))
       done)
    groups;
  World.run_for world ~duration:3.0;
  let sequences = List.map Group.casts groups in
  (match sequences with
   | first :: rest ->
     Alcotest.(check int) "all 30 delivered" 30 (List.length first);
     List.iteri
       (fun i s ->
          Alcotest.(check (list string)) (Printf.sprintf "member %d matches member 0" (i + 1))
            first s)
       rest
   | [] -> ());
  (* Per-origin FIFO embedded in the total order. *)
  List.iter
    (fun s ->
       for i = 0 to 2 do
         let mine = List.filter (fun p -> p.[1] = Char.chr (Char.code '0' + i)) s in
         Alcotest.(check (list string)) "origin subsequence ordered"
           (List.init 10 (Printf.sprintf "c%d-%d" i)) mine
       done)
    sequences

let test_total_with_jitter_agrees () =
  let config = { Horus_sim.Net.default_config with latency = 0.001; jitter = 0.004 } in
  let world = World.create ~config ~seed:9 () in
  let groups = spawn ~n:4 ~settle:3.0 world in
  List.iteri
    (fun i gr ->
       for k = 0 to 7 do
         World.after world ~delay:(0.002 *. float_of_int k) (fun () ->
             Group.cast gr (Printf.sprintf "j%d-%d" i k))
       done)
    groups;
  World.run_for world ~duration:4.0;
  match List.map Group.casts groups with
  | first :: rest ->
    Alcotest.(check int) "all delivered" 32 (List.length first);
    List.iteri
      (fun i s -> Alcotest.(check (list string)) (Printf.sprintf "member %d" (i + 1)) first s)
      rest
  | [] -> ()

let test_total_holder_crash () =
  (* Crash the founder (initial token holder) while others want to
     cast; the view change must hand the token to the lowest rank and
     traffic must continue, with survivors agreeing. *)
  let world = World.create ~seed:3 () in
  let groups = spawn ~n:3 ~settle:3.0 world in
  let a, b, c = match groups with [ a; b; c ] -> (a, b, c) | _ -> assert false in
  Group.cast a "pre";
  World.run_for world ~duration:1.0;
  Endpoint.crash (Group.endpoint a);
  World.after world ~delay:0.1 (fun () -> Group.cast b "post-b");
  World.after world ~delay:0.15 (fun () -> Group.cast c "post-c");
  World.run_for world ~duration:5.0;
  Alcotest.(check (list string)) "b sequence" (Group.casts b) (Group.casts c);
  Alcotest.(check bool) "pre delivered" true (List.mem "pre" (Group.casts b));
  Alcotest.(check bool) "post-b delivered" true (List.mem "post-b" (Group.casts b));
  Alcotest.(check bool) "post-c delivered" true (List.mem "post-c" (Group.casts b))

let test_total_under_loss () =
  let config = { Horus_sim.Net.default_config with drop_prob = 0.2 } in
  let world = World.create ~config ~seed:17 () in
  let groups = spawn ~n:3 ~settle:4.0 world in
  List.iteri (fun i gr -> Group.cast gr (Printf.sprintf "l%d" i)) groups;
  World.run_for world ~duration:10.0;
  match List.map Group.casts groups with
  | first :: rest ->
    Alcotest.(check int) "all three delivered" 3 (List.length first);
    List.iter (fun s -> Alcotest.(check (list string)) "identical order" first s) rest
  | [] -> ()

(* --- ORDER_CAUSAL --- *)

let test_causal_question_reply () =
  (* b replies causally after a's question; with network jitter the
     reply can physically overtake the question toward c, but the
     causal layer must never deliver it first. Swept over seeds. *)
  List.iter
    (fun seed ->
       let config = { Horus_sim.Net.default_config with latency = 0.002; jitter = 0.01 } in
       let world = World.create ~config ~seed () in
       let spec = "ORDER_CAUSAL:" ^ vs_stack in
       let groups = spawn ~spec ~n:3 ~settle:3.0 world in
       let a, b, c = match groups with [ a; b; c ] -> (a, b, c) | _ -> assert false in
       Group.set_on_up b (fun ev ->
           match ev with
           | Event.U_cast (_, m, _) when Msg.to_string m = "question" ->
             Group.cast b "reply"
           | _ -> ());
       Group.cast a "question";
       World.run_for world ~duration:3.0;
       let at_c = Group.casts c in
       Alcotest.(check (list string))
         (Printf.sprintf "seed %d: question before reply at c" seed)
         [ "question"; "reply" ] at_c)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_causal_fifo_preserved () =
  let world = World.create () in
  let spec = "ORDER_CAUSAL:" ^ vs_stack in
  let groups = spawn ~spec ~n:3 world in
  let a = List.hd groups in
  let msgs = List.init 10 (Printf.sprintf "f%d") in
  List.iter (Group.cast a) msgs;
  World.run_for world ~duration:2.0;
  List.iter
    (fun gr -> Alcotest.(check (list string)) "fifo kept" msgs (Group.casts gr))
    groups

(* --- STABLE / PINWHEEL --- *)

let matrix_min (s : Event.stability) origin =
  Array.fold_left Int.min max_int s.Event.acked.(origin)

let test_stable_receipt_stability () =
  let world = World.create () in
  let spec = "STABLE:" ^ vs_stack in
  let groups = spawn ~spec ~n:3 world in
  let a = List.hd groups in
  for _ = 1 to 5 do
    Group.cast a "payload"
  done;
  World.run_for world ~duration:2.0;
  (* a is rank 0; all three members must have acked its 5 casts. *)
  List.iteri
    (fun i gr ->
       match Group.stability gr with
       | Some s ->
         Alcotest.(check int) (Printf.sprintf "member %d sees origin 0 stable at 5" i) 5
           (matrix_min s 0)
       | None -> Alcotest.failf "member %d got no stability report" i)
    groups

let test_stable_ids_in_meta () =
  let world = World.create () in
  let spec = "STABLE:" ^ vs_stack in
  let groups = spawn ~spec ~n:2 world in
  let a, b = match groups with [ a; b ] -> (a, b) | _ -> assert false in
  Group.cast a "x";
  World.run_for world ~duration:1.0;
  match Group.deliveries b with
  | [ d ] ->
    Alcotest.(check bool) "stable_id present" true
      (Event.meta_find d.Group.meta "stable_id" <> None)
  | ds -> Alcotest.failf "expected 1 delivery, got %d" (List.length ds)

let test_stable_app_level_ack () =
  (* With auto_ack off, the matrix only advances when the application
     acks — the end-to-end semantics of Section 9. *)
  let world = World.create () in
  let spec = "STABLE(auto_ack=false):" ^ vs_stack in
  let groups = spawn ~spec ~n:2 world in
  let a, b = match groups with [ a; b ] -> (a, b) | _ -> assert false in
  Group.cast a "needs-processing";
  World.run_for world ~duration:1.0;
  (* b received but did not process: origin 0 cannot be stable. *)
  (match Group.stability a with
   | Some s -> Alcotest.(check int) "not stable before acks" 0 (matrix_min s 0)
   | None -> ());
  (* Both sides now process (ack) their copy. *)
  List.iter
    (fun gr ->
       match Group.deliveries gr with
       | [ d ] ->
         (match Event.meta_find d.Group.meta "stable_id" with
          | Some id -> Group.ack gr id
          | None -> Alcotest.fail "no stable_id")
       | _ -> Alcotest.fail "expected one delivery")
    [ a; b ];
  World.run_for world ~duration:1.0;
  match Group.stability a with
  | Some s -> Alcotest.(check int) "stable after acks" 1 (matrix_min s 0)
  | None -> Alcotest.fail "no stability report"

let test_pinwheel_converges () =
  let world = World.create () in
  let spec = "PINWHEEL:" ^ vs_stack in
  let groups = spawn ~spec ~n:3 world in
  let a = List.hd groups in
  for _ = 1 to 4 do
    Group.cast a "p"
  done;
  World.run_for world ~duration:3.0;
  List.iteri
    (fun i gr ->
       match Group.stability gr with
       | Some s ->
         Alcotest.(check int) (Printf.sprintf "member %d converged" i) 4 (matrix_min s 0)
       | None -> Alcotest.failf "member %d got no stability report" i)
    groups

let test_pinwheel_cheaper_than_stable () =
  (* The rotating aggregator must put fewer packets on the wire than
     all-to-all gossip for the same idle group. *)
  let wire spec =
    let world = World.create () in
    let _groups = spawn ~spec ~n:6 ~settle:2.0 world in
    let before = (Horus_sim.Net.stats (World.net world)).Horus_sim.Net.sent in
    World.run_for world ~duration:5.0;
    (Horus_sim.Net.stats (World.net world)).Horus_sim.Net.sent - before
  in
  (* Keep some acks flowing so STABLE keeps gossiping: fresh traffic. *)
  let stable_cost = wire ("STABLE(gossip_period=0.05):" ^ vs_stack) in
  let pinwheel_cost = wire ("PINWHEEL(period=0.05):" ^ vs_stack) in
  Alcotest.(check bool)
    (Printf.sprintf "pinwheel %d <= stable %d + slack" pinwheel_cost stable_cost)
    true
    (pinwheel_cost <= stable_cost * 2)

(* --- ORDER_SAFE --- *)

let test_safe_delivery_waits_for_stability () =
  let world = World.create () in
  let spec = "ORDER_SAFE:STABLE(auto_ack=false,gossip_period=0.05):" ^ vs_stack in
  let groups = spawn ~spec ~n:3 world in
  let a = List.hd groups in
  Group.cast a "careful";
  (* Before any gossip round completes, nothing may surface. *)
  World.run_for world ~duration:0.002;
  List.iteri
    (fun i gr ->
       Alcotest.(check (list string)) (Printf.sprintf "member %d: held initially" i) []
         (Group.casts gr))
    groups;
  World.run_for world ~duration:2.0;
  List.iteri
    (fun i gr ->
       Alcotest.(check (list string)) (Printf.sprintf "member %d: released when safe" i)
         [ "careful" ] (Group.casts gr))
    groups

let test_safe_delivery_view_change_releases () =
  let world = World.create () in
  let spec = "ORDER_SAFE:STABLE(auto_ack=false,gossip_period=0.05):" ^ vs_stack in
  let groups = spawn ~spec ~n:3 ~settle:3.0 world in
  let a, b, c = match groups with [ a; b; c ] -> (a, b, c) | _ -> assert false in
  Group.cast a "boundary";
  World.run_for world ~duration:0.01;
  (* Crash c before stability can be reached; the view change must
     release the held message at the survivors. *)
  Endpoint.crash (Group.endpoint c);
  World.run_for world ~duration:5.0;
  List.iter
    (fun gr ->
       Alcotest.(check (list string)) "released at view change" [ "boundary" ]
         (Group.casts gr))
    [ a; b ]

(* --- MERGE (automatic) --- *)

let test_merge_layer_auto_heals () =
  let world = World.create ~seed:41 () in
  let spec = "MERGE:" ^ vs_stack in
  let groups = spawn ~spec ~n:4 ~settle:3.0 world in
  let a, b, c, d = match groups with [ a; b; c; d ] -> (a, b, c, d) | _ -> assert false in
  let n gr = Addr.endpoint_id (Group.addr gr) in
  Horus_sim.Net.partition (World.net world) [ [ n a; n b ]; [ n c; n d ] ];
  World.run_for world ~duration:4.0;
  Alcotest.(check int) "side one split" 2
    (match Group.view a with Some v -> View.size v | None -> 0);
  Alcotest.(check int) "side two split" 2
    (match Group.view c with Some v -> View.size v | None -> 0);
  Horus_sim.Net.heal (World.net world);
  (* No explicit merge call: the MERGE layer must discover and heal. *)
  World.run_for world ~duration:6.0;
  let sizes =
    List.map (fun gr -> match Group.view gr with Some v -> View.size v | None -> 0) groups
  in
  Alcotest.(check (list int)) "all four reunited" [ 4; 4; 4; 4 ] sizes

let test_merge_layer_three_way () =
  (* Three singleton founders of the same group address converge
     without any contact being named. *)
  let world = World.create ~seed:43 () in
  let spec = "MERGE:" ^ vs_stack in
  let g = World.fresh_group_addr world in
  let members = List.init 3 (fun _ -> Group.join (Endpoint.create world ~spec) g) in
  World.run_for world ~duration:8.0;
  let sizes =
    List.map (fun gr -> match Group.view gr with Some v -> View.size v | None -> 0) members
  in
  Alcotest.(check (list int)) "all three converge" [ 3; 3; 3 ] sizes

(* --- the paper's full stack --- *)

let test_paper_stack_end_to_end () =
  (* TOTAL:MBRSHIP:FRAG:NAK:COM over a lossy, garbling network with a
     large message thrown in: the Section 7 stack earning its
     properties. *)
  let config = { Horus_sim.Net.default_config with drop_prob = 0.1; mtu = 1 lsl 16 } in
  let world = World.create ~config ~seed:29 () in
  let groups = spawn ~spec:"TOTAL:MBRSHIP:FRAG(frag_size=512):NAK:COM" ~n:3 ~settle:4.0 world in
  let a = List.hd groups in
  let big = String.init 5000 (fun i -> Char.chr (32 + (i mod 95))) in
  Group.cast a big;
  List.iteri (fun i gr -> Group.cast gr (Printf.sprintf "small-%d" i)) groups;
  World.run_for world ~duration:10.0;
  match List.map Group.casts groups with
  | first :: rest ->
    Alcotest.(check int) "four messages" 4 (List.length first);
    Alcotest.(check bool) "big reassembled" true (List.mem big first);
    List.iter
      (fun s -> Alcotest.(check (list string)) "identical total order" first s)
      rest
  | [] -> ()

let () =
  Alcotest.run "upper"
    [ ( "total",
        [ Alcotest.test_case "single sender" `Quick test_total_single_sender;
          Alcotest.test_case "concurrent senders agree" `Quick
            test_total_concurrent_senders_agree;
          Alcotest.test_case "jitter agreement" `Quick test_total_with_jitter_agrees;
          Alcotest.test_case "holder crash" `Quick test_total_holder_crash;
          Alcotest.test_case "under loss" `Quick test_total_under_loss ] );
      ( "causal",
        [ Alcotest.test_case "question before reply" `Quick test_causal_question_reply;
          Alcotest.test_case "fifo preserved" `Quick test_causal_fifo_preserved ] );
      ( "stability",
        [ Alcotest.test_case "receipt stability" `Quick test_stable_receipt_stability;
          Alcotest.test_case "ids in meta" `Quick test_stable_ids_in_meta;
          Alcotest.test_case "app-level acks" `Quick test_stable_app_level_ack;
          Alcotest.test_case "pinwheel converges" `Quick test_pinwheel_converges;
          Alcotest.test_case "pinwheel economics" `Quick test_pinwheel_cheaper_than_stable ] );
      ( "safe",
        [ Alcotest.test_case "waits for stability" `Quick test_safe_delivery_waits_for_stability;
          Alcotest.test_case "view change releases" `Quick
            test_safe_delivery_view_change_releases ] );
      ( "auto-merge",
        [ Alcotest.test_case "heals partition" `Quick test_merge_layer_auto_heals;
          Alcotest.test_case "three-way convergence" `Quick test_merge_layer_three_way ] );
      ( "paper stack",
        [ Alcotest.test_case "end to end" `Quick test_paper_stack_end_to_end ] ) ]
