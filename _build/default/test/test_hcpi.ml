(* HCPI coverage (Tables 1 and 2): one composite scenario must exercise
   every downcall of Table 1 and provoke every upcall of Table 2 at
   least once. This is the executable form of the paper's interface
   tables. *)

open Horus

let seen : (string, unit) Hashtbl.t = Hashtbl.create 32

let observe prefix name = Hashtbl.replace seen (prefix ^ name) ()

let watch_all gr =
  Group.set_on_up gr (fun ev -> observe "up:" (Event.up_name ev))

(* Downcalls are observed at the moment we issue them. *)
let dn name = observe "down:" name

let test_coverage () =
  Hashtbl.reset seen;
  let spec = "ORDER_SAFE:STABLE:MBRSHIP:FRAG:NAK:COM" in
  let config = { Horus_sim.Net.default_config with drop_prob = 0.0 } in
  let world = World.create ~config ~seed:1 () in
  let g = World.fresh_group_addr world in

  (* join (founder + contact forms) *)
  let a = Group.join ~auto_flush_ok:false (Endpoint.create world ~spec) g in
  watch_all a;
  dn "join";
  World.run_for world ~duration:0.3;
  let b = Group.join ~auto_flush_ok:false (Endpoint.create world ~spec) g in
  watch_all b;
  (* manual flush cooperation so the flush_ok downcall is ours *)
  List.iter
    (fun gr ->
       Group.set_on_up gr (fun ev ->
           observe "up:" (Event.up_name ev);
           match ev with
           | Event.U_flush _ ->
             dn "flush_ok";
             Group.flush_ok gr
           | _ -> ()))
    [ a; b ];
  (* merge (b's join is a merge; also exercise the explicit downcall) *)
  Group.merge b (Group.addr a);
  dn "merge";
  World.run_for world ~duration:2.0;

  (* cast / send / ack / stable *)
  Group.cast a "hello";
  dn "cast";
  Group.send a [ Group.addr b ] "direct";
  dn "send";
  World.run_for world ~duration:1.0;
  (match
     List.find_map (fun d -> Event.meta_find d.Group.meta "stable_id") (Group.deliveries b)
   with
   | Some id ->
     Group.ack b id;
     dn "ack";
     Group.mark_stable b id;
     dn "stable"
   | None -> ());
  World.run_for world ~duration:1.0;

  (* suspect + flush via external failure detector path; c joins with
     auto_merge disabled at a to provoke MERGE_REQUEST / denial. *)
  let spec_manual = "MBRSHIP(auto_merge=false):FRAG:NAK:COM" in
  let g2 = World.fresh_group_addr world in
  let m1 = Group.join (Endpoint.create world ~spec:spec_manual) g2 in
  watch_all m1;
  World.run_for world ~duration:0.2;
  Group.set_on_up m1 (fun ev ->
      observe "up:" (Event.up_name ev);
      match ev with
      | Event.U_merge_request req ->
        Group.merge_denied m1 req;
        dn "merge_denied"
      | _ -> ());
  let m2 = Group.join ~contact:(Group.addr m1) (Endpoint.create world ~spec:spec_manual) g2 in
  watch_all m2;
  World.run_for world ~duration:2.0;
  (* now allow it, to exercise merge_granted; the denied requester
     stopped retrying, so it must ask again *)
  Group.set_on_up m1 (fun ev ->
      observe "up:" (Event.up_name ev);
      match ev with
      | Event.U_merge_request req ->
        Group.merge_granted m1 req;
        dn "merge_granted"
      | _ -> ());
  Group.merge m2 (Group.addr m1);
  World.run_for world ~duration:3.0;

  (* view downcall (membershipless dest-set install) *)
  let g3 = World.fresh_group_addr world in
  let p = Group.join (Endpoint.create world ~spec:"NAK:COM") g3 in
  watch_all p;
  let q = Group.join ~contact:(Group.addr p) (Endpoint.create world ~spec:"NAK:COM") g3 in
  watch_all q;
  let v =
    View.create ~group:g3 ~ltime:0
      ~members:(List.sort Addr.compare_endpoint [ Group.addr p; Group.addr q ])
  in
  Group.install_view p v;
  Group.install_view q v;
  dn "view";
  World.run_for world ~duration:0.2;

  (* LOST_MESSAGE: force a placeholder by asking NAK for a message it
     has long since garbage-collected. We emulate by sending a cast,
     then a gap via direct injection is hard; instead crash q's peer
     after heavy traffic with loss so a placeholder can occur — the
     simplest reliable trigger is a NAK for a GC'd buffer, exercised in
     test_layers; here we accept LOST_MESSAGE as optional and record it
     if it occurs. *)
  Group.suspect a [];
  dn "suspect";

  (* problem upcall: crash b and let a's failure detector notice *)
  Endpoint.crash (Group.endpoint b);
  World.run_for world ~duration:2.0;

  (* leave + exit *)
  Group.leave m2;
  dn "leave";
  World.run_for world ~duration:2.0;

  (* dump / focus *)
  ignore (Group.dump a);
  dn "dump";

  (* destroy *)
  Group.destroy p;
  dn "destroy";
  World.run_for world ~duration:0.5;

  (* SYSTEM_ERROR: a membership downcall over a membershipless stack
     (q's NAK:COM stack is still alive; p's was destroyed). *)
  Group.merge q (Group.addr q);
  World.run_for world ~duration:0.1;

  (* endpoint creation was exercised throughout *)
  dn "endpoint";

  (* --- assertions --- *)
  let expect_down =
    [ "endpoint"; "join"; "merge"; "merge_denied"; "merge_granted"; "view"; "cast"; "send";
      "ack"; "stable"; "leave"; "flush_ok"; "destroy"; "dump"; "suspect" ]
  in
  List.iter
    (fun name ->
       Alcotest.(check bool) ("downcall exercised: " ^ name) true
         (Hashtbl.mem seen ("down:" ^ name)))
    expect_down;
  let expect_up =
    [ "VIEW"; "CAST"; "SEND"; "MERGE_REQUEST"; "MERGE_DENIED"; "FLUSH"; "STABLE"; "PROBLEM";
      "EXIT"; "DESTROY"; "SYSTEM_ERROR" ]
  in
  List.iter
    (fun name ->
       Alcotest.(check bool) ("upcall observed: " ^ name) true
         (Hashtbl.mem seen ("up:" ^ name)))
    expect_up

(* FLUSH_OK and LEAVE upcalls surface at the flush coordinator; LOST_MESSAGE
   needs a GC'd retransmission buffer. Exercise them in focused
   scenarios. *)

let test_flush_ok_and_leave_upcalls () =
  let spec = "MBRSHIP:FRAG:NAK:COM" in
  let world = World.create ~seed:3 () in
  let g = World.fresh_group_addr world in
  let a = Group.join (Endpoint.create world ~spec) g in
  World.run_for world ~duration:0.3;
  let b = Group.join ~contact:(Group.addr a) (Endpoint.create world ~spec) g in
  World.run_for world ~duration:1.5;
  let saw_flush_ok = ref false and saw_leave = ref false in
  Group.set_on_up a (fun ev ->
      match ev with
      | Event.U_flush_ok _ -> saw_flush_ok := true
      | Event.U_leave _ -> saw_leave := true
      | _ -> ());
  Group.leave b;
  World.run_for world ~duration:2.0;
  Alcotest.(check bool) "FLUSH_OK observed at coordinator" true !saw_flush_ok;
  Alcotest.(check bool) "LEAVE observed" true !saw_leave

let test_lost_message_upcall () =
  (* NAK must repair a dropped first message through its negative-ack
     machinery without any spurious LOST_MESSAGE (the placeholder path
     proper fires only once buffers are garbage collected, which needs
     stability; the repair path is what matters here). *)
  let world = World.create ~seed:5 () in
  let g = World.fresh_group_addr world in
  let spec = "NAK(status_period=0.02):COM" in
  let a = Group.join (Endpoint.create world ~spec) g in
  let b = Group.join ~contact:(Group.addr a) (Endpoint.create world ~spec) g in
  let v =
    View.create ~group:g ~ltime:0
      ~members:(List.sort Addr.compare_endpoint [ Group.addr a; Group.addr b ])
  in
  Group.install_view a v;
  Group.install_view b v;
  let lost = ref 0 in
  Group.set_on_up b (fun ev ->
      match ev with Event.U_lost_message _ -> incr lost | _ -> ());
  (* Drop the first cast on the wire via a momentary partition; the
     next cast reveals the gap and b's NAK recovers it from a's
     buffer. *)
  Horus_sim.Net.partition (World.net world)
    [ [ Addr.endpoint_id (Group.addr a) ]; [ Addr.endpoint_id (Group.addr b) ] ];
  Group.cast a "lost-on-the-wire";
  World.run_for world ~duration:0.01;
  Horus_sim.Net.heal (World.net world);
  (* a's epoch is unchanged; its buffer still holds seq 0, so b
     recovers it — LOST_MESSAGE must NOT fire spuriously. *)
  Group.cast a "second";
  World.run_for world ~duration:2.0;
  Alcotest.(check (list string)) "gap repaired, order kept" [ "lost-on-the-wire"; "second" ]
    (Group.casts b);
  Alcotest.(check int) "no spurious loss" 0 !lost

let () =
  Alcotest.run "hcpi"
    [ ( "coverage",
        [ Alcotest.test_case "tables 1 and 2" `Quick test_coverage;
          Alcotest.test_case "FLUSH_OK and LEAVE upcalls" `Quick
            test_flush_ok_and_leave_upcalls;
          Alcotest.test_case "loss recovery without spurious LOST_MESSAGE" `Quick
            test_lost_message_upcall ] ) ]
