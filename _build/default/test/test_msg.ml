(* Tests for addresses, the message object, wire codecs, and compacted
   headers. *)

open Horus_msg

(* --- Addr --- *)

let test_addr_basics () =
  let a = Addr.endpoint 3 and b = Addr.endpoint 5 in
  Alcotest.(check bool) "equal self" true (Addr.equal_endpoint a a);
  Alcotest.(check bool) "distinct" false (Addr.equal_endpoint a b);
  Alcotest.(check bool) "age order" true (Addr.compare_endpoint a b < 0);
  Alcotest.(check int) "id" 3 (Addr.endpoint_id a)

let test_addr_negative_rejected () =
  Alcotest.(check bool) "negative endpoint" true
    (try ignore (Addr.endpoint (-1)); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative group" true
    (try ignore (Addr.group (-1)); false with Invalid_argument _ -> true)

(* --- Msg push/pop --- *)

let test_msg_payload_roundtrip () =
  let m = Msg.create "hello" in
  Alcotest.(check string) "payload" "hello" (Msg.to_string m);
  Alcotest.(check int) "length" 5 (Msg.length m)

let test_msg_header_stack_order () =
  (* Headers pop in reverse push order, like a stack (Section 3). *)
  let m = Msg.create "data" in
  Msg.push_u8 m 1;
  Msg.push_u8 m 2;
  Msg.push_u8 m 3;
  Alcotest.(check int) "top" 3 (Msg.pop_u8 m);
  Alcotest.(check int) "middle" 2 (Msg.pop_u8 m);
  Alcotest.(check int) "bottom" 1 (Msg.pop_u8 m);
  Alcotest.(check string) "payload intact" "data" (Msg.to_string m)

let test_msg_typed_fields () =
  let m = Msg.create "" in
  Msg.push_i64 m (-123456789012345L);
  Msg.push_u32 m 0xDEADBE;
  Msg.push_u16 m 65535;
  Msg.push_u8 m 200;
  Msg.push_bool m true;
  Msg.push_string m "str";
  Alcotest.(check string) "string" "str" (Msg.pop_string m);
  Alcotest.(check bool) "bool" true (Msg.pop_bool m);
  Alcotest.(check int) "u8" 200 (Msg.pop_u8 m);
  Alcotest.(check int) "u16" 65535 (Msg.pop_u16 m);
  Alcotest.(check int) "u32" 0xDEADBE (Msg.pop_u32 m);
  Alcotest.(check int64) "i64" (-123456789012345L) (Msg.pop_i64 m)

let test_msg_headroom_growth () =
  (* Push far more than the initial headroom. *)
  let m = Msg.create ~headroom:2 "x" in
  for i = 0 to 99 do
    Msg.push_u32 m i
  done;
  for i = 99 downto 0 do
    Alcotest.(check int) "value" i (Msg.pop_u32 m)
  done;
  Alcotest.(check string) "payload" "x" (Msg.to_string m)

let test_msg_truncated_pop () =
  let m = Msg.create "ab" in
  Alcotest.(check bool) "truncated u32" true
    (try ignore (Msg.pop_u32 m); false with Msg.Truncated _ -> true)

let test_msg_copy_independent () =
  let m = Msg.create "payload" in
  Msg.push_u8 m 7;
  let c = Msg.copy m in
  ignore (Msg.pop_u8 c);
  Alcotest.(check int) "original keeps header" 8 (Msg.length m);
  Alcotest.(check int) "copy popped" 7 (Msg.length c)

let test_msg_split_and_append () =
  let m = Msg.create "0123456789" in
  let tail = Msg.split_off m 4 in
  Alcotest.(check string) "head" "012345" (Msg.to_string m);
  Alcotest.(check string) "tail" "6789" (Msg.to_string tail);
  Msg.append m (Msg.to_bytes tail);
  Alcotest.(check string) "rejoined" "0123456789" (Msg.to_string m)

let test_msg_take_front () =
  let m = Msg.create "abcdef" in
  let front = Msg.take_front m 2 in
  Alcotest.(check string) "front" "ab" (Bytes.to_string front);
  Alcotest.(check string) "rest" "cdef" (Msg.to_string m)

let test_msg_of_bytes_pushable () =
  (* A received message must still accept pushes (retransmission). *)
  let m = Msg.of_bytes (Bytes.of_string "recv") in
  Msg.push_u16 m 42;
  Alcotest.(check int) "pushed onto received" 42 (Msg.pop_u16 m);
  Alcotest.(check string) "payload" "recv" (Msg.to_string m)

let prop_msg_u32_roundtrip =
  QCheck.Test.make ~name:"u32 push/pop roundtrip" ~count:500
    QCheck.(int_bound 0xFFFFFFF)
    (fun v ->
       let m = Msg.create "p" in
       Msg.push_u32 m v;
       Msg.pop_u32 m = v && Msg.to_string m = "p")

let prop_msg_string_roundtrip =
  QCheck.Test.make ~name:"string push/pop roundtrip" ~count:500
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s ->
       let m = Msg.create "payload" in
       Msg.push_string m s;
       Msg.pop_string m = s)

let prop_msg_mixed_stack =
  QCheck.Test.make ~name:"mixed header stack roundtrip" ~count:300
    QCheck.(list (pair (int_bound 2) (int_bound 0xFFFF)))
    (fun fields ->
       let m = Msg.create "body" in
       List.iter
         (fun (kind, v) ->
            match kind with
            | 0 -> Msg.push_u8 m (v land 0xFF)
            | 1 -> Msg.push_u16 m v
            | _ -> Msg.push_u32 m v)
         fields;
       let ok = ref true in
       List.iter
         (fun (kind, v) ->
            let got =
              match kind with
              | 0 -> Msg.pop_u8 m
              | 1 -> Msg.pop_u16 m
              | _ -> Msg.pop_u32 m
            in
            let want = if kind = 0 then v land 0xFF else v in
            if got <> want then ok := false)
         (List.rev fields);
       !ok && Msg.to_string m = "body")

(* --- Wire --- *)

let test_wire_endpoint_roundtrip () =
  let m = Msg.create "" in
  Wire.push_endpoint m (Addr.endpoint 77);
  Alcotest.(check int) "endpoint" 77 (Addr.endpoint_id (Wire.pop_endpoint m))

let test_wire_list_roundtrip () =
  let l = List.map Addr.endpoint [ 1; 5; 3; 9 ] in
  let m = Msg.create "" in
  Wire.push_endpoint_list m l;
  let got = Wire.pop_endpoint_list m in
  Alcotest.(check (list int)) "order preserved" [ 1; 5; 3; 9 ] (List.map Addr.endpoint_id got)

let test_wire_empty_list () =
  let m = Msg.create "" in
  Wire.push_endpoint_list m [];
  Alcotest.(check int) "empty" 0 (List.length (Wire.pop_endpoint_list m))

let prop_wire_int_list =
  QCheck.Test.make ~name:"int list roundtrip" ~count:300
    QCheck.(list_of_size Gen.(0 -- 50) (int_bound 0xFFFFFF))
    (fun l ->
       let m = Msg.create "" in
       Wire.push_int_list m l;
       Wire.pop_int_list m = l)

(* --- Compact --- *)

let test_compact_layout_sizes () =
  let fields =
    [ Compact.field ~layer:"FRAG" ~name:"more" ~bits:1;
      Compact.field ~layer:"NAK" ~name:"seq" ~bits:20;
      Compact.field ~layer:"COM" ~name:"src" ~bits:16 ]
  in
  let l = Compact.layout fields in
  Alcotest.(check int) "total bits" 37 (Compact.total_bits l);
  Alcotest.(check int) "total bytes" 5 (Compact.total_bytes l);
  (* The conventional scheme word-aligns each header: 4 + 4 + 4. *)
  Alcotest.(check int) "padded bytes" 12 (Compact.padded_bytes fields)

let test_compact_write_read () =
  let fields =
    [ Compact.field ~layer:"A" ~name:"x" ~bits:1;
      Compact.field ~layer:"B" ~name:"y" ~bits:13;
      Compact.field ~layer:"C" ~name:"z" ~bits:33 ]
  in
  let l = Compact.layout fields in
  let buf = Compact.alloc l in
  Compact.set l buf ~slot:0 1L;
  Compact.set l buf ~slot:1 5000L;
  Compact.set l buf ~slot:2 0x1_FFFF_FFFFL;
  Alcotest.(check int64) "x" 1L (Compact.get l buf ~slot:0);
  Alcotest.(check int64) "y" 5000L (Compact.get l buf ~slot:1);
  Alcotest.(check int64) "z" 0x1_FFFF_FFFFL (Compact.get l buf ~slot:2)

let test_compact_find () =
  let fields = [ Compact.field ~layer:"NAK" ~name:"seq" ~bits:16 ] in
  let l = Compact.layout fields in
  Alcotest.(check int) "found" 0 (Compact.find l ~layer:"NAK" ~name:"seq");
  Alcotest.(check bool) "missing raises" true
    (try ignore (Compact.find l ~layer:"X" ~name:"y"); false with Invalid_argument _ -> true)

let test_compact_duplicate_rejected () =
  let f = Compact.field ~layer:"A" ~name:"x" ~bits:4 in
  Alcotest.(check bool) "duplicate" true
    (try ignore (Compact.layout [ f; f ]); false with Invalid_argument _ -> true)

let test_compact_neighbours_unclobbered () =
  let fields =
    [ Compact.field ~layer:"A" ~name:"a" ~bits:3;
      Compact.field ~layer:"B" ~name:"b" ~bits:5;
      Compact.field ~layer:"C" ~name:"c" ~bits:3 ]
  in
  let l = Compact.layout fields in
  let buf = Compact.alloc l in
  Compact.set l buf ~slot:0 7L;
  Compact.set l buf ~slot:2 5L;
  Compact.set l buf ~slot:1 0L;
  Compact.set l buf ~slot:1 31L;
  Alcotest.(check int64) "a survives" 7L (Compact.get l buf ~slot:0);
  Alcotest.(check int64) "c survives" 5L (Compact.get l buf ~slot:2);
  Alcotest.(check int64) "b set" 31L (Compact.get l buf ~slot:1)

let prop_compact_roundtrip =
  QCheck.Test.make ~name:"compact write/read roundtrip" ~count:300
    QCheck.(list_of_size Gen.(1 -- 10) (pair (int_range 1 48) (int_bound max_int)))
    (fun specs ->
       let fields =
         List.mapi (fun i (bits, _) -> Compact.field ~layer:"L" ~name:(string_of_int i) ~bits) specs
       in
       let l = Compact.layout fields in
       let buf = Compact.alloc l in
       let values =
         List.mapi
           (fun i (bits, v) ->
              let mask = Int64.sub (Int64.shift_left 1L bits) 1L in
              let v64 = Int64.logand (Int64.of_int v) mask in
              Compact.set l buf ~slot:i v64;
              v64)
           specs
       in
       List.for_all2 (fun i v -> Compact.get l buf ~slot:i = v)
         (List.init (List.length values) (fun i -> i))
         values)

let () =
  Alcotest.run "msg"
    [ ( "addr",
        [ Alcotest.test_case "basics" `Quick test_addr_basics;
          Alcotest.test_case "negative rejected" `Quick test_addr_negative_rejected ] );
      ( "msg",
        [ Alcotest.test_case "payload roundtrip" `Quick test_msg_payload_roundtrip;
          Alcotest.test_case "header stack order" `Quick test_msg_header_stack_order;
          Alcotest.test_case "typed fields" `Quick test_msg_typed_fields;
          Alcotest.test_case "headroom growth" `Quick test_msg_headroom_growth;
          Alcotest.test_case "truncated pop" `Quick test_msg_truncated_pop;
          Alcotest.test_case "copy independent" `Quick test_msg_copy_independent;
          Alcotest.test_case "split and append" `Quick test_msg_split_and_append;
          Alcotest.test_case "take front" `Quick test_msg_take_front;
          Alcotest.test_case "received messages pushable" `Quick test_msg_of_bytes_pushable;
          QCheck_alcotest.to_alcotest prop_msg_u32_roundtrip;
          QCheck_alcotest.to_alcotest prop_msg_string_roundtrip;
          QCheck_alcotest.to_alcotest prop_msg_mixed_stack ] );
      ( "wire",
        [ Alcotest.test_case "endpoint roundtrip" `Quick test_wire_endpoint_roundtrip;
          Alcotest.test_case "list roundtrip" `Quick test_wire_list_roundtrip;
          Alcotest.test_case "empty list" `Quick test_wire_empty_list;
          QCheck_alcotest.to_alcotest prop_wire_int_list ] );
      ( "compact",
        [ Alcotest.test_case "layout sizes" `Quick test_compact_layout_sizes;
          Alcotest.test_case "write read" `Quick test_compact_write_read;
          Alcotest.test_case "find" `Quick test_compact_find;
          Alcotest.test_case "duplicate rejected" `Quick test_compact_duplicate_rejected;
          Alcotest.test_case "neighbours unclobbered" `Quick test_compact_neighbours_unclobbered;
          QCheck_alcotest.to_alcotest prop_compact_roundtrip ] ) ]
