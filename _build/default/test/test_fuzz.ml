(* Randomized protocol fuzzing: many random schedules of traffic and
   failures, with the virtual synchrony invariants asserted after each.
   This complements the exhaustive (but tiny) model checker in
   lib/model with large randomized instances against the production
   stack. Every scenario is deterministic in its seed, so a failure
   here is a reproducible counterexample. *)

open Horus

let spec = "MBRSHIP:FRAG:NAK:COM"

type obs = {
  mutable o_casts : (string * int) list;  (* payload, epoch at delivery; newest first *)
  mutable o_views : ((int * int) * int list) list;  (* (ltime, coord), members *)
}

let observe gr =
  let o = { o_casts = []; o_views = [] } in
  Group.set_on_up gr (fun ev ->
      match ev with
      | Event.U_cast (_, m, _) ->
        let epoch = match Group.view gr with Some v -> View.ltime v | None -> -1 in
        o.o_casts <- (Msg.to_string m, epoch) :: o.o_casts
      | Event.U_view v ->
        o.o_views <-
          ( (View.ltime v, Addr.endpoint_id (View.coordinator v)),
            List.map Addr.endpoint_id (View.members v) )
          :: o.o_views
      | _ -> ());
  o

(* One random crash-and-traffic scenario; returns what every member saw.
   The network itself is randomized too: loss, jitter and duplication
   within the ranges the reliability layers are specified to mask. *)
let run_crash_scenario ~seed =
  let prng = Horus_util.Prng.create (seed * 7919) in
  let n = 3 + Horus_util.Prng.int prng 3 in  (* 3..5 members *)
  let config =
    { Horus_sim.Net.default_config with
      drop_prob = Horus_util.Prng.float prng 0.15;
      jitter = Horus_util.Prng.float prng 0.002;
      duplicate_prob = Horus_util.Prng.float prng 0.1 }
  in
  let world = World.create ~config ~seed () in
  let g = World.fresh_group_addr world in
  let founder = Group.join (Endpoint.create world ~spec) g in
  World.run_for world ~duration:0.3;
  let rest =
    List.init (n - 1) (fun _ ->
        let m = Group.join ~contact:(Group.addr founder) (Endpoint.create world ~spec) g in
        World.run_for world ~duration:0.4;
        m)
  in
  let members = founder :: rest in
  World.run_for world ~duration:2.0;
  let observers = List.map observe members in
  (* Random traffic: every member casts a numbered stream. *)
  let casts_per_member = 5 + Horus_util.Prng.int prng 10 in
  List.iteri
    (fun i gr ->
       (* Random cast instants, but issued in stream order. *)
       let times =
         List.init casts_per_member (fun _ -> Horus_util.Prng.float prng 1.5)
         |> List.sort Float.compare
       in
       List.iteri
         (fun k at ->
            World.after world ~delay:at (fun () ->
                Group.cast gr (Printf.sprintf "o%d-%03d" i k)))
         times)
    members;
  (* 1..2 crashes among the younger members, at random times. *)
  let crash_count = 1 + Horus_util.Prng.int prng 2 in
  let crash_count = Int.min crash_count (n - 2) in
  let victims = List.filteri (fun i _ -> i >= n - crash_count) members in
  List.iter
    (fun v ->
       let at = Horus_util.Prng.float prng 1.5 in
       World.after world ~delay:at (fun () -> Endpoint.crash (Group.endpoint v)))
    victims;
  World.run_for world ~duration:15.0;
  let survivors = List.filteri (fun i _ -> i < n - crash_count) members in
  let survivor_obs = List.filteri (fun i _ -> i < n - crash_count) observers in
  (members, survivors, survivor_obs, casts_per_member, crash_count)

let check_view_id_consistency ~seed all_obs =
  (* Two members that installed a view with the same id agree on its
     membership. *)
  List.iteri
    (fun i o ->
       List.iter
         (fun (id, ms) ->
            List.iteri
              (fun j o' ->
                 match List.assoc_opt id o'.o_views with
                 | Some ms' ->
                   Alcotest.(check (list int))
                     (Printf.sprintf "seed %d: view (%d,%d) agrees between %d and %d" seed
                        (fst id) (snd id) i j)
                     ms ms'
                 | None -> ())
              all_obs)
         o.o_views)
    all_obs

let check_per_origin_fifo ~seed ~n obs =
  (* At every member, the deliveries from each origin form a gap-free
     in-order prefix of that origin's stream. *)
  List.iteri
    (fun who o ->
       for origin = 0 to n - 1 do
         let prefix = Printf.sprintf "o%d-" origin in
         let plen = String.length prefix in
         let seen =
           List.rev o.o_casts
           |> List.filter_map (fun (p, _) ->
               if String.length p > plen && String.sub p 0 plen = prefix then
                 int_of_string_opt (String.sub p plen (String.length p - plen))
               else None)
         in
         Alcotest.(check (list int))
           (Printf.sprintf "seed %d: member %d sees origin %d gap-free, in order" seed who
              origin)
           (List.init (List.length seen) (fun i -> i))
           seen
       done)
    obs

let check_virtual_synchrony ~seed obs =
  (* Survivors must have delivered identical (payload, epoch) multisets:
     same messages, in the same views. *)
  match obs with
  | [] -> ()
  | first :: rest ->
    let canon o = List.sort compare o.o_casts in
    List.iteri
      (fun i o ->
         Alcotest.(check (list (pair string int)))
           (Printf.sprintf "seed %d: survivor %d matches survivor 0" seed (i + 1))
           (canon first) (canon o))
      rest

let check_final_agreement ~seed survivors =
  let finals =
    List.map
      (fun gr ->
         match Group.view gr with
         | Some v -> (View.ltime v, List.map Addr.endpoint_id (View.members v))
         | None -> (-1, []))
      survivors
  in
  match finals with
  | [] -> ()
  | f :: rest ->
    List.iter
      (fun f' ->
         Alcotest.(check (pair int (list int))) (Printf.sprintf "seed %d: final view" seed) f f')
      rest;
    Alcotest.(check int) (Printf.sprintf "seed %d: survivors all present" seed)
      (List.length survivors)
      (List.length (snd f))

let test_crash_fuzz seed () =
  let members, survivors, survivor_obs, casts_per_member, _crashes =
    run_crash_scenario ~seed
  in
  let n = List.length members in
  ignore casts_per_member;
  check_final_agreement ~seed survivors;
  check_view_id_consistency ~seed survivor_obs;
  check_per_origin_fifo ~seed ~n survivor_obs;
  check_virtual_synchrony ~seed survivor_obs;
  (* Survivor-origin streams must be complete at every survivor: a live
     member's casts are never lost. *)
  let surviving_indices = List.init (List.length survivors) (fun i -> i) in
  List.iteri
    (fun who o ->
       List.iter
         (fun origin ->
            let prefix = Printf.sprintf "o%d-" origin in
            let plen = String.length prefix in
            let got =
              List.filter
                (fun (p, _) -> String.length p > plen && String.sub p 0 plen = prefix)
                o.o_casts
            in
            Alcotest.(check int)
              (Printf.sprintf "seed %d: member %d has all of survivor %d's casts" seed who
                 origin)
              casts_per_member (List.length got))
         surviving_indices)
    survivor_obs

(* Partition scenarios: split, run traffic on both sides, heal and
   explicitly merge; then both sides' members must share one view and
   the usual invariants. *)
let test_partition_fuzz seed () =
  let prng = Horus_util.Prng.create (seed * 104729) in
  let n = 4 + Horus_util.Prng.int prng 2 in  (* 4..5 *)
  let world = World.create ~seed:(seed + 1000) () in
  let g = World.fresh_group_addr world in
  let founder = Group.join (Endpoint.create world ~spec:("MERGE:" ^ spec)) g in
  World.run_for world ~duration:0.3;
  let rest =
    List.init (n - 1) (fun _ ->
        let m =
          Group.join ~contact:(Group.addr founder) (Endpoint.create world ~spec:("MERGE:" ^ spec)) g
        in
        World.run_for world ~duration:0.4;
        m)
  in
  let members = founder :: rest in
  World.run_for world ~duration:2.0;
  let observers = List.map observe members in
  let split = 1 + Horus_util.Prng.int prng (n - 2) in
  let side_a = List.filteri (fun i _ -> i < split) members in
  let side_b = List.filteri (fun i _ -> i >= split) members in
  let nodes side = List.map (fun gr -> Addr.endpoint_id (Group.addr gr)) side in
  Horus_sim.Net.partition (World.net world) [ nodes side_a; nodes side_b ];
  (* Traffic on both sides during the partition. *)
  List.iteri
    (fun i gr ->
       for k = 0 to 4 do
         World.after world ~delay:(0.5 +. (0.1 *. float_of_int k)) (fun () ->
             Group.cast gr (Printf.sprintf "p%d-%d" i k))
       done)
    members;
  World.run_for world ~duration:4.0;
  Horus_sim.Net.heal (World.net world);
  World.run_for world ~duration:10.0;
  (* After healing, the MERGE layer must reunite everyone. *)
  let sizes =
    List.map (fun gr -> match Group.view gr with Some v -> View.size v | None -> 0) members
  in
  List.iter
    (fun s -> Alcotest.(check int) (Printf.sprintf "seed %d: reunited" seed) n s)
    sizes;
  check_view_id_consistency ~seed observers;
  check_per_origin_fifo ~seed ~n observers

(* Churn scenarios: joins and leaves interleaved with crashes and
   traffic — the full membership lifecycle under a random schedule. *)
let test_churn_fuzz seed () =
  let prng = Horus_util.Prng.create (seed * 31337) in
  (* At least 4 members: indices 0 and 1 cast (and never churn);
     index n-1 crashes and index n-2 leaves. *)
  let n = 4 + Horus_util.Prng.int prng 2 in
  let world = World.create ~seed:(seed + 5000) () in
  let g = World.fresh_group_addr world in
  let founder = Group.join (Endpoint.create world ~spec) g in
  World.run_for world ~duration:0.3;
  let rest =
    List.init (n - 1) (fun _ ->
        let m = Group.join ~contact:(Group.addr founder) (Endpoint.create world ~spec) g in
        World.run_for world ~duration:0.4;
        m)
  in
  let members = founder :: rest in
  World.run_for world ~duration:2.0;
  (* Traffic from the two oldest members (they never crash or leave). *)
  List.iteri
    (fun i gr ->
       let times =
         List.init 10 (fun _ -> Horus_util.Prng.float prng 2.0) |> List.sort Float.compare
       in
       List.iteri
         (fun k at ->
            World.after world ~delay:at (fun () ->
                Group.cast gr (Printf.sprintf "c%d-%03d" i k)))
         times)
    (List.filteri (fun i _ -> i < 2) members);
  (* Churn among the younger members: one crashes, one leaves, and a
     brand-new member joins, all at random instants. *)
  let victim = List.nth members (n - 1) in
  let leaver = List.nth members (n - 2) in
  World.after world ~delay:(Horus_util.Prng.float prng 2.0) (fun () ->
      Endpoint.crash (Group.endpoint victim));
  World.after world ~delay:(Horus_util.Prng.float prng 2.0) (fun () -> Group.leave leaver);
  let late = ref None in
  World.after world ~delay:(Horus_util.Prng.float prng 2.0) (fun () ->
      late := Some (Group.join ~contact:(Group.addr founder) (Endpoint.create world ~spec) g));
  World.run_for world ~duration:15.0;
  (* The stable core plus the late joiner share one final view. *)
  let core = List.filteri (fun i _ -> i < n - 2) members in
  let final_members = core @ (match !late with Some j -> [ j ] | None -> []) in
  (match final_members with
   | first :: others ->
     let fv gr =
       match Group.view gr with
       | Some v -> (View.ltime v, List.map Addr.endpoint_id (View.members v))
       | None -> (-1, [])
     in
     List.iter
       (fun gr ->
          Alcotest.(check (pair int (list int)))
            (Printf.sprintf "seed %d: final view agreed" seed)
            (fv first) (fv gr))
       others;
     Alcotest.(check int)
       (Printf.sprintf "seed %d: final membership size" seed)
       (List.length final_members)
       (List.length (snd (fv first)))
   | [] -> ());
  (* The stable core delivered both full streams, in order. *)
  List.iteri
    (fun who gr ->
       for origin = 0 to 1 do
         let prefix = Printf.sprintf "c%d-" origin in
         let plen = String.length prefix in
         let seen =
           List.filter
             (fun p -> String.length p > plen && String.sub p 0 plen = prefix)
             (Group.casts gr)
         in
         Alcotest.(check (list string))
           (Printf.sprintf "seed %d: core member %d has origin %d complete+ordered" seed who
              origin)
           (List.init 10 (fun i -> Printf.sprintf "c%d-%03d" origin i))
           seen
       done)
    core;
  (* The leaver exited; the joiner's deliveries are an in-order subset. *)
  Alcotest.(check bool) (Printf.sprintf "seed %d: leaver exited" seed) true
    (Group.exited leaver || Group.view leaver = None
     || (match Group.view leaver with Some v -> View.size v = 1 | None -> true))

let () =
  let crash_cases =
    List.map
      (fun seed ->
         Alcotest.test_case (Printf.sprintf "crash schedule %d" seed) `Slow
           (test_crash_fuzz seed))
      (List.init 80 (fun i -> i + 1))
  in
  let partition_cases =
    List.map
      (fun seed ->
         Alcotest.test_case (Printf.sprintf "partition schedule %d" seed) `Slow
           (test_partition_fuzz seed))
      (List.init 30 (fun i -> i + 1))
  in
  let churn_cases =
    List.map
      (fun seed ->
         Alcotest.test_case (Printf.sprintf "churn schedule %d" seed) `Slow
           (test_churn_fuzz seed))
      (List.init 25 (fun i -> i + 1))
  in
  Alcotest.run "fuzz"
    [ ("crashes", crash_cases); ("partitions", partition_cases); ("churn", churn_cases) ]
