(* Catalogue conformance: for every layer in Table 3, ask the synthesis
   engine for a minimal stack that can host it (over a bare {P1}
   network), then *instantiate and run* that stack in a live 3-member
   world: the group must form, a multicast must reach everyone, and —
   when the stack provides virtual synchrony — survive a crash.

   This bridges the paper's two halves: the property algebra (Section
   6) and the runtime (Sections 3-5). A row in Table 3 that could not
   actually run would fail here. *)

open Horus
module Layer_spec = Horus_props.Layer_spec
module Search = Horus_props.Search
module P = Horus_props.Property

let p1 = P.Set.of_numbers [ 1 ]

(* The stack that hosts [layer]: the layer itself on top of the
   cheapest provider of its requirements. *)
let hosting_stack (layer : Layer_spec.t) =
  match Search.search ~net:p1 ~required:layer.Layer_spec.requires () with
  | None -> None
  | Some r ->
    let names =
      layer.Layer_spec.name :: List.map (fun (s : Layer_spec.t) -> s.Layer_spec.name) r.Search.layers
    in
    Some (String.concat ":" names)

let has_membership spec_string =
  List.exists
    (fun n -> n = "MBRSHIP" || n = "BMS")
    (Spec.names (Spec.parse spec_string))

let provides_vs (layer : Layer_spec.t) spec_string =
  match
    Horus_props.Check.derive_names ~net:p1 (Spec.names (Spec.parse spec_string))
  with
  | Ok props -> P.Set.mem props P.P9_virtually_synchronous && ignore layer = ()
  | Error _ -> false

let run_conformance (layer : Layer_spec.t) () =
  match hosting_stack layer with
  | None -> Alcotest.failf "no hosting stack for %s" layer.Layer_spec.name
  | Some spec ->
    (* The synthesized stack must itself be well-formed. *)
    Alcotest.(check bool)
      (Printf.sprintf "%s is well-formed" spec)
      true
      (match Horus_props.Check.derive_names ~net:p1 (Spec.names (Spec.parse spec)) with
       | Ok _ -> true
       | Error _ -> false);
    let world = World.create ~seed:61 () in
    let g = World.fresh_group_addr world in
    let founder = Group.join (Endpoint.create world ~spec) g in
    World.run_for world ~duration:0.3;
    let rest =
      List.init 2 (fun _ ->
          let m = Group.join ~contact:(Group.addr founder) (Endpoint.create world ~spec) g in
          World.run_for world ~duration:0.5;
          m)
    in
    let members = founder :: rest in
    if not (has_membership spec) then begin
      (* No membership layer: install the destination sets by hand. *)
      let v =
        View.create ~group:g ~ltime:0
          ~members:(List.sort Addr.compare_endpoint (List.map Group.addr members))
      in
      List.iter (fun m -> Group.install_view m v) members
    end;
    World.run_for world ~duration:3.0;
    Group.cast founder "conformance";
    World.run_for world ~duration:3.0;
    List.iteri
      (fun i gr ->
         Alcotest.(check (list string))
           (Printf.sprintf "%s: member %d delivered" spec i)
           [ "conformance" ] (Group.casts gr))
      members;
    (* Stacks providing virtual synchrony must also survive a crash. *)
    if provides_vs layer spec then begin
      Endpoint.crash (Group.endpoint (List.nth members 2));
      World.run_for world ~duration:4.0;
      let survivors = [ founder; List.nth members 1 ] in
      List.iter
        (fun gr ->
           Alcotest.(check int)
             (Printf.sprintf "%s: reconfigured to 2" spec)
             2
             (match Group.view gr with Some v -> View.size v | None -> 0))
        survivors
    end

let () =
  let cases =
    List.map
      (fun (layer : Layer_spec.t) ->
         Alcotest.test_case
           (Printf.sprintf "%s in its synthesized stack" layer.Layer_spec.name)
           `Quick (run_conformance layer))
      Layer_spec.table3
  in
  Alcotest.run "conformance" [ ("table3", cases) ]
