test/test_conformance.ml: Addr Alcotest Endpoint Group Horus Horus_props List Printf Spec String View World
