test/test_upper.mli:
