test/test_com.ml: Addr Alcotest Endpoint Event Group Horus Horus_hcpi Horus_layers Horus_sim Horus_util List Msg Option Socket Spec String View World
