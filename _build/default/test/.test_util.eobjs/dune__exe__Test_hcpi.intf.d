test/test_hcpi.mli:
