test/test_model.ml: Alcotest Automaton Flush_model Horus_model List String Takeover_model Total_model
