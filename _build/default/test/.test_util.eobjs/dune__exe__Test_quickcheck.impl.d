test/test_quickcheck.ml: Alcotest Bytes Float Gen Horus_hcpi Horus_layers Horus_msg Horus_props Horus_sim Int List QCheck QCheck_alcotest String
