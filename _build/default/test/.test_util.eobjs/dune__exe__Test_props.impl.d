test/test_props.ml: Alcotest Check Gen Horus_props Layer_spec List Printf Property QCheck QCheck_alcotest Search
