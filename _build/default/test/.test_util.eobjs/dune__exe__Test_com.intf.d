test/test_com.mli:
