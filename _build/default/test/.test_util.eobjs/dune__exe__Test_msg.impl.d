test/test_msg.ml: Addr Alcotest Bytes Compact Gen Horus_msg Int64 List Msg QCheck QCheck_alcotest Wire
