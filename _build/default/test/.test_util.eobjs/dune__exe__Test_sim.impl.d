test/test_sim.ml: Alcotest Bytes Engine Horus_sim List Net String Trace
