test/test_fuzz.ml: Addr Alcotest Endpoint Event Float Group Horus Horus_sim Horus_util Int List Msg Printf String View World
