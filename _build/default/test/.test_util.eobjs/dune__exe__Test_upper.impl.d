test/test_upper.ml: Addr Alcotest Array Char Endpoint Event Group Horus Horus_sim Int List Msg Printf String View World
