test/test_mbrship.ml: Addr Alcotest Endpoint Event Group Horus Horus_sim List Msg Option Printf String View World
