test/test_quickcheck.mli:
