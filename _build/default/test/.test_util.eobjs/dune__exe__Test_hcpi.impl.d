test/test_hcpi.ml: Addr Alcotest Endpoint Event Group Hashtbl Horus Horus_sim List View World
