test/test_services.ml: Addr Alcotest Array Endpoint Event Float Group Horus Horus_hcpi Horus_sim List Msg Printf Rpc State_transfer String World
