test/test_mbrship.mli:
