test/test_compose.ml: Addr Alcotest Endpoint Event Group Horus Horus_props Horus_sim List Msg Printf Registry Spec String View World
