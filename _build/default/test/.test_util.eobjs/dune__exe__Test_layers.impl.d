test/test_layers.ml: Addr Alcotest Char Endpoint Group Horus Horus_sim List Printf String View World
