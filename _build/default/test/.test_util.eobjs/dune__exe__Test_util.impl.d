test/test_util.ml: Alcotest Array Bitset Bytes Char Crc Gen Heap Horus_util Int List Prng QCheck QCheck_alcotest String
