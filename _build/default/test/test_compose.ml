(* Composition tests: the decomposed FLUSH:BMS and VSS:BMS stacks must
   provide the same virtual synchrony as the monolithic MBRSHIP, and
   deep stacks combining many layers must work together — the LEGO
   claim of the paper, exercised end to end. *)

open Horus

let spawn ?(spec = "MBRSHIP:FRAG:NAK:COM") ?(n = 3) ?(settle = 2.0) world =
  let g = World.fresh_group_addr world in
  let founder = Group.join (Endpoint.create world ~spec) g in
  World.run_for world ~duration:0.2;
  let rest =
    List.init (n - 1) (fun _ ->
        let m = Group.join ~contact:(Group.addr founder) (Endpoint.create world ~spec) g in
        World.run_for world ~duration:0.5;
        m)
  in
  World.run_for world ~duration:settle;
  founder :: rest

let check_same_view msg groups =
  let views =
    List.map
      (fun gr ->
         match Group.view gr with
         | Some v -> (View.ltime v, List.map Addr.endpoint_id (View.members v))
         | None -> (-1, []))
      groups
  in
  match views with
  | [] -> ()
  | first :: rest ->
    List.iteri
      (fun i v ->
         Alcotest.(check (pair int (list int))) (Printf.sprintf "%s (member %d)" msg (i + 1))
           first v)
      rest

(* The Figure 2 scenario, but over the decomposed stack: BMS provides
   only consistent views; the FLUSH (or VSS) layer above must recover
   D's message M for A and B. *)
let figure2_over spec =
  let world = World.create ~seed:7 () in
  let groups = spawn ~spec ~n:4 ~settle:3.0 world in
  let a, b, c, d = match groups with [ a; b; c; d ] -> (a, b, c, d) | _ -> assert false in
  let n gr = Addr.endpoint_id (Group.addr gr) in
  Horus_sim.Net.partition (World.net world) [ [ n c; n d ]; [ n a; n b ] ];
  Group.cast d "M";
  World.run_for world ~duration:0.02;
  Endpoint.crash (Group.endpoint d);
  Horus_sim.Net.heal (World.net world);
  World.run_for world ~duration:6.0;
  List.iteri
    (fun i gr ->
       Alcotest.(check (list string)) (Printf.sprintf "survivor %d delivered M" i) [ "M" ]
         (Group.casts gr))
    [ a; b; c ];
  check_same_view "survivors agree" [ a; b; c ];
  Alcotest.(check int) "three members" 3
    (match Group.view a with Some v -> View.size v | None -> 0)

let test_flush_over_bms_figure2 () = figure2_over "FLUSH:BMS:FRAG:NAK:COM"

let test_vss_over_bms_figure2 () = figure2_over "VSS:BMS:FRAG:NAK:COM"

let test_bms_alone_may_lose () =
  (* Control experiment: without the FLUSH layer, BMS installs
     consistent views but A and B never see M — that is precisely the
     property gap between P8 and P9. *)
  let world = World.create ~seed:7 () in
  let groups = spawn ~spec:"BMS:FRAG:NAK:COM" ~n:4 ~settle:3.0 world in
  let a, b, c, d = match groups with [ a; b; c; d ] -> (a, b, c, d) | _ -> assert false in
  let n gr = Addr.endpoint_id (Group.addr gr) in
  Horus_sim.Net.partition (World.net world) [ [ n c; n d ]; [ n a; n b ] ];
  Group.cast d "M";
  World.run_for world ~duration:0.02;
  Endpoint.crash (Group.endpoint d);
  Horus_sim.Net.heal (World.net world);
  World.run_for world ~duration:6.0;
  check_same_view "views still consistent" [ a; b; c ];
  Alcotest.(check (list string)) "C alone saw M" [ "M" ] (Group.casts c);
  Alcotest.(check (list string)) "A missed M (semi-synchrony)" [] (Group.casts a);
  Alcotest.(check (list string)) "B missed M (semi-synchrony)" [] (Group.casts b)

let test_flush_normal_traffic () =
  let world = World.create () in
  let groups = spawn ~spec:"FLUSH:BMS:FRAG:NAK:COM" ~n:3 world in
  let a = List.hd groups in
  let msgs = List.init 10 (Printf.sprintf "m%d") in
  List.iter (Group.cast a) msgs;
  World.run_for world ~duration:2.0;
  List.iter
    (fun gr -> Alcotest.(check (list string)) "all delivered in order" msgs (Group.casts gr))
    groups

let vs_under_traffic spec seed =
  (* Continuous casting while a member crashes; survivors must deliver
     identical (payload, epoch) multisets — the same invariant the
     MBRSHIP suite checks, here against the decomposed stacks. *)
  let world = World.create ~seed () in
  let groups = spawn ~spec ~n:4 ~settle:3.0 world in
  let a, b, c, d = match groups with [ a; b; c; d ] -> (a, b, c, d) | _ -> assert false in
  let recs =
    List.map
      (fun gr ->
         let r = ref [] in
         Group.set_on_up gr (fun ev ->
             match ev with
             | Event.U_cast (_, m, _) ->
               let e = match Group.view gr with Some v -> View.ltime v | None -> -1 in
               r := (Msg.to_string m, e) :: !r
             | _ -> ());
         r)
      [ a; b; c ]
  in
  List.iteri
    (fun i gr ->
       for k = 0 to 19 do
         World.after world ~delay:(0.002 *. float_of_int k) (fun () ->
             Group.cast gr (Printf.sprintf "v%d-%02d" i k))
       done)
    [ a; b ];
  World.after world ~delay:0.02 (fun () -> Endpoint.crash (Group.endpoint d));
  World.run_for world ~duration:8.0;
  (match recs with
   | r0 :: rest ->
     List.iteri
       (fun i r ->
          Alcotest.(check (list (pair string int)))
            (Printf.sprintf "%s: survivor %d matches survivor 0" spec (i + 1))
            (List.sort compare !r0) (List.sort compare !r))
       rest;
     Alcotest.(check int) (spec ^ ": all 40 delivered") 40 (List.length !r0)
   | [] -> ());
  check_same_view (spec ^ ": final view") [ a; b; c ]

let test_flush_bms_vs_under_traffic () = vs_under_traffic "FLUSH:BMS:FRAG:NAK:COM" 81

let test_vss_bms_vs_under_traffic () = vs_under_traffic "VSS:BMS:FRAG:NAK:COM" 83

let test_total_over_decomposed_stack () =
  (* The paper's headline property set out of entirely different LEGO
     bricks: TOTAL over FLUSH:BMS instead of over MBRSHIP. *)
  let world = World.create ~seed:13 () in
  let spec = "TOTAL:FLUSH:BMS:FRAG:NAK:COM" in
  let groups = spawn ~spec ~n:3 ~settle:3.0 world in
  List.iteri
    (fun i gr ->
       for k = 0 to 7 do
         World.after world ~delay:(0.002 *. float_of_int k) (fun () ->
             Group.cast gr (Printf.sprintf "d%d-%d" i k))
       done)
    groups;
  World.run_for world ~duration:4.0;
  match List.map Group.casts groups with
  | first :: rest ->
    Alcotest.(check int) "all 24" 24 (List.length first);
    List.iteri
      (fun i s ->
         Alcotest.(check (list string)) (Printf.sprintf "member %d agrees" (i + 1)) first s)
      rest
  | [] -> ()

let test_deep_stack_kitchen_sink () =
  (* Nine layers, exercising crypto, compression, flow control, frag,
     reliability and total order together over a lossy garbling net. *)
  let config = { Horus_sim.Net.default_config with drop_prob = 0.05; garble_prob = 0.05 } in
  let world = World.create ~config ~seed:19 () in
  let spec =
    "TOTAL:MBRSHIP:FRAG(frag_size=128):COMPRESS:ENCRYPT(key=s3):SIGN(key=s3):NAK:CHKSUM:COM"
  in
  let groups = spawn ~spec ~n:3 ~settle:4.0 world in
  let a = List.hd groups in
  let big = String.concat "-" (List.init 40 (fun i -> Printf.sprintf "block%02d" i)) in
  Group.cast a big;
  Group.cast a "tail";
  World.run_for world ~duration:10.0;
  List.iteri
    (fun i gr ->
       Alcotest.(check (list string)) (Printf.sprintf "member %d: deep stack delivers" i)
         [ big; "tail" ] (Group.casts gr))
    groups

let test_stack_order_swap_filters () =
  (* SIGN above or below COMPRESS: both well-formed, both must work —
     run-time restacking per Figure 1. *)
  List.iter
    (fun spec ->
       let world = World.create () in
       let groups = spawn ~spec ~n:2 world in
       let a, b = match groups with [ a; b ] -> (a, b) | _ -> assert false in
       (* No membership layer in these stacks: install the destination
          set by hand at both members. *)
       let v =
         View.create ~group:(Group.group a) ~ltime:0
           ~members:(List.sort Addr.compare_endpoint [ Group.addr a; Group.addr b ])
       in
       Group.install_view a v;
       Group.install_view b v;
       Group.cast a "swapped";
       World.run_for world ~duration:1.0;
       Alcotest.(check (list string)) spec [ "swapped" ] (Group.casts b))
    [ "SIGN:COMPRESS:NAK:COM"; "COMPRESS:SIGN:NAK:COM" ]

let test_spec_roundtrip () =
  let s = "TOTAL:MBRSHIP:FRAG(frag_size=128):NAK(status_period=0.01):COM" in
  let parsed = Spec.parse s in
  Alcotest.(check string) "print . parse = id" s (Spec.to_string parsed);
  Alcotest.(check (list string)) "names" [ "TOTAL"; "MBRSHIP"; "FRAG"; "NAK"; "COM" ]
    (Spec.names parsed)

let test_spec_errors () =
  List.iter
    (fun bad ->
       Alcotest.(check bool) bad true
         (try ignore (Spec.parse bad); false with Spec.Parse_error _ -> true))
    [ ""; "FOO("; "FRAG(frag_size)"; ":" ]

let test_unknown_layer_rejected () =
  let world = World.create () in
  Alcotest.(check bool) "unknown layer" true
    (try
       ignore (Group.join (Endpoint.create world ~spec:"NOSUCH:COM") (World.fresh_group_addr world));
       false
     with Spec.Parse_error _ -> true)

let test_registry_covers_table3 () =
  (* Every Table 3 layer name resolves to an implementation. *)
  let world = World.create () in
  ignore world;
  List.iter
    (fun (spec : Horus_props.Layer_spec.t) ->
       Alcotest.(check bool) (spec.Horus_props.Layer_spec.name ^ " registered") true
         (Registry.mem spec.Horus_props.Layer_spec.name))
    Horus_props.Layer_spec.table3

let test_registry_protocol_types () =
  (* The registry doubles as Figure 1's protocol-type table. *)
  let world = World.create () in
  ignore world;
  let types = List.map (fun e -> e.Registry.protocol_type) (Registry.all ()) in
  List.iter
    (fun required ->
       Alcotest.(check bool) (required ^ " represented") true (List.mem required types))
    [ "membership"; "ordering"; "retransmission"; "fragment/assem."; "checksumming";
      "signing"; "encryption"; "compression"; "flow control"; "tracing"; "logging";
      "resource location"; "signaling" ]

let () =
  Alcotest.run "compose"
    [ ( "decomposition",
        [ Alcotest.test_case "figure 2 over FLUSH:BMS" `Quick test_flush_over_bms_figure2;
          Alcotest.test_case "figure 2 over VSS:BMS" `Quick test_vss_over_bms_figure2;
          Alcotest.test_case "BMS alone may lose (control)" `Quick test_bms_alone_may_lose;
          Alcotest.test_case "FLUSH normal traffic" `Quick test_flush_normal_traffic;
          Alcotest.test_case "TOTAL over decomposed stack" `Quick
            test_total_over_decomposed_stack;
          Alcotest.test_case "FLUSH:BMS under traffic" `Quick test_flush_bms_vs_under_traffic;
          Alcotest.test_case "VSS:BMS under traffic" `Quick test_vss_bms_vs_under_traffic ] );
      ( "lego",
        [ Alcotest.test_case "kitchen sink stack" `Quick test_deep_stack_kitchen_sink;
          Alcotest.test_case "filter order swap" `Quick test_stack_order_swap_filters ] );
      ( "spec",
        [ Alcotest.test_case "roundtrip" `Quick test_spec_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_spec_errors;
          Alcotest.test_case "unknown layer" `Quick test_unknown_layer_rejected ] );
      ( "registry",
        [ Alcotest.test_case "covers table 3" `Quick test_registry_covers_table3;
          Alcotest.test_case "protocol types" `Quick test_registry_protocol_types ] ) ]
