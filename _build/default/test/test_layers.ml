(* Integration tests for the substrate layers: NAK (reliable FIFO),
   FRAG/NFRAG (fragmentation), CHKSUM/SIGN/ENCRYPT/COMPRESS (filters),
   FC (flow control), NNAK (prioritized effort).

   All tests run membershipless stacks: views are installed explicitly,
   so only the layer under test is in play. *)

open Horus

let lossy drop = { Horus_sim.Net.default_config with drop_prob = drop }

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec loop i = i + n <= m && (String.sub s i n = sub || loop (i + 1)) in
  n = 0 || loop 0

(* Build an n-member group over [spec], installing a symmetric view at
   every member. *)
let mk_group ?(n = 2) ?(spec = "NAK:COM") ?(config = Horus_sim.Net.default_config) ?(seed = 1) () =
  let world = World.create ~config ~seed () in
  let g = World.fresh_group_addr world in
  let members = List.init n (fun _ -> Group.join (Endpoint.create world ~spec) g) in
  let addrs = List.sort Addr.compare_endpoint (List.map Group.addr members) in
  let v = View.create ~group:g ~ltime:0 ~members:addrs in
  List.iter (fun m -> Group.install_view m v) members;
  (world, members)

let payloads n prefix = List.init n (fun i -> Printf.sprintf "%s-%03d" prefix i)

(* --- NAK --- *)

let test_nak_fifo_no_loss () =
  let world, members = mk_group () in
  let a, b = match members with [ a; b ] -> (a, b) | _ -> assert false in
  let msgs = payloads 20 "m" in
  List.iter (Group.cast a) msgs;
  World.run_for world ~duration:1.0;
  Alcotest.(check (list string)) "b in order" msgs (Group.casts b);
  Alcotest.(check (list string)) "a loopback in order" msgs (Group.casts a)

let test_nak_recovers_loss () =
  (* 30% loss; NAK must still deliver everything, in order. *)
  let world, members = mk_group ~config:(lossy 0.3) ~seed:7 () in
  let a, b = match members with [ a; b ] -> (a, b) | _ -> assert false in
  let msgs = payloads 50 "loss" in
  List.iter (Group.cast a) msgs;
  World.run_for world ~duration:10.0;
  Alcotest.(check (list string)) "all delivered in order despite loss" msgs (Group.casts b)

let test_nak_recovers_heavy_loss_multi () =
  (* Three members, everyone casting, 40% loss. *)
  let world, members = mk_group ~n:3 ~config:(lossy 0.4) ~seed:11 () in
  List.iteri
    (fun i m -> List.iter (Group.cast m) (payloads 20 (Printf.sprintf "p%d" i)))
    members;
  World.run_for world ~duration:30.0;
  List.iteri
    (fun j receiver ->
       let got = Group.casts receiver in
       (* Per-origin FIFO: the subsequence from each origin must be in
          order and complete. *)
       List.iteri
         (fun i _ ->
            let want = payloads 20 (Printf.sprintf "p%d" i) in
            let from_i =
              List.filter (fun p -> String.length p > 1 && p.[1] = Char.chr (Char.code '0' + i)) got
            in
            Alcotest.(check (list string))
              (Printf.sprintf "receiver %d sees origin %d complete+ordered" j i)
              want from_i)
         members)
    members

let test_nak_reordering_repaired () =
  (* Heavy jitter reorders packets; NAK restores FIFO. *)
  let config = { Horus_sim.Net.default_config with latency = 0.001; jitter = 0.02 } in
  let world, members = mk_group ~config ~seed:3 () in
  let a, b = match members with [ a; b ] -> (a, b) | _ -> assert false in
  let msgs = payloads 30 "jit" in
  List.iter (Group.cast a) msgs;
  World.run_for world ~duration:5.0;
  Alcotest.(check (list string)) "order restored" msgs (Group.casts b)

let test_nak_duplicates_suppressed () =
  let config = { Horus_sim.Net.default_config with duplicate_prob = 0.5 } in
  let world, members = mk_group ~config ~seed:5 () in
  let a, b = match members with [ a; b ] -> (a, b) | _ -> assert false in
  let msgs = payloads 25 "dup" in
  List.iter (Group.cast a) msgs;
  World.run_for world ~duration:2.0;
  Alcotest.(check (list string)) "exactly once, in order" msgs (Group.casts b)

let test_nak_sends_reliable () =
  let world, members = mk_group ~config:(lossy 0.3) ~seed:13 () in
  let a, b = match members with [ a; b ] -> (a, b) | _ -> assert false in
  let msgs = payloads 30 "s" in
  List.iter (fun p -> Group.send a [ Group.addr b ] p) msgs;
  World.run_for world ~duration:10.0;
  let got =
    List.filter_map
      (fun d -> if d.Group.kind = `Send then Some d.Group.payload else None)
      (Group.deliveries b)
  in
  Alcotest.(check (list string)) "sends reliable and ordered" msgs got

let test_nak_problem_on_silence () =
  let world, members = mk_group () in
  let a, b = match members with [ a; b ] -> (a, b) | _ -> assert false in
  World.run_for world ~duration:0.5;
  Endpoint.crash (Group.endpoint b);
  World.run_for world ~duration:2.0;
  Alcotest.(check bool) "a suspects b" true
    (List.exists (Addr.equal_endpoint (Group.addr b)) (Group.problems a))

let test_nak_no_problem_when_alive () =
  let world, members = mk_group () in
  let a, _b = match members with [ a; b ] -> (a, b) | _ -> assert false in
  World.run_for world ~duration:3.0;
  Alcotest.(check (list string)) "no suspicion of live members" []
    (List.map Addr.endpoint_to_string (Group.problems a))

let test_nak_placeholder_lost_message () =
  (* The paper's placeholder path: with a tiny retransmission buffer, a
     receiver that missed early casts gets placeholders for whatever
     the sender has forgotten — surfacing as LOST_MESSAGE — and the
     still-buffered tail is recovered normally, in order. *)
  let world, members =
    mk_group ~spec:"NAK(buffer_limit=3,status_period=0.02):COM" ()
  in
  let a, b = match members with [ a; b ] -> (a, b) | _ -> assert false in
  let node gr = Addr.endpoint_id (Group.addr gr) in
  (* Cut the wire while a casts 10 messages: b misses all of them and
     a's buffer only retains the last 3. *)
  Horus_sim.Net.partition (World.net world) [ [ node a ]; [ node b ] ];
  List.iter (Group.cast a) (payloads 10 "ph");
  World.run_for world ~duration:0.01;
  Horus_sim.Net.heal (World.net world);
  World.run_for world ~duration:3.0;
  (* The tail that survived in the buffer arrives intact and ordered... *)
  Alcotest.(check (list string)) "buffered tail recovered"
    [ "ph-007"; "ph-008"; "ph-009" ]
    (Group.casts b);
  (* ...and every forgotten message was acknowledged as lost. *)
  Alcotest.(check int) "seven placeholders -> LOST_MESSAGE" 7 (Group.lost_messages b)

(* --- FRAG --- *)

let test_frag_large_message () =
  let world, members = mk_group ~spec:"FRAG(frag_size=64):NAK:COM" () in
  let a, b = match members with [ a; b ] -> (a, b) | _ -> assert false in
  let big = String.init 1000 (fun i -> Char.chr (32 + (i mod 95))) in
  Group.cast a big;
  World.run_for world ~duration:1.0;
  Alcotest.(check (list string)) "reassembled" [ big ] (Group.casts b)

let test_frag_exact_boundary () =
  let world, members = mk_group ~spec:"FRAG(frag_size=64):NAK:COM" () in
  let a, b = match members with [ a; b ] -> (a, b) | _ -> assert false in
  let m64 = String.make 64 'x' in
  let m65 = String.make 65 'y' in
  let m128 = String.make 128 'z' in
  List.iter (Group.cast a) [ m64; m65; m128 ];
  World.run_for world ~duration:1.0;
  Alcotest.(check (list string)) "boundaries" [ m64; m65; m128 ] (Group.casts b)

let test_frag_interleaved_origins () =
  let world, members = mk_group ~n:3 ~spec:"FRAG(frag_size=32):NAK:COM" () in
  let big i = String.make 200 (Char.chr (Char.code 'a' + i)) in
  List.iteri (fun i m -> Group.cast m (big i)) members;
  World.run_for world ~duration:2.0;
  List.iter
    (fun m ->
       let got = List.sort compare (Group.casts m) in
       Alcotest.(check (list string)) "all three large messages" [ big 0; big 1; big 2 ] got)
    members

let test_frag_under_loss () =
  let world, members =
    mk_group ~spec:"FRAG(frag_size=16):NAK:COM" ~config:(lossy 0.25) ~seed:17 ()
  in
  let a, b = match members with [ a; b ] -> (a, b) | _ -> assert false in
  let big = String.init 300 (fun i -> Char.chr (65 + (i mod 26))) in
  Group.cast a big;
  World.run_for world ~duration:10.0;
  Alcotest.(check (list string)) "reassembled despite loss" [ big ] (Group.casts b)

let test_frag_send_path () =
  let world, members = mk_group ~spec:"FRAG(frag_size=16):NAK:COM" () in
  let a, b = match members with [ a; b ] -> (a, b) | _ -> assert false in
  let big = String.make 100 'q' in
  Group.send a [ Group.addr b ] big;
  World.run_for world ~duration:1.0;
  let got =
    List.filter_map
      (fun d -> if d.Group.kind = `Send then Some d.Group.payload else None)
      (Group.deliveries b)
  in
  Alcotest.(check (list string)) "send reassembled" [ big ] got

(* --- NFRAG (no FIFO below) --- *)

let test_nfrag_over_reordering_net () =
  let config = { Horus_sim.Net.default_config with latency = 0.001; jitter = 0.02 } in
  let world, members = mk_group ~spec:"NFRAG(frag_size=32):COM" ~config ~seed:19 () in
  let a, b = match members with [ a; b ] -> (a, b) | _ -> assert false in
  let big = String.init 500 (fun i -> Char.chr (48 + (i mod 75))) in
  Group.cast a big;
  World.run_for world ~duration:2.0;
  Alcotest.(check (list string)) "reassembled out of order" [ big ] (Group.casts b)

let test_nfrag_loses_whole_message_on_fragment_loss () =
  let world, members = mk_group ~spec:"NFRAG(frag_size=8):COM" ~config:(lossy 0.5) ~seed:23 () in
  let a, b = match members with [ a; b ] -> (a, b) | _ -> assert false in
  Group.cast a (String.make 64 'L');
  World.run_for world ~duration:2.0;
  (* Best-effort: either complete or absent, never corrupt. *)
  List.iter (fun p -> Alcotest.(check string) "intact if present" (String.make 64 'L') p)
    (Group.casts b)

(* --- CHKSUM / SIGN / ENCRYPT / COMPRESS --- *)

let test_chksum_drops_garbled () =
  let config = { Horus_sim.Net.default_config with garble_prob = 1.0 } in
  let world, members = mk_group ~spec:"CHKSUM:COM" ~config ~seed:29 () in
  let a, b = match members with [ a; b ] -> (a, b) | _ -> assert false in
  let msgs = payloads 20 "g" in
  List.iter (Group.cast a) msgs;
  World.run_for world ~duration:1.0;
  (* Every wire packet has one flipped byte. A flip in the payload or
     checksum is dropped by CHKSUM; a flip in COM's envelope is dropped
     there. Nothing corrupted may ever surface. *)
  List.iter
    (fun p -> Alcotest.(check bool) "only pristine payloads surface" true (List.mem p msgs))
    (Group.casts b);
  (* loopback skips the wire, so a keeps its own *)
  Alcotest.(check int) "loopback intact" 20 (List.length (Group.casts a))

let test_chksum_passes_clean () =
  let world, members = mk_group ~spec:"CHKSUM:NAK:COM" () in
  let a, b = match members with [ a; b ] -> (a, b) | _ -> assert false in
  let msgs = payloads 10 "c" in
  List.iter (Group.cast a) msgs;
  World.run_for world ~duration:1.0;
  Alcotest.(check (list string)) "clean traffic unharmed" msgs (Group.casts b)

let test_chksum_with_nak_repairs_garbling () =
  (* CHKSUM drops garbled copies; NAK above it retransmits until a
     clean copy arrives: garbling becomes mere loss. *)
  let config = { Horus_sim.Net.default_config with garble_prob = 0.3 } in
  let world, members = mk_group ~spec:"NAK:CHKSUM:COM" ~config ~seed:31 () in
  let a, b = match members with [ a; b ] -> (a, b) | _ -> assert false in
  let msgs = payloads 30 "gc" in
  List.iter (Group.cast a) msgs;
  World.run_for world ~duration:10.0;
  Alcotest.(check (list string)) "garbling repaired" msgs (Group.casts b)

let test_sign_accepts_same_key () =
  let world, members = mk_group ~spec:"SIGN(key=sesame):NAK:COM" () in
  let a, b = match members with [ a; b ] -> (a, b) | _ -> assert false in
  Group.cast a "signed";
  World.run_for world ~duration:1.0;
  Alcotest.(check (list string)) "accepted" [ "signed" ] (Group.casts b)

let test_sign_rejects_forgery () =
  (* The intruder has the wrong key; its casts must not reach the
     member above SIGN. *)
  let world = World.create () in
  let g = World.fresh_group_addr world in
  let good = Group.join (Endpoint.create world ~spec:"SIGN(key=sesame):COM") g in
  let evil = Group.join (Endpoint.create world ~spec:"SIGN(key=wrong):COM") g in
  let v =
    View.create ~group:g ~ltime:0
      ~members:(List.sort Addr.compare_endpoint [ Group.addr good; Group.addr evil ])
  in
  Group.install_view good v;
  Group.install_view evil v;
  Group.cast evil "forged";
  World.run_for world ~duration:1.0;
  Alcotest.(check (list string)) "forgery dropped" [] (Group.casts good)

let test_encrypt_roundtrip () =
  let world, members = mk_group ~spec:"ENCRYPT(key=k1):NAK:COM" ~n:3 () in
  let a = List.hd members in
  let msgs = payloads 10 "e" in
  List.iter (Group.cast a) msgs;
  World.run_for world ~duration:1.0;
  List.iter
    (fun m -> Alcotest.(check (list string)) "decrypted" msgs (Group.casts m))
    members

let test_encrypt_hides_payload () =
  (* An eavesdropper without ENCRYPT sees bytes, but never the
     plaintext. *)
  let world = World.create () in
  let g = World.fresh_group_addr world in
  let a = Group.join (Endpoint.create world ~spec:"ENCRYPT(key=k1):COM") g in
  let eve = Group.join (Endpoint.create world ~spec:"COM") g in
  let v =
    View.create ~group:g ~ltime:0
      ~members:(List.sort Addr.compare_endpoint [ Group.addr a; Group.addr eve ])
  in
  Group.install_view a v;
  Group.install_view eve v;
  let secret = "attack at dawn, sector seven" in
  Group.cast a secret;
  World.run_for world ~duration:1.0;
  List.iter
    (fun p ->
       Alcotest.(check bool) "ciphertext only" false (contains_sub ~sub:secret p))
    (Group.casts eve)

let test_compress_roundtrip () =
  let world, members = mk_group ~spec:"COMPRESS:NAK:COM" () in
  let a, b = match members with [ a; b ] -> (a, b) | _ -> assert false in
  let compressible = String.make 500 'A' in
  let incompressible = String.init 100 (fun i -> Char.chr (i * 37 mod 256)) in
  Group.cast a compressible;
  Group.cast a incompressible;
  World.run_for world ~duration:1.0;
  Alcotest.(check (list string)) "both roundtrip" [ compressible; incompressible ]
    (Group.casts b)

let test_compress_saves_wire_bytes () =
  let run spec =
    let world, members = mk_group ~spec () in
    let a, _ = match members with [ a; b ] -> (a, b) | _ -> assert false in
    Group.cast a (String.make 2000 'B');
    World.run_for world ~duration:1.0;
    (Horus_sim.Net.stats (World.net world)).Horus_sim.Net.bytes_sent
  in
  let plain = run "COM" in
  let packed = run "COMPRESS:COM" in
  Alcotest.(check bool)
    (Printf.sprintf "compressed wire smaller (%d < %d)" packed plain)
    true (packed < plain)

(* --- FC --- *)

let test_fc_paces_traffic () =
  (* 100 msgs at 100/s with burst 10 should take roughly a second. *)
  let world, members = mk_group ~spec:"FC(rate=100,burst=10):NAK:COM" () in
  let a, b = match members with [ a; b ] -> (a, b) | _ -> assert false in
  List.iter (Group.cast a) (payloads 100 "f");
  World.run_for world ~duration:0.2;
  let early = List.length (Group.casts b) in
  World.run_for world ~duration:2.0;
  let final = List.length (Group.casts b) in
  Alcotest.(check bool) (Printf.sprintf "paced (early=%d)" early) true (early < 50);
  Alcotest.(check int) "eventually all" 100 final

let test_fc_preserves_order () =
  let world, members = mk_group ~spec:"FC(rate=200,burst=5):NAK:COM" () in
  let a, b = match members with [ a; b ] -> (a, b) | _ -> assert false in
  let msgs = payloads 50 "o" in
  List.iter (Group.cast a) msgs;
  World.run_for world ~duration:3.0;
  Alcotest.(check (list string)) "order kept" msgs (Group.casts b)

(* --- BATCH --- *)

let test_batch_delivers_all_in_order () =
  let world, members = mk_group ~spec:"BATCH(window=0.01):NAK:COM" () in
  let a, b = match members with [ a; b ] -> (a, b) | _ -> assert false in
  let msgs = payloads 40 "bt" in
  List.iter (Group.cast a) msgs;
  World.run_for world ~duration:1.0;
  Alcotest.(check (list string)) "all delivered in order" msgs (Group.casts b)

let test_batch_saves_packets () =
  let wire spec =
    let world, members = mk_group ~spec () in
    let a, _b = match members with [ a; b ] -> (a, b) | _ -> assert false in
    let before = (Horus_sim.Net.stats (World.net world)).Horus_sim.Net.sent in
    List.iter (Group.cast a) (payloads 64 "w");
    World.run_for world ~duration:1.0;
    (Horus_sim.Net.stats (World.net world)).Horus_sim.Net.sent - before
  in
  let plain = wire "NAK:COM" in
  let batched = wire "BATCH(window=0.005,max_batch=16):NAK:COM" in
  Alcotest.(check bool)
    (Printf.sprintf "batched %d < plain %d / 2" batched plain)
    true
    (batched * 2 < plain)

let test_batch_flushes_on_size () =
  (* max_batch 4: a burst of 4 must go out immediately, without waiting
     for the window. *)
  let world, members = mk_group ~spec:"BATCH(window=10.0,max_batch=4):NAK:COM" () in
  let a, b = match members with [ a; b ] -> (a, b) | _ -> assert false in
  List.iter (Group.cast a) (payloads 4 "sz");
  World.run_for world ~duration:0.1;  (* far less than the 10 s window *)
  Alcotest.(check (list string)) "size-triggered flush" (payloads 4 "sz") (Group.casts b)

let test_batch_window_flush () =
  (* A single message must still go out once the window elapses. *)
  let world, members = mk_group ~spec:"BATCH(window=0.02,max_batch=100):NAK:COM" () in
  let a, b = match members with [ a; b ] -> (a, b) | _ -> assert false in
  Group.cast a "lonely";
  World.run_for world ~duration:0.01;
  Alcotest.(check (list string)) "held within window" [] (Group.casts b);
  World.run_for world ~duration:0.1;
  Alcotest.(check (list string)) "flushed after window" [ "lonely" ] (Group.casts b)

(* --- NNAK --- *)

let test_nnak_priority_overtakes () =
  let world = World.create () in
  let g = World.fresh_group_addr world in
  let bulk = Group.join (Endpoint.create world ~spec:"NNAK(priority=1):COM") g in
  let ctl = Group.join (Endpoint.create world ~spec:"NNAK(priority=9):COM") g in
  let sink = Group.join (Endpoint.create world ~spec:"NNAK(window=0.01):COM") g in
  let addrs =
    List.sort Addr.compare_endpoint [ Group.addr bulk; Group.addr ctl; Group.addr sink ]
  in
  let v = View.create ~group:g ~ltime:0 ~members:addrs in
  List.iter (fun m -> Group.install_view m v) [ bulk; ctl; sink ];
  (* Bulk casts first; both arrive within the sink's batching window,
     but the control message must be delivered first. *)
  Group.cast bulk "bulk";
  Group.cast ctl "control";
  World.run_for world ~duration:1.0;
  match Group.casts sink with
  | [ "control"; "bulk" ] -> ()
  | other -> Alcotest.failf "priority not honoured: [%s]" (String.concat "; " other)

let () =
  Alcotest.run "layers"
    [ ( "nak",
        [ Alcotest.test_case "FIFO no loss" `Quick test_nak_fifo_no_loss;
          Alcotest.test_case "recovers 30% loss" `Quick test_nak_recovers_loss;
          Alcotest.test_case "heavy loss, 3 members" `Quick test_nak_recovers_heavy_loss_multi;
          Alcotest.test_case "reordering repaired" `Quick test_nak_reordering_repaired;
          Alcotest.test_case "duplicates suppressed" `Quick test_nak_duplicates_suppressed;
          Alcotest.test_case "sends reliable" `Quick test_nak_sends_reliable;
          Alcotest.test_case "placeholders -> LOST_MESSAGE" `Quick
            test_nak_placeholder_lost_message;
          Alcotest.test_case "PROBLEM on silence" `Quick test_nak_problem_on_silence;
          Alcotest.test_case "no false suspicion" `Quick test_nak_no_problem_when_alive ] );
      ( "frag",
        [ Alcotest.test_case "large message" `Quick test_frag_large_message;
          Alcotest.test_case "exact boundary" `Quick test_frag_exact_boundary;
          Alcotest.test_case "interleaved origins" `Quick test_frag_interleaved_origins;
          Alcotest.test_case "under loss" `Quick test_frag_under_loss;
          Alcotest.test_case "send path" `Quick test_frag_send_path ] );
      ( "nfrag",
        [ Alcotest.test_case "over reordering net" `Quick test_nfrag_over_reordering_net;
          Alcotest.test_case "all-or-nothing" `Quick
            test_nfrag_loses_whole_message_on_fragment_loss ] );
      ( "filters",
        [ Alcotest.test_case "chksum drops garbled" `Quick test_chksum_drops_garbled;
          Alcotest.test_case "chksum passes clean" `Quick test_chksum_passes_clean;
          Alcotest.test_case "chksum+nak repair garbling" `Quick
            test_chksum_with_nak_repairs_garbling;
          Alcotest.test_case "sign accepts same key" `Quick test_sign_accepts_same_key;
          Alcotest.test_case "sign rejects forgery" `Quick test_sign_rejects_forgery;
          Alcotest.test_case "encrypt roundtrip" `Quick test_encrypt_roundtrip;
          Alcotest.test_case "encrypt hides payload" `Quick test_encrypt_hides_payload;
          Alcotest.test_case "compress roundtrip" `Quick test_compress_roundtrip;
          Alcotest.test_case "compress saves bytes" `Quick test_compress_saves_wire_bytes ] );
      ( "batch",
        [ Alcotest.test_case "delivers all in order" `Quick test_batch_delivers_all_in_order;
          Alcotest.test_case "saves packets" `Quick test_batch_saves_packets;
          Alcotest.test_case "flushes on size" `Quick test_batch_flushes_on_size;
          Alcotest.test_case "flushes on window" `Quick test_batch_window_flush ] );
      ( "fc",
        [ Alcotest.test_case "paces traffic" `Quick test_fc_paces_traffic;
          Alcotest.test_case "preserves order" `Quick test_fc_preserves_order ] );
      ( "nnak",
        [ Alcotest.test_case "priority overtakes" `Quick test_nnak_priority_overtakes ] ) ]
