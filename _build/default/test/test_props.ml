(* Tests for the property algebra (Tables 3 and 4, Sections 6 and 7). *)

open Horus_props

let pset = Alcotest.testable Property.Set.pp Property.Set.equal

let p1 = Property.Set.of_numbers [ 1 ]

(* The paper's worked example, Section 7: TOTAL:MBRSHIP:FRAG:NAK:COM
   over an ATM network providing only P1 yields exactly
   {P3,P4,P6,P8,P9,P10,P11,P12,P15}. *)
let test_section7_derivation () =
  let stack = [ "TOTAL"; "MBRSHIP"; "FRAG"; "NAK"; "COM" ] in
  match Check.derive_names ~net:p1 stack with
  | Error e -> Alcotest.failf "stack not well-formed: %a" Check.pp_error e
  | Ok props ->
    Alcotest.check pset "section 7 property set"
      (Property.Set.of_numbers [ 3; 4; 6; 8; 9; 10; 11; 12; 15 ])
      props

(* Intermediate sets of the same derivation, as Section 7 narrates:
   COM adds source addresses, NAK adds FIFO, FRAG adds large messages,
   MBRSHIP adds virtual synchrony, TOTAL adds total order. *)
let test_section7_trace () =
  let stack = List.map Layer_spec.find_exn [ "TOTAL"; "MBRSHIP"; "FRAG"; "NAK"; "COM" ] in
  match Check.trace ~net:p1 stack with
  | Error e -> Alcotest.failf "trace failed: %a" Check.pp_error e
  | Ok steps ->
    let expect =
      [ [ 1 ];                                (* the network *)
        [ 1; 10; 11 ];                        (* above COM *)
        [ 3; 4; 10; 11 ];                     (* above NAK *)
        [ 3; 4; 10; 11; 12 ];                 (* above FRAG *)
        [ 3; 4; 8; 9; 10; 11; 12; 15 ];       (* above MBRSHIP *)
        [ 3; 4; 6; 8; 9; 10; 11; 12; 15 ] ]   (* above TOTAL *)
    in
    Alcotest.(check int) "six intermediate sets" (List.length expect) (List.length steps);
    List.iteri
      (fun i (got, want) ->
         Alcotest.check pset (Printf.sprintf "step %d" i) (Property.Set.of_numbers want) got)
      (List.map2 (fun g w -> (g, w)) steps expect)

let test_missing_requirement () =
  (* MBRSHIP directly over COM lacks FIFO and large messages. *)
  match Check.derive_names ~net:p1 [ "MBRSHIP"; "COM" ] with
  | Ok props -> Alcotest.failf "expected failure, got %a" Property.Set.pp props
  | Error e ->
    Alcotest.(check string) "failing layer" "MBRSHIP" e.layer;
    Alcotest.check pset "missing" (Property.Set.of_numbers [ 3; 4; 12 ]) e.missing

let test_order_matters () =
  (* FRAG below NAK is ill-formed (FRAG needs FIFO), while NAK below
     FRAG is fine: stacking order matters, as Section 8 discusses. *)
  Alcotest.(check bool) "NAK:FRAG:COM ill-formed" false
    (Check.well_formed ~net:p1 (List.map Layer_spec.find_exn [ "NAK"; "FRAG"; "COM" ]));
  Alcotest.(check bool) "FRAG:NAK:COM well-formed" true
    (Check.well_formed ~net:p1 (List.map Layer_spec.find_exn [ "FRAG"; "NAK"; "COM" ]))

let test_empty_stack () =
  match Check.derive ~net:p1 [] with
  | Ok props -> Alcotest.check pset "empty stack passes net through" p1 props
  | Error e -> Alcotest.failf "unexpected: %a" Check.pp_error e

let test_com_requires_network () =
  (* COM cannot run over nothing. *)
  Alcotest.(check bool) "COM over empty" false
    (Check.well_formed ~net:Property.Set.empty [ Layer_spec.com ])

let test_all_rows_well_formed_somewhere () =
  (* Every Table 3 row must be reachable: for each layer there exists a
     stack in which its requirements are met. We verify by searching
     for a stack that provides each layer's full requirement set. *)
  List.iter
    (fun (spec : Layer_spec.t) ->
       match Search.search ~net:p1 ~required:spec.requires () with
       | Some _ -> ()
       | None -> Alcotest.failf "no stack can host layer %s" spec.name)
    Layer_spec.table3

let test_search_finds_section7_class () =
  (* Searching for the Section 7 property set must produce a
     well-formed stack providing it. *)
  let required = Property.Set.of_numbers [ 6; 9; 15 ] in
  match Search.search ~net:p1 ~required () with
  | None -> Alcotest.fail "no stack for total order + virtual synchrony"
  | Some r ->
    Alcotest.(check bool) "provides required" true (Property.Set.subset required r.provides);
    Alcotest.(check bool) "well-formed" true (Check.well_formed ~net:p1 r.layers)

let test_search_minimality () =
  (* The found stack's cost must not exceed the paper's canonical stack
     for the same requirement. *)
  let required = Property.Set.of_numbers [ 6; 9; 15 ] in
  let canonical = List.map Layer_spec.find_exn [ "TOTAL"; "MBRSHIP"; "FRAG"; "NAK"; "COM" ] in
  match Search.search ~net:p1 ~required () with
  | None -> Alcotest.fail "no stack"
  | Some r ->
    Alcotest.(check bool) "cost <= canonical" true (r.cost <= Check.total_cost canonical)

let test_search_impossible () =
  (* Nothing can conjure totally ordered delivery out of thin air with
     only transparent layers available. *)
  let layers = Layer_spec.extras in
  match Search.search ~layers ~net:p1 ~required:(Property.Set.of_numbers [ 6 ]) () with
  | None -> ()
  | Some r -> Alcotest.failf "impossible stack found: %s" (Search.spec_string r)

let test_search_trivial () =
  (* Requirements already met by the network need no layers. *)
  match Search.search ~net:p1 ~required:p1 () with
  | Some r -> Alcotest.(check int) "no layers" 0 (List.length r.layers)
  | None -> Alcotest.fail "trivial search failed"

let test_enumerate_contains_canonical () =
  let required = Property.Set.of_numbers [ 6; 9 ] in
  let stacks = Search.enumerate ~net:p1 ~required ~max_depth:5 () in
  let canonical = [ "TOTAL"; "MBRSHIP"; "FRAG"; "NAK"; "COM" ] in
  let names (l : Layer_spec.t list) = List.map (fun (s : Layer_spec.t) -> s.name) l in
  Alcotest.(check bool) "canonical stack enumerated" true
    (List.exists (fun s -> names s = canonical) stacks)

let test_order_matters_verdicts () =
  (* Pose the question above COM, i.e. over {P1,P10,P11}. *)
  let net = Property.Set.of_numbers [ 1; 10; 11 ] in
  let find = Layer_spec.find_exn in
  (* NAK must sit below FRAG: only one order is well-formed. *)
  (match Check.order_matters ~net ~upper:(find "FRAG") ~lower:(find "NAK") with
   | Check.Only_first_works _ -> ()
   | v -> Alcotest.failf "FRAG/NAK: %a" Check.pp_order_verdict v);
  (match Check.order_matters ~net ~upper:(find "NAK") ~lower:(find "FRAG") with
   | Check.Only_second_works _ -> ()
   | v -> Alcotest.failf "NAK/FRAG: %a" Check.pp_order_verdict v);
  (* Two transparent filters commute. *)
  (match Check.order_matters ~net:p1 ~upper:(find "CHKSUM") ~lower:(find "SIGN") with
   | Check.Order_equivalent _ -> ()
   | v -> Alcotest.failf "CHKSUM/SIGN: %a" Check.pp_order_verdict v);
  (* Nothing works without the COM adapter. *)
  (match
     Check.order_matters ~net:Property.Set.empty ~upper:(find "NAK") ~lower:(find "FRAG")
   with
   | Check.Neither_works -> ()
   | v -> Alcotest.failf "over empty net: %a" Check.pp_order_verdict v)

let test_property_numbers_roundtrip () =
  List.iter
    (fun p -> Alcotest.(check bool) "roundtrip" true (Property.of_number (Property.number p) = p))
    Property.all;
  Alcotest.(check int) "sixteen properties" 16 (List.length Property.all)

let test_table3_has_fifteen_rows () =
  Alcotest.(check int) "fifteen rows" 15 (List.length Layer_spec.table3)

(* Property-based: derivation is monotone in the network property set —
   a richer network never yields a poorer stack result. *)
let prop_monotone =
  QCheck.Test.make ~name:"derivation monotone in net properties" ~count:500
    QCheck.(pair (list_of_size Gen.(0 -- 16) (int_range 1 16)) (list_of_size Gen.(0 -- 16) (int_range 1 16)))
    (fun (a, b) ->
       let sa = Property.Set.of_numbers a in
       let sb = Property.Set.union sa (Property.Set.of_numbers b) in
       let stack = [ Layer_spec.com; Layer_spec.nak; Layer_spec.frag ] in
       match (Check.derive ~net:sa stack, Check.derive ~net:sb stack) with
       | Ok ra, Ok rb -> Property.Set.subset ra rb
       | Error _, (Ok _ | Error _) -> true  (* smaller net may fail earlier *)
       | Ok _, Error _ -> false)

(* Property-based: a search result is always well-formed and always
   satisfies the requirement it was asked for. *)
let prop_search_sound =
  QCheck.Test.make ~name:"search results are sound" ~count:200
    QCheck.(pair (list_of_size Gen.(0 -- 3) (int_range 1 16)) (list_of_size Gen.(0 -- 3) (int_range 1 16)))
    (fun (net_n, req_n) ->
       let net = Property.Set.of_numbers (1 :: net_n) in
       let required = Property.Set.of_numbers req_n in
       match Search.search ~net ~required () with
       | None -> true
       | Some r ->
         Check.well_formed ~net r.layers && Property.Set.subset required r.provides)

let () =
  Alcotest.run "props"
    [ ( "table4",
        [ Alcotest.test_case "numbers roundtrip" `Quick test_property_numbers_roundtrip ] );
      ( "table3",
        [ Alcotest.test_case "fifteen rows" `Quick test_table3_has_fifteen_rows;
          Alcotest.test_case "every row hostable" `Quick test_all_rows_well_formed_somewhere ] );
      ( "derivation",
        [ Alcotest.test_case "section 7 exact set" `Quick test_section7_derivation;
          Alcotest.test_case "section 7 intermediate sets" `Quick test_section7_trace;
          Alcotest.test_case "missing requirement reported" `Quick test_missing_requirement;
          Alcotest.test_case "stacking order matters" `Quick test_order_matters;
          Alcotest.test_case "empty stack" `Quick test_empty_stack;
          Alcotest.test_case "COM needs a network" `Quick test_com_requires_network ] );
      ( "search",
        [ Alcotest.test_case "finds virtual synchrony + total order" `Quick test_search_finds_section7_class;
          Alcotest.test_case "minimality vs canonical" `Quick test_search_minimality;
          Alcotest.test_case "impossible requirement" `Quick test_search_impossible;
          Alcotest.test_case "trivial requirement" `Quick test_search_trivial;
          Alcotest.test_case "enumeration contains canonical" `Quick test_enumerate_contains_canonical;
          Alcotest.test_case "stacking order verdicts" `Quick test_order_matters_verdicts ] );
      ( "qcheck",
        [ QCheck_alcotest.to_alcotest prop_monotone;
          QCheck_alcotest.to_alcotest prop_search_sound ] ) ]
