(* Exhaustive model checking of the flush protocol (Section 8).

   The correct model (with Section 5's ignore-stragglers rule) must
   satisfy view agreement and virtual synchrony in *every* reachable
   quiescent state; the model without the rule must yield the
   counterexample where a straggler copy from the crashed member
   reaches exactly one survivor after its flush reply. *)

open Horus_model

let explore ~ignore_stragglers ~survivor_cast () =
  let module Sys =
    (val Flush_model.system ~ignore_stragglers ~survivor_cast ()
      : Automaton.SYSTEM
      with type state = Flush_model.state
       and type action = Flush_model.action)
  in
  let module E = Automaton.Make (Sys) in
  E.explore ()

let test_correct_model_holds () =
  let r = explore ~ignore_stragglers:true ~survivor_cast:false () in
  Alcotest.(check bool) "exhaustive" false r.Automaton.truncated;
  Alcotest.(check int) "no violations" 0 (List.length r.Automaton.violations);
  Alcotest.(check bool) "explored a real space" true (r.Automaton.states_explored > 50);
  Alcotest.(check bool) "has terminal states" true (r.Automaton.terminals > 0)

let test_correct_model_with_survivor_cast () =
  let r = explore ~ignore_stragglers:true ~survivor_cast:true () in
  Alcotest.(check bool) "exhaustive" false r.Automaton.truncated;
  (match r.Automaton.violations with
   | [] -> ()
   | v :: _ ->
     Alcotest.failf "unexpected violation of %s:\n%s\nstate %s" v.Automaton.property
       (String.concat "\n" v.Automaton.trace)
       v.Automaton.state);
  Alcotest.(check bool) "larger space" true (r.Automaton.states_explored > 200)

let test_buggy_model_caught () =
  (* Without the ignore rule, the checker must find the straggler
     counterexample: virtual synchrony broken at some quiescent
     state. *)
  let r = explore ~ignore_stragglers:false ~survivor_cast:false () in
  Alcotest.(check bool) "exhaustive" false r.Automaton.truncated;
  Alcotest.(check bool) "violation found" true (r.Automaton.violations <> []);
  let v = List.hd r.Automaton.violations in
  Alcotest.(check string) "the broken property"
    "virtual synchrony: survivors delivered the same set" v.Automaton.property;
  (* The counterexample must involve the crash and a straggler delivery
     from process 2. *)
  Alcotest.(check bool) "trace crashes 2" true
    (List.exists (fun a -> a = "crash 2") v.Automaton.trace)

let test_buggy_model_caught_with_survivor_cast () =
  let r = explore ~ignore_stragglers:false ~survivor_cast:true () in
  Alcotest.(check bool) "violation found" true (r.Automaton.violations <> [])

let test_counterexample_is_minimal_shape () =
  (* The counterexample must involve the crashed member's data
     straggling in, and end with the survivors' delivery sets
     differing on message 100. *)
  let r = explore ~ignore_stragglers:false ~survivor_cast:false () in
  match r.Automaton.violations with
  | [] -> Alcotest.fail "no violation"
  | v :: _ ->
    Alcotest.(check bool) "a straggler delivery appears" true
      (List.exists (fun a -> a = "deliver 2->0" || a = "deliver 2->1") v.Automaton.trace);
    Alcotest.(check bool) "one survivor has 100, the other does not" true
      (let s = v.Automaton.state in
       (* state strings look like "p0[] p1[100] p2(dead)[100] ..." *)
       let contains sub =
         let n = String.length sub and m = String.length s in
         let rec loop i = i + n <= m && (String.sub s i n = sub || loop (i + 1)) in
         loop 0
       in
       (contains "p0[] " && contains "p1[100]") || (contains "p0[100]" && contains "p1[] "))

(* --- TOTAL token protocol --- *)

let explore_total () =
  let module Sys =
    (val Total_model.system ()
      : Automaton.SYSTEM
      with type state = Total_model.state
       and type action = Total_model.action)
  in
  let module E = Automaton.Make (Sys) in
  E.explore ~max_states:2_000_000 ()

let test_total_model_holds () =
  let r = explore_total () in
  Alcotest.(check bool) "exhaustive" false r.Automaton.truncated;
  (match r.Automaton.violations with
   | [] -> ()
   | v :: _ ->
     Alcotest.failf "violation of %s:\n%s\nstate %s" v.Automaton.property
       (String.concat "\n" v.Automaton.trace)
       v.Automaton.state);
  Alcotest.(check bool) "non-trivial space" true (r.Automaton.states_explored > 1000);
  Alcotest.(check bool) "has terminals" true (r.Automaton.terminals > 0)

(* --- coordinator takeover --- *)

let test_takeover_model_holds () =
  let module Sys =
    (val Takeover_model.system ()
      : Automaton.SYSTEM
      with type state = Takeover_model.state
       and type action = Takeover_model.action)
  in
  let module E = Automaton.Make (Sys) in
  let r = E.explore ~max_states:2_000_000 () in
  Alcotest.(check bool) "exhaustive" false r.Automaton.truncated;
  (match r.Automaton.violations with
   | [] -> ()
   | v :: _ ->
     Alcotest.failf "violation of %s:\n%s\nstate %s" v.Automaton.property
       (String.concat "\n" v.Automaton.trace)
       v.Automaton.state);
  Alcotest.(check bool) "non-trivial space" true (r.Automaton.states_explored > 500);
  Alcotest.(check bool) "has terminals" true (r.Automaton.terminals > 0)

let () =
  Alcotest.run "model"
    [ ( "takeover",
        [ Alcotest.test_case "coordinator crash: election and cut" `Quick
            test_takeover_model_holds ] );
      ( "total",
        [ Alcotest.test_case "token protocol: agreement and liveness" `Quick
            test_total_model_holds ] );
      ( "flush",
        [ Alcotest.test_case "correct model holds exhaustively" `Quick test_correct_model_holds;
          Alcotest.test_case "correct model + survivor cast" `Quick
            test_correct_model_with_survivor_cast;
          Alcotest.test_case "buggy model caught" `Quick test_buggy_model_caught;
          Alcotest.test_case "buggy model + survivor cast caught" `Quick
            test_buggy_model_caught_with_survivor_cast;
          Alcotest.test_case "counterexample shape" `Quick test_counterexample_is_minimal_shape ] ) ]
