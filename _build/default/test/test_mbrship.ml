(* Tests for the MBRSHIP layer: view agreement, join-as-merge, leaves,
   crash-driven flushes (including the exact Figure 2 scenario), and
   the virtual synchrony delivery guarantees. *)

open Horus

let spec = "MBRSHIP:FRAG:NAK:COM"

(* Per-member recorder: every cast delivery tagged with the epoch it
   was delivered in, and the view history. *)
type recorded = {
  mutable r_casts : (string * int) list;  (* payload, epoch at delivery; newest first *)
  mutable r_views : (int * int list) list;  (* ltime, member ids; newest first *)
}

let recorder () = { r_casts = []; r_views = [] }

let watch rec_ group =
  Group.set_on_up group (fun ev ->
      match ev with
      | Event.U_cast (_, m, _) ->
        let epoch = match Group.view group with Some v -> View.ltime v | None -> -1 in
        rec_.r_casts <- (Msg.to_string m, epoch) :: rec_.r_casts
      | Event.U_view v ->
        rec_.r_views <-
          (View.ltime v, List.map Addr.endpoint_id (View.members v)) :: rec_.r_views
      | _ -> ())

let casts_of r = List.rev_map fst r.r_casts

(* The group address a handle belongs to. *)
let g_of gr = Group.group gr

let mk_world ?(seed = 1) ?(config = Horus_sim.Net.default_config) () =
  World.create ~config ~seed ()

(* Found a group of [n] members, joined one at a time. *)
let spawn ?(spec = spec) ?(n = 3) ?(settle = 2.0) world =
  let g = World.fresh_group_addr world in
  let founder = Group.join (Endpoint.create world ~spec) g in
  World.run_for world ~duration:0.2;
  let rest =
    List.init (n - 1) (fun _ ->
        let m = Group.join ~contact:(Group.addr founder) (Endpoint.create world ~spec) g in
        World.run_for world ~duration:0.5;
        m)
  in
  World.run_for world ~duration:settle;
  founder :: rest

let check_same_view msg groups =
  let views =
    List.map
      (fun gr ->
         match Group.view gr with
         | Some v -> (View.ltime v, List.map Addr.endpoint_id (View.members v))
         | None -> (-1, []))
      groups
  in
  match views with
  | [] -> ()
  | first :: rest ->
    List.iteri
      (fun i v ->
         Alcotest.(check (pair int (list int))) (Printf.sprintf "%s (member %d)" msg (i + 1))
           first v)
      rest

let test_founder_singleton () =
  let world = mk_world () in
  let g = World.fresh_group_addr world in
  let a = Group.join (Endpoint.create world ~spec) g in
  World.run_for world ~duration:0.5;
  match Group.view a with
  | Some v ->
    Alcotest.(check int) "one member" 1 (View.size v);
    Alcotest.(check (option int)) "rank 0" (Some 0) (Group.my_rank a)
  | None -> Alcotest.fail "founder has no view"

let test_join_forms_pair () =
  let world = mk_world () in
  let groups = spawn ~n:2 world in
  check_same_view "pair view" groups;
  List.iter
    (fun gr ->
       Alcotest.(check int) "two members" 2
         (match Group.view gr with Some v -> View.size v | None -> 0))
    groups

let test_sequential_joins () =
  let world = mk_world () in
  let groups = spawn ~n:5 ~settle:4.0 world in
  check_same_view "five-member view" groups;
  List.iter
    (fun gr ->
       Alcotest.(check int) "five members" 5
         (match Group.view gr with Some v -> View.size v | None -> 0))
    groups

let test_concurrent_joins () =
  (* Two processes join through the same contact at the same moment;
     the grantor serializes the merges (busy requesters retry) and all
     four converge. *)
  let world = mk_world ~seed:63 () in
  let groups = spawn ~n:2 world in
  let a = List.hd groups in
  let c = Group.join ~contact:(Group.addr a) (Endpoint.create world ~spec) (g_of a) in
  let d = Group.join ~contact:(Group.addr a) (Endpoint.create world ~spec) (g_of a) in
  World.run_for world ~duration:5.0;
  let all = groups @ [ c; d ] in
  check_same_view "all four converge" all;
  Alcotest.(check int) "four members" 4
    (match Group.view a with Some v -> View.size v | None -> 0)

let test_join_during_traffic () =
  (* A member joins while the group is mid-burst: established members
     lose nothing and agree; the joiner starts cleanly at the new view
     (virtual synchrony means it never sees old-view messages). *)
  let world = mk_world ~seed:67 () in
  let groups = spawn ~n:3 world in
  let a = List.hd groups in
  for k = 0 to 29 do
    World.after world ~delay:(0.005 *. float_of_int k) (fun () ->
        Group.cast a (Printf.sprintf "t%02d" k))
  done;
  let joiner = ref None in
  World.after world ~delay:0.07 (fun () ->
      joiner := Some (Group.join ~contact:(Group.addr a) (Endpoint.create world ~spec) (g_of a)));
  World.run_for world ~duration:5.0;
  let j = Option.get !joiner in
  (* Established members have the full stream, in order. *)
  List.iteri
    (fun i gr ->
       Alcotest.(check (list string)) (Printf.sprintf "member %d complete" i)
         (List.init 30 (Printf.sprintf "t%02d"))
         (Group.casts gr))
    groups;
  (* The joiner's stream is a contiguous suffix. *)
  let jc = Group.casts j in
  (match jc with
   | [] -> ()
   | first :: _ ->
     let start = int_of_string (String.sub first 1 2) in
     Alcotest.(check (list string)) "joiner sees a contiguous suffix"
       (List.init (30 - start) (fun i -> Printf.sprintf "t%02d" (start + i)))
       jc);
  check_same_view "final view shared" (groups @ [ j ])

let test_coordinator_is_oldest () =
  let world = mk_world () in
  let groups = spawn ~n:3 world in
  let founder = List.hd groups in
  List.iter
    (fun gr ->
       match Group.view gr with
       | Some v ->
         Alcotest.(check int) "founder coordinates"
           (Addr.endpoint_id (Group.addr founder))
           (Addr.endpoint_id (View.coordinator v))
       | None -> Alcotest.fail "no view")
    groups

let test_casts_reach_all () =
  let world = mk_world () in
  let groups = spawn ~n:4 world in
  let a = List.hd groups in
  let msgs = List.init 10 (Printf.sprintf "m%02d") in
  List.iter (Group.cast a) msgs;
  World.run_for world ~duration:2.0;
  List.iteri
    (fun i gr ->
       Alcotest.(check (list string)) (Printf.sprintf "member %d got all, in order" i) msgs
         (Group.casts gr))
    groups

let test_all_members_cast () =
  let world = mk_world () in
  let groups = spawn ~n:3 world in
  List.iteri (fun i gr -> Group.cast gr (Printf.sprintf "from-%d" i)) groups;
  World.run_for world ~duration:2.0;
  List.iter
    (fun gr ->
       Alcotest.(check (list string)) "everyone sees all three"
         [ "from-0"; "from-1"; "from-2" ]
         (List.sort compare (Group.casts gr)))
    groups

let test_crash_installs_new_view () =
  let world = mk_world () in
  let groups = spawn ~n:3 world in
  let a, b, c = match groups with [ a; b; c ] -> (a, b, c) | _ -> assert false in
  Endpoint.crash (Group.endpoint c);
  World.run_for world ~duration:3.0;
  check_same_view "survivors agree" [ a; b ];
  (match Group.view a with
   | Some v ->
     Alcotest.(check int) "two survivors" 2 (View.size v);
     Alcotest.(check bool) "crashed member excluded" false (View.mem v (Group.addr c))
   | None -> Alcotest.fail "no view");
  Alcotest.(check bool) "a saw a flush" true (Group.flushes a > 0)

let test_coordinator_crash_recovery () =
  let world = mk_world () in
  let groups = spawn ~n:3 world in
  let a, b, c = match groups with [ a; b; c ] -> (a, b, c) | _ -> assert false in
  (* a is the coordinator (oldest); kill it. *)
  Endpoint.crash (Group.endpoint a);
  World.run_for world ~duration:3.0;
  check_same_view "survivors agree" [ b; c ];
  match Group.view b with
  | Some v ->
    Alcotest.(check int) "two survivors" 2 (View.size v);
    Alcotest.(check int) "b takes over as coordinator"
      (Addr.endpoint_id (Group.addr b))
      (Addr.endpoint_id (View.coordinator v))
  | None -> Alcotest.fail "no view"

let test_double_crash () =
  let world = mk_world () in
  let groups = spawn ~n:5 ~settle:4.0 world in
  (match groups with
   | a :: b :: _ ->
     Endpoint.crash (Group.endpoint a);
     Endpoint.crash (Group.endpoint b)
   | _ -> assert false);
  World.run_for world ~duration:4.0;
  let survivors = List.filteri (fun i _ -> i >= 2) groups in
  check_same_view "three survivors agree" survivors;
  List.iter
    (fun gr ->
       Alcotest.(check int) "three members" 3
         (match Group.view gr with Some v -> View.size v | None -> 0))
    survivors

let test_crash_during_flush () =
  (* A second member dies while the first flush is running; the
     coordinator must restart the flush and still converge. *)
  let world = mk_world () in
  let groups = spawn ~n:4 ~settle:3.0 world in
  (match groups with
   | _ :: _ :: c :: d :: _ ->
     Endpoint.crash (Group.endpoint d);
     (* NAK suspicion fires ~0.25s later; crash c in the middle of the
        resulting flush. *)
     World.after world ~delay:0.35 (fun () -> Endpoint.crash (Group.endpoint c))
   | _ -> assert false);
  World.run_for world ~duration:5.0;
  let survivors = List.filteri (fun i _ -> i < 2) groups in
  check_same_view "two survivors agree" survivors;
  List.iter
    (fun gr ->
       Alcotest.(check int) "two members" 2
         (match Group.view gr with Some v -> View.size v | None -> 0))
    survivors

(* The Figure 2 scenario: four processes A, B, C, D. D casts M such
   that only C receives a copy, then D crashes. The flush must spread M
   to A and B, everyone delivers M exactly once, and then the new view
   {A,B,C} installs — with M delivered *before* the view change at all
   survivors. *)
let test_figure2_flush () =
  let world = mk_world () in
  let groups = spawn ~n:4 ~settle:3.0 world in
  let a, b, c, d = match groups with [ a; b; c; d ] -> (a, b, c, d) | _ -> assert false in
  let recs = List.map (fun gr -> let r = recorder () in watch r gr; r) [ a; b; c ] in
  let old_epoch = match Group.view a with Some v -> View.ltime v | None -> assert false in
  (* Cut D off from A and B (but not C), cast M, then crash D before
     the partition heals: exactly "only C received a copy". *)
  let nodes gr = Addr.endpoint_id (Group.addr gr) in
  Horus_sim.Net.partition (World.net world) [ [ nodes c; nodes d ]; [ nodes a; nodes b ] ];
  Group.cast d "M";
  World.run_for world ~duration:0.02;  (* M reaches C only *)
  Endpoint.crash (Group.endpoint d);
  Horus_sim.Net.heal (World.net world);
  World.run_for world ~duration:5.0;
  (* All survivors delivered M exactly once. *)
  List.iteri
    (fun i r ->
       Alcotest.(check (list string)) (Printf.sprintf "survivor %d delivered M once" i) [ "M" ]
         (casts_of r))
    recs;
  (* M was delivered in the old view, before the new view installed. *)
  List.iteri
    (fun i r ->
       match r.r_casts with
       | [ ("M", at_epoch) ] ->
         Alcotest.(check int) (Printf.sprintf "survivor %d: M in old view" i) old_epoch at_epoch
       | _ -> Alcotest.fail "unexpected cast record")
    recs;
  (* The new view excludes D and is agreed. *)
  check_same_view "survivors agree on {A,B,C}" [ a; b; c ];
  match Group.view a with
  | Some v ->
    Alcotest.(check int) "three members" 3 (View.size v);
    Alcotest.(check bool) "D excluded" false (View.mem v (Group.addr d))
  | None -> Alcotest.fail "no view"

(* The straggler race found by the model checker (lib/model): D casts M
   and crashes; M's only surviving copy is in flight toward C and lands
   *after* C has replied to the flush but *before* the new view
   installs. Per Section 5, C must ignore it ("the members ignore
   messages that they may receive from supposedly failed members") —
   otherwise C alone delivers M and virtual synchrony breaks. *)
let test_straggler_from_failed_member_ignored () =
  let world = mk_world () in
  let groups = spawn ~n:4 ~settle:3.0 world in
  let a, b, c, d = match groups with [ a; b; c; d ] -> (a, b, c, d) | _ -> assert false in
  let recs = List.map (fun gr -> let r = recorder () in watch r gr; r) [ a; b; c ] in
  let net = World.net world in
  let node gr = Addr.endpoint_id (Group.addr gr) in
  (* M will reach c in 50 ms and a/b effectively never; a's flush
     request to b dawdles so the flush stays open past M's arrival. *)
  Horus_sim.Net.set_link_latency net ~src:(node d) ~dst:(node a) (Some 100.0);
  Horus_sim.Net.set_link_latency net ~src:(node d) ~dst:(node b) (Some 100.0);
  Horus_sim.Net.set_link_latency net ~src:(node d) ~dst:(node c) (Some 0.05);
  Horus_sim.Net.set_link_latency net ~src:(node a) ~dst:(node b) (Some 0.08);
  Group.cast d "M";
  Endpoint.crash (Group.endpoint d);
  Group.suspect a [ Group.addr d ];
  World.run_for world ~duration:5.0;
  (* Nobody may deliver M: the only copy arrived post-reply at c. *)
  List.iteri
    (fun i r ->
       Alcotest.(check (list string)) (Printf.sprintf "survivor %d delivered nothing" i) []
         (casts_of r))
    recs;
  check_same_view "survivors agree" [ a; b; c ];
  Alcotest.(check int) "three members" 3
    (match Group.view a with Some v -> View.size v | None -> 0)

let test_straggler_before_reply_is_forwarded () =
  (* Control: if M reaches c *before* the flush reply, it is in c's
     reply and the coordinator forwards it — everyone delivers it. *)
  let world = mk_world () in
  let groups = spawn ~n:4 ~settle:3.0 world in
  let a, b, c, d = match groups with [ a; b; c; d ] -> (a, b, c, d) | _ -> assert false in
  let recs = List.map (fun gr -> let r = recorder () in watch r gr; r) [ a; b; c ] in
  let net = World.net world in
  let node gr = Addr.endpoint_id (Group.addr gr) in
  Horus_sim.Net.set_link_latency net ~src:(node d) ~dst:(node a) (Some 100.0);
  Horus_sim.Net.set_link_latency net ~src:(node d) ~dst:(node b) (Some 100.0);
  Horus_sim.Net.set_link_latency net ~src:(node d) ~dst:(node c) (Some 0.0001);
  Group.cast d "M";
  Endpoint.crash (Group.endpoint d);
  Group.suspect a [ Group.addr d ];
  World.run_for world ~duration:5.0;
  List.iteri
    (fun i r ->
       Alcotest.(check (list string)) (Printf.sprintf "survivor %d delivered M" i) [ "M" ]
         (casts_of r))
    recs;
  check_same_view "survivors agree" [ a; b; c ]

let test_leave_graceful () =
  let world = mk_world () in
  let groups = spawn ~n:3 world in
  let a, b, c = match groups with [ a; b; c ] -> (a, b, c) | _ -> assert false in
  Group.leave c;
  World.run_for world ~duration:2.0;
  Alcotest.(check bool) "leaver exited" true (Group.exited c);
  check_same_view "remaining agree" [ a; b ];
  match Group.view a with
  | Some v ->
    Alcotest.(check int) "two remain" 2 (View.size v);
    Alcotest.(check bool) "leaver gone" false (View.mem v (Group.addr c))
  | None -> Alcotest.fail "no view"

let test_coordinator_leaves () =
  let world = mk_world () in
  let groups = spawn ~n:3 world in
  let a, b, c = match groups with [ a; b; c ] -> (a, b, c) | _ -> assert false in
  Group.leave a;
  World.run_for world ~duration:2.0;
  Alcotest.(check bool) "coordinator exited" true (Group.exited a);
  check_same_view "remaining agree" [ b; c ];
  match Group.view b with
  | Some v ->
    Alcotest.(check int) "b coordinates now"
      (Addr.endpoint_id (Group.addr b))
      (Addr.endpoint_id (View.coordinator v))
  | None -> Alcotest.fail "no view"

let test_singleton_leave () =
  let world = mk_world () in
  let g = World.fresh_group_addr world in
  let a = Group.join (Endpoint.create world ~spec) g in
  World.run_for world ~duration:0.5;
  Group.leave a;
  World.run_for world ~duration:0.5;
  Alcotest.(check bool) "exited" true (Group.exited a)

let test_external_suspicion () =
  (* The external failure detector of Section 5: the application
     injects a suspicion; the membership layer must reconfigure even
     though the network-level detector saw nothing. *)
  let world = mk_world () in
  let groups = spawn ~n:3 world in
  let a, b, c = match groups with [ a; b; c ] -> (a, b, c) | _ -> assert false in
  (* Silence c first so it cannot protest its exclusion, then tell a. *)
  Endpoint.crash (Group.endpoint c);
  Group.suspect a [ Group.addr c ];
  World.run_for world ~duration:1.0;
  check_same_view "a and b agree quickly" [ a; b ];
  match Group.view a with
  | Some v -> Alcotest.(check int) "two members" 2 (View.size v)
  | None -> Alcotest.fail "no view"

let test_virtual_synchrony_under_traffic () =
  (* Continuous casting while a member crashes: every survivor must
     deliver exactly the same set of messages per epoch, with no gaps
     in any origin's sequence, and agree on the final view. *)
  let world = mk_world ~seed:21 () in
  let groups = spawn ~n:4 ~settle:3.0 world in
  let a, b, c, d = match groups with [ a; b; c; d ] -> (a, b, c, d) | _ -> assert false in
  let recs = List.map (fun gr -> let r = recorder () in watch r gr; r) [ a; b; c ] in
  (* a and b cast 30 messages each, 1ms apart; d dies in the middle. *)
  List.iteri
    (fun i gr ->
       for k = 0 to 29 do
         World.after world ~delay:(0.001 *. float_of_int k) (fun () ->
             Group.cast gr (Printf.sprintf "s%d-%02d" i k))
       done)
    [ a; b ];
  World.after world ~delay:0.015 (fun () -> Endpoint.crash (Group.endpoint d));
  World.run_for world ~duration:6.0;
  (* Survivors deliver identical ordered per-origin subsequences. *)
  let per_origin r prefix =
    List.filter (fun (p, _) -> String.length p > 2 && String.sub p 0 2 = prefix)
      (List.rev r.r_casts)
  in
  let r0 = List.hd recs in
  List.iteri
    (fun i r ->
       List.iter
         (fun prefix ->
            Alcotest.(check (list (pair string int)))
              (Printf.sprintf "survivor %d matches survivor 0 on %s (incl. epochs)" i prefix)
              (per_origin r0 prefix) (per_origin r prefix))
         [ "s0"; "s1" ])
    recs;
  (* Nothing lost: 30 messages from each caster. *)
  List.iteri
    (fun i r ->
       Alcotest.(check int) (Printf.sprintf "survivor %d: all of a's casts" i) 30
         (List.length (per_origin r "s0"));
       Alcotest.(check int) (Printf.sprintf "survivor %d: all of b's casts" i) 30
         (List.length (per_origin r "s1")))
    recs;
  check_same_view "final view agreed" [ a; b; c ]

let test_view_histories_consistent () =
  (* Views installed at different members must form consistent
     sequences: every (ltime, membership) pair seen by two members is
     identical. *)
  let world = mk_world () in
  let groups = spawn ~n:4 ~settle:3.0 world in
  (match groups with
   | _ :: _ :: _ :: d :: _ -> Endpoint.crash (Group.endpoint d)
   | _ -> assert false);
  World.run_for world ~duration:3.0;
  let survivors = List.filteri (fun i _ -> i < 3) groups in
  (* A view id is the (ltime, coordinator) pair: two members that both
     install a view with the same id must agree on its membership. *)
  let histories =
    List.map
      (fun gr ->
         List.map
           (fun v ->
              ( (View.ltime v, Addr.endpoint_id (View.coordinator v)),
                List.map Addr.endpoint_id (View.members v) ))
           (Group.views gr))
      survivors
  in
  List.iter
    (fun h ->
       List.iter
         (fun (id, ms) ->
            List.iter
              (fun h' ->
                 match List.assoc_opt id h' with
                 | Some ms' ->
                   Alcotest.(check (list int))
                     (Printf.sprintf "view (%d,%d) consistent" (fst id) (snd id))
                     ms ms'
                 | None -> ())
              histories)
         h)
    histories

let test_merge_two_partitions () =
  (* Two groups founded independently on the same group address, then
     explicitly merged by one coordinator. *)
  let world = mk_world () in
  let g = World.fresh_group_addr world in
  let a = Group.join (Endpoint.create world ~spec) g in
  World.run_for world ~duration:0.2;
  let b = Group.join ~contact:(Group.addr a) (Endpoint.create world ~spec) g in
  World.run_for world ~duration:1.0;
  let c = Group.join (Endpoint.create world ~spec) g in
  World.run_for world ~duration:0.2;
  let d = Group.join ~contact:(Group.addr c) (Endpoint.create world ~spec) g in
  World.run_for world ~duration:1.0;
  (* {a,b} and {c,d} exist side by side. *)
  Alcotest.(check int) "a+b pair" 2 (match Group.view a with Some v -> View.size v | None -> 0);
  Alcotest.(check int) "c+d pair" 2 (match Group.view c with Some v -> View.size v | None -> 0);
  (* c (younger coordinator) merges into a's partition. *)
  Group.merge c (Group.addr a);
  World.run_for world ~duration:3.0;
  check_same_view "union view" [ a; b; c; d ];
  match Group.view a with
  | Some v -> Alcotest.(check int) "four members" 4 (View.size v)
  | None -> Alcotest.fail "no view"

let test_partition_heal_remerge () =
  (* A real partition: the network splits a 4-member group 2/2, both
     sides reconfigure, the network heals, and an explicit merge
     reunites them. *)
  let world = mk_world ~seed:33 () in
  let groups = spawn ~n:4 ~settle:3.0 world in
  let a, b, c, d = match groups with [ a; b; c; d ] -> (a, b, c, d) | _ -> assert false in
  let n gr = Addr.endpoint_id (Group.addr gr) in
  Horus_sim.Net.partition (World.net world) [ [ n a; n b ]; [ n c; n d ] ];
  World.run_for world ~duration:4.0;
  (* Both sides installed their own 2-member views. *)
  check_same_view "side 1" [ a; b ];
  check_same_view "side 2" [ c; d ];
  Alcotest.(check int) "side1 size" 2
    (match Group.view a with Some v -> View.size v | None -> 0);
  Alcotest.(check int) "side2 size" 2
    (match Group.view c with Some v -> View.size v | None -> 0);
  Horus_sim.Net.heal (World.net world);
  World.run_for world ~duration:1.0;
  (* c coordinates its side; merge back into a's side. *)
  Group.merge c (Group.addr a);
  World.run_for world ~duration:4.0;
  check_same_view "healed union" [ a; b; c; d ];
  Alcotest.(check int) "four again" 4
    (match Group.view a with Some v -> View.size v | None -> 0)

(* Section 9: the Isis-style primary-partition progress restriction.
   Only the partition holding a strict majority of the previous view
   may install the next view; minority members halt (EXIT) and rejoin
   once connectivity returns. *)
let test_primary_partition_mode () =
  let pp_spec = "MBRSHIP(primary_partition=true):FRAG:NAK:COM" in
  let world = mk_world ~seed:51 () in
  let groups = spawn ~spec:pp_spec ~n:5 ~settle:4.0 world in
  let majority = List.filteri (fun i _ -> i < 3) groups in
  let minority = List.filteri (fun i _ -> i >= 3) groups in
  let n gr = Addr.endpoint_id (Group.addr gr) in
  Horus_sim.Net.partition (World.net world)
    [ List.map n majority; List.map n minority ];
  World.run_for world ~duration:4.0;
  (* The majority side reconfigures and continues... *)
  check_same_view "majority installs" majority;
  Alcotest.(check int) "majority of three" 3
    (match Group.view (List.hd majority) with Some v -> View.size v | None -> 0);
  (* ...the minority halts instead of forming a rival view. *)
  List.iteri
    (fun i gr ->
       Alcotest.(check bool) (Printf.sprintf "minority member %d exited" i) true
         (Group.exited gr))
    minority;
  (* Progress on the primary side is unaffected. *)
  Group.cast (List.hd majority) "primary only";
  World.run_for world ~duration:1.0;
  List.iter
    (fun gr ->
       Alcotest.(check bool) "primary delivers" true
         (List.mem "primary only" (Group.casts gr)))
    majority;
  (* Connectivity returns; the halted processes rejoin as fresh
     members. *)
  Horus_sim.Net.heal (World.net world);
  let reborn =
    List.map
      (fun gr ->
         Group.join ~contact:(Group.addr (List.hd majority))
           (Endpoint.create world ~spec:pp_spec) (Group.group gr))
      minority
  in
  World.run_for world ~duration:4.0;
  check_same_view "whole group reunited" (majority @ reborn);
  Alcotest.(check int) "five members again" 5
    (match Group.view (List.hd majority) with Some v -> View.size v | None -> 0)

let test_primary_partition_no_split_brain_in_pair () =
  (* With two members, neither side of a split is a strict majority:
     both must halt rather than risk divergence. *)
  let pp_spec = "MBRSHIP(primary_partition=true):FRAG:NAK:COM" in
  let world = mk_world ~seed:53 () in
  let groups = spawn ~spec:pp_spec ~n:2 ~settle:2.0 world in
  let a, b = match groups with [ a; b ] -> (a, b) | _ -> assert false in
  Horus_sim.Net.partition (World.net world)
    [ [ Addr.endpoint_id (Group.addr a) ]; [ Addr.endpoint_id (Group.addr b) ] ];
  World.run_for world ~duration:4.0;
  Alcotest.(check bool) "a halted" true (Group.exited a);
  Alcotest.(check bool) "b halted" true (Group.exited b)

let test_merge_grantor_dies_mid_merge () =
  (* The grantor accepts the merge and then dies before installing the
     union view. The requester is blocked in a flush toward a process
     outside its own view — only the merge-abort watchdog can free it;
     it must resume as a working singleton and report the failure. *)
  let world = mk_world ~seed:57 () in
  let g = World.fresh_group_addr world in
  let a = Group.join (Endpoint.create world ~spec) g in
  World.run_for world ~duration:0.3;
  (* Slow b->a so the requester's MERGE_READY never reaches a before
     the crash, leaving b stuck awaiting the union install. *)
  let b = Group.join ~contact:(Group.addr a) (Endpoint.create world ~spec:"MBRSHIP(merge_abort=1.0,merge_retry=0.3):FRAG:NAK:COM") g in
  Horus_sim.Net.set_link_latency (World.net world)
    ~src:(Addr.endpoint_id (Group.addr b))
    ~dst:(Addr.endpoint_id (Group.addr a))
    (Some 5.0);
  World.after world ~delay:0.05 (fun () -> Endpoint.crash (Group.endpoint a));
  World.run_for world ~duration:8.0;
  Alcotest.(check bool) "b told of the failed merge" true (Group.merge_denials b <> []);
  (match Group.view b with
   | Some v ->
     Alcotest.(check int) "b is a working singleton" 1 (View.size v);
     Alcotest.(check bool) "b's epoch advanced" true (View.ltime v > 0)
   | None -> Alcotest.fail "b has no view");
  (* ...and b still works. *)
  Group.cast b "alive";
  World.run_for world ~duration:1.0;
  Alcotest.(check bool) "b delivers to itself" true (List.mem "alive" (Group.casts b))

let test_merge_denied_by_application () =
  let world = mk_world () in
  let g = World.fresh_group_addr world in
  let a =
    Group.join ~auto_flush_ok:true (Endpoint.create world ~spec:"MBRSHIP(auto_merge=false):FRAG:NAK:COM") g
  in
  World.run_for world ~duration:0.2;
  (* a's application denies all merge requests. *)
  Group.set_on_up a (fun ev ->
      match ev with
      | Event.U_merge_request req -> Group.merge_denied a req
      | _ -> ());
  let b =
    Group.join ~contact:(Group.addr a)
      (Endpoint.create world ~spec:"MBRSHIP(auto_merge=false):FRAG:NAK:COM") g
  in
  World.run_for world ~duration:2.0;
  Alcotest.(check int) "a still singleton" 1
    (match Group.view a with Some v -> View.size v | None -> 0);
  Alcotest.(check int) "b still singleton" 1
    (match Group.view b with Some v -> View.size v | None -> 0);
  Alcotest.(check bool) "b told of denial" true (Group.merge_denials b <> [])

let test_no_delivery_after_exclusion () =
  (* Once the new view installs, casts from the failed member must not
     surface (COM filters, epochs protect). *)
  let world = mk_world () in
  let groups = spawn ~n:3 world in
  let a, b, c = match groups with [ a; b; c ] -> (a, b, c) | _ -> assert false in
  Endpoint.crash (Group.endpoint c);
  World.run_for world ~duration:3.0;
  Group.clear_deliveries a;
  Group.clear_deliveries b;
  (* Resurrect c's endpoint at the network level: its stack is dead,
     but even if it were not, its old-view traffic must be ignored.
     (The stack was killed at crash; this simply documents that nothing
     arrives.) *)
  Horus_sim.Net.recover (World.net world) ~node:(Addr.endpoint_id (Group.addr c));
  World.run_for world ~duration:1.0;
  Alcotest.(check int) "nothing from the dead at a" 0 (List.length (Group.deliveries a));
  Alcotest.(check int) "nothing from the dead at b" 0 (List.length (Group.deliveries b))

let test_scale_24_members () =
  (* A larger group: 24 members join one at a time, everyone agrees on
     the final view, multicast reaches all, and a crash reconfigures
     cleanly. *)
  let world = mk_world ~seed:99 () in
  let groups = spawn ~n:24 ~settle:6.0 world in
  check_same_view "24-member view" groups;
  Alcotest.(check int) "24 members" 24
    (match Group.view (List.hd groups) with Some v -> View.size v | None -> 0);
  Group.cast (List.hd groups) "hello, everyone";
  World.run_for world ~duration:2.0;
  List.iteri
    (fun i gr ->
       Alcotest.(check (list string)) (Printf.sprintf "member %d delivered" i)
         [ "hello, everyone" ] (Group.casts gr))
    groups;
  Endpoint.crash (Group.endpoint (List.nth groups 23));
  World.run_for world ~duration:4.0;
  let survivors = List.filteri (fun i _ -> i < 23) groups in
  check_same_view "23 survivors agree" survivors

let test_bms_views_without_forwarding () =
  (* BMS installs consistent views but does not forward unstable
     messages. *)
  let world = mk_world () in
  let bms_spec = "BMS:FRAG:NAK:COM" in
  let g = World.fresh_group_addr world in
  let a = Group.join (Endpoint.create world ~spec:bms_spec) g in
  World.run_for world ~duration:0.2;
  let b = Group.join ~contact:(Group.addr a) (Endpoint.create world ~spec:bms_spec) g in
  World.run_for world ~duration:1.0;
  check_same_view "bms pair" [ a; b ];
  Group.cast a "over-bms";
  World.run_for world ~duration:1.0;
  Alcotest.(check (list string)) "delivery works" [ "over-bms" ] (Group.casts b)

let () =
  Alcotest.run "mbrship"
    [ ( "membership",
        [ Alcotest.test_case "founder singleton" `Quick test_founder_singleton;
          Alcotest.test_case "join forms pair" `Quick test_join_forms_pair;
          Alcotest.test_case "sequential joins to 5" `Quick test_sequential_joins;
          Alcotest.test_case "coordinator is oldest" `Quick test_coordinator_is_oldest;
          Alcotest.test_case "concurrent joins" `Quick test_concurrent_joins;
          Alcotest.test_case "join during traffic" `Quick test_join_during_traffic ] );
      ( "delivery",
        [ Alcotest.test_case "casts reach all" `Quick test_casts_reach_all;
          Alcotest.test_case "all members cast" `Quick test_all_members_cast ] );
      ( "failures",
        [ Alcotest.test_case "crash installs new view" `Quick test_crash_installs_new_view;
          Alcotest.test_case "coordinator crash" `Quick test_coordinator_crash_recovery;
          Alcotest.test_case "double crash" `Quick test_double_crash;
          Alcotest.test_case "crash during flush" `Quick test_crash_during_flush;
          Alcotest.test_case "figure 2 scenario" `Quick test_figure2_flush;
          Alcotest.test_case "external suspicion" `Quick test_external_suspicion;
          Alcotest.test_case "no delivery after exclusion" `Quick
            test_no_delivery_after_exclusion;
          Alcotest.test_case "straggler ignored (model-checker race)" `Quick
            test_straggler_from_failed_member_ignored;
          Alcotest.test_case "straggler pre-reply forwarded" `Quick
            test_straggler_before_reply_is_forwarded ] );
      ( "leave",
        [ Alcotest.test_case "graceful leave" `Quick test_leave_graceful;
          Alcotest.test_case "coordinator leaves" `Quick test_coordinator_leaves;
          Alcotest.test_case "singleton leave" `Quick test_singleton_leave ] );
      ( "virtual synchrony",
        [ Alcotest.test_case "under traffic" `Quick test_virtual_synchrony_under_traffic;
          Alcotest.test_case "view histories consistent" `Quick
            test_view_histories_consistent ] );
      ( "partitions",
        [ Alcotest.test_case "primary-partition mode" `Quick test_primary_partition_mode;
          Alcotest.test_case "no split brain in a pair" `Quick
            test_primary_partition_no_split_brain_in_pair ] );
      ( "merge",
        [ Alcotest.test_case "two partitions" `Quick test_merge_two_partitions;
          Alcotest.test_case "partition, heal, remerge" `Quick test_partition_heal_remerge;
          Alcotest.test_case "denied by application" `Quick test_merge_denied_by_application;
          Alcotest.test_case "grantor dies mid-merge" `Quick test_merge_grantor_dies_mid_merge ] );
      ( "bms",
        [ Alcotest.test_case "views without forwarding" `Quick
            test_bms_views_without_forwarding ] );
      ( "scale",
        [ Alcotest.test_case "24 members" `Slow test_scale_24_members ] ) ]
