(* Tests for the discrete-event engine and the simulated network. *)

open Horus_sim

(* --- Engine --- *)

let test_engine_order () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:0.3 (fun () -> log := 3 :: !log));
  ignore (Engine.schedule e ~delay:0.1 (fun () -> log := 1 :: !log));
  ignore (Engine.schedule e ~delay:0.2 (fun () -> log := 2 :: !log));
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log)

let test_engine_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~delay:0.1 (fun () -> log := i :: !log))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "ties in scheduling order" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_time_advances () =
  let e = Engine.create () in
  let seen = ref 0.0 in
  ignore (Engine.schedule e ~delay:1.5 (fun () -> seen := Engine.now e));
  Engine.run e;
  Alcotest.(check (float 1e-9)) "now at event" 1.5 !seen;
  Alcotest.(check (float 1e-9)) "now after run" 1.5 (Engine.now e)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~delay:0.1 (fun () ->
         log := "a" :: !log;
         ignore (Engine.schedule e ~delay:0.1 (fun () -> log := "b" :: !log))));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "a"; "b" ] (List.rev !log)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~delay:0.1 (fun () -> fired := true) in
  Engine.cancel h;
  Engine.run e;
  Alcotest.(check bool) "cancelled not fired" false !fired

let test_engine_run_until () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> log := 1 :: !log));
  ignore (Engine.schedule e ~delay:2.0 (fun () -> log := 2 :: !log));
  Engine.run_until e ~time:1.5;
  Alcotest.(check (list int)) "only first" [ 1 ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at barrier" 1.5 (Engine.now e);
  Engine.run e;
  Alcotest.(check (list int)) "rest after" [ 1; 2 ] (List.rev !log)

let test_engine_budget () =
  let e = Engine.create () in
  let rec forever () = ignore (Engine.schedule e ~delay:0.001 forever) in
  forever ();
  Alcotest.check_raises "budget" (Engine.Budget_exhausted 100) (fun () ->
      Engine.run ~max_events:100 e)

let test_engine_past_rejected () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> ()));
  Engine.run e;
  Alcotest.(check bool) "past raises" true
    (try
       ignore (Engine.schedule_at e ~time:0.5 (fun () -> ()));
       false
     with Invalid_argument _ -> true)

(* --- Net --- *)

let mk ?config ?seed () =
  let e = Engine.create () in
  let net = Net.create ?config ?seed e in
  (e, net)

let attach_collect net node =
  let got = ref [] in
  Net.attach net ~node (fun ~src payload -> got := (src, Bytes.to_string payload) :: !got);
  got

let test_net_delivers () =
  let e, net = mk () in
  let got = attach_collect net 2 in
  Net.send net ~src:1 ~dst:2 (Bytes.of_string "hi");
  Engine.run e;
  Alcotest.(check (list (pair int string))) "delivered" [ (1, "hi") ] !got

let test_net_latency () =
  let e, net = mk ~config:{ Net.default_config with latency = 0.25 } () in
  let at = ref 0.0 in
  Net.attach net ~node:2 (fun ~src:_ _ -> at := Engine.now e);
  Net.send net ~src:1 ~dst:2 (Bytes.of_string "x");
  Engine.run e;
  Alcotest.(check (float 1e-9)) "arrives at latency" 0.25 !at

let test_net_fifo_without_jitter () =
  let e, net = mk () in
  let got = attach_collect net 2 in
  for i = 0 to 9 do
    Net.send net ~src:1 ~dst:2 (Bytes.of_string (string_of_int i))
  done;
  Engine.run e;
  Alcotest.(check (list string)) "in order"
    (List.init 10 string_of_int)
    (List.rev_map snd !got)

let test_net_drop_all () =
  let e, net = mk ~config:{ Net.default_config with drop_prob = 1.0 } () in
  let got = attach_collect net 2 in
  Net.send net ~src:1 ~dst:2 (Bytes.of_string "x");
  Engine.run e;
  Alcotest.(check int) "nothing delivered" 0 (List.length !got);
  Alcotest.(check int) "counted dropped" 1 (Net.stats net).Net.dropped

let test_net_drop_statistics () =
  let e, net = mk ~config:{ Net.default_config with drop_prob = 0.5 } ~seed:123 () in
  let got = attach_collect net 2 in
  for _ = 1 to 1000 do
    Net.send net ~src:1 ~dst:2 (Bytes.of_string "x")
  done;
  Engine.run e;
  let n = List.length !got in
  Alcotest.(check bool) "roughly half" true (n > 400 && n < 600)

let test_net_crash () =
  let e, net = mk () in
  let got = attach_collect net 2 in
  Net.crash net ~node:2;
  Net.send net ~src:1 ~dst:2 (Bytes.of_string "x");
  Engine.run e;
  Alcotest.(check int) "crashed node gets nothing" 0 (List.length !got);
  Net.recover net ~node:2;
  Net.send net ~src:1 ~dst:2 (Bytes.of_string "y");
  Engine.run e;
  Alcotest.(check int) "recovered node receives" 1 (List.length !got)

let test_net_crashed_source () =
  let e, net = mk () in
  let got = attach_collect net 2 in
  Net.crash net ~node:1;
  Net.send net ~src:1 ~dst:2 (Bytes.of_string "x");
  Engine.run e;
  Alcotest.(check int) "crashed source sends nothing" 0 (List.length !got)

let test_net_partition () =
  let e, net = mk () in
  let got2 = attach_collect net 2 in
  let got3 = attach_collect net 3 in
  Net.partition net [ [ 1; 2 ]; [ 3 ] ];
  Net.send net ~src:1 ~dst:2 (Bytes.of_string "same side");
  Net.send net ~src:1 ~dst:3 (Bytes.of_string "other side");
  Engine.run e;
  Alcotest.(check int) "same partition delivered" 1 (List.length !got2);
  Alcotest.(check int) "cross partition dropped" 0 (List.length !got3);
  Net.heal net;
  Net.send net ~src:1 ~dst:3 (Bytes.of_string "after heal");
  Engine.run e;
  Alcotest.(check int) "healed" 1 (List.length !got3)

let test_net_partition_cut_in_flight () =
  (* A packet in flight when the partition forms is dropped at delivery
     time. *)
  let e, net = mk ~config:{ Net.default_config with latency = 1.0 } () in
  let got = attach_collect net 2 in
  Net.send net ~src:1 ~dst:2 (Bytes.of_string "x");
  ignore (Engine.schedule e ~delay:0.5 (fun () -> Net.partition net [ [ 1 ]; [ 2 ] ]));
  Engine.run e;
  Alcotest.(check int) "in-flight packet cut" 0 (List.length !got)

let test_net_garble () =
  let e, net = mk ~config:{ Net.default_config with garble_prob = 1.0 } () in
  let got = attach_collect net 2 in
  Net.send net ~src:1 ~dst:2 (Bytes.of_string "abcdef");
  Engine.run e;
  match !got with
  | [ (_, s) ] ->
    Alcotest.(check int) "same length" 6 (String.length s);
    Alcotest.(check bool) "content differs" true (s <> "abcdef")
  | _ -> Alcotest.fail "expected one delivery"

let test_net_duplicate () =
  let e, net = mk ~config:{ Net.default_config with duplicate_prob = 1.0 } () in
  let got = attach_collect net 2 in
  Net.send net ~src:1 ~dst:2 (Bytes.of_string "x");
  Engine.run e;
  Alcotest.(check int) "delivered twice" 2 (List.length !got)

let test_net_mtu () =
  let e, net = mk ~config:{ Net.default_config with mtu = 4 } () in
  let got = attach_collect net 2 in
  Net.send net ~src:1 ~dst:2 (Bytes.of_string "12345");
  Net.send net ~src:1 ~dst:2 (Bytes.of_string "1234");
  Engine.run e;
  Alcotest.(check (list string)) "only small one" [ "1234" ] (List.map snd !got);
  Alcotest.(check int) "oversize counted" 1 (Net.stats net).Net.oversize

let test_net_jitter_reorders () =
  let e, net = mk ~config:{ Net.default_config with latency = 0.001; jitter = 0.01 } ~seed:5 () in
  let got = attach_collect net 2 in
  for i = 0 to 49 do
    Net.send net ~src:1 ~dst:2 (Bytes.of_string (string_of_int i))
  done;
  Engine.run e;
  let order = List.rev_map snd !got in
  Alcotest.(check int) "all delivered" 50 (List.length order);
  Alcotest.(check bool) "reordered" true (order <> List.init 50 string_of_int)

let test_net_detach () =
  let e, net = mk () in
  let got = attach_collect net 2 in
  Net.detach net ~node:2;
  Net.send net ~src:1 ~dst:2 (Bytes.of_string "x");
  Engine.run e;
  Alcotest.(check int) "detached gets nothing" 0 (List.length !got)

(* --- Trace --- *)

let test_trace_records () =
  let tr = Trace.create () in
  Trace.record tr ~time:1.0 ~category:"a" "one";
  Trace.record tr ~time:2.0 ~category:"b" "two";
  Alcotest.(check int) "count" 2 (Trace.count tr);
  Alcotest.(check int) "filter" 1 (List.length (Trace.find tr ~category:"a"))

let test_trace_limit () =
  let tr = Trace.create ~limit:3 () in
  for i = 1 to 10 do
    Trace.record tr ~time:(float_of_int i) ~category:"x" "y"
  done;
  Alcotest.(check int) "bounded" 3 (Trace.count tr)

let () =
  Alcotest.run "sim"
    [ ( "engine",
        [ Alcotest.test_case "time order" `Quick test_engine_order;
          Alcotest.test_case "FIFO ties" `Quick test_engine_fifo_ties;
          Alcotest.test_case "time advances" `Quick test_engine_time_advances;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "run_until" `Quick test_engine_run_until;
          Alcotest.test_case "budget guard" `Quick test_engine_budget;
          Alcotest.test_case "past rejected" `Quick test_engine_past_rejected ] );
      ( "net",
        [ Alcotest.test_case "delivers" `Quick test_net_delivers;
          Alcotest.test_case "latency" `Quick test_net_latency;
          Alcotest.test_case "FIFO without jitter" `Quick test_net_fifo_without_jitter;
          Alcotest.test_case "drop all" `Quick test_net_drop_all;
          Alcotest.test_case "drop statistics" `Quick test_net_drop_statistics;
          Alcotest.test_case "crash" `Quick test_net_crash;
          Alcotest.test_case "crashed source" `Quick test_net_crashed_source;
          Alcotest.test_case "partition" `Quick test_net_partition;
          Alcotest.test_case "partition cuts in-flight" `Quick test_net_partition_cut_in_flight;
          Alcotest.test_case "garble" `Quick test_net_garble;
          Alcotest.test_case "duplicate" `Quick test_net_duplicate;
          Alcotest.test_case "mtu" `Quick test_net_mtu;
          Alcotest.test_case "jitter reorders" `Quick test_net_jitter_reorders;
          Alcotest.test_case "detach" `Quick test_net_detach ] );
      ( "trace",
        [ Alcotest.test_case "records" `Quick test_trace_records;
          Alcotest.test_case "limit" `Quick test_trace_limit ] ) ]
