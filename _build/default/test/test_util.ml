(* Tests for the utility substrate: PRNG, heap, bitset, checksum. *)

open Horus_util

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  Alcotest.(check bool) "different seeds differ" true (Prng.next_int64 a <> Prng.next_int64 b)

let test_prng_int_range () =
  let t = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int t 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done

let test_prng_float_range () =
  let t = Prng.create 9 in
  for _ = 1 to 1000 do
    let v = Prng.float t 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_prng_chance_extremes () =
  let t = Prng.create 3 in
  Alcotest.(check bool) "p=0 never" false (Prng.chance t 0.0);
  Alcotest.(check bool) "p=1 always" true (Prng.chance t 1.0)

let test_prng_copy_independent () =
  let a = Prng.create 5 in
  let _ = Prng.next_int64 a in
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.next_int64 a) (Prng.next_int64 b)

let test_prng_exponential_positive () =
  let t = Prng.create 11 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "positive" true (Prng.exponential t ~mean:0.01 > 0.0)
  done

let test_prng_shuffle_permutation () =
  let t = Prng.create 13 in
  let arr = Array.init 50 (fun i -> i) in
  Prng.shuffle_in_place t arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

(* --- Heap --- *)

let test_heap_sorts () =
  let h = Heap.create ~compare:Int.compare in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2; 7 ];
  let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 5; 7; 8; 9 ] (drain [])

let test_heap_empty () =
  let h = Heap.create ~compare:Int.compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h);
  Alcotest.(check (option int)) "peek empty" None (Heap.peek h)

let test_heap_peek_does_not_remove () =
  let h = Heap.create ~compare:Int.compare in
  Heap.push h 4;
  Alcotest.(check (option int)) "peek" (Some 4) (Heap.peek h);
  Alcotest.(check int) "still there" 1 (Heap.length h)

let test_heap_duplicates () =
  let h = Heap.create ~compare:Int.compare in
  List.iter (Heap.push h) [ 2; 2; 1; 2 ];
  let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
  Alcotest.(check (list int)) "dups kept" [ 1; 2; 2; 2 ] (drain [])

let prop_heap_sorts_random =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:300
    QCheck.(list int)
    (fun l ->
       let h = Heap.create ~compare:Int.compare in
       List.iter (Heap.push h) l;
       let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
       drain [] = List.sort Int.compare l)

(* --- Bitset --- *)

let test_bitset_basics () =
  let s = Bitset.of_list [ 0; 3; 7 ] in
  Alcotest.(check bool) "mem 3" true (Bitset.mem s 3);
  Alcotest.(check bool) "mem 1" false (Bitset.mem s 1);
  Alcotest.(check int) "cardinal" 3 (Bitset.cardinal s);
  Alcotest.(check (list int)) "to_list sorted" [ 0; 3; 7 ] (Bitset.to_list s)

let test_bitset_ops () =
  let a = Bitset.of_list [ 1; 2; 3 ] and b = Bitset.of_list [ 3; 4 ] in
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ] (Bitset.to_list (Bitset.union a b));
  Alcotest.(check (list int)) "inter" [ 3 ] (Bitset.to_list (Bitset.inter a b));
  Alcotest.(check (list int)) "diff" [ 1; 2 ] (Bitset.to_list (Bitset.diff a b));
  Alcotest.(check bool) "subset yes" true (Bitset.subset (Bitset.of_list [ 1; 2 ]) a);
  Alcotest.(check bool) "subset no" false (Bitset.subset b a)

let test_bitset_remove () =
  let s = Bitset.remove (Bitset.of_list [ 1; 2 ]) 1 in
  Alcotest.(check (list int)) "removed" [ 2 ] (Bitset.to_list s);
  Alcotest.(check (list int)) "remove absent is noop" [ 2 ] (Bitset.to_list (Bitset.remove s 5))

let prop_bitset_roundtrip =
  QCheck.Test.make ~name:"bitset of_list/to_list" ~count:300
    QCheck.(list (int_range 0 61))
    (fun l ->
       let dedup = List.sort_uniq Int.compare l in
       Bitset.to_list (Bitset.of_list l) = dedup)

(* --- Crc --- *)

let test_crc_deterministic () =
  Alcotest.(check int64) "same input same hash" (Crc.checksum_string "hello world")
    (Crc.checksum_string "hello world")

let test_crc_sensitivity () =
  Alcotest.(check bool) "one-bit change detected" true
    (Crc.checksum_string "hello world" <> Crc.checksum_string "hello worle")

let test_mac_key_dependent () =
  let data = Bytes.of_string "payload" in
  let m1 = Crc.mac ~key:"k1" data ~off:0 ~len:7 in
  let m2 = Crc.mac ~key:"k2" data ~off:0 ~len:7 in
  Alcotest.(check bool) "different keys differ" true (m1 <> m2)

let test_crc_range () =
  let b = Bytes.of_string "abcdef" in
  Alcotest.(check int64) "subrange equals standalone"
    (Crc.checksum_string "cde")
    (Crc.checksum b ~off:2 ~len:3)

let prop_crc_detects_byte_flips =
  QCheck.Test.make ~name:"checksum detects single byte flips" ~count:300
    QCheck.(pair (string_of_size Gen.(1 -- 64)) (pair small_nat small_nat))
    (fun (s, (pos, delta)) ->
       let pos = pos mod String.length s in
       let delta = 1 + (delta mod 255) in
       let b = Bytes.of_string s in
       Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor delta));
       Crc.checksum_string s <> Crc.checksum_string (Bytes.to_string b))

let () =
  Alcotest.run "util"
    [ ( "prng",
        [ Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int range" `Quick test_prng_int_range;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "chance extremes" `Quick test_prng_chance_extremes;
          Alcotest.test_case "copy independent" `Quick test_prng_copy_independent;
          Alcotest.test_case "exponential positive" `Quick test_prng_exponential_positive;
          Alcotest.test_case "shuffle is permutation" `Quick test_prng_shuffle_permutation ] );
      ( "heap",
        [ Alcotest.test_case "sorts" `Quick test_heap_sorts;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "peek" `Quick test_heap_peek_does_not_remove;
          Alcotest.test_case "duplicates" `Quick test_heap_duplicates;
          QCheck_alcotest.to_alcotest prop_heap_sorts_random ] );
      ( "bitset",
        [ Alcotest.test_case "basics" `Quick test_bitset_basics;
          Alcotest.test_case "set operations" `Quick test_bitset_ops;
          Alcotest.test_case "remove" `Quick test_bitset_remove;
          QCheck_alcotest.to_alcotest prop_bitset_roundtrip ] );
      ( "crc",
        [ Alcotest.test_case "deterministic" `Quick test_crc_deterministic;
          Alcotest.test_case "sensitivity" `Quick test_crc_sensitivity;
          Alcotest.test_case "mac key dependent" `Quick test_mac_key_dependent;
          Alcotest.test_case "subrange" `Quick test_crc_range;
          QCheck_alcotest.to_alcotest prop_crc_detects_byte_flips ] ) ]
