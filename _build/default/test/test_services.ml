(* Tests for the service layers rounding out Figure 1's protocol-type
   table: LOG (total-crash recovery), CLOCKSYNC, DEADLINE (real-time),
   ACCOUNT, and the RPC facility. *)

open Horus

let vs = "MBRSHIP:FRAG:NAK:COM"

let spawn ?(spec = vs) ?(n = 2) ?(settle = 2.0) world =
  let g = World.fresh_group_addr world in
  let founder = Group.join (Endpoint.create world ~spec) g in
  World.run_for world ~duration:0.2;
  let rest =
    List.init (n - 1) (fun _ ->
        let m = Group.join ~contact:(Group.addr founder) (Endpoint.create world ~spec) g in
        World.run_for world ~duration:0.5;
        m)
  in
  World.run_for world ~duration:settle;
  (g, founder :: rest)

(* --- LOG: tolerance of total crash failures --- *)

let test_log_total_crash_recovery () =
  let world = World.create ~seed:7 () in
  (* The log name is a per-process recovery identity: each process logs
     under its own name and a restarted process reuses it. *)
  let g = World.fresh_group_addr world in
  let a = Group.join (Endpoint.create world ~spec:("LOG(name=proc-a):" ^ vs)) g in
  World.run_for world ~duration:0.3;
  let b =
    Group.join ~contact:(Group.addr a)
      (Endpoint.create world ~spec:("LOG(name=proc-b):" ^ vs)) g
  in
  World.run_for world ~duration:1.5;
  let history = [ "credit 100"; "debit 30"; "credit 7" ] in
  List.iter (Group.cast a) history;
  World.run_for world ~duration:1.0;
  Alcotest.(check (list string)) "b processed the history" history (Group.casts b);
  (* Total failure: every member crashes. *)
  Endpoint.crash (Group.endpoint a);
  Endpoint.crash (Group.endpoint b);
  World.run_for world ~duration:1.0;
  (* Process a restarts under its old name and recovers the full
     history from stable storage before any live traffic. *)
  let phoenix = Group.join (Endpoint.create world ~spec:("LOG(name=proc-a):" ^ vs)) g in
  World.run_for world ~duration:1.0;
  Alcotest.(check (list string)) "history replayed after total crash" history
    (Group.casts phoenix);
  (* Replayed deliveries are marked so applications can tell them from
     live traffic. *)
  List.iter
    (fun d ->
       Alcotest.(check (option int)) "marked as replayed" (Some 1)
         (Event.meta_find d.Group.meta "replayed"))
    (Group.deliveries phoenix)

let test_log_no_replay_when_disabled () =
  let world = World.create ~seed:7 () in
  let spec = "LOG(name=quiet,replay=false):" ^ vs in
  let g, members = spawn ~spec ~n:1 world in
  let a = List.hd members in
  Group.cast a "recorded";
  World.run_for world ~duration:1.0;
  Endpoint.crash (Group.endpoint a);
  let phoenix =
    Group.join (Endpoint.create world ~spec:("LOG(name=quiet,replay=false):" ^ vs)) g
  in
  World.run_for world ~duration:1.0;
  Alcotest.(check (list string)) "no replay" [] (Group.casts phoenix)

(* --- CLOCKSYNC --- *)

let parse_field ~key line =
  match String.index_opt line '=' with
  | _ ->
    let klen = String.length key in
    let rec find i =
      if i + klen > String.length line then None
      else if String.sub line i klen = key then begin
        let j = ref (i + klen) in
        while
          !j < String.length line
          && (match line.[!j] with '0' .. '9' | '.' | '-' | '+' -> true | _ -> false)
        do
          incr j
        done;
        float_of_string_opt (String.sub line (i + klen) (!j - i - klen))
      end
      else find (i + 1)
    in
    find 0

let clock_offset gr =
  match Group.focus gr "CLOCKSYNC" with
  | None -> None
  | Some inst ->
    List.find_map (fun line -> parse_field ~key:"offset=" line) (inst.Horus_hcpi.Layer.dump ())

let test_clocksync_converges () =
  let world = World.create ~seed:9 () in
  let g = World.fresh_group_addr world in
  (* Coordinator's clock runs 0.5 s fast; the member's 0.3 s slow. *)
  let a =
    Group.join (Endpoint.create world ~spec:("CLOCKSYNC(skew=0.5):" ^ vs)) g
  in
  World.run_for world ~duration:0.3;
  let b =
    Group.join ~contact:(Group.addr a)
      (Endpoint.create world ~spec:("CLOCKSYNC(skew=-0.3):" ^ vs)) g
  in
  World.run_for world ~duration:2.0;
  match clock_offset b with
  | Some off ->
    (* b must correct by ~+0.8 s, within a round trip (~1 ms here). *)
    Alcotest.(check bool) (Printf.sprintf "offset %.4f ~ 0.8" off) true
      (Float.abs (off -. 0.8) < 0.005)
  | None -> Alcotest.fail "no offset reported"

let test_clocksync_stamps_deliveries () =
  let world = World.create ~seed:9 () in
  let g = World.fresh_group_addr world in
  let a = Group.join (Endpoint.create world ~spec:("CLOCKSYNC(skew=0.2):" ^ vs)) g in
  World.run_for world ~duration:0.3;
  let b =
    Group.join ~contact:(Group.addr a)
      (Endpoint.create world ~spec:("CLOCKSYNC(skew=-0.2):" ^ vs)) g
  in
  World.run_for world ~duration:1.5;
  Group.cast a "tick";
  World.run_for world ~duration:0.5;
  match (Group.deliveries a, Group.deliveries b) with
  | [ da ], [ db ] ->
    (match (Event.meta_find da.Group.meta "clock_ms", Event.meta_find db.Group.meta "clock_ms") with
     | Some ta, Some tb ->
       (* Both stamps are on the coordinator's clock, so they must be
          within a few milliseconds despite 0.4 s of true skew. *)
       Alcotest.(check bool)
         (Printf.sprintf "synchronized stamps %d ~ %d" ta tb)
         true
         (abs (ta - tb) < 20)
     | _ -> Alcotest.fail "missing clock stamps")
  | _ -> Alcotest.fail "expected one delivery each"

(* --- DEADLINE --- *)

let test_deadline_fresh_pass () =
  let world = World.create () in
  let _g, members = spawn ~spec:("DEADLINE(budget=0.05):" ^ vs) ~n:2 world in
  let a, b = match members with [ a; b ] -> (a, b) | _ -> assert false in
  Group.cast a "fresh";
  World.run_for world ~duration:0.5;
  Alcotest.(check (list string)) "fresh delivered" [ "fresh" ] (Group.casts b);
  match Group.deliveries b with
  | [ d ] ->
    (match Event.meta_find d.Group.meta "age_us" with
     | Some age -> Alcotest.(check bool) "age measured" true (age >= 0 && age < 50_000)
     | None -> Alcotest.fail "no age tag")
  | _ -> Alcotest.fail "one delivery expected"

let test_deadline_stale_dropped () =
  let world = World.create () in
  let _g, members = spawn ~spec:("DEADLINE(budget=0.01):" ^ vs) ~n:2 world in
  let a, b = match members with [ a; b ] -> (a, b) | _ -> assert false in
  (* Slow the link so the cast arrives 50 ms old against a 10 ms
     budget. *)
  Horus_sim.Net.set_link_latency (World.net world)
    ~src:(Addr.endpoint_id (Group.addr a))
    ~dst:(Addr.endpoint_id (Group.addr b))
    (Some 0.05);
  Group.cast a "stale";
  World.run_for world ~duration:0.3;
  Alcotest.(check (list string)) "stale dropped" [] (Group.casts b);
  Alcotest.(check int) "reported as lost" 1 (Group.lost_messages b);
  (* Loopback at the sender is immediate, so it passes. *)
  Alcotest.(check (list string)) "sender's own copy fresh" [ "stale" ] (Group.casts a)

(* --- ACCOUNT --- *)

let test_account_ledger () =
  let world = World.create () in
  let _g, members = spawn ~spec:("ACCOUNT:" ^ vs) ~n:2 world in
  let a, b = match members with [ a; b ] -> (a, b) | _ -> assert false in
  Group.cast a "xxxx";
  Group.cast a "yyyyyyyy";
  World.run_for world ~duration:0.5;
  match Group.focus b "ACCOUNT" with
  | None -> Alcotest.fail "no ACCOUNT layer"
  | Some inst ->
    let dump = inst.Horus_hcpi.Layer.dump () in
    let from_a =
      List.find_opt
        (fun line ->
           String.length line > 7
           && String.sub line 0 7 = Printf.sprintf "from e%d" (Addr.endpoint_id (Group.addr a)))
        dump
    in
    (match from_a with
     | Some line ->
       Alcotest.(check (option (float 0.01))) "two messages from a" (Some 2.0)
         (parse_field ~key:"msgs=" line);
       Alcotest.(check (option (float 0.01))) "twelve bytes from a" (Some 12.0)
         (parse_field ~key:"bytes=" line)
     | None -> Alcotest.failf "no ledger line for a in: %s" (String.concat " | " dump))

(* --- RPC --- *)

let test_rpc_roundtrip () =
  let world = World.create () in
  let _g, members = spawn ~n:2 world in
  let a, b = match members with [ a; b ] -> (a, b) | _ -> assert false in
  let client = Rpc.attach a in
  let _server =
    Rpc.attach ~handler:(fun ~rank:_ payload -> "echo:" ^ payload) b
  in
  let result = ref None in
  Rpc.call client ~server:(Group.addr b) "ping" (fun o -> result := Some o);
  World.run_for world ~duration:0.5;
  (match !result with
   | Some (`Reply r) -> Alcotest.(check string) "echoed" "echo:ping" r
   | Some `Timeout -> Alcotest.fail "timed out"
   | None -> Alcotest.fail "no outcome")

let test_rpc_concurrent_calls_correlate () =
  let world = World.create () in
  let _g, members = spawn ~n:2 world in
  let a, b = match members with [ a; b ] -> (a, b) | _ -> assert false in
  let client = Rpc.attach a in
  let _server = Rpc.attach ~handler:(fun ~rank:_ p -> "r-" ^ p) b in
  let results = Array.make 10 "" in
  for i = 0 to 9 do
    Rpc.call client ~server:(Group.addr b) (string_of_int i) (fun o ->
        match o with `Reply r -> results.(i) <- r | `Timeout -> results.(i) <- "timeout")
  done;
  World.run_for world ~duration:1.0;
  Array.iteri
    (fun i r -> Alcotest.(check string) "correlated" (Printf.sprintf "r-%d" i) r)
    results

let test_rpc_timeout_on_crashed_server () =
  let world = World.create () in
  let _g, members = spawn ~n:2 world in
  let a, b = match members with [ a; b ] -> (a, b) | _ -> assert false in
  let client = Rpc.attach a in
  let _server = Rpc.attach ~handler:(fun ~rank:_ _ -> "never") b in
  Endpoint.crash (Group.endpoint b);
  let result = ref None in
  Rpc.call ~timeout:0.3 client ~server:(Group.addr b) "hello?" (fun o -> result := Some o);
  World.run_for world ~duration:1.0;
  match !result with
  | Some `Timeout -> ()
  | Some (`Reply r) -> Alcotest.failf "dead server replied %S" r
  | None -> Alcotest.fail "no outcome"

(* --- State transfer --- *)

let test_state_transfer_on_join () =
  let world = World.create ~seed:71 () in
  let g = World.fresh_group_addr world in
  let make () =
    let counter = ref 0 in
    let group_holder = ref None in
    let on_up (ev : Event.up) =
      match ev with
      | Event.U_cast (_, m, _) when Msg.to_string m = "bump" -> incr counter
      | _ -> ()
    in
    (counter, group_holder, on_up)
  in
  let c_a, _, on_up_a = make () in
  let a = Group.join ~on_up:on_up_a (Endpoint.create world ~spec:vs) g in
  let _st_a =
    State_transfer.attach
      ~get:(fun () -> string_of_int !c_a)
      ~set:(fun s -> c_a := int_of_string s)
      ~on_up:on_up_a a
  in
  World.run_for world ~duration:0.5;
  (* Build up state before anyone joins. *)
  for _ = 1 to 7 do
    Group.cast a "bump"
  done;
  World.run_for world ~duration:1.0;
  Alcotest.(check int) "a's state built" 7 !c_a;
  (* A fresh member joins; it must receive the snapshot automatically. *)
  let c_b, _, on_up_b = make () in
  let b = Group.join ~on_up:on_up_b ~contact:(Group.addr a) (Endpoint.create world ~spec:vs) g in
  let st_b =
    State_transfer.attach
      ~get:(fun () -> string_of_int !c_b)
      ~set:(fun s -> c_b := int_of_string s)
      ~on_up:on_up_b b
  in
  World.run_for world ~duration:2.0;
  Alcotest.(check int) "b received the snapshot" 7 !c_b;
  Alcotest.(check (pair int int)) "one transfer received" (0, 1) (State_transfer.stats st_b);
  (* Post-join traffic keeps both in sync. *)
  Group.cast a "bump";
  Group.cast b "bump";
  World.run_for world ~duration:1.0;
  Alcotest.(check int) "a at 9" 9 !c_a;
  Alcotest.(check int) "b at 9" 9 !c_b

let () =
  Alcotest.run "services"
    [ ( "log",
        [ Alcotest.test_case "total crash recovery" `Quick test_log_total_crash_recovery;
          Alcotest.test_case "replay disabled" `Quick test_log_no_replay_when_disabled ] );
      ( "clocksync",
        [ Alcotest.test_case "converges" `Quick test_clocksync_converges;
          Alcotest.test_case "synchronized stamps" `Quick test_clocksync_stamps_deliveries ] );
      ( "deadline",
        [ Alcotest.test_case "fresh pass" `Quick test_deadline_fresh_pass;
          Alcotest.test_case "stale dropped" `Quick test_deadline_stale_dropped ] );
      ( "account",
        [ Alcotest.test_case "ledger" `Quick test_account_ledger ] );
      ( "state transfer",
        [ Alcotest.test_case "snapshot on join" `Quick test_state_transfer_on_join ] );
      ( "rpc",
        [ Alcotest.test_case "roundtrip" `Quick test_rpc_roundtrip;
          Alcotest.test_case "concurrent correlation" `Quick
            test_rpc_concurrent_calls_correlate;
          Alcotest.test_case "timeout on crash" `Quick test_rpc_timeout_on_crashed_server ] ) ]
