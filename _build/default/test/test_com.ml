(* Integration tests for the COM bottom layer and the stack plumbing,
   through the public API. *)

open Horus

let default_settle = 0.1

let mk_pair ?(spec = "COM") ?(config = Horus_sim.Net.default_config) () =
  let world = World.create ~config () in
  let g = World.fresh_group_addr world in
  let a = Group.join (Endpoint.create world ~spec) g in
  let b = Group.join ~contact:(Group.addr a) (Endpoint.create world ~spec) g in
  (* COM fabricates pairwise views from the join contact; install the
     symmetric dest set at the founder too. *)
  let v =
    View.create ~group:g ~ltime:0
      ~members:(List.sort Addr.compare_endpoint [ Group.addr a; Group.addr b ])
  in
  Group.install_view a v;
  Group.install_view b v;
  (world, a, b)

let test_cast_delivers () =
  let world, a, b = mk_pair () in
  Group.cast a "hello";
  World.run_for world ~duration:default_settle;
  Alcotest.(check (list string)) "b got it" [ "hello" ] (Group.casts b);
  Alcotest.(check (list string)) "a loopback" [ "hello" ] (Group.casts a)

let test_cast_ranks () =
  let world, a, b = mk_pair () in
  Group.cast a "from a";
  World.run_for world ~duration:default_settle;
  match Group.deliveries b with
  | [ d ] ->
    let rank_a =
      match Group.view b with
      | Some v -> Option.get (View.rank_of v (Group.addr a))
      | None -> Alcotest.fail "no view at b"
    in
    Alcotest.(check int) "source rank" rank_a d.Group.rank;
    Alcotest.(check bool) "src_eid meta" true
      (Event.meta_find d.Group.meta "src_eid" = Some (Addr.endpoint_id (Group.addr a)))
  | ds -> Alcotest.failf "expected 1 delivery, got %d" (List.length ds)

let test_send_subset () =
  let world, a, b = mk_pair () in
  Group.send a [ Group.addr b ] "direct";
  World.run_for world ~duration:default_settle;
  Alcotest.(check int) "b got send" 1 (List.length (Group.deliveries b));
  Alcotest.(check int) "a got nothing" 0 (List.length (Group.deliveries a));
  match Group.deliveries b with
  | [ d ] -> Alcotest.(check bool) "kind send" true (d.Group.kind = `Send)
  | _ -> Alcotest.fail "expected one"

let test_no_loopback_without_self_in_send () =
  let world, a, b = mk_pair () in
  Group.send a [ Group.addr a; Group.addr b ] "both";
  World.run_for world ~duration:default_settle;
  Alcotest.(check int) "a loopback send" 1 (List.length (Group.deliveries a));
  Alcotest.(check int) "b send" 1 (List.length (Group.deliveries b))

let test_filter_spurious_cast () =
  (* c is not in the (a,b) dest set; its casts must be filtered. *)
  let world, a, b = mk_pair () in
  let g = Group.group a in
  let c = Group.join (Endpoint.create world ~spec:"COM") g in
  let v_abc =
    View.create ~group:g ~ltime:1
      ~members:(List.sort Addr.compare_endpoint [ Group.addr a; Group.addr b; Group.addr c ])
  in
  (* c believes it is in a 3-member group, but a and b keep the pair
     view, so c's casts reach them as spurious. *)
  Group.install_view c v_abc;
  Group.cast c "intruder";
  World.run_for world ~duration:default_settle;
  Alcotest.(check int) "a filtered" 0 (List.length (Group.deliveries a));
  Alcotest.(check int) "b filtered" 0 (List.length (Group.deliveries b))

let test_garbled_envelope_rejected () =
  let config = { Horus_sim.Net.default_config with garble_prob = 1.0 } in
  let world, a, b = mk_pair ~config () in
  Group.cast a "junk on the wire";
  World.run_for world ~duration:default_settle;
  (* Loopback at a does not cross the net, so a still sees its own
     cast; b sees either nothing (envelope check fired) or, rarely, a
     message whose flipped byte hit the payload only. The envelope
     check must at least never crash the stack, and the payload byte
     flip case keeps the length. *)
  List.iter
    (fun p -> Alcotest.(check int) "length preserved" 16 (String.length p))
    (Group.casts b);
  Alcotest.(check (list string)) "loopback intact" [ "junk on the wire" ] (Group.casts a)

let test_view_install_changes_dests () =
  let world, a, b = mk_pair () in
  (* Shrink a's dest set to itself; b no longer receives. *)
  let g = Group.group a in
  let v_self = View.create ~group:g ~ltime:2 ~members:[ Group.addr a ] in
  Group.install_view a v_self;
  Group.cast a "only me";
  World.run_for world ~duration:default_settle;
  Alcotest.(check int) "b no longer receives" 0 (List.length (Group.deliveries b));
  Alcotest.(check (list string)) "a still loops back" [ "only me" ] (Group.casts a)

let test_solo_join_view () =
  let world = World.create () in
  let g = World.fresh_group_addr world in
  let a = Group.join (Endpoint.create world ~spec:"COM") g in
  World.run_for world ~duration:default_settle;
  match Group.view a with
  | Some v ->
    Alcotest.(check int) "singleton" 1 (View.size v);
    Alcotest.(check (option int)) "rank 0" (Some 0) (Group.my_rank a)
  | None -> Alcotest.fail "no view"

let test_crash_stops_traffic () =
  let world, a, b = mk_pair () in
  Endpoint.crash (Group.endpoint b);
  Group.cast a "to the dead";
  World.run_for world ~duration:default_settle;
  Alcotest.(check int) "b heard nothing" 0 (List.length (Group.deliveries b))

let test_crashed_endpoint_silent () =
  let world, a, b = mk_pair () in
  Endpoint.crash (Group.endpoint a);
  Group.cast a "from the dead";
  World.run_for world ~duration:default_settle;
  Alcotest.(check int) "b heard nothing" 0 (List.length (Group.deliveries b))

let test_two_groups_one_endpoint () =
  (* The group-id frame demultiplexes two groups on the same endpoints. *)
  let world = World.create () in
  let g1 = World.fresh_group_addr world in
  let g2 = World.fresh_group_addr world in
  let e1 = Endpoint.create world ~spec:"COM" in
  let e2 = Endpoint.create world ~spec:"COM" in
  let a1 = Group.join e1 g1 in
  let b1 = Group.join ~contact:(Endpoint.addr e1) e2 g1 in
  let a2 = Group.join e1 g2 in
  let b2 = Group.join ~contact:(Endpoint.addr e1) e2 g2 in
  let pair g x y =
    let v =
      View.create ~group:g ~ltime:0
        ~members:(List.sort Addr.compare_endpoint [ Group.addr x; Group.addr y ])
    in
    Group.install_view x v;
    Group.install_view y v
  in
  pair g1 a1 b1;
  pair g2 a2 b2;
  Group.cast a1 "one";
  Group.cast a2 "two";
  World.run_for world ~duration:default_settle;
  Alcotest.(check (list string)) "g1 at b" [ "one" ] (Group.casts b1);
  Alcotest.(check (list string)) "g2 at b" [ "two" ] (Group.casts b2)

let test_trace_layer_counts () =
  let world, a, b = mk_pair ~spec:"TRACE:COM" () in
  Group.cast a "x";
  Group.cast a "y";
  World.run_for world ~duration:default_settle;
  ignore b;
  match Group.focus a "TRACE" with
  | None -> Alcotest.fail "no TRACE layer"
  | Some l ->
    (match l.Horus_hcpi.Layer.dump () with
     | [ line ] ->
       (* join + view install + two casts crossed downward. *)
       Alcotest.(check bool) "four downs counted" true
         (String.sub line 0 (String.length "down_events=4") = "down_events=4")
     | _ -> Alcotest.fail "unexpected dump")

let test_noop_layers_transparent () =
  let world, a, b = mk_pair ~spec:"NOOP:NOOP:NOOP:COM" () in
  Group.cast a "through four layers";
  World.run_for world ~duration:default_settle;
  Alcotest.(check (list string)) "delivered" [ "through four layers" ] (Group.casts b)

let test_stack_dump_and_focus () =
  let world, a, _b = mk_pair ~spec:"NOOP:COM" () in
  World.run_for world ~duration:default_settle;
  Alcotest.(check bool) "dump nonempty" true (List.length (Group.dump a) > 0);
  Alcotest.(check bool) "focus COM" true (Group.focus a "COM" <> None);
  Alcotest.(check bool) "focus unknown" true (Group.focus a "NAK" = None)

let test_destroy_emits_destroy () =
  let world, a, _b = mk_pair () in
  World.run_for world ~duration:default_settle;
  Group.destroy a;
  Alcotest.(check bool) "destroyed" true (Group.destroyed a)

let test_leave_emits_exit () =
  let world, a, _b = mk_pair () in
  World.run_for world ~duration:default_settle;
  Group.leave a;
  World.run_for world ~duration:default_settle;
  Alcotest.(check bool) "exited" true (Group.exited a)

let test_socket_facade () =
  let world = World.create () in
  let g = World.fresh_group_addr world in
  let e1 = Endpoint.create world ~spec:"COM" in
  let e2 = Endpoint.create world ~spec:"COM" in
  let s1 = Socket.create e1 g in
  let s2 = Socket.create ~contact:(Endpoint.addr e1) e2 g in
  let v =
    View.create ~group:g ~ltime:0
      ~members:(List.sort Addr.compare_endpoint [ Endpoint.addr e1; Endpoint.addr e2 ])
  in
  Group.install_view (Socket.group s1) v;
  Group.install_view (Socket.group s2) v;
  Socket.sendto s1 "datagram";
  World.run_for world ~duration:default_settle;
  (match Socket.recvfrom s2 with
   | Some (_, payload) -> Alcotest.(check string) "received" "datagram" payload
   | None -> Alcotest.fail "nothing received");
  Alcotest.(check bool) "drained" true (Socket.recvfrom s2 = None)

let test_system_error_without_membership () =
  (* Membership downcalls over a membershipless stack surface as
     SYSTEM_ERROR (Table 2) instead of vanishing. *)
  let world, a, _b = mk_pair () in
  Group.merge a (Group.addr a);
  Group.suspect a [ Group.addr a ];
  World.run_for world ~duration:default_settle;
  Alcotest.(check int) "two reports" 2 (List.length (Group.system_errors a));
  Alcotest.(check bool) "mentions membership" true
    (List.for_all
       (fun e ->
          let sub = "membership" in
          let n = String.length sub and m = String.length e in
          let rec loop i = i + n <= m && (String.sub e i n = sub || loop (i + 1)) in
          loop 0)
       (Group.system_errors a))

let test_layer_skipping () =
  (* Section 10 remedy 1: inert layers are bypassed when skipping is
     enabled; the stack's processed-event counter shows it. *)
  Horus_layers.Init.register_all ();
  let run ~skip_inert =
    let engine = Horus_sim.Engine.create () in
    let stack =
      Horus_hcpi.Stack.create ~engine ~endpoint:(Addr.endpoint 0) ~group:(Addr.group 0)
        ~prng:(Horus_util.Prng.create 1)
        ~transport:
          { Horus_hcpi.Layer.xmit = (fun ~dst:_ _ -> ()); local_node = 0; mtu = 65536 }
        ~rendezvous:Horus_hcpi.Layer.null_rendezvous ~skip_inert
        ~trace:(fun ~layer:_ ~category:_ _ -> ())
        ~to_app:(fun _ -> ())
        ~to_below:(fun _ -> ())
        (Spec.resolve (Spec.parse "NOOP:NOOP:NOOP:NOOP:COM"))
    in
    Horus_hcpi.Stack.down stack Horus_hcpi.Event.D_dump;
    Horus_hcpi.Stack.processed stack
  in
  let plain = run ~skip_inert:false in
  let skipping = run ~skip_inert:true in
  Alcotest.(check int) "all five layers crossed" 5 plain;
  Alcotest.(check int) "inert layers bypassed" 2 skipping

let test_layer_skipping_preserves_delivery () =
  (* skip_inert is not exposed through Group; verify at stack level that
     a skipped stack still routes data end to end: inject a packet and
     watch it surface. *)
  Horus_layers.Init.register_all ();
  let engine = Horus_sim.Engine.create () in
  let seen = ref [] in
  let stack =
    Horus_hcpi.Stack.create ~engine ~endpoint:(Addr.endpoint 0) ~group:(Addr.group 0)
      ~prng:(Horus_util.Prng.create 1)
      ~transport:{ Horus_hcpi.Layer.xmit = (fun ~dst:_ _ -> ()); local_node = 0; mtu = 65536 }
      ~rendezvous:Horus_hcpi.Layer.null_rendezvous ~skip_inert:true
      ~trace:(fun ~layer:_ ~category:_ _ -> ())
      ~to_app:(fun ev ->
          match ev with
          | Event.U_cast (_, m, _) -> seen := Msg.to_string m :: !seen
          | _ -> ())
      ~to_below:(fun _ -> ())
      (Spec.resolve (Spec.parse "NOOP:NOOP:COM"))
  in
  (* Self-delivery via loopback: give COM a view containing ourselves
     and cast. *)
  let v = View.create ~group:(Addr.group 0) ~ltime:0 ~members:[ Addr.endpoint 0 ] in
  Horus_hcpi.Stack.down stack (Event.D_view v);
  Horus_hcpi.Stack.down stack (Event.D_cast (Msg.create "skipped through"));
  Alcotest.(check (list string)) "delivered through skipping stack" [ "skipped through" ]
    !seen

let () =
  Alcotest.run "com"
    [ ( "com",
        [ Alcotest.test_case "cast delivers" `Quick test_cast_delivers;
          Alcotest.test_case "cast ranks and meta" `Quick test_cast_ranks;
          Alcotest.test_case "send subset" `Quick test_send_subset;
          Alcotest.test_case "send with self" `Quick test_no_loopback_without_self_in_send;
          Alcotest.test_case "filters spurious casts" `Quick test_filter_spurious_cast;
          Alcotest.test_case "garbled envelope" `Quick test_garbled_envelope_rejected;
          Alcotest.test_case "view install changes dests" `Quick test_view_install_changes_dests;
          Alcotest.test_case "solo join" `Quick test_solo_join_view;
          Alcotest.test_case "crash stops delivery" `Quick test_crash_stops_traffic;
          Alcotest.test_case "crashed endpoint silent" `Quick test_crashed_endpoint_silent;
          Alcotest.test_case "two groups one endpoint" `Quick test_two_groups_one_endpoint ] );
      ( "stack",
        [ Alcotest.test_case "trace layer counts" `Quick test_trace_layer_counts;
          Alcotest.test_case "noop layers transparent" `Quick test_noop_layers_transparent;
          Alcotest.test_case "dump and focus" `Quick test_stack_dump_and_focus;
          Alcotest.test_case "destroy" `Quick test_destroy_emits_destroy;
          Alcotest.test_case "leave" `Quick test_leave_emits_exit;
          Alcotest.test_case "SYSTEM_ERROR without membership" `Quick
            test_system_error_without_membership;
          Alcotest.test_case "layer skipping counters" `Quick test_layer_skipping;
          Alcotest.test_case "layer skipping delivers" `Quick
            test_layer_skipping_preserves_delivery ] );
      ( "socket",
        [ Alcotest.test_case "sendto/recvfrom" `Quick test_socket_facade ] ) ]
