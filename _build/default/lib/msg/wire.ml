(* Codecs for addresses and address lists on messages.

   Every layer that names endpoints in its headers (COM, MBRSHIP,
   MERGE, ...) uses these, so all layers agree on one address format —
   the paper notes this single-format property is what lets layers be
   mixed and matched (Section 12). *)

let push_endpoint m e = Msg.push_u32 m (Addr.endpoint_id e)

let pop_endpoint m = Addr.endpoint (Msg.pop_u32 m)

let push_group m g = Msg.push_u32 m (Addr.group_id g)

let pop_group m = Addr.group (Msg.pop_u32 m)

(* Lists are pushed in reverse so they pop in original order. *)
let push_list push m l =
  List.iter (push m) (List.rev l);
  Msg.push_u16 m (List.length l)

let pop_list pop m =
  let n = Msg.pop_u16 m in
  List.init n (fun _ -> pop m)

let push_endpoint_list m l = push_list push_endpoint m l

let pop_endpoint_list m = pop_list pop_endpoint m

let push_int_list m l = push_list (fun m i -> Msg.push_u32 m i) m l

let pop_int_list m = pop_list Msg.pop_u32 m
