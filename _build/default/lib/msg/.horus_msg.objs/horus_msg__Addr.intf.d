lib/msg/addr.mli: Format Map Set
