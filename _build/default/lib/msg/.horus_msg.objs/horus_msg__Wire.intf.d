lib/msg/wire.mli: Addr Msg
