lib/msg/msg.mli: Bytes Format
