lib/msg/wire.ml: Addr List Msg
