lib/msg/compact.ml: Array Bytes Hashtbl Int Int64 List
