lib/msg/addr.ml: Format Int Map Set
