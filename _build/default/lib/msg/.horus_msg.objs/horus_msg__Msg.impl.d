lib/msg/msg.ml: Bytes Char Format Int Int32 List String
