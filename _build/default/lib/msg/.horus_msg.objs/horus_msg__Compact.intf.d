lib/msg/compact.mli: Bytes
