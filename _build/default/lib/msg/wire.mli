(** Codecs for addresses and lists on messages — the single shared
    address format that lets layers be mixed and matched. *)

val push_endpoint : Msg.t -> Addr.endpoint -> unit
val pop_endpoint : Msg.t -> Addr.endpoint
val push_group : Msg.t -> Addr.group -> unit
val pop_group : Msg.t -> Addr.group

val push_list : (Msg.t -> 'a -> unit) -> Msg.t -> 'a list -> unit
(** u16 count prefix; elements pop in original order. *)

val pop_list : (Msg.t -> 'a) -> Msg.t -> 'a list

val push_endpoint_list : Msg.t -> Addr.endpoint list -> unit
val pop_endpoint_list : Msg.t -> Addr.endpoint list
val push_int_list : Msg.t -> int list -> unit
val pop_int_list : Msg.t -> int list
