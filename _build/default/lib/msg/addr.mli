(** Endpoint and group addresses.

    Endpoint id order doubles as age order (lower id = older), which
    MBRSHIP uses for message-free coordinator election. *)

type endpoint = private { eid : int }

type group = private { gid : int }

val endpoint : int -> endpoint
val group : int -> group
val endpoint_id : endpoint -> int
val group_id : group -> int
val compare_endpoint : endpoint -> endpoint -> int
val compare_group : group -> group -> int
val equal_endpoint : endpoint -> endpoint -> bool
val equal_group : group -> group -> bool
val pp_endpoint : Format.formatter -> endpoint -> unit
val pp_group : Format.formatter -> group -> unit
val endpoint_to_string : endpoint -> string

module Endpoint_set : Set.S with type elt = endpoint
module Endpoint_map : Map.S with type key = endpoint
