(** Precomputed compacted headers (Section 10, remedy 3).

    Layers declare fields in bits; the stack precomputes one packed
    layout, eliminating per-layer header push/pop and alignment
    padding. *)

type field = private {
  layer : string;
  name : string;
  bits : int;
}

type layout

val field : layer:string -> name:string -> bits:int -> field
(** [bits] must be in 1..64. *)

val layout : field list -> layout
(** Pack fields tightly in declaration order. Raises on duplicate
    (layer, name) pairs. *)

val total_bytes : layout -> int
val total_bits : layout -> int
val slot_count : layout -> int

val find : layout -> layer:string -> name:string -> int
(** Slot index of a field. *)

val alloc : layout -> Bytes.t
(** Zeroed header blob of the layout's size. *)

val set : layout -> Bytes.t -> slot:int -> int64 -> unit
val get : layout -> Bytes.t -> slot:int -> int64

val write_bits : Bytes.t -> bit_offset:int -> bits:int -> int64 -> unit
val read_bits : Bytes.t -> bit_offset:int -> bits:int -> int64

val padded_bytes : field list -> int
(** Bytes the conventional one-word-aligned-header-per-layer scheme
    would use for the same fields. *)
