(* Precomputed compacted headers (Section 10, remedy 3).

   Instead of each layer pushing its own word-aligned header, a layer
   declares the *fields* it needs, in bits. When a stack is built,
   Horus precomputes a single packed layout for the whole stack; each
   layer then reads/writes its fields at fixed bit offsets in one
   shared header blob, eliminating per-layer push/pop work and
   alignment padding.

   We implement the layout computation and bit-level accessors, and
   bench them against the push/pop path (experiment E10). *)

type field = {
  layer : string;
  name : string;
  bits : int;  (* 1..64 *)
}

type slot = {
  field : field;
  bit_offset : int;
}

type layout = {
  slots : slot array;
  total_bits : int;
  total_bytes : int;
  index : (string * string, int) Hashtbl.t;  (* (layer, name) -> slot idx *)
}

let field ~layer ~name ~bits =
  if bits < 1 || bits > 64 then invalid_arg "Compact.field: bits must be in 1..64";
  { layer; name; bits }

(* Pack fields in declaration order, tightly, no alignment. A real
   implementation might sort by size to reduce straddling; declaration
   order keeps the layout predictable for tests. *)
let layout fields =
  let index = Hashtbl.create 16 in
  let off = ref 0 in
  let slots =
    Array.of_list
      (List.mapi
         (fun i f ->
            if Hashtbl.mem index (f.layer, f.name) then
              invalid_arg "Compact.layout: duplicate field";
            Hashtbl.replace index (f.layer, f.name) i;
            let s = { field = f; bit_offset = !off } in
            off := !off + f.bits;
            s)
         fields)
  in
  { slots; total_bits = !off; total_bytes = (!off + 7) / 8; index }

let total_bytes l = l.total_bytes

let total_bits l = l.total_bits

let slot_count l = Array.length l.slots

let find l ~layer ~name =
  match Hashtbl.find_opt l.index (layer, name) with
  | Some i -> i
  | None -> invalid_arg "Compact.find: unknown field"

(* Write [value]'s low [bits] bits at [bit_offset] in [buf]. *)
let write_bits buf ~bit_offset ~bits value =
  let v = if bits = 64 then value else Int64.logand value (Int64.sub (Int64.shift_left 1L bits) 1L) in
  (* Write bit by byte: process up to 8 bits per iteration. *)
  let remaining = ref bits in
  let boff = ref bit_offset in
  let v = ref v in
  while !remaining > 0 do
    let byte_idx = !boff / 8 in
    let bit_in_byte = !boff mod 8 in
    let take = Int.min (8 - bit_in_byte) !remaining in
    let mask = (1 lsl take) - 1 in
    let chunk = Int64.to_int (Int64.logand !v (Int64.of_int mask)) in
    let old = Bytes.get_uint8 buf byte_idx in
    let cleared = old land lnot (mask lsl bit_in_byte) in
    Bytes.set_uint8 buf byte_idx (cleared lor (chunk lsl bit_in_byte));
    v := Int64.shift_right_logical !v take;
    boff := !boff + take;
    remaining := !remaining - take
  done

let read_bits buf ~bit_offset ~bits =
  let result = ref 0L in
  let remaining = ref bits in
  let boff = ref bit_offset in
  let shift = ref 0 in
  while !remaining > 0 do
    let byte_idx = !boff / 8 in
    let bit_in_byte = !boff mod 8 in
    let take = Int.min (8 - bit_in_byte) !remaining in
    let mask = (1 lsl take) - 1 in
    let chunk = (Bytes.get_uint8 buf byte_idx lsr bit_in_byte) land mask in
    result := Int64.logor !result (Int64.shift_left (Int64.of_int chunk) !shift);
    shift := !shift + take;
    boff := !boff + take;
    remaining := !remaining - take
  done;
  !result

let alloc l = Bytes.make l.total_bytes '\000'

let set l buf ~slot value =
  let s = l.slots.(slot) in
  write_bits buf ~bit_offset:s.bit_offset ~bits:s.field.bits value

let get l buf ~slot =
  let s = l.slots.(slot) in
  read_bits buf ~bit_offset:s.bit_offset ~bits:s.field.bits

(* Bytes a conventional stack would use: each field in its own
   word-aligned (4-byte-multiple) header, the overhead the paper
   complains about. *)
let padded_bytes fields =
  List.fold_left (fun acc f -> acc + (((f.bits + 7) / 8 + 3) / 4 * 4)) 0 fields
