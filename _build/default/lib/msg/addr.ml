(* Endpoint and group addresses.

   An endpoint address identifies a communicating entity; messages are
   never addressed to endpoints but to groups (Section 3 of the paper).
   The endpoint id doubles as the simulated-network node id, and id
   order doubles as age order (lower id = created earlier), which the
   MBRSHIP layer uses for its message-free coordinator election. *)

type endpoint = { eid : int }

type group = { gid : int }

let endpoint eid =
  if eid < 0 then invalid_arg "Addr.endpoint: negative id";
  { eid }

let group gid =
  if gid < 0 then invalid_arg "Addr.group: negative id";
  { gid }

let endpoint_id e = e.eid

let group_id g = g.gid

let compare_endpoint a b = Int.compare a.eid b.eid

let compare_group a b = Int.compare a.gid b.gid

let equal_endpoint a b = a.eid = b.eid

let equal_group a b = a.gid = b.gid

let pp_endpoint fmt e = Format.fprintf fmt "e%d" e.eid

let pp_group fmt g = Format.fprintf fmt "g%d" g.gid

let endpoint_to_string e = Format.asprintf "%a" pp_endpoint e

module Endpoint_set = Set.Make (struct
    type t = endpoint
    let compare = compare_endpoint
  end)

module Endpoint_map = Map.Make (struct
    type t = endpoint
    let compare = compare_endpoint
  end)
