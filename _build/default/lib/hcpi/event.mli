(** The Horus Common Protocol Interface (Section 4): Table 1 downcalls
    and Table 2 upcalls, as one variant each. Every layer handles both
    directions through these types — that uniformity is what makes
    layers stackable in any order. *)

open Horus_msg

type meta = (string * int) list
(** Extension hook: layers may decorate deliveries (e.g. STABLE tags
    each delivery with the id the application passes back to [ack]). *)

val meta_find : meta -> string -> int option

type merge_request = {
  req_id : int;
  from_coord : Addr.endpoint;
  from_members : Addr.endpoint list;
}
(** Identity of a foreign partition asking to merge. *)

type stability = {
  origins : Addr.endpoint array;
  acked : int array array;
}
(** [acked.(i).(j)] = highest contiguous seqno of origin [i]'s messages
    acknowledged by member [j] (Section 9). *)

type down =
  | D_join of Addr.endpoint option
      (** join; [Some contact] merges with an existing member, [None]
          founds a singleton group *)
  | D_cast of Msg.t             (** multicast to the view *)
  | D_send of Addr.endpoint list * Msg.t  (** send to a subset *)
  | D_ack of int                (** application processed message [id] *)
  | D_stable of int             (** mark message [id] stable *)
  | D_view of View.t            (** install a view (membership layers) *)
  | D_flush of Addr.endpoint list  (** remove members and flush *)
  | D_flush_ok                  (** go along with flush *)
  | D_merge of Addr.endpoint    (** merge with other view via contact *)
  | D_merge_granted of merge_request
  | D_merge_denied of merge_request
  | D_suspect of Addr.endpoint list  (** external failure detector input *)
  | D_leave                     (** leave group *)
  | D_dump                      (** dump layer information *)

type up =
  | U_view of View.t            (** view installation *)
  | U_cast of int * Msg.t * meta   (** multicast from member rank *)
  | U_send of int * Msg.t * meta   (** subset message from member rank *)
  | U_merge_request of merge_request
  | U_merge_denied of string
  | U_flush of Addr.endpoint list  (** view flush started *)
  | U_flush_ok of int           (** member rank completed flush *)
  | U_leave of int              (** member rank leaves *)
  | U_lost_message of int       (** a message from rank was lost *)
  | U_stable of stability       (** stability update *)
  | U_problem of Addr.endpoint  (** communication problem with member *)
  | U_system_error of string
  | U_exit                      (** close down event *)
  | U_destroy                   (** endpoint destroyed *)
  | U_packet of int * Msg.t     (** raw datagram from network node (COM ingress) *)

val down_name : down -> string
val up_name : up -> string
val all_down_names : string list
val all_up_names : string list
val pp_down : Format.formatter -> down -> unit
val pp_up : Format.formatter -> up -> unit
