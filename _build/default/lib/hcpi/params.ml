(* Layer configuration parameters, parsed from stack-spec strings like
   "NAK(status_period=0.01,window=64)". *)

type t = (string * string) list

let empty = []

let of_list l = l

let to_list t = t

let find t key = List.assoc_opt key t

let get_string t key ~default =
  match find t key with
  | Some v -> v
  | None -> default

let get_int t key ~default =
  match find t key with
  | Some v ->
    (match int_of_string_opt v with
     | Some i -> i
     | None -> invalid_arg (Printf.sprintf "Params.get_int: %s=%s" key v))
  | None -> default

let get_float t key ~default =
  match find t key with
  | Some v ->
    (match float_of_string_opt v with
     | Some f -> f
     | None -> invalid_arg (Printf.sprintf "Params.get_float: %s=%s" key v))
  | None -> default

let get_bool t key ~default =
  match find t key with
  | Some "true" | Some "1" | Some "yes" -> true
  | Some "false" | Some "0" | Some "no" -> false
  | Some v -> invalid_arg (Printf.sprintf "Params.get_bool: %s=%s" key v)
  | None -> default

let merge ~base ~override =
  override @ List.filter (fun (k, _) -> not (List.mem_assoc k override)) base

let pp fmt t =
  Format.fprintf fmt "%a"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ",")
       (fun f (k, v) -> Format.fprintf f "%s=%s" k v))
    t
