(* The Horus Common Protocol Interface (Section 4).

   Downcalls travel from the application toward the network (Table 1);
   upcalls travel from the network toward the application (Table 2).
   Every layer handles both directions through the same types — that
   uniformity is what makes layers stackable in any order.

   [meta] is the "hook with which the interface can be extended": an
   association list a layer may decorate a delivery with (e.g. STABLE
   tags deliveries with the id the application passes back to [ack]). *)

open Horus_msg

type meta = (string * int) list

let meta_find meta key = List.assoc_opt key meta

(* A merge request names the coordinator and membership of the foreign
   partition asking to merge (Tables 1 and 2: merge, merge_denied,
   merge_granted, MERGE_REQUEST, MERGE_DENIED). *)
type merge_request = {
  req_id : int;
  from_coord : Addr.endpoint;
  from_members : Addr.endpoint list;
}

(* Stability matrix (Section 9): [acked.(i).(j)] is the highest
   contiguous sequence number of origin [i]'s messages that member [j]
   has acknowledged having processed. *)
type stability = {
  origins : Addr.endpoint array;
  acked : int array array;
}

type down =
  | D_join of Addr.endpoint option
      (* join the group; [Some contact] merges with an existing member,
         [None] founds a singleton group *)
  | D_cast of Msg.t                              (* multicast to the view *)
  | D_send of Addr.endpoint list * Msg.t         (* send to a subset *)
  | D_ack of int                                 (* application processed message [id] *)
  | D_stable of int                              (* mark message [id] stable *)
  | D_view of View.t                             (* install a view (membership layers) *)
  | D_flush of Addr.endpoint list                (* remove members and flush *)
  | D_flush_ok                                   (* go along with flush *)
  | D_merge of Addr.endpoint                     (* merge with other view via contact *)
  | D_merge_granted of merge_request
  | D_merge_denied of merge_request
  | D_suspect of Addr.endpoint list              (* external failure detector input *)
  | D_leave                                      (* leave group *)
  | D_dump                                       (* dump layer information *)

type up =
  | U_view of View.t                             (* view installation *)
  | U_cast of int * Msg.t * meta                 (* multicast from member rank *)
  | U_send of int * Msg.t * meta                 (* subset message from member rank *)
  | U_merge_request of merge_request             (* foreign partition asks to merge *)
  | U_merge_denied of string                     (* our merge request was denied *)
  | U_flush of Addr.endpoint list                (* view flush started *)
  | U_flush_ok of int                            (* member rank completed flush *)
  | U_leave of int                               (* member rank leaves *)
  | U_lost_message of int                        (* a message from rank was lost *)
  | U_stable of stability                        (* stability update *)
  | U_problem of Addr.endpoint                   (* communication problem with member *)
  | U_system_error of string                     (* system error report *)
  | U_exit                                       (* close down event *)
  | U_destroy                                    (* endpoint destroyed *)
  | U_packet of int * Msg.t                      (* raw datagram from network node *)

let down_name = function
  | D_join _ -> "join"
  | D_cast _ -> "cast"
  | D_send _ -> "send"
  | D_ack _ -> "ack"
  | D_stable _ -> "stable"
  | D_view _ -> "view"
  | D_flush _ -> "flush"
  | D_flush_ok -> "flush_ok"
  | D_merge _ -> "merge"
  | D_merge_granted _ -> "merge_granted"
  | D_merge_denied _ -> "merge_denied"
  | D_suspect _ -> "suspect"
  | D_leave -> "leave"
  | D_dump -> "dump"

let up_name = function
  | U_view _ -> "VIEW"
  | U_cast _ -> "CAST"
  | U_send _ -> "SEND"
  | U_merge_request _ -> "MERGE_REQUEST"
  | U_merge_denied _ -> "MERGE_DENIED"
  | U_flush _ -> "FLUSH"
  | U_flush_ok _ -> "FLUSH_OK"
  | U_leave _ -> "LEAVE"
  | U_lost_message _ -> "LOST_MESSAGE"
  | U_stable _ -> "STABLE"
  | U_problem _ -> "PROBLEM"
  | U_system_error _ -> "SYSTEM_ERROR"
  | U_exit -> "EXIT"
  | U_destroy -> "DESTROY"
  | U_packet _ -> "PACKET"

let all_down_names =
  [ "join"; "cast"; "send"; "ack"; "stable"; "view"; "flush"; "flush_ok";
    "merge"; "merge_granted"; "merge_denied"; "suspect"; "leave"; "dump" ]

let all_up_names =
  [ "VIEW"; "CAST"; "SEND"; "MERGE_REQUEST"; "MERGE_DENIED"; "FLUSH"; "FLUSH_OK";
    "LEAVE"; "LOST_MESSAGE"; "STABLE"; "PROBLEM"; "SYSTEM_ERROR"; "EXIT"; "DESTROY" ]

let pp_down fmt d = Format.pp_print_string fmt (down_name d)

let pp_up fmt u = Format.pp_print_string fmt (up_name u)
