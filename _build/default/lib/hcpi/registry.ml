(* The layer library catalogue.

   Layers register by name at start-up; stacks are then described at
   run-time by spec strings ("TOTAL:MBRSHIP:FRAG:NAK:COM") and looked
   up here — the run-time composition of Figure 1. The protocol_type
   field is the classification from Figure 1's table. *)

type entry = {
  name : string;
  protocol_type : string;  (* classification from Figure 1 *)
  description : string;
  ctor : Params.t -> Layer.ctor;
}

let table : (string, entry) Hashtbl.t = Hashtbl.create 64

let register ~name ~protocol_type ~description ctor =
  if Hashtbl.mem table name then invalid_arg ("Registry.register: duplicate layer " ^ name);
  Hashtbl.replace table name { name; protocol_type; description; ctor }

let find name = Hashtbl.find_opt table name

let find_exn name =
  match find name with
  | Some e -> e
  | None -> invalid_arg ("Registry.find_exn: unknown layer " ^ name)

let mem name = Hashtbl.mem table name

let all () =
  Hashtbl.fold (fun _ e acc -> e :: acc) table []
  |> List.sort (fun a b -> String.compare a.name b.name)

let names () = List.map (fun e -> e.name) (all ())

let clear () = Hashtbl.reset table
