lib/hcpi/params.ml: Format List Printf
