lib/hcpi/view.mli: Addr Format Horus_msg Msg
