lib/hcpi/layer.ml: Addr Bytes Event Horus_msg Horus_sim Horus_util Params
