lib/hcpi/spec.mli: Layer Params
