lib/hcpi/spec.ml: Format List Params Registry String
