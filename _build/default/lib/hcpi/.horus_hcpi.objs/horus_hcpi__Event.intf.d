lib/hcpi/event.mli: Addr Format Horus_msg Msg View
