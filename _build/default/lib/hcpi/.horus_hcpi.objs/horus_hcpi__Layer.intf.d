lib/hcpi/layer.mli: Addr Bytes Event Horus_msg Horus_sim Horus_util Params
