lib/hcpi/stack.ml: Array Event Horus_sim Horus_util Layer List Params
