lib/hcpi/params.mli: Format
