lib/hcpi/registry.ml: Hashtbl Layer List Params String
