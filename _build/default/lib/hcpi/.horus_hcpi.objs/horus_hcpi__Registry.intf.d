lib/hcpi/registry.mli: Layer Params
