lib/hcpi/view.ml: Addr Array Format Hashtbl Horus_msg Int List Msg Wire
