lib/hcpi/stack.mli: Addr Event Horus_msg Horus_sim Horus_util Layer Params
