lib/hcpi/event.ml: Addr Format Horus_msg List Msg View
