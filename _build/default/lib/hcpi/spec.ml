(* Stack spec strings.

   Grammar (top layer first, as in the paper's TOTAL:MBRSHIP:FRAG:NAK:COM):

     spec   ::= layer (":" layer)*
     layer  ::= NAME | NAME "(" kv ("," kv)* ")"
     kv     ::= key "=" value

   Example: "TOTAL:MBRSHIP:FRAG(mtu=1024):NAK(status_period=0.01):COM" *)

type layer_spec = {
  name : string;
  params : Params.t;
}

type t = layer_spec list

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

let parse_kv s =
  match String.index_opt s '=' with
  | None -> fail "expected key=value, got %S" s
  | Some i ->
    let k = String.trim (String.sub s 0 i) in
    let v = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
    if k = "" then fail "empty key in %S" s;
    (k, v)

let parse_layer s =
  let s = String.trim s in
  if s = "" then fail "empty layer name";
  match String.index_opt s '(' with
  | None ->
    if String.contains s ')' then fail "unbalanced parenthesis in %S" s;
    { name = s; params = Params.empty }
  | Some i ->
    if s.[String.length s - 1] <> ')' then fail "missing closing parenthesis in %S" s;
    let name = String.trim (String.sub s 0 i) in
    if name = "" then fail "empty layer name in %S" s;
    let body = String.sub s (i + 1) (String.length s - i - 2) in
    let params =
      if String.trim body = "" then Params.empty
      else Params.of_list (List.map parse_kv (String.split_on_char ',' body))
    in
    { name; params }

(* Split on ':' at depth 0 only (parameters may not contain ':', which
   keeps the grammar regular). *)
let parse s =
  let s = String.trim s in
  if s = "" then fail "empty stack spec";
  List.map parse_layer (String.split_on_char ':' s)

let to_string t =
  String.concat ":"
    (List.map
       (fun l ->
          match Params.to_list l.params with
          | [] -> l.name
          | kvs ->
            l.name ^ "("
            ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
            ^ ")")
       t)

let names t = List.map (fun l -> l.name) t

(* Resolve layer names against the registry, producing the input that
   Stack.create expects. *)
let resolve t =
  List.map
    (fun l ->
       match Registry.find l.name with
       | Some entry -> (l.name, l.params, entry.Registry.ctor)
       | None -> fail "unknown layer %S (known: %s)" l.name (String.concat ", " (Registry.names ())))
    t
