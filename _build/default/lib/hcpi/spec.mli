(** Stack spec strings — run-time protocol composition.

    Grammar (top layer first):
    ["TOTAL:MBRSHIP:FRAG(mtu=1024):NAK:COM"]. *)

type layer_spec = {
  name : string;
  params : Params.t;
}

type t = layer_spec list

exception Parse_error of string

val parse : string -> t
val to_string : t -> string
val names : t -> string list

val resolve : t -> (string * Params.t * (Params.t -> Layer.ctor)) list
(** Look names up in {!Registry}; raises {!Parse_error} on unknown
    layers. *)
