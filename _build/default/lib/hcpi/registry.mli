(** The layer library catalogue: name → constructor, enabling run-time
    stack composition from spec strings. *)

type entry = {
  name : string;
  protocol_type : string;  (** classification from Figure 1's table *)
  description : string;
  ctor : Params.t -> Layer.ctor;
}

val register :
  name:string -> protocol_type:string -> description:string ->
  (Params.t -> Layer.ctor) -> unit
(** Raises on duplicate names. *)

val find : string -> entry option
val find_exn : string -> entry
val mem : string -> bool
val all : unit -> entry list
val names : unit -> string list
val clear : unit -> unit
