(* Group views (Section 3).

   A view is an ordered list of endpoint addresses; the order is join
   order (oldest first), so rank 0 is the oldest member. The view id
   pairs a logical time with the installing coordinator, which makes
   ids unique across partitions: two concurrent views can share a
   logical time but never a coordinator. *)

open Horus_msg

type id = {
  ltime : int;
  coord : Addr.endpoint;
}

type t = {
  group : Addr.group;
  id : id;
  members : Addr.endpoint array;
}

let create ~group ~ltime ~members =
  match members with
  | [] -> invalid_arg "View.create: empty member list"
  | coord :: _ ->
    let seen = Hashtbl.create 8 in
    List.iter
      (fun m ->
         if Hashtbl.mem seen (Addr.endpoint_id m) then
           invalid_arg "View.create: duplicate member";
         Hashtbl.replace seen (Addr.endpoint_id m) ())
      members;
    { group; id = { ltime; coord }; members = Array.of_list members }

let singleton ~group endpoint = create ~group ~ltime:0 ~members:[ endpoint ]

let group t = t.group

let id t = t.id

let ltime t = t.id.ltime

let coordinator t = t.id.coord

let members t = Array.to_list t.members

let members_array t = t.members

let size t = Array.length t.members

let nth t rank =
  if rank < 0 || rank >= Array.length t.members then invalid_arg "View.nth";
  t.members.(rank)

let rank_of t e =
  let rec loop i =
    if i >= Array.length t.members then None
    else if Addr.equal_endpoint t.members.(i) e then Some i
    else loop (i + 1)
  in
  loop 0

let mem t e = rank_of t e <> None

let equal_id a b = a.ltime = b.ltime && Addr.equal_endpoint a.coord b.coord

let compare_id a b =
  let c = Int.compare a.ltime b.ltime in
  if c <> 0 then c else Addr.compare_endpoint a.coord b.coord

(* Next view: survivors of [t] (in rank order) followed by joiners (in
   age order); coordinator is the oldest survivor — the message-free
   election of Section 5. *)
let successor t ~failed ~joiners =
  let is_failed m = List.exists (Addr.equal_endpoint m) failed in
  let survivors = List.filter (fun m -> not (is_failed m)) (members t) in
  let joiners =
    List.sort Addr.compare_endpoint
      (List.filter (fun j -> not (List.exists (Addr.equal_endpoint j) survivors)) joiners)
  in
  match survivors @ joiners with
  | [] -> None
  | ms -> Some (create ~group:t.group ~ltime:(t.id.ltime + 1) ~members:ms)

let pp fmt t =
  Format.fprintf fmt "view(%a, ltime=%d, coord=%a, [%a])" Addr.pp_group t.group t.id.ltime
    Addr.pp_endpoint t.id.coord
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ") Addr.pp_endpoint)
    (members t)

let to_string t = Format.asprintf "%a" pp t

(* --- wire codecs --- *)

let push m t =
  Wire.push_endpoint_list m (members t);
  Wire.push_endpoint m t.id.coord;
  Msg.push_u32 m t.id.ltime;
  Wire.push_group m t.group

let pop m =
  let group = Wire.pop_group m in
  let ltime = Msg.pop_u32 m in
  let coord = Wire.pop_endpoint m in
  let members = Wire.pop_endpoint_list m in
  { group; id = { ltime; coord }; members = Array.of_list members }
