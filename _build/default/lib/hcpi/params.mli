(** Layer configuration parameters (from stack-spec strings like
    ["NAK(status_period=0.01,window=64)"]). *)

type t = (string * string) list

val empty : t
val of_list : (string * string) list -> t
val to_list : t -> (string * string) list
val find : t -> string -> string option
val get_string : t -> string -> default:string -> string
val get_int : t -> string -> default:int -> int
val get_float : t -> string -> default:float -> float
val get_bool : t -> string -> default:bool -> bool

val merge : base:t -> override:t -> t
(** [override] entries win. *)

val pp : Format.formatter -> t -> unit
