(** Group views: ordered member lists with unique ids.

    Rank 0 is the oldest member and the coordinator. The view id pairs
    a logical time with the installing coordinator, making ids unique
    across partitions. *)

open Horus_msg

type id = {
  ltime : int;
  coord : Addr.endpoint;
}

type t

val create : group:Addr.group -> ltime:int -> members:Addr.endpoint list -> t
(** First member becomes coordinator. Raises on empty or duplicate
    member lists. *)

val singleton : group:Addr.group -> Addr.endpoint -> t

val group : t -> Addr.group
val id : t -> id
val ltime : t -> int
val coordinator : t -> Addr.endpoint
val members : t -> Addr.endpoint list
val members_array : t -> Addr.endpoint array
val size : t -> int
val nth : t -> int -> Addr.endpoint
val rank_of : t -> Addr.endpoint -> int option
val mem : t -> Addr.endpoint -> bool
val equal_id : id -> id -> bool
val compare_id : id -> id -> int

val successor : t -> failed:Addr.endpoint list -> joiners:Addr.endpoint list -> t option
(** Next view: survivors in rank order, then joiners in age order;
    [None] if nobody survives. Coordinator is the oldest survivor. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val push : Msg.t -> t -> unit
val pop : Msg.t -> t
