(* I/O-automaton-style modelling and exhaustive exploration
   (Section 8 of the paper).

   The paper's verification effort models each Horus layer as an I/O
   automaton and reasons about the composition. This module provides
   the executable counterpart: a system is a state machine with a set
   of enabled actions per state; the explorer enumerates *every*
   interleaving (up to state identity), checking named invariants in
   every reachable state and a terminal condition in every quiescent
   state. A violation comes back with its full action trace — a
   counterexample. The protocol models in this library are small
   abstract versions of the production layers, exactly the "reference
   implementation" role the paper assigns to its ML layers. *)

module type SYSTEM = sig
  type state
  type action

  val initial : state list
  (** One or more initial states. *)

  val enabled : state -> action list
  (** All actions the adversary may schedule in [state]; the empty list
      means the state is quiescent (terminal). *)

  val step : state -> action -> state
  (** Apply an enabled action. Must be pure: states are compared
      structurally for deduplication. *)

  val invariants : (string * (state -> bool)) list
  (** Safety properties that must hold in every reachable state. *)

  val terminal_checks : (string * (state -> bool)) list
  (** Properties that must hold in every quiescent state (e.g. the
      virtual synchrony agreement conditions). *)

  val pp_action : Format.formatter -> action -> unit
  val pp_state : Format.formatter -> state -> unit
end

type violation = {
  property : string;
  kind : [ `Invariant | `Terminal ];
  trace : string list;  (* pretty-printed actions from an initial state *)
  state : string;       (* pretty-printed offending state *)
}

type report = {
  states_explored : int;
  transitions : int;
  terminals : int;
  violations : violation list;
  truncated : bool;  (* state budget hit before the frontier drained *)
}

module Make (S : SYSTEM) = struct
  (* Breadth-first over the reachable state graph, remembering the
     shortest trace to each state for counterexample reporting. *)
  let explore ?(max_states = 200_000) ?(max_violations = 5) () =
    let seen : (S.state, unit) Hashtbl.t = Hashtbl.create 4096 in
    let queue : (S.state * string list) Queue.t = Queue.create () in
    let violations = ref [] in
    let transitions = ref 0 in
    let terminals = ref 0 in
    let truncated = ref false in
    let note_violation property kind trace state =
      if List.length !violations < max_violations then
        violations :=
          { property;
            kind;
            trace = List.rev trace;
            state = Format.asprintf "%a" S.pp_state state }
          :: !violations
    in
    let check_state state trace =
      List.iter
        (fun (name, pred) -> if not (pred state) then note_violation name `Invariant trace state)
        S.invariants
    in
    List.iter
      (fun s ->
         if not (Hashtbl.mem seen s) then begin
           Hashtbl.replace seen s ();
           check_state s [];
           Queue.push (s, []) queue
         end)
      S.initial;
    while not (Queue.is_empty queue) do
      let state, trace = Queue.pop queue in
      match S.enabled state with
      | [] ->
        incr terminals;
        List.iter
          (fun (name, pred) ->
             if not (pred state) then note_violation name `Terminal trace state)
          S.terminal_checks
      | actions ->
        List.iter
          (fun a ->
             incr transitions;
             let s' = S.step state a in
             if not (Hashtbl.mem seen s') then begin
               if Hashtbl.length seen >= max_states then truncated := true
               else begin
                 Hashtbl.replace seen s' ();
                 let trace' = Format.asprintf "%a" S.pp_action a :: trace in
                 check_state s' trace';
                 Queue.push (s', trace') queue
               end
             end)
          actions
    done;
    { states_explored = Hashtbl.length seen;
      transitions = !transitions;
      terminals = !terminals;
      violations = List.rev !violations;
      truncated = !truncated }

  let pp_report fmt r =
    Format.fprintf fmt "states=%d transitions=%d terminals=%d%s@." r.states_explored
      r.transitions r.terminals
      (if r.truncated then " (TRUNCATED)" else "");
    match r.violations with
    | [] -> Format.fprintf fmt "all invariants and terminal checks hold@."
    | vs ->
      List.iter
        (fun v ->
           Format.fprintf fmt "VIOLATION of %s (%s):@." v.property
             (match v.kind with `Invariant -> "invariant" | `Terminal -> "terminal");
           List.iteri (fun i a -> Format.fprintf fmt "  %2d. %s@." (i + 1) a) v.trace;
           Format.fprintf fmt "  state: %s@." v.state)
        vs
end
