lib/model/takeover_model.ml: Automaton Format List Option String
