lib/model/automaton.ml: Format Hashtbl List Queue
