lib/model/total_model.ml: Automaton Format List Option String
