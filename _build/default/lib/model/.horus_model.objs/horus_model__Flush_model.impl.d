lib/model/flush_model.ml: Automaton Format List Option String
