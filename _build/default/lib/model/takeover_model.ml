(* Reference model of coordinator takeover (Sections 5 and 11).

   Three processes; process 0 is the initial coordinator and has a cast
   of its own in flight (the straggler candidate) when it crashes, as
   does process 2. The *new* coordinator —
   elected without messages as the oldest unsuspected survivor — must
   be process 1, and it must run the flush that process 0 can no longer
   run. Detection is per-process and asynchronous: each survivor
   notices the crash independently, in any order relative to every
   packet delivery, and a survivor may learn of the failure only from
   the new coordinator's FLUSH_REQ.

   Checked exhaustively: both survivors install exactly {1,2}, agree on
   the delivered set, and the straggler rule (post-reply data from the
   failed member is ignored) keeps the cut consistent. *)

type msg =
  | MData of int
  | MFlushReq            (* from the acting coordinator; failed = {0} *)
  | MFlushReply of int list
  | MFwd of int list
  | MInstall of int list

type proc = {
  alive : bool;
  suspects : int list;   (* sorted *)
  view : int list;
  delivered : int list;  (* sorted set *)
  flushing : bool;
  replied : bool;
  replies : (int * int list) list;  (* coordinator bookkeeping *)
}

type state = {
  procs : proc list;
  chans : ((int * int) * msg list) list;
  crashed0 : bool;
}

type action =
  | Deliver of int * int
  | Crash0
  | Detect of int  (* survivor p notices process 0's crash *)

let survivors = [ 1; 2 ]

let sorted_insert x l = List.sort_uniq compare (x :: l)

let chan st key = Option.value (List.assoc_opt key st.chans) ~default:[]

let set_chan st key msgs =
  let rest = List.remove_assoc key st.chans in
  let chans = if msgs = [] then rest else (key, msgs) :: rest in
  { st with chans = List.sort compare chans }

let push st ~src ~dst m = set_chan st (src, dst) (chan st (src, dst) @ [ m ])

let proc st p = List.nth st.procs p

let set_proc st p f =
  { st with procs = List.mapi (fun i pr -> if i = p then f pr else pr) st.procs }

(* The message-free election, from p's own knowledge. *)
let coordinator_for pr = List.find_opt (fun m -> not (List.mem m pr.suspects)) pr.view

let start_flush st p =
  let st = set_proc st p (fun pr -> { pr with flushing = true; replies = [] }) in
  List.fold_left (fun st dst -> push st ~src:p ~dst MFlushReq) st survivors

let maybe_complete st p =
  let pr = proc st p in
  if List.length pr.replies = List.length survivors then begin
    let cut = List.sort_uniq compare (List.concat_map snd pr.replies) in
    let st =
      List.fold_left
        (fun st (r, del) ->
           let missing = List.filter (fun m -> not (List.mem m del)) cut in
           let st = if missing = [] then st else push st ~src:p ~dst:r (MFwd missing) in
           push st ~src:p ~dst:r (MInstall survivors))
        st pr.replies
    in
    set_proc st p (fun pr -> { pr with replies = [] })
  end
  else st

let receive st ~src ~dst m =
  let pr = proc st dst in
  if not pr.alive then st
  else
    match m with
    | MData id ->
      if not (List.mem src pr.view) then st
      else if pr.flushing && pr.replied && List.mem src pr.suspects then st
      else set_proc st dst (fun pr -> { pr with delivered = sorted_insert id pr.delivered })
    | MFlushReq ->
      (* Learning of the failure from the coordinator counts as
         detection. *)
      let st =
        set_proc st dst (fun pr ->
            { pr with
              flushing = true;
              replied = true;
              suspects = sorted_insert 0 pr.suspects })
      in
      push st ~src:dst ~dst:src (MFlushReply (proc st dst).delivered)
    | MFlushReply del ->
      let st =
        set_proc st dst (fun pr ->
            { pr with replies = List.sort compare ((src, del) :: List.remove_assoc src pr.replies) })
      in
      maybe_complete st dst
    | MFwd ms ->
      set_proc st dst (fun pr ->
          { pr with delivered = List.sort_uniq compare (ms @ pr.delivered) })
    | MInstall v ->
      set_proc st dst (fun pr -> { pr with view = v; flushing = false; replied = false })

let system () =
  (module struct
    type nonrec state = state
    type nonrec action = action

    let initial =
      let pr p =
        { alive = true;
          suspects = [];
          view = [ 0; 1; 2 ];
          delivered = (if p = 2 then [ 100 ] else if p = 0 then [ 50 ] else []);
          flushing = false;
          replied = false;
          replies = [] }
      in
      let st = { procs = List.init 3 pr; chans = []; crashed0 = false } in
      let st = push st ~src:2 ~dst:0 (MData 100) in
      let st = push st ~src:2 ~dst:1 (MData 100) in
      (* The dying coordinator's own cast: the straggler candidate. *)
      let st = push st ~src:0 ~dst:1 (MData 50) in
      push st ~src:0 ~dst:2 (MData 50)

    let initial = [ initial ]

    let enabled st =
      let deliveries = List.map (fun ((s, d), _) -> Deliver (s, d)) st.chans in
      let crash = if not st.crashed0 then [ Crash0 ] else [] in
      let detects =
        if st.crashed0 then
          List.filter_map
            (fun p ->
               let pr = proc st p in
               if pr.alive && not (List.mem 0 pr.suspects) then Some (Detect p) else None)
            survivors
        else []
      in
      deliveries @ crash @ detects

    let step st = function
      | Deliver (src, dst) ->
        (match chan st (src, dst) with
         | [] -> st
         | m :: rest -> receive (set_chan st (src, dst) rest) ~src ~dst m)
      | Crash0 ->
        let st = set_proc st 0 (fun pr -> { pr with alive = false }) in
        { st with crashed0 = true }
      | Detect p ->
        let st = set_proc st p (fun pr -> { pr with suspects = sorted_insert 0 pr.suspects }) in
        (* Takeover: if p now believes itself coordinator and is not
           already flushing as such, it starts the flush. *)
        let pr = proc st p in
        if coordinator_for pr = Some p && pr.replies = [] && not pr.flushing then
          start_flush st p
        else st

    let invariants =
      [ ( "only process 1 ever coordinates a flush",
          fun st -> (proc st 2).replies = [] ) ]

    let terminal_checks =
      [ ( "survivors install {1,2}",
          fun st -> List.for_all (fun p -> (proc st p).view = survivors) survivors );
        ( "survivors agree on deliveries",
          fun st -> (proc st 1).delivered = (proc st 2).delivered ) ]

    let pp_action fmt = function
      | Deliver (s, d) -> Format.fprintf fmt "deliver %d->%d" s d
      | Crash0 -> Format.fprintf fmt "crash 0"
      | Detect p -> Format.fprintf fmt "detect@%d" p

    let pp_state fmt st =
      List.iteri
        (fun i pr ->
           Format.fprintf fmt "p%d%s[%s]v%d " i
             (if pr.alive then "" else "(dead)")
             (String.concat "," (List.map string_of_int pr.delivered))
             (List.length pr.view))
        st.procs;
      Format.fprintf fmt "chans=%d" (List.length st.chans)
  end : Automaton.SYSTEM with type state = state and type action = action)
