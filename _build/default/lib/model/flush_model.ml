(* Reference model of the MBRSHIP flush protocol (Sections 5 and 8).

   Three processes; process 2 casts message 100 (already delivered
   locally) whose copies are still in flight, then may crash — the
   Figure 2 situation. Optionally process 0 has a concurrent cast of
   its own in flight. The adversary schedules every possible
   interleaving of packet deliveries, the crash, and the failure
   detection; channels are per-pair FIFO (the guarantee NAK provides
   beneath MBRSHIP) but deliveries across pairs commute freely.

   The model is parameterized on the rule from Section 5 — "the members
   ignore messages that they may receive from supposedly failed
   members" after answering the flush. With the rule the checker proves
   (by exhaustion) that every quiescent state satisfies view agreement
   and virtual synchrony; without it the checker produces the
   counterexample trace in which a straggler copy from the crashed
   member reaches exactly one survivor after its flush reply. Finding
   that trace is what this module is for: the same omission was caught
   in this repository's production MBRSHIP layer by writing this
   model (see DESIGN.md). *)

type msg =
  | MData of int
  | MFlushReq
  | MFlushReply of int list  (* replier's delivered set *)
  | MFwd of int list         (* forwarded copies *)
  | MInstall of int list     (* new view *)

type proc = {
  alive : bool;
  delivered : int list;  (* sorted set of message ids *)
  view : int list;
  flushing : bool;
  replied : bool;
}

type state = {
  procs : proc list;           (* index = process id; 0 is the coordinator *)
  chans : ((int * int) * msg list) list;  (* FIFO per (src,dst); sorted; no empties *)
  crashes_left : int;
  detected : bool;
  replies : (int * int list) list;  (* collected at the coordinator; sorted *)
}

type action =
  | Deliver of int * int  (* src, dst *)
  | Crash of int
  | Detect

let sorted_insert x l = List.sort_uniq compare (x :: l)

let chan state key = Option.value (List.assoc_opt key state.chans) ~default:[]

let set_chan state key msgs =
  let rest = List.remove_assoc key state.chans in
  let chans = if msgs = [] then rest else (key, msgs) :: rest in
  { state with chans = List.sort compare chans }

let push state ~src ~dst m = set_chan state (src, dst) (chan state (src, dst) @ [ m ])

let proc state p = List.nth state.procs p

let set_proc state p f =
  { state with procs = List.mapi (fun i pr -> if i = p then f pr else pr) state.procs }

let coordinator = 0

let failed_set = [ 2 ]

let n_procs = 3

let survivors = [ 0; 1 ]

(* [system ~ignore_stragglers ~survivor_cast ()] builds the automaton. *)
let system ~ignore_stragglers ~survivor_cast () =
  (module struct
    type nonrec state = state
    type nonrec action = action

    let initial =
      let base_proc = { alive = true; delivered = []; view = [ 0; 1; 2 ]; flushing = false; replied = false } in
      let procs =
        [ { base_proc with delivered = (if survivor_cast then [ 50 ] else []) };
          base_proc;
          { base_proc with delivered = [ 100 ] } ]
      in
      let st = { procs; chans = []; crashes_left = 1; detected = false; replies = [] } in
      (* Process 2's cast is in flight to 0 and 1. *)
      let st = push st ~src:2 ~dst:0 (MData 100) in
      let st = push st ~src:2 ~dst:1 (MData 100) in
      (* Optionally process 0's own cast is in flight to 1 and 2. *)
      let st =
        if survivor_cast then
          push (push st ~src:0 ~dst:1 (MData 50)) ~src:0 ~dst:2 (MData 50)
        else st
      in
      [ st ]

    let enabled st =
      let deliveries = List.map (fun ((src, dst), _) -> Deliver (src, dst)) st.chans in
      let crashes =
        if st.crashes_left > 0 && (proc st 2).alive then [ Crash 2 ] else []
      in
      let detects = if (not (proc st 2).alive) && not st.detected then [ Detect ] else [] in
      deliveries @ crashes @ detects

    (* The coordinator completes the flush when every survivor has
       replied: compute the union cut, forward what each misses, then
       install the new view. Per-channel FIFO makes the forwarded
       copies arrive before the install. *)
    let maybe_complete st =
      if List.length st.replies = List.length survivors then begin
        let cut =
          List.sort_uniq compare (List.concat_map snd st.replies)
        in
        let st =
          List.fold_left
            (fun st (r, del) ->
               let missing = List.filter (fun m -> not (List.mem m del)) cut in
               let st = if missing = [] then st else push st ~src:coordinator ~dst:r (MFwd missing) in
               push st ~src:coordinator ~dst:r (MInstall survivors))
            st st.replies
        in
        { st with replies = [] }
      end
      else st

    let receive st ~src ~dst m =
      let pr = proc st dst in
      if not pr.alive then st
      else
        match m with
        | MData id ->
          if not (List.mem src pr.view) then st  (* epoch/COM filter *)
          else if
            ignore_stragglers && pr.flushing && pr.replied && List.mem src failed_set
          then st  (* Section 5's ignore rule *)
          else set_proc st dst (fun pr -> { pr with delivered = sorted_insert id pr.delivered })
        | MFlushReq ->
          (* The application's flush_ok is immediate in this model. *)
          let st =
            set_proc st dst (fun pr -> { pr with flushing = true; replied = true })
          in
          push st ~src:dst ~dst:coordinator (MFlushReply (proc st dst).delivered)
        | MFlushReply del ->
          if dst <> coordinator then st
          else
            maybe_complete
              { st with replies = List.sort compare ((src, del) :: List.remove_assoc src st.replies) }
        | MFwd ms ->
          set_proc st dst (fun pr ->
              { pr with delivered = List.sort_uniq compare (ms @ pr.delivered) })
        | MInstall v ->
          set_proc st dst (fun pr -> { pr with view = v; flushing = false; replied = false })

    let step st = function
      | Deliver (src, dst) ->
        (match chan st (src, dst) with
         | [] -> st
         | m :: rest -> receive (set_chan st (src, dst) rest) ~src ~dst m)
      | Crash p ->
        let st = set_proc st p (fun pr -> { pr with alive = false }) in
        { st with crashes_left = st.crashes_left - 1 }
      | Detect ->
        (* The coordinator flushes: requests go to every survivor,
           itself included (its own runs over the loopback channel). *)
        let st = { st with detected = true } in
        List.fold_left (fun st p -> push st ~src:coordinator ~dst:p MFlushReq) st survivors

    let invariants =
      [ ( "views only shrink to the survivor set",
          fun st ->
            List.for_all
              (fun p -> (proc st p).view = [ 0; 1; 2 ] || (proc st p).view = survivors)
              survivors ) ]

    let terminal_checks =
      [ ( "view agreement: survivors end in {0,1}",
          fun st -> List.for_all (fun p -> (proc st p).view = survivors) survivors );
        ( "virtual synchrony: survivors delivered the same set",
          fun st -> (proc st 0).delivered = (proc st 1).delivered ) ]

    let pp_action fmt = function
      | Deliver (s, d) -> Format.fprintf fmt "deliver %d->%d" s d
      | Crash p -> Format.fprintf fmt "crash %d" p
      | Detect -> Format.fprintf fmt "detect"

    let pp_state fmt st =
      List.iteri
        (fun i pr ->
           Format.fprintf fmt "p%d%s[%s]%s " i
             (if pr.alive then "" else "(dead)")
             (String.concat "," (List.map string_of_int pr.delivered))
             (if pr.replied then "*" else ""))
        st.procs;
      Format.fprintf fmt "chans=%d" (List.length st.chans)
  end : Automaton.SYSTEM with type state = state and type action = action)
