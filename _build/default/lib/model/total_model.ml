(* Reference model of the TOTAL token protocol (Section 7).

   Three processes over an abstracted virtually-synchronous transport:
   reliable per-pair FIFO channels, no loss, no crash (crash recovery
   is MBRSHIP's job and is modelled separately in Flush_model; the
   paper notes TOTAL needs no failure handling of its own). Each
   process wants to cast one message. The adversary interleaves
   deliveries arbitrarily; the checker verifies that in every quiescent
   state all processes have delivered all three messages in the *same*
   order — total order — and that the protocol never deadlocks with an
   undelivered backlog (every terminal state has empty queues).

   The token carries the next global sequence number; a process with a
   backlog broadcasts a request; the holder drains its own backlog and
   hands the token to the first requester it knows of. *)

type msg =
  | MOrdered of int * int  (* gseq, payload id *)
  | MRequest of int        (* requester id *)
  | MToken of int * int    (* new holder id, next gseq *)

type proc = {
  wants : int list;        (* payload ids still to cast *)
  delivered : int list;    (* payload ids in delivery order *)
  next_deliver : int;      (* next gseq to deliver *)
  buffer : (int * int) list;  (* (gseq, payload), sorted *)
  holder : int;            (* believed holder *)
  next_gseq : int;         (* meaningful at the holder *)
  requested : bool;
  requests : int list;     (* pending requester ids, oldest first *)
}

type state = {
  procs : proc list;
  chans : ((int * int) * msg list) list;  (* FIFO per (src,dst) *)
}

type action =
  | Deliver of int * int
  | Submit of int  (* process decides to start casting its message *)

let n_procs = 3

let chan st key = Option.value (List.assoc_opt key st.chans) ~default:[]

let set_chan st key msgs =
  let rest = List.remove_assoc key st.chans in
  let chans = if msgs = [] then rest else (key, msgs) :: rest in
  { st with chans = List.sort compare chans }

(* Broadcast = one copy on every channel from [src], including the
   loopback channel (src,src), preserving the all-destinations FIFO of
   the VS transport underneath. *)
let bcast st ~src m =
  List.fold_left
    (fun st dst -> set_chan st (src, dst) (chan st (src, dst) @ [ m ]))
    st
    (List.init n_procs (fun i -> i))

let proc st p = List.nth st.procs p

let set_proc st p f =
  { st with procs = List.mapi (fun i pr -> if i = p then f pr else pr) st.procs }

(* Holder-side drain: emit ORDERED for the backlog, then hand over. *)
let rec drain st p =
  let pr = proc st p in
  if pr.holder <> p then st
  else
    match pr.wants with
    | w :: rest ->
      let st = bcast st ~src:p (MOrdered (pr.next_gseq, w)) in
      let st =
        set_proc st p (fun pr -> { pr with wants = rest; next_gseq = pr.next_gseq + 1 })
      in
      drain st p
    | [] ->
      (match pr.requests with
       | r :: rest when r <> p ->
         (* The grant must update the holder's own belief synchronously
            — waiting for the loopback copy of the TOKEN leaves a
            window in which a second request makes the stale holder
            grant a second token (the exhaustive checker finds that
            divergence immediately; the production layer updates
            synchronously, as must the model). *)
         let st = set_proc st p (fun pr -> { pr with requests = rest; holder = r }) in
         bcast st ~src:p (MToken (r, (proc st p).next_gseq))
       | r :: rest when r = p -> set_proc st p (fun pr -> { pr with requests = rest })
       | _ -> st)

let rec deliver_ready st p =
  let pr = proc st p in
  match List.assoc_opt pr.next_deliver pr.buffer with
  | Some payload ->
    let st =
      set_proc st p (fun pr ->
          { pr with
            delivered = pr.delivered @ [ payload ];
            buffer = List.remove_assoc pr.next_deliver pr.buffer;
            next_deliver = pr.next_deliver + 1 })
    in
    deliver_ready st p
  | None -> st

let receive st ~dst m =
  match m with
  | MOrdered (g, payload) ->
    let st =
      set_proc st dst (fun pr -> { pr with buffer = List.sort compare ((g, payload) :: pr.buffer) })
    in
    deliver_ready st dst
  | MRequest r ->
    let pr = proc st dst in
    let st =
      if List.mem r pr.requests then st
      else set_proc st dst (fun pr -> { pr with requests = pr.requests @ [ r ] })
    in
    if (proc st dst).holder = dst then drain st dst else st
  | MToken (to_p, gseq) ->
    let st =
      set_proc st dst (fun pr ->
          { pr with
            holder = to_p;
            requests = List.filter (fun r -> r <> to_p) pr.requests;
            next_gseq = (if dst = to_p then gseq else pr.next_gseq);
            requested = (if dst = to_p then false else pr.requested) })
    in
    if to_p = dst then drain st dst else st

let system () =
  (module struct
    type nonrec state = state
    type nonrec action = action

    let initial =
      (* p0 (initial holder) has nothing to send; p1 and p2 each cast
         one message — enough to exercise request, grant and handover
         while keeping the interleaving space exhaustible. *)
      let pr p =
        { wants = (if p = 0 then [] else [ 100 + p ]);
          delivered = [];
          next_deliver = 0;
          buffer = [];
          holder = 0;
          next_gseq = 0;
          requested = false;
          requests = [] }
      in
      [ { procs = List.init n_procs pr; chans = [] } ]

    let enabled st =
      let deliveries = List.map (fun ((s, d), _) -> Deliver (s, d)) st.chans in
      let submits =
        List.concat
          (List.mapi
             (fun i pr -> if pr.wants <> [] && not pr.requested then [ Submit i ] else [])
             st.procs)
      in
      deliveries @ submits

    let step st = function
      | Deliver (src, dst) ->
        (match chan st (src, dst) with
         | [] -> st
         | m :: rest -> receive (set_chan st (src, dst) rest) ~dst m)
      | Submit p ->
        let pr = proc st p in
        if pr.holder = p then drain st p
        else begin
          let st = set_proc st p (fun pr -> { pr with requested = true }) in
          bcast st ~src:p (MRequest p)
        end

    let invariants =
      [ ( "delivered sequences are consistent prefixes",
          fun st ->
            let seqs = List.map (fun pr -> pr.delivered) st.procs in
            List.for_all
              (fun s1 ->
                 List.for_all
                   (fun s2 ->
                      let rec prefix a b =
                        match (a, b) with
                        | [], _ | _, [] -> true
                        | x :: a', y :: b' -> x = y && prefix a' b'
                      in
                      prefix s1 s2)
                   seqs)
              seqs ) ]

    let terminal_checks =
      [ ( "everyone delivered both messages",
          fun st -> List.for_all (fun pr -> List.length pr.delivered = 2) st.procs );
        ( "identical total order",
          fun st ->
            match st.procs with
            | first :: rest -> List.for_all (fun pr -> pr.delivered = first.delivered) rest
            | [] -> true ) ]

    let pp_action fmt = function
      | Deliver (s, d) -> Format.fprintf fmt "deliver %d->%d" s d
      | Submit p -> Format.fprintf fmt "submit %d" p

    let pp_state fmt st =
      List.iteri
        (fun i pr ->
           Format.fprintf fmt "p%d[%s]%s " i
             (String.concat "," (List.map string_of_int pr.delivered))
             (if pr.holder = i then "(T)" else ""))
        st.procs;
      Format.fprintf fmt "chans=%d" (List.length st.chans)
  end : Automaton.SYSTEM with type state = state and type action = action)
