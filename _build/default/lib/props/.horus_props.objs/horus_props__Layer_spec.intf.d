lib/props/layer_spec.mli: Format Property
