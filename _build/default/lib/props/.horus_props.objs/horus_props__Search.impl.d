lib/props/search.ml: Check Hashtbl Horus_util Layer_spec List Property String
