lib/props/property.mli: Format
