lib/props/property.ml: Format Horus_util List Printf
