lib/props/layer_spec.ml: Format List Property
