lib/props/check.mli: Format Layer_spec Property
