lib/props/check.ml: Format Layer_spec List Property
