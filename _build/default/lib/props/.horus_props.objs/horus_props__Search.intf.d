lib/props/search.mli: Layer_spec Property
