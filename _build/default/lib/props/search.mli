(** Minimal-stack synthesis: given network properties and application
    requirements, find the cheapest well-formed stack (Section 6). *)

type result_stack = {
  layers : Layer_spec.t list;  (** top-first, like spec strings *)
  provides : Property.Set.t;
  cost : int;
}

val search :
  ?layers:Layer_spec.t list ->
  net:Property.Set.t ->
  required:Property.Set.t ->
  unit ->
  result_stack option
(** Dijkstra over property sets; ties break on fewer layers then on
    catalogue order, so results are deterministic. [None] when no
    stack over [layers] can provide [required]. *)

val spec_string : result_stack -> string
(** "TOTAL:MBRSHIP:...:COM" form of a result. *)

val enumerate :
  ?layers:Layer_spec.t list ->
  ?max_depth:int ->
  net:Property.Set.t ->
  required:Property.Set.t ->
  unit ->
  Layer_spec.t list list
(** All satisfying stacks up to [max_depth] (top-first each). *)
