(** The sixteen protocol properties of Table 4 and property sets. *)

type t =
  | P1_best_effort
  | P2_prioritized
  | P3_fifo_unicast
  | P4_fifo_multicast
  | P5_causal
  | P6_total_order
  | P7_safe_delivery
  | P8_virtually_semi_synchronous
  | P9_virtually_synchronous
  | P10_byte_reordering_detection
  | P11_source_address
  | P12_large_messages
  | P13_causal_timestamps
  | P14_stability_information
  | P15_consistent_views
  | P16_automatic_view_merging

val all : t list

val number : t -> int
(** 1-based Table 4 numbering. *)

val of_number : int -> t
val description : t -> string
val pp : Format.formatter -> t -> unit
val pp_long : Format.formatter -> t -> unit

(** Property sets, backed by bitsets (cheap value semantics for the
    synthesis search). *)
module Set : sig
  type property := t
  type t

  val empty : t
  val add : t -> property -> t
  val mem : t -> property -> bool
  val of_list : property list -> t
  val of_numbers : int list -> t
  val to_list : t -> property list
  val union : t -> t -> t
  val inter : t -> t -> t
  val diff : t -> t -> t
  val subset : t -> t -> bool
  val equal : t -> t -> bool
  val is_empty : t -> bool
  val cardinal : t -> int
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end
