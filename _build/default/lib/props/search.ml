(* Minimal-stack synthesis (Section 6): "given a set of network
   properties and required properties for an application, it is
   possible to figure out if a stack exists that can implement the
   requirements ... we can even create a minimal stack."

   States are property sets (16 bits, so at most 65536 states); an edge
   applies one layer whose requirements are met, at that layer's cost.
   Dijkstra over this graph yields the cheapest stack. Ties break on
   fewer layers, then on Table 3 order, so results are deterministic. *)

type result_stack = {
  layers : Layer_spec.t list;  (* top-first, like spec strings *)
  provides : Property.Set.t;
  cost : int;
}

(* Priority queue keys: cost, then depth, then insertion order. *)
type node = {
  key : int * int * int;
  props : Property.Set.t;
  path : Layer_spec.t list;  (* reverse order of application = top-first *)
}

let search ?(layers = Layer_spec.all) ~net ~required () =
  let module H = Horus_util.Heap in
  let best : (Property.Set.t, int * int) Hashtbl.t = Hashtbl.create 256 in
  let queue = H.create ~compare:(fun a b -> compare a.key b.key) in
  let counter = ref 0 in
  let push ~cost ~depth props path =
    incr counter;
    H.push queue { key = (cost, depth, !counter); props; path }
  in
  push ~cost:0 ~depth:0 net [];
  let rec loop () =
    match H.pop queue with
    | None -> None
    | Some { key = (cost, depth, _); props; path } ->
      if Property.Set.subset required props then
        Some { layers = path; provides = props; cost }
      else begin
        let dominated =
          match Hashtbl.find_opt best props with
          | Some (c, d) -> (c, d) <= (cost, depth)
          | None -> false
        in
        if dominated then loop ()
        else begin
          Hashtbl.replace best props (cost, depth);
          List.iter
            (fun (spec : Layer_spec.t) ->
               match Check.step props spec with
               | Error _ -> ()
               | Ok above ->
                 if not (Property.Set.equal above props) then
                   push ~cost:(cost + spec.cost) ~depth:(depth + 1) above (spec :: path))
            layers;
          loop ()
        end
      end
  in
  loop ()

let spec_string result = String.concat ":" (List.map (fun (s : Layer_spec.t) -> s.name) result.layers)

(* All well-formed stacks over [layers] up to [max_depth] that satisfy
   [required]; used by exhaustiveness tests and the "LEGO" bench. *)
let enumerate ?(layers = Layer_spec.all) ?(max_depth = 6) ~net ~required () =
  let results = ref [] in
  (* [path] head is the most recently applied layer, i.e. the top. *)
  let rec go props path depth =
    if Property.Set.subset required props && path <> [] then
      results := path :: !results;
    if depth < max_depth then
      List.iter
        (fun (spec : Layer_spec.t) ->
           match Check.step props spec with
           | Error _ -> ()
           | Ok above ->
             if not (Property.Set.equal above props) then
               go above (spec :: path) (depth + 1))
        layers
  in
  go net [] 0;
  List.rev !results
