(* The sixteen protocol properties of Table 4.

   A property is either a requirement on the communication guarantees
   provided underneath a protocol, or a guarantee provided by the
   protocol itself (Section 6). *)

type t =
  | P1_best_effort
  | P2_prioritized
  | P3_fifo_unicast
  | P4_fifo_multicast
  | P5_causal
  | P6_total_order
  | P7_safe_delivery
  | P8_virtually_semi_synchronous
  | P9_virtually_synchronous
  | P10_byte_reordering_detection
  | P11_source_address
  | P12_large_messages
  | P13_causal_timestamps
  | P14_stability_information
  | P15_consistent_views
  | P16_automatic_view_merging

let all =
  [ P1_best_effort; P2_prioritized; P3_fifo_unicast; P4_fifo_multicast;
    P5_causal; P6_total_order; P7_safe_delivery;
    P8_virtually_semi_synchronous; P9_virtually_synchronous;
    P10_byte_reordering_detection; P11_source_address; P12_large_messages;
    P13_causal_timestamps; P14_stability_information; P15_consistent_views;
    P16_automatic_view_merging ]

(* Table 4 numbering, 1-based as in the paper. *)
let number = function
  | P1_best_effort -> 1
  | P2_prioritized -> 2
  | P3_fifo_unicast -> 3
  | P4_fifo_multicast -> 4
  | P5_causal -> 5
  | P6_total_order -> 6
  | P7_safe_delivery -> 7
  | P8_virtually_semi_synchronous -> 8
  | P9_virtually_synchronous -> 9
  | P10_byte_reordering_detection -> 10
  | P11_source_address -> 11
  | P12_large_messages -> 12
  | P13_causal_timestamps -> 13
  | P14_stability_information -> 14
  | P15_consistent_views -> 15
  | P16_automatic_view_merging -> 16

let of_number n =
  match List.find_opt (fun p -> number p = n) all with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Property.of_number: %d" n)

let description = function
  | P1_best_effort -> "best effort delivery"
  | P2_prioritized -> "prioritized effort delivery"
  | P3_fifo_unicast -> "FIFO unicast delivery"
  | P4_fifo_multicast -> "FIFO multicast delivery"
  | P5_causal -> "causal delivery"
  | P6_total_order -> "totally ordered delivery"
  | P7_safe_delivery -> "safe delivery"
  | P8_virtually_semi_synchronous -> "virtually semi-synchronous delivery"
  | P9_virtually_synchronous -> "virtually synchronous delivery"
  | P10_byte_reordering_detection -> "byte re-ordering detection"
  | P11_source_address -> "source address"
  | P12_large_messages -> "large messages"
  | P13_causal_timestamps -> "causal timestamps"
  | P14_stability_information -> "stability information"
  | P15_consistent_views -> "consistent views"
  | P16_automatic_view_merging -> "automatic view merging"

let pp fmt p = Format.fprintf fmt "P%d" (number p)

let pp_long fmt p = Format.fprintf fmt "P%d (%s)" (number p) (description p)

(* --- property sets, backed by bitsets (bit i-1 for Pi) --- *)

module Set = struct
  type t = Horus_util.Bitset.t

  let empty = Horus_util.Bitset.empty

  let add s p = Horus_util.Bitset.add s (number p - 1)

  let mem s p = Horus_util.Bitset.mem s (number p - 1)

  let of_list ps = List.fold_left add empty ps

  let of_numbers ns = of_list (List.map of_number ns)

  let to_list s = List.map (fun i -> of_number (i + 1)) (Horus_util.Bitset.to_list s)

  let union = Horus_util.Bitset.union
  let inter = Horus_util.Bitset.inter
  let diff = Horus_util.Bitset.diff
  let subset = Horus_util.Bitset.subset
  let equal = Horus_util.Bitset.equal
  let is_empty = Horus_util.Bitset.is_empty
  let cardinal = Horus_util.Bitset.cardinal
  let compare = Horus_util.Bitset.compare
  let hash = Horus_util.Bitset.hash

  let pp fmt s =
    Format.fprintf fmt "{%a}"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ",") pp)
      (to_list s)

  let to_string s = Format.asprintf "%a" pp s
end
