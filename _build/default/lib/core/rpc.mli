(** Request/reply correlation over a group's subset sends (Figure 1's
    "rpc" type): client/server interactions built over the group
    abstraction. *)

open Horus_msg

type outcome = [ `Reply of string | `Timeout ]

type t

val attach :
  ?handler:(rank:int -> string -> string) ->
  ?on_up:(Horus_hcpi.Event.up -> unit) ->
  Group.t -> t
(** Take over the group handle's upcall callback for RPC routing.
    [handler] serves incoming calls (default replies ""); [on_up]
    receives all non-RPC events so the application keeps its own
    event handling. *)

val set_handler : t -> (rank:int -> string -> string) -> unit

val call : ?timeout:float -> t -> server:Addr.endpoint -> string -> (outcome -> unit) -> unit
(** Asynchronous call; the continuation fires with the reply or, after
    [timeout] (default 1 s), with [`Timeout]. *)

val group : t -> Group.t

val stats : t -> int * int
(** (calls made, calls served). *)
