lib/core/rpc.ml: Addr Char Endpoint Group Hashtbl Horus_hcpi Horus_msg Msg Option World
