lib/core/group.mli: Addr Endpoint Event Horus_hcpi Horus_msg Layer Msg Stack View
