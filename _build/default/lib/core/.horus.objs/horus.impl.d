lib/core/horus.ml: Endpoint Group Horus_hcpi Horus_msg Horus_props List Rpc Socket State_transfer World
