lib/core/socket.mli: Addr Endpoint Group Horus_msg
