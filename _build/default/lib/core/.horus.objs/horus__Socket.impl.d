lib/core/socket.ml: Group Horus_hcpi Horus_msg Msg Queue
