lib/core/state_transfer.mli: Group Horus_hcpi
