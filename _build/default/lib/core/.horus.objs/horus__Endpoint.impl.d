lib/core/endpoint.ml: Addr Bytes Hashtbl Horus_hcpi Horus_msg Horus_sim Int32 List Msg World
