lib/core/endpoint.mli: Addr Horus_hcpi Horus_msg Msg World
