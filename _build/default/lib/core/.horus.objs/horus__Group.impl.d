lib/core/group.ml: Addr Endpoint Event Format Horus_hcpi Horus_msg Horus_sim Horus_util Lazy List Msg Spec Stack View World
