lib/core/rpc.mli: Addr Group Horus_hcpi Horus_msg
