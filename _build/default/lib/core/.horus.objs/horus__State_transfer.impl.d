lib/core/state_transfer.ml: Addr Char Group Horus_hcpi Horus_msg Msg
