lib/core/world.ml: Addr Hashtbl Horus_hcpi Horus_layers Horus_msg Horus_sim Horus_util Layer List
