lib/core/world.mli: Addr Horus_hcpi Horus_msg Horus_sim Horus_util Layer
