(* RPC: client/server interactions over a group (Figure 1's "rpc"
   type).

   The x-kernel discussion in Section 12 notes that request-response is
   awkward to force into a pure layered interface; Horus instead builds
   it *over* the group abstraction. This module correlates requests and
   replies on top of a group handle's subset sends: a call addresses one
   member (by address), the serving side's handler produces the reply
   payload, and the reply is routed back to the caller's continuation.
   Calls that receive no reply within the timeout fail, so a crashed
   server shows up as [`Timeout] rather than a hang. *)

open Horus_msg

type outcome = [ `Reply of string | `Timeout ]

type t = {
  group : Group.t;
  world : World.t;
  mutable next_call : int;
  pending : (int, outcome -> unit) Hashtbl.t;
  mutable handler : rank:int -> string -> string;
  mutable calls_made : int;
  mutable calls_served : int;
}

(* Frame: kind byte ('Q' request / 'P' reply), u32 call id, payload. *)
let frame ~kind ~id payload =
  let m = Msg.create payload in
  Msg.push_u32 m id;
  Msg.push_u8 m (Char.code kind);
  m

let parse m =
  let kind = Char.chr (Msg.pop_u8 m) in
  let id = Msg.pop_u32 m in
  (kind, id, Msg.to_string m)

let default_handler ~rank:_ _ = ""

(* [attach] takes over the group's upcall callback; [on_up] receives
   everything that is not RPC traffic (view changes, casts, non-RPC
   sends), so applications can keep their own event handling. *)
let attach ?(handler = default_handler) ?(on_up = fun (_ : Horus_hcpi.Event.up) -> ()) group =
  let world = Endpoint.world (Group.endpoint group) in
  let t =
    { group;
      world;
      next_call = 0;
      pending = Hashtbl.create 8;
      handler;
      calls_made = 0;
      calls_served = 0 }
  in
  Group.set_on_up group (fun ev ->
      match ev with
      | Horus_hcpi.Event.U_send (rank, m, meta) ->
        (try
           match parse (Msg.copy m) with
           | 'Q', id, payload ->
             t.calls_served <- t.calls_served + 1;
             let reply = t.handler ~rank payload in
             let src =
               Horus_hcpi.Event.meta_find meta "src_eid"
               |> Option.map Addr.endpoint
             in
             (match src with
              | Some caller -> Group.send_msg t.group [ caller ] (frame ~kind:'P' ~id reply)
              | None -> ())
           | 'P', id, payload ->
             (match Hashtbl.find_opt t.pending id with
              | Some k ->
                Hashtbl.remove t.pending id;
                k (`Reply payload)
              | None -> ())
           | _ -> on_up ev
         with Msg.Truncated _ -> on_up ev)
      | _ -> on_up ev);
  t

let set_handler t handler = t.handler <- handler

let call ?(timeout = 1.0) t ~server payload k =
  let id = t.next_call in
  t.next_call <- id + 1;
  t.calls_made <- t.calls_made + 1;
  Hashtbl.replace t.pending id k;
  Group.send_msg t.group [ server ] (frame ~kind:'Q' ~id payload);
  World.after t.world ~delay:timeout (fun () ->
      match Hashtbl.find_opt t.pending id with
      | Some k ->
        Hashtbl.remove t.pending id;
        k `Timeout
      | None -> ())

let group t = t.group

let stats t = (t.calls_made, t.calls_served)
