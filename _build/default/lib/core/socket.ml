(* UNIX-socket facade (Sections 2 and 11): the top-most module that
   deviates from the HCPI standard to match a user's expectations.
   sendto maps to a multicast to the group; recvfrom returns the next
   incoming message. *)

open Horus_msg

type t = {
  group : Group.t;
  pending : (int * string) Queue.t;  (* (source rank, payload) *)
}

let create ?contact endpoint group_addr =
  let pending = Queue.create () in
  let on_up (ev : Horus_hcpi.Event.up) =
    match ev with
    | Horus_hcpi.Event.U_cast (rank, m, _) | Horus_hcpi.Event.U_send (rank, m, _) ->
      Queue.push (rank, Msg.to_string m) pending
    | _ -> ()
  in
  { group = Group.join ?contact ~on_up endpoint group_addr; pending }

let group t = t.group

let sendto t payload = Group.cast t.group payload

(* Non-blocking: [None] when no message is waiting (a real socket would
   block; in a simulation, run the world instead). *)
let recvfrom t = if Queue.is_empty t.pending then None else Some (Queue.pop t.pending)

let pending t = Queue.length t.pending

let close t = Group.leave t.group
