(** State transfer to joining members — Isis's "join a group and obtain
    its state", rebuilt over the group abstraction. The coordinator
    snapshots the application state ([get]) and sends it to each new
    member, which adopts it ([set]); virtual synchrony makes the view
    installation a consistent cut. Owns the group's upcall callback
    (forwards non-transfer events to [on_up]). *)

type t

val attach :
  get:(unit -> string) ->
  set:(string -> unit) ->
  ?on_up:(Horus_hcpi.Event.up -> unit) ->
  Group.t -> t

val stats : t -> int * int
(** (snapshots sent, snapshots received). *)
