(* State transfer to joining members.

   The Isis toolkit that Horus grew out of supported "joining a group
   and obtaining its state"; this helper rebuilds that over the group
   abstraction. The application supplies [get] (snapshot my state) and
   [set] (adopt a snapshot). Whenever a view installs with members that
   were not in the previous view, the coordinator sends each joiner a
   snapshot over the reliable subset-send channel; virtual synchrony
   puts the view installation at a consistent cut, so the snapshot plus
   the casts delivered after the view equals the established members'
   state.

   Like {!Rpc}, the helper owns the group's upcall callback and claims
   a one-byte frame tag on subset sends; everything else is forwarded
   to [on_up]. *)

open Horus_msg

type t = {
  group : Group.t;
  get : unit -> string;
  set : string -> unit;
  mutable previous : Addr.Endpoint_set.t;
  mutable transfers_sent : int;
  mutable transfers_received : int;
}

let tag = 'S'

let on_view t v =
  let current = Addr.Endpoint_set.of_list (Horus_hcpi.View.members v) in
  let joiners = Addr.Endpoint_set.diff current t.previous in
  let i_coordinate =
    Addr.equal_endpoint (Horus_hcpi.View.coordinator v) (Group.addr t.group)
  in
  let was_established = not (Addr.Endpoint_set.is_empty t.previous) in
  if i_coordinate && was_established && not (Addr.Endpoint_set.is_empty joiners) then
    Addr.Endpoint_set.iter
      (fun joiner ->
         if not (Addr.equal_endpoint joiner (Group.addr t.group)) then begin
           t.transfers_sent <- t.transfers_sent + 1;
           let m = Msg.create (t.get ()) in
           Msg.push_u8 m (Char.code tag);
           Group.send_msg t.group [ joiner ] m
         end)
      joiners;
  t.previous <- current

let attach ~get ~set ?(on_up = fun (_ : Horus_hcpi.Event.up) -> ()) group =
  let t =
    { group;
      get;
      set;
      (* If the group already has a view when we attach (the usual
         case: attach right after join), that view is the baseline —
         its members are established, not joiners. *)
      previous =
        (match Group.view group with
         | Some v -> Addr.Endpoint_set.of_list (Horus_hcpi.View.members v)
         | None -> Addr.Endpoint_set.empty);
      transfers_sent = 0;
      transfers_received = 0 }
  in
  Group.set_on_up group (fun ev ->
      match ev with
      | Horus_hcpi.Event.U_view v ->
        on_view t v;
        on_up ev
      | Horus_hcpi.Event.U_send (_, m, _) ->
        let m' = Msg.copy m in
        (try
           if Char.chr (Msg.pop_u8 m') = tag then begin
             t.transfers_received <- t.transfers_received + 1;
             t.set (Msg.to_string m')
           end
           else on_up ev
         with Msg.Truncated _ -> on_up ev)
      | _ -> on_up ev);
  t

let stats t = (t.transfers_sent, t.transfers_received)
