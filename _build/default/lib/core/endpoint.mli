(** A communication endpoint: a network attachment plus a protocol
    stack spec. Joining a group (see {!Group}) instantiates a fresh
    stack over the endpoint. *)

open Horus_msg

type t

val create : World.t -> spec:string -> t
(** [create world ~spec] allocates an address, attaches to the network,
    and parses [spec] (e.g. ["TOTAL:MBRSHIP:FRAG:NAK:COM"]). Raises
    {!Horus_hcpi.Spec.Parse_error} on a bad spec. *)

val world : t -> World.t
val addr : t -> Addr.endpoint
val node : t -> int
val spec : t -> Horus_hcpi.Spec.t
val is_crashed : t -> bool

val crash : t -> unit
(** Crash the endpoint: network traffic stops and all its stacks halt
    silently. *)

(**/**)

(** Internal plumbing for {!Group}. *)

val register_route : t -> gid:int -> (src:int -> Msg.t -> unit) -> unit
val unregister_route : t -> gid:int -> unit
val add_crash_hook : t -> (unit -> unit) -> unit
val transport : t -> gid:int -> Horus_hcpi.Layer.transport
