(* A communication endpoint (Section 3).

   An endpoint owns a network attachment and a protocol stack spec;
   joining a group instantiates a fresh stack over the endpoint (the
   per-group layer state of the paper's group objects). Packets carry a
   group-id frame so one endpoint can serve many groups — the "base
   endpoint" on which multiple stacks stand. *)

open Horus_msg

type t = {
  world : World.t;
  addr : Addr.endpoint;
  spec : Horus_hcpi.Spec.t;
  routes : (int, src:int -> Msg.t -> unit) Hashtbl.t;  (* gid -> stack ingress *)
  mutable crashed : bool;
  mutable on_crash : (unit -> unit) list;  (* group handles register cleanup *)
}

let frame_gid gid payload =
  let n = Bytes.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int gid);
  Bytes.blit payload 0 b 4 n;
  b

let create world ~spec =
  let addr = World.fresh_endpoint_addr world in
  let t =
    { world;
      addr;
      spec = Horus_hcpi.Spec.parse spec;
      routes = Hashtbl.create 4;
      crashed = false;
      on_crash = [] }
  in
  Horus_sim.Net.attach (World.net world) ~node:(Addr.endpoint_id addr) (fun ~src payload ->
      if Bytes.length payload >= 4 then begin
        let gid = Int32.to_int (Bytes.get_int32_be payload 0) in
        match Hashtbl.find_opt t.routes gid with
        | Some route ->
          let body = Bytes.sub payload 4 (Bytes.length payload - 4) in
          route ~src (Msg.of_bytes body)
        | None -> ()
      end);
  t

let world t = t.world

let addr t = t.addr

let node t = Addr.endpoint_id t.addr

let spec t = t.spec

let is_crashed t = t.crashed

(* Used by Group.join. *)
let register_route t ~gid route =
  if Hashtbl.mem t.routes gid then invalid_arg "Endpoint: group already joined";
  Hashtbl.replace t.routes gid route

let unregister_route t ~gid = Hashtbl.remove t.routes gid

let add_crash_hook t f = t.on_crash <- f :: t.on_crash

(* The per-group transport handed to the stack's bottom layer: frames
   outgoing packets with the group id. *)
let transport t ~gid : Horus_hcpi.Layer.transport =
  let net = World.net t.world in
  { Horus_hcpi.Layer.xmit =
      (fun ~dst payload ->
         Horus_sim.Net.send net ~src:(node t) ~dst:(Addr.endpoint_id dst)
           (frame_gid gid payload));
    local_node = node t;
    mtu = (Horus_sim.Net.config net).Horus_sim.Net.mtu }

(* Crash the endpoint: the network stops carrying its traffic and all
   its stacks halt silently (a crashed process does not observe its own
   crash). *)
let crash t =
  if not t.crashed then begin
    t.crashed <- true;
    Horus_sim.Net.crash (World.net t.world) ~node:(node t);
    List.iter (fun f -> f ()) t.on_crash;
    t.on_crash <- []
  end
