(** FLUSH: the unstable-message flush as its own microprotocol over
    BMS — coordinator-driven recovery glued to the membership layer
    through the flush_ok handshake; upgrades semi-synchrony (P8) to
    virtual synchrony (P9) compositionally (Table 3). *)

val create : Horus_hcpi.Params.t -> Horus_hcpi.Layer.ctor
