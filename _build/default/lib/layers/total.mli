(** TOTAL: token-based totally ordered multicast over virtual
    synchrony (Section 7). The token carries the next global sequence
    number; requesters broadcast for it; at view changes the surviving
    members hold identical buffers (virtual synchrony) and resume from
    a deterministic state — no failure detector needed. *)

val create : Horus_hcpi.Params.t -> Horus_hcpi.Layer.ctor
