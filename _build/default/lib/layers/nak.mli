(** NAK: reliable FIFO delivery via sequence numbers and negative
    acknowledgements (Sections 2 and 7) — cast lanes scoped to view
    epochs, pair lanes for subset sends, periodic status multicast for
    buffer GC, gap detection and failure suspicion (PROBLEM upcalls).

    Parameters: [status_period] (default 0.05 s), [suspect_after]
    (default 5x the period), [nak_holdoff], and [buffer_limit] (default
    unbounded) — beyond it, forgotten casts are answered with
    placeholders that surface as LOST_MESSAGE. *)

val create : Horus_hcpi.Params.t -> Horus_hcpi.Layer.ctor
