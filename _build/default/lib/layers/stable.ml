(* STABLE: application-defined message stability (Section 9).

   Every data cast is tagged with a per-origin sequence number; the id
   is exposed to the application through the delivery's meta (key
   "stable_id"). The application calls the ack downcall when it has
   *processed* a message — displayed it, logged it to disk, whatever
   processing means to it; that is the end-to-end knob the paper makes
   so much of. Members gossip their cumulative ack vectors, and the
   layer reports the full stability matrix upward: acked.(i).(j) is how
   many of origin i's messages member j has acknowledged.

   With [auto_ack=true] (the default) receipt counts as processing,
   giving receipt stability without application involvement. *)

open Horus_msg
open Horus_hcpi

let k_data = 0
let k_ackvec = 1

(* Stability ids pack (origin rank, seq): rank in the top bits. *)
let id_bits = 20

let make_id ~rank ~seq =
  if seq >= 1 lsl id_bits then invalid_arg "Stable: sequence overflow";
  (rank lsl id_bits) lor seq

let split_id id = (id lsr id_bits, id land ((1 lsl id_bits) - 1))

let meta_key = "stable_id"

type state = {
  env : Layer.env;
  auto_ack : bool;
  gossip_period : float;
  mutable view : View.t option;
  mutable my_rank : int;
  mutable next_seq : int;              (* my own casts *)
  mutable recv_count : int array;      (* per origin rank: received *)
  mutable own_acks : int array;        (* per origin rank: acked by the app *)
  mutable matrix : int array array;    (* origin x member: acked counts *)
  mutable last_gossiped : int array;
  mutable stop_timer : unit -> unit;
  mutable gossips : int;
}

let n_members t = match t.view with Some v -> View.size v | None -> 0

let emit_matrix t =
  match t.view with
  | None -> ()
  | Some v ->
    let stab =
      { Event.origins = View.members_array v;
        acked = Array.map Array.copy t.matrix }
    in
    t.env.Layer.emit_up (Event.U_stable stab)

let ack t id =
  let rank, seq = split_id id in
  if rank >= 0 && rank < Array.length t.own_acks && seq + 1 > t.own_acks.(rank) then begin
    t.own_acks.(rank) <- seq + 1;
    if t.my_rank >= 0 then begin
      t.matrix.(rank).(t.my_rank) <- t.own_acks.(rank);
      emit_matrix t
    end
  end

let gossip t =
  if t.my_rank >= 0 && n_members t > 1 && t.own_acks <> t.last_gossiped then begin
    t.last_gossiped <- Array.copy t.own_acks;
    t.gossips <- t.gossips + 1;
    let m = Msg.empty () in
    for i = Array.length t.own_acks - 1 downto 0 do
      Msg.push_u32 m t.own_acks.(i)
    done;
    Msg.push_u16 m (Array.length t.own_acks);
    Msg.push_u8 m k_ackvec;
    t.env.Layer.emit_down (Event.D_cast m)
  end

let on_view t v =
  let n = View.size v in
  t.view <- Some v;
  t.my_rank <- Option.value (View.rank_of v t.env.Layer.endpoint) ~default:(-1);
  t.next_seq <- 0;
  t.recv_count <- Array.make n 0;
  t.own_acks <- Array.make n 0;
  t.matrix <- Array.make_matrix n n 0;
  t.last_gossiped <- Array.make n (-1)

let create params env =
  let t =
    { env;
      auto_ack = Params.get_bool params "auto_ack" ~default:true;
      gossip_period = Params.get_float params "gossip_period" ~default:0.05;
      view = None;
      my_rank = -1;
      next_seq = 0;
      recv_count = [||];
      own_acks = [||];
      matrix = [||];
      last_gossiped = [||];
      stop_timer = (fun () -> ());
      gossips = 0 }
  in
  t.stop_timer <- Layer.every env ~period:t.gossip_period (fun () -> gossip t);
  let handle_down (ev : Event.down) =
    match ev with
    | Event.D_cast m ->
      Msg.push_u32 m t.next_seq;
      t.next_seq <- t.next_seq + 1;
      Msg.push_u8 m k_data;
      env.Layer.emit_down (Event.D_cast m)
    | Event.D_ack id | Event.D_stable id -> ack t id
    | _ -> env.Layer.emit_down ev
  in
  let handle_up (ev : Event.up) =
    match ev with
    | Event.U_cast (rank, m, meta) ->
      (try
         let kind = Msg.pop_u8 m in
         if kind = k_data then begin
           let seq = Msg.pop_u32 m in
           if rank >= 0 && rank < Array.length t.recv_count then
             t.recv_count.(rank) <- Int.max t.recv_count.(rank) (seq + 1);
           let id = make_id ~rank:(Int.max rank 0) ~seq in
           env.Layer.emit_up (Event.U_cast (rank, m, (meta_key, id) :: meta));
           if t.auto_ack then ack t id
         end
         else if kind = k_ackvec then begin
           let n = Msg.pop_u16 m in
           let vec = Array.init n (fun _ -> Msg.pop_u32 m) in
           if rank >= 0 && n = Array.length t.matrix then begin
             for origin = 0 to n - 1 do
               if vec.(origin) > t.matrix.(origin).(rank) then
                 t.matrix.(origin).(rank) <- vec.(origin)
             done;
             emit_matrix t
           end
         end
         else env.Layer.trace ~category:"dropped" (Printf.sprintf "unknown kind %d" kind)
       with Msg.Truncated what -> env.Layer.trace ~category:"dropped" ("truncated " ^ what))
    | Event.U_view v ->
      on_view t v;
      env.Layer.emit_up ev
    | _ -> env.Layer.emit_up ev
  in
  { Layer.name = "STABLE";
    handle_down;
    handle_up;
    dump =
      (fun () ->
         [ Printf.sprintf "rank=%d next_seq=%d gossips=%d" t.my_rank t.next_seq t.gossips ]);
    inert = false;
    stop = (fun () -> t.stop_timer ()) }
