(* TRACE: tracing / statistics layer (Figure 1's "tracing" type).

   Counts and optionally records every event crossing it, in both
   directions. Insert anywhere in a stack to observe the traffic at
   that level; the dump downcall reports the counters. *)

open Horus_hcpi

type state = {
  env : Layer.env;
  verbose : bool;
  mutable down_events : int;
  mutable up_events : int;
  mutable down_bytes : int;
  mutable up_bytes : int;
}

let msg_bytes (ev : Event.down) =
  match ev with
  | Event.D_cast m | Event.D_send (_, m) -> Horus_msg.Msg.length m
  | _ -> 0

let up_msg_bytes (ev : Event.up) =
  match ev with
  | Event.U_cast (_, m, _) | Event.U_send (_, m, _) | Event.U_packet (_, m) ->
    Horus_msg.Msg.length m
  | _ -> 0

let create params env =
  let t =
    { env;
      verbose = Params.get_bool params "verbose" ~default:false;
      down_events = 0;
      up_events = 0;
      down_bytes = 0;
      up_bytes = 0 }
  in
  let handle_down ev =
    t.down_events <- t.down_events + 1;
    t.down_bytes <- t.down_bytes + msg_bytes ev;
    if t.verbose then t.env.Layer.trace ~category:"down" (Event.down_name ev);
    t.env.Layer.emit_down ev
  in
  let handle_up ev =
    t.up_events <- t.up_events + 1;
    t.up_bytes <- t.up_bytes + up_msg_bytes ev;
    if t.verbose then t.env.Layer.trace ~category:"up" (Event.up_name ev);
    t.env.Layer.emit_up ev
  in
  { Layer.name = "TRACE";
    handle_down;
    handle_up;
    dump =
      (fun () ->
         [ Printf.sprintf "down_events=%d up_events=%d down_bytes=%d up_bytes=%d"
             t.down_events t.up_events t.down_bytes t.up_bytes ]);
    inert = false;
    stop = (fun () -> ()) }
