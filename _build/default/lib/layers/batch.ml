(* BATCH: message batching.

   Casts issued within a short window travel as one wire message and
   are unbatched at the receiver — trading a bounded latency increase
   for fewer packets and fewer per-message header overheads below.
   This is the kind of cross-cutting optimization the composition
   framework makes a one-line stack change instead of a protocol
   rewrite; the E7 bench quantifies the packet savings.

   Batches flush when [max_batch] messages or [max_bytes] bytes are
   pending, when the window timer fires, or at a view change (no
   cross-view batches). Order within and across batches is preserved. *)

open Horus_msg
open Horus_hcpi

type state = {
  env : Layer.env;
  window : float;
  max_batch : int;
  max_bytes : int;
  mutable pending : string list;  (* newest first *)
  mutable pending_bytes : int;
  mutable timer_armed : bool;
  mutable batches_sent : int;
  mutable messages_batched : int;
}

let flush t =
  t.timer_armed <- false;
  match t.pending with
  | [] -> ()
  | msgs ->
    let msgs = List.rev msgs in
    t.pending <- [];
    t.pending_bytes <- 0;
    t.batches_sent <- t.batches_sent + 1;
    t.messages_batched <- t.messages_batched + List.length msgs;
    let m = Msg.empty () in
    Wire.push_list (fun m s -> Msg.push_string m s) m msgs;
    t.env.Layer.emit_down (Event.D_cast m)

let submit t payload =
  t.pending <- payload :: t.pending;
  t.pending_bytes <- t.pending_bytes + String.length payload;
  if List.length t.pending >= t.max_batch || t.pending_bytes >= t.max_bytes then flush t
  else if not t.timer_armed then begin
    t.timer_armed <- true;
    ignore (t.env.Layer.set_timer ~delay:t.window (fun () -> flush t))
  end

let create params env =
  let t =
    { env;
      window = Params.get_float params "window" ~default:0.005;
      max_batch = Params.get_int params "max_batch" ~default:16;
      max_bytes = Params.get_int params "max_bytes" ~default:8192;
      pending = [];
      pending_bytes = 0;
      timer_armed = false;
      batches_sent = 0;
      messages_batched = 0 }
  in
  let handle_down (ev : Event.down) =
    match ev with
    | Event.D_cast m -> submit t (Msg.to_string m)
    | Event.D_view _ ->
      (* No batch may straddle a view change. *)
      flush t;
      env.Layer.emit_down ev
    | _ -> env.Layer.emit_down ev
  in
  let handle_up (ev : Event.up) =
    match ev with
    | Event.U_cast (rank, m, meta) ->
      (try
         let msgs = Wire.pop_list (fun m -> Msg.pop_string m) m in
         List.iter
           (fun payload -> env.Layer.emit_up (Event.U_cast (rank, Msg.create payload, meta)))
           msgs
       with Msg.Truncated what -> env.Layer.trace ~category:"dropped" ("truncated " ^ what))
    | Event.U_view _ ->
      flush t;
      env.Layer.emit_up ev
    | _ -> env.Layer.emit_up ev
  in
  { Layer.name = "BATCH";
    handle_down;
    handle_up;
    dump =
      (fun () ->
         [ Printf.sprintf "batches=%d messages=%d pending=%d" t.batches_sent
             t.messages_batched (List.length t.pending) ]);
    inert = false;
    stop = (fun () -> ()) }
