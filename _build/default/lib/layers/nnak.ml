(* NNAK: prioritized-effort delivery (Table 3's P2 provider).

   Each stack instance declares a priority (configuration parameter);
   outgoing data is tagged with it. On the receiving side, arrivals are
   batched over a short window and released highest-priority-first, so
   that control-plane endpoints overtake bulk endpoints under load. No
   reliability is added — this is prioritized *effort*. *)

open Horus_msg
open Horus_hcpi

type held = {
  h_prio : int;
  h_order : int;  (* arrival order, for stable sorting within a priority *)
  h_event : Event.up;
}

type state = {
  env : Layer.env;
  priority : int;
  window : float;
  mutable held : held list;
  mutable arrivals : int;
  mutable flush_armed : bool;
  mutable reordered : int;
}

let flush t =
  t.flush_armed <- false;
  let batch =
    List.sort
      (fun a b ->
         let c = Int.compare b.h_prio a.h_prio in  (* higher priority first *)
         if c <> 0 then c else Int.compare a.h_order b.h_order)
      (List.rev t.held)
  in
  t.held <- [];
  (* Count how many deliveries overtook an earlier arrival. *)
  List.iteri
    (fun i h -> if h.h_order <> i then t.reordered <- t.reordered + 1)
    batch;
  List.iter (fun h -> t.env.Layer.emit_up h.h_event) batch

let hold t ~prio ev =
  t.arrivals <- t.arrivals + 1;
  (* order is position within the current batch *)
  t.held <- { h_prio = prio; h_order = List.length t.held; h_event = ev } :: t.held;
  if not t.flush_armed then begin
    t.flush_armed <- true;
    ignore (t.env.Layer.set_timer ~delay:t.window (fun () -> flush t))
  end

let create params env =
  let t =
    { env;
      priority = Params.get_int params "priority" ~default:0;
      window = Params.get_float params "window" ~default:0.002;
      held = [];
      arrivals = 0;
      flush_armed = false;
      reordered = 0 }
  in
  let handle_down (ev : Event.down) =
    (match ev with
     | Event.D_cast m | Event.D_send (_, m) -> Msg.push_u8 m t.priority
     | _ -> ());
    env.Layer.emit_down ev
  in
  let handle_up (ev : Event.up) =
    match ev with
    | Event.U_cast (rank, m, meta) ->
      (try
         let prio = Msg.pop_u8 m in
         hold t ~prio (Event.U_cast (rank, m, meta))
       with Msg.Truncated _ -> env.Layer.trace ~category:"dropped" "truncated")
    | Event.U_send (rank, m, meta) ->
      (try
         let prio = Msg.pop_u8 m in
         hold t ~prio (Event.U_send (rank, m, meta))
       with Msg.Truncated _ -> env.Layer.trace ~category:"dropped" "truncated")
    | _ -> env.Layer.emit_up ev
  in
  { Layer.name = "NNAK";
    handle_down;
    handle_up;
    dump =
      (fun () ->
         [ Printf.sprintf "priority=%d held=%d reordered=%d" t.priority (List.length t.held)
             t.reordered ]);
    inert = false;
    stop = (fun () -> ()) }
