(* CHKSUM: checksumming layer (Section 2's first example).

   Going down, pushes an FNV-1a checksum over the message as it stands
   (payload plus any headers of layers above). Coming up, verifies and
   silently drops garbled messages, reducing garbling "to a
   statistically insignificant rate". *)

open Horus_msg
open Horus_hcpi

type state = {
  env : Layer.env;
  mutable passed : int;
  mutable dropped : int;
}

let sum m =
  let b = Msg.to_bytes m in
  Horus_util.Crc.checksum b ~off:0 ~len:(Bytes.length b)

let protect m = Msg.push_i64 m (sum m)

let verify t m =
  try
    let declared = Msg.pop_i64 m in
    if Int64.equal declared (sum m) then true
    else begin
      t.dropped <- t.dropped + 1;
      t.env.Layer.trace ~category:"dropped" "checksum mismatch";
      false
    end
  with Msg.Truncated _ ->
    t.dropped <- t.dropped + 1;
    t.env.Layer.trace ~category:"dropped" "truncated";
    false

let create (_ : Params.t) env =
  let t = { env; passed = 0; dropped = 0 } in
  let handle_down (ev : Event.down) =
    (match ev with
     | Event.D_cast m | Event.D_send (_, m) -> protect m
     | _ -> ());
    env.Layer.emit_down ev
  in
  let handle_up (ev : Event.up) =
    match ev with
    | Event.U_cast (_, m, _) | Event.U_send (_, m, _) ->
      if verify t m then begin
        t.passed <- t.passed + 1;
        env.Layer.emit_up ev
      end
    | _ -> env.Layer.emit_up ev
  in
  { Layer.name = "CHKSUM";
    handle_down;
    handle_up;
    dump = (fun () -> [ Printf.sprintf "passed=%d dropped=%d" t.passed t.dropped ]);
    inert = false;
    stop = (fun () -> ()) }
