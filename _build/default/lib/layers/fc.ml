(* FC: flow control (Figure 1's "flow control" type).

   A token-bucket limiter on outgoing data: at most [rate] messages per
   second with bursts up to [burst]. Excess messages queue and drain as
   tokens refill, preventing a fast application from congesting the
   network below. *)

open Horus_hcpi

type state = {
  env : Layer.env;
  rate : float;
  burst : float;
  mutable tokens : float;
  mutable last_refill : float;
  queue : Event.down Queue.t;
  mutable drain_armed : bool;
  mutable queued_total : int;
}

let refill t =
  let tnow = Horus_sim.Engine.now t.env.Layer.engine in
  let dt = tnow -. t.last_refill in
  t.last_refill <- tnow;
  t.tokens <- Float.min t.burst (t.tokens +. (dt *. t.rate))

let rec drain t =
  refill t;
  let progressed = ref false in
  while t.tokens >= 1.0 && not (Queue.is_empty t.queue) do
    t.tokens <- t.tokens -. 1.0;
    progressed := true;
    t.env.Layer.emit_down (Queue.pop t.queue)
  done;
  ignore !progressed;
  if not (Queue.is_empty t.queue) && not t.drain_armed then begin
    t.drain_armed <- true;
    let wait = (1.0 -. t.tokens) /. t.rate in
    ignore
      (t.env.Layer.set_timer ~delay:(Float.max wait 1e-6) (fun () ->
           t.drain_armed <- false;
           drain t))
  end

let submit t ev =
  refill t;
  if Queue.is_empty t.queue && t.tokens >= 1.0 then begin
    t.tokens <- t.tokens -. 1.0;
    t.env.Layer.emit_down ev
  end
  else begin
    t.queued_total <- t.queued_total + 1;
    Queue.push ev t.queue;
    drain t
  end

let create params env =
  let rate = Params.get_float params "rate" ~default:1000.0 in
  let t =
    { env;
      rate;
      burst = Params.get_float params "burst" ~default:32.0;
      tokens = Params.get_float params "burst" ~default:32.0;
      last_refill = Horus_sim.Engine.now env.Layer.engine;
      queue = Queue.create ();
      drain_armed = false;
      queued_total = 0 }
  in
  let handle_down (ev : Event.down) =
    match ev with
    | Event.D_cast _ | Event.D_send _ -> submit t ev
    | _ -> env.Layer.emit_down ev
  in
  { Layer.name = "FC";
    handle_down;
    handle_up = env.Layer.emit_up;
    dump =
      (fun () ->
         [ Printf.sprintf "rate=%.0f tokens=%.1f queued_now=%d queued_total=%d" t.rate t.tokens
             (Queue.length t.queue) t.queued_total ]);
    inert = false;
    stop = (fun () -> ()) }
