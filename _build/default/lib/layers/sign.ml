(* SIGN: cryptographic-checksum layer (Section 2).

   Like CHKSUM, but the digest is keyed, "making it impossible for a
   malignant intruder to impersonate a member process". The MAC is a
   keyed FNV sandwich — a stand-in with the right protocol behaviour,
   not a real cryptographic primitive (see DESIGN.md). *)

open Horus_msg
open Horus_hcpi

type state = {
  env : Layer.env;
  key : string;
  mutable passed : int;
  mutable forged : int;
}

let mac t m =
  let b = Msg.to_bytes m in
  Horus_util.Crc.mac ~key:t.key b ~off:0 ~len:(Bytes.length b)

let create params env =
  let t =
    { env;
      key = Params.get_string params "key" ~default:"horus-group-key";
      passed = 0;
      forged = 0 }
  in
  let handle_down (ev : Event.down) =
    (match ev with
     | Event.D_cast m | Event.D_send (_, m) -> Msg.push_i64 m (mac t m)
     | _ -> ());
    env.Layer.emit_down ev
  in
  let handle_up (ev : Event.up) =
    match ev with
    | Event.U_cast (_, m, _) | Event.U_send (_, m, _) ->
      let ok =
        try
          let declared = Msg.pop_i64 m in
          Int64.equal declared (mac t m)
        with Msg.Truncated _ -> false
      in
      if ok then begin
        t.passed <- t.passed + 1;
        env.Layer.emit_up ev
      end
      else begin
        t.forged <- t.forged + 1;
        env.Layer.trace ~category:"dropped" "bad signature"
      end
    | _ -> env.Layer.emit_up ev
  in
  { Layer.name = "SIGN";
    handle_down;
    handle_up;
    dump = (fun () -> [ Printf.sprintf "passed=%d forged=%d" t.passed t.forged ]);
    inert = false;
    stop = (fun () -> ()) }
