(* DEADLINE: real-time delivery bounds (Figure 1's "real-time" type).

   Each cast is stamped with its (simulated) send time; a receiver
   whose copy is older than the configured budget drops it and raises
   LOST_MESSAGE — stale data is worse than no data for real-time
   consumers (sensor readings, position updates). Fresh copies are
   tagged with their measured age in microseconds ("age_us" meta), so
   the application can see how much of its budget was spent in
   transit. *)

open Horus_msg
open Horus_hcpi

type state = {
  env : Layer.env;
  budget : float;
  mutable delivered_fresh : int;
  mutable dropped_stale : int;
}

let create params env =
  let t =
    { env;
      budget = Params.get_float params "budget" ~default:0.05;
      delivered_fresh = 0;
      dropped_stale = 0 }
  in
  let now () = Horus_sim.Engine.now env.Layer.engine in
  let handle_down (ev : Event.down) =
    match ev with
    | Event.D_cast m ->
      Msg.push_i64 m (Int64.bits_of_float (now ()));
      env.Layer.emit_down (Event.D_cast m)
    | _ -> env.Layer.emit_down ev
  in
  let handle_up (ev : Event.up) =
    match ev with
    | Event.U_cast (rank, m, meta) ->
      (try
         let sent = Int64.float_of_bits (Msg.pop_i64 m) in
         let age = now () -. sent in
         if age > t.budget then begin
           t.dropped_stale <- t.dropped_stale + 1;
           env.Layer.trace ~category:"stale" (Printf.sprintf "age %.4fs" age);
           env.Layer.emit_up (Event.U_lost_message rank)
         end
         else begin
           t.delivered_fresh <- t.delivered_fresh + 1;
           let age_us = int_of_float (age *. 1e6) in
           env.Layer.emit_up (Event.U_cast (rank, m, ("age_us", age_us) :: meta))
         end
       with Msg.Truncated what -> env.Layer.trace ~category:"dropped" ("truncated " ^ what))
    | _ -> env.Layer.emit_up ev
  in
  { Layer.name = "DEADLINE";
    handle_down;
    handle_up;
    dump =
      (fun () ->
         [ Printf.sprintf "budget=%.3fs fresh=%d stale=%d" t.budget t.delivered_fresh
             t.dropped_stale ]);
    inert = false;
    stop = (fun () -> ()) }
