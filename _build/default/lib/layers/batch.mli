(** BATCH: casts issued within a short window travel as one wire
    message and are unbatched at the receiver — bounded extra latency
    for fewer packets. Parameters: [window] (default 5 ms),
    [max_batch] (default 16), [max_bytes] (default 8192). Order is
    preserved; no batch straddles a view change. *)

val create : Horus_hcpi.Params.t -> Horus_hcpi.Layer.ctor
