(** NFRAG: fragmentation tolerant of reordering — indexed fragments
    reassembled per (origin, message id); any-fragment loss loses the
    whole message. Parameters [frag_size], [max_age]. *)

val create : Horus_hcpi.Params.t -> Horus_hcpi.Layer.ctor
