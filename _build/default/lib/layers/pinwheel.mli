(** PINWHEEL: stability via a rotating aggregator — one member per
    round pulls ack vectors and multicasts the merged matrix: O(n) per
    round against STABLE's O(n^2) gossip, at slower convergence
    (experiment E11). Parameters [auto_ack], [period]. *)

val create : Horus_hcpi.Params.t -> Horus_hcpi.Layer.ctor
