(* FLUSH: the unstable-message flush as its own microprotocol.

   Table 3 decomposes virtual synchrony: BMS provides consistent views
   and semi-synchrony (P8, P15) but forwards nothing at view changes;
   this layer, stacked above it, re-creates full virtual synchrony (P9)
   compositionally. It exploits the flush_ok handshake of the HCPI:
   when BMS raises the FLUSH upcall, this layer runs a coordinator-
   driven recovery round — members report receive vectors and unstable
   copies, the coordinator forwards what anyone misses — and only then
   releases the application's flush_ok downcall to BMS, which is what
   allows BMS to complete its own flush and install the view. Two
   layers, two protocols, one handshake: the LEGO thesis of the paper
   in action.

   Wire kinds: 0 data(seq), 1 state, 2 fwd, 3 done, 4 app send. *)

open Horus_msg
open Horus_hcpi

let k_data = 0
let k_state = 1
let k_fwd = 2
let k_done = 3
let k_app_send = 4

module ESet = Addr.Endpoint_set

type recovery = {
  rc_failed : Addr.endpoint list;
  rc_coord : Addr.endpoint;
  (* coordinator bookkeeping *)
  mutable rc_waiting : ESet.t;
  mutable rc_states : (int * (int * int) list * (int * int * string) list) list;
  (* member bookkeeping *)
  mutable rc_ok_from_above : bool;
  mutable rc_done : bool;
}

type state = {
  env : Layer.env;
  mutable view : View.t option;
  mutable next_seq : int;
  log : Delivery_log.t;
  mutable recovery : recovery option;
  (* states that arrived before our own FLUSH upcall started the round *)
  mutable early_states :
    (Addr.endpoint list * int * (int * int) list * (int * int * string) list) list;
  mutable recoveries_run : int;
  mutable ctl_sent : int;
}

let me t = t.env.Layer.endpoint

let my_eid t = Addr.endpoint_id (me t)

let src_of meta = Option.value (Event.meta_find meta Com.src_meta) ~default:(-1)

let unicast t dst m =
  t.ctl_sent <- t.ctl_sent + 1;
  t.env.Layer.emit_down (Event.D_send ([ dst ], m))

let rank_of_origin t origin =
  match t.view with
  | None -> -1
  | Some v -> Option.value (View.rank_of v (Addr.endpoint origin)) ~default:(-1)

let accept_data t ~origin ~seq ~rank m meta =
  Delivery_log.accept t.log ~origin ~seq ~rank m meta ~deliver:(fun ~rank m meta ->
      let rank = if rank >= 0 then rank else rank_of_origin t origin in
      t.env.Layer.emit_up (Event.U_cast (rank, m, meta)))

let vector t = Delivery_log.vector t.log

let push_pairs = Delivery_log.push_pairs
let pop_pairs = Delivery_log.pop_pairs
let push_copies = Delivery_log.push_copies
let pop_copies = Delivery_log.pop_copies

(* Release the held flush_ok toward BMS once both the application has
   agreed and the recovery round is complete. *)
let maybe_release t =
  match t.recovery with
  | Some rc when rc.rc_ok_from_above && rc.rc_done ->
    t.recovery <- None;
    t.env.Layer.emit_down Event.D_flush_ok
  | Some _ | None -> ()

let send_state t (rc : recovery) =
  let m = Msg.empty () in
  push_copies m (Delivery_log.copies t.log);
  push_pairs m (vector t);
  Wire.push_endpoint_list m rc.rc_failed;
  Msg.push_u8 m k_state;
  unicast t rc.rc_coord m

(* Coordinator: all states in — forward gaps, then signal DONE. *)
let complete_recovery t (rc : recovery) =
  let cut, everything =
    Delivery_log.cut_and_union ~own:t.log
      (List.map (fun (_, vec, copies) -> (vec, copies)) rc.rc_states)
  in
  List.iter
    (fun (replier, vec, _) ->
       let missing = Delivery_log.missing_for ~cut ~everything vec in
       if missing <> [] then begin
         let m = Msg.empty () in
         push_copies m missing;
         Msg.push_u8 m k_fwd;
         unicast t (Addr.endpoint replier) m
       end;
       let d = Msg.empty () in
       Wire.push_endpoint_list d rc.rc_failed;
       Msg.push_u8 d k_done;
       unicast t (Addr.endpoint replier) d)
    rc.rc_states

let same_failed a b =
  List.length a = List.length b && List.for_all (fun x -> List.exists (Addr.equal_endpoint x) b) a

let start_recovery t failed =
  match t.view with
  | None -> ()
  | Some v ->
    t.recoveries_run <- t.recoveries_run + 1;
    let is_failed e = List.exists (Addr.equal_endpoint e) failed in
    let survivors = List.filter (fun m -> not (is_failed m)) (View.members v) in
    (match survivors with
     | [] -> ()
     | coord :: _ ->
       let rc =
         { rc_failed = failed;
           rc_coord = coord;
           rc_waiting = ESet.of_list survivors;
           rc_states = [];
           rc_ok_from_above = false;
           rc_done = false }
       in
       t.recovery <- Some rc;
       send_state t rc;
       (* Replay any states that beat our own FLUSH upcall. *)
       let early = t.early_states in
       t.early_states <- [];
       List.iter
         (fun (efailed, src, vec, copies) ->
            if Addr.equal_endpoint rc.rc_coord (me t) && same_failed efailed rc.rc_failed
               && ESet.mem (Addr.endpoint src) rc.rc_waiting then begin
              rc.rc_waiting <- ESet.remove (Addr.endpoint src) rc.rc_waiting;
              rc.rc_states <- (src, vec, copies) :: rc.rc_states
            end)
         early;
       (match t.recovery with
        | Some rc when Addr.equal_endpoint rc.rc_coord (me t) && ESet.is_empty rc.rc_waiting ->
          complete_recovery t rc
        | Some _ | None -> ()))

let create (_ : Params.t) env =
  let t =
    { env;
      view = None;
      next_seq = 0;
      log = Delivery_log.create ();
      recovery = None;
      early_states = [];
      recoveries_run = 0;
      ctl_sent = 0 }
  in
  let handle_down (ev : Event.down) =
    match ev with
    | Event.D_cast m ->
      Msg.push_u32 m t.next_seq;
      Delivery_log.record t.log ~origin:(my_eid t) ~seq:t.next_seq (Msg.to_string m);
      (* Our own copy is delivered back via loopback like anyone
         else's; pre-recording it here keeps it recoverable even if the
         loopback is still in flight when a flush starts. *)
      t.next_seq <- t.next_seq + 1;
      Msg.push_u8 m k_data;
      env.Layer.emit_down (Event.D_cast m)
    | Event.D_send (dsts, m) ->
      Msg.push_u8 m k_app_send;
      env.Layer.emit_down (Event.D_send (dsts, m))
    | Event.D_flush_ok ->
      (match t.recovery with
       | Some rc ->
         rc.rc_ok_from_above <- true;
         maybe_release t
       | None -> env.Layer.emit_down ev)
    | _ -> env.Layer.emit_down ev
  in
  let handle_up (ev : Event.up) =
    match ev with
    | Event.U_cast (rank, m, meta) | Event.U_send (rank, m, meta) ->
      (try
         let kind = Msg.pop_u8 m in
         if kind = k_data then begin
           let seq = Msg.pop_u32 m in
           let origin = src_of meta in
           (* Same straggler rule as MBRSHIP: once our STATE is out, a
              late copy from a failed origin would escape the cut. *)
           let straggler =
             match t.recovery with
             | Some rc -> List.exists (fun e -> Addr.endpoint_id e = origin) rc.rc_failed
             | None -> false
           in
           if straggler then env.Layer.trace ~category:"ignored" "straggler from failed member"
           else accept_data t ~origin ~seq ~rank m meta
         end
         else if kind = k_app_send then env.Layer.emit_up (Event.U_send (rank, m, meta))
         else if kind = k_state then begin
           let failed = Wire.pop_endpoint_list m in
           let vec = pop_pairs m in
           let copies = pop_copies m in
           match t.recovery with
           | Some rc
             when Addr.equal_endpoint rc.rc_coord (me t) && same_failed failed rc.rc_failed ->
             let src = src_of meta in
             if ESet.mem (Addr.endpoint src) rc.rc_waiting then begin
               rc.rc_waiting <- ESet.remove (Addr.endpoint src) rc.rc_waiting;
               rc.rc_states <- (src, vec, copies) :: rc.rc_states;
               if ESet.is_empty rc.rc_waiting then complete_recovery t rc
             end
           | Some _ -> ()
           | None ->
             t.early_states <- (failed, src_of meta, vec, copies) :: t.early_states
         end
         else if kind = k_fwd then
           List.iter
             (fun (o, s, p) ->
                accept_data t ~origin:o ~seq:s ~rank:(rank_of_origin t o) (Msg.create p) [])
             (pop_copies m)
         else if kind = k_done then begin
           let failed = Wire.pop_endpoint_list m in
           match t.recovery with
           | Some rc when same_failed failed rc.rc_failed ->
             rc.rc_done <- true;
             maybe_release t
           | Some _ | None -> ()
         end
         else env.Layer.trace ~category:"dropped" (Printf.sprintf "unknown kind %d" kind)
       with Msg.Truncated what -> env.Layer.trace ~category:"dropped" ("truncated " ^ what))
    | Event.U_flush failed ->
      (* BMS starts a flush: run the recovery round, and hold the
         application's flush_ok until it completes. *)
      start_recovery t failed;
      env.Layer.emit_up ev
    | Event.U_view v ->
      t.view <- Some v;
      t.next_seq <- 0;
      Delivery_log.reset t.log;
      t.recovery <- None;
      t.early_states <- [];
      env.Layer.emit_up ev
    | _ -> env.Layer.emit_up ev
  in
  { Layer.name = "FLUSH";
    handle_down;
    handle_up;
    dump =
      (fun () ->
         [ Printf.sprintf "recoveries=%d logged=%d recovering=%b ctl_sent=%d" t.recoveries_run
             (Delivery_log.size t.log) (t.recovery <> None) t.ctl_sent ]);
    inert = false;
    stop = (fun () -> ()) }
