(** COMPRESS: run-length encodes the message when that shrinks it; a
    header flag tells the receiver which form arrived (Figure 1's
    "compression" type). *)

val create : Horus_hcpi.Params.t -> Horus_hcpi.Layer.ctor
