(** ORDER(causal): causally ordered multicast via vector timestamps
    (provides P5 and P13). Vectors reset cleanly at view changes
    thanks to virtual synchrony below. *)

val create : Horus_hcpi.Params.t -> Horus_hcpi.Layer.ctor
