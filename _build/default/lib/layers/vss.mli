(** VSS: decentralized virtual synchrony over BMS — every survivor
    exchanges unstable state with every other survivor directly (one
    round, O(n^2) messages), the alternative P9 provider of Table 3. *)

val create : Horus_hcpi.Params.t -> Horus_hcpi.Layer.ctor
