(** NOOP: an inert pass-through layer for the Section 10
    layering-overhead experiments. Declares itself [inert], so a stack
    built with [skip_inert:true] bypasses it entirely. *)

val create : Horus_hcpi.Params.t -> Horus_hcpi.Layer.ctor
