(* ACCOUNT: usage accounting (Figure 1's "accounting" type).

   Tracks, per traffic source, how many messages and bytes crossed this
   layer in each direction. The dump downcall renders the ledger — the
   paper's "keeping track of usage" as a composable layer rather than
   code sprinkled through an application. *)

open Horus_msg
open Horus_hcpi

type ledger = {
  mutable l_msgs : int;
  mutable l_bytes : int;
}

type state = {
  env : Layer.env;
  sent : ledger;
  received : (int, ledger) Hashtbl.t;  (* src eid -> usage *)
}

let charge ledger bytes =
  ledger.l_msgs <- ledger.l_msgs + 1;
  ledger.l_bytes <- ledger.l_bytes + bytes

let src_of meta = Option.value (Event.meta_find meta Com.src_meta) ~default:(-1)

let create (_ : Params.t) env =
  let t = { env; sent = { l_msgs = 0; l_bytes = 0 }; received = Hashtbl.create 8 } in
  let ledger_for src =
    match Hashtbl.find_opt t.received src with
    | Some l -> l
    | None ->
      let l = { l_msgs = 0; l_bytes = 0 } in
      Hashtbl.replace t.received src l;
      l
  in
  let handle_down (ev : Event.down) =
    (match ev with
     | Event.D_cast m | Event.D_send (_, m) -> charge t.sent (Msg.length m)
     | _ -> ());
    env.Layer.emit_down ev
  in
  let handle_up (ev : Event.up) =
    (match ev with
     | Event.U_cast (_, m, meta) | Event.U_send (_, m, meta) ->
       charge (ledger_for (src_of meta)) (Msg.length m)
     | _ -> ());
    env.Layer.emit_up ev
  in
  { Layer.name = "ACCOUNT";
    handle_down;
    handle_up;
    dump =
      (fun () ->
         Printf.sprintf "sent msgs=%d bytes=%d" t.sent.l_msgs t.sent.l_bytes
         :: (Hashtbl.fold (fun src l acc -> (src, l) :: acc) t.received []
             |> List.sort compare
             |> List.map (fun (src, l) ->
                 Printf.sprintf "from e%d: msgs=%d bytes=%d" src l.l_msgs l.l_bytes)));
    inert = false;
    stop = (fun () -> ()) }
