(** Registration of the layer library into the HCPI registry. *)

val register_all : unit -> unit
(** Idempotent; called by [Horus.World.create]. *)
