(* NFRAG: fragmentation for networks without FIFO guarantees.

   Unlike FRAG's single more-flag bit, NFRAG headers carry a message
   id, fragment index and fragment count, so fragments may arrive in
   any order (it requires only best-effort delivery plus source
   addresses, per Table 3). Loss of any fragment loses the whole
   message — reliability, if wanted, comes from stacking NAK above. *)

open Horus_msg
open Horus_hcpi

type partial = {
  parts : (int, string) Hashtbl.t;  (* idx -> chunk *)
  count : int;
  born : float;
}

type state = {
  env : Layer.env;
  frag_size : int;
  max_age : float;  (* partial assemblies older than this are abandoned *)
  mutable next_msgid : int;
  partials : (int * int * int, partial) Hashtbl.t;  (* origin, msgid, kind *)
  mutable fragmented : int;
  mutable reassembled : int;
  mutable abandoned : int;
}

let src_of meta = Option.value (Event.meta_find meta Com.src_meta) ~default:(-1)

let fragment t m ~send =
  let total = Msg.length m in
  let count = (total + t.frag_size - 1) / t.frag_size in
  let count = Int.max count 1 in
  let msgid = t.next_msgid in
  t.next_msgid <- t.next_msgid + 1;
  if count > 1 then t.fragmented <- t.fragmented + 1;
  let body = Msg.to_string m in
  for idx = 0 to count - 1 do
    let off = idx * t.frag_size in
    let len = Int.min t.frag_size (total - off) in
    let f = Msg.create (String.sub body off len) in
    Msg.push_u16 f count;
    Msg.push_u16 f idx;
    Msg.push_u32 f msgid;
    send f
  done

let gc t =
  let tnow = Horus_sim.Engine.now t.env.Layer.engine in
  Hashtbl.iter
    (fun key p ->
       if tnow -. p.born > t.max_age then begin
         Hashtbl.remove t.partials key;
         t.abandoned <- t.abandoned + 1
       end)
    (Hashtbl.copy t.partials)

let reassemble t ~key m =
  let msgid = Msg.pop_u32 m in
  let idx = Msg.pop_u16 m in
  let count = Msg.pop_u16 m in
  if count = 1 then Some m
  else begin
    let origin, kind = key in
    let pkey = (origin, msgid, kind) in
    let p =
      match Hashtbl.find_opt t.partials pkey with
      | Some p when p.count = count -> p
      | Some _ | None ->
        let p =
          { parts = Hashtbl.create count;
            count;
            born = Horus_sim.Engine.now t.env.Layer.engine }
        in
        Hashtbl.replace t.partials pkey p;
        p
    in
    Hashtbl.replace p.parts idx (Msg.to_string m);
    if Hashtbl.length p.parts = p.count then begin
      Hashtbl.remove t.partials pkey;
      t.reassembled <- t.reassembled + 1;
      let buf = Buffer.create (p.count * t.frag_size) in
      for i = 0 to p.count - 1 do
        Buffer.add_string buf (Hashtbl.find p.parts i)
      done;
      Some (Msg.create (Buffer.contents buf))
    end
    else None
  end

let create params env =
  let t =
    { env;
      frag_size = Params.get_int params "frag_size" ~default:1024;
      max_age = Params.get_float params "max_age" ~default:5.0;
      next_msgid = 0;
      partials = Hashtbl.create 8;
      fragmented = 0;
      reassembled = 0;
      abandoned = 0 }
  in
  let handle_down (ev : Event.down) =
    match ev with
    | Event.D_cast m -> fragment t m ~send:(fun f -> env.Layer.emit_down (Event.D_cast f))
    | Event.D_send (dsts, m) ->
      fragment t m ~send:(fun f -> env.Layer.emit_down (Event.D_send (dsts, f)))
    | _ -> env.Layer.emit_down ev
  in
  let handle_up (ev : Event.up) =
    match ev with
    | Event.U_cast (rank, m, meta) ->
      gc t;
      (try
         match reassemble t ~key:(src_of meta, 0) m with
         | Some whole -> env.Layer.emit_up (Event.U_cast (rank, whole, meta))
         | None -> ()
       with Msg.Truncated _ -> env.Layer.trace ~category:"dropped" "truncated fragment")
    | Event.U_send (rank, m, meta) ->
      gc t;
      (try
         match reassemble t ~key:(src_of meta, 1) m with
         | Some whole -> env.Layer.emit_up (Event.U_send (rank, whole, meta))
         | None -> ()
       with Msg.Truncated _ -> env.Layer.trace ~category:"dropped" "truncated fragment")
    | _ -> env.Layer.emit_up ev
  in
  { Layer.name = "NFRAG";
    handle_down;
    handle_up;
    dump =
      (fun () ->
         [ Printf.sprintf "fragmented=%d reassembled=%d abandoned=%d partials=%d" t.fragmented
             t.reassembled t.abandoned (Hashtbl.length t.partials) ]);
    inert = false;
    stop = (fun () -> ()) }
