(** SIGN: keyed MAC; forged or tampered messages are dropped
    (Section 2). Parameter [key] must match across the group. *)

val create : Horus_hcpi.Params.t -> Horus_hcpi.Layer.ctor
