(** FC: token-bucket flow control on outgoing data (Figure 1's "flow
    control" type). Parameters [rate] (messages/second, default 1000)
    and [burst] (default 32). *)

val create : Horus_hcpi.Params.t -> Horus_hcpi.Layer.ctor
