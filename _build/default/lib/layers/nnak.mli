(** NNAK: prioritized-effort delivery (P2). Outgoing data carries this
    instance's [priority]; receivers batch arrivals over [window]
    seconds and release highest-priority-first. No reliability. *)

val create : Horus_hcpi.Params.t -> Horus_hcpi.Layer.ctor
