(** TRACE: event and byte counters in both directions (Figure 1's
    "tracing" type). Parameter [verbose] also records each event in the
    world trace. The dump downcall reports the counters. *)

val create : Horus_hcpi.Params.t -> Horus_hcpi.Layer.ctor
