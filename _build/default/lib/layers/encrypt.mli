(** ENCRYPT: XOR-keystream privacy with per-message nonces salted by
    the sender id. Parameter [key] must match across the group. A
    protocol-shaped stand-in, not real cryptography (see DESIGN.md). *)

val create : Horus_hcpi.Params.t -> Horus_hcpi.Layer.ctor
