(* COMPRESS: bandwidth-saving layer (Figure 1's "compression" type).

   Run-length encodes the message when that shrinks it; a one-byte
   header flag tells the receiving side which form arrived. *)

open Horus_msg
open Horus_hcpi

type state = {
  env : Layer.env;
  mutable compressed : int;
  mutable passed_through : int;
  mutable bytes_saved : int;
}

let create (_ : Params.t) env =
  let t = { env; compressed = 0; passed_through = 0; bytes_saved = 0 } in
  let handle_down (ev : Event.down) =
    (match ev with
     | Event.D_cast m | Event.D_send (_, m) ->
       let plain = Msg.to_bytes m in
       let packed = Rle.encode plain in
       if Bytes.length packed < Bytes.length plain then begin
         t.compressed <- t.compressed + 1;
         t.bytes_saved <- t.bytes_saved + (Bytes.length plain - Bytes.length packed);
         Msg.replace m packed;
         Msg.push_u8 m 1
       end
       else begin
         t.passed_through <- t.passed_through + 1;
         Msg.push_u8 m 0
       end
     | _ -> ());
    env.Layer.emit_down ev
  in
  let handle_up (ev : Event.up) =
    match ev with
    | Event.U_cast (_, m, _) | Event.U_send (_, m, _) ->
      (try
         let flag = Msg.pop_u8 m in
         if flag = 1 then Msg.replace m (Rle.decode (Msg.to_bytes m));
         env.Layer.emit_up ev
       with Msg.Truncated _ | Rle.Malformed ->
         env.Layer.trace ~category:"dropped" "malformed compressed message")
    | _ -> env.Layer.emit_up ev
  in
  { Layer.name = "COMPRESS";
    handle_down;
    handle_up;
    dump =
      (fun () ->
         [ Printf.sprintf "compressed=%d passed_through=%d bytes_saved=%d" t.compressed
             t.passed_through t.bytes_saved ]);
    inert = false;
    stop = (fun () -> ()) }
