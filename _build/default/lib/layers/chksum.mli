(** CHKSUM: FNV checksum over the message; garbled copies are dropped
    (Section 2). Stack under NAK to convert garbling into repairable
    loss. *)

val create : Horus_hcpi.Params.t -> Horus_hcpi.Layer.ctor
