(** CLOCKSYNC: Cristian clock synchronization against the group
    coordinator (Figure 1's "synchronization" type). Parameters:
    [skew] (this node's true clock offset, for simulation) and
    [period]. Deliveries carry the synchronized clock in the
    "clock_ms" meta. *)

val create : Horus_hcpi.Params.t -> Horus_hcpi.Layer.ctor
