(** COM: the bottom adapter layer — raw best-effort datagrams to and
    from the HCPI (Section 7). Stamps source addresses (P11), checks a
    magic/length envelope (P10), filters casts from non-members, and
    turns the view downcall into its destination set.

    Parameters: [filter] (default true) drop casts from non-members;
    [loopback] (default true) deliver own casts locally. *)

val src_meta : string
(** Meta key carrying the raw source endpoint id on every delivery. *)

val magic : int

val create : Horus_hcpi.Params.t -> Horus_hcpi.Layer.ctor
