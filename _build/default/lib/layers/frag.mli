(** FRAG: fragmentation/reassembly of large messages over FIFO
    transport; one header bit per fragment (Sections 7 and 10).
    Parameter [frag_size] (default 1024 bytes). *)

val create : Horus_hcpi.Params.t -> Horus_hcpi.Layer.ctor
