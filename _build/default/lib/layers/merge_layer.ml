(* MERGE: automatic view merging (P16).

   Coordinators of group partitions register with the rendezvous
   (resource location) service. This layer, running above a membership
   layer, periodically asks the service whether a foreign partition of
   its group exists; when it finds one with an older coordinator, it
   issues the merge downcall toward it, and the membership layer does
   the heavy lifting. The always-merge-into-the-older-side policy makes
   concurrent healing deterministic and loop-free. *)

open Horus_msg
open Horus_hcpi

type state = {
  env : Layer.env;
  probe_period : float;
  backoff : float;
  mutable view : View.t option;
  mutable my_rank : int;
  mutable cooldown_until : float;
  mutable stop_timer : unit -> unit;
  mutable merges_started : int;
}

let probe t =
  match t.view with
  | Some v
    when t.my_rank = 0
         && Horus_sim.Engine.now t.env.Layer.engine >= t.cooldown_until ->
    let me = t.env.Layer.endpoint in
    let foreign =
      List.filter
        (fun c -> (not (Addr.equal_endpoint c me)) && not (View.mem v c))
        (t.env.Layer.rendezvous.Layer.lookup t.env.Layer.group)
    in
    (match foreign with
     | [] -> ()
     | c :: _ ->
       (* Oldest foreign coordinator; merge toward it only if it is our
          elder, otherwise its own MERGE layer will come to us. *)
       if Addr.compare_endpoint c me < 0 then begin
         t.merges_started <- t.merges_started + 1;
         t.cooldown_until <- Horus_sim.Engine.now t.env.Layer.engine +. t.backoff;
         t.env.Layer.trace ~category:"merge"
           (Format.asprintf "toward %a" Addr.pp_endpoint c);
         t.env.Layer.emit_down (Event.D_merge c)
       end)
  | Some _ | None -> ()

let create params env =
  let t =
    { env;
      probe_period = Params.get_float params "probe_period" ~default:0.25;
      backoff = Params.get_float params "backoff" ~default:1.0;
      view = None;
      my_rank = -1;
      cooldown_until = 0.0;
      stop_timer = (fun () -> ());
      merges_started = 0 }
  in
  t.stop_timer <- Layer.every env ~period:t.probe_period (fun () -> probe t);
  let handle_up (ev : Event.up) =
    match ev with
    | Event.U_view v ->
      t.view <- Some v;
      t.my_rank <- Option.value (View.rank_of v env.Layer.endpoint) ~default:(-1);
      env.Layer.emit_up ev
    | Event.U_merge_denied _ ->
      (* Busy or refused; retry after the backoff. *)
      t.cooldown_until <- Horus_sim.Engine.now env.Layer.engine +. t.backoff;
      env.Layer.emit_up ev
    | _ -> env.Layer.emit_up ev
  in
  { Layer.name = "MERGE";
    handle_down = env.Layer.emit_down;
    handle_up;
    dump =
      (fun () ->
         [ Printf.sprintf "rank=%d merges_started=%d" t.my_rank t.merges_started ]);
    inert = false;
    stop = (fun () -> t.stop_timer ()) }
