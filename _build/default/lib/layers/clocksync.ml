(* CLOCKSYNC: clock synchronization (Figure 1's "synchronization"
   type), by Cristian's algorithm.

   Each endpoint has a local clock — the simulated time plus a
   configured skew. Non-coordinator members periodically ping the
   coordinator with their local send time; the coordinator echoes with
   its own clock reading; the requester estimates the offset between
   the clocks as (server_time + rtt/2 - local_receive_time) and applies
   it, converging to the coordinator's clock within half a round trip.

   [local_time] is exposed through the focus/dump interface and tagged
   onto deliveries via the "clock_ms" meta hook, so layers above (e.g.
   DEADLINE) can use synchronized time. *)

open Horus_msg
open Horus_hcpi

let k_ping = 0
let k_echo = 1
let k_app_send = 2

type state = {
  env : Layer.env;
  skew : float;               (* configured true skew of this node's clock *)
  period : float;
  mutable view : View.t option;
  mutable my_rank : int;
  mutable offset : float;     (* correction added to the local clock *)
  mutable samples : int;
  mutable stop_timer : unit -> unit;
}

(* The raw (unsynchronized) local clock. *)
let raw_clock t = Horus_sim.Engine.now t.env.Layer.engine +. t.skew

(* The synchronized clock. *)
let local_time t = raw_clock t +. t.offset

let coordinator t =
  match t.view with
  | Some v when View.size v > 0 -> Some (View.nth v 0)
  | Some _ | None -> None

let ping t =
  match coordinator t with
  | Some c when t.my_rank > 0 ->
    let m = Msg.empty () in
    Msg.push_i64 m (Int64.bits_of_float (raw_clock t));
    Msg.push_u8 m k_ping;
    t.env.Layer.emit_down (Event.D_send ([ c ], m))
  | Some _ | None -> ()

let create params env =
  let t =
    { env;
      skew = Params.get_float params "skew" ~default:0.0;
      period = Params.get_float params "period" ~default:0.1;
      view = None;
      my_rank = -1;
      offset = 0.0;
      samples = 0;
      stop_timer = (fun () -> ()) }
  in
  t.stop_timer <- Layer.every env ~period:t.period (fun () -> ping t);
  let handle_down (ev : Event.down) =
    match ev with
    | Event.D_send (dsts, m) ->
      Msg.push_u8 m k_app_send;
      env.Layer.emit_down (Event.D_send (dsts, m))
    | _ -> env.Layer.emit_down ev
  in
  let handle_up (ev : Event.up) =
    match ev with
    | Event.U_send (rank, m, meta) ->
      (try
         let kind = Msg.pop_u8 m in
         if kind = k_app_send then env.Layer.emit_up (Event.U_send (rank, m, meta))
         else if kind = k_ping then begin
           (* Echo: requester's send time + our clock. *)
           let their_send = Msg.pop_i64 m in
           match (t.view, rank) with
           | Some v, r when r >= 0 ->
             let reply = Msg.empty () in
             Msg.push_i64 reply (Int64.bits_of_float (local_time t));
             Msg.push_i64 reply their_send;
             Msg.push_u8 reply k_echo;
             env.Layer.emit_down (Event.D_send ([ View.nth v r ], reply))
           | _ -> ()
         end
         else if kind = k_echo then begin
           let my_send = Int64.float_of_bits (Msg.pop_i64 m) in
           let server_time = Int64.float_of_bits (Msg.pop_i64 m) in
           let now_raw = raw_clock t in
           let rtt = now_raw -. my_send in
           if rtt >= 0.0 then begin
             (* Cristian: the server clock read happened ~rtt/2 ago. *)
             let estimate = server_time +. (rtt /. 2.0) -. now_raw in
             t.offset <- estimate;
             t.samples <- t.samples + 1
           end
         end
         else env.Layer.trace ~category:"dropped" (Printf.sprintf "unknown kind %d" kind)
       with Msg.Truncated what -> env.Layer.trace ~category:"dropped" ("truncated " ^ what))
    | Event.U_view v ->
      t.view <- Some v;
      t.my_rank <- Option.value (View.rank_of v env.Layer.endpoint) ~default:(-1);
      env.Layer.emit_up ev
    | Event.U_cast (rank, m, meta) ->
      (* Tag deliveries with the synchronized clock, milliseconds. *)
      let stamp = int_of_float (local_time t *. 1000.0) in
      env.Layer.emit_up (Event.U_cast (rank, m, ("clock_ms", stamp) :: meta))
    | _ -> env.Layer.emit_up ev
  in
  { Layer.name = "CLOCKSYNC";
    handle_down;
    handle_up;
    dump =
      (fun () ->
         [ Printf.sprintf "skew=%+.4f offset=%+.4f local_time=%.4f samples=%d" t.skew t.offset
             (local_time t) t.samples ]);
    inert = false;
    stop = (fun () -> t.stop_timer ()) }
