(* ORDER(safe): safe delivery — a message surfaces only once the
   stability information from below (P14: a STABLE or PINWHEEL layer)
   shows that *every* view member has received it. Until then it is
   held. The layer issues the receipt acks itself, so the stability
   layer below should run with auto_ack=false when the application
   wants end-to-end processing semantics on top; with the default
   receipt semantics both work.

   At a view change, virtual synchrony guarantees all held messages
   reached every survivor, so they are released (in origin/sequence
   order) before the new view surfaces. *)

open Horus_msg
open Horus_hcpi

type held = {
  h_id : int;  (* stability id from below *)
  h_rank : int;
  h_msg : Msg.t;
  h_meta : Event.meta;
}

type state = {
  env : Layer.env;
  mutable members : int;
  mutable held : held list;  (* arrival order, newest first *)
  mutable delivered_safe : int;
}

let release t h =
  t.delivered_safe <- t.delivered_safe + 1;
  t.env.Layer.emit_up (Event.U_cast (h.h_rank, h.h_msg, h.h_meta))

(* A message is safe when every member's ack count for its origin
   exceeds its sequence number. *)
let is_safe (stab : Event.stability) h =
  let origin, seq = Stable.split_id h.h_id in
  origin < Array.length stab.Event.acked
  && Array.for_all (fun acked -> acked > seq) stab.Event.acked.(origin)

let on_stability t stab =
  let ready, waiting = List.partition (is_safe stab) (List.rev t.held) in
  t.held <- List.rev waiting;
  let ordered = List.sort (fun a b -> Int.compare a.h_id b.h_id) ready in
  List.iter (release t) ordered

let create (_ : Params.t) env =
  let t = { env; members = 0; held = []; delivered_safe = 0 } in
  let handle_up (ev : Event.up) =
    match ev with
    | Event.U_cast (rank, m, meta) ->
      (match Event.meta_find meta Stable.meta_key with
       | Some id ->
         (* Receipt ack toward the stability layer below. *)
         env.Layer.emit_down (Event.D_ack id);
         t.held <- { h_id = id; h_rank = rank; h_msg = m; h_meta = meta } :: t.held
       | None ->
         (* No stability layer below (mis-stacked); fail open with a
            trace rather than silently holding forever. *)
         env.Layer.trace ~category:"unsafe" "delivery without stability id";
         env.Layer.emit_up ev)
    | Event.U_stable stab ->
      on_stability t stab;
      env.Layer.emit_up ev
    | Event.U_view v ->
      (* Virtual synchrony: everything held is at all survivors. *)
      let ordered = List.sort (fun a b -> Int.compare a.h_id b.h_id) (List.rev t.held) in
      t.held <- [];
      List.iter (release t) ordered;
      t.members <- View.size v;
      env.Layer.emit_up ev
    | _ -> env.Layer.emit_up ev
  in
  { Layer.name = "ORDER_SAFE";
    handle_down = env.Layer.emit_down;
    handle_up;
    dump =
      (fun () ->
         [ Printf.sprintf "held=%d delivered_safe=%d" (List.length t.held) t.delivered_safe ]);
    inert = false;
    stop = (fun () -> ()) }
