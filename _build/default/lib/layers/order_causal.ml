(* ORDER(causal): causally ordered multicast via vector timestamps.

   Each cast carries the sender's vector clock (one entry per view
   member — the causal timestamps, P13). A message from rank r with
   vector V is deliverable once the receiver has delivered exactly
   V[r] - 1 messages from r and at least V[k] messages from every other
   k: everything the sender had seen when casting. Virtual synchrony
   below lets the vectors reset cleanly at each view. *)

open Horus_msg
open Horus_hcpi

type held = {
  h_rank : int;
  h_vector : int array;
  h_msg : Msg.t;
  h_meta : Event.meta;
}

type state = {
  env : Layer.env;
  mutable my_rank : int;
  mutable vt : int array;     (* vt.(k) = casts delivered from rank k *)
  mutable held : held list;
  mutable delayed : int;      (* stat: deliveries that had to wait *)
}

let push_vector m vt =
  for i = Array.length vt - 1 downto 0 do
    Msg.push_u32 m vt.(i)
  done;
  Msg.push_u16 m (Array.length vt)

let pop_vector m =
  let n = Msg.pop_u16 m in
  Array.init n (fun _ -> Msg.pop_u32 m)

let deliverable t (h : held) =
  h.h_rank >= 0
  && Array.length h.h_vector = Array.length t.vt
  && h.h_vector.(h.h_rank) = t.vt.(h.h_rank) + 1
  && begin
    let ok = ref true in
    Array.iteri (fun k v -> if k <> h.h_rank && v > t.vt.(k) then ok := false) h.h_vector;
    !ok
  end

let rec deliver_ready t =
  match List.find_opt (deliverable t) t.held with
  | Some h ->
    t.held <- List.filter (fun x -> x != h) t.held;
    t.vt.(h.h_rank) <- t.vt.(h.h_rank) + 1;
    t.env.Layer.emit_up (Event.U_cast (h.h_rank, h.h_msg, h.h_meta));
    deliver_ready t
  | None -> ()

let create (_ : Params.t) env =
  let t = { env; my_rank = -1; vt = [||]; held = []; delayed = 0 } in
  let handle_down (ev : Event.down) =
    match ev with
    | Event.D_cast m ->
      if t.my_rank >= 0 then begin
        (* The vector we attach claims this cast as our next one. *)
        let v = Array.copy t.vt in
        v.(t.my_rank) <- v.(t.my_rank) + 1;
        push_vector m v
      end
      else push_vector m [||];
      env.Layer.emit_down (Event.D_cast m)
    | _ -> env.Layer.emit_down ev
  in
  let handle_up (ev : Event.up) =
    match ev with
    | Event.U_cast (rank, m, meta) ->
      (try
         let vector = pop_vector m in
         let h = { h_rank = rank; h_vector = vector; h_msg = m; h_meta = meta } in
         if deliverable t h then begin
           t.vt.(rank) <- t.vt.(rank) + 1;
           env.Layer.emit_up (Event.U_cast (rank, m, meta));
           deliver_ready t
         end
         else begin
           t.delayed <- t.delayed + 1;
           t.held <- h :: t.held;
           deliver_ready t
         end
       with Msg.Truncated what -> env.Layer.trace ~category:"dropped" ("truncated " ^ what))
    | Event.U_view v ->
      (* Virtual synchrony: the cut is clean, nothing can remain held. *)
      t.held <- [];
      t.my_rank <- Option.value (View.rank_of v env.Layer.endpoint) ~default:(-1);
      t.vt <- Array.make (View.size v) 0;
      env.Layer.emit_up ev
    | _ -> env.Layer.emit_up ev
  in
  { Layer.name = "ORDER_CAUSAL";
    handle_down;
    handle_up;
    dump =
      (fun () ->
         [ Printf.sprintf "rank=%d held=%d delayed=%d vt=[%s]" t.my_rank (List.length t.held)
             t.delayed
             (String.concat ";" (Array.to_list (Array.map string_of_int t.vt))) ]);
    inert = false;
    stop = (fun () -> ()) }
