(** Byte-pair run-length encoding for the COMPRESS layer. *)

exception Malformed

val encode : Bytes.t -> Bytes.t
val decode : Bytes.t -> Bytes.t
(** Raises {!Malformed} on odd lengths or zero counts. *)
