(** ACCOUNT: per-source message and byte usage ledgers (Figure 1's
    "accounting" type), rendered by the dump downcall. *)

val create : Horus_hcpi.Params.t -> Horus_hcpi.Layer.ctor
