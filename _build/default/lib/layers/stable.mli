(** STABLE: the application-defined stability matrix of Section 9.
    Deliveries carry a stability id in their meta (key {!meta_key});
    the application acknowledges processing through the ack downcall;
    ack vectors are gossiped and the full matrix is reported via STABLE
    upcalls. Parameters: [auto_ack] (default true: receipt counts as
    processing) and [gossip_period]. *)

val id_bits : int

val make_id : rank:int -> seq:int -> int
(** Pack (origin rank, per-origin sequence number) into a stability
    id. *)

val split_id : int -> int * int

val meta_key : string
(** Delivery meta key carrying the stability id ("stable_id"). *)

val create : Horus_hcpi.Params.t -> Horus_hcpi.Layer.ctor
