(* ENCRYPT: private communication (Figure 1's "encryption" type).

   XOR keystream derived from a shared group key and a per-message
   nonce; the nonce travels in the header. The keystream generator is
   splitmix64 — again a protocol-shaped stand-in, not real crypto (see
   DESIGN.md). Key distribution is by configuration parameter; all
   members of a group must be configured with the same key. *)

open Horus_msg
open Horus_hcpi

type state = {
  env : Layer.env;
  key_hash : int;
  mutable nonce : int;
  mutable encrypted : int;
  mutable decrypted : int;
}

(* The keystream is salted with the sender's endpoint id so that two
   senders using the same nonce counter never share a stream. The
   sender id is recovered on the way up from COM's src_eid meta. *)
let keystream_xor t ~nonce ~src b =
  let prng =
    Horus_util.Prng.create (t.key_hash lxor (nonce * 0x9E3779B9) lxor (src * 0x85EBCA6B))
  in
  let out = Bytes.copy b in
  let n = Bytes.length out in
  for i = 0 to n - 1 do
    Bytes.set out i
      (Char.chr (Char.code (Bytes.get out i) lxor Horus_util.Prng.int prng 256))
  done;
  out

let create params env =
  let key = Params.get_string params "key" ~default:"horus-group-key" in
  let t =
    { env;
      key_hash = Int64.to_int (Horus_util.Crc.checksum_string key);
      nonce = 0;
      encrypted = 0;
      decrypted = 0 }
  in
  let handle_down (ev : Event.down) =
    (match ev with
     | Event.D_cast m | Event.D_send (_, m) ->
       t.nonce <- t.nonce + 1;
       t.encrypted <- t.encrypted + 1;
       let src = Addr.endpoint_id env.Layer.endpoint in
       Msg.replace m (keystream_xor t ~nonce:t.nonce ~src (Msg.to_bytes m));
       Msg.push_u32 m t.nonce
     | _ -> ());
    env.Layer.emit_down ev
  in
  let handle_up (ev : Event.up) =
    match ev with
    | Event.U_cast (_, m, meta) | Event.U_send (_, m, meta) ->
      (try
         let nonce = Msg.pop_u32 m in
         let src = Option.value (Event.meta_find meta Com.src_meta) ~default:0 in
         Msg.replace m (keystream_xor t ~nonce ~src (Msg.to_bytes m));
         t.decrypted <- t.decrypted + 1;
         env.Layer.emit_up ev
       with Msg.Truncated _ ->
         env.Layer.trace ~category:"dropped" "truncated ciphertext")
    | _ -> env.Layer.emit_up ev
  in
  { Layer.name = "ENCRYPT";
    handle_down;
    handle_up;
    dump = (fun () -> [ Printf.sprintf "encrypted=%d decrypted=%d" t.encrypted t.decrypted ]);
    inert = false;
    stop = (fun () -> ()) }
