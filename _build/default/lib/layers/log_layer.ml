(* LOG: tolerance of total crash failures (Figure 1's "logging" type).

   Every cast the layer delivers — plus every cast the local
   application sends — is appended to stable storage under a
   caller-chosen log name before it travels on. When a process restarts
   after a total failure (every member crashed), a fresh stack created
   with the same [name] parameter *replays* the logged deliveries to
   the application right after the first view installs, so the
   application can rebuild its state from its own history.

   The log survives because it lives on the simulated disk
   (Layer.storage), not in the process. [checkpoint] truncates. *)

open Horus_msg
open Horus_hcpi

type state = {
  env : Layer.env;
  key : string;
  replay : bool;
  mutable replayed : bool;
  mutable logged : int;
}

(* Records are "rank payload" with the rank in decimal before the first
   space; payloads are arbitrary bytes after it. *)
let encode ~rank payload = string_of_int rank ^ " " ^ payload

let decode record =
  match String.index_opt record ' ' with
  | None -> None
  | Some i ->
    (match int_of_string_opt (String.sub record 0 i) with
     | Some rank -> Some (rank, String.sub record (i + 1) (String.length record - i - 1))
     | None -> None)

let meta_replayed = "replayed"

let replay_log t =
  if t.replay && not t.replayed then begin
    t.replayed <- true;
    let records = t.env.Layer.storage.Layer.read ~key:t.key in
    List.iter
      (fun record ->
         match decode record with
         | Some (rank, payload) ->
           t.env.Layer.emit_up
             (Event.U_cast (rank, Msg.create payload, [ (meta_replayed, 1) ]))
         | None -> ())
      records;
    if records <> [] then
      t.env.Layer.trace ~category:"replay" (Printf.sprintf "%d records" (List.length records))
  end

let create params env =
  let t =
    { env;
      key =
        Printf.sprintf "log/%s/g%d"
          (Params.get_string params "name" ~default:"default")
          (Addr.group_id env.Layer.group);
      replay = Params.get_bool params "replay" ~default:true;
      replayed = false;
      logged = 0 }
  in
  let append ~rank payload =
    t.logged <- t.logged + 1;
    env.Layer.storage.Layer.append ~key:t.key (encode ~rank payload)
  in
  let handle_up (ev : Event.up) =
    match ev with
    | Event.U_view _ ->
      (* Replay persisted history once, before live traffic of the
         first view reaches the application. *)
      env.Layer.emit_up ev;
      replay_log t
    | Event.U_cast (rank, m, meta) ->
      append ~rank (Msg.to_string m);
      env.Layer.emit_up (Event.U_cast (rank, m, meta))
    | _ -> env.Layer.emit_up ev
  in
  { Layer.name = "LOG";
    handle_down = env.Layer.emit_down;
    handle_up;
    dump =
      (fun () ->
         [ Printf.sprintf "key=%s logged=%d replayed=%b" t.key t.logged t.replayed ]);
    inert = false;
    stop = (fun () -> ()) }
