(* NOOP: an inert layer that forwards every event untouched.

   Exists for the Section 10 layering-overhead experiments: stacking k
   NOOP layers measures the cost of k layer crossings with zero
   protocol work. *)

open Horus_hcpi

(* [inert] lets the stack's layer-skipping optimization bypass NOOP
   entirely when enabled — the point of the experiment is to compare
   the two configurations. *)
let create (_ : Params.t) env = Layer.passthrough ~name:"NOOP" ~inert:true env
