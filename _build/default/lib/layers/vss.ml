(* VSS: virtual synchrony service — the decentralized alternative to
   the FLUSH layer (Table 3 lists both as P9 providers).

   Where FLUSH funnels recovery through the flush coordinator (two
   hops, O(n) messages), VSS has every survivor exchange its unstable
   state with every other survivor directly: one round, O(n^2)
   messages. Each member releases the application's flush_ok toward the
   membership layer once it has heard from every survivor — at which
   point it provably holds every message any survivor delivered. The
   ablation bench compares the two strategies (experiment E12). *)

open Horus_msg
open Horus_hcpi

let k_data = 0
let k_state = 1
let k_app_send = 2

module ESet = Addr.Endpoint_set

type exchange = {
  ex_failed : Addr.endpoint list;
  mutable ex_waiting : ESet.t;
  mutable ex_ok_from_above : bool;
}

type state = {
  env : Layer.env;
  mutable view : View.t option;
  mutable next_seq : int;
  log : Delivery_log.t;
  mutable exchange : exchange option;
  mutable early_states : (Addr.endpoint list * int) list;  (* failed set, src *)
  mutable exchanges_run : int;
  mutable ctl_sent : int;
}

let me t = t.env.Layer.endpoint

let my_eid t = Addr.endpoint_id (me t)

let src_of meta = Option.value (Event.meta_find meta Com.src_meta) ~default:(-1)

let rank_of_origin t origin =
  match t.view with
  | None -> -1
  | Some v -> Option.value (View.rank_of v (Addr.endpoint origin)) ~default:(-1)

let accept_data t ~origin ~seq ~rank m meta =
  Delivery_log.accept t.log ~origin ~seq ~rank m meta ~deliver:(fun ~rank m meta ->
      let rank = if rank >= 0 then rank else rank_of_origin t origin in
      t.env.Layer.emit_up (Event.U_cast (rank, m, meta)))

let push_copies = Delivery_log.push_copies
let pop_copies = Delivery_log.pop_copies

let maybe_release t =
  match t.exchange with
  | Some ex when ex.ex_ok_from_above && ESet.is_empty ex.ex_waiting ->
    t.exchange <- None;
    t.env.Layer.emit_down Event.D_flush_ok
  | Some _ | None -> ()

let same_failed a b =
  List.length a = List.length b && List.for_all (fun x -> List.exists (Addr.equal_endpoint x) b) a

let start_exchange t failed =
  match t.view with
  | None -> ()
  | Some v ->
    t.exchanges_run <- t.exchanges_run + 1;
    let is_failed e = List.exists (Addr.equal_endpoint e) failed in
    let survivors = List.filter (fun m -> not (is_failed m)) (View.members v) in
    let ex = { ex_failed = failed; ex_waiting = ESet.of_list survivors; ex_ok_from_above = false } in
    t.exchange <- Some ex;
    let early = t.early_states in
    t.early_states <- [];
    List.iter
      (fun (efailed, src) ->
         if same_failed efailed failed then
           ex.ex_waiting <- ESet.remove (Addr.endpoint src) ex.ex_waiting)
      early;
    let copies = Delivery_log.copies t.log in
    List.iter
      (fun dst ->
         let m = Msg.empty () in
         push_copies m copies;
         Wire.push_endpoint_list m failed;
         Msg.push_u8 m k_state;
         t.ctl_sent <- t.ctl_sent + 1;
         t.env.Layer.emit_down (Event.D_send ([ dst ], m)))
      survivors

let create (_ : Params.t) env =
  let t =
    { env;
      view = None;
      next_seq = 0;
      log = Delivery_log.create ();
      exchange = None;
      early_states = [];
      exchanges_run = 0;
      ctl_sent = 0 }
  in
  let handle_down (ev : Event.down) =
    match ev with
    | Event.D_cast m ->
      Msg.push_u32 m t.next_seq;
      Delivery_log.record t.log ~origin:(my_eid t) ~seq:t.next_seq (Msg.to_string m);
      t.next_seq <- t.next_seq + 1;
      Msg.push_u8 m k_data;
      env.Layer.emit_down (Event.D_cast m)
    | Event.D_send (dsts, m) ->
      Msg.push_u8 m k_app_send;
      env.Layer.emit_down (Event.D_send (dsts, m))
    | Event.D_flush_ok ->
      (match t.exchange with
       | Some ex ->
         ex.ex_ok_from_above <- true;
         maybe_release t
       | None -> env.Layer.emit_down ev)
    | _ -> env.Layer.emit_down ev
  in
  let handle_up (ev : Event.up) =
    match ev with
    | Event.U_cast (rank, m, meta) | Event.U_send (rank, m, meta) ->
      (try
         let kind = Msg.pop_u8 m in
         if kind = k_data then begin
           let seq = Msg.pop_u32 m in
           let origin = src_of meta in
           let straggler =
             match t.exchange with
             | Some ex -> List.exists (fun e -> Addr.endpoint_id e = origin) ex.ex_failed
             | None -> false
           in
           if straggler then env.Layer.trace ~category:"ignored" "straggler from failed member"
           else accept_data t ~origin ~seq ~rank m meta
         end
         else if kind = k_app_send then env.Layer.emit_up (Event.U_send (rank, m, meta))
         else if kind = k_state then begin
           let failed = Wire.pop_endpoint_list m in
           let copies = pop_copies m in
           List.iter
             (fun (o, s, p) ->
                accept_data t ~origin:o ~seq:s ~rank:(rank_of_origin t o) (Msg.create p) [])
             copies;
           match t.exchange with
           | Some ex when same_failed failed ex.ex_failed ->
             ex.ex_waiting <- ESet.remove (Addr.endpoint (src_of meta)) ex.ex_waiting;
             maybe_release t
           | Some _ -> ()
           | None -> t.early_states <- (failed, src_of meta) :: t.early_states
         end
         else env.Layer.trace ~category:"dropped" (Printf.sprintf "unknown kind %d" kind)
       with Msg.Truncated what -> env.Layer.trace ~category:"dropped" ("truncated " ^ what))
    | Event.U_flush failed ->
      start_exchange t failed;
      env.Layer.emit_up ev
    | Event.U_view v ->
      t.view <- Some v;
      t.next_seq <- 0;
      Delivery_log.reset t.log;
      t.exchange <- None;
      t.early_states <- [];
      env.Layer.emit_up ev
    | _ -> env.Layer.emit_up ev
  in
  { Layer.name = "VSS";
    handle_down;
    handle_up;
    dump =
      (fun () ->
         [ Printf.sprintf "exchanges=%d logged=%d exchanging=%b ctl_sent=%d" t.exchanges_run
             (Delivery_log.size t.log) (t.exchange <> None) t.ctl_sent ]);
    inert = false;
    stop = (fun () -> ()) }
