(** ORDER(safe): safe delivery — casts are held until the stability
    matrix from a STABLE/PINWHEEL layer below shows every member has
    them (P7). View changes release held messages (virtual synchrony
    guarantees they are everywhere). *)

val create : Horus_hcpi.Params.t -> Horus_hcpi.Layer.ctor
