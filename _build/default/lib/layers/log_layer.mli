(** LOG: tolerance of total crash failures (Figure 1's "logging"
    type). Appends every delivered cast to stable storage under the
    per-process [name] parameter and replays the log to the application
    when a restarted process rejoins. Parameter [replay] (default
    true). Replayed deliveries carry meta {!meta_replayed}. *)

val meta_replayed : string

val create : Horus_hcpi.Params.t -> Horus_hcpi.Layer.ctor
