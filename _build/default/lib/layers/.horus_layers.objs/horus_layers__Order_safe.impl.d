lib/layers/order_safe.ml: Array Event Horus_hcpi Horus_msg Int Layer List Msg Params Printf Stable View
