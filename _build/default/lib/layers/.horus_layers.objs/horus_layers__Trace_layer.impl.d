lib/layers/trace_layer.ml: Event Horus_hcpi Horus_msg Layer Params Printf
