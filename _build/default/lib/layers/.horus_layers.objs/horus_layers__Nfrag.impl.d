lib/layers/nfrag.ml: Buffer Com Event Hashtbl Horus_hcpi Horus_msg Horus_sim Int Layer Msg Option Params Printf String
