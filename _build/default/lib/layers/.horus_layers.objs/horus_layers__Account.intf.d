lib/layers/account.mli: Horus_hcpi
