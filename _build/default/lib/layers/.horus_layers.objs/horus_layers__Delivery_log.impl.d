lib/layers/delivery_log.ml: Event Hashtbl Horus_hcpi Horus_msg List Msg Option Wire
