lib/layers/frag.mli: Horus_hcpi
