lib/layers/clocksync.mli: Horus_hcpi
