lib/layers/nnak.ml: Event Horus_hcpi Horus_msg Int Layer List Msg Params Printf
