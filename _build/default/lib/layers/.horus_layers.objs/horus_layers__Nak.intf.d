lib/layers/nak.mli: Horus_hcpi
