lib/layers/account.ml: Com Event Hashtbl Horus_hcpi Horus_msg Layer List Msg Option Params Printf
