lib/layers/nnak.mli: Horus_hcpi
