lib/layers/com.mli: Horus_hcpi
