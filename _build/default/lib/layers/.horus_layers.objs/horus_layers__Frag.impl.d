lib/layers/frag.ml: Buffer Com Event Hashtbl Horus_hcpi Horus_msg Layer Msg Option Params Printf
