lib/layers/order_causal.ml: Array Event Horus_hcpi Horus_msg Layer List Msg Option Params Printf String View
