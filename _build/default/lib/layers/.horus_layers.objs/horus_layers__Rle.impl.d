lib/layers/rle.ml: Buffer Bytes Char
