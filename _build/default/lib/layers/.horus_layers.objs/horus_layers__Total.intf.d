lib/layers/total.mli: Horus_hcpi
