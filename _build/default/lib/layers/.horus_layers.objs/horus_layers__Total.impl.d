lib/layers/total.ml: Event Hashtbl Horus_hcpi Horus_msg Int Layer List Msg Option Params Printf Queue View
