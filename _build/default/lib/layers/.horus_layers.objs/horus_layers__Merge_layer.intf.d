lib/layers/merge_layer.mli: Horus_hcpi
