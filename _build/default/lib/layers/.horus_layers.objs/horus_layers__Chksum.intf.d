lib/layers/chksum.mli: Horus_hcpi
