lib/layers/vss.mli: Horus_hcpi
