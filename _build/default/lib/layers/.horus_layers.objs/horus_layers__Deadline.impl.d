lib/layers/deadline.ml: Event Horus_hcpi Horus_msg Horus_sim Int64 Layer Msg Params Printf
