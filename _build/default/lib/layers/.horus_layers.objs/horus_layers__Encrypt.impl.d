lib/layers/encrypt.ml: Addr Bytes Char Com Event Horus_hcpi Horus_msg Horus_util Int64 Layer Msg Option Params Printf
