lib/layers/nak.ml: Addr Array Com Event Hashtbl Horus_hcpi Horus_msg Horus_sim Int Layer List Msg Option Params Printf View
