lib/layers/init.mli:
