lib/layers/order_safe.mli: Horus_hcpi
