lib/layers/clocksync.ml: Event Horus_hcpi Horus_msg Horus_sim Int64 Layer Msg Option Params Printf View
