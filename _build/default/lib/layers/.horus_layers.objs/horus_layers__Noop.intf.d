lib/layers/noop.mli: Horus_hcpi
