lib/layers/nfrag.mli: Horus_hcpi
