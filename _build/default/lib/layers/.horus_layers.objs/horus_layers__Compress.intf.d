lib/layers/compress.mli: Horus_hcpi
