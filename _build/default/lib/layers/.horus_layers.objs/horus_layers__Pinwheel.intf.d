lib/layers/pinwheel.mli: Horus_hcpi
