lib/layers/log_layer.ml: Addr Event Horus_hcpi Horus_msg Layer List Msg Params Printf String
