lib/layers/compress.ml: Bytes Event Horus_hcpi Horus_msg Layer Msg Params Printf Rle
