lib/layers/log_layer.mli: Horus_hcpi
