lib/layers/batch.mli: Horus_hcpi
