lib/layers/flush_layer.ml: Addr Com Delivery_log Event Horus_hcpi Horus_msg Layer List Msg Option Params Printf View Wire
