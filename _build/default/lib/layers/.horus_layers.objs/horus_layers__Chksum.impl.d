lib/layers/chksum.ml: Bytes Event Horus_hcpi Horus_msg Horus_util Int64 Layer Msg Params Printf
