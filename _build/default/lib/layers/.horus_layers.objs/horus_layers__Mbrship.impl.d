lib/layers/mbrship.ml: Addr Com Delivery_log Event Format Hashtbl Horus_hcpi Horus_msg Int Layer List Msg Option Params Printf Queue View Wire
