lib/layers/stable.mli: Horus_hcpi
