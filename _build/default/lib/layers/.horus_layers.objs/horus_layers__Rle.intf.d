lib/layers/rle.mli: Bytes
