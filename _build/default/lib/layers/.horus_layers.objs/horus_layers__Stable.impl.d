lib/layers/stable.ml: Array Event Horus_hcpi Horus_msg Int Layer Msg Option Params Printf View
