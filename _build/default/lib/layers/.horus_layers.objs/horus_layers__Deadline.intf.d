lib/layers/deadline.mli: Horus_hcpi
