lib/layers/batch.ml: Event Horus_hcpi Horus_msg Layer List Msg Params Printf String Wire
