lib/layers/sign.mli: Horus_hcpi
