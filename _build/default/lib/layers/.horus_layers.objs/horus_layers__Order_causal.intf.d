lib/layers/order_causal.mli: Horus_hcpi
