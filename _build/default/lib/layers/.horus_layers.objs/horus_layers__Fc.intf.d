lib/layers/fc.mli: Horus_hcpi
