lib/layers/trace_layer.mli: Horus_hcpi
