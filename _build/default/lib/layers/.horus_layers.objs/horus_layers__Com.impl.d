lib/layers/com.ml: Addr Array Event Format Horus_hcpi Horus_msg Layer List Msg Option Params Printf View Wire
