lib/layers/encrypt.mli: Horus_hcpi
