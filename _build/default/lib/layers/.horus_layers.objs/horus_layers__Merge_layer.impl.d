lib/layers/merge_layer.ml: Addr Event Format Horus_hcpi Horus_msg Horus_sim Layer List Option Params Printf View
