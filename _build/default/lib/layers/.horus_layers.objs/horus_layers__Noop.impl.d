lib/layers/noop.ml: Horus_hcpi Layer Params
