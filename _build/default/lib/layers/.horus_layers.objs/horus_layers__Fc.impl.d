lib/layers/fc.ml: Event Float Horus_hcpi Horus_sim Layer Params Printf Queue
