lib/layers/flush_layer.mli: Horus_hcpi
