lib/layers/delivery_log.mli: Event Hashtbl Horus_hcpi Horus_msg Msg
