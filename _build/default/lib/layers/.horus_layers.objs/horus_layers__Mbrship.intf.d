lib/layers/mbrship.mli: Horus_hcpi
