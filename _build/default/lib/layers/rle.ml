(* Byte-pair run-length encoding for the COMPRESS layer.

   Encoded form is a sequence of (count, byte) pairs, count in 1..255.
   Incompressible data grows (up to 2x); the COMPRESS layer only uses
   the encoding when it wins, signalled by a header flag. *)

let encode b =
  let n = Bytes.length b in
  let out = Buffer.create (n / 2) in
  let i = ref 0 in
  while !i < n do
    let c = Bytes.get b !i in
    let run = ref 1 in
    while !i + !run < n && !run < 255 && Bytes.get b (!i + !run) = c do
      incr run
    done;
    Buffer.add_char out (Char.chr !run);
    Buffer.add_char out c;
    i := !i + !run
  done;
  Buffer.to_bytes out

exception Malformed

let decode b =
  let n = Bytes.length b in
  if n mod 2 <> 0 then raise Malformed;
  let out = Buffer.create (2 * n) in
  let i = ref 0 in
  while !i < n do
    let count = Char.code (Bytes.get b !i) in
    let c = Bytes.get b (!i + 1) in
    if count = 0 then raise Malformed;
    for _ = 1 to count do
      Buffer.add_char out c
    done;
    i := !i + 2
  done;
  Buffer.to_bytes out
