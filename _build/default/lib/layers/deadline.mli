(** DEADLINE: real-time delivery budgets (Figure 1's "real-time"
    type). Casts older than [budget] seconds are dropped and surface as
    LOST_MESSAGE; fresh deliveries carry their transit age in the
    "age_us" meta. *)

val create : Horus_hcpi.Params.t -> Horus_hcpi.Layer.ctor
