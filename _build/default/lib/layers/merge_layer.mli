(** MERGE: automatic view merging (P16). The group coordinator
    periodically consults the rendezvous service for foreign partitions
    of its group and merges toward older coordinators; concurrent
    healing stays loop-free. Parameters [probe_period], [backoff]. *)

val create : Horus_hcpi.Params.t -> Horus_hcpi.Layer.ctor
