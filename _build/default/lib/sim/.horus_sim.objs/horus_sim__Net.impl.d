lib/sim/net.ml: Bytes Char Engine Hashtbl Horus_util List
