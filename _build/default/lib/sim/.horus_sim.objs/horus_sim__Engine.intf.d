lib/sim/engine.mli:
