lib/sim/engine.ml: Float Horus_util Int
