lib/sim/net.mli: Bytes Engine
