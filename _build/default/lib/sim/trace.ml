(* Event trace recorder. Tests of protocol scenarios (e.g. the Figure 2
   flush) assert on the recorded sequence; the TRACE layer also writes
   here. *)

type entry = {
  time : float;
  category : string;
  detail : string;
}

type t = {
  mutable entries : entry list;  (* reverse order *)
  mutable count : int;
  limit : int;
}

let create ?(limit = 100_000) () = { entries = []; count = 0; limit }

let record t ~time ~category detail =
  if t.count < t.limit then begin
    t.entries <- { time; category; detail } :: t.entries;
    t.count <- t.count + 1
  end

let entries t = List.rev t.entries

let count t = t.count

let clear t =
  t.entries <- [];
  t.count <- 0

let find t ~category = List.filter (fun e -> e.category = category) (entries t)

let pp_entry fmt e = Format.fprintf fmt "[%8.4f] %-12s %s" e.time e.category e.detail

let dump fmt t =
  List.iter (fun e -> Format.fprintf fmt "%a@." pp_entry e) (entries t)
