(** Event trace recorder for scenario tests and the TRACE layer. *)

type entry = {
  time : float;
  category : string;
  detail : string;
}

type t

val create : ?limit:int -> unit -> t
val record : t -> time:float -> category:string -> string -> unit
val entries : t -> entry list
val count : t -> int
val clear : t -> unit
val find : t -> category:string -> entry list
val pp_entry : Format.formatter -> entry -> unit
val dump : Format.formatter -> t -> unit
