(* Deterministic splitmix64 pseudo-random number generator.

   All randomness in the repository flows through this module so that
   every simulation — including crash and partition scenarios — replays
   identically from a seed. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 step: state += 0x9E3779B97F4A7C15; mix with two xor-shifts. *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Non-negative int in [0, 2^62). *)
let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  bits t mod bound

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 2^53 values mapped into [0, bound) *)
  x /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Bernoulli trial with probability [p]. *)
let chance t p = if p <= 0.0 then false else if p >= 1.0 then true else float t 1.0 < p

(* Exponentially distributed value with the given mean (for inter-arrival
   times in workload generators). *)
let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (int t 256))
  done;
  b
