(** Small immutable bitsets backed by an [int] (elements 0..61). *)

type t = private int

val max_bits : int
val empty : t
val singleton : int -> t
val add : t -> int -> t
val remove : t -> int -> t
val mem : t -> int -> bool
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val subset : t -> t -> bool
(** [subset a b] is true when every element of [a] is in [b]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val is_empty : t -> bool
val of_list : int list -> t
val to_list : t -> int list
val cardinal : t -> int
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val pp : ?elt:(Format.formatter -> int -> unit) -> Format.formatter -> t -> unit
val hash : t -> int
