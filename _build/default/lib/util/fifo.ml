(* Mutable FIFO queue. A thin wrapper over [Queue] with the operations
   the endpoint event loop needs; kept as its own module so that the
   event-queue discipline of the paper reads explicitly in the code. *)

type 'a t = 'a Queue.t

let create () = Queue.create ()

let push t x = Queue.push x t

let pop t = if Queue.is_empty t then None else Some (Queue.pop t)

let is_empty t = Queue.is_empty t

let length t = Queue.length t

let clear t = Queue.clear t

let iter f t = Queue.iter f t
