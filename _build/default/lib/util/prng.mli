(** Deterministic splitmix64 pseudo-random number generator.

    All randomness in the simulator and workload generators flows
    through this module so that runs replay identically from a seed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. *)

val copy : t -> t
(** Independent copy with the same state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int
(** Non-negative int drawn from the top 62 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Raises on [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is a Bernoulli trial with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val shuffle_in_place : t -> 'a array -> unit

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val bytes : t -> int -> Bytes.t
(** [bytes t n] is [n] uniformly random bytes. *)
