(* Small immutable bitsets backed by an [int] (up to 62 elements).
   Used for property sets (P1..P16) in the stack algebra, where cheap
   value semantics and hashability matter for the synthesis search. *)

type t = int

let max_bits = 62

let empty = 0

let singleton i =
  if i < 0 || i >= max_bits then invalid_arg "Bitset.singleton";
  1 lsl i

let add t i = t lor singleton i

let remove t i = t land lnot (singleton i)

let mem t i = i >= 0 && i < max_bits && t land (1 lsl i) <> 0

let union a b = a lor b

let inter a b = a land b

let diff a b = a land lnot b

let subset a b = a land b = a

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = Stdlib.compare a b

let is_empty t = t = 0

let of_list l = List.fold_left add empty l

let to_list t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (if mem t i then i :: acc else acc) in
  loop (max_bits - 1) []

let cardinal t =
  let rec loop t acc = if t = 0 then acc else loop (t land (t - 1)) (acc + 1) in
  loop t 0

let fold f t acc = List.fold_left (fun acc i -> f i acc) acc (to_list t)

let pp ?(elt = Format.pp_print_int) fmt t =
  Format.fprintf fmt "{%a}" (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ",") elt) (to_list t)

let hash (t : t) = Hashtbl.hash t
