lib/util/heap.mli:
