lib/util/crc.ml: Bytes Char Int64
