lib/util/bitset.ml: Format Hashtbl List Stdlib
