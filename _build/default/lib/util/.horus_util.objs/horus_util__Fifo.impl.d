lib/util/fifo.ml: Queue
