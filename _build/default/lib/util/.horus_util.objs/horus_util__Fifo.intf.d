lib/util/fifo.mli:
