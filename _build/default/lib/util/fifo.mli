(** Mutable FIFO queue used for per-endpoint event queues. *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option
val is_empty : 'a t -> bool
val length : 'a t -> int
val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
