(* Checksums and keyed MACs for the CHKSUM and SIGN layers.

   FNV-1a is a non-cryptographic hash; the SIGN layer's "MAC" mixes a
   key into the initial state. That is enough to exercise the protocol
   behaviour (reject tampered or forged traffic); cipher strength is
   out of scope for the reproduction (see DESIGN.md substitutions). *)

let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let fnv1a64 ?(init = fnv_offset) b ~off ~len =
  let h = ref init in
  for i = off to off + len - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code (Bytes.get b i)));
    h := Int64.mul !h fnv_prime
  done;
  !h

let checksum b ~off ~len = fnv1a64 b ~off ~len

let checksum_string s =
  let b = Bytes.unsafe_of_string s in
  fnv1a64 b ~off:0 ~len:(Bytes.length b)

(* Keyed MAC: hash the key into the initial state, then the data, then
   the key again (sandwich construction). *)
let mac ~key b ~off ~len =
  let kb = Bytes.of_string key in
  let h = fnv1a64 kb ~off:0 ~len:(Bytes.length kb) in
  let h = fnv1a64 ~init:h b ~off ~len in
  fnv1a64 ~init:h kb ~off:0 ~len:(Bytes.length kb)
