(** Binary min-heap with a user-supplied comparison. *)

type 'a t

val create : compare:('a -> 'a -> int) -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Sorted contents; does not disturb the heap. *)
