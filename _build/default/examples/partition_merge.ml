(* Partition and automatic healing: a six-member group is split by a
   network partition, both sides reconfigure and keep working
   independently (extended-virtual-synchrony style progress), and when
   the network heals, the MERGE layer discovers the foreign partition
   through the rendezvous service and reunites the views without any
   application involvement (Section 9's partitioning discussion, P16).

   Run with: dune exec examples/partition_merge.exe *)

open Horus

let spec = "MERGE:MBRSHIP:FRAG:NAK:COM"

let show_views tag members =
  Format.printf "%s@." tag;
  List.iter
    (fun (name, g) ->
       match Group.view g with
       | Some v -> Format.printf "  %s: %a@." name View.pp v
       | None -> Format.printf "  %s: (no view)@." name)
    members

let () =
  let world = World.create ~seed:23 () in
  let g = World.fresh_group_addr world in
  let founder = Group.join (Endpoint.create world ~spec) g in
  World.run_for world ~duration:0.5;
  let others =
    List.init 5 (fun _ ->
        let m = Group.join ~contact:(Group.addr founder) (Endpoint.create world ~spec) g in
        World.run_for world ~duration:0.5;
        m)
  in
  World.run_for world ~duration:3.0;
  let members =
    List.mapi (fun i g -> (Printf.sprintf "m%d" i, g)) (founder :: others)
  in
  show_views "formed:" members;

  (* Split 4 / 2. *)
  let node (_, g) = Addr.endpoint_id (Group.addr g) in
  let side_a = List.filteri (fun i _ -> i < 4) members in
  let side_b = List.filteri (fun i _ -> i >= 4) members in
  Horus_sim.Net.partition (World.net world)
    [ List.map node side_a; List.map node side_b ];
  Format.printf "@.network partitioned 4/2...@.";
  World.run_for world ~duration:4.0;
  show_views "after partition (both sides made progress):" members;

  (* Each side keeps multicasting within its partition. *)
  Group.cast (snd (List.hd side_a)) "cast inside majority side";
  Group.cast (snd (List.hd side_b)) "cast inside minority side";
  World.run_for world ~duration:1.0;

  Horus_sim.Net.heal (World.net world);
  Format.printf "@.network healed; MERGE layer probing...@.";
  World.run_for world ~duration:8.0;
  show_views "after automatic merge:" members;

  let sizes =
    List.map (fun (_, g) -> match Group.view g with Some v -> View.size v | None -> 0) members
  in
  if List.for_all (fun s -> s = 6) sizes then
    Format.printf "@.all six members reunited automatically@."
  else Format.printf "@.merge incomplete: sizes %s@."
      (String.concat "," (List.map string_of_int sizes))
