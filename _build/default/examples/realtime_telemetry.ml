(* Real-time telemetry: DEADLINE and CLOCKSYNC together (Figure 1's
   "real-time" and "synchronization" types).

   Sensors multicast readings with a 30 ms freshness budget. One
   consumer sits behind a congested 80 ms link: every reading reaching
   it is stale and is dropped in favour of a LOST_MESSAGE signal — for
   telemetry, knowing a reading is missing beats acting on an old one.
   Clock synchronization lets consumers with skewed clocks agree on
   when each reading was taken.

   Run with: dune exec examples/realtime_telemetry.exe *)

open Horus

let spec skew =
  Printf.sprintf "DEADLINE(budget=0.03):CLOCKSYNC(skew=%g):MBRSHIP:FRAG:NAK:COM" skew

let () =
  let world = World.create ~seed:13 () in
  let g = World.fresh_group_addr world in
  let sensor = Group.join (Endpoint.create world ~spec:(spec 0.0)) g in
  World.run_for world ~duration:0.5;
  (* Two consumers with badly skewed local clocks. *)
  let near = Group.join ~contact:(Group.addr sensor) (Endpoint.create world ~spec:(spec 0.25)) g in
  World.run_for world ~duration:0.5;
  let far = Group.join ~contact:(Group.addr sensor) (Endpoint.create world ~spec:(spec (-0.4))) g in
  World.run_for world ~duration:2.0;

  (* The far consumer's inbound link is congested: 80 ms one way. *)
  Horus_sim.Net.set_link_latency (World.net world)
    ~src:(Addr.endpoint_id (Group.addr sensor))
    ~dst:(Addr.endpoint_id (Group.addr far))
    (Some 0.08);

  for i = 1 to 10 do
    World.after world
      ~delay:(0.02 *. float_of_int i)
      (fun () -> Group.cast sensor (Printf.sprintf "reading-%02d" i))
  done;
  World.run_for world ~duration:2.0;

  let show name gr =
    let stamps =
      List.filter_map
        (fun d ->
           match Event.meta_find d.Group.meta "clock_ms" with
           | Some t -> Some (d.Group.payload, t)
           | None -> None)
        (Group.deliveries gr)
    in
    Format.printf "%-6s delivered %2d fresh readings, %2d lost to staleness@." name
      (List.length (Group.casts gr))
      (Group.lost_messages gr);
    (match stamps with
     | (p, t) :: _ -> Format.printf "        first: %s at synchronized clock %d ms@." p t
     | [] -> ())
  in
  show "near" near;
  show "far" far;

  (* Both consumers' clock stamps are on the sensor coordinator's
     clock, despite 0.65 s of true skew between them. *)
  (match (Group.deliveries near, Group.casts far) with
   | d :: _, _ ->
     (match Event.meta_find d.Group.meta "clock_ms" with
      | Some _ ->
        Format.printf "@.clock stamps are coordinator time: 0.25s and -0.4s of local@.";
        Format.printf "skew disappear after CLOCKSYNC's first round trip.@."
      | None -> ())
   | _ -> ());

  if Group.lost_messages far = 10 && Group.lost_messages near = 0 then
    Format.printf "@.the stale link delivered nothing late: DEADLINE held the budget.@."
  else
    Format.printf "@.(near lost %d, far lost %d)@." (Group.lost_messages near)
      (Group.lost_messages far)
