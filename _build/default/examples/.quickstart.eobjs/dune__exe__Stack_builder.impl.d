examples/stack_builder.ml: Endpoint Format Group Horus Horus_props List String World
