examples/durable_service.mli:
