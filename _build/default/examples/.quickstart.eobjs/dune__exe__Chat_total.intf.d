examples/chat_total.mli:
