examples/realtime_telemetry.ml: Addr Endpoint Event Format Group Horus Horus_sim List Printf World
