examples/secure_pipeline.ml: Bytes Endpoint Format Group Horus Horus_sim List String World
