examples/observability.ml: Bytes Endpoint Format Group Hashtbl Horus Horus_hcpi Horus_sim List Option Printf String World
