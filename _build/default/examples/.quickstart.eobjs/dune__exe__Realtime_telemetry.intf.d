examples/realtime_telemetry.mli:
