examples/replicated_bank.ml: Endpoint Event Format Group Horus List Msg Printf State_transfer String World
