examples/quickstart.mli:
