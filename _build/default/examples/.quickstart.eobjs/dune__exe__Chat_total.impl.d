examples/chat_total.ml: Endpoint Format Group Horus List Option Socket World
