examples/stack_builder.mli:
