examples/observability.mli:
