examples/quickstart.ml: Endpoint Format Group Horus List View World
