examples/partition_merge.mli:
