examples/partition_merge.ml: Addr Endpoint Format Group Horus Horus_sim List Printf String View World
