examples/durable_service.ml: Endpoint Event Format Group Hashtbl Horus List Msg Option Printf Rpc String World
