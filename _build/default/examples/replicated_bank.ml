(* Replicated bank: state-machine replication over totally ordered,
   virtually synchronous multicast — the classic application the
   Isis/Horus lineage was built for.

   Each replica applies deposit/withdraw commands in the agreed TOTAL
   order, so balances stay identical at every replica without any
   explicit coordination. A replica crash mid-stream does not disturb
   agreement among the survivors; a fresh replica can join later and
   be brought up to date with a state transfer.

   Run with: dune exec examples/replicated_bank.exe *)

open Horus

let spec = "TOTAL:MBRSHIP:FRAG:NAK:COM"

(* --- the replicated state machine --- *)

type account = { mutable balance : int; mutable applied : int }

let apply account cmd =
  (* Commands: "deposit N" | "withdraw N". *)
  match String.split_on_char ' ' cmd with
  | [ "deposit"; n ] ->
    account.balance <- account.balance + int_of_string n;
    account.applied <- account.applied + 1
  | [ "withdraw"; n ] ->
    let n = int_of_string n in
    if account.balance >= n then account.balance <- account.balance - n;
    account.applied <- account.applied + 1
  | _ -> ()

type replica = {
  name : string;
  account : account;
  group : Group.t;
}

let make_replica world group_addr ~name ~contact =
  let account = { balance = 0; applied = 0 } in
  let endpoint = Endpoint.create world ~spec in
  let on_up (ev : Event.up) =
    match ev with
    | Event.U_cast (_, m, _) -> apply account (Msg.to_string m)
    | _ -> ()
  in
  let group = Group.join ?contact ~on_up endpoint group_addr in
  (* Automatic state transfer: the coordinator snapshots the account
     for every joiner (Isis's "join a group and obtain its state"). *)
  let _ =
    State_transfer.attach
      ~get:(fun () -> Printf.sprintf "%d/%d" account.balance account.applied)
      ~set:(fun s ->
          match String.split_on_char '/' s with
          | [ b; k ] ->
            account.balance <- int_of_string b;
            account.applied <- int_of_string k
          | _ -> ())
      ~on_up group
  in
  { name; account; group }

let () =
  let world = World.create ~seed:7 () in
  let g = World.fresh_group_addr world in
  let r1 = make_replica world g ~name:"r1" ~contact:None in
  World.run_for world ~duration:0.5;
  let contact = Some (Group.addr r1.group) in
  let r2 = make_replica world g ~name:"r2" ~contact in
  World.run_for world ~duration:0.5;
  let r3 = make_replica world g ~name:"r3" ~contact in
  World.run_for world ~duration:2.0;

  (* Clients at different replicas issue commands concurrently. *)
  let commands =
    [ (r1, "deposit 100"); (r2, "deposit 50"); (r3, "withdraw 30");
      (r1, "withdraw 200") (* must fail identically everywhere *);
      (r2, "deposit 7") ]
  in
  List.iteri
    (fun i (r, cmd) ->
       World.after world ~delay:(0.002 *. float_of_int i) (fun () -> Group.cast r.group cmd))
    commands;
  World.run_for world ~duration:2.0;

  Format.printf "after concurrent commands:@.";
  List.iter
    (fun r -> Format.printf "  %s: balance=%d applied=%d@." r.name r.account.balance r.account.applied)
    [ r1; r2; r3 ];

  (* Crash r3 while traffic continues; survivors stay consistent. *)
  Endpoint.crash (Group.endpoint r3.group);
  Group.cast r1.group "deposit 1000";
  World.run_for world ~duration:3.0;

  Format.printf "@.after r3 crashes and more traffic:@.";
  List.iter
    (fun r -> Format.printf "  %s: balance=%d applied=%d@." r.name r.account.balance r.account.applied)
    [ r1; r2 ];

  (* A fresh replica joins; the State_transfer helper ships it the
     coordinator's snapshot automatically. *)
  let r4 = make_replica world g ~name:"r4" ~contact in
  World.run_for world ~duration:2.0;

  Format.printf "@.after r4 joins (automatic state transfer):@.";
  List.iter
    (fun r -> Format.printf "  %s: balance=%d applied=%d@." r.name r.account.balance r.account.applied)
    [ r1; r2; r4 ];

  let ok = r1.account.balance = r2.account.balance && r2.account.balance = r4.account.balance in
  Format.printf "@.replicas %s@." (if ok then "agree - state machine replication holds"
                                   else "DISAGREE - bug!")
