(* Quickstart: three processes form a group over the paper's stack
   (Section 7: TOTAL:MBRSHIP:FRAG:NAK:COM) and exchange messages with
   totally ordered, virtually synchronous delivery.

   Run with: dune exec examples/quickstart.exe *)

open Horus

let spec = "TOTAL:MBRSHIP:FRAG:NAK:COM"

let () =
  (* A world is a deterministic simulation: engine + network + clock. *)
  let world = World.create ~seed:42 () in
  let group_addr = World.fresh_group_addr world in

  (* The first endpoint founds the group; the others join through it.
     A join is really a view merge (Section 11 of the paper). *)
  let alice = Group.join (Endpoint.create world ~spec) group_addr in
  World.run_for world ~duration:0.5;
  let bob = Group.join ~contact:(Group.addr alice) (Endpoint.create world ~spec) group_addr in
  World.run_for world ~duration:0.5;
  let carol = Group.join ~contact:(Group.addr alice) (Endpoint.create world ~spec) group_addr in
  World.run_for world ~duration:2.0;

  let members = [ ("alice", alice); ("bob", bob); ("carol", carol) ] in
  List.iter
    (fun (name, g) ->
       match Group.view g with
       | Some v -> Format.printf "%s sees %a@." name View.pp v
       | None -> Format.printf "%s has no view yet@." name)
    members;

  (* Everyone casts; TOTAL guarantees a single agreed order. *)
  Group.cast alice "hello from alice";
  Group.cast bob "hello from bob";
  Group.cast carol "hello from carol";
  World.run_for world ~duration:2.0;

  List.iter
    (fun (name, g) ->
       Format.printf "@.%s delivered, in order:@." name;
       List.iter (fun p -> Format.printf "  %s@." p) (Group.casts g))
    members;

  (* Crash carol: MBRSHIP runs the flush protocol of Figure 2 and the
     survivors agree on the next view. *)
  Endpoint.crash (Group.endpoint carol);
  World.run_for world ~duration:3.0;
  Format.printf "@.after carol crashes:@.";
  List.iter
    (fun (name, g) ->
       match Group.view g with
       | Some v -> Format.printf "%s sees %a@." name View.pp v
       | None -> Format.printf "%s has no view@." name)
    [ ("alice", alice); ("bob", bob) ];

  (* The layered stack is inspectable at run time (Table 1's dump). *)
  Format.printf "@.alice's stack:@.";
  List.iter (fun line -> Format.printf "  %s@." line) (Group.dump alice)
