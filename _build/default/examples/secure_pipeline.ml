(* Secure pipeline: the security-oriented composition of Section 2 —
   signing to keep intruders out, encryption to keep payloads private,
   compression to save bandwidth — stacked under reliability, over a
   hostile network that garbles traffic, with an eavesdropper and a
   forger attached to the same group address.

   Run with: dune exec examples/secure_pipeline.exe *)

open Horus

let secure_spec = "MBRSHIP:COMPRESS:ENCRYPT(key=wolfsbane):SIGN(key=wolfsbane):NAK:CHKSUM:COM"

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec loop i = i + n <= m && (String.sub s i n = sub || loop (i + 1)) in
  n = 0 || loop 0

let () =
  let config = { Horus_sim.Net.default_config with garble_prob = 0.1 } in
  let world = World.create ~config ~seed:31 () in
  let g = World.fresh_group_addr world in

  let a = Group.join (Endpoint.create world ~spec:secure_spec) g in
  World.run_for world ~duration:0.5;
  let b = Group.join ~contact:(Group.addr a) (Endpoint.create world ~spec:secure_spec) g in
  World.run_for world ~duration:2.0;

  (* Eve wiretaps the physical medium promiscuously: she sees every
     frame on the wire, ciphertext and all. *)
  let captured = ref [] in
  Horus_sim.Net.set_tap (World.net world)
    (Some (fun ~src:_ ~dst:_ payload -> captured := Bytes.to_string payload :: !captured));

  let secret = "wire 1000 gold to vault 7" in
  Group.cast a secret;
  Group.cast a "second order: hold position";
  World.run_for world ~duration:3.0;

  Format.printf "b received %d messages:@." (List.length (Group.casts b));
  List.iter (fun p -> Format.printf "  %s@." p) (Group.casts b);

  let leaked = List.exists (fun p -> contains_sub ~sub:"gold" p) !captured in
  Format.printf "@.eve captured %d raw frames; plaintext leaked: %b@."
    (List.length !captured) leaked;

  (* Mallory tries to inject a forged order with the wrong key. *)
  let mallory =
    Group.join (Endpoint.create world ~spec:"MBRSHIP:COMPRESS:ENCRYPT(key=guess):SIGN(key=guess):NAK:CHKSUM:COM") g
  in
  ignore mallory;
  World.run_for world ~duration:1.0;
  let before = List.length (Group.casts b) in
  Group.cast mallory "forged: abandon ship";
  World.run_for world ~duration:2.0;
  let after = List.length (Group.casts b) in
  Format.printf "mallory's forgery delivered at b: %b@." (after > before);

  Format.printf "@.signing blocked the forgery, encryption blinded the tap,@.";
  Format.printf "checksums + NAK turned garbling into clean retransmissions.@."
