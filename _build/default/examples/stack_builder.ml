(* Stack synthesis: Section 6's promise that "given a set of network
   properties and required properties for an application, it is
   possible to figure out if a stack exists ... we can even create a
   minimal stack".

   This example asks for several requirement sets, synthesizes the
   cheapest well-formed stack for each from the Table 3 catalogue, and
   then actually *runs* the synthesized stack to show the derivation is
   not just on paper.

   Run with: dune exec examples/stack_builder.exe *)

open Horus
module P = Horus_props.Property
module Check = Horus_props.Check
module Search = Horus_props.Search

let net = P.Set.of_numbers [ 1 ]  (* a raw best-effort network *)

let requirement_sets =
  [ ("reliable FIFO multicast", [ 3; 4 ]);
    ("large messages over FIFO", [ 3; 4; 12 ]);
    ("virtually synchronous views", [ 9; 15 ]);
    ("total order", [ 6 ]);
    ("causal order", [ 5 ]);
    ("safe (stable) delivery", [ 7 ]);
    ("the full Section 7 set", [ 3; 4; 6; 8; 9; 10; 11; 12; 15 ]);
    ("auto-merging partitions", [ 9; 15; 16 ]);
    ("everything at once", [ 5; 6; 7; 9; 14; 15; 16 ]) ]

let () =
  Format.printf "network provides %a@.@." P.Set.pp net;
  List.iter
    (fun (label, numbers) ->
       let required = P.Set.of_numbers numbers in
       match Search.search ~net ~required () with
       | None -> Format.printf "%-32s -> no stack can provide %a@." label P.Set.pp required
       | Some r ->
         Format.printf "%-32s -> %s  (cost %d, provides %a)@." label (Search.spec_string r)
           r.Search.cost P.Set.pp r.Search.provides;
         (* Double-check with the independent derivation. *)
         assert (Check.satisfies ~net ~required r.Search.layers))
    requirement_sets;

  (* Now run the synthesized total-order stack for real. *)
  let required = P.Set.of_numbers [ 6; 9; 15 ] in
  match Search.search ~net ~required () with
  | None -> assert false
  | Some r ->
    let spec = Search.spec_string r in
    Format.printf "@.running the synthesized stack %s...@." spec;
    let world = World.create ~seed:3 () in
    let g = World.fresh_group_addr world in
    let a = Group.join (Endpoint.create world ~spec) g in
    World.run_for world ~duration:0.5;
    let b = Group.join ~contact:(Group.addr a) (Endpoint.create world ~spec) g in
    World.run_for world ~duration:2.0;
    Group.cast a "synthesized";
    Group.cast b "stacks";
    Group.cast a "work";
    World.run_for world ~duration:2.0;
    Format.printf "a delivered: %s@." (String.concat " / " (Group.casts a));
    Format.printf "b delivered: %s@." (String.concat " / " (Group.casts b));
    if Group.casts a = Group.casts b then
      Format.printf "identical delivery order: the synthesized stack provides total order@."
