(* Durable replicated service: the LOG layer's tolerance of *total*
   crash failures (Figure 1's "logging" type) combined with RPC
   client/server interactions.

   A two-replica key-value service applies writes in total order and
   logs every applied command to stable storage. Clients talk to it via
   RPC. Then BOTH replicas crash — a total failure, which no amount of
   in-memory replication survives — and a restarted process rebuilds
   the full store from its log before answering queries again.

   Run with: dune exec examples/durable_service.exe *)

open Horus

let spec name = Printf.sprintf "LOG(name=%s):TOTAL:MBRSHIP:FRAG:NAK:COM" name

(* --- the service: a tiny key-value store --- *)

type store = (string, string) Hashtbl.t

let apply (store : store) cmd =
  match String.split_on_char '=' cmd with
  | [ k; v ] -> Hashtbl.replace store k v
  | _ -> ()

let make_replica world g ~name ~contact =
  let store : store = Hashtbl.create 8 in
  let on_up ev =
    match ev with
    | Event.U_cast (_, m, _) -> apply store (Msg.to_string m)
    | _ -> ()
  in
  (* The state-machine handler is installed at join time so that the
     LOG layer's replay (which happens as soon as the first view
     installs) is applied; Rpc.attach then takes over event routing and
     chains the same handler for non-RPC traffic. *)
  let group = Group.join ?contact ~on_up (Endpoint.create world ~spec:(spec name)) g in
  let rpc =
    Rpc.attach
      ~handler:(fun ~rank:_ query ->
          match Hashtbl.find_opt store query with
          | Some v -> v
          | None -> "(unset)")
      ~on_up group
  in
  (store, group, rpc)

let () =
  let world = World.create ~seed:77 () in
  let g = World.fresh_group_addr world in
  let _store1, r1, _ = make_replica world g ~name:"replica-1" ~contact:None in
  World.run_for world ~duration:0.5;
  let _store2, r2, _ =
    make_replica world g ~name:"replica-2" ~contact:(Some (Group.addr r1))
  in
  World.run_for world ~duration:1.5;

  Format.printf "writing through replica 1...@.";
  List.iter (Group.cast r1) [ "motd=hello"; "owner=alice"; "motd=updated" ];
  World.run_for world ~duration:1.0;

  (* A client queries replica 2 over RPC. *)
  let client_group = Group.join ~contact:(Group.addr r1) (Endpoint.create world ~spec:(spec "client")) g in
  World.run_for world ~duration:1.5;
  let client = Rpc.attach client_group in
  let ask whom label query =
    Rpc.call client ~server:whom query (fun o ->
        match o with
        | `Reply v -> Format.printf "  %s: %s = %S@." label query v
        | `Timeout -> Format.printf "  %s: %s timed out@." label query)
  in
  ask (Group.addr r2) "replica 2" "motd";
  ask (Group.addr r2) "replica 2" "owner";
  World.run_for world ~duration:1.0;

  Format.printf "@.TOTAL failure: every replica crashes at once...@.";
  Endpoint.crash (Group.endpoint r1);
  Endpoint.crash (Group.endpoint r2);
  World.run_for world ~duration:1.0;
  ask (Group.addr r2) "replica 2 (dead)" "motd";
  World.run_for world ~duration:2.0;

  Format.printf "@.restarting replica 1 from its stable log...@.";
  let store1', phoenix, _ = make_replica world g ~name:"replica-1" ~contact:None in
  World.run_for world ~duration:1.0;
  Format.printf "  recovered store: motd=%S owner=%S@."
    (Option.value (Hashtbl.find_opt store1' "motd") ~default:"(lost)")
    (Option.value (Hashtbl.find_opt store1' "owner") ~default:"(lost)");
  ignore phoenix;
  if Hashtbl.find_opt store1' "motd" = Some "updated" then
    Format.printf "@.full state survived a total crash: the LOG layer earns its name@."
  else Format.printf "@.RECOVERY FAILED@."
