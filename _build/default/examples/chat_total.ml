(* Totally ordered group chat through the UNIX-socket facade
   (Section 11: Horus hidden behind a sockets interface).

   Each participant uses sendto/recvfrom only; underneath, the stack
   provides total order, so every participant's transcript is
   identical — the property a naive datagram chat lacks.

   Run with: dune exec examples/chat_total.exe *)

open Horus

let spec = "TOTAL:MBRSHIP:FRAG:NAK:COM"

let () =
  let world = World.create ~seed:11 () in
  let g = World.fresh_group_addr world in

  let mk ?contact name =
    let s = Socket.create ?contact (Endpoint.create world ~spec) g in
    World.run_for world ~duration:0.5;
    (name, s)
  in
  let alice = mk "alice" in
  let contact = Some (Group.addr (Socket.group (snd alice))) in
  let bob = mk ?contact:(Some (Option.get contact)) "bob" in
  let carol = mk ?contact:(Some (Option.get contact)) "carol" in
  let everyone = [ alice; bob; carol ] in
  World.run_for world ~duration:2.0;

  (* A burst of interleaved chatter. *)
  let lines =
    [ (alice, "hi all"); (bob, "hey alice"); (carol, "what did I miss?");
      (alice, "we just started"); (bob, "shall we begin?"); (carol, "yes!") ]
  in
  List.iteri
    (fun i ((name, s), text) ->
       World.after world ~delay:(0.001 *. float_of_int i) (fun () ->
           Socket.sendto s (name ^ ": " ^ text)))
    lines;
  World.run_for world ~duration:2.0;

  (* Drain every socket; all transcripts must be identical. *)
  let transcript (_, s) =
    let rec drain acc =
      match Socket.recvfrom s with
      | Some (_, line) -> drain (line :: acc)
      | None -> List.rev acc
    in
    drain []
  in
  let transcripts = List.map transcript everyone in
  List.iter2
    (fun (name, _) t ->
       Format.printf "%s's transcript:@." name;
       List.iter (fun l -> Format.printf "  %s@." l) t;
       Format.printf "@.")
    everyone transcripts;
  match transcripts with
  | t0 :: rest ->
    if List.for_all (fun t -> t = t0) rest then
      Format.printf "all transcripts identical: total order held@."
    else Format.printf "TRANSCRIPTS DIVERGE - bug!@."
  | [] -> ()
