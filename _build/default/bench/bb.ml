(* Bechamel boilerplate: run a group of tests and print one line per
   test with the OLS-estimated time per run. *)

open Bechamel
open Toolkit

let run_group ?(quota = 0.5) name tests =
  let test = Test.make_grouped ~name tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:false () in
  let raw = Benchmark.all cfg instances test in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun test_name ols_result acc ->
         let ns =
           match Analyze.OLS.estimates ols_result with
           | Some (est :: _) -> est
           | Some [] | None -> nan
         in
         (test_name, ns) :: acc)
      results []
    |> List.sort compare
  in
  Format.printf "== %s ==@." name;
  List.iter
    (fun (test_name, ns) ->
       let pretty =
         if Float.is_nan ns then "n/a"
         else if ns >= 1e6 then Printf.sprintf "%10.3f ms" (ns /. 1e6)
         else if ns >= 1e3 then Printf.sprintf "%10.3f us" (ns /. 1e3)
         else Printf.sprintf "%10.1f ns" ns
       in
       Format.printf "  %-48s %s/run@." test_name pretty)
    rows;
  Format.printf "@.";
  rows
