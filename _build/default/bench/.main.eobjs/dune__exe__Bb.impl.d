bench/bb.ml: Analyze Bechamel Benchmark Float Format Hashtbl Instance List Measure Printf Test Time Toolkit
