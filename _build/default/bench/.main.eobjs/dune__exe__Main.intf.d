bench/main.mli:
