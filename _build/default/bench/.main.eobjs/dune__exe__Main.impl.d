bench/main.ml: Addr Bb Bechamel Format Group Horus Horus_hcpi Horus_layers Horus_model Horus_msg Horus_props Horus_sim Horus_util Int64 List Printf Scenarios Spec Staged String Test Unix World
