bench/scenarios.ml: Addr Array Endpoint Event Float Group Horus Horus_hcpi Horus_sim List Printf String View World
