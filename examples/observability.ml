(* Observability tour: the focus/dump downcalls (Table 1), TRACE and
   ACCOUNT layers, the world trace, the promiscuous wiretap, and the
   metrics registry — how you see what a running protocol stack is
   doing, at every level.

   Run with: dune exec examples/observability.exe *)

open Horus

let spec = "TRACE:ACCOUNT:TOTAL:MBRSHIP:FRAG:NAK:COM"

let () =
  let world = World.create ~seed:5 () in
  let g = World.fresh_group_addr world in

  (* Wiretap the physical medium: count frames per link. *)
  let frames = Hashtbl.create 8 in
  Horus_sim.Net.set_tap (World.net world)
    (Some
       (fun ~src ~dst payload ->
          let key = (src, dst) in
          let count, bytes =
            Option.value (Hashtbl.find_opt frames key) ~default:(0, 0)
          in
          Hashtbl.replace frames key (count + 1, bytes + Bytes.length payload)));

  let a = Group.join (Endpoint.create world ~spec) g in
  World.run_for world ~duration:0.5;
  let b = Group.join ~contact:(Group.addr a) (Endpoint.create world ~spec) g in
  World.run_for world ~duration:1.5;

  for i = 1 to 5 do
    Group.cast a (Printf.sprintf "message %d" i)
  done;
  World.run_for world ~duration:1.0;
  ignore b;

  (* Level 1: the whole stack, layer by layer (the dump downcall). *)
  Format.printf "=== a's stack (dump downcall) ===@.";
  List.iter (fun line -> Format.printf "  %s@." line) (Group.dump a);

  (* Level 2: focus on one layer (the focus downcall). *)
  Format.printf "@.=== focus NAK (focus downcall) ===@.";
  (match Group.focus a "NAK" with
   | Some inst -> List.iter (fun l -> Format.printf "  %s@." l) (inst.Horus_hcpi.Layer.dump ())
   | None -> ());

  (* Level 3: the world trace — protocol events with timestamps. *)
  Format.printf "@.=== world trace (membership events) ===@.";
  List.iter
    (fun e ->
       let c = e.Horus_sim.Trace.category in
       if String.length c >= 12 && String.sub c 0 12 = "MBRSHIP/view" then
         Format.printf "  %a@." Horus_sim.Trace.pp_entry e)
    (Horus_sim.Trace.entries (World.trace world));

  (* Level 4: the wire itself. *)
  Format.printf "@.=== wiretap: frames per link ===@.";
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) frames []
  |> List.sort compare
  |> List.iter (fun ((src, dst), (count, bytes)) ->
      Format.printf "  e%d -> e%d: %4d frames, %6d bytes@." src dst count bytes);

  (* Level 5: the metrics registry — every HCPI crossing, the engine's
     dispatch-delay histogram and the wire stats as one machine-readable
     snapshot (what bench/main.exe --json embeds per experiment). *)
  Format.printf "@.=== metrics registry (per-layer crossings, selected) ===@.";
  (match World.metrics_json world with
   | Json.Obj _ as snapshot ->
     List.iter
       (fun key ->
          match Option.bind (Json.path [ "counters"; key ] snapshot) Json.to_int with
          | Some v -> Format.printf "  %-20s %6d@." key v
          | None -> ())
       [ "hcpi.down.TOTAL"; "hcpi.down.NAK"; "hcpi.up.NAK"; "hcpi.up.COM";
         "net.sent"; "net.bytes_sent" ]
   | _ -> ());

  Format.printf "@.five vantage points, one running system.@."
