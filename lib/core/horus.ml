(* Horus: protocol composition for group communication.

   Public umbrella module. Typical use:

   {[
     let world = Horus.World.create () in
     let g = Horus.World.fresh_group_addr world in
     let ep () = Horus.Endpoint.create world ~spec:"TOTAL:MBRSHIP:FRAG:NAK:COM" in
     let a = Horus.Group.join (ep ()) g in
     let b = Horus.Group.join ~contact:(Horus.Group.addr a) (ep ()) g in
     Horus.World.run_for world ~duration:1.0;
     Horus.Group.cast a "hello";
     Horus.World.run_for world ~duration:1.0;
     assert (Horus.Group.casts b = [ "hello" ])
   ]} *)

module World = World
module Endpoint = Endpoint
module Group = Group
module Socket = Socket
module Rpc = Rpc
module State_transfer = State_transfer
module Transport_link = Transport_link

(* Re-exports so applications need only this library. *)
module Transport = Horus_transport
module Addr = Horus_msg.Addr
module Msg = Horus_msg.Msg
module View = Horus_hcpi.View
module Event = Horus_hcpi.Event
module Spec = Horus_hcpi.Spec
module Params = Horus_hcpi.Params
module Registry = Horus_hcpi.Registry
module Metrics = Horus_obs.Metrics
module Json = Horus_obs.Json
module Property = Horus_props.Property
module Layer_spec = Horus_props.Layer_spec
module Check = Horus_props.Check
module Search = Horus_props.Search

(* Convenience: spin up [n] endpoints with the same stack spec and join
   them all to one fresh group (the first founds it; the rest join via
   the founder as contact). Runs the world until the group forms and
   returns the handles in join order. *)
let spawn_group ?(settle = 2.0) world ~spec ~n =
  if n < 1 then invalid_arg "Horus.spawn_group: n must be >= 1";
  let g = World.fresh_group_addr world in
  let founder = Group.join (Endpoint.create world ~spec) g in
  let rest =
    List.init (n - 1) (fun _ ->
        Group.join ~contact:(Group.addr founder) (Endpoint.create world ~spec) g)
  in
  World.run_for world ~duration:settle;
  founder :: rest
