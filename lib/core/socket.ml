(* UNIX-socket facade (Sections 2 and 11): the top-most module that
   deviates from the HCPI standard to match a user's expectations.
   sendto maps to a multicast to the group; recvfrom returns the next
   incoming message.

   Simulated vs. real time. The facade itself never blocks — incoming
   messages queue as stacks deliver them, and delivery only happens
   when something runs the event engine. Under simulation that is
   World.run_until/run_for: virtual time, deterministic, recvfrom
   polls between runs. Under a real deployment a wall-clock
   Transport.Driver pumps the same engine against the sockets, and
   recvfrom_timeout is the blocking receive a UNIX programmer expects:
   it steps the driver (select on the backends' fds, fire due timers)
   until a message arrives or the wall-clock deadline passes. Same
   stacks, same queue; only who advances time differs. *)

open Horus_msg

type t = {
  group : Group.t;
  pending : (int * string) Queue.t;  (* (source rank, payload) *)
}

let create ?contact endpoint group_addr =
  let pending = Queue.create () in
  let on_up (ev : Horus_hcpi.Event.up) =
    match ev with
    | Horus_hcpi.Event.U_cast (rank, m, _) | Horus_hcpi.Event.U_send (rank, m, _) ->
      Queue.push (rank, Msg.to_string m) pending
    | _ -> ()
  in
  { group = Group.join ?contact ~on_up endpoint group_addr; pending }

let group t = t.group

let sendto t payload = Group.cast t.group payload

(* Non-blocking: [None] when no message is waiting (a real socket would
   block; in a simulation, run the world instead). *)
let recvfrom t = if Queue.is_empty t.pending then None else Some (Queue.pop t.pending)

(* Blocking receive for deployments: steps the wall-clock driver until
   a message is queued or [timeout] wall seconds pass. *)
let recvfrom_timeout t ~driver ~timeout =
  if
    Horus_transport.Driver.run_until ~timeout driver (fun () ->
        not (Queue.is_empty t.pending))
  then Some (Queue.pop t.pending)
  else None

let pending t = Queue.length t.pending

let close t = Group.leave t.group
