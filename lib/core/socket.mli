(** UNIX-socket facade over a process group: sendto multicasts,
    recvfrom dequeues the next delivery (Sections 2 and 11). *)

open Horus_msg

type t

val create : ?contact:Addr.endpoint -> Endpoint.t -> Addr.group -> t
val group : t -> Group.t
val sendto : t -> string -> unit

val recvfrom : t -> (int * string) option
(** Next (source rank, payload); [None] when nothing is waiting.
    Never blocks: under simulation, run the world to make progress. *)

val recvfrom_timeout :
  t -> driver:Horus_transport.Driver.t -> timeout:float -> (int * string) option
(** Blocking receive for deployments: steps the wall-clock [driver]
    (socket readiness + due timers) until a message is queued or
    [timeout] wall seconds pass. *)

val pending : t -> int
val close : t -> unit
