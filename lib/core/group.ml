(* A group handle: the application's side of one endpoint's membership
   in one group.

   Joining instantiates the endpoint's protocol stack for this group
   (per-group layer state — the "group object" of Section 3). The
   handle records everything the stack delivers, exposes the Table 1
   downcalls, and by default answers FLUSH upcalls with the flush_ok
   downcall so that membership layers can proceed (an application that
   sets [auto_flush_ok:false] must do so itself). *)

open Horus_msg
open Horus_hcpi

type delivery = {
  kind : [ `Cast | `Send ];
  rank : int;
  payload : string;
  meta : Event.meta;
}

type t = {
  endpoint : Endpoint.t;
  world : World.t;
  group : Addr.group;
  stack : Stack.t;
  auto_flush_ok : bool;
  record : bool;  (* benches disable the delivery/event logs *)
  mutable view : View.t option;
  mutable deliveries : delivery list;  (* newest first *)
  mutable views : View.t list;         (* newest first *)
  mutable stability : Event.stability option;
  mutable problems : Addr.endpoint list;
  mutable merge_requests : Event.merge_request list;
  mutable merge_denials : string list;
  mutable lost_messages : int;
  mutable system_errors : string list;
  mutable flushes : int;
  mutable exited : bool;
  mutable destroyed : bool;
  mutable on_up : (Event.up -> unit) option;
}

let record_up t (ev : Event.up) =
  (* Scalar state — the current view, lifecycle flags, counters — is
     always tracked ([record:false] handles still answer {!view},
     {!exited}, {!destroyed}); only the unbounded logs are gated, so
     long-running benchmarks and soaks stay O(1) in memory. *)
  (match ev with
   | Event.U_view v ->
     t.view <- Some v;
     if t.record then t.views <- v :: t.views
   | Event.U_cast (rank, m, meta) ->
     if t.record then
       t.deliveries <-
         { kind = `Cast; rank; payload = Msg.to_string m; meta } :: t.deliveries
   | Event.U_send (rank, m, meta) ->
     if t.record then
       t.deliveries <-
         { kind = `Send; rank; payload = Msg.to_string m; meta } :: t.deliveries
   | Event.U_stable s -> t.stability <- Some s
   | Event.U_problem e -> if t.record then t.problems <- e :: t.problems
   | Event.U_merge_request r ->
     if t.record then t.merge_requests <- r :: t.merge_requests
   | Event.U_merge_denied why ->
     if t.record then t.merge_denials <- why :: t.merge_denials
   | Event.U_lost_message _ -> t.lost_messages <- t.lost_messages + 1
   | Event.U_system_error e ->
     if t.record then t.system_errors <- e :: t.system_errors
   | Event.U_flush _ -> t.flushes <- t.flushes + 1
   | Event.U_exit -> t.exited <- true
   | Event.U_destroy -> t.destroyed <- true
   | Event.U_flush_ok _ | Event.U_leave _ | Event.U_packet _ -> ());
  (match t.on_up with Some f -> f ev | None -> ());
  (* Default flush cooperation, after the user callback so it may
     inspect the event first. *)
  match ev with
  | Event.U_flush _ when t.auto_flush_ok -> Stack.down t.stack Event.D_flush_ok
  | _ -> ()

let join ?contact ?on_up ?(auto_flush_ok = true) ?(record = true) ?(skip_inert = false)
    ?(fastpath = false) endpoint group =
  let world = Endpoint.world endpoint in
  let gid = Addr.group_id group in
  let rec t =
    lazy
      { endpoint;
        world;
        group;
        stack =
          Stack.create ~engine:(World.engine world) ~endpoint:(Endpoint.addr endpoint) ~group
            ~prng:(Horus_util.Prng.create (Addr.endpoint_id (Endpoint.addr endpoint) + (gid * 1000003)))
            ~transport:(Endpoint.transport endpoint ~gid)
            ~rendezvous:(World.rendezvous world)
            ~storage:(World.storage world)
            ~skip_inert
            ~fastpath
            ~metrics:(World.metrics world)
            ~trace:(fun ~layer ~category detail ->
                World.(Horus_sim.Trace.record (trace world)) ~time:(World.now world)
                  ~category:(layer ^ "/" ^ category)
                  (Format.asprintf "%a %s" Addr.pp_endpoint (Endpoint.addr endpoint) detail))
            ~to_app:(fun ev -> record_up (Lazy.force t) ev)
            (Spec.resolve (Endpoint.spec endpoint));
        auto_flush_ok;
        record;
        view = None;
        deliveries = [];
        views = [];
        stability = None;
        problems = [];
        merge_requests = [];
        merge_denials = [];
        lost_messages = 0;
        system_errors = [];
        flushes = 0;
        exited = false;
        destroyed = false;
        on_up }
  in
  let t = Lazy.force t in
  Endpoint.register_route endpoint ~gid (fun ~src m ->
      Stack.inject_up t.stack (Event.U_packet (src, m)));
  Endpoint.add_crash_hook endpoint (fun () -> Stack.kill t.stack);
  Stack.down t.stack (Event.D_join contact);
  t

(* --- Table 1 downcalls --- *)

let cast_msg t m = Stack.down t.stack (Event.D_cast m)

let cast t payload = cast_msg t (Msg.create payload)

let send_msg t dsts m = Stack.down t.stack (Event.D_send (dsts, m))

let send t dsts payload = send_msg t dsts (Msg.create payload)

let ack t id = Stack.down t.stack (Event.D_ack id)

let mark_stable t id = Stack.down t.stack (Event.D_stable id)

let merge t contact = Stack.down t.stack (Event.D_merge contact)

let merge_granted t req = Stack.down t.stack (Event.D_merge_granted req)

let merge_denied t req = Stack.down t.stack (Event.D_merge_denied req)

let suspect t endpoints = Stack.down t.stack (Event.D_suspect endpoints)

let flush t failed = Stack.down t.stack (Event.D_flush failed)

let flush_ok t = Stack.down t.stack Event.D_flush_ok

let install_view t v = Stack.down t.stack (Event.D_view v)

let leave t = Stack.down t.stack Event.D_leave

let dump t = Stack.dump t.stack

let focus t name = Stack.focus t.stack name

let destroy t =
  Stack.destroy t.stack;
  Endpoint.unregister_route t.endpoint ~gid:(Addr.group_id t.group)

(* --- observers --- *)

let endpoint t = t.endpoint

let addr t = Endpoint.addr t.endpoint

let group t = t.group

let stack t = t.stack

let view t = t.view

let views t = List.rev t.views

let my_rank t =
  match t.view with
  | None -> None
  | Some v -> View.rank_of v (addr t)

let deliveries t = List.rev t.deliveries

let casts t =
  List.filter_map (fun d -> if d.kind = `Cast then Some d.payload else None) (deliveries t)

let clear_deliveries t = t.deliveries <- []

let stability t = t.stability

let problems t = List.rev t.problems

let merge_requests t = List.rev t.merge_requests

let merge_denials t = List.rev t.merge_denials

let lost_messages t = t.lost_messages

let system_errors t = List.rev t.system_errors

let flushes t = t.flushes

let exited t = t.exited

let destroyed t = t.destroyed

let set_on_up t f = t.on_up <- Some f
