(** A simulated Horus world: event engine, network, tracing, address
    allocation, and the rendezvous (resource-location) service.
    Deterministic in its seed. *)

open Horus_msg
open Horus_hcpi

type t

val create : ?config:Horus_sim.Net.config -> ?seed:int -> unit -> t
(** Also registers the layer library into the HCPI registry. *)

val engine : t -> Horus_sim.Engine.t
val net : t -> Horus_sim.Net.t
val trace : t -> Horus_sim.Trace.t

val metrics : t -> Horus_obs.Metrics.t
(** The world's metrics registry: per-layer HCPI crossing counters
    (from every stack in the world), the engine's dispatch-delay
    histogram, and — after {!metrics_json} — the network's wire
    stats. *)

val metrics_json : t -> Horus_obs.Json.t
(** Deterministic snapshot of the registry (exports the network wire
    stats and any registered exporters first). Two same-seed runs of
    the same workload serialize to byte-identical JSON. *)

val add_metrics_exporter : t -> (Horus_obs.Metrics.t -> unit) -> unit
(** Register a function run at every {!metrics_json} snapshot, for
    subsystems (transport backends, the net) that keep their stats
    outside the registry. Run in registration order. *)

val prng : t -> Horus_util.Prng.t
(** The world's deterministic generator, for seeded workloads. *)

val now : t -> float

val fresh_endpoint_addr : t -> Addr.endpoint
val fresh_group_addr : t -> Addr.group

val claim_endpoint_addr : t -> Addr.endpoint -> Addr.endpoint
(** Pin an endpoint address chosen by the caller (deployments use
    ranks agreed across processes); bumps the fresh allocator past
    it. *)

val rendezvous : t -> Layer.rendezvous
(** Coordinators of live partitions, per group; crashed announcers are
    invisible. *)

val storage : t -> Layer.storage
(** Simulated stable storage (append-only logs by key); survives
    crashes by construction. *)

val run : ?max_events:int -> t -> unit
(** Run to quiescence. Beware: stacks with periodic timers never
    quiesce; prefer {!run_until} / {!run_for}. *)

val run_until : ?max_events:int -> t -> time:float -> unit
val run_for : ?max_events:int -> t -> duration:float -> unit
val at : t -> time:float -> (unit -> unit) -> unit
val after : t -> delay:float -> (unit -> unit) -> unit
