(* A simulated Horus world: the event engine, the network, the trace
   recorder, address allocation, and the rendezvous (resource location)
   service that membership and merge layers use to find partitions of a
   group.

   Everything an application or test does happens inside one world, and
   every run of a world is deterministic in its seed. *)

open Horus_msg
open Horus_hcpi

type t = {
  engine : Horus_sim.Engine.t;
  net : Horus_sim.Net.t;
  trace : Horus_sim.Trace.t;
  metrics : Horus_obs.Metrics.t;
  prng : Horus_util.Prng.t;
  mutable next_eid : int;
  mutable next_gid : int;
  coordinators : (int, Addr.endpoint list ref) Hashtbl.t;  (* gid -> announced *)
  disk : (string, string list ref) Hashtbl.t;  (* stable storage, survives crashes *)
  mutable exporters : (Horus_obs.Metrics.t -> unit) list;  (* run at snapshot time *)
}

let create ?(config = Horus_sim.Net.default_config) ?(seed = 1) () =
  Horus_layers.Init.register_all ();
  let metrics = Horus_obs.Metrics.create () in
  let engine = Horus_sim.Engine.create ~metrics () in
  { engine;
    net = Horus_sim.Net.create ~config ~seed engine;
    trace = Horus_sim.Trace.create ();
    metrics;
    prng = Horus_util.Prng.create (seed + 0x5eed);
    next_eid = 0;
    next_gid = 0;
    coordinators = Hashtbl.create 8;
    disk = Hashtbl.create 8;
    exporters = [] }

let engine t = t.engine

let net t = t.net

let trace t = t.trace

let metrics t = t.metrics

(* Subsystems that keep stats outside the registry (the net, transport
   backends) register an exporter; each snapshot mirrors them in. *)
let add_metrics_exporter t f = t.exporters <- f :: t.exporters

(* One deterministic snapshot of everything the world measures: the
   engine's dispatch histogram, every stack's per-layer crossing
   counters, the network's wire stats, and any registered exporters
   (all mirrored in here, at snapshot time). *)
let metrics_json t =
  Horus_sim.Net.export_metrics t.net t.metrics;
  List.iter (fun f -> f t.metrics) (List.rev t.exporters);
  Horus_obs.Metrics.to_json t.metrics

(* The world's own deterministic generator, for workload generators
   that want randomness tied to the world seed. *)
let prng t = t.prng

let now t = Horus_sim.Engine.now t.engine

let fresh_endpoint_addr t =
  let eid = t.next_eid in
  t.next_eid <- t.next_eid + 1;
  Addr.endpoint eid

(* Deployments pin endpoint addresses (every process must agree on
   ranks); keep the fresh allocator clear of anything pinned. *)
let claim_endpoint_addr t a =
  let eid = Addr.endpoint_id a in
  if eid >= t.next_eid then t.next_eid <- eid + 1;
  a

let fresh_group_addr t =
  let gid = t.next_gid in
  t.next_gid <- t.next_gid + 1;
  Addr.group gid

(* --- rendezvous service --- *)

let slot t g =
  let gid = Addr.group_id g in
  match Hashtbl.find_opt t.coordinators gid with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.replace t.coordinators gid r;
    r

let rendezvous t : Layer.rendezvous =
  { announce =
      (fun g e ->
         let r = slot t g in
         if not (List.exists (Addr.equal_endpoint e) !r) then r := e :: !r);
    withdraw =
      (fun g e ->
         let r = slot t g in
         r := List.filter (fun x -> not (Addr.equal_endpoint x e)) !r);
    lookup =
      (fun g ->
         (* Crashed coordinators are invisible: a real resource-location
            service would time their registrations out. *)
         List.filter
           (fun e -> not (Horus_sim.Net.is_crashed t.net ~node:(Addr.endpoint_id e)))
           !(slot t g)
         |> List.sort Addr.compare_endpoint) }

(* --- stable storage (a simulated disk shared by all processes,
   addressed by key; survives crashes by construction) --- *)

let storage t : Layer.storage =
  let slot key =
    match Hashtbl.find_opt t.disk key with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace t.disk key r;
      r
  in
  { Layer.append = (fun ~key record -> let r = slot key in r := record :: !r);
    read = (fun ~key -> List.rev !(slot key));
    truncate = (fun ~key -> Hashtbl.remove t.disk key) }

(* --- running --- *)

let run ?max_events t = Horus_sim.Engine.run ?max_events t.engine

let run_until ?max_events t ~time = Horus_sim.Engine.run_until ?max_events t.engine ~time

let run_for ?max_events t ~duration =
  run_until ?max_events t ~time:(now t +. duration)

let at t ~time f = ignore (Horus_sim.Engine.schedule_at t.engine ~time f)

let after t ~delay f = ignore (Horus_sim.Engine.schedule t.engine ~delay f)
