(** A communication endpoint: a network attachment plus a protocol
    stack spec. Joining a group (see {!Group}) instantiates a fresh
    stack over the endpoint.

    The attachment is pluggable: by default the endpoint rides the
    world's simulated network; a deployment passes [attach] (built by
    {!Transport_link}) to bind the same stacks to a real transport
    backend instead. *)

open Horus_msg

type t

type attachment = {
  a_kind : string;  (** ["sim"], ["udp"], ["loopback"] — diagnostics *)
  a_mtu : int;
  a_xmit : gid:int -> dst:Addr.endpoint -> Bytes.t -> unit;
  a_crash : unit -> unit;
}
(** How packets leave the endpoint and what happens when it crashes.
    Incoming packets come back through {!deliver}. *)

val create : ?addr:Addr.endpoint -> ?attach:(t -> attachment) -> World.t -> spec:string -> t
(** [create world ~spec] allocates an address, attaches to the world's
    simulated network, and parses [spec] (e.g.
    ["TOTAL:MBRSHIP:FRAG:NAK:COM"]). [addr] pins the endpoint address
    instead of allocating one — deployments use this so every process
    agrees on ranks. [attach] replaces the simulated-network attachment.
    Raises {!Horus_hcpi.Spec.Parse_error} on a bad spec. *)

val world : t -> World.t
val addr : t -> Addr.endpoint
val node : t -> int
val spec : t -> Horus_hcpi.Spec.t

val kind : t -> string
(** The attachment kind. *)

val is_crashed : t -> bool

val crash : t -> unit
(** Crash the endpoint: its attachment stops carrying traffic and all
    its stacks halt silently. *)

val deliver : t -> gid:int -> src:int -> Msg.t -> unit
(** Inject an incoming packet, routed to the stack joined to group
    [gid] (dropped if none, or if the endpoint has crashed).
    Attachments call this from their receive path. *)

val deliver_routed : t -> gid:int -> src:int -> Msg.t -> bool
(** Like {!deliver}, but reports routability: [false] only when the
    endpoint is alive and no stack is joined to [gid] — how a
    shared-socket link counts unknown-gid frames. Crashed endpoints
    swallow frames and return [true]. *)

(**/**)

(** Internal plumbing for {!Group}. *)

val register_route : t -> gid:int -> (src:int -> Msg.t -> unit) -> unit
val unregister_route : t -> gid:int -> unit

val set_route_hook : t -> (bind:bool -> gid:int -> unit) -> unit
(** Install the attachment's route observer (one slot; installed by
    {!Transport_link} shared-socket attachments before any group
    joins). Called on every {!register_route} / {!unregister_route}. *)

val add_crash_hook : t -> (unit -> unit) -> unit
val transport : t -> gid:int -> Horus_hcpi.Layer.transport
