(* Binds endpoints to real transport backends: the glue between
   lib/core's world/endpoint model and lib/transport's narrow waist.

   One link per world. Each [attach] wires one endpoint to one backend:
   outgoing packets are framed (Frame codec: src endpoint, group
   address, CRC) and sent to the destination rank's address from the
   shared peer book; incoming datagrams are decoded and routed into the
   endpoint, with garbled or truncated frames counted and dropped at
   the door. The link registers one metrics exporter with the world, so
   snapshots grow a [transport.*] section summing every backend it
   manages. *)

open Horus_msg
module T = Horus_transport

type t = {
  world : World.t;
  prefix : string;
  mutable backends : T.Backend.t list;
}

let create ?(prefix = "transport") world =
  let t = { world; prefix; backends = [] } in
  World.add_metrics_exporter world (fun m ->
      T.Backend.export_metrics_sum ~prefix:t.prefix (List.rev t.backends) m);
  t

let world t = t.world

let backends t = List.rev t.backends

let attach t ~backend ~peers endpoint : Endpoint.attachment =
  t.backends <- backend :: t.backends;
  let stats = backend.T.Backend.stats in
  backend.T.Backend.set_rx (fun ~src:_ frame ->
      (* Trust the authenticated-by-CRC header's src over the socket
         address: the peer book names ranks, the kernel names ports. *)
      match T.Frame.decode frame with
      | Ok (hdr, payload) ->
        Endpoint.deliver endpoint
          ~gid:(Addr.group_id hdr.T.Frame.h_group)
          ~src:(Addr.endpoint_id hdr.T.Frame.h_src)
          (Msg.of_bytes payload)
      | Error _ -> stats.T.Backend.bad_frame <- stats.T.Backend.bad_frame + 1);
  { Endpoint.a_kind = backend.T.Backend.kind;
    a_mtu = backend.T.Backend.mtu - T.Frame.overhead;
    a_xmit =
      (fun ~gid ~dst payload ->
         match T.Peers.find peers ~rank:(Addr.endpoint_id dst) with
         | Some dest ->
           backend.T.Backend.send ~dest
             (T.Frame.encode ~src:(Endpoint.addr endpoint) ~group:(Addr.group gid)
                payload)
         | None -> stats.T.Backend.dropped <- stats.T.Backend.dropped + 1);
    a_crash = (fun () -> backend.T.Backend.close ()) }

(* The deployment one-liner: an endpoint pinned at [rank], bound to
   [backend], addressing peers through [peers]. *)
let endpoint t ~backend ~peers ~rank ~spec =
  Endpoint.create ~addr:(Addr.endpoint rank)
    ~attach:(attach t ~backend ~peers) t.world ~spec
