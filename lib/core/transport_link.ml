(* Binds endpoints to real transport backends: the glue between
   lib/core's world/endpoint model and lib/transport's narrow waist.

   One link per world. Two binding shapes:

   - [attach]: the classic one-endpoint-per-socket wiring. Every frame
     the socket receives belongs to that endpoint; the endpoint's own
     per-gid route table finishes the demux.

   - [mux] / [attach_mux]: one socket pair carries many endpoints and
     many groups. Outgoing packets are framed as before (Frame codec:
     src endpoint, group address, CRC); incoming frames are demuxed on
     the frame [gid] through the link's group table — populated
     automatically as stacks join groups (Endpoint.set_route_hook) —
     and routed into whichever local endpoint owns that group. One
     socket therefore holds at most one member of any given group,
     which is exactly the hierarchical layout: a machine hosts one
     member of each of many sub-groups. Raw (non-stack) protocols such
     as the directory client can claim a gid on the same socket with
     [route_raw].

   Frames whose gid matches no local group are dropped and counted in
   the [transport.unknown_gid] metric; garbled or truncated frames are
   counted per-backend as before. The link registers one metrics
   exporter with the world, so snapshots grow a [transport.*] section
   summing every backend it manages. *)

open Horus_msg
module T = Horus_transport

type mux = {
  mx_backend : T.Backend.t;
  mx_peers : T.Peers.t;
  mx_groups : (int, Endpoint.t) Hashtbl.t;  (* gid -> owning local endpoint *)
  mx_raw : (int, src:string -> Bytes.t -> unit) Hashtbl.t;
      (* gid -> raw frame handler (directory client, diagnostics) *)
  mutable mx_default : Endpoint.t option;
      (* legacy single-endpoint socket: every gid routes here *)
}

type t = {
  world : World.t;
  prefix : string;
  mutable backends : T.Backend.t list;
  mutable muxes : mux list;
  mutable unknown_gid : int;  (* frames demuxed to no local group *)
}

let create ?(prefix = "transport") world =
  let t = { world; prefix; backends = []; muxes = []; unknown_gid = 0 } in
  World.add_metrics_exporter world (fun m ->
      T.Backend.export_metrics_sum ~prefix:t.prefix (List.rev t.backends) m;
      Horus_obs.Metrics.(
        set_counter (counter m (t.prefix ^ ".unknown_gid")) t.unknown_gid));
  t

let world t = t.world

let backends t = List.rev t.backends

let unknown_gid t = t.unknown_gid

(* Shared rx for a socket: decode once, then demux on the frame gid —
   a raw route, the owning endpoint from the group table, or the
   legacy default endpoint. *)
let install_rx t mux =
  let stats = mux.mx_backend.T.Backend.stats in
  mux.mx_backend.T.Backend.set_rx (fun ~src frame ->
      (* Trust the authenticated-by-CRC header's src over the socket
         address: the peer book names ranks, the kernel names ports. *)
      match T.Frame.decode frame with
      | Ok (hdr, payload) -> (
        let gid = Addr.group_id hdr.T.Frame.h_group in
        match Hashtbl.find_opt mux.mx_raw gid with
        | Some handler -> handler ~src payload
        | None -> (
          let eid = Addr.endpoint_id hdr.T.Frame.h_src in
          match Hashtbl.find_opt mux.mx_groups gid with
          | Some endpoint ->
            if not (Endpoint.deliver_routed endpoint ~gid ~src:eid (Msg.of_bytes payload))
            then t.unknown_gid <- t.unknown_gid + 1
          | None -> (
            match mux.mx_default with
            | Some endpoint ->
              if
                not
                  (Endpoint.deliver_routed endpoint ~gid ~src:eid (Msg.of_bytes payload))
              then t.unknown_gid <- t.unknown_gid + 1
            | None -> t.unknown_gid <- t.unknown_gid + 1)))
      | Error _ -> stats.T.Backend.bad_frame <- stats.T.Backend.bad_frame + 1)

let mux t ~backend ~peers =
  let m =
    { mx_backend = backend;
      mx_peers = peers;
      mx_groups = Hashtbl.create 8;
      mx_raw = Hashtbl.create 2;
      mx_default = None }
  in
  t.backends <- backend :: t.backends;
  t.muxes <- m :: t.muxes;
  install_rx t m;
  m

let route_raw m ~gid handler =
  if Hashtbl.mem m.mx_raw gid then
    invalid_arg "Transport_link.route_raw: gid already claimed";
  Hashtbl.replace m.mx_raw gid handler

let unroute_raw m ~gid = Hashtbl.remove m.mx_raw gid

let mux_backend m = m.mx_backend

(* The per-endpoint attachment over a shared socket. Group routes the
   endpoint registers are mirrored into the mux's group table; a crash
   withdraws them (the socket stays open — it carries other
   endpoints). *)
let attach_mux _t mux endpoint : Endpoint.attachment =
  let backend = mux.mx_backend in
  let stats = backend.T.Backend.stats in
  let bound = ref [] in
  Endpoint.set_route_hook endpoint (fun ~bind ~gid ->
      if bind then begin
        (match Hashtbl.find_opt mux.mx_groups gid with
         | Some other when other != endpoint ->
           invalid_arg
             (Printf.sprintf
                "Transport_link: group %d already has a member on this socket" gid)
         | _ -> ());
        Hashtbl.replace mux.mx_groups gid endpoint;
        bound := gid :: List.filter (fun g -> g <> gid) !bound
      end
      else begin
        (match Hashtbl.find_opt mux.mx_groups gid with
         | Some owner when owner == endpoint -> Hashtbl.remove mux.mx_groups gid
         | _ -> ());
        bound := List.filter (fun g -> g <> gid) !bound
      end);
  { Endpoint.a_kind = backend.T.Backend.kind;
    a_mtu = backend.T.Backend.mtu - T.Frame.overhead;
    a_xmit =
      (fun ~gid ~dst payload ->
         match T.Peers.find mux.mx_peers ~rank:(Addr.endpoint_id dst) with
         | Some dest ->
           backend.T.Backend.send ~dest
             (T.Frame.encode ~src:(Endpoint.addr endpoint) ~group:(Addr.group gid)
                payload)
         | None -> stats.T.Backend.dropped <- stats.T.Backend.dropped + 1);
    a_crash =
      (fun () ->
         List.iter
           (fun gid ->
              match Hashtbl.find_opt mux.mx_groups gid with
              | Some owner when owner == endpoint -> Hashtbl.remove mux.mx_groups gid
              | _ -> ())
           !bound;
         bound := []) }

(* Legacy wiring: a dedicated socket whose every frame belongs to one
   endpoint. Implemented as a mux with a default route, so the
   unknown-gid accounting is shared; the crash path closes the socket
   (nobody else is on it). *)
let attach t ~backend ~peers endpoint : Endpoint.attachment =
  let m = mux t ~backend ~peers in
  m.mx_default <- Some endpoint;
  { (attach_mux t m endpoint) with
    Endpoint.a_crash = (fun () -> backend.T.Backend.close ()) }

(* The deployment one-liners: an endpoint pinned at [rank], bound to
   [backend] (exclusively, or sharing a mux), addressing peers through
   the shared book. *)
let endpoint t ~backend ~peers ~rank ~spec =
  Endpoint.create ~addr:(Addr.endpoint rank)
    ~attach:(attach t ~backend ~peers) t.world ~spec

let mux_endpoint t m ~rank ~spec =
  Endpoint.create ~addr:(Addr.endpoint rank) ~attach:(attach_mux t m) t.world ~spec
