(** Binds endpoints to real transport backends ({!Horus_transport}):
    outgoing packets are framed (src endpoint, group address, CRC) and
    addressed through a shared {!Horus_transport.Peers} book; incoming
    datagrams are decoded and routed into the endpoint, with bad frames
    counted and dropped. One link per world; it registers a metrics
    exporter so snapshots gain a [transport.*] section summing every
    backend it manages.

    Two binding shapes: {!attach} dedicates a socket to one endpoint;
    {!mux}/{!attach_mux} multiplexes many endpoints and many groups
    over one socket pair, demuxing incoming frames on the frame [gid]
    through a per-link group table that tracks which local endpoint
    owns each group (at most one member of a group per socket). Frames
    for gids no local stack has joined are dropped and counted in the
    [transport.unknown_gid] metric. *)

type t

val create : ?prefix:string -> World.t -> t
(** [prefix] (default ["transport"]) names the metrics section. *)

val world : t -> World.t

val backends : t -> Horus_transport.Backend.t list
(** In attach order. *)

val unknown_gid : t -> int
(** Frames received whose gid matched no local group (also exported as
    the [transport.unknown_gid] counter). *)

val attach :
  t ->
  backend:Horus_transport.Backend.t ->
  peers:Horus_transport.Peers.t ->
  Endpoint.t ->
  Endpoint.attachment
(** Pass as {!Endpoint.create}'s [attach]; takes ownership of the
    backend's rx callback (and closes the backend if the endpoint
    crashes). *)

val endpoint :
  t ->
  backend:Horus_transport.Backend.t ->
  peers:Horus_transport.Peers.t ->
  rank:int ->
  spec:string ->
  Endpoint.t
(** The deployment one-liner: an endpoint pinned at address [rank] and
    bound to [backend]. *)

(** {1 Multi-group socket multiplexing} *)

type mux
(** One shared socket carrying many endpoints and many groups. *)

val mux :
  t -> backend:Horus_transport.Backend.t -> peers:Horus_transport.Peers.t -> mux
(** Claim [backend]'s rx for the shared demux. *)

val mux_backend : mux -> Horus_transport.Backend.t

val attach_mux : t -> mux -> Endpoint.t -> Endpoint.attachment
(** Attach one more endpoint to the shared socket. The groups the
    endpoint joins are mirrored into the demux table as its stacks
    register routes; raises [Invalid_argument] if a group already has
    a member on this socket (the frame header cannot distinguish two
    local members of one group). Crashing the endpoint withdraws its
    groups but leaves the socket open. *)

val mux_endpoint : t -> mux -> rank:int -> spec:string -> Endpoint.t
(** The shared-socket deployment one-liner. *)

val route_raw : mux -> gid:int -> (src:string -> Bytes.t -> unit) -> unit
(** Claim a gid on the shared socket for a non-stack protocol (the
    directory client rides its reserved gid this way): matching frames
    bypass the endpoint tables and land in the handler, already
    CRC-checked and stripped to their payload. [src] is the socket
    source address. Raises [Invalid_argument] if the gid is already
    claimed. *)

val unroute_raw : mux -> gid:int -> unit
