(** Binds endpoints to real transport backends ({!Horus_transport}):
    outgoing packets are framed (src endpoint, group address, CRC) and
    addressed through a shared {!Horus_transport.Peers} book; incoming
    datagrams are decoded and routed into the endpoint, with bad frames
    counted and dropped. One link per world; it registers a metrics
    exporter so snapshots gain a [transport.*] section summing every
    backend it manages. *)

type t

val create : ?prefix:string -> World.t -> t
(** [prefix] (default ["transport"]) names the metrics section. *)

val world : t -> World.t

val backends : t -> Horus_transport.Backend.t list
(** In attach order. *)

val attach :
  t ->
  backend:Horus_transport.Backend.t ->
  peers:Horus_transport.Peers.t ->
  Endpoint.t ->
  Endpoint.attachment
(** Pass as {!Endpoint.create}'s [attach]; takes ownership of the
    backend's rx callback (and closes the backend if the endpoint
    crashes). *)

val endpoint :
  t ->
  backend:Horus_transport.Backend.t ->
  peers:Horus_transport.Peers.t ->
  rank:int ->
  spec:string ->
  Endpoint.t
(** The deployment one-liner: an endpoint pinned at address [rank] and
    bound to [backend]. *)
