(* A communication endpoint (Section 3).

   An endpoint owns a network attachment and a protocol stack spec;
   joining a group instantiates a fresh stack over the endpoint (the
   per-group layer state of the paper's group objects). Packets carry a
   group-id frame so one endpoint can serve many groups — the "base
   endpoint" on which multiple stacks stand.

   The attachment is pluggable: by default the endpoint attaches to the
   world's simulated network, but a deployment hands in an [attach]
   function (see Transport_link) that binds the same stacks to a real
   transport backend instead. The stacks cannot tell the difference —
   both roads end at the same xmit/deliver pair. *)

open Horus_msg

type attachment = {
  a_kind : string;  (* "sim", "udp", "loopback" — for diagnostics *)
  a_mtu : int;
  a_xmit : gid:int -> dst:Addr.endpoint -> Bytes.t -> unit;
  a_crash : unit -> unit;
}

type t = {
  world : World.t;
  addr : Addr.endpoint;
  spec : Horus_hcpi.Spec.t;
  routes : (int, src:int -> Msg.t -> unit) Hashtbl.t;  (* gid -> stack ingress *)
  mutable attachment : attachment;
  mutable crashed : bool;
  mutable on_crash : (unit -> unit) list;  (* group handles register cleanup *)
  mutable on_route : (bind:bool -> gid:int -> unit) option;
      (* attachment hook: told whenever a group route (un)registers, so
         a shared-socket link can maintain its gid demux table *)
}

let frame_gid gid payload =
  let n = Bytes.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int gid);
  Bytes.blit payload 0 b 4 n;
  b

(* Incoming packets from whatever attachment — route on group id.
   Returns false only when the endpoint is alive but has no stack
   joined to [gid]: the caller (a shared-socket link) counts those as
   unknown-gid drops. Crashed endpoints swallow frames silently — a
   dead process is not a routing error. *)
let deliver_routed t ~gid ~src m =
  if t.crashed then true
  else
    match Hashtbl.find_opt t.routes gid with
    | Some route ->
      route ~src m;
      true
    | None -> false

let deliver t ~gid ~src m = ignore (deliver_routed t ~gid ~src m)

let sim_attachment t =
  let net = World.net t.world in
  let node = Addr.endpoint_id t.addr in
  Horus_sim.Net.attach net ~node (fun ~src payload ->
      if Bytes.length payload >= 4 then begin
        let gid = Int32.to_int (Bytes.get_int32_be payload 0) in
        let body = Bytes.sub payload 4 (Bytes.length payload - 4) in
        deliver t ~gid ~src (Msg.of_bytes body)
      end);
  { a_kind = "sim";
    a_mtu = (Horus_sim.Net.config net).Horus_sim.Net.mtu;
    a_xmit =
      (fun ~gid ~dst payload ->
         Horus_sim.Net.send net ~src:node ~dst:(Addr.endpoint_id dst)
           (frame_gid gid payload));
    a_crash = (fun () -> Horus_sim.Net.crash net ~node) }

let create ?addr ?attach world ~spec =
  let addr =
    match addr with
    | Some a -> World.claim_endpoint_addr world a
    | None -> World.fresh_endpoint_addr world
  in
  let t =
    { world;
      addr;
      spec = Horus_hcpi.Spec.parse spec;
      routes = Hashtbl.create 4;
      attachment =
        (* placeholder until the real attachment is built below; never
           observable because [create] replaces it before returning *)
        { a_kind = "none";
          a_mtu = 0;
          a_xmit = (fun ~gid:_ ~dst:_ _ -> ());
          a_crash = (fun () -> ()) };
      crashed = false;
      on_crash = [];
      on_route = None }
  in
  t.attachment <- (match attach with None -> sim_attachment t | Some f -> f t);
  t

let world t = t.world

let addr t = t.addr

let node t = Addr.endpoint_id t.addr

let spec t = t.spec

let kind t = t.attachment.a_kind

let is_crashed t = t.crashed

(* Installed by shared-socket attachments (Transport_link.attach_mux)
   before any group joins, so every subsequent route registration is
   mirrored into the link's gid demux table. *)
let set_route_hook t f = t.on_route <- Some f

(* Used by Group.join. *)
let register_route t ~gid route =
  if Hashtbl.mem t.routes gid then invalid_arg "Endpoint: group already joined";
  Hashtbl.replace t.routes gid route;
  match t.on_route with Some f -> f ~bind:true ~gid | None -> ()

let unregister_route t ~gid =
  Hashtbl.remove t.routes gid;
  match t.on_route with Some f -> f ~bind:false ~gid | None -> ()

let add_crash_hook t f = t.on_crash <- f :: t.on_crash

(* The per-group transport handed to the stack's bottom layer: frames
   outgoing packets with the group id. *)
let transport t ~gid : Horus_hcpi.Layer.transport =
  { Horus_hcpi.Layer.xmit = (fun ~dst payload -> t.attachment.a_xmit ~gid ~dst payload);
    local_node = node t;
    mtu = t.attachment.a_mtu }

(* Crash the endpoint: the attachment stops carrying its traffic and all
   its stacks halt silently (a crashed process does not observe its own
   crash). *)
let crash t =
  if not t.crashed then begin
    t.crashed <- true;
    t.attachment.a_crash ();
    List.iter (fun f -> f ()) t.on_crash;
    t.on_crash <- []
  end
