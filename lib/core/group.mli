(** A group handle: one endpoint's membership in one group, over a
    freshly instantiated protocol stack (the "group object" of
    Section 3). Exposes the Table 1 downcalls and records the Table 2
    upcalls. *)

open Horus_msg
open Horus_hcpi

type delivery = {
  kind : [ `Cast | `Send ];
  rank : int;
  payload : string;
  meta : Event.meta;
}

type t

val join :
  ?contact:Addr.endpoint ->
  ?on_up:(Event.up -> unit) ->
  ?auto_flush_ok:bool ->
  ?record:bool ->
  ?skip_inert:bool ->
  ?fastpath:bool ->
  Endpoint.t -> Addr.group -> t
(** Instantiate the endpoint's stack for [group] and issue the join
    downcall. [None] contact founds a singleton group; [Some c] merges
    with the group [c] belongs to. [auto_flush_ok] (default true)
    answers FLUSH upcalls with the flush_ok downcall automatically.
    [record] (default true) keeps the delivery/event logs below; turn
    it off for long-running benchmarks. [skip_inert] (default false)
    enables the Section 10 layer-skipping optimization, bypassing
    inert layers at emission time — observable behaviour must not
    change (test/test_conformance.ml asserts the equivalence).
    [fastpath] (default false) enables the fused steady-state cast
    path (see {!Horus_hcpi.Stack.create}); likewise
    outcome-preserving, asserted by test/test_fastpath.ml. *)

(** {1 Table 1 downcalls} *)

val cast : t -> string -> unit
val cast_msg : t -> Msg.t -> unit
val send : t -> Addr.endpoint list -> string -> unit
val send_msg : t -> Addr.endpoint list -> Msg.t -> unit
val ack : t -> int -> unit
val mark_stable : t -> int -> unit
val merge : t -> Addr.endpoint -> unit
val merge_granted : t -> Event.merge_request -> unit
val merge_denied : t -> Event.merge_request -> unit
val suspect : t -> Addr.endpoint list -> unit
val flush : t -> Addr.endpoint list -> unit
val flush_ok : t -> unit
val install_view : t -> View.t -> unit
val leave : t -> unit
val dump : t -> string list
val focus : t -> string -> Layer.instance option
val destroy : t -> unit

(** {1 Observers} *)

val endpoint : t -> Endpoint.t
val addr : t -> Addr.endpoint
val group : t -> Addr.group
val stack : t -> Stack.t
val view : t -> View.t option
val views : t -> View.t list
(** All views installed so far, oldest first. *)

val my_rank : t -> int option
val deliveries : t -> delivery list
(** All deliveries so far, oldest first. *)

val casts : t -> string list
(** Payloads of cast deliveries, oldest first. *)

val clear_deliveries : t -> unit
val stability : t -> Event.stability option
val problems : t -> Addr.endpoint list
val merge_requests : t -> Event.merge_request list
val merge_denials : t -> string list
val lost_messages : t -> int
val system_errors : t -> string list
val flushes : t -> int
val exited : t -> bool
val destroyed : t -> bool
val set_on_up : t -> (Event.up -> unit) -> unit
