(* A tiny dependency-free JSON tree, emitter and parser.

   The emitter is deterministic: a given tree always serializes to the
   same bytes, so same-seed simulation runs produce byte-identical
   metric snapshots (the property the CI gate checks). Floats are
   printed with round-trip precision; non-finite floats become null
   (JSON has no spelling for them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- emitter --- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    (* Keep integral floats short and unambiguous: 3.0 not 3 (stay a
       float on re-parse) and not 3.0000000000000000e+00. *)
    Printf.sprintf "%.1f" f
  else
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec emit buf ~indent ~level v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_string buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    nl ();
    List.iteri
      (fun i item ->
         if i > 0 then begin Buffer.add_char buf ','; nl () end;
         pad (level + 1);
         emit buf ~indent ~level:(level + 1) item)
      items;
    nl ();
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    nl ();
    List.iteri
      (fun i (k, item) ->
         if i > 0 then begin Buffer.add_char buf ','; nl () end;
         pad (level + 1);
         escape_string buf k;
         Buffer.add_string buf (if indent then ": " else ":");
         emit buf ~indent ~level:(level + 1) item)
      fields;
    nl ();
    pad level;
    Buffer.add_char buf '}'

let to_string ?(indent = false) v =
  let buf = Buffer.create 256 in
  emit buf ~indent ~level:0 v;
  if indent then Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- parser (for tests and tooling; accepts what the emitter writes
   plus ordinary JSON) --- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c ("expected " ^ word)

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
       | Some '"' -> Buffer.add_char buf '"'; advance c
       | Some '\\' -> Buffer.add_char buf '\\'; advance c
       | Some '/' -> Buffer.add_char buf '/'; advance c
       | Some 'n' -> Buffer.add_char buf '\n'; advance c
       | Some 'r' -> Buffer.add_char buf '\r'; advance c
       | Some 't' -> Buffer.add_char buf '\t'; advance c
       | Some 'b' -> Buffer.add_char buf '\b'; advance c
       | Some 'f' -> Buffer.add_char buf '\012'; advance c
       | Some 'u' ->
         advance c;
         if c.pos + 4 > String.length c.src then fail c "bad \\u escape";
         let code = int_of_string ("0x" ^ String.sub c.src c.pos 4) in
         c.pos <- c.pos + 4;
         (* Only the code points the emitter writes (< 0x80) matter; map
            the rest through a UTF-8 encoder for completeness. *)
         if code < 0x80 then Buffer.add_char buf (Char.chr code)
         else if code < 0x800 then begin
           Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
         end
         else begin
           Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
           Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
         end
       | _ -> fail c "bad escape");
      loop ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    (ch >= '0' && ch <= '9') || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  let rec loop () =
    match peek c with
    | Some ch when is_num_char ch ->
      advance c;
      loop ()
    | _ -> ()
  in
  loop ();
  let s = String.sub c.src start (c.pos - start) in
  if String.contains s '.' || String.contains s 'e' || String.contains s 'E' then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail c "bad number"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None ->
      (match float_of_string_opt s with
       | Some f -> Float f
       | None -> fail c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string_body c)
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin advance c; List [] end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> fail c "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin advance c; Obj [] end
    else begin
      let rec fields acc =
        skip_ws c;
        let k = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields ((k, v) :: acc)
        | Some '}' ->
          advance c;
          List.rev ((k, v) :: acc)
        | _ -> fail c "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some _ -> parse_number c

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then Error "trailing garbage"
    else Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors --- *)

let member key v =
  match v with
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let rec path keys v =
  match keys with
  | [] -> Some v
  | k :: rest ->
    (match member k v with
     | Some v' -> path rest v'
     | None -> None)

let to_int = function Int i -> Some i | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
