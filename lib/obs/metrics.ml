(* Metrics registry: named counters, gauges and fixed-bucket
   histograms.

   One registry per world (or per tool invocation) so that independent
   runs never share state: two same-seed simulations snapshot to
   byte-identical JSON. Instrument registration is idempotent — asking
   for an existing name returns the existing instrument — which lets
   every stack in a world accumulate into the same per-layer
   counters. *)

type counter = { c_name : string; mutable count : int }

type gauge = { g_name : string; mutable value : float }

type histogram = {
  h_name : string;
  bounds : float array;      (* strictly increasing upper bounds *)
  buckets : int array;       (* length bounds + 1; last is overflow *)
  mutable h_count : int;
  mutable h_sum : float;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = { instruments : (string, instrument) Hashtbl.t }

let create () = { instruments = Hashtbl.create 64 }

let wrong_kind name want =
  invalid_arg (Printf.sprintf "Metrics: %s already registered as a different kind (wanted %s)" name want)

let counter t name =
  match Hashtbl.find_opt t.instruments name with
  | Some (Counter c) -> c
  | Some _ -> wrong_kind name "counter"
  | None ->
    let c = { c_name = name; count = 0 } in
    Hashtbl.replace t.instruments name (Counter c);
    c

let gauge t name =
  match Hashtbl.find_opt t.instruments name with
  | Some (Gauge g) -> g
  | Some _ -> wrong_kind name "gauge"
  | None ->
    let g = { g_name = name; value = 0.0 } in
    Hashtbl.replace t.instruments name (Gauge g);
    g

(* Power-of-ten latency buckets from 1 us to 10 s — wide enough for
   both simulated dispatch delays and wall-clock phases. *)
let default_latency_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.0; 10.0 |]

let histogram ?(buckets = default_latency_buckets) t name =
  match Hashtbl.find_opt t.instruments name with
  | Some (Histogram h) -> h
  | Some _ -> wrong_kind name "histogram"
  | None ->
    let n = Array.length buckets in
    if n = 0 then invalid_arg "Metrics.histogram: no buckets";
    for i = 1 to n - 1 do
      if buckets.(i) <= buckets.(i - 1) then
        invalid_arg "Metrics.histogram: bucket bounds must be strictly increasing"
    done;
    let h =
      { h_name = name;
        bounds = Array.copy buckets;
        buckets = Array.make (n + 1) 0;
        h_count = 0;
        h_sum = 0.0 }
    in
    Hashtbl.replace t.instruments name (Histogram h);
    h

(* --- counter operations --- *)

let incr c = c.count <- c.count + 1

let add c n =
  if n < 0 then invalid_arg "Metrics.add: counters only go up";
  c.count <- c.count + n

let set_counter c v = c.count <- v
(* For exporters that mirror an externally-maintained monotone total
   (e.g. the simulated network's packet counts) into the registry. *)

let count c = c.count

let counter_name c = c.c_name

(* --- gauge operations --- *)

let set g v = g.value <- v

let gauge_value g = g.value

let gauge_name g = g.g_name

(* --- histogram operations --- *)

let observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  let n = Array.length h.bounds in
  (* Linear scan: bucket arrays are tiny (default 8) and the common
     case lands early. *)
  let rec slot i = if i >= n || v <= h.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.buckets.(i) <- h.buckets.(i) + 1

let observations h = h.h_count

let sum h = h.h_sum

let bucket_counts h = Array.copy h.buckets

let bucket_bounds h = Array.copy h.bounds

let histogram_name h = h.h_name

(* --- registry-wide operations --- *)

let reset t =
  Hashtbl.iter
    (fun _ inst ->
       match inst with
       | Counter c -> c.count <- 0
       | Gauge g -> g.value <- 0.0
       | Histogram h ->
         h.h_count <- 0;
         h.h_sum <- 0.0;
         Array.fill h.buckets 0 (Array.length h.buckets) 0)
    t.instruments

let sorted_instruments t =
  Hashtbl.fold (fun name inst acc -> (name, inst) :: acc) t.instruments []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Gauges that are integral at snapshot time print as ints: the common
   exporters (wire stats) are counts, and "1234" reads better than
   "1234.0". *)
let gauge_json v =
  if Float.is_integer v && Float.abs v < 1e15 then Json.Int (int_of_float v)
  else Json.Float v

let histogram_json h =
  let buckets =
    List.init
      (Array.length h.buckets)
      (fun i ->
         let le =
           if i < Array.length h.bounds then Json.Float h.bounds.(i)
           else Json.String "+Inf"
         in
         Json.Obj [ ("le", le); ("count", Json.Int h.buckets.(i)) ])
  in
  Json.Obj
    [ ("count", Json.Int h.h_count);
      ("sum", Json.Float h.h_sum);
      ("buckets", Json.List buckets) ]

let to_json t =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (fun (name, inst) ->
       match inst with
       | Counter c -> counters := (name, Json.Int c.count) :: !counters
       | Gauge g -> gauges := (name, gauge_json g.value) :: !gauges
       | Histogram h -> histograms := (name, histogram_json h) :: !histograms)
    (List.rev (sorted_instruments t));
  Json.Obj
    [ ("counters", Json.Obj !counters);
      ("gauges", Json.Obj !gauges);
      ("histograms", Json.Obj !histograms) ]

let pp ppf t =
  List.iter
    (fun (name, inst) ->
       match inst with
       | Counter c -> Format.fprintf ppf "%-40s %d@." name c.count
       | Gauge g -> Format.fprintf ppf "%-40s %s@." name (Json.to_string (gauge_json g.value))
       | Histogram h ->
         Format.fprintf ppf "%-40s count=%d sum=%g@." name h.h_count h.h_sum;
         Array.iteri
           (fun i n ->
              if n > 0 then
                let le =
                  if i < Array.length h.bounds then Printf.sprintf "%g" h.bounds.(i)
                  else "+Inf"
                in
                Format.fprintf ppf "%-40s   le %-8s %d@." "" le n)
           h.buckets)
    (sorted_instruments t)
