(** A tiny dependency-free JSON tree, emitter and parser.

    The emitter is deterministic — a given tree always serializes to
    the same bytes — so same-seed simulation runs produce byte-identical
    metric snapshots. Non-finite floats serialize as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Serialize. [indent] pretty-prints with two-space indentation (and a
    trailing newline); the default is compact. *)

val of_string : string -> (t, string) result
(** Parse ordinary JSON. Numbers with a '.', 'e' or 'E' become [Float];
    the rest become [Int] (falling back to [Float] on overflow). *)

val member : string -> t -> t option
(** Field of an object; [None] on anything else. *)

val path : string list -> t -> t option
(** Nested field lookup: [path ["a"; "b"] v] is [v.a.b]. *)

val to_int : t -> int option

val to_float : t -> float option
(** [Int] values coerce to float. *)
