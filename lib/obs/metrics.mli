(** Metrics registry: named counters, gauges and fixed-bucket latency
    histograms, snapshotting to deterministic JSON.

    One registry per world so independent runs never share state —
    two same-seed simulations snapshot to byte-identical JSON.
    Registration is idempotent: asking for an existing name returns
    the existing instrument (so every stack in a world accumulates
    into the same per-layer counters). Asking for an existing name as
    a different instrument kind raises [Invalid_argument]. *)

type t

type counter

type gauge

type histogram

val create : unit -> t

(** {1 Registration} *)

val counter : t -> string -> counter

val gauge : t -> string -> gauge

val histogram : ?buckets:float array -> t -> string -> histogram
(** [buckets] are strictly increasing upper bounds; an implicit [+Inf]
    overflow bucket is appended. Defaults to
    {!default_latency_buckets}. *)

val default_latency_buckets : float array
(** Powers of ten from 1 us to 10 s. *)

(** {1 Counters} *)

val incr : counter -> unit

val add : counter -> int -> unit
(** Raises [Invalid_argument] on negative increments. *)

val set_counter : counter -> int -> unit
(** For exporters that mirror an externally-maintained monotone total
    (e.g. the simulated network's packet counts) into the registry. *)

val count : counter -> int

val counter_name : counter -> string

(** {1 Gauges} *)

val set : gauge -> float -> unit

val gauge_value : gauge -> float

val gauge_name : gauge -> string

(** {1 Histograms} *)

val observe : histogram -> float -> unit

val observations : histogram -> int

val sum : histogram -> float

val bucket_counts : histogram -> int array
(** Per-bucket counts; the final slot is the [+Inf] overflow bucket. *)

val bucket_bounds : histogram -> float array

val histogram_name : histogram -> string

(** {1 Snapshots} *)

val reset : t -> unit
(** Zero every instrument (registrations survive). *)

val to_json : t -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {...}}] with
    instrument names sorted, so the output is deterministic. Gauges
    holding integral values print as ints. *)

val pp : Format.formatter -> t -> unit
(** Human-readable table, one instrument per line (histograms list
    their non-empty buckets). *)
