(* The executable face of the property algebra.

   Table 3 predicts what a stack delivers; lib/check observes what a
   stack actually does. This module is the hinge between the two: it
   says which Table-4 properties have dynamic counterparts in the
   shared invariant library ("runnable" properties), reduces a derived
   property set to the slice a conformance run must check, and — when
   a run falsifies a property — re-derives the algebra with the
   offending claim removed so the report can say whether the blame
   lies with a layer implementation or with a Table-3 row.

   The bridge from a runnable property to a concrete Invariant
   predicate lives in lib/check (Conformance.checks_for); this module
   stays pure algebra so the dependency points the right way. *)

(* Properties with a dynamic counterpart in lib/check's invariant
   library, in Table 4 order:

     P3/P4  per-origin gap-free FIFO plus survivor completeness
     P5     causal delivery (checked by its FIFO necessary condition)
     P6     one shared delivery sequence across survivors
     P9     identical delivery cuts, deliveries inside the origin's view
     P12    large casts survive fragmentation end to end
     P15    same view id, same membership

   The rest of Table 4 is either not observable from delivery/view
   logs alone (P1, P2, P13, P14), is a weaker form of a runnable
   property (P8), or needs a scenario shape the conformance sweep
   does not drive yet (P7, P10, P11, P16). *)
let runnable =
  [ Property.P3_fifo_unicast; Property.P4_fifo_multicast; Property.P5_causal;
    Property.P6_total_order; Property.P9_virtually_synchronous;
    Property.P12_large_messages; Property.P15_consistent_views ]

let is_runnable p = List.mem p runnable

let slice props = List.filter (Property.Set.mem props) runnable

(* --- blame assignment (Section 6 read backwards) --- *)

(* Remove [p] from a row's provides column, leaving requires/inherits
   untouched: the row still stacks the same, it just no longer claims
   to contribute [p]. *)
let strip_provides p (spec : Layer_spec.t) =
  { spec with
    Layer_spec.provides =
      Property.Set.diff spec.Layer_spec.provides (Property.Set.of_list [ p ]) }

let rederive_without ~net layers p = Check.derive ~net (List.map (strip_provides p) layers)

type blame = {
  b_property : Property.t;
  b_providers : string list;
      (* rows in the stack (top-first) whose provides column claims the
         property *)
  b_without : (Property.Set.t, Check.error) result;
      (* the re-derivation with every such claim stripped *)
  b_from_net : bool;
      (* the property still derives without the claims, i.e. it reaches
         the application purely through the network and inherits
         columns *)
}

let blame ~net layers p =
  let providers =
    List.filter_map
      (fun (s : Layer_spec.t) ->
         if Property.Set.mem s.Layer_spec.provides p then Some s.Layer_spec.name else None)
      layers
  in
  let without = rederive_without ~net layers p in
  let from_net =
    match without with Ok props -> Property.Set.mem props p | Error _ -> false
  in
  { b_property = p; b_providers = providers; b_without = without; b_from_net = from_net }

(* One sentence a conformance report can print: given that a run
   falsified [b_property], where does the algebra say the claim came
   from, and what would the contract be without it? *)
let classification b =
  let p = Format.asprintf "%a" Property.pp b.b_property in
  if b.b_from_net then
    Printf.sprintf
      "encoding bug: %s reaches the application through the network and the inherits \
       columns alone — some inherits entry (or the net model) overclaims"
      p
  else
    match b.b_providers with
    | [] ->
      (* Cannot happen for a property in the derived set unless it came
         from the net, but keep the report total. *)
      Printf.sprintf "encoding bug: the algebra derives %s yet no row in the stack provides it" p
    | provs ->
      let who = String.concat ", " provs in
      let tail =
        match b.b_without with
        | Ok props ->
          Printf.sprintf "without the claim the stack would derive %s and stay well-formed"
            (Property.Set.to_string props)
        | Error e ->
          Format.asprintf
            "without the claim the stack is ill-formed (%a) — layers above consume it"
            Check.pp_error e
      in
      Printf.sprintf
        "layer bug in %s (or its Table-3 row overclaims %s): the run falsified the \
         provides entry; %s"
        who p tail
