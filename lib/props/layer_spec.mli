(** Table 3: per-layer Required / Provided / Inherited property sets,
    plus a relative cost for minimal-stack synthesis.

    See the .ml for the reconstruction notes (the paper's scan is
    OCR-noisy; the encoding is anchored on the clean R columns, the
    prose, and the Section 7 worked example). *)

type t = {
  name : string;
  requires : Property.Set.t;
  provides : Property.Set.t;
  inherits : Property.Set.t;
  conflicts : Property.Set.t;
      (** properties that must NOT hold below the layer. An extension
          to the paper's Table 3, found by conformance fuzzing: a
          second membership service stacked above an existing one
          (e.g. BMS:MBRSHIP:...) derives a plausible property set yet
          blackholes all delivery, so membership layers conflict with
          P15 — at most one layer owns the view protocol. *)
  cost : int;
}

val com : t
val nfrag : t
val nak : t
val nnak : t
val frag : t
val mbrship : t
val bms : t
val vss : t
val flush : t
val stable : t
val pinwheel : t
val total : t
val order_causal : t
val order_safe : t
val merge : t

val table3 : t list
(** The fifteen rows of Table 3, in the paper's order. *)

val extras : t list
(** Property-transparent layers implemented here but outside Table 3
    (checksums, crypto, flow control, tracing, no-op). *)

val all : t list

val find : string -> t option
val find_exn : string -> t
val pp : Format.formatter -> t -> unit
