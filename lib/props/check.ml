(* Well-formedness checking and property derivation (Section 6).

   A stack is well-formed if, for each layer, all its required
   properties are guaranteed by the stack underneath it. The property
   set above a layer is

     provides(layer) ∪ (inherits(layer) ∩ below)

   i.e. a layer contributes its own guarantees and passes through the
   subset of the guarantees beneath it that it declares inherited. *)

type error = {
  layer : string;
  missing : Property.Set.t;      (* required but not guaranteed below *)
  conflicting : Property.Set.t;  (* held below but not tolerated by the layer *)
  below : Property.Set.t;        (* what was available below the layer *)
}

let pp_error fmt e =
  if not (Property.Set.is_empty e.conflicting) then
    Format.fprintf fmt "layer %s conflicts with %a already provided below" e.layer
      Property.Set.pp e.conflicting
  else
    Format.fprintf fmt "layer %s requires %a but only %a is available below" e.layer
      Property.Set.pp e.missing Property.Set.pp e.below

(* One composition step: [below] is the property set under the layer. *)
let step below (spec : Layer_spec.t) =
  let conflicting = Property.Set.inter spec.conflicts below in
  if not (Property.Set.is_empty conflicting) then
    Error { layer = spec.name; missing = Property.Set.empty; conflicting; below }
  else if Property.Set.subset spec.requires below then
    Ok (Property.Set.union spec.provides (Property.Set.inter spec.inherits below))
  else
    Error
      { layer = spec.name;
        missing = Property.Set.diff spec.requires below;
        conflicting = Property.Set.empty;
        below }

(* [derive ~net layers] folds from the network upward. [layers] is
   top-first, matching stack spec strings (TOTAL:...:COM means COM is
   applied to the network first). *)
let derive ~net layers =
  List.fold_left
    (fun acc spec ->
       match acc with
       | Error _ as e -> e
       | Ok below -> step below spec)
    (Ok net) (List.rev layers)

let derive_names ~net names = derive ~net (List.map Layer_spec.find_exn names)

let well_formed ~net layers =
  match derive ~net layers with
  | Ok _ -> true
  | Error _ -> false

(* Does the stack provide at least [required] for the application? *)
let satisfies ~net ~required layers =
  match derive ~net layers with
  | Ok props -> Property.Set.subset required props
  | Error _ -> false

let total_cost layers = List.fold_left (fun acc (s : Layer_spec.t) -> acc + s.cost) 0 layers

(* Intermediate property sets, bottom-up: the set under the bottom
   layer (= net) first, the set above the top layer last. Useful for
   explaining a derivation. *)
let trace ~net layers =
  let rec loop below acc = function
    | [] -> Ok (List.rev (below :: acc))
    | spec :: rest ->
      (match step below spec with
       | Ok above -> loop above (below :: acc) rest
       | Error _ as e -> e)
  in
  loop net [] (List.rev layers)

(* Section 8 asks to "help decide when the stacking order of two layers
   matters". At the algebra level, swapping adjacent layers matters
   when it changes well-formedness or the derived property set. *)
type order_verdict =
  | Order_equivalent of Property.Set.t        (* both orders work, same result *)
  | Order_differs of Property.Set.t * Property.Set.t  (* both work, different sets *)
  | Only_first_works of Property.Set.t        (* upper:lower works, swap does not *)
  | Only_second_works of Property.Set.t
  | Neither_works

let order_matters ~net ~(upper : Layer_spec.t) ~(lower : Layer_spec.t) =
  let try_order a b =
    match step net b with
    | Error _ -> None
    | Ok mid ->
      (match step mid a with
       | Error _ -> None
       | Ok top -> Some top)
  in
  match (try_order upper lower, try_order lower upper) with
  | Some p1, Some p2 ->
    if Property.Set.equal p1 p2 then Order_equivalent p1 else Order_differs (p1, p2)
  | Some p1, None -> Only_first_works p1
  | None, Some p2 -> Only_second_works p2
  | None, None -> Neither_works

let pp_order_verdict fmt = function
  | Order_equivalent p ->
    Format.fprintf fmt "order does not matter: both yield %a" Property.Set.pp p
  | Order_differs (p1, p2) ->
    Format.fprintf fmt "both orders are well-formed but differ: %a vs %a" Property.Set.pp p1
      Property.Set.pp p2
  | Only_first_works p ->
    Format.fprintf fmt "only the given order is well-formed, yielding %a" Property.Set.pp p
  | Only_second_works p ->
    Format.fprintf fmt "only the swapped order is well-formed, yielding %a" Property.Set.pp p
  | Neither_works -> Format.fprintf fmt "neither order is well-formed over this network"
