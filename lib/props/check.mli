(** Well-formedness checking and property derivation for stacks
    (Section 6). Layer lists are top-first, matching spec strings. *)

type error = {
  layer : string;
  missing : Property.Set.t;      (** required but not guaranteed below *)
  conflicting : Property.Set.t;  (** held below but not tolerated by the layer *)
  below : Property.Set.t;
}

val pp_error : Format.formatter -> error -> unit

val step : Property.Set.t -> Layer_spec.t -> (Property.Set.t, error) result
(** [step below spec] = [provides ∪ (inherits ∩ below)], or the unmet
    requirements / violated conflicts ([spec.conflicts ∩ below] must
    be empty — e.g. a membership layer cannot stack above a layer that
    already provides P15). *)

val derive : net:Property.Set.t -> Layer_spec.t list -> (Property.Set.t, error) result
(** Property set above the top of the stack, folding up from the
    network. *)

val derive_names : net:Property.Set.t -> string list -> (Property.Set.t, error) result

val well_formed : net:Property.Set.t -> Layer_spec.t list -> bool

val satisfies : net:Property.Set.t -> required:Property.Set.t -> Layer_spec.t list -> bool

val total_cost : Layer_spec.t list -> int

val trace : net:Property.Set.t -> Layer_spec.t list -> (Property.Set.t list, error) result
(** Intermediate property sets bottom-up (net first, top last). *)

(** {1 Stacking order}

    Section 8 asks to "help decide when the stacking order of two
    layers matters"; at the algebra level, it matters when swapping
    adjacent layers changes well-formedness or the derived set. *)

type order_verdict =
  | Order_equivalent of Property.Set.t
  | Order_differs of Property.Set.t * Property.Set.t
  | Only_first_works of Property.Set.t
  | Only_second_works of Property.Set.t
  | Neither_works

val order_matters :
  net:Property.Set.t -> upper:Layer_spec.t -> lower:Layer_spec.t -> order_verdict
(** Compare [upper:lower] against [lower:upper] over [net]. *)

val pp_order_verdict : Format.formatter -> order_verdict -> unit
