(* Table 3: for each layer, the properties it Requires from the stack
   beneath it, the properties it Provides, and the properties it
   Inherits (passes through) from beneath.

   The scan of Table 3 in the paper is OCR-noisy; this encoding is
   anchored on (a) the R columns, which scan cleanly, (b) the prose
   description of each layer, and (c) the hard constraint that the
   Section 7 worked example — TOTAL:MBRSHIP:FRAG:NAK:COM over a network
   providing only P1 — must derive exactly
   {P3,P4,P6,P8,P9,P10,P11,P12,P15} (asserted in test/test_props.ml).

   Deliberate deviations are flagged with DEVIATION comments. *)

type t = {
  name : string;
  requires : Property.Set.t;
  provides : Property.Set.t;
  inherits : Property.Set.t;
  conflicts : Property.Set.t;
      (* properties that must NOT hold below the layer. Not in the
         paper's Table 3 — added after conformance fuzzing found that
         stacking a second membership service above an existing one
         (BMS:MBRSHIP:...) derives a fine-looking property set yet
         blackholes all delivery: the requires/provides/inherits
         algebra can state what a layer needs, but not what it cannot
         tolerate beneath it. Membership layers conflict with P15 —
         exactly one layer may own the view protocol. *)
  cost : int;  (* relative run-time cost, for minimal-stack synthesis *)
}

let spec ?(conflicts = []) ~name ~requires ~provides ~inherits ~cost () =
  { name;
    requires = Property.Set.of_numbers requires;
    provides = Property.Set.of_numbers provides;
    inherits = Property.Set.of_numbers inherits;
    conflicts = Property.Set.of_numbers conflicts;
    cost }

(* COM adapts a raw network to the HCPI. It stamps the source address
   on each message (P11) and carries a length/magic envelope that
   detects byte reordering or truncation (P10). Ordering-style
   guarantees of the network underneath pass through. *)
let com =
  spec ~name:"COM" ~requires:[ 1 ] ~provides:[ 10; 11 ]
    ~inherits:[ 1; 2; 3; 4; 5; 6; 7; 12; 13 ] ~cost:1 ()

(* NFRAG fragments over networks without FIFO guarantees. *)
let nfrag =
  spec ~name:"NFRAG" ~requires:[ 1; 10; 11 ] ~provides:[ 12 ]
    ~inherits:[ 1; 2; 3; 4; 5; 6; 7; 10; 11 ] ~cost:3 ()

(* NAK turns best-effort into reliable FIFO (unicast and multicast) via
   sequence numbers and negative acknowledgements. Best-effort (P1) is
   deliberately NOT inherited: the delivery discipline above NAK is no
   longer "best effort". *)
let nak =
  spec ~name:"NAK" ~requires:[ 1; 10; 11 ] ~provides:[ 3; 4 ]
    ~inherits:[ 2; 5; 6; 7; 10; 11; 12 ] ~cost:4 ()

(* NNAK provides prioritized-effort delivery lanes. *)
let nnak =
  spec ~name:"NNAK" ~requires:[ 1; 10; 11 ] ~provides:[ 2 ]
    ~inherits:[ 1; 3; 4; 5; 6; 7; 10; 11; 12 ] ~cost:3 ()

(* FRAG fragments and reassembles large messages; depends on FIFO. *)
let frag =
  spec ~name:"FRAG" ~requires:[ 3; 4; 10; 11 ] ~provides:[ 12 ]
    ~inherits:[ 1; 2; 3; 4; 5; 6; 7; 10; 11; 13 ] ~cost:2 ()

(* MBRSHIP (Section 5) simulates a fail-stop environment: consistent
   views (P15) with virtually synchronous delivery (P9, and hence the
   weaker P8). *)
let mbrship =
  spec ~name:"MBRSHIP" ~requires:[ 3; 4; 10; 11; 12 ] ~provides:[ 8; 9; 15 ]
    ~conflicts:[ 15 ] ~inherits:[ 1; 2; 3; 4; 5; 6; 7; 10; 11; 12; 16 ] ~cost:8 ()

(* BMS: basic membership service — consistent views and the weaker
   semi-synchronous delivery, without the unstable-message flush. *)
let bms =
  spec ~name:"BMS" ~requires:[ 3; 4; 10; 11; 12 ] ~provides:[ 8; 15 ]
    ~conflicts:[ 15 ] ~inherits:[ 1; 2; 3; 4; 5; 6; 7; 10; 11; 12; 16 ] ~cost:5 ()

(* FLUSH upgrades semi-synchrony to full virtual synchrony by running
   the unstable-message flush of Figure 2 at view changes. *)
let flush =
  spec ~name:"FLUSH" ~requires:[ 3; 4; 8; 10; 11; 12; 15 ] ~provides:[ 9 ]
    ~inherits:[ 1; 2; 3; 4; 5; 6; 7; 8; 10; 11; 12; 15; 16 ] ~cost:4 ()

(* VSS: an alternative virtual-synchrony service over consistent
   views. *)
let vss =
  spec ~name:"VSS" ~requires:[ 3; 10; 11; 12; 15 ] ~provides:[ 9 ]
    ~inherits:[ 1; 2; 3; 4; 5; 6; 7; 8; 10; 11; 12; 15; 16 ] ~cost:5 ()

(* STABLE computes the application-defined stability matrix of
   Section 9. *)
let stable =
  spec ~name:"STABLE" ~requires:[ 3; 4; 8; 9; 10; 11; 12; 15 ] ~provides:[ 14 ]
    ~inherits:[ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 15; 16 ] ~cost:3 ()

(* PINWHEEL: rotating-aggregator stability — same property, lower
   background traffic. *)
let pinwheel =
  spec ~name:"PINWHEEL" ~requires:[ 3; 8; 9; 10; 15 ] ~provides:[ 14 ]
    ~inherits:[ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 15; 16 ] ~cost:2 ()

(* TOTAL: token-based total order over virtual synchrony (Section 7). *)
let total =
  spec ~name:"TOTAL" ~requires:[ 3; 8; 9; 15 ] ~provides:[ 6 ]
    ~inherits:[ 1; 2; 3; 4; 5; 7; 8; 9; 10; 11; 12; 13; 14; 15; 16 ] ~cost:5 ()

(* ORDER(causal): causal delivery via vector timestamps.
   DEVIATION: the paper's row *requires* P13 (causal timestamps), but
   no layer in Table 3 provides P13; our layer carries its own vector
   timestamps and therefore provides P13 alongside P5, keeping causal
   stacks constructible. *)
let order_causal =
  spec ~name:"ORDER_CAUSAL" ~requires:[ 3; 8; 9; 15 ] ~provides:[ 5; 13 ]
    ~inherits:[ 1; 2; 3; 4; 6; 7; 8; 9; 10; 11; 12; 14; 15; 16 ] ~cost:3 ()

(* ORDER(safe): delays delivery until stability information from below
   (P14) shows a message is safe. *)
let order_safe =
  spec ~name:"ORDER_SAFE" ~requires:[ 3; 8; 9; 14; 15 ] ~provides:[ 7 ]
    ~inherits:[ 1; 2; 3; 4; 5; 6; 8; 9; 10; 11; 12; 13; 14; 15; 16 ] ~cost:3 ()

(* MERGE: automatic view merging of partitioned groups.
   DEVIATION: the paper's row also requires P1, but P1 is not inherited
   past NAK (the Section 7 derivation excludes it above the stack), so
   a literal reading would make MERGE unstackable over any reliable
   stack. Our MERGE reaches foreign partitions through the rendezvous
   service and the reliable in-view channels, so P1 is not needed. *)
let merge =
  spec ~name:"MERGE" ~requires:[ 3; 4; 8; 9; 10; 11; 12; 15 ] ~provides:[ 16 ]
    ~inherits:[ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ] ~cost:2 ()

(* The rows of Table 3, in the paper's order. *)
let table3 =
  [ com; nfrag; nak; nnak; frag; mbrship; bms; vss; flush; stable;
    pinwheel; total; order_causal; order_safe; merge ]

(* Auxiliary layers implemented in this repository but outside Table 3
   (from Figure 1's protocol-type list). They provide no new Table 4
   properties; they require only what they need to run and inherit
   everything, so stacks containing them derive unchanged property
   sets. *)
let transparent ~name ~requires ~cost () =
  spec ~name ~requires ~provides:[]
    ~inherits:[ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15; 16 ] ~cost ()

(* HIER runs above a membership layer: it needs consistent views and
   reliable FIFO below (the representative is deduced from the view,
   so every member must see the same one) but adds no Table-4
   property of its own — within its sub-group it is transparent, and
   the parent-group bridge is a separate stack. No conflicts: exactly
   one membership layer still owns P15 below it. *)
let hier =
  spec ~name:"HIER" ~requires:[ 3; 4; 8; 10; 11; 15 ] ~provides:[]
    ~inherits:[ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15; 16 ] ~cost:2 ()

let extras =
  [ hier;
    transparent ~name:"CHKSUM" ~requires:[ 1 ] ~cost:2 ();
    transparent ~name:"SIGN" ~requires:[ 1 ] ~cost:2 ();
    transparent ~name:"ENCRYPT" ~requires:[ 1 ] ~cost:2 ();
    transparent ~name:"COMPRESS" ~requires:[ 1 ] ~cost:2 ();
    transparent ~name:"FC" ~requires:[ 3; 4 ] ~cost:1 ();
    transparent ~name:"TRACE" ~requires:[] ~cost:1 ();
    transparent ~name:"LOG" ~requires:[ 3; 4 ] ~cost:3 ();
    transparent ~name:"CLOCKSYNC" ~requires:[ 3; 15 ] ~cost:2 ();
    transparent ~name:"DEADLINE" ~requires:[ 1 ] ~cost:1 ();
    transparent ~name:"ACCOUNT" ~requires:[] ~cost:1 ();
    transparent ~name:"BATCH" ~requires:[] ~cost:1 ();
    transparent ~name:"NOOP" ~requires:[] ~cost:0 () ]

let all = table3 @ extras

let find name = List.find_opt (fun s -> s.name = name) all

let find_exn name =
  match find name with
  | Some s -> s
  | None -> invalid_arg ("Layer_spec.find_exn: unknown layer " ^ name)

let pp fmt s =
  Format.fprintf fmt "%s: R=%a P=%a I=%a%s cost=%d" s.name Property.Set.pp s.requires
    Property.Set.pp s.provides Property.Set.pp s.inherits
    (if Property.Set.is_empty s.conflicts then ""
     else Format.asprintf " X=%a" Property.Set.pp s.conflicts)
    s.cost
