(** The executable face of the property algebra: which Table-4
    properties a conformance run can check dynamically, and — when a
    run falsifies one — whether the algebra blames a layer
    implementation or a Table-3 encoding. *)

val runnable : Property.t list
(** Properties with a dynamic counterpart in lib/check's invariant
    library (P3, P4, P5, P6, P9, P12, P15), in Table-4 order. *)

val is_runnable : Property.t -> bool

val slice : Property.Set.t -> Property.t list
(** The runnable subset of a derived property set, in Table-4 order:
    the contract a conformance run must check for that stack. *)

val strip_provides : Property.t -> Layer_spec.t -> Layer_spec.t
(** Remove the property from the row's provides column, leaving
    requires and inherits untouched. *)

val rederive_without :
  net:Property.Set.t ->
  Layer_spec.t list ->
  Property.t ->
  (Property.Set.t, Check.error) result
(** Re-run [Check.derive] with the property stripped from every
    provides column in the stack (top-first, as [Check.derive]). *)

type blame = {
  b_property : Property.t;
  b_providers : string list;
      (** rows in the stack (top-first) whose provides column claims
          the property *)
  b_without : (Property.Set.t, Check.error) result;
      (** the re-derivation with every such claim stripped *)
  b_from_net : bool;
      (** the property still derives without the claims — it reaches
          the application purely through the net and inherits columns *)
}

val blame : net:Property.Set.t -> Layer_spec.t list -> Property.t -> blame
(** Given a stack whose run falsified [p], work out where the algebra
    says the claim of [p] came from. *)

val classification : blame -> string
(** One sentence for the conformance report: layer bug (a provides
    entry was falsified — the named layer, or its Table-3 row,
    overclaims) vs encoding bug (the property derives with no provider
    claim at all, so an inherits column or the net model overclaims). *)
