(** Repro files: scenarios serialized to disk as "horus-repro/1" JSON,
    written by the fuzzer on failure, replayed by [horus_info replay],
    and auto-loaded from [test/repros/] by the test suite. *)

val env_dir_var : string
(** ["HORUS_REPRO_DIR"] — where {!save} writes when no [dir] is given. *)

val save : ?dir:string -> Scenario.t -> string option
(** Write [<dir>/<name>.json] (creating [dir] if needed); [dir]
    defaults to [$HORUS_REPRO_DIR]. [None] if no directory is
    configured or the write failed — saving a repro is best-effort and
    must never mask the original test failure. *)

val load : string -> (Scenario.t, string) result
val load_dir : string -> (string * (Scenario.t, string) result) list
(** All [*.json] under a directory, sorted by filename. Missing
    directory is an empty list. *)
