(* Bounded systematic schedule exploration.

   The Engine chooser turns dispatch nondeterminism into an explicit
   choice tree: whenever several pending events fall within [horizon]
   of the queue head, the adversary picks which one runs. This module
   enumerates that tree with a stateless depth-bounded DFS — each tree
   node is visited by re-running the whole (deterministic) scenario
   with a choice prefix, defaulting to choice 0 past the prefix — and
   then falls back to seeded random walks to sample schedules beyond
   the bound. An outcome-fingerprint cache reports how many distinct
   terminal behaviours the search actually saw (it is an honest
   statistic, not a soundness claim: we fingerprint outcomes, not
   intermediate states). *)

type config = {
  horizon : float;
  width : int;
  from_time : float;    (* chooser active from traffic start + this *)
  depth : int;          (* DFS branches only in the first [depth] choice points *)
  max_runs : int;
  random_walks : int;   (* seeded walks after (or instead of) the DFS *)
  walk_seed : int;
}

let default_config =
  { horizon = 0.002;
    width = 3;
    from_time = 0.0;
    depth = 6;
    max_runs = 200;
    random_walks = 0;
    walk_seed = 1 }

type stats = {
  runs : int;
  distinct : int;      (* distinct outcome fingerprints *)
  truncated : bool;    (* stopped by max_runs *)
}

type outcome = {
  found : (Scenario.t * Runner.result) option;
      (* the failing scenario, with its schedule made concrete *)
  stats : stats;
}

let rec rev_strip_zeros = function
  | 0 :: rest -> rev_strip_zeros rest
  | l -> l

let with_sched (sc : Scenario.t) cfg ~choices ~walk =
  { sc with
    Scenario.sched =
      Some
        { Scenario.s_horizon = cfg.horizon;
          s_width = cfg.width;
          s_from = cfg.from_time;
          s_choices = choices;
          s_walk = walk } }

(* Replace a walk (or a short prefix) by the decisions actually taken,
   so the returned counterexample replays with no randomness left.
   Trailing zeros are dropped: past the prefix the chooser defaults to
   0 anyway, and timer clusters in the settle tail would otherwise pad
   the schedule with thousands of no-op decisions. *)
let concretize sc cfg (r : Runner.result) =
  let choices =
    List.rev (rev_strip_zeros (List.rev r.Runner.r_taken))
  in
  with_sched sc cfg ~choices ~walk:None

let explore ?(config = default_config) ?(skip_inert = false) ?(fastpath = false)
    (sc : Scenario.t) =
  let cfg = config in
  let seen = Hashtbl.create 251 in
  let runs = ref 0 and distinct = ref 0 and truncated = ref false in
  let found = ref None in
  let note_run r =
    incr runs;
    let fp = Runner.fingerprint r in
    if not (Hashtbl.mem seen fp) then begin
      Hashtbl.replace seen fp ();
      incr distinct
    end;
    if Runner.failed r && !found = None then
      found := Some (concretize sc cfg r, r)
  in
  (* DFS over choice prefixes. The frontier holds prefixes (reversed
     for cheap construction); visiting a prefix runs it and, for every
     choice point past the prefix but inside the depth bound, pushes
     one child per non-default decision. *)
  let frontier = ref [ [] ] in
  while !found = None && !frontier <> [] && not !truncated do
    match !frontier with
    | [] -> ()
    | prefix :: rest ->
      frontier := rest;
      if !runs >= cfg.max_runs then truncated := true
      else begin
        let r =
          Runner.run ~skip_inert ~fastpath
            (with_sched sc cfg ~choices:prefix ~walk:None)
        in
        note_run r;
        if !found = None then begin
          let plen = List.length prefix in
          let children = ref [] in
          List.iteri
            (fun j arity ->
               if j >= plen && j < cfg.depth && arity > 1 then begin
                 let zeros = List.init (j - plen) (fun _ -> 0) in
                 for c = arity - 1 downto 1 do
                   children := (prefix @ zeros @ [ c ]) :: !children
                 done
               end)
            r.Runner.r_arities;
          frontier := !children @ !frontier
        end
      end
  done;
  (* Random walks past the bound: replayable (each walk is a seed),
     and any hit is concretized into an explicit choice list. *)
  let w = ref 0 in
  while !found = None && !w < cfg.random_walks do
    if !runs >= cfg.max_runs then begin
      truncated := true;
      w := cfg.random_walks
    end
    else begin
      let r =
        Runner.run ~skip_inert ~fastpath
          (with_sched sc cfg ~choices:[] ~walk:(Some (cfg.walk_seed + !w)))
      in
      note_run r;
      incr w
    end
  done;
  { found = !found; stats = { runs = !runs; distinct = !distinct; truncated = !truncated } }
