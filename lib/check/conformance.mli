(** Conformance sweeps: synthesize well-formed stacks from the
    property algebra, derive each one's contract, and falsify "derived
    properties hold under chaos" end to end.

    The bridge half maps each runnable Table-4 property
    ({!Horus_props.Contract.runnable}) to the {!Invariant} predicates
    that observe it, so any derived [Property.Set.t] compiles into a
    checkable invariant slice. The sweep half generates hundreds of
    distinct stacks (systematic enumeration + seeded random growth),
    runs each through {!Runner} under a small chaos matrix, and on a
    violation shrinks the scenario and classifies the falsified
    property via {!Horus_props.Contract.blame}. *)

val check_property :
  props:Horus_props.Property.Set.t ->
  Runner.result ->
  Horus_props.Property.t ->
  Invariant.violation list
(** The property -> invariant bridge: evaluate one runnable property
    against a finished run (empty list for non-runnable properties).
    [props] is the stack's full derived contract: P12's meaning
    depends on it — gap-free complete delivery of the padded stream
    when reliable FIFO (P4) is also promised, reassembly integrity
    alone over a best-effort stack where loss is within contract. P5
    is held to its per-origin FIFO necessary condition — full
    causality is not observable from delivery logs alone. *)

val check_slice :
  props:Horus_props.Property.Set.t ->
  Runner.result ->
  Horus_props.Property.t list ->
  (Horus_props.Property.t * Invariant.violation list) list
(** Evaluate a contract slice; only falsified properties appear. *)

(** {1 Synthesized stacks} *)

type stack = {
  st_spec : string;  (** "TOTAL:...:COM" *)
  st_layers : Horus_props.Layer_spec.t list;  (** top-first *)
  st_props : Horus_props.Property.Set.t;  (** the derived contract *)
  st_slice : Horus_props.Property.t list;  (** its runnable part *)
}

val stack_of_layers : Horus_props.Layer_spec.t list -> stack option
(** [None] when the stack is ill-formed over a {P1} net or its
    contract has no runnable part. *)

val generate : seed:int -> count:int -> max_depth:int -> stack list
(** Distinct well-formed stacks with non-empty runnable contracts:
    systematic [Search.enumerate] over a spread of requirement sets
    first, topped up by seeded random bottom-up growth (its own
    splitmix64 stream — a pure function of [seed]). Only layers
    present in the HCPI registry are drawn; DEADLINE (intentionally
    lossy) and LOG (stable storage) are excluded from the
    transparent-extras pool. *)

(** {1 The chaos matrix} *)

val profiles : (string * Horus_transport.Chaos.profile) list
(** ["clean"] (zero probabilities, but still over the chaos-wrapped
    loopback waist), ["drop"] (5% drop, 1% duplication), ["reorder"]
    (10% reorder in a window of 4, 2% delay),
    ["partition-mid-sweep"] (a symmetric partition between the two
    surviving members that opens mid-cast-burst and heals 0.35 s
    later) and ["asym-link"] (member 1's frames toward member 0
    vanish in two flapping one-way windows while the reverse path
    keeps flowing, plus mild delay). The windowed profiles always
    heal well before the run ends, so reliable stacks must recover. *)

val profile_named : string -> Horus_transport.Chaos.profile option

val scenario_of :
  seed:int ->
  profile_name:string ->
  profile:Horus_transport.Chaos.profile ->
  stack ->
  Scenario.t
(** The scenario a stack is held to: 3 members, 3 casts each at
    staggered times; casts padded past the fragmentation threshold
    when the contract includes P12; a mid-traffic crash plus suspicion
    when it includes P15. *)

(** {1 Verdicts and the sweep} *)

type verdict = {
  vd_spec : string;
  vd_profile : string;
  vd_props : Horus_props.Property.Set.t;
  vd_checked : Horus_props.Property.t list;
  vd_fingerprint : int64;  (** Runner outcome fingerprint *)
  vd_violations : (Horus_props.Property.t * Invariant.violation list) list;
  vd_blames : (Horus_props.Property.t * Horus_props.Contract.blame) list;
  vd_shrunk : Scenario.t option;
      (** minimal scenario still falsifying one of the violated
          properties, with [expect_violation] set *)
  vd_repro : string option;  (** where the shrunk repro was saved *)
}

val verdict_ok : verdict -> bool

val run_stack :
  ?save_dir:string ->
  seed:int ->
  profile_name:string ->
  profile:Horus_transport.Chaos.profile ->
  stack ->
  verdict
(** Run one stack under one profile, check its slice, and on failure
    shrink (against "the same falsified properties still falsify") and
    classify. *)

type config = {
  cf_seed : int;
  cf_stacks : int;
  cf_max_depth : int;
  cf_profiles : (string * Horus_transport.Chaos.profile) list;
  cf_save : string option;  (** repro directory for shrunk failures *)
}

val default_config : config
(** seed 11, 100 stacks, depth 5, all three profiles, no save dir. *)

type report = {
  rp_seed : int;
  rp_stacks : int;
  rp_runs : int;
  rp_failures : int;
  rp_verdicts : verdict list;
  rp_fingerprint : int64;
      (** FNV-1a over every verdict's canonical JSON (repro paths
          excluded) — the CI double-run determinism gate compares
          this *)
}

val ok : report -> bool

val sweep : ?progress:(string -> unit) -> config -> report

val verdict_json : verdict -> Horus_obs.Json.t
val report_json : report -> Horus_obs.Json.t
