(** Greedy counterexample minimization.

    One-at-a-time structure removal — members (with reindexing),
    faults, traffic ops, network noise knobs, dispatch-schedule
    truncation — looped to a fixpoint: the result is a local minimum
    under [fails]. The predicate is arbitrary; pass "a small
    exploration still finds a violation" when choice points may shift
    as structure is removed. *)

type stats = {
  attempts : int;  (** candidate scenarios evaluated *)
  accepted : int;  (** reductions kept *)
}

val candidates : Scenario.t -> Scenario.t list
(** All single-step reductions, exposed for testing. *)

val shrink : fails:(Scenario.t -> bool) -> Scenario.t -> Scenario.t * stats
(** Requires [fails sc] to hold on entry (otherwise returns [sc]
    unchanged with zero accepted). *)
