(* The virtual-synchrony invariant library.

   One vocabulary of observations and one set of predicates shared by
   the systematic explorer (Explore), the randomized fuzzer
   (test/test_fuzz.ml), the repro replayer and the unit tests — so
   that "the property held" means the same thing everywhere. The
   properties are the dynamic counterparts of the paper's P-properties
   (Table 4): view agreement and consistency (P15), per-origin FIFO
   and gap-freedom (P3/P4/P12), delivery-in-view and identical
   delivery cuts (P9 virtual synchrony), and total order (P6) where
   the stack claims it.

   Predicates return violations instead of raising, so callers decide
   what a failure means (an Alcotest failure, a counterexample to
   shrink, an explorer hit). *)

type obs = {
  o_member : int;
  o_eid : int;
  o_crashed : bool;
  o_left : bool;
  o_exited : bool;
  o_casts : (string * int) list;            (* oldest first: payload, epoch *)
  o_views : ((int * int) * int list) list;  (* oldest first: (ltime, coord eid), member eids *)
  o_final : (int * int list) option;        (* ltime, member eids *)
}

type violation = {
  v_property : string;
  v_detail : string;
}

let violation v_property fmt = Printf.ksprintf (fun v_detail -> { v_property; v_detail }) fmt

let pp_violation fmt v = Format.fprintf fmt "%s: %s" v.v_property v.v_detail

(* Survivors: members the scenario left running. Their obligations are
   the strong ones (completeness, agreement); everyone else is held
   only to prefix properties. *)
let survivors obs = List.filter (fun o -> not (o.o_crashed || o.o_left || o.o_exited)) obs

(* Payloads are "<tag><origin>-<k>" with optional padding
   "<tag><origin>-<k>+xxx..." (a '+' then filler) used to drive casts
   past fragmentation thresholds. The parse is strict on the tail —
   digits, or digits '+' then only 'x's — so a garbled byte anywhere
   in a payload still makes it unparseable rather than aliasing to a
   different rank. *)
(* Decimal digits only: int_of_string_opt also accepts hex/octal/
   binary prefixes and '_' separators, which would let a garbled
   "0x7" alias to rank 7. *)
let decimal_opt s =
  if s = "" || not (String.for_all (fun c -> c >= '0' && c <= '9') s) then None
  else int_of_string_opt s

let parse_payload ~tag p =
  let len = String.length p in
  if len < 4 || p.[0] <> tag then None
  else
    match String.index_opt p '-' with
    | None -> None
    | Some dash ->
      let body = String.sub p (dash + 1) (len - dash - 1) in
      let rank =
        match String.index_opt body '+' with
        | None -> decimal_opt body
        | Some plus ->
          let digits = String.sub body 0 plus in
          let filler_ok =
            let ok = ref true in
            String.iteri (fun i c -> if i > plus && c <> 'x' then ok := false) body;
            !ok
          in
          if filler_ok then decimal_opt digits else None
      in
      (match (decimal_opt (String.sub p 1 (dash - 1)), rank) with
       | Some origin, Some k -> Some (origin, k)
       | _ -> None)

let payload ?(pad = 0) ~tag ~origin ~k () =
  let base = Printf.sprintf "%c%d-%03d" tag origin k in
  if pad <= 0 then base else base ^ "+" ^ String.make (max 0 (pad - 1)) 'x'

let stream_of ~tag ~origin o =
  List.filter_map
    (fun (p, _) ->
       match parse_payload ~tag p with
       | Some (og, k) when og = origin -> Some k
       | _ -> None)
    o.o_casts

(* P12 over best-effort stacks: delivery is not guaranteed, but
   whatever *is* delivered must be a faithfully reassembled payload —
   it parses, and names a cast the origin actually issued. A torn or
   misordered reassembly fails the parse (the pad filler is strict);
   a fabricated rank lands out of bounds. *)
let reassembly_integrity ~tag ~sent obs =
  List.concat_map
    (fun o ->
       List.filter_map
         (fun (p, _) ->
            if String.length p = 0 || p.[0] <> tag then None
            else
              match parse_payload ~tag p with
              | None ->
                Some
                  (violation "reassembly-integrity"
                     "member %d delivered unparseable payload %S" o.o_member p)
              | Some (origin, k) ->
                if k < 0 || k >= sent origin then
                  Some
                    (violation "reassembly-integrity"
                       "member %d delivered %S but origin %d issued only %d casts"
                       o.o_member p origin (sent origin))
                else None)
         o.o_casts)
    obs

(* P15: two members that install a view with the same id agree on its
   membership. *)
let view_agreement obs =
  let tbl = Hashtbl.create 64 in
  List.concat_map
    (fun o ->
       List.filter_map
         (fun (id, ms) ->
            match Hashtbl.find_opt tbl id with
            | None ->
              Hashtbl.replace tbl id (o.o_member, ms);
              None
            | Some (_, ms') when ms = ms' -> None
            | Some (who, ms') ->
              Some
                (violation "view-agreement"
                   "view (%d,%d): member %d installed [%s] but member %d installed [%s]"
                   (fst id) (snd id) who
                   (String.concat "," (List.map string_of_int ms'))
                   o.o_member
                   (String.concat "," (List.map string_of_int ms))))
         o.o_views)
    obs

(* Survivors end in one shared view that contains them all. *)
let final_view_agreement obs =
  match survivors obs with
  | [] -> []
  | first :: rest ->
    let disagreements =
      List.filter_map
        (fun o ->
           if o.o_final = first.o_final then None
           else
             Some
               (violation "final-view" "members %d and %d disagree on the final view"
                  first.o_member o.o_member))
        rest
    in
    let missing =
      match first.o_final with
      | None -> [ violation "final-view" "survivor %d has no view" first.o_member ]
      | Some (_, ms) ->
        List.filter_map
          (fun o ->
             if List.mem o.o_eid ms then None
             else
               Some
                 (violation "final-view" "survivor %d (eid %d) missing from the final view"
                    o.o_member o.o_eid))
          (first :: rest)
    in
    disagreements @ missing

(* P3/P4/P12 (gap-freedom): at every member, the deliveries from each
   origin form an in-order, gap-free prefix of that origin's stream. *)
let per_origin_fifo ~tag obs =
  List.concat_map
    (fun o ->
       let origins =
         List.sort_uniq compare
           (List.filter_map (fun (p, _) -> Option.map fst (parse_payload ~tag p)) o.o_casts)
       in
       List.filter_map
         (fun origin ->
            let seen = stream_of ~tag ~origin o in
            let expected = List.init (List.length seen) (fun i -> i) in
            if seen = expected then None
            else
              Some
                (violation "per-origin-fifo"
                   "member %d, origin %d: delivered [%s], not a gap-free prefix" o.o_member
                   origin
                   (String.concat "," (List.map string_of_int seen))))
         origins)
    obs

(* Nothing from a live origin is lost: every survivor delivered every
   cast a surviving member issued. [sent] maps member index to how
   many casts it issued. *)
let survivor_completeness ~tag ~sent obs =
  let surv = survivors obs in
  List.concat_map
    (fun o ->
       List.filter_map
         (fun origin ->
            let want = sent origin.o_member in
            if want = 0 then None
            else
              let got = List.length (stream_of ~tag ~origin:origin.o_member o) in
              if got = want then None
              else
                Some
                  (violation "survivor-completeness"
                     "member %d delivered %d/%d casts of surviving origin %d" o.o_member got
                     want origin.o_member))
         surv)
    surv

(* P9 virtual synchrony: survivors delivered identical (payload,
   epoch) multisets — the same messages, in the same views. *)
let virtual_synchrony obs =
  match survivors obs with
  | [] -> []
  | first :: rest ->
    let canon o = List.sort compare o.o_casts in
    let c0 = canon first in
    List.filter_map
      (fun o ->
         if canon o = c0 then None
         else
           let diff a b = List.filter (fun x -> not (List.mem x b)) a in
           let only0 = diff c0 (canon o) and only1 = diff (canon o) c0 in
           Some
             (violation "virtual-synchrony"
                "members %d and %d delivered different cuts (only at %d: [%s]; only at %d: [%s])"
                first.o_member o.o_member first.o_member
                (String.concat ","
                   (List.map (fun (p, e) -> Printf.sprintf "%s@%d" p e) only0))
                o.o_member
                (String.concat ","
                   (List.map (fun (p, e) -> Printf.sprintf "%s@%d" p e) only1))))
      rest

(* Deliveries happen in views that contain their origin: if the member
   recorded the view with the delivery's epoch, the origin must be in
   it. *)
let delivery_in_view ~tag obs =
  let eid_of = Hashtbl.create 16 in
  List.iter (fun o -> Hashtbl.replace eid_of o.o_member o.o_eid) obs;
  List.concat_map
    (fun o ->
       List.filter_map
         (fun (p, epoch) ->
            match parse_payload ~tag p with
            | None -> None
            | Some (origin, _) ->
              (match Hashtbl.find_opt eid_of origin with
               | None -> None
               | Some origin_eid ->
                 (match
                    List.find_opt (fun ((ltime, _), _) -> ltime = epoch) o.o_views
                  with
                  | Some (_, ms) when not (List.mem origin_eid ms) ->
                    Some
                      (violation "delivery-in-view"
                         "member %d delivered %s in epoch %d, whose view excludes origin %d"
                         o.o_member p epoch origin)
                  | _ -> None)))
         o.o_casts)
    obs

(* P6: survivors see one shared delivery sequence. *)
let total_order obs =
  match survivors obs with
  | [] -> []
  | first :: rest ->
    let seq o = List.map fst o.o_casts in
    let s0 = seq first in
    List.filter_map
      (fun o ->
         if seq o = s0 then None
         else
           Some
             (violation "total-order" "members %d and %d delivered in different orders"
                first.o_member o.o_member))
      rest

(* Self-delivery: a surviving member delivered its own casts. (A
   special case of completeness, but a much sharper error message.) *)
let self_delivery ~tag ~sent obs =
  List.filter_map
    (fun o ->
       let want = sent o.o_member in
       if want = 0 then None
       else
         let got = List.length (stream_of ~tag ~origin:o.o_member o) in
         if got = want then None
         else
           Some
             (violation "self-delivery" "member %d delivered only %d/%d of its own casts"
                o.o_member got want))
    (survivors obs)

(* The standard virtual-synchrony bundle, the properties the
   MBRSHIP-over-reliable-FIFO stacks promise. [total] adds P6 when the
   stack claims total order. *)
let standard ?(total = false) ~tag ~sent obs =
  view_agreement obs
  @ final_view_agreement obs
  @ per_origin_fifo ~tag obs
  @ delivery_in_view ~tag obs
  @ self_delivery ~tag ~sent obs
  @ survivor_completeness ~tag ~sent obs
  @ virtual_synchrony obs
  @ (if total then total_order obs else [])

let to_json vs =
  Horus_obs.Json.List
    (List.map
       (fun v ->
          Horus_obs.Json.Obj
            [ ("property", Horus_obs.Json.String v.v_property);
              ("detail", Horus_obs.Json.String v.v_detail) ])
       vs)
