(* Conformance: fuzz synthesized stacks against their derived contracts.

   The property algebra (lib/props) predicts what a stack delivers;
   this module holds it to that. A seeded generator synthesizes
   hundreds of distinct well-formed stacks over the Table-3 catalogue,
   [Check.derive] computes each stack's contract, [Contract.slice]
   reduces the contract to the runnable properties, and each stack
   runs end to end through [Runner] under a small chaos matrix with
   exactly that invariant slice checked. A falsified property is
   shrunk to a minimal repro and classified by [Contract.blame] as a
   layer bug or a Table-3 encoding bug. *)

module P = Horus_props.Property
module Layer_spec = Horus_props.Layer_spec
module PCheck = Horus_props.Check
module Search = Horus_props.Search
module Contract = Horus_props.Contract
module Chaos = Horus_transport.Chaos
module Json = Horus_obs.Json

let p1 = P.Set.of_numbers [ 1 ]

(* --- the property -> invariant bridge --- *)

(* Evaluate one runnable property of [res]'s contract. The mapping is
   the bridge the tentpole names: each Table-4 property with a dynamic
   counterpart gets exactly the Invariant predicates that observe it.
   [props] is the full derived contract — a property's observable
   meaning can depend on what else the stack promises. P5 has no sound
   full causality check from delivery logs alone (there are no
   send-event observations), so it is held to its FIFO necessary
   condition. P12's generator-side casts are padded past the
   fragmentation threshold; when the contract also carries reliable
   FIFO (P4) the padded stream must arrive gap-free and complete,
   while over a best-effort stack (P1, no P4 — e.g. NFRAG:COM) loss is
   within contract and only reassembly integrity is checkable. *)
let check_property ~props (res : Runner.result) (p : P.t) : Invariant.violation list =
  let obs = res.Runner.r_obs in
  let tag = Runner.tag in
  let sent = Runner.sent_of res.Runner.r_scenario in
  match p with
  | P.P3_fifo_unicast | P.P4_fifo_multicast ->
    Invariant.per_origin_fifo ~tag obs
    @ Invariant.self_delivery ~tag ~sent obs
    @ Invariant.survivor_completeness ~tag ~sent obs
  | P.P12_large_messages ->
    Invariant.reassembly_integrity ~tag ~sent obs
    @ (if P.Set.mem props P.P4_fifo_multicast then
         Invariant.per_origin_fifo ~tag obs
         @ Invariant.self_delivery ~tag ~sent obs
         @ Invariant.survivor_completeness ~tag ~sent obs
       else [])
  | P.P5_causal -> Invariant.per_origin_fifo ~tag obs
  | P.P6_total_order -> Invariant.total_order obs
  | P.P9_virtually_synchronous ->
    Invariant.virtual_synchrony obs @ Invariant.delivery_in_view ~tag obs
  | P.P15_consistent_views ->
    Invariant.view_agreement obs @ Invariant.final_view_agreement obs
  | _ -> []

let check_slice ~props res slice =
  List.filter_map
    (fun p ->
       match check_property ~props res p with [] -> None | vs -> Some (p, vs))
    slice

(* --- synthesized stacks --- *)

type stack = {
  st_spec : string;           (* "TOTAL:...:COM" *)
  st_layers : Layer_spec.t list;  (* top-first *)
  st_props : P.Set.t;         (* the derived contract *)
  st_slice : P.t list;        (* its runnable part, Table-4 order *)
}

let spec_of_layers layers =
  String.concat ":" (List.map (fun (l : Layer_spec.t) -> l.Layer_spec.name) layers)

let stack_of_layers layers =
  match PCheck.derive ~net:p1 layers with
  | Error _ -> None
  | Ok props ->
    (match Contract.slice props with
     | [] -> None  (* nothing runnable to hold it to *)
     | slice ->
       Some { st_spec = spec_of_layers layers; st_layers = layers;
              st_props = props; st_slice = slice })

(* Layers the generator may use: Table-3 rows with an implementation
   in the HCPI registry, plus property-transparent extras that are
   safe to interpose anywhere. DEADLINE is excluded because it drops
   casts older than its budget by design — correct behaviour that
   still falsifies inherited completeness under chaos delay — and LOG
   because its stable-storage semantics are out of scope for a
   delivery-stream conformance run. *)
let safe_extra_names =
  [ "CHKSUM"; "SIGN"; "ENCRYPT"; "COMPRESS"; "FC"; "TRACE"; "ACCOUNT"; "BATCH";
    "CLOCKSYNC"; "NOOP"; "HIER" ]
(* HIER is transparent within its sub-group but NOT interposable
   anywhere: it requires consistent views beneath it. The grower may
   still draw it anywhere; an ill-placed HIER fails [PCheck.derive]'s
   requires check and the stack is discarded, so only
   HIER-over-membership stacks survive into the sweep. *)

let registered (l : Layer_spec.t) = Horus_hcpi.Registry.mem l.Layer_spec.name

(* splitmix64 — the generator carries its own PRNG so stack synthesis
   is a pure function of the seed, independent of the stdlib's Random
   implementation. *)
type rng = { mutable rs : int64 }

let rng_make seed = { rs = Int64.add 0x9e3779b97f4a7c15L (Int64.of_int seed) }

let rng_next r =
  r.rs <- Int64.add r.rs 0x9e3779b97f4a7c15L;
  let z = r.rs in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let rng_below r n = Int64.to_int (Int64.unsigned_rem (rng_next r) (Int64.of_int n))
let rng_chance r permille = rng_below r 1000 < permille

(* Systematic half: enumerate every well-formed stack up to max_depth
   for a spread of requirement sets covering each runnable property
   and a few combinations. Enumeration prunes no-op layers, so this
   half yields the property-changing skeletons. *)
let requirement_seeds =
  [ [ 2 ]; [ 3; 4 ]; [ 12 ]; [ 5 ]; [ 6 ]; [ 9 ]; [ 15 ]; [ 14 ]; [ 16 ];
    [ 3; 4; 12 ]; [ 5; 15 ]; [ 9; 14 ]; [ 6; 9 ]; [ 12; 15 ]; [ 6; 9; 15 ] ]

let systematic ~max_depth =
  let pool = List.filter registered Layer_spec.table3 in
  List.map
    (fun nums ->
       Search.enumerate ~layers:pool ~max_depth ~net:p1
         ~required:(P.Set.of_numbers nums) ())
    requirement_seeds

(* Interleave the per-requirement lists so early seeds don't crowd the
   later ones out of a bounded draw. *)
let round_robin lists =
  let rec go acc = function
    | [] -> List.rev acc
    | lists ->
      let heads, tails =
        List.fold_left
          (fun (hs, ts) -> function
             | [] -> (hs, ts)
             | h :: t -> (h :: hs, t :: ts))
          ([], []) lists
      in
      go (List.rev_append heads acc) (List.rev tails)
  in
  go [] lists

(* Random half: grow a stack bottom-up from COM, at each step drawing
   a Table-3 layer whose requirements the current set meets and whose
   addition changes the set — or, occasionally, one transparent extra.
   Mirrors how an application programmer composes a stack by hand. *)
let random_layers rng ~max_depth =
  let extras_pool =
    List.filter
      (fun (l : Layer_spec.t) -> registered l && List.mem l.Layer_spec.name safe_extra_names)
      Layer_spec.extras
  in
  let has name layers = List.exists (fun (l : Layer_spec.t) -> l.Layer_spec.name = name) layers in
  (* [stack] is top-first (head = layer added last, i.e. topmost);
     [below] is the derived property set above the current top. *)
  let rec grow stack below depth =
    if depth >= max_depth then stack
    else if depth >= 2 && rng_chance rng 250 then stack
    else
      let steps =
        List.filter_map
          (fun (l : Layer_spec.t) ->
             if has l.Layer_spec.name stack || not (registered l) then None
             else
               match PCheck.step below l with
               | Ok above when not (P.Set.equal above below) -> Some (l, above)
               | _ -> None)
          Layer_spec.table3
      in
      let extras = List.filter (fun l -> not (has l.Layer_spec.name stack)) extras_pool in
      if steps = [] && extras = [] then stack
      else if extras <> [] && (steps = [] || rng_chance rng 300) then
        let l = List.nth extras (rng_below rng (List.length extras)) in
        (* transparent: the property set above it is unchanged *)
        grow (l :: stack) below (depth + 1)
      else
        let l, above = List.nth steps (rng_below rng (List.length steps)) in
        grow (l :: stack) above (depth + 1)
  in
  match PCheck.step p1 Layer_spec.com with
  | Error _ -> []
  | Ok above -> grow [ Layer_spec.com ] above 1

(* [generate ~seed ~count ~max_depth]: distinct well-formed stacks
   with a non-empty runnable contract — the systematic enumeration
   first (round-robin across requirement seeds), topped up with random
   growth until [count] stacks or the attempt budget runs out. *)
let generate ~seed ~count ~max_depth =
  Horus_layers.Init.register_all ();
  let seen = Hashtbl.create 97 in
  let out = ref [] in
  let n = ref 0 in
  let take layers =
    if !n < count then
      match stack_of_layers layers with
      | Some st when not (Hashtbl.mem seen st.st_spec) ->
        Hashtbl.add seen st.st_spec ();
        out := st :: !out;
        incr n
      | _ -> ()
  in
  List.iter take (round_robin (systematic ~max_depth));
  let rng = rng_make seed in
  let attempts = ref 0 in
  while !n < count && !attempts < count * 200 do
    incr attempts;
    match random_layers rng ~max_depth with
    | [] -> ()
    | layers -> take layers
  done;
  List.rev !out

(* --- the chaos matrix --- *)

(* "clean" still runs over the chaos-wrapped loopback waist (zero
   probabilities), so every profile exercises the same code path. *)
(* The conformance scenario's clock: 3 joins at 0.4 s spacing, then a
   2 s settle, puts the traffic origin t0 near 3.2 s engine time; the
   cast burst is over by t0 + 0.1. The windowed profiles below are
   phrased against that clock (partition windows are timed from
   controller creation, i.e. engine time 0) and always heal well
   before the 5 s run_for ends, so reliable stacks must recover and
   the sweep stays a falsifier of protocol bugs, not of physics. *)
let profiles =
  [ ("clean", Chaos.default);
    ("drop", { Chaos.default with Chaos.drop = 0.05; duplicate = 0.01 });
    ("reorder",
     { Chaos.default with Chaos.reorder = 0.10; reorder_window = 4; delay = 0.02 });
    (* A full symmetric partition between the two surviving members,
       opening just after the cast burst lands (last cast t0 + 0.08,
       engine time ~3.28) and healing 80 ms later: background drop has
       already torn ~1% of the burst, and the repair rounds for those
       losses now stall mid-partition and must re-request after the
       heal. The window is bracketed on both sides by design: it opens
       after the burst because a cast torn in a full partition with no
       successor traffic is unexposable tail loss (NAK is
       receiver-driven — falsifying physics, not the protocol), and it
       closes well before the scripted suspicion (t0 + 0.3, ~3.5) so
       repair rounds complete and the crash-driven flush — whose view
       install is itself a pair-lane tail message — runs over a healed
       network. *)
    ("partition-mid-sweep",
     { Chaos.default with
       Chaos.drop = 0.01;
       partitions =
         [ { Chaos.pt_from = 0; pt_to = 1; pt_start = 3.3; pt_stop = Some 3.38 };
           { Chaos.pt_from = 1; pt_to = 0; pt_start = 3.3; pt_stop = Some 3.38 } ] });
    (* An asymmetric link: member 1's frames toward member 0 vanish in
       two flapping windows while the reverse direction keeps flowing
       (plus mild delay everywhere) — the classic one-way-degraded
       path that ack/nak protocols must survive without symmetry
       assumptions. The first flap heals two NAK status periods before
       the scripted suspicion (~3.5) so repair completes ahead of the
       flush; the second flap tears post-flush repair traffic and must
       be re-requested when it lifts. *)
    ("asym-link",
     { Chaos.default with
       Chaos.delay = 0.05;
       delay_mean = 0.002;
       delay_max = 0.02;
       partitions =
         [ { Chaos.pt_from = 1; pt_to = 0; pt_start = 3.25; pt_stop = Some 3.38 };
           { Chaos.pt_from = 1; pt_to = 0; pt_start = 3.9; pt_stop = Some 4.1 } ] }) ]

let profile_named name = List.assoc_opt name profiles

(* --- the scenario a stack runs under --- *)

(* Three members, three casts each at staggered times. When the
   contract includes P12 the first member's casts are padded well past
   FRAG's default 1024-byte threshold, so fragmentation actually
   happens. When the contract includes P15 (a membership layer is
   present) the youngest member crashes mid-traffic and is suspected
   shortly after — the scenario shape that exercises view agreement
   and virtual synchrony rather than just steady-state streams. *)
let scenario_of ~seed ~profile_name ~profile (st : stack) =
  let n = 3 in
  let pad = if List.mem P.P12_large_messages st.st_slice then 2600 else 0 in
  let ops =
    List.concat_map
      (fun k ->
         List.init n (fun m ->
             { Scenario.op_member = m;
               op_at = 0.01 *. float_of_int ((k * n) + m);
               op_pad = (if m = 0 then pad else 0) }))
      [ 0; 1; 2 ]
  in
  let faults =
    if List.mem P.P15_consistent_views st.st_slice then
      (* The suspicion trails the crash by ~0.25 s: late enough that
         the windowed profiles below can open after the cast burst,
         heal, and still leave NAK two full status periods (50 ms
         each) to expose and repair torn casts before the flush cuts
         the epoch — repair racing the view change is a physics loss,
         not a protocol bug. *)
      [ { Scenario.f_at = 0.055; f_fault = Scenario.Crash (n - 1) };
        { Scenario.f_at = 0.3; f_fault = Scenario.Suspect (0, n - 1) } ]
    else []
  in
  (* ':' is legal in a POSIX filename but not in a CI artifact path,
     and the scenario name becomes the repro filename. *)
  let flat = String.map (fun c -> if c = ':' then '_' else c) st.st_spec in
  Scenario.make
    ~name:(Printf.sprintf "conformance-%s-%s" profile_name flat)
    ~seed ~chaos:profile ~ops ~faults ~run_for:5.0 ~spec:st.st_spec ~n ()

(* --- verdicts --- *)

type verdict = {
  vd_spec : string;
  vd_profile : string;
  vd_props : P.Set.t;
  vd_checked : P.t list;
  vd_fingerprint : int64;  (* Runner outcome fingerprint *)
  vd_violations : (P.t * Invariant.violation list) list;  (* falsified properties *)
  vd_blames : (P.t * Contract.blame) list;
  vd_shrunk : Scenario.t option;
  vd_repro : string option;  (* saved repro path, when a dir is configured *)
}

let verdict_ok v = v.vd_violations = []

(* One stack under one profile: run, check the slice, and on failure
   shrink against "the same falsified properties still falsify" and
   classify each via re-derivation. *)
let run_stack ?save_dir ~seed ~profile_name ~profile (st : stack) =
  let sc = scenario_of ~seed ~profile_name ~profile st in
  let res = Runner.run sc in
  let violations = check_slice ~props:st.st_props res st.st_slice in
  let blames =
    List.map (fun (p, _) -> (p, Contract.blame ~net:p1 st.st_layers p)) violations
  in
  let shrunk, repro =
    match violations with
    | [] -> (None, None)
    | _ ->
      let bad = List.map fst violations in
      let fails sc' =
        let r = Runner.run sc' in
        List.exists (fun p -> check_property ~props:st.st_props r p <> []) bad
      in
      let small, _stats = Shrink.shrink ~fails sc in
      let small = { small with Scenario.expect_violation = true } in
      (Some small, Repro.save ?dir:save_dir small)
  in
  { vd_spec = st.st_spec; vd_profile = profile_name; vd_props = st.st_props;
    vd_checked = st.st_slice; vd_fingerprint = Runner.fingerprint res;
    vd_violations = violations; vd_blames = blames; vd_shrunk = shrunk;
    vd_repro = repro }

(* --- the sweep --- *)

type config = {
  cf_seed : int;
  cf_stacks : int;
  cf_max_depth : int;
  cf_profiles : (string * Chaos.profile) list;
  cf_save : string option;
}

let default_config =
  { cf_seed = 11; cf_stacks = 100; cf_max_depth = 5; cf_profiles = profiles;
    cf_save = None }

type report = {
  rp_seed : int;
  rp_stacks : int;        (* distinct stacks generated *)
  rp_runs : int;          (* stack x profile runs *)
  rp_failures : int;      (* verdicts with violations *)
  rp_verdicts : verdict list;
  rp_fingerprint : int64; (* FNV-1a over every verdict, for the CI double-run gate *)
}

let ok report = report.rp_failures = 0

let blame_json (b : Contract.blame) =
  Json.Obj
    [ ("property", Json.String (Format.asprintf "%a" P.pp b.Contract.b_property));
      ("providers", Json.List (List.map (fun s -> Json.String s) b.Contract.b_providers));
      ("without",
       (match b.Contract.b_without with
        | Ok props -> Json.String (P.Set.to_string props)
        | Error e -> Json.String (Format.asprintf "ill-formed: %a" PCheck.pp_error e)));
      ("from_net", Json.Bool b.Contract.b_from_net);
      ("classification", Json.String (Contract.classification b)) ]

(* The repro path is machine-local, so it stays out of the verdict
   JSON that the sweep fingerprint hashes; to_json is therefore stable
   across working directories and artifact layouts. *)
let verdict_json v =
  Json.Obj
    [ ("spec", Json.String v.vd_spec);
      ("profile", Json.String v.vd_profile);
      ("contract", Json.String (P.Set.to_string v.vd_props));
      ("checked",
       Json.List
         (List.map (fun p -> Json.String (Format.asprintf "%a" P.pp p)) v.vd_checked));
      ("ok", Json.Bool (verdict_ok v));
      ("fingerprint", Json.String (Printf.sprintf "%Lx" v.vd_fingerprint));
      ("violations",
       Json.List
         (List.map
            (fun (p, vs) ->
               Json.Obj
                 [ ("property", Json.String (Format.asprintf "%a" P.pp p));
                   ("detail", Invariant.to_json vs) ])
            v.vd_violations));
      ("blames", Json.List (List.map (fun (_, b) -> blame_json b) v.vd_blames));
      ("shrunk",
       match v.vd_shrunk with None -> Json.Null | Some sc -> Scenario.to_json sc) ]

let fnv_string s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
       h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let report_json r =
  Json.Obj
    [ ("schema", Json.String "horus-conformance/1");
      ("seed", Json.Int r.rp_seed);
      ("stacks", Json.Int r.rp_stacks);
      ("runs", Json.Int r.rp_runs);
      ("failures", Json.Int r.rp_failures);
      ("ok", Json.Bool (ok r));
      ("fingerprint", Json.String (Printf.sprintf "%Lx" r.rp_fingerprint));
      ("verdicts", Json.List (List.map verdict_json r.rp_verdicts)) ]

let sweep ?progress cf =
  let stacks = generate ~seed:cf.cf_seed ~count:cf.cf_stacks ~max_depth:cf.cf_max_depth in
  let total = List.length stacks * List.length cf.cf_profiles in
  let done_ = ref 0 in
  let verdicts =
    List.concat_map
      (fun (idx, st) ->
         List.map
           (fun (profile_name, profile) ->
              (* Each run's scenario seed is a pure function of the
                 sweep seed and the stack index, so one failing stack
                 can be re-run alone. *)
              let seed = (cf.cf_seed * 1000003) + (idx * 97) in
              let v =
                run_stack ?save_dir:cf.cf_save ~seed ~profile_name ~profile st
              in
              incr done_;
              (match progress with
               | Some f ->
                 f (Printf.sprintf "[%d/%d] %-8s %-40s %s" !done_ total profile_name
                      st.st_spec
                      (if verdict_ok v then "ok" else "VIOLATION"))
               | None -> ());
              v)
           cf.cf_profiles)
      (List.mapi (fun i st -> (i, st)) stacks)
  in
  let failures = List.length (List.filter (fun v -> not (verdict_ok v)) verdicts) in
  let fingerprint =
    fnv_string
      (Json.to_string ~indent:false
         (Json.List (List.map verdict_json verdicts)))
  in
  { rp_seed = cf.cf_seed; rp_stacks = List.length stacks;
    rp_runs = List.length verdicts; rp_failures = failures;
    rp_verdicts = verdicts; rp_fingerprint = fingerprint }
