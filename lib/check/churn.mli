(** The hierarchical churn soak — the acceptance experiment for
    scaling membership past one flat group, and (ungraceful mode) the
    crash-fault campaign that holds failover to a bound.

    [h_endpoints] members split into [h_subgroups] sub-groups, each
    running [HIER(parent,sub):<h_spec>] over a grid of shared loopback
    sockets multiplexed by {!Horus.Transport_link} (socket [s] hosts
    member [s] of every sub-group; sub-group [j] is rotated [j] slots
    so every representative — the sub-group's oldest member — sits on
    a distinct socket and can also join the parent group). A
    {!Horus_dir.Dir_service} on its own socket tracks every live
    member under a lease, through one shared {!Horus_dir.Dir_client}
    per socket riding the reserved directory gid; with
    [h_dir_replicas] > 0 the service is primary/backup replicated and
    the clients fail over through the ring.

    Graceful waves remove the youngest [h_wave_fraction] of every
    sub-group, require re-convergence within [h_converge_bound]
    virtual seconds, drive a parent-group cast burst, rejoin the
    leavers and require convergence again. Ungraceful waves crash
    instead: the youngest quarter plus [h_kill_coordinators] sub-group
    coordinators die without a goodbye (suspicion is scripted after
    [h_detect_delay]), each beheaded sub-group must re-bridge its new
    coordinator into the parent within [h_rebridge_bound] of the kill,
    and at [h_kill_dir_wave] the directory primary is killed mid-wave
    and a backup must promote. The run is held to: every phase
    converged, every surviving parent member delivered every cast
    issued while it was bridged, every re-bridge within bound, lease
    evictions exactly equal to the bindings crashes abandoned,
    [nak.retransmits] under [h_nak_ceiling], and directory bindings
    equal to the union of installed views. Runs are a pure function of
    the config: {!report.r_fingerprint} is the CI double-run
    determinism gate. *)

type config = {
  h_name : string;
  h_endpoints : int;       (** total population *)
  h_subgroups : int;       (** must not exceed the sub-group size ceiling *)
  h_seed : int;
  h_spec : string;         (** sub-group stack below HIER, top first *)
  h_latency : float;       (** loopback hub latency, seconds *)
  h_join_spacing : float;  (** settle after each join *)
  h_op_gap : float;        (** gap between leaves/kills within a wave *)
  h_settle : float;        (** settle after setup, before the waves *)
  h_waves : int;
  h_wave_fraction : float; (** youngest fraction of each sub-group churned *)
  h_casts_per_wave : int;  (** parent-group casts per wave *)
  h_lease : float;         (** directory lease, seconds *)
  h_converge_bound : float;(** per-phase view-convergence budget *)
  h_check_every : float;   (** convergence poll slice *)
  h_nak_ceiling : int;     (** whole-run [nak.retransmits] budget *)
  h_ungraceful : bool;     (** waves crash instead of leave *)
  h_kill_coordinators : int; (** coordinators killed per ungraceful wave *)
  h_detect_delay : float;  (** crash -> scripted suspicion *)
  h_rebridge_bound : float;(** kill -> parent re-bridged budget *)
  h_dir_replicas : int;    (** directory backups behind the primary *)
  h_kill_dir_wave : int;   (** wave that kills the dir primary; -1 never *)
}

val default_config : config
(** The M4 acceptance shape: 1000 endpoints in 32 sub-groups, 3
    graceful waves churning the youngest quarter, seed 7. *)

val ci_config : config
(** The bounded CI shape: 256 endpoints in 8 sub-groups, 2 waves. *)

val m5_config : config
(** The M5 acceptance shape: the M4 population driven through 3
    ungraceful waves — 9 coordinators and the directory primary
    (2 backups behind it) killed along the way. *)

val m5_ci_config : config
(** The bounded M5 CI shape: 256 endpoints in 8 sub-groups, 2
    ungraceful waves, 4 coordinators plus the directory primary. *)

type wave_report = {
  w_index : int;
  w_kind : string;          (** ["leave"], ["kill"] or ["rejoin"] *)
  w_members : int;          (** members churned in this phase *)
  w_converge : float option;(** virtual seconds to convergence; [None]
                                = bound exceeded *)
}

type report = {
  r_name : string;
  r_mode : string;          (** ["graceful"] or ["ungraceful"] *)
  r_endpoints : int;
  r_subgroups : int;
  r_sockets : int;          (** the shared-socket grid width *)
  r_setup_converge : float option;
  r_waves : wave_report list;
  r_parent_casts : int;     (** deliveries expected of a never-replaced member *)
  r_parent_delivered : int list;
  r_parent_lost : int;      (** casts dead representatives never saw *)
  r_killed : int;           (** endpoints crashed across all waves *)
  r_killed_coordinators : int;
  r_rebridge : (int * float) list;
  (** per beheaded sub-group: kill -> full representative view, seconds *)
  r_rebridge_bound : float;
  r_nak_retransmits : int;
  r_unknown_gid : int;      (** in-flight frames for just-left gids *)
  r_dir_versions : (int * int) list;
  r_dir_match : bool;       (** directory == union of installed views *)
  r_dir_notifies : int;
  r_dir_evictions : int;    (** must equal the abandoned-binding count *)
  r_dir_replicas : int;
  r_dir_promotions : int;   (** backup promotions across the replica set *)
  r_dir_epoch : int;        (** serving primary's incarnation at exit *)
  r_dir_failovers : int;    (** client replica advances *)
  r_dir_redirects : int;    (** client [Not_primary] redirects honoured *)
  r_violations : string list;
  r_elapsed : float;        (** virtual seconds *)
  r_fingerprint : int64;    (** FNV-1a over the canonical report JSON *)
}

val run : config -> report
(** Execute the soak; raises [Invalid_argument] on a config whose grid
    cannot host the representatives on distinct sockets, or whose kill
    schedule would behead sub-group 0 (the anchor that re-bridges the
    rest). *)

val ok : report -> bool
(** No violations. *)

val to_json : report -> Horus_obs.Json.t
val to_string : report -> string
