(** The hierarchical churn soak — the acceptance experiment for
    scaling membership past one flat group.

    [h_endpoints] members split into [h_subgroups] sub-groups, each
    running [HIER(parent,sub):<h_spec>] over a grid of shared loopback
    sockets multiplexed by {!Horus.Transport_link} (socket [s] hosts
    member [s] of every sub-group; sub-group [j] is rotated [j] slots
    so every representative — the sub-group's oldest member — sits on
    a distinct socket and can also join the parent group). A
    {!Horus_dir.Dir_service} on its own socket tracks every live
    member under a lease, through one shared {!Horus_dir.Dir_client}
    per socket riding the reserved directory gid.

    Each churn wave removes the youngest [h_wave_fraction] of every
    sub-group, requires re-convergence within [h_converge_bound]
    virtual seconds, drives a parent-group cast burst, rejoins the
    leavers and requires convergence again. The run is held to: every
    phase converged, all parent casts delivered everywhere,
    [nak.retransmits] under [h_nak_ceiling], zero lease evictions, and
    directory bindings equal to the union of installed views. Runs are
    a pure function of the config: {!report.r_fingerprint} is the CI
    double-run determinism gate. *)

type config = {
  h_name : string;
  h_endpoints : int;       (** total population *)
  h_subgroups : int;       (** must not exceed the sub-group size ceiling *)
  h_seed : int;
  h_spec : string;         (** sub-group stack below HIER, top first *)
  h_latency : float;       (** loopback hub latency, seconds *)
  h_join_spacing : float;  (** settle after each join *)
  h_op_gap : float;        (** gap between leaves within a wave *)
  h_settle : float;        (** settle after setup, before the waves *)
  h_waves : int;
  h_wave_fraction : float; (** youngest fraction of each sub-group churned *)
  h_casts_per_wave : int;  (** parent-group casts per wave *)
  h_lease : float;         (** directory lease, seconds *)
  h_converge_bound : float;(** per-phase view-convergence budget *)
  h_check_every : float;   (** convergence poll slice *)
  h_nak_ceiling : int;     (** whole-run [nak.retransmits] budget *)
}

val default_config : config
(** The M4 acceptance shape: 1000 endpoints in 32 sub-groups, 3 waves
    churning the youngest quarter, seed 7. *)

val ci_config : config
(** The bounded CI shape: 256 endpoints in 8 sub-groups, 2 waves. *)

type wave_report = {
  w_index : int;
  w_kind : string;          (** ["leave"] or ["rejoin"] *)
  w_members : int;          (** members churned in this phase *)
  w_converge : float option;(** virtual seconds to convergence; [None]
                                = bound exceeded *)
}

type report = {
  r_name : string;
  r_endpoints : int;
  r_subgroups : int;
  r_sockets : int;          (** the shared-socket grid width *)
  r_setup_converge : float option;
  r_waves : wave_report list;
  r_parent_casts : int;     (** deliveries expected per representative *)
  r_parent_delivered : int list;
  r_nak_retransmits : int;
  r_unknown_gid : int;      (** in-flight frames for just-left gids *)
  r_dir_versions : (int * int) list;
  r_dir_match : bool;       (** directory == union of installed views *)
  r_dir_notifies : int;
  r_dir_evictions : int;    (** graceful churn: should stay 0 *)
  r_violations : string list;
  r_elapsed : float;        (** virtual seconds *)
  r_fingerprint : int64;    (** FNV-1a over the canonical report JSON *)
}

val run : config -> report
(** Execute the soak; raises [Invalid_argument] on a config whose grid
    cannot host the representatives on distinct sockets. *)

val ok : report -> bool
(** No violations. *)

val to_json : report -> Horus_obs.Json.t
val to_string : report -> string
