(** Bounded systematic exploration of dispatch schedules.

    Enumerates the Engine chooser's choice tree for one scenario by
    stateless depth-bounded DFS (re-running the deterministic scenario
    per prefix; choice 0 past the prefix), then seeded random walks
    past the bound. Stops at the first invariant violation and returns
    the failing scenario with its schedule made concrete, ready for
    {!Shrink} and {!Repro}. *)

type config = {
  horizon : float;     (** chooser window, seconds *)
  width : int;         (** max candidates per choice point *)
  from_time : float;   (** chooser active from traffic start + this *)
  depth : int;         (** branch only in the first [depth] choice points *)
  max_runs : int;
  random_walks : int;  (** seeded walks after the DFS *)
  walk_seed : int;
}

val default_config : config

type stats = {
  runs : int;
  distinct : int;   (** distinct outcome fingerprints seen *)
  truncated : bool; (** stopped by [max_runs] *)
}

type outcome = {
  found : (Scenario.t * Runner.result) option;
  stats : stats;
}

val explore :
  ?config:config -> ?skip_inert:bool -> ?fastpath:bool -> Scenario.t -> outcome
(** Any [sched] already on the scenario is replaced by the explorer's.
    [fastpath] runs every schedule with the fused fast path enabled;
    outcomes (and so [stats.distinct]) must match a plain exploration
    — asserted by test/test_fastpath.ml. *)
