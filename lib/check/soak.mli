(** Invariant-checked soak runs: a long chaos-transport run with the
    shared invariants checked continuously while traffic flows.

    A {!config} expands deterministically into a {!Scenario} (chaos
    profile, round-robin cast schedule) executed by the ordinary
    {!Runner} — a failing soak saves an ordinary repro file, a passing
    soak replays bit-for-bit from (config, seed). During the run a
    slice timer checks the prefix-safe invariants (view agreement,
    per-origin FIFO, delivery-in-view) on live snapshots; the
    quiescence-dependent invariants run once at the end through
    {!Invariant.standard}. *)

type config = {
  c_name : string;      (** scenario/repro name *)
  c_spec : string;      (** stack spec, top first *)
  c_n : int;            (** members *)
  c_seed : int;         (** world + chaos seed *)
  c_profile : Horus_transport.Chaos.profile;
  c_latency : float;    (** loopback hub latency, seconds *)
  c_casts : int;        (** cast budget, round-robin across members *)
  c_cast_period : float;(** gap between consecutive casts, seconds *)
  c_duration : float;   (** cap on the traffic phase; 0 = budget only *)
  c_check_every : float;(** online check slice, seconds; 0 = end only *)
  c_settle : float;     (** settle before traffic *)
  c_quiesce : float;    (** drain time after the last cast *)
  c_churn : int;
      (** membership churn: this many members leave gracefully and the
          same number of {e distinct} members join late, interleaved
          across the traffic span; casts come from the stable core
          only. Requires [2 * c_churn < c_n]. Leavers never return:
          pair lanes survive view changes by design, so a comeback
          would need a fresh endpoint incarnation, which the flat
          scenario member array cannot express. 0 = no churn. *)
}

val default_config : config
(** 4 members, the section-7 stack, 1000 casts at 5 ms, quiet chaos
    profile, 250 ms check slices. *)

val scenario_of_config : config -> Scenario.t
(** The deterministic expansion; raises [Invalid_argument] on a
    non-positive member count or cast period, or a churn count with no
    stable core. With churn the runner (and the online slices) hold
    the run to the churn-safe invariant set: gap-free-prefix and
    completeness invariants assume every member saw the stream from
    cast 0, which a late joiner by design did not. *)

type report = {
  rp_scenario : Scenario.t;
  rp_casts : int;
  rp_checks : int;
  rp_online : (float * Invariant.violation) list;
      (** first failing slice's violations, with virtual check time *)
  rp_final : Invariant.violation list;
  rp_outcome_fingerprint : int64;
  rp_metrics_fingerprint : int64;
      (** FNV-1a of the end-of-run metrics image — byte-stable across
          two runs of the same config *)
  rp_metrics : Horus_obs.Json.t;
  rp_elapsed : float;  (** virtual seconds *)
  rp_repro : string option;
      (** where the repro was saved, when the run failed and a
          directory was configured *)
}

val run : ?repro_dir:string -> ?skip_inert:bool -> ?fastpath:bool -> config -> report
(** Execute the soak. On violation a repro file (with
    [expect_violation] set) is saved to [repro_dir] (default:
    [$HORUS_REPRO_DIR], best-effort). *)

val ok : report -> bool
(** No online or final violations. *)

val to_json : report -> Horus_obs.Json.t
val to_string : report -> string
