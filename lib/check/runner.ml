(* Execute a Scenario against the production stack in a fresh world.

   One scenario, one world: staggered joins, a settle period, then the
   traffic and fault schedules relative to a common origin t0, with
   the Engine chooser installed when the scenario carries a dispatch
   schedule. The run is a pure function of the scenario, so the
   explorer, the shrinker, the replayer and the test suite all go
   through here. *)

open Horus

let tag = 'o'

type result = {
  r_scenario : Scenario.t;
  r_obs : Invariant.obs list;
  r_violations : Invariant.violation list;
  r_choice_points : int;   (* choice points hit (>= 2 candidates) *)
  r_arities : int list;    (* arity of each choice point, oldest first *)
  r_taken : int list;      (* decision made at each choice point *)
}

let sent_of scenario member =
  List.length (List.filter (fun o -> o.Scenario.op_member = member) scenario.Scenario.ops)

(* Per-member recorder, attached after settle (so recorded views are
   the ones traffic runs in). *)
type recorder = {
  mutable rec_casts : (string * int) list;          (* newest first *)
  mutable rec_views : ((int * int) * int list) list; (* newest first *)
}

let attach gr =
  let r = { rec_casts = []; rec_views = [] } in
  Group.set_on_up gr (fun ev ->
      match ev with
      | Event.U_cast (_, m, _) ->
        let epoch = match Group.view gr with Some v -> View.ltime v | None -> -1 in
        r.rec_casts <- (Msg.to_string m, epoch) :: r.rec_casts
      | Event.U_view v ->
        r.rec_views <-
          ( (View.ltime v, Addr.endpoint_id (View.coordinator v)),
            List.map Addr.endpoint_id (View.members v) )
          :: r.rec_views
      | _ -> ());
  r

let spec_is_total spec =
  List.exists (fun l -> l.Horus_hcpi.Spec.name = "TOTAL") (Horus_hcpi.Spec.parse spec)

let spec_has_membership spec =
  List.exists
    (fun l -> l.Horus_hcpi.Spec.name = "MBRSHIP" || l.Horus_hcpi.Spec.name = "BMS")
    (Horus_hcpi.Spec.parse spec)

(* With a chaos section, the run goes over the real-transport waist
   instead of the simulator net: every member gets a loopback backend
   (latency from the scenario's net section) wrapped by one shared
   Chaos controller seeded from the scenario seed — the same frames,
   codec and fault decisions a deployment would see, still in virtual
   time. Partition/Heal faults turn into chaos-level one-way blocks;
   link-latency overrides and Net schedule choosers do not apply. *)
type fabric = {
  fb_endpoint : int -> Endpoint.t;          (* member index -> endpoint *)
  fb_partition : int list list -> unit;
  fb_heal : unit -> unit;
  fb_crash : int -> unit;                   (* crash aftermath at the waist *)
}

let sim_fabric world spec =
  { fb_endpoint = (fun _ -> Endpoint.create world ~spec);
    fb_partition =
      (fun nodes ->
         (* member indices are resolved to node ids by the caller *)
         Horus_sim.Net.partition (World.net world) nodes);
    fb_heal = (fun () -> Horus_sim.Net.heal (World.net world));
    fb_crash = (fun _ -> ()) }

let chaos_fabric world spec n seed (profile : Horus_transport.Chaos.profile) latency =
  let module T = Horus_transport in
  let hub = T.Loopback.hub ~latency (World.engine world) in
  let link = Transport_link.create world in
  let peers = T.Peers.create () in
  let backends =
    Array.init n (fun r ->
        let b = T.Loopback.create ~addr:(Printf.sprintf "mem:%d" r) hub in
        T.Peers.add peers ~rank:r ~addr:b.T.Backend.local_addr;
        b)
  in
  let chaos = T.Chaos.create ~engine:(World.engine world) ~peers ~seed profile in
  World.add_metrics_exporter world (fun m -> T.Chaos.export_metrics chaos m);
  let endpoints =
    Array.mapi
      (fun r backend ->
         Transport_link.endpoint link ~backend:(T.Chaos.wrap ~rank:r chaos backend)
           ~peers ~rank:r ~spec)
      backends
  in
  let block_groups groups =
    (* Same semantics as Net.partition: listed groups are isolated
       from each other and from the unlisted rest, both directions. *)
    let grp = Array.make n (-1) in
    List.iteri (fun gi ms -> List.iter (fun m -> grp.(m) <- gi) ms) groups;
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j && grp.(i) <> grp.(j) then
          T.Chaos.block chaos ~from_rank:i ~to_rank:j
      done
    done
  in
  { fb_endpoint = (fun r -> endpoints.(r));
    fb_partition =
      (fun groups ->
         T.Chaos.heal chaos;
         block_groups groups);
    fb_heal = (fun () -> T.Chaos.heal chaos);
    fb_crash =
      (* A crashed rank is blocked at the waist permanently: senders
         drop its frames on the spot instead of delivering them to a
         socket that no longer hosts it. *)
      (fun r -> T.Peers.block peers ~rank:r) }

let run ?(skip_inert = false) ?(fastpath = false) ?observe (sc : Scenario.t) =
  let world =
    World.create ~config:(Scenario.net_config sc.Scenario.net) ~seed:sc.Scenario.seed ()
  in
  let fabric =
    match sc.Scenario.chaos with
    | None -> sim_fabric world sc.Scenario.spec
    | Some p ->
      chaos_fabric world sc.Scenario.spec sc.Scenario.n sc.Scenario.seed p
        sc.Scenario.net.Scenario.latency
  in
  let n = sc.Scenario.n in
  (* Members with a Join fault sit out the initial wave and join at
     their fault time — the churn ingredient. Endpoints are cached per
     member so fault handlers can name a member's address before (or
     without) its join; for scenarios without Join faults the creation
     points are exactly the historical ones, keeping old fingerprints
     stable. *)
  let late = Scenario.late_members sc in
  let ep_cache : Endpoint.t option array = Array.make n None in
  let endpoint_of i =
    match ep_cache.(i) with
    | Some e -> e
    | None ->
      let e = fabric.fb_endpoint i in
      ep_cache.(i) <- Some e;
      e
  in
  let g = World.fresh_group_addr world in
  let members : Group.t option array = Array.make n None in
  let recorders : recorder option array = Array.make n None in
  let founder = Group.join ~skip_inert ~fastpath (endpoint_of 0) g in
  members.(0) <- Some founder;
  World.run_for world ~duration:sc.Scenario.join_spacing;
  for i = 1 to n - 1 do
    if not (List.mem i late) then begin
      members.(i) <-
        Some
          (Group.join ~skip_inert ~fastpath ~contact:(Group.addr founder)
             (endpoint_of i) g);
      World.run_for world ~duration:sc.Scenario.join_spacing
    end
  done;
  let joined () =
    List.filter_map (fun m -> m) (Array.to_list members)
  in
  (* Stacks without a membership layer never install destination
     views, so casts would have nowhere to go: give every member the
     full group as a hand-installed ltime-0 view, the same way an
     application embedding a bare reliable stack would. Installed
     before the recorders attach, so o_views stays a record of
     protocol-installed views only. *)
  if not (spec_has_membership sc.Scenario.spec) then begin
    let v =
      View.create ~group:g ~ltime:0
        ~members:(List.sort Addr.compare_endpoint (List.map Group.addr (joined ())))
    in
    List.iter (fun m -> Group.install_view m v) (joined ())
  end;
  World.run_for world ~duration:sc.Scenario.settle;
  Array.iteri
    (fun i gr -> match gr with Some gr -> recorders.(i) <- Some (attach gr) | None -> ())
    members;
  (* Everything below is relative to t0, the traffic origin. *)
  let t0 = World.now world in
  (* Per-link latency overrides (the Figure 2 ingredient: a crashed
     member's copies slowed towards some members, not others). *)
  let node m = Addr.endpoint_id (Endpoint.addr (endpoint_of m)) in
  List.iter
    (fun (s, d, lat) ->
       Horus_sim.Net.set_link_latency (World.net world) ~src:(node s) ~dst:(node d)
         (Some lat))
    sc.Scenario.links;
  (* Traffic: member i's k-th op (by time, ties by list order) casts
     the canonical payload, so shrinking ops never forges gaps. *)
  let per_member = Array.make sc.Scenario.n [] in
  List.iter
    (fun o ->
       per_member.(o.Scenario.op_member) <-
         (o.Scenario.op_at, o.Scenario.op_pad) :: per_member.(o.Scenario.op_member))
    sc.Scenario.ops;
  Array.iteri
    (fun i ats ->
       List.iteri
         (fun k (at, pad) ->
            World.at world ~time:(t0 +. at) (fun () ->
                match members.(i) with
                | Some gr -> Group.cast gr (Invariant.payload ~pad ~tag ~origin:i ~k ())
                | None -> ()  (* not (yet) joined: the op is a no-op *)))
         (List.sort (fun (a, _) (b, _) -> Float.compare a b) (List.rev ats)))
    per_member;
  (* Faults. *)
  List.iter
    (fun f ->
       World.at world ~time:(t0 +. f.Scenario.f_at) (fun () ->
           match f.Scenario.f_fault with
           | Scenario.Crash m ->
             Endpoint.crash (endpoint_of m);
             fabric.fb_crash m
           | Scenario.Leave m ->
             (match members.(m) with Some gr -> Group.leave gr | None -> ())
           | Scenario.Join m ->
             (* Late (or re-) join: only when the member holds no live
                group handle — an un-exited handle still owns the gid
                route, so the fault is a deterministic no-op then. *)
             let joinable =
               match members.(m) with
               | None -> true
               | Some gr -> Group.exited gr
             in
             if joinable && not (Endpoint.is_crashed (endpoint_of m)) then begin
               let gr =
                 Group.join ~skip_inert ~fastpath ~contact:(Group.addr founder)
                   (endpoint_of m) g
               in
               members.(m) <- Some gr;
               recorders.(m) <- Some (attach gr)
             end
           | Scenario.Suspect (a, b) ->
             (match members.(a) with
              | Some gr -> Group.suspect gr [ Endpoint.addr (endpoint_of b) ]
              | None -> ())
           | Scenario.Partition groups ->
             (* Node ids: the simulator net keys on them; under chaos
                the endpoints are pinned at their ranks, so the two
                coincide with member indices there. *)
             fabric.fb_partition
               (List.map (List.map (fun m -> node m)) groups)
           | Scenario.Heal -> fabric.fb_heal ()))
    sc.Scenario.faults;
  (* Dispatch schedule: replay the choice prefix, then default-0 (or a
     seeded walk). Record every choice point's arity and decision so
     explorer runs convert into concrete, replayable prefixes. *)
  let arities = ref [] and taken = ref [] and remaining = ref [] and walk = ref None in
  (match sc.Scenario.sched with
   | None -> ()
   | Some s ->
     remaining := s.Scenario.s_choices;
     walk := Option.map Horus_util.Prng.create s.Scenario.s_walk;
     Horus_sim.Engine.set_chooser ~horizon:s.Scenario.s_horizon ~width:s.Scenario.s_width
       ~from:(t0 +. s.Scenario.s_from) (World.engine world)
       (fun ~now:_ cands ->
          let arity = Array.length cands in
          let choice =
            match !remaining with
            | c :: rest ->
              remaining := rest;
              if c >= 0 && c < arity then c else 0
            | [] ->
              (match !walk with
               | Some prng -> Horus_util.Prng.int prng arity
               | None -> 0)
          in
          arities := arity :: !arities;
          taken := choice :: !taken;
          choice));
  let crashed = Scenario.crashed_members sc and left = Scenario.left_members sc in
  (* Observations as of now — callable mid-run (the soak harness
     checks prefix-safe invariants on live snapshots) and once more
     after the run for the final verdict. *)
  let snapshot () =
    List.init sc.Scenario.n (fun i ->
        match members.(i) with
        | None ->
          (* Never joined (a Join fault still pending, or shrunk
             away): not a survivor, nothing observed. *)
          { Invariant.o_member = i;
            o_eid = -1;
            o_crashed = List.mem i crashed;
            o_left = true;
            o_exited = false;
            o_casts = [];
            o_views = [];
            o_final = None }
        | Some gr ->
          let r =
            match recorders.(i) with
            | Some r -> r
            | None -> { rec_casts = []; rec_views = [] }
          in
          { Invariant.o_member = i;
            o_eid = Addr.endpoint_id (Group.addr gr);
            o_crashed = List.mem i crashed;
            o_left = List.mem i left;
            o_exited = Group.exited gr;
            o_casts = List.rev r.rec_casts;
            o_views = List.rev r.rec_views;
            o_final =
              (match Group.view gr with
               | Some v ->
                 Some (View.ltime v, List.map Addr.endpoint_id (View.members v))
               | None -> None) })
  in
  (match observe with Some f -> f world snapshot | None -> ());
  World.run_for world ~duration:sc.Scenario.run_for;
  if Sys.getenv_opt "HORUS_DEBUG_DUMP" <> None then
    Array.iteri
      (fun i gr ->
         match gr with
         | Some gr ->
           Printf.eprintf "=== member %d ===\n" i;
           List.iter (fun l -> Printf.eprintf "  %s\n" l) (Group.dump gr)
         | None -> Printf.eprintf "=== member %d === (never joined)\n" i)
      members;
  Horus_sim.Engine.clear_chooser (World.engine world);
  let obs = snapshot () in
  (* Churn scenarios (any Join fault) are held to the churn-safe
     slice: gap-free-prefix and identical-multiset invariants assume
     every member saw the stream from cast 0, which a late joiner by
     design did not. View agreement, final agreement and
     delivery-in-view remain exact under churn. *)
  let violations =
    if late <> [] then
      Invariant.view_agreement obs
      @ Invariant.final_view_agreement obs
      @ Invariant.delivery_in_view ~tag obs
    else
      Invariant.standard
        ~total:(spec_is_total sc.Scenario.spec)
        ~tag ~sent:(sent_of sc) obs
  in
  { r_scenario = sc;
    r_obs = obs;
    r_violations = violations;
    r_choice_points = List.length !arities;
    r_arities = List.rev !arities;
    r_taken = List.rev !taken }

let failed r = r.r_violations <> []

(* A deterministic JSON image of the run: scenario, per-member
   observations, violations. Two runs of the same scenario serialize
   byte-identically — the replay command's determinism check. *)
let obs_json o =
  let module J = Horus_obs.Json in
    J.Obj
      [ ("member", J.Int o.Invariant.o_member);
        ("eid", J.Int o.Invariant.o_eid);
        ("crashed", J.Bool o.Invariant.o_crashed);
        ("left", J.Bool o.Invariant.o_left);
        ("exited", J.Bool o.Invariant.o_exited);
        ( "casts",
          J.List
            (List.map
               (fun (p, e) -> J.Obj [ ("payload", J.String p); ("epoch", J.Int e) ])
               o.Invariant.o_casts) );
        ( "views",
          J.List
            (List.map
               (fun ((ltime, coord), ms) ->
                  J.Obj
                    [ ("ltime", J.Int ltime);
                      ("coord", J.Int coord);
                      ("members", J.List (List.map (fun m -> J.Int m) ms)) ])
               o.Invariant.o_views) );
        ( "final",
          match o.Invariant.o_final with
          | None -> J.Null
          | Some (ltime, ms) ->
            J.Obj
              [ ("ltime", J.Int ltime);
                ("members", J.List (List.map (fun m -> J.Int m) ms)) ] ) ]

(* The behaviour the run exhibited, independent of how the schedule
   was specified (choices vs walk): what every member observed, and
   which invariants broke. This is what the explorer fingerprints. *)
let outcome_json r =
  let module J = Horus_obs.Json in
  J.Obj
    [ ("violations", Invariant.to_json r.r_violations);
      ("obs", J.List (List.map obs_json r.r_obs)) ]

let to_json r =
  let module J = Horus_obs.Json in
  J.Obj
    [ ("scenario", Scenario.to_json r.r_scenario);
      ("choice_points", J.Int r.r_choice_points);
      ("arities", J.List (List.map (fun a -> J.Int a) r.r_arities));
      ("taken", J.List (List.map (fun c -> J.Int c) r.r_taken));
      ("violations", Invariant.to_json r.r_violations);
      ("obs", J.List (List.map obs_json r.r_obs)) ]

let to_string r = Horus_obs.Json.to_string ~indent:true (to_json r)

(* FNV-1a over the canonical outcome JSON: a cheap fingerprint for the
   explorer's distinct-outcome statistics. *)
let fingerprint r =
  let s = Horus_obs.Json.to_string ~indent:false (outcome_json r) in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
       h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h
