(* Execute a Scenario against the production stack in a fresh world.

   One scenario, one world: staggered joins, a settle period, then the
   traffic and fault schedules relative to a common origin t0, with
   the Engine chooser installed when the scenario carries a dispatch
   schedule. The run is a pure function of the scenario, so the
   explorer, the shrinker, the replayer and the test suite all go
   through here. *)

open Horus

let tag = 'o'

type result = {
  r_scenario : Scenario.t;
  r_obs : Invariant.obs list;
  r_violations : Invariant.violation list;
  r_choice_points : int;   (* choice points hit (>= 2 candidates) *)
  r_arities : int list;    (* arity of each choice point, oldest first *)
  r_taken : int list;      (* decision made at each choice point *)
}

let sent_of scenario member =
  List.length (List.filter (fun o -> o.Scenario.op_member = member) scenario.Scenario.ops)

(* Per-member recorder, attached after settle (so recorded views are
   the ones traffic runs in). *)
type recorder = {
  mutable rec_casts : (string * int) list;          (* newest first *)
  mutable rec_views : ((int * int) * int list) list; (* newest first *)
}

let attach gr =
  let r = { rec_casts = []; rec_views = [] } in
  Group.set_on_up gr (fun ev ->
      match ev with
      | Event.U_cast (_, m, _) ->
        let epoch = match Group.view gr with Some v -> View.ltime v | None -> -1 in
        r.rec_casts <- (Msg.to_string m, epoch) :: r.rec_casts
      | Event.U_view v ->
        r.rec_views <-
          ( (View.ltime v, Addr.endpoint_id (View.coordinator v)),
            List.map Addr.endpoint_id (View.members v) )
          :: r.rec_views
      | _ -> ());
  r

let spec_is_total spec =
  List.exists (fun l -> l.Horus_hcpi.Spec.name = "TOTAL") (Horus_hcpi.Spec.parse spec)

let run ?(skip_inert = false) (sc : Scenario.t) =
  let world =
    World.create ~config:(Scenario.net_config sc.Scenario.net) ~seed:sc.Scenario.seed ()
  in
  let g = World.fresh_group_addr world in
  let founder = Group.join ~skip_inert (Endpoint.create world ~spec:sc.Scenario.spec) g in
  World.run_for world ~duration:sc.Scenario.join_spacing;
  let rest =
    List.init (sc.Scenario.n - 1) (fun _ ->
        let m =
          Group.join ~skip_inert ~contact:(Group.addr founder)
            (Endpoint.create world ~spec:sc.Scenario.spec)
            g
        in
        World.run_for world ~duration:sc.Scenario.join_spacing;
        m)
  in
  let members = Array.of_list (founder :: rest) in
  World.run_for world ~duration:sc.Scenario.settle;
  let recorders = Array.map attach members in
  (* Everything below is relative to t0, the traffic origin. *)
  let t0 = World.now world in
  (* Per-link latency overrides (the Figure 2 ingredient: a crashed
     member's copies slowed towards some members, not others). *)
  let node m = Addr.endpoint_id (Group.addr members.(m)) in
  List.iter
    (fun (s, d, lat) ->
       Horus_sim.Net.set_link_latency (World.net world) ~src:(node s) ~dst:(node d)
         (Some lat))
    sc.Scenario.links;
  (* Traffic: member i's k-th op (by time, ties by list order) casts
     the canonical payload, so shrinking ops never forges gaps. *)
  let per_member = Array.make sc.Scenario.n [] in
  List.iter
    (fun o ->
       per_member.(o.Scenario.op_member) <-
         o.Scenario.op_at :: per_member.(o.Scenario.op_member))
    sc.Scenario.ops;
  Array.iteri
    (fun i ats ->
       List.iteri
         (fun k at ->
            World.at world ~time:(t0 +. at) (fun () ->
                Group.cast members.(i) (Invariant.payload ~tag ~origin:i ~k)))
         (List.sort Float.compare (List.rev ats)))
    per_member;
  (* Faults. *)
  List.iter
    (fun f ->
       World.at world ~time:(t0 +. f.Scenario.f_at) (fun () ->
           match f.Scenario.f_fault with
           | Scenario.Crash m -> Endpoint.crash (Group.endpoint members.(m))
           | Scenario.Leave m -> Group.leave members.(m)
           | Scenario.Suspect (a, b) ->
             Group.suspect members.(a) [ Group.addr members.(b) ]
           | Scenario.Partition groups ->
             let nodes =
               List.map
                 (List.map (fun m -> Addr.endpoint_id (Group.addr members.(m))))
                 groups
             in
             Horus_sim.Net.partition (World.net world) nodes
           | Scenario.Heal -> Horus_sim.Net.heal (World.net world)))
    sc.Scenario.faults;
  (* Dispatch schedule: replay the choice prefix, then default-0 (or a
     seeded walk). Record every choice point's arity and decision so
     explorer runs convert into concrete, replayable prefixes. *)
  let arities = ref [] and taken = ref [] and remaining = ref [] and walk = ref None in
  (match sc.Scenario.sched with
   | None -> ()
   | Some s ->
     remaining := s.Scenario.s_choices;
     walk := Option.map Horus_util.Prng.create s.Scenario.s_walk;
     Horus_sim.Engine.set_chooser ~horizon:s.Scenario.s_horizon ~width:s.Scenario.s_width
       ~from:(t0 +. s.Scenario.s_from) (World.engine world)
       (fun ~now:_ cands ->
          let arity = Array.length cands in
          let choice =
            match !remaining with
            | c :: rest ->
              remaining := rest;
              if c >= 0 && c < arity then c else 0
            | [] ->
              (match !walk with
               | Some prng -> Horus_util.Prng.int prng arity
               | None -> 0)
          in
          arities := arity :: !arities;
          taken := choice :: !taken;
          choice));
  World.run_for world ~duration:sc.Scenario.run_for;
  Horus_sim.Engine.clear_chooser (World.engine world);
  let crashed = Scenario.crashed_members sc and left = Scenario.left_members sc in
  let obs =
    List.init sc.Scenario.n (fun i ->
        let gr = members.(i) and r = recorders.(i) in
        { Invariant.o_member = i;
          o_eid = Addr.endpoint_id (Group.addr gr);
          o_crashed = List.mem i crashed;
          o_left = List.mem i left;
          o_exited = Group.exited gr;
          o_casts = List.rev r.rec_casts;
          o_views = List.rev r.rec_views;
          o_final =
            (match Group.view gr with
             | Some v -> Some (View.ltime v, List.map Addr.endpoint_id (View.members v))
             | None -> None) })
  in
  let violations =
    Invariant.standard
      ~total:(spec_is_total sc.Scenario.spec)
      ~tag ~sent:(sent_of sc) obs
  in
  { r_scenario = sc;
    r_obs = obs;
    r_violations = violations;
    r_choice_points = List.length !arities;
    r_arities = List.rev !arities;
    r_taken = List.rev !taken }

let failed r = r.r_violations <> []

(* A deterministic JSON image of the run: scenario, per-member
   observations, violations. Two runs of the same scenario serialize
   byte-identically — the replay command's determinism check. *)
let obs_json o =
  let module J = Horus_obs.Json in
    J.Obj
      [ ("member", J.Int o.Invariant.o_member);
        ("eid", J.Int o.Invariant.o_eid);
        ("crashed", J.Bool o.Invariant.o_crashed);
        ("left", J.Bool o.Invariant.o_left);
        ("exited", J.Bool o.Invariant.o_exited);
        ( "casts",
          J.List
            (List.map
               (fun (p, e) -> J.Obj [ ("payload", J.String p); ("epoch", J.Int e) ])
               o.Invariant.o_casts) );
        ( "views",
          J.List
            (List.map
               (fun ((ltime, coord), ms) ->
                  J.Obj
                    [ ("ltime", J.Int ltime);
                      ("coord", J.Int coord);
                      ("members", J.List (List.map (fun m -> J.Int m) ms)) ])
               o.Invariant.o_views) );
        ( "final",
          match o.Invariant.o_final with
          | None -> J.Null
          | Some (ltime, ms) ->
            J.Obj
              [ ("ltime", J.Int ltime);
                ("members", J.List (List.map (fun m -> J.Int m) ms)) ] ) ]

(* The behaviour the run exhibited, independent of how the schedule
   was specified (choices vs walk): what every member observed, and
   which invariants broke. This is what the explorer fingerprints. *)
let outcome_json r =
  let module J = Horus_obs.Json in
  J.Obj
    [ ("violations", Invariant.to_json r.r_violations);
      ("obs", J.List (List.map obs_json r.r_obs)) ]

let to_json r =
  let module J = Horus_obs.Json in
  J.Obj
    [ ("scenario", Scenario.to_json r.r_scenario);
      ("choice_points", J.Int r.r_choice_points);
      ("arities", J.List (List.map (fun a -> J.Int a) r.r_arities));
      ("taken", J.List (List.map (fun c -> J.Int c) r.r_taken));
      ("violations", Invariant.to_json r.r_violations);
      ("obs", J.List (List.map obs_json r.r_obs)) ]

let to_string r = Horus_obs.Json.to_string ~indent:true (to_json r)

(* FNV-1a over the canonical outcome JSON: a cheap fingerprint for the
   explorer's distinct-outcome statistics. *)
let fingerprint r =
  let s = Horus_obs.Json.to_string ~indent:false (outcome_json r) in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
       h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h
