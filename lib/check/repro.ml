(* Repro files: scenarios on disk.

   A repro file is a Scenario serialized as "horus-repro/1" JSON. The
   fuzzer writes one when a shrunk counterexample survives, `horus_info
   replay` re-executes one, and the test suite auto-loads everything
   under test/repros/ so a bug, once caught, stays caught. *)

let env_dir_var = "HORUS_REPRO_DIR"

let env_dir () =
  match Sys.getenv_opt env_dir_var with
  | Some d when d <> "" -> Some d
  | _ -> None

let sanitize name =
  String.map
    (fun c ->
       match c with
       | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
       | _ -> '-')
    (if name = "" then "scenario" else name)

let save ?dir (sc : Scenario.t) =
  match (dir, env_dir ()) with
  | None, None -> None
  | Some d, _ | None, Some d ->
    (try
       if not (Sys.file_exists d) then Unix.mkdir d 0o755;
       let path = Filename.concat d (sanitize sc.Scenario.name ^ ".json") in
       let oc = open_out path in
       output_string oc (Scenario.to_string sc);
       output_char oc '\n';
       close_out oc;
       Some path
     with Sys_error _ | Unix.Unix_error _ -> None)

let load path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error e -> Error e
  | s -> Scenario.of_string s

let load_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
    |> List.map (fun f ->
        let path = Filename.concat dir f in
        (path, load path))
