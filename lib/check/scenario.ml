(* A scenario: one complete, self-contained description of a group
   test run against the production stack — the stack spec, the group
   size, the network adversary, a traffic schedule, a fault schedule,
   and (optionally) a dispatch schedule for the Engine chooser. A
   scenario plus this repository's code is a deterministic function:
   running it twice produces byte-identical results. That is what
   makes scenarios usable as counterexamples, shrinkable, and
   serializable to repro files (see Repro). *)

module Json = Horus_obs.Json

type net = {
  latency : float;
  jitter : float;
  drop : float;
  duplicate : float;
  garble : float;
  mtu : int;
}

let default_net =
  let c = Horus_sim.Net.default_config in
  { latency = c.Horus_sim.Net.latency;
    jitter = c.Horus_sim.Net.jitter;
    drop = c.Horus_sim.Net.drop_prob;
    duplicate = c.Horus_sim.Net.duplicate_prob;
    garble = c.Horus_sim.Net.garble_prob;
    mtu = c.Horus_sim.Net.mtu }

let net_config n =
  { Horus_sim.Net.latency = n.latency;
    jitter = n.jitter;
    drop_prob = n.drop;
    duplicate_prob = n.duplicate;
    garble_prob = n.garble;
    mtu = n.mtu }

type fault =
  | Crash of int
  | Leave of int
  | Join of int
      (* churn: the member sits out the initial join wave and joins
         (contacting member 0) at the fault time instead *)
  | Suspect of int * int
  | Partition of int list list
  | Heal

type timed_fault = {
  f_at : float;
  f_fault : fault;
}

type op = {
  op_member : int;
  op_at : float;
  op_pad : int;  (* extra payload bytes past the canonical form; 0 = none *)
}

type sched = {
  s_horizon : float;
  s_width : int;
  s_from : float;
  s_choices : int list;
  s_walk : int option;
}

let default_sched =
  { s_horizon = 0.002; s_width = 4; s_from = 0.0; s_choices = []; s_walk = None }

type t = {
  name : string;
  spec : string;
  n : int;
  seed : int;
  net : net;
  chaos : Horus_transport.Chaos.profile option;
  links : (int * int * float) list;
  join_spacing : float;
  settle : float;
  ops : op list;
  faults : timed_fault list;
  run_for : float;
  sched : sched option;
  expect_violation : bool;
}

let make ?(name = "scenario") ?(seed = 1) ?(net = default_net) ?chaos ?(links = [])
    ?(join_spacing = 0.4) ?(settle = 2.0) ?(ops = []) ?(faults = []) ?(run_for = 10.0)
    ?sched ?(expect_violation = false) ~spec ~n () =
  if n < 1 then invalid_arg "Scenario.make: n must be >= 1";
  { name; spec; n; seed; net; chaos; links; join_spacing; settle; ops; faults; run_for;
    sched; expect_violation }

(* Member indices a fault mentions. *)
let fault_members = function
  | Crash m | Leave m | Join m -> [ m ]
  | Suspect (a, b) -> [ a; b ]
  | Partition groups -> List.concat groups
  | Heal -> []

let crashed_members t =
  List.filter_map
    (fun f -> match f.f_fault with Crash m -> Some m | _ -> None)
    t.faults

let left_members t =
  List.filter_map
    (fun f -> match f.f_fault with Leave m -> Some m | _ -> None)
    t.faults

let late_members t =
  List.sort_uniq compare
    (List.filter_map
       (fun f -> match f.f_fault with Join m -> Some m | _ -> None)
       t.faults)

(* --- JSON (schema "horus-repro/1") --- *)

let schema = "horus-repro/1"

let fault_to_json = function
  | Crash m -> Json.Obj [ ("kind", Json.String "crash"); ("member", Json.Int m) ]
  | Leave m -> Json.Obj [ ("kind", Json.String "leave"); ("member", Json.Int m) ]
  | Join m -> Json.Obj [ ("kind", Json.String "join"); ("member", Json.Int m) ]
  | Suspect (a, b) ->
    Json.Obj
      [ ("kind", Json.String "suspect"); ("by", Json.Int a); ("member", Json.Int b) ]
  | Partition groups ->
    Json.Obj
      [ ("kind", Json.String "partition");
        ("groups",
         Json.List (List.map (fun g -> Json.List (List.map (fun m -> Json.Int m) g)) groups))
      ]
  | Heal -> Json.Obj [ ("kind", Json.String "heal") ]

let to_json t =
  let net =
    Json.Obj
      [ ("latency", Json.Float t.net.latency);
        ("jitter", Json.Float t.net.jitter);
        ("drop", Json.Float t.net.drop);
        ("duplicate", Json.Float t.net.duplicate);
        ("garble", Json.Float t.net.garble);
        ("mtu", Json.Int t.net.mtu) ]
  in
  let ops =
    Json.List
      (List.map
         (fun o ->
            (* "pad" is emitted only when set, so pre-pad repro files
               round-trip byte-identically. *)
            Json.Obj
              ([ ("member", Json.Int o.op_member); ("at", Json.Float o.op_at) ]
               @ (if o.op_pad > 0 then [ ("pad", Json.Int o.op_pad) ] else [])))
         t.ops)
  in
  let faults =
    Json.List
      (List.map
         (fun f -> Json.Obj [ ("at", Json.Float f.f_at); ("fault", fault_to_json f.f_fault) ])
         t.faults)
  in
  let sched =
    match t.sched with
    | None -> Json.Null
    | Some s ->
      Json.Obj
        [ ("horizon", Json.Float s.s_horizon);
          ("width", Json.Int s.s_width);
          ("from", Json.Float s.s_from);
          ("choices", Json.List (List.map (fun c -> Json.Int c) s.s_choices));
          ("walk", match s.s_walk with Some w -> Json.Int w | None -> Json.Null) ]
  in
  let links =
    Json.List
      (List.map
         (fun (src, dst, lat) ->
            Json.Obj
              [ ("src", Json.Int src); ("dst", Json.Int dst); ("latency", Json.Float lat) ])
         t.links)
  in
  Json.Obj
    [ ("schema", Json.String schema);
      ("name", Json.String t.name);
      ("spec", Json.String t.spec);
      ("n", Json.Int t.n);
      ("seed", Json.Int t.seed);
      ("net", net);
      ( "chaos",
        match t.chaos with
        | None -> Json.Null
        | Some p -> Horus_transport.Chaos.profile_to_json p );
      ("links", links);
      ("join_spacing", Json.Float t.join_spacing);
      ("settle", Json.Float t.settle);
      ("ops", ops);
      ("faults", faults);
      ("run_for", Json.Float t.run_for);
      ("sched", sched);
      ("expect_violation", Json.Bool t.expect_violation) ]

(* Lenient field accessors: a missing optional field takes its
   default, so hand-edited repro files stay loadable. *)
let jfloat ?default name j =
  match Option.bind (Json.member name j) Json.to_float with
  | Some f -> Ok f
  | None ->
    (match default with
     | Some d -> Ok d
     | None -> Error (Printf.sprintf "missing float field %S" name))

let jint ?default name j =
  match Option.bind (Json.member name j) Json.to_int with
  | Some i -> Ok i
  | None ->
    (match default with
     | Some d -> Ok d
     | None -> Error (Printf.sprintf "missing int field %S" name))

let jstring ?default name j =
  match Json.member name j with
  | Some (Json.String s) -> Ok s
  | _ ->
    (match default with
     | Some d -> Ok d
     | None -> Error (Printf.sprintf "missing string field %S" name))

let ( let* ) = Result.bind

let rec collect f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = collect f rest in
    Ok (y :: ys)

let fault_of_json j =
  let* kind = jstring "kind" j in
  match kind with
  | "crash" ->
    let* m = jint "member" j in
    Ok (Crash m)
  | "leave" ->
    let* m = jint "member" j in
    Ok (Leave m)
  | "join" ->
    let* m = jint "member" j in
    Ok (Join m)
  | "suspect" ->
    let* a = jint "by" j in
    let* b = jint "member" j in
    Ok (Suspect (a, b))
  | "partition" ->
    (match Json.member "groups" j with
     | Some (Json.List groups) ->
       let* groups =
         collect
           (function
             | Json.List ms ->
               collect (fun m -> Option.to_result ~none:"bad member id" (Json.to_int m)) ms
             | _ -> Error "partition groups must be lists")
           groups
       in
       Ok (Partition groups)
     | _ -> Error "partition fault needs a groups list")
  | "heal" -> Ok Heal
  | k -> Error (Printf.sprintf "unknown fault kind %S" k)

let of_json j =
  let* schema_got = jstring ~default:schema "schema" j in
  if schema_got <> schema then Error (Printf.sprintf "unsupported schema %S" schema_got)
  else
    let* name = jstring ~default:"scenario" "name" j in
    let* spec = jstring "spec" j in
    let* n = jint "n" j in
    let* seed = jint ~default:1 "seed" j in
    let* net =
      match Json.member "net" j with
      | None | Some Json.Null -> Ok default_net
      | Some nj ->
        let* latency = jfloat ~default:default_net.latency "latency" nj in
        let* jitter = jfloat ~default:default_net.jitter "jitter" nj in
        let* drop = jfloat ~default:default_net.drop "drop" nj in
        let* duplicate = jfloat ~default:default_net.duplicate "duplicate" nj in
        let* garble = jfloat ~default:default_net.garble "garble" nj in
        let* mtu = jint ~default:default_net.mtu "mtu" nj in
        Ok { latency; jitter; drop; duplicate; garble; mtu }
    in
    let* chaos =
      match Json.member "chaos" j with
      | None | Some Json.Null -> Ok None
      | Some cj -> Result.map Option.some (Horus_transport.Chaos.profile_of_json cj)
    in
    let* links =
      match Json.member "links" j with
      | None | Some Json.Null -> Ok []
      | Some (Json.List ls) ->
        collect
          (fun lj ->
             let* src = jint "src" lj in
             let* dst = jint "dst" lj in
             let* lat = jfloat "latency" lj in
             Ok (src, dst, lat))
          ls
      | Some _ -> Error "links must be a list"
    in
    let* join_spacing = jfloat ~default:0.4 "join_spacing" j in
    let* settle = jfloat ~default:2.0 "settle" j in
    let* ops =
      match Json.member "ops" j with
      | None | Some Json.Null -> Ok []
      | Some (Json.List ops) ->
        collect
          (fun oj ->
             let* m = jint "member" oj in
             let* at = jfloat "at" oj in
             let* pad = jint ~default:0 "pad" oj in
             Ok { op_member = m; op_at = at; op_pad = pad })
          ops
      | Some _ -> Error "ops must be a list"
    in
    let* faults =
      match Json.member "faults" j with
      | None | Some Json.Null -> Ok []
      | Some (Json.List fs) ->
        collect
          (fun fj ->
             let* at = jfloat "at" fj in
             let* fault =
               match Json.member "fault" fj with
               | Some f -> fault_of_json f
               | None -> Error "fault entry needs a fault object"
             in
             Ok { f_at = at; f_fault = fault })
          fs
      | Some _ -> Error "faults must be a list"
    in
    let* run_for = jfloat ~default:10.0 "run_for" j in
    let* sched =
      match Json.member "sched" j with
      | None | Some Json.Null -> Ok None
      | Some sj ->
        let* s_horizon = jfloat ~default:default_sched.s_horizon "horizon" sj in
        let* s_width = jint ~default:default_sched.s_width "width" sj in
        let* s_from = jfloat ~default:default_sched.s_from "from" sj in
        let* s_choices =
          match Json.member "choices" sj with
          | None | Some Json.Null -> Ok []
          | Some (Json.List cs) ->
            collect (fun c -> Option.to_result ~none:"bad choice" (Json.to_int c)) cs
          | Some _ -> Error "choices must be a list"
        in
        let s_walk =
          match Json.member "walk" sj with
          | Some (Json.Int w) -> Some w
          | _ -> None
        in
        Ok (Some { s_horizon; s_width; s_from; s_choices; s_walk })
    in
    let* expect_violation =
      match Json.member "expect_violation" j with
      | Some (Json.Bool b) -> Ok b
      | None | Some Json.Null -> Ok false
      | Some _ -> Error "expect_violation must be a bool"
    in
    (* Sanity: member indices in range. *)
    let bad_member m = m < 0 || m >= n in
    if List.exists (fun o -> bad_member o.op_member) ops then
      Error "op references a member index out of range"
    else if List.exists (fun f -> List.exists bad_member (fault_members f.f_fault)) faults
    then Error "fault references a member index out of range"
    else if List.exists (fun (s, d, _) -> bad_member s || bad_member d) links then
      Error "link references a member index out of range"
    else
      Ok
        { name; spec; n; seed; net; chaos; links; join_spacing; settle; ops; faults;
          run_for; sched; expect_violation }

let of_string s =
  match Json.of_string s with
  | Error e -> Error ("repro JSON parse error: " ^ e)
  | Ok j -> of_json j

let to_string t = Json.to_string ~indent:true (to_json t)

let pp_fault fmt = function
  | Crash m -> Format.fprintf fmt "crash %d" m
  | Leave m -> Format.fprintf fmt "leave %d" m
  | Join m -> Format.fprintf fmt "join %d" m
  | Suspect (a, b) -> Format.fprintf fmt "suspect %d->%d" a b
  | Partition groups ->
    Format.fprintf fmt "partition %s"
      (String.concat "|"
         (List.map (fun g -> String.concat "," (List.map string_of_int g)) groups))
  | Heal -> Format.fprintf fmt "heal"

let pp fmt t =
  Format.fprintf fmt "%s: %s n=%d seed=%d ops=%d faults=%d%s%s" t.name t.spec t.n t.seed
    (List.length t.ops) (List.length t.faults)
    (match t.chaos with
     | Some p when not (Horus_transport.Chaos.is_quiet p) -> " chaos"
     | Some _ | None -> "")
    (match t.sched with
     | Some s when s.s_choices <> [] ->
       Printf.sprintf " sched=[%s]" (String.concat ";" (List.map string_of_int s.s_choices))
     | Some { s_walk = Some w; _ } -> Printf.sprintf " walk=%d" w
     | _ -> "")
