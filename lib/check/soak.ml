(* Invariant-checked soak runs: a long chaos-transport run with the
   shared invariants checked continuously while traffic flows, not
   just at the end.

   A soak is configured, not scripted: a stack spec, a member count, a
   chaos profile and a cast budget expand deterministically into a
   Scenario (round-robin casts on a fixed period), which runs through
   the ordinary Runner — so a soak that fails leaves behind a repro
   file any replayer can re-execute, and a soak that passes is exactly
   reproducible from (config, seed). While the run is live, a slice
   timer snapshots every member's observations and checks the
   prefix-safe invariants (view agreement, per-origin FIFO,
   delivery-in-view: true of every prefix of a correct run); the
   completeness-style invariants, which only hold once traffic has
   quiesced, run once at the end via the Runner's standard bundle. *)

module Json = Horus_obs.Json

type config = {
  c_name : string;
  c_spec : string;
  c_n : int;
  c_seed : int;
  c_profile : Horus_transport.Chaos.profile;
  c_latency : float;
  c_casts : int;
  c_cast_period : float;
  c_duration : float;
  c_check_every : float;
  c_settle : float;
  c_quiesce : float;
  c_churn : int;
}

let default_config =
  { c_name = "soak";
    c_spec = "TOTAL:MBRSHIP:FRAG:NAK:COM";
    c_n = 4;
    c_seed = 1;
    c_profile = Horus_transport.Chaos.default;
    c_latency = 0.001;
    c_casts = 1000;
    c_cast_period = 0.005;
    c_duration = 0.0;
    c_check_every = 0.25;
    c_settle = 2.0;
    c_quiesce = 3.0;
    c_churn = 0 }

(* The deterministic expansion: cast i issues from member [i mod n] at
   [i * period], truncated by the duration cap when one is set. The
   scenario IS the soak — emitting it as a repro file reproduces the
   run bit-for-bit (minus the online checks, which never change
   behaviour). *)
let scenario_of_config c =
  if c.c_n < 1 then invalid_arg "Soak: n must be >= 1";
  if c.c_casts < 0 then invalid_arg "Soak: casts must be >= 0";
  if c.c_cast_period <= 0.0 then invalid_arg "Soak: cast_period must be positive";
  if c.c_churn < 0 then invalid_arg "Soak: churn must be >= 0";
  if c.c_churn > 0 && 2 * c.c_churn >= c.c_n then
    invalid_arg "Soak: churn needs a stable core (2 * churn < n)";
  (* With churn, only the stable core casts: the churned identities are
     the last 2*churn member indices (see below), and a leaver's pending
     casts would otherwise race its own departure. *)
  let core = c.c_n - (2 * c.c_churn) in
  let ops =
    List.filter_map
      (fun i ->
         let at = float_of_int i *. c.c_cast_period in
         if c.c_duration > 0.0 && at > c.c_duration then None
         else Some { Scenario.op_member = i mod core; op_at = at; op_pad = 0 })
      (List.init c.c_casts Fun.id)
  in
  let last_at = List.fold_left (fun acc o -> Float.max acc o.Scenario.op_at) 0.0 ops in
  (* Membership churn: [c_churn] members (indices core..core+churn-1)
     leave gracefully and a DISTINCT [c_churn] members (the last churn
     indices) sit out the initial wave and join late, interleaved
     across the traffic span. The two sets never overlap: reliable
     pair lanes deliberately survive view changes, so a returning
     endpoint must be a fresh incarnation — at the scenario level a
     leaver never comes back under the same identity. *)
  let faults =
    if c.c_churn = 0 then []
    else
      let span = Float.max last_at c.c_cast_period in
      let step = span /. float_of_int (c.c_churn + 1) in
      List.concat
        (List.init c.c_churn (fun x ->
             let at = step *. float_of_int (x + 1) in
             [ { Scenario.f_at = at; f_fault = Scenario.Leave (core + x) };
               { Scenario.f_at = at +. (step /. 2.0);
                 f_fault = Scenario.Join (core + c.c_churn + x) } ]))
  in
  Scenario.make ~name:c.c_name ~seed:c.c_seed
    ~net:{ Scenario.default_net with Scenario.latency = c.c_latency }
    ~chaos:c.c_profile ~settle:c.c_settle ~ops ~faults
    ~run_for:(last_at +. c.c_quiesce)
    ~spec:c.c_spec ~n:c.c_n ()

type report = {
  rp_scenario : Scenario.t;
  rp_casts : int;                  (* casts the schedule issued *)
  rp_checks : int;                 (* online slices checked *)
  rp_online : (float * Invariant.violation) list;
      (* first slice's violations, with the virtual time of the check *)
  rp_final : Invariant.violation list;
  rp_outcome_fingerprint : int64;
  rp_metrics_fingerprint : int64;
  rp_metrics : Json.t;
  rp_elapsed : float;              (* virtual seconds, whole run *)
  rp_repro : string option;        (* repro path, when a violation was saved *)
}

let ok r = r.rp_online = [] && r.rp_final = []

(* FNV-1a, same construction as Runner.fingerprint, over an arbitrary
   string — used for the metrics image, whose stability across two
   runs of the same config is the determinism gate. *)
let fnv s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
       h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

(* Under churn, per-origin FIFO is excluded from the online slice: it
   asserts a gap-free prefix from cast 0, which a late joiner misses
   by construction. View agreement (same view id => same membership)
   and delivery-in-view stay exact — same split the Runner applies to
   the final bundle. *)
let prefix_violations ~churn obs =
  Invariant.view_agreement obs
  @ (if churn then [] else Invariant.per_origin_fifo ~tag:Runner.tag obs)
  @ Invariant.delivery_in_view ~tag:Runner.tag obs

let run ?repro_dir ?(skip_inert = false) ?(fastpath = false) c =
  let sc = scenario_of_config c in
  let checks = ref 0 in
  let online = ref [] in
  let metrics = ref Json.Null in
  let elapsed = ref 0.0 in
  let observe world snapshot =
    let t_end = Horus.World.now world +. sc.Scenario.run_for in
    if c.c_check_every > 0.0 then begin
      let rec arm t =
        if t < t_end then
          Horus.World.at world ~time:t (fun () ->
              incr checks;
              if !online = [] then
                online :=
                  List.map
                    (fun v -> (Horus.World.now world, v))
                    (prefix_violations ~churn:(c.c_churn > 0) (snapshot ()));
              arm (t +. c.c_check_every))
      in
      arm (Horus.World.now world +. c.c_check_every)
    end;
    (* The metrics image is read at the very end of the run, from
       inside it: the runner owns the world and does not return it. *)
    Horus.World.at world ~time:t_end (fun () ->
        metrics := Horus.World.metrics_json world;
        elapsed := Horus.World.now world)
  in
  let r = Runner.run ~skip_inert ~fastpath ~observe sc in
  let failed = !online <> [] || r.Runner.r_violations <> [] in
  let repro =
    if failed then Repro.save ?dir:repro_dir { sc with Scenario.expect_violation = true }
    else None
  in
  { rp_scenario = sc;
    rp_casts = List.length sc.Scenario.ops;
    rp_checks = !checks;
    rp_online = !online;
    rp_final = r.Runner.r_violations;
    rp_outcome_fingerprint = Runner.fingerprint r;
    rp_metrics_fingerprint = fnv (Json.to_string ~indent:false !metrics);
    rp_metrics = !metrics;
    rp_elapsed = !elapsed;
    rp_repro = repro }

let to_json r =
  Json.Obj
    [ ("scenario", Scenario.to_json r.rp_scenario);
      ("ok", Json.Bool (ok r));
      ("casts", Json.Int r.rp_casts);
      ("checks", Json.Int r.rp_checks);
      ( "online_violations",
        Json.List
          (List.map
             (fun (at, v) ->
                Json.Obj
                  [ ("at", Json.Float at);
                    ("property", Json.String v.Invariant.v_property);
                    ("detail", Json.String v.Invariant.v_detail) ])
             r.rp_online) );
      ("final_violations", Invariant.to_json r.rp_final);
      ("outcome_fingerprint", Json.String (Printf.sprintf "%016Lx" r.rp_outcome_fingerprint));
      ("metrics_fingerprint", Json.String (Printf.sprintf "%016Lx" r.rp_metrics_fingerprint));
      ("elapsed_virtual", Json.Float r.rp_elapsed);
      ( "repro",
        match r.rp_repro with None -> Json.Null | Some p -> Json.String p );
      ("metrics", r.rp_metrics) ]

let to_string r = Json.to_string ~indent:true (to_json r)
