(* Greedy counterexample minimization (delta debugging to a local
   minimum).

   Given a failing scenario and an arbitrary [fails] predicate, try
   structure-removing edits one at a time — drop a fault, drop a
   traffic op, drop a member (reindexing the survivors), quiet a
   network or chaos knob, truncate or drop the dispatch schedule — keeping an
   edit whenever the smaller scenario still fails, and loop to a
   fixpoint. [fails] is a predicate, not a fixed schedule: callers
   that found the bug by exploration pass "a small exploration still
   finds a violation", which keeps shrinking sound even though choice
   points shift as structure is removed. *)

type stats = {
  attempts : int;   (* candidate scenarios tried *)
  accepted : int;   (* edits kept *)
}

(* Remove member [m]: drop its ops and the faults that mention it
   (partitions lose just the one member; a group emptied by that is
   dropped), then shift higher indices down. *)
let drop_member (sc : Scenario.t) m =
  if sc.Scenario.n <= 1 then None
  else
    let shift i = if i > m then i - 1 else i in
    let ops =
      List.filter_map
        (fun o ->
           if o.Scenario.op_member = m then None
           else Some { o with Scenario.op_member = shift o.Scenario.op_member })
        sc.Scenario.ops
    in
    let faults =
      List.filter_map
        (fun f ->
           match f.Scenario.f_fault with
           | Scenario.Crash x when x = m -> None
           | Scenario.Crash x -> Some { f with Scenario.f_fault = Scenario.Crash (shift x) }
           | Scenario.Leave x when x = m -> None
           | Scenario.Leave x -> Some { f with Scenario.f_fault = Scenario.Leave (shift x) }
           | Scenario.Join x when x = m -> None
           | Scenario.Join x -> Some { f with Scenario.f_fault = Scenario.Join (shift x) }
           | Scenario.Suspect (a, b) when a = m || b = m -> None
           | Scenario.Suspect (a, b) ->
             Some { f with Scenario.f_fault = Scenario.Suspect (shift a, shift b) }
           | Scenario.Partition groups ->
             let groups =
               List.filter_map
                 (fun grp ->
                    match List.filter_map (fun x -> if x = m then None else Some (shift x)) grp
                    with
                    | [] -> None
                    | grp -> Some grp)
                 groups
             in
             if List.length groups < 2 then None
             else Some { f with Scenario.f_fault = Scenario.Partition groups }
           | Scenario.Heal -> Some f)
        sc.Scenario.faults
    in
    let links =
      List.filter_map
        (fun (s, d, lat) ->
           if s = m || d = m then None else Some (shift s, shift d, lat))
        sc.Scenario.links
    in
    Some { sc with Scenario.n = sc.Scenario.n - 1; ops; faults; links }

let nth_removed l i = List.filteri (fun j _ -> j <> i) l

(* All single-step reductions of a scenario, most aggressive first. *)
let candidates (sc : Scenario.t) =
  let members = List.init sc.Scenario.n (fun m -> drop_member sc (sc.Scenario.n - 1 - m)) in
  let kill_windows =
    (* Crash faults from churn campaigns arrive in waves — many members
       killed at one instant. Shed a whole window as one edit, and try
       halving the crashed-member set, before falling back to the
       one-fault-at-a-time drops below: a 50-crash repro that only
       needs one wave minimizes in a handful of runs, not thousands. *)
    let is_crash f =
      match f.Scenario.f_fault with Scenario.Crash _ -> true | _ -> false
    in
    let crashes = List.filter is_crash sc.Scenario.faults in
    let windows =
      List.sort_uniq compare (List.map (fun f -> f.Scenario.f_at) crashes)
    in
    let drop_window at =
      Some
        { sc with
          Scenario.faults =
            List.filter
              (fun f -> not (is_crash f && f.Scenario.f_at = at))
              sc.Scenario.faults }
    in
    let multi_windows =
      (* A window drop only beats the single-fault candidates when the
         window holds several crashes (or there are several windows to
         choose between). *)
      List.filter
        (fun at ->
           List.length windows > 1
           || List.length (List.filter (fun f -> f.Scenario.f_at = at) crashes) > 1)
        windows
    in
    let halved =
      if List.length crashes > 1 then begin
        let keep = List.length crashes / 2 in
        let seen = ref 0 in
        [ Some
            { sc with
              Scenario.faults =
                List.filter
                  (fun f ->
                     if is_crash f then begin incr seen; !seen <= keep end
                     else true)
                  sc.Scenario.faults } ]
      end
      else []
    in
    halved @ List.map drop_window multi_windows
  in
  let faults =
    List.init (List.length sc.Scenario.faults) (fun i ->
        Some { sc with Scenario.faults = nth_removed sc.Scenario.faults i })
  in
  let ops =
    List.init (List.length sc.Scenario.ops) (fun i ->
        Some { sc with Scenario.ops = nth_removed sc.Scenario.ops i })
  in
  let pads =
    (* Padded (fragmented) casts: try the whole schedule at canonical
       size — a repro that survives this edit doesn't need P12
       traffic. *)
    if List.exists (fun o -> o.Scenario.op_pad > 0) sc.Scenario.ops then
      [ Some
          { sc with
            Scenario.ops =
              List.map (fun o -> { o with Scenario.op_pad = 0 }) sc.Scenario.ops } ]
    else []
  in
  let links =
    List.init (List.length sc.Scenario.links) (fun i ->
        Some { sc with Scenario.links = nth_removed sc.Scenario.links i })
  in
  let net =
    let quiet (sc : Scenario.t) f = { sc with Scenario.net = f sc.Scenario.net } in
    List.filter_map
      (fun (dirty, clean) -> if dirty sc.Scenario.net then Some (Some (quiet sc clean)) else None)
      [ ( (fun n -> n.Scenario.drop > 0.),
          fun n -> { n with Scenario.drop = 0. } );
        ( (fun n -> n.Scenario.duplicate > 0.),
          fun n -> { n with Scenario.duplicate = 0. } );
        ( (fun n -> n.Scenario.garble > 0.),
          fun n -> { n with Scenario.garble = 0. } );
        ( (fun n -> n.Scenario.jitter > 0.),
          fun n -> { n with Scenario.jitter = 0. } ) ]
  in
  let chaos =
    (* Quiet the chaos profile one fault class at a time (drop the
       whole section first — the most aggressive edit — then zero
       individual probabilities, then shed partition windows), so a
       minimized repro names exactly the fault classes the bug
       needs. *)
    match sc.Scenario.chaos with
    | None -> []
    | Some p ->
      let module C = Horus_transport.Chaos in
      let with_profile p = Some { sc with Scenario.chaos = Some p } in
      (Some { sc with Scenario.chaos = None }
       :: List.filter_map
            (fun (dirty, clean) -> if dirty p then Some (with_profile (clean p)) else None)
            [ ((fun p -> p.C.drop > 0.), fun p -> { p with C.drop = 0. });
              ((fun p -> p.C.duplicate > 0.), fun p -> { p with C.duplicate = 0. });
              ((fun p -> p.C.reorder > 0.), fun p -> { p with C.reorder = 0. });
              ((fun p -> p.C.delay > 0.), fun p -> { p with C.delay = 0. });
              ((fun p -> p.C.corrupt > 0.), fun p -> { p with C.corrupt = 0. }) ])
      @ List.init (List.length p.C.partitions) (fun i ->
            with_profile { p with C.partitions = nth_removed p.C.partitions i })
  in
  let sched =
    match sc.Scenario.sched with
    | None -> []
    | Some s ->
      let with_choices cs =
        Some { sc with Scenario.sched = Some { s with Scenario.s_choices = cs } }
      in
      let len = List.length s.Scenario.s_choices in
      Some { sc with Scenario.sched = None }
      :: (if len > 0 then
            [ with_choices [];
              with_choices (List.filteri (fun i _ -> i < len / 2) s.Scenario.s_choices);
              with_choices (List.filteri (fun i _ -> i < len - 1) s.Scenario.s_choices) ]
          else [])
  in
  List.filter_map Fun.id
    (members @ kill_windows @ faults @ ops @ pads @ links @ net @ chaos @ sched)

let shrink ~fails (sc : Scenario.t) =
  let attempts = ref 0 and accepted = ref 0 in
  let rec fixpoint sc =
    let rec try_candidates = function
      | [] -> None
      | cand :: rest ->
        incr attempts;
        if fails cand then Some cand else try_candidates rest
    in
    match try_candidates (candidates sc) with
    | Some smaller ->
      incr accepted;
      fixpoint smaller
    | None -> sc
  in
  let out = fixpoint sc in
  (out, { attempts = !attempts; accepted = !accepted })
