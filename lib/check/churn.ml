(* The hierarchical churn soak: the acceptance experiment for scaling
   membership past one flat group — and, in ungraceful mode, the
   crash-fault campaign that holds failover to a bound.

   A population of [h_endpoints] members is split into [h_subgroups]
   sub-groups of bounded size, each running
   HIER(parent,sub):<h_spec> over a grid of shared loopback sockets:
   socket [s] hosts member [s] of every sub-group (the frame header
   cannot distinguish two local members of one group, so a socket may
   carry at most one member per gid — see {!Horus.Transport_link}).
   Sub-group [j] is rotated by [j] slots, which lands its founder —
   the oldest member, hence the coordinator, hence the HIER
   representative — on slot [j mod k], so all representatives sit on
   distinct sockets and can additionally join the parent group over
   the same socket pair.

   A {!Horus_dir.Dir_service} on its own socket is the membership
   bootstrap: every member registers its (gid, eid) -> socket-address
   binding with a lease on join and unregisters on leave, via one
   shared {!Horus_dir.Dir_client} per socket riding the reserved
   directory gid ({!Horus.Transport_link.route_raw}). With
   [h_dir_replicas] > 0 the service is primary/backup replicated and
   every client fails over through the replica ring.

   Graceful mode (M4) drives [h_waves] churn waves: in each, the
   youngest [h_wave_fraction] of every sub-group leaves (so
   representatives never move), the survivors must re-converge within
   [h_converge_bound] virtual seconds, the representatives exchange a
   burst of parent-group casts, and the leavers rejoin and the full
   membership must re-converge again.

   Ungraceful mode (M5) replaces the leaves with crashes: the youngest
   quarter of every sub-group is killed mid-flight (endpoint crashed,
   rank blocked at the waist, directory renewal abandoned — no goodbye
   of any kind), and each wave additionally takes [h_kill_coordinators]
   sub-group coordinators, un-bridging those sub-groups from the
   parent. At [h_kill_dir_wave] the directory primary is killed too,
   mid-wave, and a backup must promote. Failure detection is scripted:
   after [h_detect_delay] the oldest survivor of each wounded
   sub-group suspects its dead, and a surviving representative
   suspects the dead representatives in the parent. Each un-bridged
   sub-group must re-bridge — new coordinator elected, joined into the
   parent, full representative view re-installed — within
   [h_rebridge_bound] of the kill, with every sample recorded (and the
   layer-level [hier.rebridge_time] histogram populated).

   Coordinator kills march down from the top: wave [w] takes the
   coordinators of sub-groups [g-1-w*K .. g-(w+1)*K] (K =
   [h_kill_coordinators]). The successor representative of sub-group
   [j] is member (j, 1), which sits on slot [j+1] — a slot whose own
   representative died in the same or an earlier wave, or (for
   [j = g-1], thanks to the one spare socket ungraceful mode adds) a
   slot that never hosted one. Descending suffix blocks are exactly
   the order in which re-bridging never collides with a live parent
   member on the same socket.

   At the end the run is held to: every wave converged, every
   surviving parent member delivered every cast issued while it was
   bridged, every re-bridge within bound, directory backups promoted
   when the primary was killed, lease evictions exactly equal to the
   bindings abandoned by crashes (a surplus would be a lost
   registration for a survivor), [nak.retransmits] under the ceiling,
   and the directory's live bindings equal to the union of installed
   views — with an FNV-1a fingerprint over the canonical report for
   the CI double-run determinism gate. *)

open Horus
module Json = Horus_obs.Json
module Metrics = Horus_obs.Metrics
module T = Horus_transport
module D = Horus_dir

type config = {
  h_name : string;
  h_endpoints : int;       (* total population *)
  h_subgroups : int;       (* must be <= the sub-group size ceiling *)
  h_seed : int;
  h_spec : string;         (* sub-group stack below HIER, top first *)
  h_latency : float;       (* loopback hub latency, seconds *)
  h_join_spacing : float;  (* settle after each join *)
  h_op_gap : float;        (* gap between leaves/kills within a wave *)
  h_settle : float;        (* settle after setup, before the waves *)
  h_waves : int;
  h_wave_fraction : float; (* youngest fraction of each sub-group churned *)
  h_casts_per_wave : int;  (* parent-group casts per wave *)
  h_lease : float;         (* directory lease, seconds *)
  h_converge_bound : float;(* per-phase view-convergence budget *)
  h_check_every : float;   (* convergence poll slice *)
  h_nak_ceiling : int;     (* whole-run nak.retransmits budget *)
  h_ungraceful : bool;     (* waves crash instead of leave *)
  h_kill_coordinators : int; (* coordinators killed per ungraceful wave *)
  h_detect_delay : float;  (* crash -> scripted suspicion *)
  h_rebridge_bound : float;(* kill -> parent re-bridged budget *)
  h_dir_replicas : int;    (* directory backups behind the primary *)
  h_kill_dir_wave : int;   (* wave that kills the dir primary; -1 never *)
}

let default_config =
  { h_name = "churn";
    h_endpoints = 1000;
    h_subgroups = 32;
    h_seed = 7;
    h_spec = "MBRSHIP:NAK:COM";
    h_latency = 0.0005;
    h_join_spacing = 0.05;
    h_op_gap = 0.02;
    h_settle = 2.0;
    h_waves = 3;
    h_wave_fraction = 0.25;
    h_casts_per_wave = 8;
    h_lease = 10.0;
    h_converge_bound = 5.0;
    h_check_every = 0.05;
    h_nak_ceiling = 100;
    h_ungraceful = false;
    h_kill_coordinators = 0;
    h_detect_delay = 0.1;
    h_rebridge_bound = 5.0;
    h_dir_replicas = 0;
    h_kill_dir_wave = -1 }

let ci_config =
  { default_config with
    h_name = "churn-ci";
    h_endpoints = 256;
    h_subgroups = 8;
    h_waves = 2 }

(* M5: three ungraceful waves over the full population, nine
   coordinators and the directory primary killed along the way. *)
let m5_config =
  { default_config with
    h_name = "failover";
    h_ungraceful = true;
    h_kill_coordinators = 3;
    h_dir_replicas = 2;
    h_kill_dir_wave = 1;
    (* 705 crashes cost ~44k retransmits at this scale (measured);
       the ceiling still catches a storm at ~1.4x the healthy cost. *)
    h_nak_ceiling = 60000 }

let m5_ci_config =
  { m5_config with
    h_name = "failover-ci";
    h_endpoints = 256;
    h_subgroups = 8;
    h_waves = 2;
    h_kill_coordinators = 2;
    h_nak_ceiling = 20000 }

type wave_report = {
  w_index : int;
  w_kind : string;          (* "leave" | "kill" | "rejoin" *)
  w_members : int;          (* members churned in this phase *)
  w_converge : float option;(* virtual seconds to convergence *)
}

type report = {
  r_name : string;
  r_mode : string;             (* "graceful" | "ungraceful" *)
  r_endpoints : int;
  r_subgroups : int;
  r_sockets : int;
  r_setup_converge : float option;
  r_waves : wave_report list;
  r_parent_casts : int;        (* deliveries expected of a never-replaced member *)
  r_parent_delivered : int list;(* per-representative totals (current handles) *)
  r_parent_lost : int;         (* casts dead representatives never saw *)
  r_killed : int;              (* endpoints crashed across all waves *)
  r_killed_coordinators : int;
  r_rebridge : (int * float) list; (* (sub-group, kill -> re-bridged seconds) *)
  r_rebridge_bound : float;
  r_nak_retransmits : int;
  r_unknown_gid : int;         (* in-flight frames for just-left gids *)
  r_dir_versions : (int * int) list;  (* (gid, directory version) *)
  r_dir_match : bool;
  r_dir_notifies : int;        (* seen by the one subscribed client *)
  r_dir_evictions : int;       (* must equal the abandoned-binding count *)
  r_dir_replicas : int;
  r_dir_promotions : int;      (* backup promotions across the replica set *)
  r_dir_epoch : int;           (* serving primary's incarnation at exit *)
  r_dir_failovers : int;       (* client replica advances (exhausted budgets) *)
  r_dir_redirects : int;       (* client Not_primary redirects honoured *)
  r_violations : string list;
  r_elapsed : float;           (* virtual seconds *)
  r_fingerprint : int64;
}

let ok r = r.r_violations = []

let fnv s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
       h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

(* One member slot of one sub-group. Rejoining after a leave or a
   crash creates a fresh endpoint incarnation (new eid) on the same
   socket: endpoint ids double as age order and the NAK layer's pair
   lanes survive view changes by design, so an eid must never be
   reused by a later incarnation — exactly the rule a real deployment
   follows. *)
type member = {
  mutable m_eid : int;
  m_slot : int;                              (* socket index *)
  mutable m_endpoint : Endpoint.t;
  mutable m_handle : Group.t option;         (* current group handle *)
  mutable m_renewal : D.Dir_client.renewal option;
  mutable m_killed : bool;                   (* crashed, not yet reincarnated *)
}

let run c =
  if c.h_subgroups < 1 then invalid_arg "Churn: subgroups must be >= 1";
  if c.h_endpoints < 2 * c.h_subgroups then
    invalid_arg "Churn: need at least two members per sub-group";
  if c.h_wave_fraction < 0.0 || c.h_wave_fraction >= 1.0 then
    invalid_arg "Churn: wave_fraction must be in [0, 1)";
  if c.h_ungraceful then begin
    if c.h_kill_coordinators < 1 then
      invalid_arg "Churn: ungraceful waves need kill_coordinators >= 1";
    if c.h_waves * c.h_kill_coordinators > c.h_subgroups - 1 then
      invalid_arg
        "Churn: coordinator kills would reach sub-group 0 (the anchor)";
    if c.h_endpoints < 3 * c.h_subgroups then
      invalid_arg "Churn: ungraceful waves need three members per sub-group";
    if c.h_kill_dir_wave >= 0 && c.h_dir_replicas < 1 then
      invalid_arg "Churn: killing the directory primary needs a backup"
  end;
  let n = c.h_endpoints and g = c.h_subgroups in
  let sizes = Array.init g (fun j -> (n / g) + if j < n mod g then 1 else 0) in
  let k = Array.fold_left max 0 sizes in
  if g > k then
    invalid_arg
      "Churn: more sub-groups than sockets — representatives would collide";
  (* Ungraceful mode adds one spare socket: the successor
     representative of sub-group g-1 lands on slot g, which must never
     have hosted a parent member (see the header comment). *)
  let ks = if c.h_ungraceful then k + 1 else k in
  let world = World.create ~seed:c.h_seed () in
  (* The engine's default per-run event budget (10M) is a
     runaway-storm guard sized for flat soaks; a 1000-endpoint grid
     legitimately clears it inside one long settle slice. Scale the
     guard with the population instead of removing it. *)
  let slice_budget = max 10_000_000 (c.h_endpoints * 100_000) in
  let module World = struct
    include Horus.World

    let run_for w ~duration = run_for ~max_events:slice_budget w ~duration
  end in
  let engine = World.engine world in
  let hub = T.Loopback.hub ~latency:c.h_latency engine in
  let link = Transport_link.create world in
  let peers = T.Peers.create () in
  let sockets =
    Array.init ks (fun s -> T.Loopback.create ~addr:(Printf.sprintf "mem:%d" s) hub)
  in
  let sock_addr s = sockets.(s).T.Backend.local_addr in
  (* The directory fabric: the primary on its own socket, backups on
     theirs, one client per member socket multiplexed over the
     reserved directory gid and failing over through the ring. *)
  let dir_addrs =
    List.init (c.h_dir_replicas + 1) (fun i ->
        if i = 0 then "dir" else Printf.sprintf "dir:%d" i)
  in
  let dir_backends =
    Array.of_list (List.map (fun a -> T.Loopback.create ~addr:a hub) dir_addrs)
  in
  let dirs =
    Array.mapi
      (fun i b ->
         D.Dir_service.create ~max_lease:(2.0 *. c.h_lease)
           ~replicas:(if c.h_dir_replicas = 0 then [] else dir_addrs)
           ~replica_index:i ~engine b)
      dir_backends
  in
  let dir_killed = Array.make (Array.length dirs) false in
  let current_dir () =
    let rec go i fallback =
      if i >= Array.length dirs then fallback
      else if (not dir_killed.(i)) && D.Dir_service.role dirs.(i) = D.Dir_service.Primary
      then dirs.(i)
      else go (i + 1) fallback
    in
    go 0 dirs.(0)
  in
  let muxes = Array.map (fun b -> Transport_link.mux link ~backend:b ~peers) sockets in
  let clients =
    Array.mapi
      (fun s m ->
         let xmit_to a = fun frame -> sockets.(s).T.Backend.send ~dest:a frame in
         let cl =
           D.Dir_client.create ~eid:(1_000_000 + s) ~engine
             ~backups:(List.map xmit_to (List.tl dir_addrs))
             (xmit_to (List.hd dir_addrs))
         in
         Transport_link.route_raw m ~gid:D.Dir_protocol.gid (D.Dir_client.rx cl);
         cl)
      muxes
  in
  World.add_metrics_exporter world (fun m ->
      Array.iteri
        (fun i d ->
           let prefix = if i = 0 then "dir" else Printf.sprintf "dir.replica%d" i in
           D.Dir_service.export_metrics ~prefix d m)
        dirs;
      D.Dir_client.export_metrics_sum (Array.to_list clients) m);
  let sub_gid = Array.init g (fun _ -> World.fresh_group_addr world) in
  let parent_gid = World.fresh_group_addr world in
  let pgid = Addr.group_id parent_gid in
  (* The grid: member (j, i) starts with eid j*k + i (so the founder
     i=0 is the oldest, stable coordinator) and lives on socket
     (i + j) mod ks (so founders occupy distinct slots). Later
     incarnations draw fresh, strictly higher eids from [next_eid]. *)
  let spec_of j = Printf.sprintf "HIER(parent=%d,sub=%d):%s" pgid j c.h_spec in
  let next_eid = ref (g * k) in
  let members =
    Array.init g (fun j ->
        Array.init sizes.(j) (fun i ->
            let eid = (j * k) + i and slot = (i + j) mod ks in
            T.Peers.add peers ~rank:eid ~addr:(sock_addr slot);
            { m_eid = eid;
              m_slot = slot;
              m_endpoint =
                Transport_link.mux_endpoint link muxes.(slot) ~rank:eid
                  ~spec:(spec_of j);
              m_handle = None;
              m_renewal = None;
              m_killed = false }))
  in
  let join_member ?contact j i =
    let m = members.(j).(i) in
    m.m_handle <- Some (Group.join ?contact ~record:false m.m_endpoint sub_gid.(j));
    m.m_renewal <-
      Some
        (D.Dir_client.keepalive clients.(m.m_slot)
           ~group:(Addr.group_id sub_gid.(j))
           ~rank:m.m_eid ~addr:(sock_addr m.m_slot) ~lease:c.h_lease)
  in
  let leave_member j i =
    let m = members.(j).(i) in
    (match m.m_handle with Some gr -> Group.leave gr | None -> ());
    (match m.m_renewal with Some rn -> D.Dir_client.release rn | None -> ());
    m.m_renewal <- None
  in
  (* The live coordinator of sub-group [j]: oldest member still
     renewing its lease — the view's coordinator once converged, and
     the HIER representative. *)
  let coordinator_index j =
    let best = ref (-1) in
    Array.iteri
      (fun i m ->
         if m.m_renewal <> None
         && (!best < 0 || m.m_eid < members.(j).(!best).m_eid)
         then best := i)
      members.(j);
    if !best < 0 then invalid_arg "Churn: sub-group emptied";
    !best
  in
  (* Convergence: every present member of every sub-group holds a view
     whose membership is exactly the present set; departing handles
     must have fully exited, crashed handles owe nothing. *)
  let eids_of v = List.sort compare (List.map Addr.endpoint_id (View.members v)) in
  let subgroup_settled j =
    let expected =
      Array.to_list members.(j)
      |> List.filter_map (fun m ->
             match (m.m_handle, m.m_renewal) with
             | Some _, Some _ -> Some m.m_eid
             | _ -> None)
      |> List.sort compare
    in
    Array.for_all
      (fun m ->
         match m.m_handle with
         | None -> true
         | Some _ when m.m_killed -> true
         | Some gr ->
           if m.m_renewal = None then Group.exited gr
           else (match Group.view gr with
                 | Some v -> eids_of v = expected
                 | None -> false))
      members.(j)
  in
  let all_settled () =
    let rec go j = j >= g || (subgroup_settled j && go (j + 1)) in
    go 0
  in
  let wait_converged pred =
    let start = World.now world in
    let rec go () =
      if pred () then Some (World.now world -. start)
      else if World.now world -. start >= c.h_converge_bound then None
      else begin
        World.run_for world ~duration:c.h_check_every;
        go ()
      end
    in
    go ()
  in
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let debug_dump tag =
    if Sys.getenv_opt "HORUS_CHURN_DEBUG" <> None then begin
      Printf.eprintf "--- %s (t=%.2f) ---\n" tag (World.now world);
      for j = 0 to min 1 (g - 1) do
        Array.iteri
          (fun i m ->
             match m.m_handle with
             | None -> Printf.eprintf "  g%d[%d] eid=%d: no handle\n" j i m.m_eid
             | Some gr ->
               Printf.eprintf "  g%d[%d] eid=%d live=%b killed=%b exited=%b view=%s\n"
                 j i m.m_eid (m.m_renewal <> None) m.m_killed (Group.exited gr)
                 (match Group.view gr with
                  | Some v ->
                    Printf.sprintf "lt%d[%s]" (View.ltime v)
                      (String.concat ","
                         (List.map string_of_int (eids_of v)))
                  | None -> "-"))
          members.(j)
      done;
      List.iter
        (fun e ->
           let cat = e.Horus_sim.Trace.category in
           let has s =
             let ls = String.length s and lc = String.length cat in
             lc >= ls && String.sub cat (lc - ls) ls = s
           in
           if has "merge" || has "stale" || has "suspect" then
             Printf.eprintf "  [%.2f] %s: %s\n" e.Horus_sim.Trace.time
               e.Horus_sim.Trace.category e.Horus_sim.Trace.detail)
        (Horus_sim.Trace.entries (World.trace world))
    end
  in
  (* Watch the notification feed through one subscribed client. *)
  D.Dir_client.subscribe clients.(0) ~group:(Addr.group_id sub_gid.(0)) (fun _ -> ());
  (* Phase 1: found every sub-group and stagger the joins. *)
  for j = 0 to g - 1 do
    join_member j 0;
    World.run_for world ~duration:c.h_join_spacing
  done;
  for i = 1 to k - 1 do
    for j = 0 to g - 1 do
      if i < sizes.(j) then
        join_member ~contact:(Group.addr (Option.get members.(j).(0).m_handle)) j i
    done;
    World.run_for world ~duration:c.h_join_spacing
  done;
  World.run_for world ~duration:c.h_settle;
  let setup_converge = wait_converged all_settled in
  if setup_converge = None then violate "setup: sub-groups failed to converge";
  (* Phase 2: the representatives bridge into the parent group (their
     HIER layer is elect-only inside the parent gid itself). Each
     parent member carries its own cast ledger — expected counts what
     was cast while it was bridged, so a replaced representative's
     ledger is settled (into [parent_lost]) at replacement. *)
  let parent_delivered = Array.make g 0 in
  let parent_expected = Array.make g 0 in
  let parent_lost = ref 0 in
  let parent_join j i =
    let m = members.(j).(i) in
    let contact =
      if j = 0 && m.m_eid = 0 then None
      else Some (Endpoint.addr members.(0).(coordinator_index 0).m_endpoint)
    in
    let gr =
      Group.join ?contact ~record:false
        ~on_up:(fun ev ->
            match ev with
            | Horus_hcpi.Event.U_cast _ ->
              parent_delivered.(j) <- parent_delivered.(j) + 1
            | _ -> ())
        m.m_endpoint parent_gid
    in
    let rn =
      D.Dir_client.keepalive clients.(m.m_slot) ~group:pgid ~rank:m.m_eid
        ~addr:(sock_addr m.m_slot) ~lease:c.h_lease
    in
    (gr, rn)
  in
  let bridge =
    Array.init g (fun j ->
        let b = parent_join j 0 in
        World.run_for world ~duration:c.h_join_spacing;
        b)
  in
  let parent_handles = Array.map fst bridge in
  let parent_renewals = Array.map snd bridge in
  World.run_for world ~duration:c.h_settle;
  let parent_settled () =
    let expected =
      List.sort compare
        (List.init g (fun j -> members.(j).(coordinator_index j).m_eid))
    in
    Array.for_all
      (fun gr ->
         match Group.view gr with Some v -> eids_of v = expected | None -> false)
      parent_handles
  in
  (match wait_converged parent_settled with
   | Some _ -> ()
   | None -> violate "setup: parent group failed to converge");
  (* Phase 3: the churn waves. *)
  let waves = ref [] in
  let churn_of j = max 1 (int_of_float (c.h_wave_fraction *. float_of_int sizes.(j))) in
  let cast_seq = ref 0 in
  let killed_total = ref 0 in
  let killed_coords = ref 0 in
  let abandoned = ref 0 in
  let rebridge = ref [] in
  let do_casts w =
    for x = 0 to c.h_casts_per_wave - 1 do
      incr cast_seq;
      Group.cast parent_handles.(x mod g) (Printf.sprintf "w%d-%d" w !cast_seq);
      for j = 0 to g - 1 do
        parent_expected.(j) <- parent_expected.(j) + 1
      done;
      World.run_for world ~duration:0.01
    done;
    World.run_for world ~duration:0.2
  in
  (* Crash one member: abandon its directory renewals (the bindings
     must lapse by lease, never by a goodbye), halt its stacks, and
     block its rank at the waist so every sender drops frames for it
     on the spot. *)
  let kill_member j i =
    let m = members.(j).(i) in
    (match m.m_renewal with
     | Some rn -> D.Dir_client.abandon rn; incr abandoned
     | None -> ());
    m.m_renewal <- None;
    m.m_killed <- true;
    Endpoint.crash m.m_endpoint;
    T.Peers.block peers ~rank:m.m_eid;
    incr killed_total
  in
  let reincarnate j i ~contact =
    let m = members.(j).(i) in
    (* The old stack stays attached (and, if it exited rather than
       crashed, owns the gid route on its socket) until destroyed; the
       comeback is a NEW endpoint incarnation on the same slot. *)
    (match m.m_handle with Some gr -> Group.destroy gr | None -> ());
    m.m_handle <- None;
    m.m_killed <- false;
    let eid = !next_eid in
    incr next_eid;
    T.Peers.add peers ~rank:eid ~addr:(sock_addr m.m_slot);
    m.m_eid <- eid;
    m.m_endpoint <-
      Transport_link.mux_endpoint link muxes.(m.m_slot) ~rank:eid ~spec:(spec_of j);
    join_member ~contact j i
  in
  for w = 0 to c.h_waves - 1 do
    if not c.h_ungraceful then begin
      (* Leave wave: the youngest members of every sub-group go,
         staggered — representatives (the oldest) never move. *)
      let churned = ref 0 in
      for j = 0 to g - 1 do
        let cj = min (churn_of j) (sizes.(j) - 1) in
        for i = sizes.(j) - cj to sizes.(j) - 1 do
          leave_member j i;
          incr churned
        done;
        World.run_for world ~duration:c.h_op_gap
      done;
      let conv = wait_converged all_settled in
      if conv = None then violate "wave %d: leave phase failed to converge" w;
      waves :=
        { w_index = w; w_kind = "leave"; w_members = !churned; w_converge = conv }
        :: !waves;
      (* Parent traffic: the representatives gossip between waves. *)
      do_casts w;
      (* Rejoin wave: the same members come back through their
         sub-group's representative, and re-register. *)
      let rejoined = ref 0 in
      for j = 0 to g - 1 do
        let cj = min (churn_of j) (sizes.(j) - 1) in
        for i = sizes.(j) - cj to sizes.(j) - 1 do
          reincarnate j i
            ~contact:(Group.addr
                        (Option.get members.(j).(coordinator_index j).m_handle));
          incr rejoined;
          World.run_for world ~duration:c.h_op_gap
        done
      done;
      let conv = wait_converged all_settled in
      if conv = None then begin
        violate "wave %d: rejoin phase failed to converge" w;
        debug_dump (Printf.sprintf "wave %d rejoin" w)
      end;
      waves :=
        { w_index = w; w_kind = "rejoin"; w_members = !rejoined; w_converge = conv }
        :: !waves
    end
    else begin
      (* Kill wave: the youngest quarter of every sub-group crashes,
         and this wave's suffix block of coordinators with them. *)
      let wave_coords =
        List.sort compare
          (List.init c.h_kill_coordinators (fun x ->
               g - 1 - (w * c.h_kill_coordinators) - x))
      in
      let killed_here = ref [] in       (* (j, i), for the rejoin phase *)
      let killed_this_wave = ref 0 in
      let dead_by_group = Array.make g [] in
      let t_kill = Hashtbl.create 8 in  (* j -> kill instant, coordinators *)
      for j = 0 to g - 1 do
        let ci = coordinator_index j in
        let cj = min (churn_of j) (sizes.(j) - 2) in
        let youngest =
          Array.to_list (Array.mapi (fun i m -> (i, m)) members.(j))
          |> List.filter (fun (i, m) -> i <> ci && m.m_renewal <> None)
          |> List.sort (fun (_, a) (_, b) -> compare b.m_eid a.m_eid)
          |> List.filteri (fun x _ -> x < cj)
          |> List.map fst
        in
        let victims =
          if List.mem j wave_coords then ci :: youngest else youngest
        in
        List.iter
          (fun i ->
             dead_by_group.(j) <- members.(j).(i).m_eid :: dead_by_group.(j);
             killed_here := (j, i) :: !killed_here;
             incr killed_this_wave;
             kill_member j i)
          victims;
        if List.mem j wave_coords then begin
          Hashtbl.replace t_kill j (World.now world);
          D.Dir_client.abandon parent_renewals.(j);
          incr abandoned;
          incr killed_coords
        end;
        World.run_for world ~duration:c.h_op_gap
      done;
      (* Mid-wave, the directory primary goes down with them: service
         stopped, socket closed — a backup must promote and the
         clients must fail over. *)
      if w = c.h_kill_dir_wave && not dir_killed.(0) then begin
        D.Dir_service.stop dirs.(0);
        dir_backends.(0).T.Backend.close ();
        dir_killed.(0) <- true
      end;
      (* Scripted failure detection: after the detect delay, the
         oldest survivor of each wounded sub-group suspects its dead,
         and the anchor representative suspects the dead
         representatives in the parent. *)
      World.run_for world ~duration:c.h_detect_delay;
      for j = 0 to g - 1 do
        if dead_by_group.(j) <> [] then
          match members.(j).(coordinator_index j).m_handle with
          | Some gr ->
            Group.suspect gr (List.map Addr.endpoint dead_by_group.(j))
          | None -> ()
      done;
      let dead_rep_eids =
        (* The coordinator was killed first in its sub-group, so it is
           the last eid pushed onto that group's dead list. *)
        List.map (fun j -> List.hd (List.rev dead_by_group.(j))) wave_coords
      in
      if dead_rep_eids <> [] then
        Group.suspect parent_handles.(0) (List.map Addr.endpoint dead_rep_eids);
      let conv = wait_converged all_settled in
      if conv = None then begin
        violate "wave %d: kill phase failed to converge" w;
        debug_dump (Printf.sprintf "wave %d kill" w)
      end;
      waves :=
        { w_index = w; w_kind = "kill"; w_members = !killed_this_wave;
          w_converge = conv }
        :: !waves;
      (* Re-bridge: each beheaded sub-group's new coordinator joins
         the parent; settle the dead representative's cast ledger. *)
      List.iter
        (fun j ->
           parent_lost := !parent_lost + (parent_expected.(j) - parent_delivered.(j));
           parent_expected.(j) <- 0;
           parent_delivered.(j) <- 0;
           let ci = coordinator_index j in
           let gr, rn = parent_join j ci in
           parent_handles.(j) <- gr;
           parent_renewals.(j) <- rn)
        wave_coords;
      (* The re-bridge clock runs from each kill to the instant the
         successor holds the full representative view; every sample is
         held to the bound. *)
      let pending = ref wave_coords in
      let expected_reps () =
        List.sort compare
          (List.init g (fun j -> members.(j).(coordinator_index j).m_eid))
      in
      (* The poll cap runs from the LAST kill, so no sub-group is cut
         off early; each sample is still held to its own kill clock. *)
      let wave_last = List.fold_left max 0.0
          (List.map (fun j -> Hashtbl.find t_kill j) wave_coords) in
      while !pending <> []
            && World.now world -. wave_last < c.h_rebridge_bound do
        pending :=
          List.filter
            (fun j ->
               match Group.view parent_handles.(j) with
               | Some v when eids_of v = expected_reps () ->
                 let dt = World.now world -. Hashtbl.find t_kill j in
                 rebridge := (j, dt) :: !rebridge;
                 if dt > c.h_rebridge_bound then
                   violate "wave %d: sub-group %d re-bridged in %.3f s (bound %.3f)"
                     w j dt c.h_rebridge_bound;
                 false
               | _ -> true)
            !pending;
        if !pending <> [] then World.run_for world ~duration:c.h_check_every
      done;
      List.iter
        (fun j ->
           violate "wave %d: sub-group %d failed to re-bridge within %.3f s" w j
             c.h_rebridge_bound)
        !pending;
      (match wait_converged parent_settled with
       | Some _ -> ()
       | None -> violate "wave %d: parent group failed to re-converge" w);
      (* Parent traffic over the healed bridge. *)
      do_casts w;
      (* Rejoin: every crashed slot comes back as a fresh incarnation
         through the current coordinator. *)
      let rejoined = ref 0 in
      List.iter
        (fun (j, i) ->
           reincarnate j i
             ~contact:(Group.addr
                         (Option.get members.(j).(coordinator_index j).m_handle));
           incr rejoined;
           World.run_for world ~duration:c.h_op_gap)
        (List.rev !killed_here);
      let conv = wait_converged all_settled in
      if conv = None then begin
        violate "wave %d: rejoin phase failed to converge" w;
        debug_dump (Printf.sprintf "wave %d rejoin" w)
      end;
      waves :=
        { w_index = w; w_kind = "rejoin"; w_members = !rejoined; w_converge = conv }
        :: !waves
    end
  done;
  (* Final accounting: drain (past lease expiry when crashes left
     bindings to lapse), sweep, and hold the run to its bounds. *)
  World.run_for world ~duration:c.h_settle;
  if !killed_total > 0 then World.run_for world ~duration:(c.h_lease +. 1.0);
  let dcur = current_dir () in
  D.Dir_service.sweep_now dcur;
  Array.iteri
    (fun j d ->
       if d <> parent_expected.(j) then
         violate "parent: representative %d delivered %d of %d casts" j d
           parent_expected.(j))
    parent_delivered;
  let nak = Metrics.count (Metrics.counter (World.metrics world) "nak.retransmits") in
  if nak > c.h_nak_ceiling then
    violate "nak.retransmits %d exceeds ceiling %d" nak c.h_nak_ceiling;
  (* The directory must agree with the installed views: every
     sub-group's live bindings are exactly its final membership at its
     member's socket addresses, and the parent's are the reps. *)
  let dir_group_ok gid expected =
    let entries =
      List.map (fun (r, a, _) -> (r, a)) (D.Dir_service.entries dcur ~group:gid)
    in
    let want =
      List.sort compare
        (List.map (fun (eid, slot) -> (eid, sock_addr slot)) expected)
    in
    entries = want
  in
  let dir_match = ref true in
  for j = 0 to g - 1 do
    let expected =
      Array.to_list members.(j)
      |> List.filter_map (fun m ->
             if m.m_renewal <> None then Some (m.m_eid, m.m_slot) else None)
    in
    if not (dir_group_ok (Addr.group_id sub_gid.(j)) expected) then begin
      dir_match := false;
      violate "directory: sub-group %d bindings diverge from its view" j
    end
  done;
  if not (dir_group_ok pgid
            (List.init g (fun j ->
                 let m = members.(j).(coordinator_index j) in
                 (m.m_eid, m.m_slot))))
  then begin
    dir_match := false;
    violate "directory: parent bindings diverge from the representative set"
  end;
  let dir_versions =
    List.map (fun gid -> (gid, D.Dir_service.version dcur ~group:gid))
      (D.Dir_service.groups dcur)
  in
  (* Leases must account exactly: every binding a crash abandoned is
     evicted once (on whichever replica was primary when it lapsed),
     and nothing else ever is — a surplus eviction is a lost
     registration for a surviving member. *)
  let evictions =
    Array.fold_left
      (fun acc d -> acc + (D.Dir_service.stats d).D.Dir_service.s_evictions)
      0 dirs
  in
  if evictions <> !abandoned then
    violate "directory: %d lease evictions for %d abandoned bindings" evictions
      !abandoned;
  let promotions =
    Array.fold_left
      (fun acc d -> acc + (D.Dir_service.stats d).D.Dir_service.s_promotions)
      0 dirs
  in
  if c.h_kill_dir_wave >= 0 && c.h_kill_dir_wave < c.h_waves && c.h_ungraceful
  then begin
    if promotions = 0 then
      violate "directory: primary killed but no backup promoted";
    if dcur == dirs.(0) then
      violate "directory: a killed primary is still serving"
  end;
  if !killed_coords > 0
  && Metrics.observations
       (Metrics.histogram (World.metrics world) "hier.rebridge_time") = 0
  then violate "hier.rebridge_time recorded no samples";
  let notifies =
    (D.Dir_client.stats clients.(0)).D.Dir_client.c_notifies
  in
  let failovers, redirects =
    Array.fold_left
      (fun (f, r) cl ->
         let s = D.Dir_client.stats cl in
         (f + s.D.Dir_client.c_failovers, r + s.D.Dir_client.c_redirects))
      (0, 0) clients
  in
  let core = {
    r_name = c.h_name;
    r_mode = (if c.h_ungraceful then "ungraceful" else "graceful");
    r_endpoints = n;
    r_subgroups = g;
    r_sockets = ks;
    r_setup_converge = setup_converge;
    r_waves = List.rev !waves;
    r_parent_casts = c.h_waves * c.h_casts_per_wave;
    r_parent_delivered = Array.to_list parent_delivered;
    r_parent_lost = !parent_lost;
    r_killed = !killed_total;
    r_killed_coordinators = !killed_coords;
    r_rebridge = List.sort compare !rebridge;
    r_rebridge_bound = c.h_rebridge_bound;
    r_nak_retransmits = nak;
    r_unknown_gid = Transport_link.unknown_gid link;
    r_dir_versions = dir_versions;
    r_dir_match = !dir_match;
    r_dir_notifies = notifies;
    r_dir_evictions = evictions;
    r_dir_replicas = c.h_dir_replicas;
    r_dir_promotions = promotions;
    r_dir_epoch = D.Dir_service.epoch dcur;
    r_dir_failovers = failovers;
    r_dir_redirects = redirects;
    r_violations = List.rev !violations;
    r_elapsed = World.now world;
    r_fingerprint = 0L;
  } in
  core

let wave_json w =
  Json.Obj
    [ ("wave", Json.Int w.w_index);
      ("kind", Json.String w.w_kind);
      ("members", Json.Int w.w_members);
      ( "converge",
        match w.w_converge with None -> Json.Null | Some t -> Json.Float t ) ]

let core_json r =
  Json.Obj
    [ ("name", Json.String r.r_name);
      ("mode", Json.String r.r_mode);
      ("ok", Json.Bool (ok r));
      ("endpoints", Json.Int r.r_endpoints);
      ("subgroups", Json.Int r.r_subgroups);
      ("sockets", Json.Int r.r_sockets);
      ( "setup_converge",
        match r.r_setup_converge with None -> Json.Null | Some t -> Json.Float t );
      ("waves", Json.List (List.map wave_json r.r_waves));
      ("parent_casts", Json.Int r.r_parent_casts);
      ("parent_delivered", Json.List (List.map (fun d -> Json.Int d) r.r_parent_delivered));
      ("parent_lost", Json.Int r.r_parent_lost);
      ("killed", Json.Int r.r_killed);
      ("killed_coordinators", Json.Int r.r_killed_coordinators);
      ( "rebridge",
        Json.Obj
          (List.map (fun (j, t) -> (string_of_int j, Json.Float t)) r.r_rebridge) );
      ("rebridge_bound", Json.Float r.r_rebridge_bound);
      ("nak_retransmits", Json.Int r.r_nak_retransmits);
      ("unknown_gid", Json.Int r.r_unknown_gid);
      ( "dir_versions",
        Json.Obj
          (List.map (fun (gid, v) -> (string_of_int gid, Json.Int v)) r.r_dir_versions) );
      ("dir_match", Json.Bool r.r_dir_match);
      ("dir_notifies", Json.Int r.r_dir_notifies);
      ("dir_evictions", Json.Int r.r_dir_evictions);
      ("dir_replicas", Json.Int r.r_dir_replicas);
      ("dir_promotions", Json.Int r.r_dir_promotions);
      ("dir_epoch", Json.Int r.r_dir_epoch);
      ("dir_failovers", Json.Int r.r_dir_failovers);
      ("dir_redirects", Json.Int r.r_dir_redirects);
      ("violations", Json.List (List.map (fun s -> Json.String s) r.r_violations));
      ("elapsed_virtual", Json.Float r.r_elapsed) ]

let fingerprint r = fnv (Json.to_string ~indent:false (core_json r))

let run c =
  let core = run c in
  { core with r_fingerprint = fingerprint core }

let to_json r =
  match core_json r with
  | Json.Obj fields ->
    Json.Obj
      (fields @ [ ("fingerprint", Json.String (Printf.sprintf "%016Lx" r.r_fingerprint)) ])
  | j -> j

let to_string r = Json.to_string ~indent:true (to_json r)
